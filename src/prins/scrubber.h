// Scrubber: rate-limited background sweep that turns latent corruption into
// repaired blocks.
//
// Checksums only detect corruption when a block is *read*; blocks nobody
// reads rot silently until the day they are needed for a parity rebuild or
// a PRINS delta apply.  The scrubber reads every block of a device on a
// budget, and when a read fails with DATA_CORRUPTION escalates through an
// ordered list of repair sources:
//
//   1. the device's own redundancy (RAID degraded-mode reconstruction),
//   2. a healthy replica (kReadBlockRequest over the replication link),
//   3. quarantine: record the LBA and move on, so operators see exactly
//      what was lost instead of the device lying with stale data.
//
// Each repair is re-read through the device afterwards, so the fix is only
// counted when the verifying layer (IntegrityDisk) agrees.  Runs either as
// synchronous passes (run_pass) or as a background thread (start/stop).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "block/block_device.h"

namespace prins {

/// One place a good copy of a block can come from.  `fetch` either fills
/// `out` with the block's correct contents (the scrubber writes them back),
/// or — when `in_place` is set — repairs the device directly and reports
/// the restored contents (RAID reconstruction writes the member itself; a
/// second write through the logical path would fold the corrupt old data
/// into parity).
struct RepairSource {
  std::string name;
  std::function<Status(Lba, MutByteSpan)> fetch;
  bool in_place = false;
};

struct ScrubberConfig {
  /// Read budget; 0 scans flat out.
  std::uint64_t blocks_per_second = 0;
  /// Blocks read between budget checks (and stop() checks).
  std::uint64_t batch_blocks = 64;
};

struct ScrubStats {
  std::uint64_t passes = 0;
  std::uint64_t blocks_scanned = 0;
  std::uint64_t corruptions_found = 0;
  std::uint64_t repaired = 0;
  std::map<std::string, std::uint64_t> repaired_by;  // per source name
  std::uint64_t quarantined = 0;   // blocks newly quarantined
  std::uint64_t read_errors = 0;   // non-corruption read failures (skipped)
};

class Scrubber {
 public:
  explicit Scrubber(std::shared_ptr<BlockDevice> device,
                    ScrubberConfig config = {});
  ~Scrubber();

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  /// Sources are tried in the order added.
  void add_source(RepairSource source);

  /// One full sweep of the device; returns this pass's stats.  Previously
  /// quarantined blocks are retried (a source may have come back).
  Result<ScrubStats> run_pass();

  /// Run a pass every `interval` on a background thread until stop().
  void start(std::chrono::milliseconds interval);
  void stop();

  /// Cumulative stats across all passes.
  ScrubStats stats() const;

  /// LBAs no source could repair, ascending.
  std::vector<Lba> quarantined() const;

 private:
  void repair_block(Lba lba, ScrubStats& pass);
  void merge_pass_locked(const ScrubStats& pass);

  const std::shared_ptr<BlockDevice> device_;
  const ScrubberConfig config_;

  mutable std::mutex mutex_;
  std::vector<RepairSource> sources_;
  ScrubStats total_;
  std::set<Lba> quarantine_;

  std::condition_variable stop_cv_;
  std::thread worker_;
  bool stopping_ = false;
};

}  // namespace prins
