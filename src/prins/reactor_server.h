// ReactorReplicaServer: thread-free replica serving on the reactor.
//
// serve() (replica.h) parks one demux thread per connection plus a private
// worker/ack pipeline per session.  This server inverts that: every
// accepted connection's frame loop runs as a `set_message_handler`
// callback on its reactor loop thread, demuxing straight into ONE shared
// set of LBA-striped apply workers.  Node thread count is
// O(reactor_threads + apply_shards) no matter how many initiators are
// connected — the property the PRINS pipeline needs to serve many
// primaries (and the multi-primary cluster of ROADMAP item 2) without a
// thread explosion.
//
//   loop thread    decode_view once; write-kind frames dispatch to the
//                  shard queue for their LBA stripe (same stripe invariant
//                  as serve(): same-block XOR deltas stay ordered);
//                  torn frames NAK inline (send never blocks on-loop)
//   apply workers  one per apply shard, shared by every connection; each
//                  apply's completion lands in the session's ack buffer
//   ack path       whichever worker finds the buffer un-flushed drains it
//                  (a combining lock): under load completions pile up and
//                  coalesce into cumulative kAckBatch frames, when idle
//                  each ack goes out immediately
//
// Backpressure is per connection, not per queue: the handler must never
// block, so instead of a bounded-queue wait the server pauses the
// connection's reads (set_read_paused) once its in-flight frames hit
// max_in_flight_per_conn, resuming at half.  Control frames (barrier,
// verify, hash, hello, read-block) pause reads and wait for the session's
// in-flight writes to drain before applying — the same quiesce-then-apply
// contract as serve(), scoped to the session.
//
// The blocking serve() path remains for non-reactor transports; the two
// are wire-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/reactor_tcp.h"
#include "prins/replica.h"

namespace prins {

struct ReactorReplicaServerOptions {
  /// Port to bind (0 picks a free port; see port()).
  std::uint16_t port = 0;
  /// Per-connection transport options (inbox/outbox limits, test knobs).
  ReactorTcpOptions transport;
  /// Optional decorator applied to each accepted connection (e.g. wrap in
  /// a FaultyTransport to storm-test the reactor path).  The server finds
  /// the reactor connection inside the decorator stack via
  /// Transport::underlying(), so replies ride the decorated transport
  /// while frame fan-in stays handler-driven.
  std::function<std::unique_ptr<Transport>(std::unique_ptr<Transport>)>
      wrap_transport;
  /// Write frames a connection may have dispatched-but-unacked before its
  /// reads pause (resumes at half).  Bounds queued work per initiator.
  std::size_t max_in_flight_per_conn = 128;
  /// Max completions folded into one ack frame, as ReplicaConfig's knob.
  std::size_t ack_coalesce_max = 64;
};

class ReactorReplicaServer {
 public:
  /// Bind a ReactorListener on `pool` and serve `replica` to every
  /// connection, handler-driven.  Runs replica->apply_shards() shared
  /// apply workers.
  static Result<std::unique_ptr<ReactorReplicaServer>> start(
      std::shared_ptr<ReplicaEngine> replica,
      std::shared_ptr<ReactorPool> pool,
      const ReactorReplicaServerOptions& options = {});

  ~ReactorReplicaServer();

  ReactorReplicaServer(const ReactorReplicaServer&) = delete;
  ReactorReplicaServer& operator=(const ReactorReplicaServer&) = delete;

  /// Close the listener and every live connection, drain the apply
  /// workers, and join them.  Idempotent; the destructor calls it.
  void stop();

  /// The bound port (for initiators to connect to).
  std::uint16_t port() const;

  /// Live connections right now (tests).
  std::size_t sessions() const;

 private:
  struct Impl;
  explicit ReactorReplicaServer(std::shared_ptr<Impl> impl);

  std::shared_ptr<Impl> impl_;
};

}  // namespace prins
