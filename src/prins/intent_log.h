// WriteIntentLog: crash-atomicity for the replica's in-place XOR apply.
//
// The replica's apply is read-A_old, XOR, write-in-place — if the process
// (or its disk) dies between deciding to write and the write completing,
// the block holds neither A_old nor A_new, and every future parity delta on
// that LBA diverges silently.  Before each apply the replica durably
// records an intent: (sequence, LBA, CRC-32C of the block *about to be
// written*).  On restart, each intended block either CRC-matches its intent
// (the apply completed; re-delivery must be deduplicated, since re-XOR
// would undo it) or it doesn't (the apply was torn or never started; the
// block must be re-fetched in full, not patched).
//
// record() group-commits: concurrent appenders stage their records into a
// shared buffer and the first to find no flush in progress syncs everything
// staged so far under a single fdatasync (same shape as the journal's group
// commit), so N parallel apply workers pay ~1 fsync per batch instead of
// one each.  Every record() still returns only after *its* record is
// durable.
//
// File format: magic "PRwi" then fixed 24-byte records
//   sequence (8) | lba (8) | crc of new block (4) | crc32c of the first 20 (4)
// appended with fdatasync.  A torn tail record fails its own CRC and is
// ignored.  checkpoint() truncates the log — call it only after the data
// device has been flushed.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace prins {

class WriteIntentLog {
 public:
  struct Intent {
    std::uint64_t sequence = 0;
    std::uint64_t lba = 0;
    std::uint32_t crc = 0;  // CRC-32C the block will have once applied
  };

  struct Stats {
    std::uint64_t records = 0;  // intents durably recorded
    std::uint64_t fsyncs = 0;   // fdatasync calls that covered them; the
                                // ratio records/fsyncs is the group-commit
                                // amortization factor
  };

  /// Open (creating if needed) the log at `path` and scan surviving
  /// intents.  A torn or corrupt tail record is dropped silently.
  static Result<std::unique_ptr<WriteIntentLog>> open(const std::string& path);
  ~WriteIntentLog();

  WriteIntentLog(const WriteIntentLog&) = delete;
  WriteIntentLog& operator=(const WriteIntentLog&) = delete;

  /// Durably record an intent.  Returns only after an fdatasync covering
  /// this record (possibly issued by a concurrent record() call — group
  /// commit).  A failed flush is sticky: every waiter and every later call
  /// sees the error.
  Status record(std::uint64_t sequence, std::uint64_t lba, std::uint32_t crc);

  /// Drop all intents (the data device is flushed; every recorded apply is
  /// durable).  Truncates the file.  Waits out any in-flight group flush so
  /// record bytes never land after the truncate.
  Status checkpoint();

  /// Intents on file, oldest first (survivors of the open() scan plus any
  /// recorded since).
  std::vector<Intent> pending() const;
  std::size_t pending_count() const;

  Stats stats() const;

 private:
  WriteIntentLog(int fd, std::string path);

  int fd_;
  const std::string path_;
  mutable std::mutex mutex_;
  std::condition_variable sync_cv_;
  std::vector<Intent> pending_;
  // Group-commit state: records staged since the last flush, the ticket of
  // the newest staged record, and the ticket covered by the last successful
  // fdatasync.  staged intents join pending_ only once durable.
  Bytes staging_;
  std::vector<Intent> staged_intents_;
  std::uint64_t staged_ticket_ = 0;
  std::uint64_t synced_ticket_ = 0;
  bool flusher_active_ = false;
  Status flush_error_ = Status::ok();
  Stats stats_;
};

}  // namespace prins
