#include "prins/intent_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32c.h"
#include "common/endian.h"

namespace prins {
namespace {

constexpr Byte kMagic[4] = {'P', 'R', 'w', 'i'};
constexpr std::size_t kRecordSize = 24;

Status write_all(int fd, ByteSpan data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error(std::string("intent write: ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

}  // namespace

Result<std::unique_ptr<WriteIntentLog>> WriteIntentLog::open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return io_error("open(" + path + "): " + std::strerror(errno));
  }
  std::unique_ptr<WriteIntentLog> log(new WriteIntentLog(fd, path));

  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) return io_error("lseek: " + std::string(std::strerror(errno)));
  if (size == 0) {
    PRINS_RETURN_IF_ERROR(write_all(fd, kMagic));
    return log;
  }

  Bytes contents(static_cast<std::size_t>(size));
  if (::pread(fd, contents.data(), contents.size(), 0) !=
      static_cast<ssize_t>(contents.size())) {
    return io_error("intent log read failed: " + path);
  }
  if (contents.size() < 4 ||
      !std::equal(std::begin(kMagic), std::end(kMagic), contents.begin())) {
    return corruption("bad intent log magic: " + path);
  }

  std::size_t pos = 4;
  while (contents.size() - pos >= kRecordSize) {
    const ByteSpan record = ByteSpan(contents).subspan(pos, kRecordSize);
    if (load_le32(record.subspan(20, 4)) != crc32c(record.first(20))) {
      break;  // torn tail; everything before it is good
    }
    log->pending_.push_back({load_le64(record.first(8)),
                             load_le64(record.subspan(8, 8)),
                             load_le32(record.subspan(16, 4))});
    pos += kRecordSize;
  }
  return log;
}

WriteIntentLog::WriteIntentLog(int fd, std::string path)
    : fd_(fd), path_(std::move(path)) {}

WriteIntentLog::~WriteIntentLog() { ::close(fd_); }

Status WriteIntentLog::record(std::uint64_t sequence, std::uint64_t lba,
                              std::uint32_t crc) {
  std::unique_lock lock(mutex_);
  if (!flush_error_.is_ok()) return flush_error_;

  // Stage the record and take a ticket; the flush that covers the ticket
  // makes it durable.
  const std::size_t at = staging_.size();
  staging_.resize(at + kRecordSize);
  MutByteSpan record = MutByteSpan(staging_).subspan(at, kRecordSize);
  store_le64(record.first(8), sequence);
  store_le64(record.subspan(8, 8), lba);
  store_le32(record.subspan(16, 4), crc);
  store_le32(record.subspan(20, 4), crc32c(record.first(20)));
  staged_intents_.push_back({sequence, lba, crc});
  const std::uint64_t my_ticket = ++staged_ticket_;

  // Group commit: the first appender to find no flush in progress becomes
  // the leader and syncs everything staged so far (including records from
  // appenders now waiting); the rest sleep until their ticket is covered.
  while (synced_ticket_ < my_ticket && flush_error_.is_ok()) {
    if (!flusher_active_) {
      flusher_active_ = true;
      Bytes batch = std::move(staging_);
      staging_ = Bytes();
      std::vector<Intent> intents = std::move(staged_intents_);
      staged_intents_.clear();
      const std::uint64_t batch_upto = staged_ticket_;
      const int fd = fd_;
      lock.unlock();
      Status s = write_all(fd, batch);
      if (s.is_ok() && ::fdatasync(fd) != 0) {
        s = io_error("intent fdatasync: " + std::string(std::strerror(errno)));
      }
      lock.lock();
      flusher_active_ = false;
      if (s.is_ok()) {
        synced_ticket_ = std::max(synced_ticket_, batch_upto);
        stats_.fsyncs += 1;
        stats_.records += intents.size();
        pending_.insert(pending_.end(), intents.begin(), intents.end());
      } else {
        flush_error_ = s;
      }
      sync_cv_.notify_all();
    } else {
      sync_cv_.wait(lock);
    }
  }
  return flush_error_;
}

Status WriteIntentLog::checkpoint() {
  std::unique_lock lock(mutex_);
  // Wait out any in-flight flush (its bytes would land after the truncate
  // and resurrect stale intents); staged-but-unsynced records ride along.
  sync_cv_.wait(lock, [this] {
    return !flusher_active_ &&
           (staged_ticket_ == synced_ticket_ || !flush_error_.is_ok());
  });
  if (!flush_error_.is_ok()) return flush_error_;
  if (::ftruncate(fd_, 4) != 0) {
    return io_error("intent ftruncate: " + std::string(std::strerror(errno)));
  }
  if (::lseek(fd_, 4, SEEK_SET) < 0) {
    return io_error("intent lseek: " + std::string(std::strerror(errno)));
  }
  if (::fdatasync(fd_) != 0) {
    return io_error("intent fdatasync: " + std::string(std::strerror(errno)));
  }
  pending_.clear();
  return Status::ok();
}

std::vector<WriteIntentLog::Intent> WriteIntentLog::pending() const {
  std::lock_guard lock(mutex_);
  return pending_;
}

std::size_t WriteIntentLog::pending_count() const {
  std::lock_guard lock(mutex_);
  return pending_.size();
}

WriteIntentLog::Stats WriteIntentLog::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace prins
