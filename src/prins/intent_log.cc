#include "prins/intent_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32c.h"
#include "common/endian.h"

namespace prins {
namespace {

constexpr Byte kMagic[4] = {'P', 'R', 'w', 'i'};
constexpr std::size_t kRecordSize = 24;

Status write_all(int fd, ByteSpan data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error(std::string("intent write: ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

}  // namespace

Result<std::unique_ptr<WriteIntentLog>> WriteIntentLog::open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return io_error("open(" + path + "): " + std::strerror(errno));
  }
  std::unique_ptr<WriteIntentLog> log(new WriteIntentLog(fd, path));

  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) return io_error("lseek: " + std::string(std::strerror(errno)));
  if (size == 0) {
    PRINS_RETURN_IF_ERROR(write_all(fd, kMagic));
    return log;
  }

  Bytes contents(static_cast<std::size_t>(size));
  if (::pread(fd, contents.data(), contents.size(), 0) !=
      static_cast<ssize_t>(contents.size())) {
    return io_error("intent log read failed: " + path);
  }
  if (contents.size() < 4 ||
      !std::equal(std::begin(kMagic), std::end(kMagic), contents.begin())) {
    return corruption("bad intent log magic: " + path);
  }

  std::size_t pos = 4;
  while (contents.size() - pos >= kRecordSize) {
    const ByteSpan record = ByteSpan(contents).subspan(pos, kRecordSize);
    if (load_le32(record.subspan(20, 4)) != crc32c(record.first(20))) {
      break;  // torn tail; everything before it is good
    }
    log->pending_.push_back({load_le64(record.first(8)),
                             load_le64(record.subspan(8, 8)),
                             load_le32(record.subspan(16, 4))});
    pos += kRecordSize;
  }
  return log;
}

WriteIntentLog::WriteIntentLog(int fd, std::string path)
    : fd_(fd), path_(std::move(path)) {}

WriteIntentLog::~WriteIntentLog() { ::close(fd_); }

Status WriteIntentLog::record(std::uint64_t sequence, std::uint64_t lba,
                              std::uint32_t crc) {
  Bytes record;
  record.reserve(kRecordSize);
  append_le64(record, sequence);
  append_le64(record, lba);
  append_le32(record, crc);
  append_le32(record, crc32c(record));
  std::lock_guard lock(mutex_);
  PRINS_RETURN_IF_ERROR(write_all(fd_, record));
  if (::fdatasync(fd_) != 0) {
    return io_error("intent fdatasync: " + std::string(std::strerror(errno)));
  }
  pending_.push_back({sequence, lba, crc});
  return Status::ok();
}

Status WriteIntentLog::checkpoint() {
  std::lock_guard lock(mutex_);
  if (::ftruncate(fd_, 4) != 0) {
    return io_error("intent ftruncate: " + std::string(std::strerror(errno)));
  }
  if (::lseek(fd_, 4, SEEK_SET) < 0) {
    return io_error("intent lseek: " + std::string(std::strerror(errno)));
  }
  if (::fdatasync(fd_) != 0) {
    return io_error("intent fdatasync: " + std::string(std::strerror(errno)));
  }
  pending_.clear();
  return Status::ok();
}

std::vector<WriteIntentLog::Intent> WriteIntentLog::pending() const {
  std::lock_guard lock(mutex_);
  return pending_;
}

std::size_t WriteIntentLog::pending_count() const {
  std::lock_guard lock(mutex_);
  return pending_.size();
}

}  // namespace prins
