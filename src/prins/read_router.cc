#include "prins/read_router.h"

#include <algorithm>

#include "common/endian.h"
#include "common/logging.h"

namespace prins {

ReadRouter::ReadRouter(std::shared_ptr<PrinsEngine> engine,
                       ReadRouterConfig config)
    : engine_(std::move(engine)), config_(config) {
  if (config_.degrade_after == 0) config_.degrade_after = 1;
  if (config_.op_timeout <= std::chrono::milliseconds::zero()) {
    config_.op_timeout = std::chrono::milliseconds(1000);
  }
}

ReadRouter::~ReadRouter() {
  for (auto& link : links_) link->transport->close();
}

void ReadRouter::add_read_replica(std::unique_ptr<Transport> link) {
  auto entry = std::make_unique<ReadLink>();
  entry->transport = std::move(link);
  links_.push_back(std::move(entry));
}

std::size_t ReadRouter::healthy_links() const {
  std::size_t n = 0;
  for (const auto& link : links_) {
    n += !link->degraded.load(std::memory_order_acquire);
  }
  return n;
}

std::string ReadRouter::describe() const {
  return "read-router[" + std::to_string(links_.size()) + " mirrors](" +
         engine_->describe() + ")";
}

Status ReadRouter::read(Lba lba, MutByteSpan out) {
  PRINS_RETURN_IF_ERROR(check_io(lba, out.size()));
  const std::uint32_t bs = block_size();
  const std::uint64_t blocks = out.size() / bs;
  for (std::uint64_t i = 0; i < blocks; ++i) {
    PRINS_RETURN_IF_ERROR(
        read_fresh(lba + i, out.subspan(i * bs, bs), /*min_sequence=*/0));
  }
  return Status::ok();
}

Status ReadRouter::read_fresh(Lba lba, MutByteSpan out,
                              std::uint64_t min_sequence) {
  std::uint64_t window_min = 0;
  const PrinsEngine::ReadClass cls = engine_->classify_read(lba, &window_min);
  if (cls == PrinsEngine::ReadClass::kLocal) {
    // In-flight conflict (or offload disabled): the primary is the only
    // node guaranteed to hold the write already.
    if (!links_.empty()) engine_->note_read_conflict_local();
    return engine_->read(lba, out);
  }
  // The replica must cover both the caller's explicit demand and the
  // conflict window's bound on this LBA's history.
  const std::uint64_t demand = std::max(min_sequence, window_min);
  ReadLink* link = pick_link();
  if (link != nullptr) {
    link->outstanding.fetch_add(1, std::memory_order_relaxed);
    const Status served = read_from_replica(*link, lba, out, demand);
    link->outstanding.fetch_sub(1, std::memory_order_relaxed);
    if (served.is_ok()) {
      engine_->note_replica_read();
      return Status::ok();
    }
  }
  // Fallback: the primary satisfies any demand.  This is what keeps
  // availability at 100% no matter what the mirrors or links do.
  return engine_->read(lba, out);
}

ReadRouter::ReadLink* ReadRouter::pick_link() {
  const std::size_t n = links_.size();
  if (n == 0) return nullptr;
  if (config_.policy == ReadPolicy::kLeastOutstanding) {
    ReadLink* best = nullptr;
    std::size_t best_depth = 0;
    for (const auto& link : links_) {
      if (link->degraded.load(std::memory_order_acquire)) continue;
      const std::size_t depth =
          link->outstanding.load(std::memory_order_relaxed);
      if (best == nullptr || depth < best_depth) {
        best = link.get();
        best_depth = depth;
      }
    }
    return best;
  }
  // Round-robin: rotate, skipping degraded links.
  for (std::size_t attempt = 0; attempt < n; ++attempt) {
    const std::size_t index =
        rr_cursor_.fetch_add(1, std::memory_order_relaxed) % n;
    if (!links_[index]->degraded.load(std::memory_order_acquire)) {
      return links_[index].get();
    }
  }
  return nullptr;
}

Status ReadRouter::read_from_replica(ReadLink& link, Lba lba, MutByteSpan out,
                                     std::uint64_t min_sequence) {
  std::lock_guard lock(link.mutex);
  if (link.degraded.load(std::memory_order_acquire)) {
    return unavailable("read link degraded");
  }
  maybe_renew_lease(link);

  ReplicationMessage req;
  req.kind = MessageKind::kClientReadRequest;
  req.cluster_epoch = engine_->cluster_epoch();
  req.block_size = block_size();
  req.lba = lba;
  req.sequence = next_exchange_.fetch_add(1, std::memory_order_relaxed);
  append_le64(req.payload, min_sequence);
  if (Status sent = link.transport->send(req.encode()); !sent.is_ok()) {
    note_failure(link);
    return sent;
  }
  auto reply = await_reply(link, req.sequence);
  if (!reply.is_ok()) {
    note_failure(link);
    return reply.status();
  }
  if (reply->kind == MessageKind::kNak) {
    if (!reply->payload.empty() &&
        reply->payload[0] == static_cast<Byte>(NakReason::kStaleEpoch)) {
      // A successor primary owns this mirror now; nothing it serves can be
      // trusted by this epoch again.
      PRINS_LOG(kWarn) << "read link fenced at epoch "
                       << reply->cluster_epoch << "; degrading";
      link.degraded.store(true, std::memory_order_release);
      return failed_precondition("read link fenced by promoted replica");
    }
    note_success(link);  // the link is healthy; the data just isn't there yet
    if (!reply->payload.empty() &&
        reply->payload[0] == static_cast<Byte>(NakReason::kStaleRead)) {
      engine_->note_stale_read_retry();
      return unavailable("replica behind demanded sequence");
    }
    return unavailable("replica cannot serve the block");
  }
  if (reply->kind != MessageKind::kClientReadReply || reply->lba != lba ||
      reply->payload.size() != out.size()) {
    note_failure(link);
    return failed_precondition("unexpected reply to client read");
  }
  note_success(link);
  std::copy(reply->payload.begin(), reply->payload.end(), out.begin());
  return Status::ok();
}

Result<ReplicationMessage> ReadRouter::await_reply(ReadLink& link,
                                                   std::uint64_t exchange_id) {
  // A prior exchange that timed out here can leave its late reply buffered
  // on the transport; skim past anything that is not ours.
  for (int tries = 0; tries < 16; ++tries) {
    PRINS_ASSIGN_OR_RETURN(Bytes wire,
                           link.transport->recv_for(config_.op_timeout));
    auto reply = ReplicationMessage::decode(wire);
    if (!reply.is_ok()) continue;           // torn frame; keep listening
    if (reply->sequence != exchange_id) continue;  // stale reply
    return *reply;
  }
  return timeout_error("no reply to client read exchange");
}

void ReadRouter::maybe_renew_lease(ReadLink& link) {
  if (config_.lease_renew_every == 0) return;
  const std::uint64_t floor = engine_->read_floor();
  if (floor <= link.lease_published) return;
  if (link.lease_published != 0 &&
      floor - link.lease_published < config_.lease_renew_every) {
    return;
  }
  ReplicationMessage lease;
  lease.kind = MessageKind::kReadLease;
  lease.cluster_epoch = engine_->cluster_epoch();
  lease.sequence = floor;  // the lease value travels in the sequence field
  if (!link.transport->send(lease.encode()).is_ok()) return;
  auto ack = await_reply(link, floor);
  if (ack.is_ok() && ack->kind == MessageKind::kAck) {
    link.lease_published = floor;
  }
  // Any other outcome is soft: per-LBA freshness proofs still work, and a
  // sick link will fail its next read exchange and degrade there.
}

void ReadRouter::note_success(ReadLink& link) { link.failure_streak = 0; }

void ReadRouter::note_failure(ReadLink& link) {
  if (++link.failure_streak >= config_.degrade_after) {
    PRINS_LOG(kWarn) << "read link failed " << link.failure_streak
                     << " exchanges in a row; degrading";
    link.degraded.store(true, std::memory_order_release);
  }
}

}  // namespace prins
