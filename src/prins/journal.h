// ReplicationJournal: a crash-durable log of outbound replication.
//
// The in-memory replication queue dies with the process; anything written
// locally but not yet acknowledged by every replica would silently
// diverge.  The journal closes that hole: every replication message is
// appended (and fsync'd) before it is queued, and an acknowledgement
// watermark is advanced as replicas confirm.  After a crash, a new engine
// replays the entries above the watermark — at-least-once delivery, which
// is safe because kWrite application is idempotent per (lba, content)
// ordering and replicas apply in sequence order.
//
// File format (little-endian):
//   header: magic "PRjl" (4)
//   records, back to back:
//     0x01 | u32 length | message wire bytes (self-checksummed)
//     0x02 | u64 acked sequence watermark
// A torn tail record (partial write at crash) is detected and ignored.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "prins/message.h"

namespace prins {

/// Point-in-time accounting for the journal (EngineMetrics, prinsctl).
struct JournalStats {
  std::uint64_t pending_records = 0;  // records above the watermark
  std::uint64_t pending_bytes = 0;    // wire bytes of those held in RAM
  std::uint64_t spills = 0;           // replay-cache records evicted to disk
  std::uint64_t acked_sequence = 0;   // the durable watermark
};

class ReplicationJournal {
 public:
  /// Default bound on the in-RAM replay cache (see open()).
  static constexpr std::size_t kDefaultReplayCacheBytes = 64u << 20;

  /// Open or create a journal at `path`, scanning existing records.
  ///
  /// `replay_cache_bytes` bounds the in-memory copy of pending records.
  /// The file is always the durable source of truth; the RAM copy only
  /// makes pending() cheap.  When un-acked records outgrow the bound —
  /// a frozen watermark during an outage, say — the oldest cached wires
  /// are evicted (a "spill") and pending()/checkpoint() re-read the file
  /// instead, so journal memory stays bounded no matter how long a
  /// replica stays down.
  static Result<std::unique_ptr<ReplicationJournal>> open(
      const std::string& path,
      std::size_t replay_cache_bytes = kDefaultReplayCacheBytes);
  ~ReplicationJournal();

  ReplicationJournal(const ReplicationJournal&) = delete;
  ReplicationJournal& operator=(const ReplicationJournal&) = delete;

  /// Durably record a message before it is queued for sending.
  Status append(const ReplicationMessage& message);

  /// Same, with the payload supplied out-of-line (`header.payload` is
  /// ignored) — the engine's hot path keeps payloads in pooled buffers and
  /// never materializes an owning ReplicationMessage.  Concurrent appends
  /// group-commit: each caller stages its record under the lock, then one
  /// leader writes and fdatasyncs the whole batch while later arrivals pile
  /// into the next batch, so N writers share one fsync instead of
  /// serializing N.
  Status append(const ReplicationMessage& header, ByteSpan payload);

  /// Advance the acknowledgement watermark: everything with
  /// sequence <= `sequence` is confirmed replicated.
  Status mark_acked(std::uint64_t sequence);

  /// Messages above the watermark, in sequence order (what a restarted
  /// engine must re-send).
  Result<std::vector<ReplicationMessage>> pending() const;

  /// Rewrite the file keeping only pending records (reclaims space).
  Status checkpoint();

  std::uint64_t acked_sequence() const;
  std::uint64_t max_sequence() const;
  /// Records currently above the watermark.
  std::size_t pending_count() const;
  /// Depth/cache accounting in one consistent snapshot.
  JournalStats stats() const;

 private:
  ReplicationJournal(int fd, std::string path,
                     std::size_t replay_cache_bytes);

  Status append_record_locked(std::uint8_t type, ByteSpan payload);
  /// Free cached wires oldest-first until the replay cache fits its bound.
  void evict_replay_cache_locked();
  /// Re-read every pending record's wire from the file (spilled entries
  /// have no RAM copy), sorted by sequence.
  Result<std::vector<std::pair<std::uint64_t, Bytes>>>
  read_pending_from_file_locked() const;

  mutable std::mutex mutex_;
  int fd_;
  std::string path_;
  const std::size_t replay_cache_bytes_;
  std::uint64_t acked_ = 0;
  std::uint64_t max_sequence_ = 0;
  // Pending wire messages by sequence (a bounded cache for cheap replay;
  // the file is the durable copy).  A spilled entry keeps its sequence but
  // an empty wire — pending() then re-reads the file.
  std::vector<std::pair<std::uint64_t, Bytes>> pending_;
  std::size_t pending_bytes_ = 0;  // wire bytes currently cached
  std::uint64_t spills_ = 0;       // records evicted since open
  bool spilled_ = false;           // any pending_ entry lacks its wire

  // Group-commit state.  Appenders stage records into `staging_` and take a
  // ticket; a single leader at a time swaps the staging buffer out and
  // flushes it with the lock released.  `flush_error_` is sticky: once a
  // write or sync fails the journal refuses further appends, because a
  // record's durability can no longer be guaranteed.
  mutable std::condition_variable sync_cv_;
  Bytes staging_;
  std::uint64_t staged_ticket_ = 0;
  std::uint64_t synced_ticket_ = 0;
  bool flusher_active_ = false;
  Status flush_error_ = Status::ok();
};

}  // namespace prins
