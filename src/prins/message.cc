#include "prins/message.h"

#include <algorithm>

#include "common/crc32c.h"
#include "common/endian.h"

namespace prins {
namespace {

constexpr Byte kMagic[4] = {'P', 'R', 'r', 'p'};
constexpr std::size_t kHeaderSize = ReplicationMessage::kWireHeaderSize;

bool valid_kind(std::uint8_t k) {
  return k >= static_cast<std::uint8_t>(MessageKind::kWrite) &&
         k <= static_cast<std::uint8_t>(MessageKind::kClientWriteReply);
}

bool valid_policy(std::uint8_t p) {
  return p <= static_cast<std::uint8_t>(ReplicationPolicy::kPrinsRle);
}

}  // namespace

Bytes pack_ack_ranges(const std::vector<AckRange>& ranges) {
  Bytes out;
  out.reserve(4 + ranges.size() * 12);
  append_le32(out, static_cast<std::uint32_t>(ranges.size()));
  for (const AckRange& range : ranges) {
    append_le64(out, range.first_sequence);
    append_le32(out, range.count);
  }
  return out;
}

Result<std::vector<AckRange>> unpack_ack_ranges(ByteSpan payload) {
  if (payload.size() < 4) return corruption("ack batch payload too short");
  const std::uint32_t count = load_le32(payload.first(4));
  if (payload.size() != 4 + static_cast<std::size_t>(count) * 12) {
    return corruption("ack batch payload length mismatch");
  }
  std::vector<AckRange> ranges;
  ranges.reserve(count);
  std::size_t pos = 4;
  for (std::uint32_t i = 0; i < count; ++i) {
    AckRange range;
    range.first_sequence = load_le64(payload.subspan(pos, 8));
    range.count = load_le32(payload.subspan(pos + 8, 4));
    if (range.count == 0) return corruption("empty ack range");
    ranges.push_back(range);
    pos += 12;
  }
  return ranges;
}

std::vector<AckRange> coalesce_ack_ranges(std::vector<std::uint64_t>& acked) {
  std::sort(acked.begin(), acked.end());
  std::vector<AckRange> ranges;
  for (std::uint64_t sequence : acked) {
    if (!ranges.empty()) {
      AckRange& last = ranges.back();
      if (last.covers(sequence)) continue;  // duplicate completion
      if (sequence == last.first_sequence + last.count) {
        ++last.count;
        continue;
      }
    }
    ranges.push_back(AckRange{sequence, 1});
  }
  return ranges;
}

ReplicationMessage MessageView::to_message() const {
  ReplicationMessage msg;
  msg.kind = kind;
  msg.policy = policy;
  msg.cluster_epoch = cluster_epoch;
  msg.block_size = block_size;
  msg.lba = lba;
  msg.sequence = sequence;
  msg.timestamp_us = timestamp_us;
  msg.payload = to_bytes(payload);
  return msg;
}

void ReplicationMessage::encode_header(MutByteSpan out,
                                       std::size_t payload_size) const {
  std::size_t pos = 0;
  std::copy(std::begin(kMagic), std::end(kMagic), out.begin());
  pos += 4;
  out[pos++] = static_cast<Byte>(kind);
  out[pos++] = static_cast<Byte>(policy);
  store_le64(out.subspan(pos, 8), cluster_epoch);
  pos += 8;
  store_le32(out.subspan(pos, 4), block_size);
  pos += 4;
  store_le64(out.subspan(pos, 8), lba);
  pos += 8;
  store_le64(out.subspan(pos, 8), sequence);
  pos += 8;
  store_le64(out.subspan(pos, 8), timestamp_us);
  pos += 8;
  store_le32(out.subspan(pos, 4),
             static_cast<std::uint32_t>(payload_size));
}

Bytes ReplicationMessage::encode() const {
  Bytes out;
  out.resize(kHeaderSize);
  encode_header(out, payload.size());
  out.reserve(kHeaderSize + payload.size() + 4);
  append(out, payload);
  append_le32(out, crc32c(out));
  return out;
}

Result<MessageView> ReplicationMessage::decode_view(ByteSpan wire) {
  if (wire.size() < kHeaderSize + 4) {
    return corruption("replication message too short");
  }
  if (!std::equal(std::begin(kMagic), std::end(kMagic), wire.begin())) {
    return corruption("bad replication message magic");
  }
  const std::uint32_t want_crc = load_le32(wire.subspan(wire.size() - 4));
  if (crc32c(wire.first(wire.size() - 4)) != want_crc) {
    return corruption("replication message crc mismatch");
  }
  MessageView msg;
  std::size_t pos = 4;
  const std::uint8_t kind_raw = wire[pos++];
  if (!valid_kind(kind_raw)) {
    return corruption("bad message kind " + std::to_string(kind_raw));
  }
  msg.kind = static_cast<MessageKind>(kind_raw);
  const std::uint8_t policy_raw = wire[pos++];
  if (!valid_policy(policy_raw)) {
    return corruption("bad policy " + std::to_string(policy_raw));
  }
  msg.policy = static_cast<ReplicationPolicy>(policy_raw);
  msg.cluster_epoch = load_le64(wire.subspan(pos, 8));
  pos += 8;
  msg.block_size = load_le32(wire.subspan(pos, 4));
  pos += 4;
  msg.lba = load_le64(wire.subspan(pos, 8));
  pos += 8;
  msg.sequence = load_le64(wire.subspan(pos, 8));
  pos += 8;
  msg.timestamp_us = load_le64(wire.subspan(pos, 8));
  pos += 8;
  const std::uint32_t payload_len = load_le32(wire.subspan(pos, 4));
  pos += 4;
  if (wire.size() - 4 - pos != payload_len) {
    return corruption("replication message payload length mismatch");
  }
  msg.payload = wire.subspan(pos, payload_len);
  return msg;
}

Result<ReplicationMessage> ReplicationMessage::decode(ByteSpan wire) {
  PRINS_ASSIGN_OR_RETURN(MessageView view, decode_view(wire));
  return view.to_message();
}

MessageView ReplicationMessage::view() const {
  MessageView v;
  v.kind = kind;
  v.policy = policy;
  v.cluster_epoch = cluster_epoch;
  v.block_size = block_size;
  v.lba = lba;
  v.sequence = sequence;
  v.timestamp_us = timestamp_us;
  v.payload = payload;
  return v;
}

}  // namespace prins
