#include "prins/message.h"

#include <algorithm>

#include "common/crc32c.h"
#include "common/endian.h"

namespace prins {
namespace {

constexpr Byte kMagic[4] = {'P', 'R', 'r', 'p'};
constexpr std::size_t kHeaderSize = 4 + 1 + 1 + 4 + 8 + 8 + 8 + 4;

bool valid_kind(std::uint8_t k) {
  return k >= static_cast<std::uint8_t>(MessageKind::kWrite) &&
         k <= static_cast<std::uint8_t>(MessageKind::kReadBlockReply);
}

bool valid_policy(std::uint8_t p) {
  return p <= static_cast<std::uint8_t>(ReplicationPolicy::kPrinsRle);
}

}  // namespace

Bytes ReplicationMessage::encode() const {
  Bytes out;
  out.reserve(kHeaderSize + payload.size() + 4);
  append(out, kMagic);
  out.push_back(static_cast<Byte>(kind));
  out.push_back(static_cast<Byte>(policy));
  append_le32(out, block_size);
  append_le64(out, lba);
  append_le64(out, sequence);
  append_le64(out, timestamp_us);
  append_le32(out, static_cast<std::uint32_t>(payload.size()));
  append(out, payload);
  append_le32(out, crc32c(out));
  return out;
}

Result<ReplicationMessage> ReplicationMessage::decode(ByteSpan wire) {
  if (wire.size() < kHeaderSize + 4) {
    return corruption("replication message too short");
  }
  if (!std::equal(std::begin(kMagic), std::end(kMagic), wire.begin())) {
    return corruption("bad replication message magic");
  }
  const std::uint32_t want_crc = load_le32(wire.subspan(wire.size() - 4));
  if (crc32c(wire.first(wire.size() - 4)) != want_crc) {
    return corruption("replication message crc mismatch");
  }
  ReplicationMessage msg;
  std::size_t pos = 4;
  const std::uint8_t kind_raw = wire[pos++];
  if (!valid_kind(kind_raw)) {
    return corruption("bad message kind " + std::to_string(kind_raw));
  }
  msg.kind = static_cast<MessageKind>(kind_raw);
  const std::uint8_t policy_raw = wire[pos++];
  if (!valid_policy(policy_raw)) {
    return corruption("bad policy " + std::to_string(policy_raw));
  }
  msg.policy = static_cast<ReplicationPolicy>(policy_raw);
  msg.block_size = load_le32(wire.subspan(pos, 4));
  pos += 4;
  msg.lba = load_le64(wire.subspan(pos, 8));
  pos += 8;
  msg.sequence = load_le64(wire.subspan(pos, 8));
  pos += 8;
  msg.timestamp_us = load_le64(wire.subspan(pos, 8));
  pos += 8;
  const std::uint32_t payload_len = load_le32(wire.subspan(pos, 4));
  pos += 4;
  if (wire.size() - 4 - pos != payload_len) {
    return corruption("replication message payload length mismatch");
  }
  msg.payload = to_bytes(wire.subspan(pos, payload_len));
  return msg;
}

}  // namespace prins
