// Packing helpers for the verify/repair protocol.
//
// The primary fingerprints block ranges with CRC-32C and ships
// (lba, crc) lists in kVerifyRequest messages; the replica answers with the
// list of LBAs whose local contents disagree, which the primary then
// repairs with full kRepairBlock writes.  This is the block-level analogue
// of rsync's checksum pass and is how a replica that missed updates (crash,
// link loss) is brought back in sync without a full copy.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "block/block_device.h"
#include "common/bytes.h"
#include "common/status.h"

namespace prins {

struct BlockChecksum {
  std::uint64_t lba;
  std::uint32_t crc;
};

/// Serialize a checksum list (count varint, then lba/crc pairs LE).
Bytes pack_checksums(const std::vector<BlockChecksum>& checksums);
Result<std::vector<BlockChecksum>> unpack_checksums(ByteSpan payload);

/// Serialize an LBA list (count varint, then LEs).
Bytes pack_lbas(const std::vector<std::uint64_t>& lbas);
Result<std::vector<std::uint64_t>> unpack_lbas(ByteSpan payload);

// ---- hierarchical (Merkle-style) verification ------------------------------
//
// For a device that is *mostly* in sync, shipping one CRC per block is
// wasteful.  The hierarchical audit asks the replica to hash whole block
// ranges (hash = FNV-64 over the per-block CRC-32C stream), compares them
// to local hashes, and only descends into ranges that disagree, falling
// back to the flat per-block protocol at the leaves.

struct BlockRange {
  std::uint64_t lba;
  std::uint64_t count;
};

/// Serialize a range list (count varint, then lba/count varints).
Bytes pack_ranges(const std::vector<BlockRange>& ranges);
Result<std::vector<BlockRange>> unpack_ranges(ByteSpan payload);

/// Serialize range hashes (count varint, then u64 LEs).
Bytes pack_hashes(const std::vector<std::uint64_t>& hashes);
Result<std::vector<std::uint64_t>> unpack_hashes(ByteSpan payload);

/// The range fingerprint both sides compute: FNV-64 folded over each
/// block's CRC-32C in LBA order.
Result<std::uint64_t> hash_block_range(BlockDevice& device,
                                       const BlockRange& range);

}  // namespace prins
