// PrinsEngine: the primary-side replication engine (the paper's
// "PRINS-engine" living inside the iSCSI target).
//
// A BlockDevice decorator: reads pass through; every block write is
//   1. applied to the local device,
//   2. turned into a replication payload per the configured policy —
//      for PRINS policies the payload is the write parity P' = new ⊕ old
//      (computed by the fused SIMD kernel, which also yields the dirty-byte
//      count for free), for traditional policies the new block itself —
//      encoded by the policy's codec,
//   3. fanned out to a per-replica outbox, each drained by its own sender
//      thread, so a slow or high-latency replica never serializes the
//      others.  Each sender streams up to `pipeline_depth` messages per
//      link round-trip before collecting ACKs.  With
//      `EngineConfig::reactor_senders` the sender threads disappear: each
//      link becomes a reactor-hosted state machine (pumped by post(),
//      acked by message-handler callbacks, timed by the wheel).
//
// Optionally (`coalesce_writes`) back-to-back deltas to the same LBA that
// are still waiting in an outbox are XOR-folded into a single message: the
// telescoping property (d1 then d2 == d1 ⊕ d2) makes the fold lossless for
// parity policies, and last-write-wins makes it lossless for full-block
// policies.  A folded message acknowledges every write it covers.
//
// Obtaining A_old: if the local device is a RaidArray, the engine taps the
// array's ParityObserver and gets P' for free from the RAID-4/5 small-write
// path (the paper's zero-overhead case).  Otherwise the engine reads the
// old block before writing (the measured <10% overhead case).
//
// flush() acts as a replication barrier: it drains every outbox (all
// replicas acked everything) and then flushes the local device.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "block/block_device.h"
#include "common/buffer_pool.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "net/reactor.h"
#include "net/transport.h"
#include "prins/message.h"
#include "prins/replication_policy.h"
#include "prins/journal.h"
#include "prins/scrubber.h"
#include "prins/trap_log.h"
#include "raid/raid6_array.h"
#include "raid/raid_array.h"

namespace prins {

class Codec;

/// Rebuilds the transport to replica `index` after a connection-class
/// failure (the engine closes the old transport before calling this).
using TransportFactory =
    std::function<Result<std::unique_ptr<Transport>>(std::size_t index)>;

/// How a sender reacts to link trouble.  Transient errors (reply timeout,
/// torn reply, replica NAK) retransmit the un-acked window with exponential
/// backoff + jitter; connection losses additionally reconnect through the
/// engine's TransportFactory (when one is configured).  Sequence dedup at
/// the replica makes every retransmission safe.
struct RetryPolicy {
  /// Consecutive no-progress attempts before the link is declared failed.
  std::size_t max_attempts = 5;
  std::chrono::milliseconds base_backoff{1};
  double multiplier = 2.0;
  std::chrono::milliseconds max_backoff{200};
  /// Per-reply receive deadline.  0 (default) blocks forever — a dropped
  /// message then stalls the link until the peer closes, exactly the
  /// pre-retry behavior.  Set it on lossy fabrics so drops surface as
  /// kTimeout and trigger retransmission.
  std::chrono::milliseconds op_timeout{0};
};

struct EngineConfig {
  ReplicationPolicy policy = ReplicationPolicy::kPrins;
  /// Per-replica outbox bound; producers block while any outbox is full.
  std::size_t queue_capacity = 1024;
  /// Tap P' from the local RaidArray instead of reading the old block.
  /// Requires the local device passed to the constructor to be a RaidArray.
  bool use_raid_tap = false;
  /// Messages a sender streams to its replica before waiting for ACKs.
  /// 1 is stop-and-wait (the paper's conservative closed-network
  /// assumption); larger windows amortize the link round-trip over WAN
  /// latencies.  Replicas apply in order either way.  The transport must
  /// buffer at least this many messages per direction (TCP and the
  /// default inproc pair do), else send/ack can deadlock.
  std::size_t pipeline_depth = 1;
  /// XOR-fold queued same-LBA deltas in each replica outbox into one
  /// message (lossless; see header comment).  Off by default: folding
  /// trades wire messages for per-link re-encodes and makes per-message
  /// traffic accounting depend on queue depth at send time.
  bool coalesce_writes = false;
  /// Keep a primary-side TrapLog of every write's parity delta.  Enables
  /// resync_replica(): after a link outage, ship each stale block ONE
  /// folded delta (XOR of everything it missed) instead of checksum-
  /// scanning the device.  Costs memory proportional to bytes changed.
  bool keep_trap_log = false;
  /// Crash durability: every replication message is appended (fsync'd)
  /// to this journal before queueing, and fully-acknowledged sequences
  /// advance its watermark.  After a crash, construct a new engine with
  /// the same journal and call replay_journal().
  std::shared_ptr<ReplicationJournal> journal;
  /// Link error recovery (see RetryPolicy).  The defaults retry transient
  /// errors a few times and otherwise behave like the pre-retry engine.
  RetryPolicy retry;
  /// Reconnect callback.  Null (default): losing a connection is a sticky
  /// failure resolved by the operator (reattach_replica + resync_replica).
  /// Non-null: senders transparently reconnect and replay un-acked traffic;
  /// combined with keep_trap_log, a link that exhausts its retries becomes
  /// a *degraded* state the engine exits on its own — it periodically
  /// reconnects, folds the parity log over the outage window, resyncs the
  /// replica, and unfreezes the journal watermark.
  TransportFactory reconnect;
  /// Deadline substrate for retry backoff and heal scheduling.  Null
  /// (default): a sender waiting out a backoff parks in a per-thread timed
  /// condition wait, exactly the historical behavior.  Non-null: the delay
  /// becomes an entry on this reactor's timer wheel and the sender parks
  /// in an *untimed* wait on a gate the wheel fires — one shared wheel
  /// tracks every link's deadline, and stop/reattach cancel the gates so
  /// waiters re-check state immediately instead of sleeping out the rest
  /// of their backoff.  Pair with ReactorTcpTransport links so the
  /// per-reply op_timeout rides the same wheel (its recv_for arms a wheel
  /// timer rather than polling).
  std::shared_ptr<Reactor> reactor;
  /// Thread-free primary: drive each replica link as a reactor-hosted
  /// outbox state machine instead of a dedicated sender thread.  Requires
  /// `reactor`; links whose transports are not ReactorTcpTransports (at
  /// add_replica(), after reattach_replica(), or produced by `reconnect`)
  /// transparently fall back to a threaded sender.  The steady state
  /// spends zero engine threads: distribute() posts a pump onto the
  /// reactor, replica ACKs/NAKs arrive as message-handler callbacks on
  /// the transport's loop, and the RetryPolicy's op_timeout and retry
  /// backoff ride the timer wheel.  Semantics differ from the threaded
  /// path in one place: a lost connection is never reconnected in-round —
  /// it degrades the link and the self-heal path (keep_trap_log +
  /// reconnect) reconnects and folds the outage; with either of those
  /// unset, connection loss is a sticky failure exactly as if `reconnect`
  /// were null.  A transient thread exists only while a degraded link
  /// heals.
  bool reactor_senders = false;
  /// LBA-striped submit locks: writers to blocks in different shards
  /// (shard = lba mod write_shards) proceed concurrently; same-block writes
  /// stay fully serialized, which is what keeps replica XOR chains
  /// telescoping.  0 (default) auto-sizes: the PRINS_WRITE_SHARDS
  /// environment variable if set, else the hardware thread count.  Rounded
  /// up to a power of two, clamped to [1, 64].  1 reproduces the old
  /// global-write-lock behavior.
  std::size_t write_shards = 0;
  /// Serve hot-path scratch buffers (old block, delta, codec frame,
  /// coalesce copy) from a freelist instead of the heap; steady-state
  /// writes then allocate nothing.  Off is only interesting for baseline
  /// benchmarking.
  bool pool_buffers = true;
  /// Freelist bound per pool; releases beyond it free their buffer.
  std::size_t pool_max_free = 128;
  /// Fencing epoch stamped into every outgoing wire message.  Replicas
  /// reject frames from an older epoch with NakReason::kStaleEpoch, which
  /// this engine treats as a sticky, unhealable failure: a newer primary
  /// was promoted while we were away, and retrying or self-healing would
  /// corrupt the cluster's new history.  0 is the epoch-unaware legacy
  /// world; ReplicaEngine::promote() mints epoch+1 for the successor.
  std::uint64_t cluster_epoch = 0;
  /// Read offload: maintain the per-stripe recent-writes conflict window
  /// and let classify_read() mark conflict-free reads as servable by a
  /// replica (see ReadRouter).  Off (default), classify_read() answers
  /// kLocal unconditionally and the write path skips the ring upkeep —
  /// offload decisions without the window would be unsound (a reader could
  /// demand nothing and observe a replica mid-catch-up).
  bool read_from_replicas = false;
};

struct EngineMetrics {
  std::uint64_t writes = 0;            // block writes replicated
  std::uint64_t raw_bytes = 0;         // application bytes written
  std::uint64_t payload_bytes = 0;     // encoded replication payload bytes
  std::uint64_t message_bytes = 0;     // canonical wire bytes of messages
                                       // acked by every replica (one copy;
                                       // multiply by replica count for
                                       // fabric totals)
  std::uint64_t acks = 0;              // logical write acknowledgements
                                       // across replicas (a coalesced ACK
                                       // counts once per write it covers)
  Histogram payload_sizes;             // per-write encoded payload size
  Histogram dirty_bytes;               // nonzero bytes per parity delta
                                       // (PRINS policies only)
  std::uint64_t retries = 0;           // batch retransmission rounds
  std::uint64_t reconnects = 0;        // transports rebuilt via the factory
  std::uint64_t auto_resyncs = 0;      // degraded links healed autonomously
  std::uint64_t nak_full_repairs = 0;  // queued parity deltas a replica
                                       // NAK'd as damaged and the engine
                                       // re-sent as full-block repairs
  std::uint64_t scrub_passes = 0;
  std::uint64_t scrub_corruptions = 0;  // corrupt blocks scrub passes found
  std::uint64_t scrub_repaired = 0;
  std::uint64_t scrub_quarantined = 0;  // blocks no repair source could fix
  // Failover / recovery visibility: a stalled recovery shows up as a
  // frozen watermark plus growing journal depth instead of staying silent.
  std::uint64_t cluster_epoch = 0;     // fencing epoch this engine stamps
  std::uint64_t stale_epoch_naks = 0;  // times a replica fenced this engine
  std::uint64_t journal_frozen = 0;    // 1 while a drop pins the watermark
  std::uint64_t journal_watermark = 0; // journal's acked sequence
  std::uint64_t journal_pending = 0;   // journaled records above watermark
  std::uint64_t journal_pending_bytes = 0;  // RAM held by the replay cache
  std::uint64_t journal_spills = 0;    // replay cache evictions to disk
  // Read offload (config.read_from_replicas + ReadRouter).
  std::uint64_t replica_reads = 0;         // block reads a replica served
  std::uint64_t stale_read_retries = 0;    // kStaleRead NAKs -> local retry
  std::uint64_t read_conflicts_local = 0;  // reads the conflict window
                                           // pinned to the primary
};

class PrinsEngine final : public BlockDevice {
 public:
  PrinsEngine(std::shared_ptr<BlockDevice> local, EngineConfig config);

  /// RAID-tap constructors: the engine subscribes to the array's parity
  /// observer and gets P' from the small-write path for free.
  /// `config.use_raid_tap` is implied.
  PrinsEngine(std::shared_ptr<RaidArray> local_raid, EngineConfig config);
  PrinsEngine(std::shared_ptr<Raid6Array> local_raid6, EngineConfig config);

  ~PrinsEngine() override;

  PrinsEngine(const PrinsEngine&) = delete;
  PrinsEngine& operator=(const PrinsEngine&) = delete;

  /// Attach a replica link and start its sender thread.  The engine owns
  /// the transport and will close it on destruction.  Add replicas before
  /// the first write.
  void add_replica(std::unique_ptr<Transport> link);

  /// Number of attached replica links.
  std::size_t replica_count() const;

  /// Replace the transport of replica `index` after a link failure, and
  /// clear the engine's sticky replication error so new writes flow again.
  /// The replica may have missed writes: follow with verify_and_repair()
  /// to resynchronize it (the rsync-style recovery path).
  Status reattach_replica(std::size_t index, std::unique_ptr<Transport> link);

  std::uint32_t block_size() const override { return local_->block_size(); }
  std::uint64_t num_blocks() const override { return local_->num_blocks(); }
  Status read(Lba lba, MutByteSpan out) override { return local_->read(lba, out); }
  Status write(Lba lba, ByteSpan data) override;
  Status flush() override;
  std::string describe() const override;

  /// Block until every queued message has been sent and acked on every
  /// link.  Surfaces any replication error encountered by a sender.
  Status drain();

  /// Initial sync: ship the device's entire contents as compressed
  /// kSyncBlock messages (replicas need A_old before parity replication can
  /// start).  Drains before returning.
  Status full_sync();

  /// full_sync() restricted to a block subset: ship exactly `lbas` as
  /// compressed kSyncBlock messages and drain.  The cluster layer seeds a
  /// promoted primary's replacement mirrors with just its placement
  /// groups' blocks — a device-wide sync would clobber the blocks the
  /// mirror node owns itself.
  Status sync_blocks(const std::vector<Lba>& lbas);

  /// Checksum-compare a block range against every replica and rewrite
  /// mismatching blocks.  Returns the number of blocks repaired across all
  /// replicas.  Drains first.
  Result<std::uint64_t> verify_and_repair(Lba start, std::uint64_t count);

  /// Hierarchical (Merkle-style) audit: compare range fingerprints first
  /// and descend only into ranges that disagree, falling back to the flat
  /// per-block protocol at the leaves.  Orders of magnitude less verify
  /// traffic than verify_and_repair when the devices are mostly in sync.
  /// Returns the number of blocks repaired across all replicas.
  Result<std::uint64_t> verify_and_repair_hierarchical(Lba start,
                                                       std::uint64_t count);

  /// Fetch one block's contents from the first healthy replica that can
  /// serve it (kReadBlockRequest).  The scrubber's replica-pull repair
  /// source; also usable directly for ad-hoc recovery.  Call when the
  /// links are quiet (e.g. after drain()) — a reply in flight on a busy
  /// link would be misread.  DATA_CORRUPTION if every replica NAK'd the
  /// block (their copies are damaged too).
  Status fetch_block_from_replica(Lba lba, MutByteSpan out);

  /// Scrub the local device: drain, pause writers, and run one Scrubber
  /// pass repairing corrupt blocks from (in order) any `extra_sources`,
  /// the tapped RAID array's reconstruction, and healthy replicas.  When
  /// the local device wraps a RAID array that the engine does not tap,
  /// pass its repair_block as an in_place extra source — writing repairs
  /// through the logical path would fold the corrupt old data into parity.
  /// Stats also accumulate into EngineMetrics (scrub_*).
  Result<ScrubStats> scrub(const ScrubberConfig& config = {},
                           std::vector<RepairSource> extra_sources = {});

  /// Re-enqueue every journaled message above the acknowledgement
  /// watermark (crash recovery).  Call after attaching replicas and
  /// before new writes; also fast-forwards the sequence/timestamp
  /// counters past the journal's high-water mark.
  Status replay_journal();

  /// Seed a freshly constructed engine from a promoted replica's recovered
  /// state (ReplicaEngine::promote() calls this): fast-forward the
  /// sequence counter and logical clock past everything the replica
  /// applied, and move its CDP trap log in so resync_replica() can fold
  /// the deltas survivors missed.  Must run before replicas attach and
  /// before the first write; `recovered_trap_log` is left empty.
  Status adopt_recovered_state(std::uint64_t next_sequence,
                               std::uint64_t applied_timestamp_us,
                               TrapLog& recovered_trap_log);

  /// Fencing epoch this engine stamps into every outgoing message.
  std::uint64_t cluster_epoch() const { return config_.cluster_epoch; }

  /// Delta resynchronization (requires config.keep_trap_log): after
  /// reattach_replica(), fold the parity log forward from the replica's
  /// last acknowledged write and ship one delta per stale block.  The
  /// folded delta is A_now ⊕ A_acked, so the replica's XOR apply lands it
  /// exactly at the current state — no full blocks, no checksum scan.
  /// Returns the number of blocks resynced.
  Result<std::uint64_t> resync_replica(std::size_t index);

  /// The primary-side parity log (empty unless config.keep_trap_log).
  const TrapLog& trap_log() const { return trap_log_; }

  /// RAID-tap deltas captured but not yet consumed by write().  Nonzero
  /// outside a write() call would mean a leaked (stale) delta; exposed so
  /// tests can pin the no-leak invariant.
  std::size_t tap_backlog() const;

  EngineMetrics metrics() const;

  ReplicationPolicy policy() const { return config_.policy; }

  /// How one block read should be served (see classify_read()).
  enum class ReadClass : std::uint8_t {
    kLocal = 0,       // possible in-flight conflict (or offload disabled):
                      //   the primary must serve this read itself
    kOffloadable = 1  // conflict-free: any replica whose applied state
                      //   covers `min_sequence` serves it correctly
  };

  /// Classify a read of `lba` against the recent-writes conflict window
  /// (lock-free; safe concurrently with writers).  kOffloadable means
  /// every write to `lba` this engine has issued is covered by
  /// `*min_sequence`, and `*min_sequence` <= read_floor() — i.e. applied
  /// at every replica — so a replica read demanding that sequence returns
  /// exactly what a local read would.  kLocal means a write to `lba` may
  /// still be in flight (or config.read_from_replicas is off).
  ReadClass classify_read(Lba lba, std::uint64_t* min_sequence) const;

  /// Highest sequence every replica has acknowledged (monotone; freezes
  /// with the journal watermark when a link drops a write).  Writes at or
  /// below the floor are applied at every replica.
  std::uint64_t read_floor() const {
    return read_floor_.load(std::memory_order_acquire);
  }

  /// Newest sequence assigned to any write (0 before the first write).
  std::uint64_t last_sequence() const {
    return next_sequence_.load(std::memory_order_acquire) - 1;
  }

  /// ReadRouter accounting, merged into metrics() (the router is a
  /// decorator, so its counters live with the engine's for one-stop stats).
  void note_replica_read() {
    replica_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_stale_read_retry() {
    stale_read_retries_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_read_conflict_local() {
    read_conflicts_local_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Resolved submit-shard count (config.write_shards after auto-sizing).
  std::size_t write_shard_count() const { return shards_.size(); }

  /// Test/bench hook: engine-wide mutex_ acquisitions made by the submit
  /// path since construction.  The sharded pipeline takes exactly one per
  /// distributed message (in distribute()); the pre-shard engine took three.
  std::uint64_t debug_submit_global_lock_count() const {
    return submit_global_locks_.load(std::memory_order_relaxed);
  }

  /// Freelist stats of the block-scratch / frame pools (bench reporting).
  BufferPool::Stats block_pool_stats() const { return block_pool_.stats(); }
  BufferPool::Stats frame_pool_stats() const { return frame_pool_.stats(); }

 private:
  /// One queued message in a replica outbox.  No canonical wire encoding
  /// exists: the sender frames each entry at transmission time with
  /// scatter-gather I/O (stack-encoded header + shared payload frame +
  /// trailing CRC), so enqueueing is a cheap refcount bump, not a copy.
  struct OutMessage {
    ReplicationMessage meta;  // header fields; payload lives in `payload`
    /// Encoded (post-codec) payload frame, shared across all link outboxes
    /// via the pool refcount.
    PooledBuffer payload;
    /// Raw (pre-codec) payload for folding; shared across links until a
    /// fold copies-on-write.  Empty when coalescing is off or impossible.
    PooledBuffer raw;
    bool coalescable = false;
    /// A fold changed `raw`, so `payload` is stale; the sender re-encodes
    /// just before transmission.
    bool needs_encode = false;
    /// Sequences of every logical write this entry carries (>= 1; grows as
    /// same-LBA writes fold in).  One replica ACK acknowledges them all.
    /// Split so the common unfolded entry allocates nothing.
    std::uint64_t first_covered = 0;
    std::vector<std::uint64_t> extra_covered;
    std::size_t covered_count() const { return 1 + extra_covered.size(); }
  };

  /// One heal message awaiting delivery: a resumed heal resends the same
  /// wire bytes (same sequence), so the replica's dedup absorbs overlap.
  struct ResyncFrame {
    std::uint64_t sequence;
    Bytes wire;
  };

  struct ReplicaLink {
    std::unique_ptr<Transport> transport;
    std::mutex mutex;  // serializes exchanges on this link
    // Logical timestamp of the newest write this replica has acked;
    // resync_replica() folds the parity log forward from here.
    std::atomic<std::uint64_t> acked_timestamp{0};

    // Fields below the transport are stable after add_replica().
    std::size_t index = 0;
    Rng jitter{1};  // decorrelates backoff across links (guarded by mutex)

    // Sender state below is guarded by the engine-wide mutex_.
    std::deque<OutMessage> outbox;
    /// LBA -> absolute outbox slot of the newest foldable entry.
    std::unordered_map<Lba, std::uint64_t> fold_slots;
    std::uint64_t first_slot = 0;  // absolute slot id of outbox.front()
    std::size_t in_flight = 0;     // popped but not yet completed
    bool failed = false;   // sticky until reattach_replica() or a heal
    bool unhealable = false;  // trap history gone; operator repair needed
    /// kWrite entries at or below this timestamp are covered by a heal's
    /// fold and complete immediately instead of queueing.
    std::uint64_t skip_below_ts = 0;

    // Heal state touched only by this link's sender thread (and by
    // reattach_replica under `mutex`).
    std::deque<ResyncFrame> resync_wire;  // un-acked heal messages
    std::uint64_t resync_upto = 0;        // fold window end of resync_wire
    std::uint32_t heal_failures = 0;
    std::chrono::steady_clock::time_point next_heal{};

    std::thread sender;

    // ---- Reactor-driven sender state (config.reactor_senders) ----------
    /// Event-machine phase, guarded by mutex_.  kIdle: nothing in flight,
    /// a pump may open a round.  kAwaitingAcks: a round was transmitted
    /// and replies are being collected by the message handler.  kBackoff:
    /// the round came back short (timeout / NAKs) and a wheel timer is
    /// sleeping out the retry backoff before the retransmit.  kHealing: a
    /// transient heal thread owns the link (handlers uninstalled, traffic
    /// held).  kExclusive: a blocking operator exchange (verify / resync /
    /// fetch) owns the link and reads replies via recv().
    enum class Phase { kIdle, kAwaitingAcks, kBackoff, kHealing, kExclusive };
    bool reactor_driven = false;  // guarded by mutex_; set at add_replica,
                                  // cleared only by a threaded fallback
    Phase phase = Phase::kIdle;   // guarded by mutex_
    bool pump_scheduled = false;  // a pump closure is queued (mutex_)
    /// The in-flight round: entries popped from the outbox awaiting acks.
    /// Guarded by the link mutex (mutators also hold mutex_ where they
    /// touch engine-wide state such as in_flight or outstanding_).
    std::vector<OutMessage> round;
    std::vector<bool> round_acked;     // per-entry outcome so far
    std::size_t round_attempt = 0;     // mirrors exchange_batch_locked's
    std::size_t round_sent = 0;        // frames sent this attempt
    std::size_t round_covered = 0;     // completions covered this attempt
    bool round_progress = false;       // an ack landed this attempt
    /// The link's single wheel timer (op_timeout, retry backoff, or an
    /// immediate reattach retransmit — exactly one purpose at a time,
    /// derived from `phase`).  Guarded by mutex_.
    TimerId timer = 0;
    bool timer_armed = false;
    /// Bumped on every arm/cancel; a stale wheel callback compares its
    /// captured epoch and returns without touching the link.
    std::atomic<std::uint64_t> timer_epoch{0};
    /// True while a heal thread owns the link.  Loop-thread callbacks
    /// check it lock-free so they never block on `mutex` behind a
    /// multi-second heal exchange.
    std::atomic<bool> healing{false};
  };

  /// Per-sequence completion bookkeeping (guarded by mutex_).
  struct PendingAck {
    std::size_t remaining = 0;   // links that have not completed it yet
    std::size_t wire_bytes = 0;  // canonical encoding size, for metrics
    bool dropped = false;        // some link failed to deliver it
  };

  /// One LBA stripe of the submit path (shard = lba & shard_mask_).  The
  /// shard lock serializes the read-old/write/enqueue critical section for
  /// its blocks only, so writers in different stripes never contend.
  /// Hot-path metrics live here (guarded by `mutex`) and are merged by
  /// metrics(), keeping the engine-wide mutex_ off the per-block path.
  struct alignas(64) WriteShard {
    std::mutex mutex;
    /// Sequence being submitted under this shard's lock (0 = none).  A
    /// lower bound is published BEFORE the global sequence counter is
    /// bumped and cleared after the message reaches the outboxes, so
    /// ack_watermark_locked() never advances the journal watermark past a
    /// write that is between fetch_add and distribute().
    std::atomic<std::uint64_t> submitting_seq{0};
    std::uint64_t writes = 0;
    std::uint64_t raw_bytes = 0;
    std::uint64_t payload_bytes = 0;
    Histogram payload_sizes;
    Histogram dirty_bytes;

    // ---- Recent-writes conflict window (config.read_from_replicas) -----
    // A seqlock ring of this stripe's latest (lba, sequence) pairs.  The
    // writer (replicate_block, under this shard's lock) publishes each
    // write into the next slot; classify_read() scans lock-free.  Slots
    // recycle FIFO, so if ANY slot holds `lba` the newest one found IS the
    // newest write to that lba; a complete miss means every write to that
    // lba either sank below the read floor before eviction or is covered
    // by `evicted_max` (the newest sequence ever overwritten while still
    // above the floor — the conservative bound for evicted history).
    static constexpr std::size_t kRecentRing = 256;
    struct RecentSlot {
      std::atomic<std::uint64_t> version{0};  // seqlock: odd = mid-update
      std::atomic<std::uint64_t> lba{0};
      std::atomic<std::uint64_t> sequence{0};
    };
    std::unique_ptr<RecentSlot[]> recent;   // kRecentRing slots; allocated
                                            //   only when offload is on
    std::uint64_t recent_next = 0;          // writer cursor (shard mutex)
    std::atomic<std::uint64_t> evicted_max{0};
  };

  /// RAII publisher for WriteShard::submitting_seq (see its comment).
  class SubmitSlot {
   public:
    SubmitSlot(WriteShard& shard, std::uint64_t lower_bound)
        : slot_(shard.submitting_seq) {
      slot_.store(lower_bound, std::memory_order_seq_cst);
    }
    void tighten(std::uint64_t sequence) {
      slot_.store(sequence, std::memory_order_seq_cst);
    }
    ~SubmitSlot() { slot_.store(0, std::memory_order_seq_cst); }

   private:
    std::atomic<std::uint64_t>& slot_;
  };

  void sender_main(ReplicaLink* link);
  /// Deliver a popped window to the replica with retry/reconnect per the
  /// RetryPolicy.  OK iff every entry was acked; `acked` records per-entry
  /// outcomes either way.  Link mutex must be held.
  Status exchange_batch_locked(ReplicaLink& link,
                               std::vector<OutMessage>& batch,
                               std::vector<bool>& acked);
  Result<Bytes> recv_reply_locked(ReplicaLink& link);
  /// Rewrite a NAK'd (NakReason::kNeedFullBlock) in-flight parity entry as
  /// a kRepairBlock carrying the block's full contents at the entry's own
  /// timestamp, so deltas queued behind it still telescope.  No-op (the
  /// next retry round converts) while a write is mid-flight to the trap
  /// log.  Link mutex must be held.
  void convert_to_repair_locked(OutMessage& entry);
  /// Sleep the retry backoff for `attempt` (1-based), waking early on stop.
  void retry_backoff(ReplicaLink& link, std::size_t attempt);
  /// Reactor-mode timed wait: park on a gate until the timer wheel fires
  /// it at `deadline`, or stop/reattach cancels it.  The wheel callback
  /// captures only the gate (never the engine), so a timer outliving the
  /// engine is a notify into the void, not a use-after-free.
  void reactor_wait_until(std::chrono::steady_clock::time_point deadline);
  /// Wake every parked gate (mutex_ held).  Gates are single-use, so a
  /// cancelled waiter simply re-checks link state and re-arms if needed.
  void cancel_gates_locked();
  /// Degraded-link recovery: reconnect, locate the replica (kHello), fold
  /// the trap log over the outage, ship it, rejoin the steady-state path.
  void attempt_heal(ReplicaLink* link);
  Status hello_locked(ReplicaLink& link, std::uint64_t& applied_ts);
  Status build_resync_locked(ReplicaLink& link, std::uint64_t replica_ts);
  void heal_failed(ReplicaLink* link, const Status& why);
  /// React to a kStaleEpoch NAK: a promoted successor owns the cluster
  /// now.  Marks the link unhealable, freezes the journal, sets the sticky
  /// worker error, and returns the kFailedPrecondition status the caller
  /// should propagate.  Takes mutex_ (callers hold at most the link mutex).
  Status fenced_by_replica(ReplicaLink& link, std::uint64_t replica_epoch);
  /// True when a failed link will recover on its own (mutex_ held).
  bool healable_locked(const ReplicaLink& link) const;
  /// Journal-append (if configured) and distribute to every outbox.
  /// `meta.payload` must be empty; the payload travels in `payload`.
  /// `submit_shard`, when non-null, is the shard whose submitting_seq slot
  /// guards this message; distribute() clears it once the message is
  /// registered so the read floor computed in the same critical section
  /// already covers a trivially-replicated (or instantly-acked) write.
  Status enqueue(const ReplicationMessage& meta, PooledBuffer payload,
                 PooledBuffer raw, WriteShard* submit_shard = nullptr);
  /// Fan a message out to every replica outbox (no journal append).
  Status distribute(const ReplicationMessage& meta, PooledBuffer payload,
                    PooledBuffer raw, WriteShard* submit_shard = nullptr);
  void append_to_outbox_locked(ReplicaLink& link,
                               const ReplicationMessage& meta,
                               const PooledBuffer& payload,
                               const PooledBuffer& raw,
                               bool coalescable);
  /// Frame and transmit one outbox entry with scatter-gather I/O: header
  /// encoded on the stack, payload frame shared from the pool, trailing
  /// CRC chained across both.  Re-encodes folded entries first.  Link
  /// mutex must be held.
  Status send_entry_locked(ReplicaLink& link, OutMessage& entry);
  /// Account one popped entry as acked or dropped by one link.
  void complete_locked(const OutMessage& item, bool acked);
  bool outboxes_below_capacity_locked() const;
  bool idle_locked() const;
  std::uint64_t ack_watermark_locked() const;
  /// Monotonically advance the journal's acked watermark.
  void advance_journal_watermark(std::uint64_t sequence);
  /// The per-block submit path; shard_for(lba).mutex must be held.
  Status write_block_locked(WriteShard& shard, Lba lba, ByteSpan data);
  /// Publish (lba, sequence) into the shard's conflict ring (shard mutex
  /// held); folds the evicted slot into evicted_max when it is still above
  /// the read floor.
  void record_recent_write_locked(WriteShard& shard, Lba lba,
                                  std::uint64_t sequence);
  /// Build and enqueue the kWrite message for one block (shard lock held).
  Status replicate_block(WriteShard& shard, Lba lba, ByteSpan new_block,
                         ByteSpan delta, std::size_t dirty);
  Status send_and_ack_locked(ReplicaLink& link, ByteSpan wire,
                             MessageKind expect_ack_of);
  /// Flat per-block verify+repair of one range on one link (link mutex
  /// must be held).  Adds repaired blocks to `repaired`.
  Status flat_verify_locked(ReplicaLink& link, Lba start, std::uint64_t count,
                            std::uint64_t& repaired);

  // ---- Reactor-driven sender path (config.reactor_senders) -------------
  /// Install message/close handlers on the link's transport.  False when
  /// the transport is not a ReactorTcpTransport (callers fall back to a
  /// threaded sender).  Link mutex must be held (or the link not yet
  /// published).
  bool install_reactor_link(ReplicaLink* link);
  /// Uninstall both handlers so an engine-initiated close (or a heal's
  /// transport swap) fires no callback.  Safe on any transport kind.
  void clear_link_handlers(ReplicaLink& link);
  /// Post a pump for this link unless one is queued or the link cannot
  /// make progress (mutex_ held).
  void schedule_pump_locked(ReplicaLink* link);
  /// Pop up to pipeline_depth entries into a round and transmit it; on a
  /// sticky-dead link, drop queued traffic instead (sender_main's
  /// already_failed path).  Runs under the sender guard.
  void pump_link(ReplicaLink* link);
  /// Message-handler fan-in: ACK / kAckBatch / NAK processing for the
  /// open round, closing it or scheduling a retransmit.
  void on_link_reply(ReplicaLink* link, Bytes reply);
  /// Close-handler fan-in: the connection died under the link.
  void on_link_closed(ReplicaLink* link, const Status& why);
  /// Wheel-timer fan-in: op_timeout expiry (kAwaitingAcks) or backoff
  /// expiry (kBackoff).
  void on_link_timer(ReplicaLink* link);
  /// Retransmit the round's un-acked entries (link mutex held, engine
  /// mutex not held).
  void resend_round(ReplicaLink* link);
  /// The round came back short: apply exchange_batch_locked's attempt
  /// bookkeeping and either arm the backoff timer or fail the round.
  /// Enters with mutex_ held via `lock` (and the link mutex held);
  /// releases mutex_.
  void round_retry_or_fail(ReplicaLink* link,
                           std::unique_lock<std::mutex>& lock,
                           const Status& why);
  /// Settle the round as delivered: release in_flight, advance the
  /// watermark, restart the pump.  Enters with mutex_ held via `lock`
  /// (and the link mutex held); releases mutex_.
  void finish_round(ReplicaLink* link, std::unique_lock<std::mutex>& lock);
  /// Settle the round after an unrecoverable attempt: complete entries
  /// with their per-entry outcomes and run sender_main's failure
  /// classification (degraded self-heal vs. sticky error).  Link mutex
  /// held, engine mutex NOT held.
  void fail_round(ReplicaLink* link, const Status& why);
  void arm_link_timer_locked(ReplicaLink* link,
                             std::chrono::steady_clock::time_point deadline);
  void cancel_link_timer_locked(ReplicaLink* link);
  /// Transient heal thread for a degraded reactor-driven link: waits out
  /// next_heal on the wheel, runs attempt_heal until the link recovers,
  /// then rejoins the reactor path (or becomes the threaded sender if the
  /// reconnect factory produced a non-reactor transport).
  void heal_main(ReplicaLink* link);
  /// Reinstall handlers and restart the pump after a heal.  False when
  /// the link must revert to a threaded sender.
  bool rejoin_reactor_link(ReplicaLink* link);
  /// Park the reactor machinery (wait out the open round, uninstall the
  /// message handler) so a blocking request/reply operator exchange can
  /// read replies via recv().  No-op for threaded links.
  void begin_link_exclusive(ReplicaLink* link);
  void end_link_exclusive(ReplicaLink* link);
  /// RAII wrapper over begin/end_link_exclusive.
  class LinkExclusive;
  /// The backoff delay before retry `attempt` (1-based) — the same
  /// exponential-plus-jitter schedule retry_backoff() sleeps.  Link mutex
  /// must be held (jitter state).
  std::chrono::steady_clock::duration retry_delay(ReplicaLink& link,
                                                  std::size_t attempt);

  /// Read one block under its stripe lock and enqueue it as a kSyncBlock
  /// (the shared body of full_sync / sync_blocks; does not drain).
  Status enqueue_sync_block(Lba lba, const Codec& codec, Bytes& scratch);

  /// Resolve config.write_shards (env/auto-size, power of two, clamp) and
  /// build the shard array.  Called once from each constructor.
  void init_shards();
  /// Advance the logical clock by 1µs; returns the new timestamp.
  std::uint64_t clock_tick();
  void drop_pending();
  WriteShard& shard_for(Lba lba) const {
    return *shards_[static_cast<std::size_t>(lba) & shard_mask_];
  }

  std::shared_ptr<BlockDevice> local_;
  RaidArray* raid_ = nullptr;    // non-null in RAID-4/5 tap mode
  Raid6Array* raid6_ = nullptr;  // non-null in RAID-6 tap mode
  EngineConfig config_;

  // LBA-striped submit locks.  Each shard serializes the read-old/write/
  // enqueue critical section for its own blocks — without that, two
  // concurrent writers hitting the same block would both diff against the
  // same old contents and the replica's XOR chain would no longer
  // telescope (delta2 would be A2 ⊕ A0 instead of A2 ⊕ A1).  Writers in
  // different stripes share nothing on the submit path but the outboxes.
  std::vector<std::unique_ptr<WriteShard>> shards_;
  std::size_t shard_mask_ = 0;  // shards_.size() - 1; size is a power of 2

  // Hot-path scratch pools: block-sized buffers (old block, delta,
  // coalesce copy) and codec output frames.  max_free=0 when
  // config.pool_buffers is off, which degenerates to plain heap traffic.
  mutable BufferPool block_pool_;
  mutable BufferPool frame_pool_;

  std::vector<std::unique_ptr<ReplicaLink>> replicas_;

  // Pending parity deltas captured by the RAID tap, keyed by LBA.
  struct TapDelta {
    Bytes delta;
    std::size_t dirty = 0;
  };
  mutable std::mutex tap_mutex_;
  std::unordered_map<Lba, TapDelta> tap_deltas_;

  // Outbox fan-out + sender coordination.
  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;   // producers <-> senders
  std::condition_variable drain_cv_;   // drain() waiters
  std::atomic<bool> stopping_{false};  // set under mutex_; read lock-free
  Status worker_error_;  // first replication failure, surfaced by drain()

  // Reactor-timer gates (config_.reactor mode): one per in-progress
  // backoff/heal wait, registered here so stop/reattach can cancel them.
  struct TimerGate {
    std::mutex m;
    std::condition_variable cv;
    bool fired = false;
    bool cancelled = false;
  };
  std::vector<std::shared_ptr<TimerGate>> gates_;  // guarded by mutex_

  /// Lifetime fence for reactor-sender callbacks.  Message/close
  /// handlers, wheel timers, and posted pumps capture this guard (never a
  /// bare `this`) and hold its lock for their whole run; the destructor
  /// nulls `engine` under the same lock, so teardown waits out any
  /// in-flight callback and everything that fires later sees null and
  /// returns.  One guard serializes all reactor-sender callbacks — they
  /// contend on mutex_ anyway, and sends stay on the (non-blocking)
  /// loop-thread enqueue path.
  struct SenderGuard {
    std::mutex m;
    PrinsEngine* engine = nullptr;
  };
  std::shared_ptr<SenderGuard> sender_guard_;

  // Sequences distributed but not yet completed by every link, ordered so
  // the journal watermark is the smallest outstanding sequence minus one.
  std::map<std::uint64_t, PendingAck> outstanding_;
  // Recycled outstanding_ nodes (guarded by mutex_, bounded by
  // queue_capacity): erase stashes the node, the next distribute reuses
  // it, so steady-state ack bookkeeping never touches the heap.
  std::vector<std::map<std::uint64_t, PendingAck>::node_type> ack_node_pool_;
  std::uint64_t last_distributed_seq_ = 0;
  /// Set once any message is dropped (link failure): the journal watermark
  /// must never advance past an undelivered write, so it freezes until a
  /// new engine replays the journal.
  bool journal_frozen_ = false;
  std::mutex journal_mutex_;  // serializes mark_acked calls
  std::uint64_t journal_marked_ = 0;  // guarded by journal_mutex_

  std::atomic<std::uint64_t> next_sequence_{1};

  /// Highest all-replicas-acked sequence (see read_floor()).  CAS-maxed
  /// inside ack_watermark_locked() — mutable because that path is const.
  mutable std::atomic<std::uint64_t> read_floor_{0};
  // ReadRouter counters (relaxed; merged by metrics()).
  std::atomic<std::uint64_t> replica_reads_{0};
  std::atomic<std::uint64_t> stale_read_retries_{0};
  std::atomic<std::uint64_t> read_conflicts_local_{0};

  /// Combined logical-clock / pending-append state, mutated with single
  /// atomic RMWs so heals can snapshot "(no trap appends in flight, clock
  /// = K)" without a global lock.  Low 48 bits (kClockMask): the logical
  /// clock, advancing 1µs per replicated write — 2^48 writes is ~8.9 years
  /// at one per microsecond, so carry into the high bits is not a concern.
  /// High 16 bits: writes that took a timestamp but have not yet landed in
  /// the trap log; a heal must not snapshot its fold window while any are
  /// pending, or the fold would silently miss them.
  static constexpr std::uint64_t kClockMask = (std::uint64_t{1} << 48) - 1;
  static constexpr std::uint64_t kPendingOne = std::uint64_t{1} << 48;
  std::atomic<std::uint64_t> clock_state_{0};

  /// Submit-path acquisitions of mutex_ (see debug_submit_global_lock_count).
  std::atomic<std::uint64_t> submit_global_locks_{0};

  TrapLog trap_log_;  // populated when config_.keep_trap_log

  // Engine-wide metrics (guarded by mutex_).  Per-write counters live in
  // the shards; metrics() merges both.
  EngineMetrics metrics_;
};

}  // namespace prins
