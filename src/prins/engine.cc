#include "prins/engine.h"

#include <algorithm>
#include <cassert>

#include "common/crc32c.h"
#include "common/logging.h"
#include "parity/xor.h"
#include "prins/verify.h"

namespace prins {

PrinsEngine::PrinsEngine(std::shared_ptr<BlockDevice> local,
                         EngineConfig config)
    : local_(std::move(local)), config_(config) {
  assert(local_ != nullptr);
  assert(!config_.use_raid_tap &&
         "use the RaidArray constructor for tap mode");
  worker_ = std::thread([this] { worker_main(); });
}

PrinsEngine::PrinsEngine(std::shared_ptr<RaidArray> local_raid,
                         EngineConfig config)
    : local_(local_raid), raid_(local_raid.get()), config_(config) {
  assert(local_ != nullptr);
  config_.use_raid_tap = true;
  raid_->set_parity_observer([this](Lba lba, ByteSpan delta) {
    std::lock_guard lock(tap_mutex_);
    tap_deltas_[lba] = to_bytes(delta);
  });
  worker_ = std::thread([this] { worker_main(); });
}

PrinsEngine::PrinsEngine(std::shared_ptr<Raid6Array> local_raid6,
                         EngineConfig config)
    : local_(local_raid6), raid6_(local_raid6.get()), config_(config) {
  assert(local_ != nullptr);
  config_.use_raid_tap = true;
  raid6_->set_parity_observer([this](Lba lba, ByteSpan delta) {
    std::lock_guard lock(tap_mutex_);
    tap_deltas_[lba] = to_bytes(delta);
  });
  worker_ = std::thread([this] { worker_main(); });
}

PrinsEngine::~PrinsEngine() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    queue_cv_.notify_all();
  }
  if (worker_.joinable()) worker_.join();
  if (raid_ != nullptr) raid_->set_parity_observer(nullptr);
  if (raid6_ != nullptr) raid6_->set_parity_observer(nullptr);
  for (auto& link : replicas_) link->transport->close();
}

void PrinsEngine::add_replica(std::unique_ptr<Transport> link) {
  assert(link != nullptr);
  auto replica = std::make_unique<ReplicaLink>();
  replica->transport = std::move(link);
  std::lock_guard lock(mutex_);
  replicas_.push_back(std::move(replica));
}

std::size_t PrinsEngine::replica_count() const {
  std::lock_guard lock(mutex_);
  return replicas_.size();
}

Status PrinsEngine::reattach_replica(std::size_t index,
                                     std::unique_ptr<Transport> link) {
  if (link == nullptr) return invalid_argument("null transport");
  ReplicaLink* replica = nullptr;
  {
    std::lock_guard lock(mutex_);
    if (index >= replicas_.size()) {
      return invalid_argument("no replica at index " + std::to_string(index));
    }
    replica = replicas_[index].get();
  }
  {
    // Take the link mutex so the worker is not mid-exchange on the old
    // transport while we swap it.
    std::lock_guard link_lock(replica->mutex);
    replica->transport->close();
    replica->transport = std::move(link);
  }
  std::lock_guard lock(mutex_);
  worker_error_ = Status::ok();
  return Status::ok();
}

Status PrinsEngine::write(Lba lba, ByteSpan data) {
  PRINS_RETURN_IF_ERROR(check_io(lba, data.size()));
  const std::uint32_t bs = block_size();
  const std::uint64_t blocks = data.size() / bs;

  std::lock_guard write_lock(write_mutex_);
  for (std::uint64_t i = 0; i < blocks; ++i) {
    const Lba b = lba + i;
    const ByteSpan new_block = data.subspan(i * bs, bs);
    Bytes delta;
    const bool need_delta = ships_parity(config_.policy) ||
                            config_.keep_trap_log || raid_ != nullptr ||
                            raid6_ != nullptr;

    if (raid_ != nullptr || raid6_ != nullptr) {
      // Tap mode: the array computes P' during its small-write path.
      PRINS_RETURN_IF_ERROR(local_->write(b, new_block));
      std::lock_guard lock(tap_mutex_);
      auto it = tap_deltas_.find(b);
      if (it == tap_deltas_.end()) {
        return internal_error("RAID tap produced no delta for block " +
                              std::to_string(b));
      }
      delta = std::move(it->second);
      tap_deltas_.erase(it);
    } else {
      if (need_delta) {
        Bytes old_block(bs);
        PRINS_RETURN_IF_ERROR(local_->read(b, old_block));
        PRINS_RETURN_IF_ERROR(local_->write(b, new_block));
        delta = parity_delta(new_block, old_block);
      } else {
        PRINS_RETURN_IF_ERROR(local_->write(b, new_block));
      }
    }
    PRINS_RETURN_IF_ERROR(replicate_block(b, new_block, delta));
  }
  return Status::ok();
}

Status PrinsEngine::replicate_block(Lba lba, ByteSpan new_block,
                                    ByteSpan delta) {
  const Codec& codec = payload_codec(config_.policy);
  const ByteSpan raw = ships_parity(config_.policy) ? delta : new_block;

  ReplicationMessage msg;
  msg.kind = MessageKind::kWrite;
  msg.policy = config_.policy;
  msg.block_size = block_size();
  msg.lba = lba;
  msg.payload = encode_frame(codec, raw);

  {
    std::lock_guard lock(mutex_);
    msg.sequence = next_sequence_++;
    msg.timestamp_us = ++logical_clock_us_;
    metrics_.writes += 1;
    metrics_.raw_bytes += new_block.size();
    metrics_.payload_bytes += msg.payload.size();
    metrics_.payload_sizes.record(msg.payload.size());
    if (ships_parity(config_.policy)) {
      metrics_.dirty_bytes.record(count_nonzero(delta));
    }
  }
  if (config_.keep_trap_log) {
    PRINS_RETURN_IF_ERROR(trap_log_.append(lba, msg.timestamp_us, delta));
  }
  return enqueue(std::move(msg));
}

Status PrinsEngine::enqueue(ReplicationMessage message) {
  if (config_.journal != nullptr) {
    // Durable before queued: a crash between these two steps re-sends the
    // message (at-least-once), never loses it.
    PRINS_RETURN_IF_ERROR(config_.journal->append(message));
  }
  std::unique_lock lock(mutex_);
  queue_cv_.wait(lock, [this] {
    return stopping_ || queue_.size() < config_.queue_capacity;
  });
  if (stopping_) return unavailable("engine is shutting down");
  if (!worker_error_.is_ok()) return worker_error_;
  queue_.push_back(std::move(message));
  queue_cv_.notify_all();
  return Status::ok();
}

Status PrinsEngine::send_and_ack_locked(ReplicaLink& link, ByteSpan wire,
                                        MessageKind /*expect_ack_of*/) {
  PRINS_RETURN_IF_ERROR(link.transport->send(wire));
  PRINS_ASSIGN_OR_RETURN(Bytes reply, link.transport->recv());
  PRINS_ASSIGN_OR_RETURN(ReplicationMessage ack,
                         ReplicationMessage::decode(reply));
  if (ack.kind != MessageKind::kAck) {
    return failed_precondition("replica sent non-ACK reply");
  }
  return Status::ok();
}

void PrinsEngine::worker_main() {
  const std::size_t window = std::max<std::size_t>(1, config_.pipeline_depth);
  struct BatchItem {
    Bytes wire;
    std::uint64_t timestamp;
    std::uint64_t sequence;
  };
  std::vector<BatchItem> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock lock(mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping with nothing left
      // Pop up to one pipeline window's worth of messages.
      while (!queue_.empty() && batch.size() < window) {
        batch.push_back(BatchItem{queue_.front().encode(),
                                  queue_.front().timestamp_us,
                                  queue_.front().sequence});
        queue_.pop_front();
        ++in_flight_;
      }
      queue_cv_.notify_all();  // wake producers blocked on capacity
    }

    // Per replica: stream the whole window, then collect its ACKs.  The
    // replica applies in order, so the window preserves write ordering.
    Status result = Status::ok();
    std::uint64_t acks = 0;
    for (auto& link : replicas_) {
      std::lock_guard link_lock(link->mutex);
      std::size_t sent = 0;
      Status s = Status::ok();
      for (const BatchItem& item : batch) {
        s = link->transport->send(item.wire);
        if (!s.is_ok()) break;
        ++sent;
      }
      for (std::size_t i = 0; i < sent; ++i) {
        auto reply = link->transport->recv();
        if (!reply.is_ok()) {
          s = reply.status();
          break;
        }
        auto ack = ReplicationMessage::decode(*reply);
        if (!ack.is_ok()) {
          s = ack.status();
          break;
        }
        if (ack->kind != MessageKind::kAck) {
          s = failed_precondition("replica sent non-ACK reply");
          break;
        }
        link->acked_timestamp.store(batch[i].timestamp,
                                    std::memory_order_relaxed);
        ++acks;
      }
      if (!s.is_ok() && result.is_ok()) result = s;
    }

    if (result.is_ok() && config_.journal != nullptr && !batch.empty()) {
      std::uint64_t max_seq = 0;
      for (const BatchItem& item : batch) {
        max_seq = std::max(max_seq, item.sequence);
      }
      Status journal_status = config_.journal->mark_acked(max_seq);
      if (!journal_status.is_ok()) result = journal_status;
    }

    {
      std::lock_guard lock(mutex_);
      in_flight_ -= batch.size();
      metrics_.acks += acks;
      if (result.is_ok()) {
        for (const BatchItem& item : batch) {
          metrics_.message_bytes += item.wire.size();
        }
      } else if (worker_error_.is_ok()) {
        worker_error_ = result;
        PRINS_LOG(kError) << "replication failed: " << result.to_string();
      }
      if (queue_.empty() && in_flight_ == 0) drain_cv_.notify_all();
    }
  }
}

Status PrinsEngine::drain() {
  std::unique_lock lock(mutex_);
  drain_cv_.wait(lock, [this] {
    return (queue_.empty() && in_flight_ == 0) || stopping_;
  });
  return worker_error_;
}

Status PrinsEngine::flush() {
  PRINS_RETURN_IF_ERROR(drain());
  return local_->flush();
}

Status PrinsEngine::full_sync() {
  const std::uint32_t bs = block_size();
  Bytes block(bs);
  const Codec& codec = codec_for(CodecId::kLz);
  for (Lba lba = 0; lba < num_blocks(); ++lba) {
    PRINS_RETURN_IF_ERROR(local_->read(lba, block));
    ReplicationMessage msg;
    msg.kind = MessageKind::kSyncBlock;
    msg.policy = config_.policy;
    msg.block_size = bs;
    msg.lba = lba;
    msg.payload = encode_frame(codec, block);
    {
      std::lock_guard lock(mutex_);
      msg.sequence = next_sequence_++;
      msg.timestamp_us = logical_clock_us_;  // sync is not a logical write
    }
    PRINS_RETURN_IF_ERROR(enqueue(std::move(msg)));
  }
  return drain();
}

Status PrinsEngine::flat_verify_locked(ReplicaLink& link, Lba start,
                                       std::uint64_t count,
                                       std::uint64_t& repaired) {
  const std::uint32_t bs = block_size();
  constexpr std::uint64_t kBatch = 1024;  // checksums per request message
  Bytes block(bs);
  for (std::uint64_t off = 0; off < count; off += kBatch) {
    const std::uint64_t n = std::min(kBatch, count - off);
    std::vector<BlockChecksum> sums;
    sums.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      const Lba lba = start + off + i;
      PRINS_RETURN_IF_ERROR(local_->read(lba, block));
      sums.push_back(BlockChecksum{lba, crc32c(block)});
    }
    ReplicationMessage req;
    req.kind = MessageKind::kVerifyRequest;
    req.block_size = bs;
    req.payload = pack_checksums(sums);
    PRINS_RETURN_IF_ERROR(link.transport->send(req.encode()));

    PRINS_ASSIGN_OR_RETURN(Bytes reply_wire, link.transport->recv());
    PRINS_ASSIGN_OR_RETURN(ReplicationMessage reply,
                           ReplicationMessage::decode(reply_wire));
    if (reply.kind != MessageKind::kVerifyReply) {
      return failed_precondition("replica sent non-verify reply");
    }
    PRINS_ASSIGN_OR_RETURN(std::vector<std::uint64_t> bad,
                           unpack_lbas(reply.payload));
    for (std::uint64_t lba : bad) {
      PRINS_RETURN_IF_ERROR(local_->read(lba, block));
      ReplicationMessage repair;
      repair.kind = MessageKind::kRepairBlock;
      repair.block_size = bs;
      repair.lba = lba;
      repair.payload = encode_frame(codec_for(CodecId::kLz), block);
      PRINS_RETURN_IF_ERROR(send_and_ack_locked(link, repair.encode(),
                                                MessageKind::kRepairBlock));
      ++repaired;
    }
  }
  return Status::ok();
}

Result<std::uint64_t> PrinsEngine::verify_and_repair(Lba start,
                                                     std::uint64_t count) {
  if (start >= num_blocks() || count > num_blocks() - start) {
    return out_of_range("verify range exceeds device");
  }
  PRINS_RETURN_IF_ERROR(drain());

  std::uint64_t repaired = 0;
  for (auto& link : replicas_) {
    std::lock_guard link_lock(link->mutex);
    PRINS_RETURN_IF_ERROR(flat_verify_locked(*link, start, count, repaired));
  }
  return repaired;
}

Result<std::uint64_t> PrinsEngine::verify_and_repair_hierarchical(
    Lba start, std::uint64_t count) {
  if (start >= num_blocks() || count > num_blocks() - start) {
    return out_of_range("verify range exceeds device");
  }
  PRINS_RETURN_IF_ERROR(drain());

  constexpr unsigned kFanout = 16;       // subranges per split
  constexpr std::uint64_t kLeaf = 64;    // blocks: below this, go flat

  std::uint64_t repaired = 0;
  for (auto& link : replicas_) {
    std::lock_guard link_lock(link->mutex);
    std::vector<BlockRange> frontier{BlockRange{start, count}};
    std::vector<BlockRange> leaves;

    while (!frontier.empty()) {
      // Ask the replica to fingerprint the whole frontier in one message.
      ReplicationMessage req;
      req.kind = MessageKind::kHashRequest;
      req.block_size = block_size();
      req.payload = pack_ranges(frontier);
      PRINS_RETURN_IF_ERROR(link->transport->send(req.encode()));
      PRINS_ASSIGN_OR_RETURN(Bytes reply_wire, link->transport->recv());
      PRINS_ASSIGN_OR_RETURN(ReplicationMessage reply,
                             ReplicationMessage::decode(reply_wire));
      if (reply.kind != MessageKind::kHashReply) {
        return failed_precondition("replica sent non-hash reply");
      }
      PRINS_ASSIGN_OR_RETURN(std::vector<std::uint64_t> remote,
                             unpack_hashes(reply.payload));
      if (remote.size() != frontier.size()) {
        return corruption("hash reply count mismatch");
      }

      std::vector<BlockRange> next;
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        const BlockRange& range = frontier[i];
        PRINS_ASSIGN_OR_RETURN(std::uint64_t local,
                               hash_block_range(*local_, range));
        if (local == remote[i]) continue;  // range agrees; skip entirely
        if (range.count <= kLeaf) {
          leaves.push_back(range);
          continue;
        }
        // Split the disagreeing range into kFanout children.
        const std::uint64_t step =
            (range.count + kFanout - 1) / kFanout;
        for (std::uint64_t off = 0; off < range.count; off += step) {
          next.push_back(BlockRange{
              range.lba + off, std::min(step, range.count - off)});
        }
      }
      frontier = std::move(next);
    }

    for (const BlockRange& leaf : leaves) {
      PRINS_RETURN_IF_ERROR(
          flat_verify_locked(*link, leaf.lba, leaf.count, repaired));
    }
  }
  return repaired;
}

Status PrinsEngine::replay_journal() {
  if (config_.journal == nullptr) {
    return failed_precondition("engine has no journal configured");
  }
  PRINS_ASSIGN_OR_RETURN(std::vector<ReplicationMessage> pending,
                         config_.journal->pending());
  {
    // Fast-forward counters past everything ever journaled so new writes
    // do not collide with replayed sequences.
    std::lock_guard lock(mutex_);
    const std::uint64_t max_seq = config_.journal->max_sequence();
    next_sequence_ = std::max(next_sequence_, max_seq + 1);
    for (const auto& msg : pending) {
      logical_clock_us_ = std::max(logical_clock_us_, msg.timestamp_us);
    }
  }
  for (auto& msg : pending) {
    // Re-append suppressed: the message is already in the journal.
    std::unique_lock lock(mutex_);
    queue_cv_.wait(lock, [this] {
      return stopping_ || queue_.size() < config_.queue_capacity;
    });
    if (stopping_) return unavailable("engine is shutting down");
    queue_.push_back(std::move(msg));
    queue_cv_.notify_all();
  }
  return Status::ok();
}

Result<std::uint64_t> PrinsEngine::resync_replica(std::size_t index) {
  if (!config_.keep_trap_log) {
    return failed_precondition(
        "resync_replica requires EngineConfig::keep_trap_log");
  }
  ReplicaLink* link = nullptr;
  {
    std::lock_guard lock(mutex_);
    if (index >= replicas_.size()) {
      return invalid_argument("no replica at index " + std::to_string(index));
    }
    link = replicas_[index].get();
  }
  PRINS_RETURN_IF_ERROR(drain());  // quiesce the worker

  const std::uint64_t since =
      link->acked_timestamp.load(std::memory_order_relaxed);
  const std::uint32_t bs = block_size();
  const Bytes zeros(bs, 0);
  std::uint64_t resynced = 0;

  std::lock_guard link_lock(link->mutex);
  std::uint64_t newest = since;
  for (Lba lba : trap_log_.blocks_changed_since(since)) {
    // Fold every delta the replica missed: XOR of entries newer than
    // `since` == A_now ⊕ A_since (recover_block on a zero buffer).
    PRINS_ASSIGN_OR_RETURN(Bytes fold,
                           trap_log_.recover_block(lba, since, zeros));
    if (all_zero(fold)) continue;  // missed writes cancelled out

    ReplicationMessage msg;
    msg.kind = MessageKind::kWrite;
    msg.policy = ReplicationPolicy::kPrinsRle;
    msg.block_size = bs;
    msg.lba = lba;
    msg.payload = encode_frame(codec_for(CodecId::kZeroRle), fold);
    {
      std::lock_guard lock(mutex_);
      msg.sequence = next_sequence_++;
      msg.timestamp_us = logical_clock_us_;
      newest = logical_clock_us_;
    }
    PRINS_RETURN_IF_ERROR(
        send_and_ack_locked(*link, msg.encode(), msg.kind));
    ++resynced;
  }
  link->acked_timestamp.store(newest, std::memory_order_relaxed);
  return resynced;
}

EngineMetrics PrinsEngine::metrics() const {
  std::lock_guard lock(mutex_);
  return metrics_;
}

std::string PrinsEngine::describe() const {
  return "prins-engine[" + std::string(policy_name(config_.policy)) + "](" +
         local_->describe() + ")";
}

}  // namespace prins
