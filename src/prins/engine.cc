#include "prins/engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>

#include "common/crc32c.h"
#include "common/endian.h"
#include "common/env.h"
#include "common/logging.h"
#include "net/reactor_tcp.h"
#include "parity/xor.h"
#include "prins/verify.h"

namespace prins {
namespace {

std::size_t resolve_write_shards(std::size_t requested) {
  std::size_t n = requested;
  if (n == 0) {
    n = parse_env_size("PRINS_WRITE_SHARDS", 1, 64).value_or(0);
    if (n == 0) n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  n = std::min<std::size_t>(n, 64);
  std::size_t pow2 = 1;
  while (pow2 < n) pow2 <<= 1;
  return pow2;
}

// Codec frames add at most a small header plus bounded expansion over the
// raw payload; reserving a bit beyond the block size keeps steady-state
// frame encodes from growing the pooled buffer.
std::size_t frame_capacity_for(std::size_t block_size) {
  return block_size + block_size / 8 + 64;
}

}  // namespace

PrinsEngine::PrinsEngine(std::shared_ptr<BlockDevice> local,
                         EngineConfig config)
    : local_(std::move(local)),
      config_(config),
      block_pool_(local_->block_size(),
                  config_.pool_buffers ? config_.pool_max_free : 0),
      frame_pool_(frame_capacity_for(local_->block_size()),
                  config_.pool_buffers ? config_.pool_max_free : 0) {
  assert(local_ != nullptr);
  assert(!config_.use_raid_tap &&
         "use the RaidArray constructor for tap mode");
  init_shards();
}

PrinsEngine::PrinsEngine(std::shared_ptr<RaidArray> local_raid,
                         EngineConfig config)
    : local_(local_raid),
      raid_(local_raid.get()),
      config_(config),
      block_pool_(local_->block_size(),
                  config_.pool_buffers ? config_.pool_max_free : 0),
      frame_pool_(frame_capacity_for(local_->block_size()),
                  config_.pool_buffers ? config_.pool_max_free : 0) {
  assert(local_ != nullptr);
  config_.use_raid_tap = true;
  init_shards();
  raid_->set_parity_observer(
      [this](Lba lba, ByteSpan delta, std::size_t dirty) {
        std::lock_guard lock(tap_mutex_);
        tap_deltas_[lba] = TapDelta{to_bytes(delta), dirty};
      });
}

PrinsEngine::PrinsEngine(std::shared_ptr<Raid6Array> local_raid6,
                         EngineConfig config)
    : local_(local_raid6),
      raid6_(local_raid6.get()),
      config_(config),
      block_pool_(local_->block_size(),
                  config_.pool_buffers ? config_.pool_max_free : 0),
      frame_pool_(frame_capacity_for(local_->block_size()),
                  config_.pool_buffers ? config_.pool_max_free : 0) {
  assert(local_ != nullptr);
  config_.use_raid_tap = true;
  init_shards();
  raid6_->set_parity_observer(
      [this](Lba lba, ByteSpan delta, std::size_t dirty) {
        std::lock_guard lock(tap_mutex_);
        tap_deltas_[lba] = TapDelta{to_bytes(delta), dirty};
      });
}

void PrinsEngine::init_shards() {
  const std::size_t n = resolve_write_shards(config_.write_shards);
  config_.write_shards = n;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<WriteShard>();
    if (config_.read_from_replicas) {
      shard->recent =
          std::make_unique<WriteShard::RecentSlot[]>(WriteShard::kRecentRing);
    }
    shards_.push_back(std::move(shard));
  }
  shard_mask_ = n - 1;
  if (config_.reactor_senders && config_.reactor == nullptr) {
    PRINS_LOG(kWarn) << "EngineConfig::reactor_senders requires a reactor; "
                        "falling back to threaded senders";
    config_.reactor_senders = false;
  }
  sender_guard_ = std::make_shared<SenderGuard>();
  sender_guard_->engine = this;
}

std::uint64_t PrinsEngine::clock_tick() {
  return (clock_state_.fetch_add(1, std::memory_order_seq_cst) & kClockMask) +
         1;
}

void PrinsEngine::drop_pending() {
  // Heals poll clock_state_ on a short wait_for, so no notify is needed —
  // the hot path stays signal-free.
  clock_state_.fetch_sub(kPendingOne, std::memory_order_acq_rel);
}

PrinsEngine::~PrinsEngine() {
  // Silence the reactor-sender callbacks first: each message/close
  // handler, wheel timer, and posted pump holds the guard lock for its
  // whole run, so once `engine` is nulled under that lock, none is in
  // flight and none will start.
  {
    std::lock_guard g(sender_guard_->m);
    sender_guard_->engine = nullptr;
  }
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    queue_cv_.notify_all();
    cancel_gates_locked();
    for (auto& link : replicas_) {
      if (link->reactor_driven) cancel_link_timer_locked(link.get());
    }
  }
  for (auto& link : replicas_) {
    if (link->sender.joinable()) link->sender.join();
  }
  if (raid_ != nullptr) raid_->set_parity_observer(nullptr);
  if (raid6_ != nullptr) raid6_->set_parity_observer(nullptr);
  for (auto& link : replicas_) {
    clear_link_handlers(*link);
    link->transport->close();
  }
}

void PrinsEngine::add_replica(std::unique_ptr<Transport> link) {
  assert(link != nullptr);
  auto replica = std::make_unique<ReplicaLink>();
  replica->transport = std::move(link);
  ReplicaLink* raw = replica.get();
  {
    std::lock_guard lock(mutex_);
    raw->index = replicas_.size();
    raw->jitter = Rng(0x9e3779b97f4a7c15ull + raw->index);
    replicas_.push_back(std::move(replica));
  }
  if (config_.reactor_senders && install_reactor_link(raw)) {
    // Reactor-driven link: no sender thread.  A backlog queued before this
    // link existed is impossible (outboxes are per-link), so the first
    // distribute() schedules the first pump.
    std::lock_guard lock(mutex_);
    raw->reactor_driven = true;
    return;
  }
  raw->sender = std::thread([this, raw] { sender_main(raw); });
}

std::size_t PrinsEngine::replica_count() const {
  std::lock_guard lock(mutex_);
  return replicas_.size();
}

Status PrinsEngine::reattach_replica(std::size_t index,
                                     std::unique_ptr<Transport> link) {
  if (link == nullptr) return invalid_argument("null transport");
  ReplicaLink* replica = nullptr;
  {
    std::lock_guard lock(mutex_);
    if (index >= replicas_.size()) {
      return invalid_argument("no replica at index " + std::to_string(index));
    }
    replica = replicas_[index].get();
  }
  bool was_reactor = false;
  {
    // Take the link mutex so its sender is not mid-exchange on the old
    // transport while we swap it.
    std::lock_guard link_lock(replica->mutex);
    {
      std::lock_guard lock(mutex_);
      was_reactor = replica->reactor_driven;
    }
    // An engine-initiated close must not fire the old transport's close
    // handler into fail_round.
    if (was_reactor) clear_link_handlers(*replica);
    replica->transport->close();
    replica->transport = std::move(link);
    replica->heal_failures = 0;
  }
  {
    std::lock_guard lock(mutex_);
    replica->failed = false;
    replica->unhealable = false;
    // Clear the sticky error only once *every* link is healthy again:
    // reattaching replica 0 must not silently absolve a still-failed
    // replica 1.
    bool any_failed = false;
    for (const auto& r : replicas_) any_failed |= r->failed;
    if (!any_failed) worker_error_ = Status::ok();
    queue_cv_.notify_all();
    // Reactor mode: the sender may be sleeping out a heal backoff on a
    // gate; cancel it so the fresh link is picked up now, not at the old
    // deadline.
    cancel_gates_locked();
  }
  if (!was_reactor) return Status::ok();

  // Re-arm the reactor sender on the fresh transport.
  std::lock_guard link_lock(replica->mutex);
  std::unique_lock lock(mutex_);
  if (replica->phase == ReplicaLink::Phase::kHealing ||
      replica->phase == ReplicaLink::Phase::kExclusive) {
    // kHealing: the heal thread owns the link; the gate cancel above woke
    // it, it will observe failed == false and rejoin the reactor path
    // itself (installing handlers on this fresh transport).  kExclusive:
    // an operator exchange owns the link; end_link_exclusive reinstalls.
    return Status::ok();
  }
  cancel_link_timer_locked(replica);
  lock.unlock();
  if (!install_reactor_link(replica)) {
    // The fresh transport is not reactor-capable: revert this link to a
    // threaded sender.  Un-acked round entries go back to the outbox
    // front — sender_main resumes from there, it does not adopt rounds.
    lock.lock();
    replica->reactor_driven = false;
    replica->phase = ReplicaLink::Phase::kIdle;
    replica->in_flight -= replica->round.size();
    for (std::size_t i = replica->round.size(); i-- > 0;) {
      if (replica->round_acked[i]) continue;  // settled at ack time
      replica->outbox.push_front(std::move(replica->round[i]));
      --replica->first_slot;
    }
    replica->round.clear();
    replica->round_acked.clear();
    replica->round_attempt = 0;
    replica->round_sent = 0;
    replica->round_covered = 0;
    replica->round_progress = false;
    queue_cv_.notify_all();
    lock.unlock();
    if (replica->sender.joinable()) replica->sender.join();
    replica->sender = std::thread([this, replica] { sender_main(replica); });
    return Status::ok();
  }
  lock.lock();
  if (!replica->round.empty()) {
    // A round was mid-flight when the old transport died: retransmit its
    // un-acked entries on the fresh one (replica dedup absorbs overlap).
    // An immediate wheel timer reuses the kBackoff resend path.
    replica->phase = ReplicaLink::Phase::kBackoff;
    arm_link_timer_locked(replica, std::chrono::steady_clock::now());
  } else {
    replica->phase = ReplicaLink::Phase::kIdle;
    schedule_pump_locked(replica);
  }
  return Status::ok();
}

Status PrinsEngine::write(Lba lba, ByteSpan data) {
  PRINS_RETURN_IF_ERROR(check_io(lba, data.size()));
  const std::uint32_t bs = block_size();
  const std::uint64_t blocks = data.size() / bs;

  for (std::uint64_t i = 0; i < blocks; ++i) {
    const Lba b = lba + i;
    WriteShard& shard = shard_for(b);
    // Writers to different stripes run fully concurrently; only same-block
    // writers serialize (which the replica XOR chains require).
    std::lock_guard shard_lock(shard.mutex);
    PRINS_RETURN_IF_ERROR(
        write_block_locked(shard, b, data.subspan(i * bs, bs)));
  }
  return Status::ok();
}

Status PrinsEngine::write_block_locked(WriteShard& shard, Lba b,
                                       ByteSpan new_block) {
  const std::uint32_t bs = block_size();
  PooledBuffer delta;
  Bytes tap_delta;
  ByteSpan delta_span;
  std::size_t dirty = 0;
  const bool need_delta = ships_parity(config_.policy) ||
                          config_.keep_trap_log || raid_ != nullptr ||
                          raid6_ != nullptr;

  // From here until the delta lands in the trap log, the device is ahead
  // of the log: a heal snapshotting its fold window must wait for the
  // window to clear (clock_state_'s pending bits), and the NAK-repair
  // converter skips its round while this stripe is locked.  The matching
  // decrement is in replicate_block(); error paths below abandon the
  // window themselves.
  if (config_.keep_trap_log) {
    clock_state_.fetch_add(kPendingOne, std::memory_order_acq_rel);
  }
  const auto abandon_pending = [this] {
    if (config_.keep_trap_log) drop_pending();
  };

  if (raid_ != nullptr || raid6_ != nullptr) {
    // Tap mode: the array computes P' (and its dirty count) during its
    // small-write path.
    const Status wrote = local_->write(b, new_block);
    // Consume the tap entry on *every* exit path — a stale delta left
    // behind by a failed write would poison the next write to this LBA.
    bool have_tap = false;
    {
      std::lock_guard lock(tap_mutex_);
      auto it = tap_deltas_.find(b);
      if (it != tap_deltas_.end()) {
        tap_delta = std::move(it->second.delta);
        dirty = it->second.dirty;
        have_tap = true;
        tap_deltas_.erase(it);
      }
    }
    if (!wrote.is_ok()) {
      abandon_pending();
      return wrote;
    }
    if (!have_tap) {
      abandon_pending();
      return internal_error("RAID tap produced no delta for block " +
                            std::to_string(b));
    }
    delta_span = tap_delta;
  } else if (need_delta) {
    PooledBuffer old_block = block_pool_.acquire(bs);
    Status step = local_->read(b, old_block.mutable_bytes());
    if (step.is_ok()) step = local_->write(b, new_block);
    if (!step.is_ok()) {
      abandon_pending();
      return step;
    }
    // Fused kernel: one pass produces both P' and its dirty-byte count.
    delta = block_pool_.acquire(bs);
    dirty = xor_to_and_count(delta.mutable_bytes(), new_block,
                             old_block.span());
    delta_span = delta.span();
  } else {
    const Status wrote = local_->write(b, new_block);
    if (!wrote.is_ok()) {
      abandon_pending();
      return wrote;
    }
  }
  return replicate_block(shard, b, new_block, delta_span, dirty);
}

Status PrinsEngine::replicate_block(WriteShard& shard, Lba lba,
                                    ByteSpan new_block, ByteSpan delta,
                                    std::size_t dirty) {
  const Codec& codec = payload_codec(config_.policy);
  const ByteSpan raw_payload =
      ships_parity(config_.policy) ? delta : new_block;

  ReplicationMessage msg;
  msg.kind = MessageKind::kWrite;
  msg.policy = config_.policy;
  msg.cluster_epoch = config_.cluster_epoch;
  msg.block_size = block_size();
  msg.lba = lba;

  // Encode the codec frame straight into a pooled buffer; the flat wire
  // message is never materialized (senders frame with scatter-gather I/O).
  PooledBuffer payload = frame_pool_.acquire(0);
  encode_frame_into(codec, raw_payload, payload.mutable_bytes());

  // Coalescing needs the pre-codec payload to fold; share one copy across
  // every link's outbox until a fold copies-on-write.
  PooledBuffer raw;
  if (config_.coalesce_writes) {
    raw = block_pool_.acquire(raw_payload.size());
    std::copy(raw_payload.begin(), raw_payload.end(),
              raw.mutable_bytes().begin());
  }

  // Publish a journal-watermark floor *before* taking the sequence:
  // between the fetch_add and the outbox insert this write is invisible to
  // outstanding_, and the watermark must not advance past it once the
  // journal append lands.
  SubmitSlot slot(shard, next_sequence_.load(std::memory_order_seq_cst));
  msg.sequence = next_sequence_.fetch_add(1, std::memory_order_seq_cst);
  slot.tighten(msg.sequence);
  msg.timestamp_us = clock_tick();

  shard.writes += 1;
  shard.raw_bytes += new_block.size();
  shard.payload_bytes += payload.size();
  shard.payload_sizes.record(payload.size());
  if (ships_parity(config_.policy)) {
    shard.dirty_bytes.record(dirty);
  }

  if (config_.keep_trap_log) {
    const Status appended = trap_log_.append(lba, msg.timestamp_us, delta);
    drop_pending();
    PRINS_RETURN_IF_ERROR(appended);
  }
  // Publish into the conflict window BEFORE the outboxes see the write:
  // a reader must never classify this lba conflict-free while the write
  // is travelling to the replicas.
  if (config_.read_from_replicas) {
    record_recent_write_locked(shard, lba, msg.sequence);
  }
  return enqueue(msg, std::move(payload), std::move(raw), &shard);
}

void PrinsEngine::record_recent_write_locked(WriteShard& shard, Lba lba,
                                             std::uint64_t sequence) {
  WriteShard::RecentSlot& slot =
      shard.recent[shard.recent_next++ & (WriteShard::kRecentRing - 1)];
  // The evicted entry's history must stay visible: if its write was still
  // above the read floor (possibly un-acked somewhere), fold its sequence
  // into evicted_max so ring misses stay conservative.
  const std::uint64_t old_version =
      slot.version.load(std::memory_order_relaxed);
  if (old_version != 0) {
    const std::uint64_t old_seq =
        slot.sequence.load(std::memory_order_relaxed);
    if (old_seq > read_floor_.load(std::memory_order_acquire)) {
      std::uint64_t prev = shard.evicted_max.load(std::memory_order_relaxed);
      while (old_seq > prev && !shard.evicted_max.compare_exchange_weak(
                                   prev, old_seq, std::memory_order_acq_rel)) {
      }
    }
  }
  // Seqlock publish: odd version while the pair is torn, even when stable.
  slot.version.store(old_version + 1, std::memory_order_release);
  slot.lba.store(lba, std::memory_order_relaxed);
  slot.sequence.store(sequence, std::memory_order_relaxed);
  slot.version.store(old_version + 2, std::memory_order_release);
}

PrinsEngine::ReadClass PrinsEngine::classify_read(
    Lba lba, std::uint64_t* min_sequence) const {
  *min_sequence = 0;
  if (!config_.read_from_replicas) return ReadClass::kLocal;
  const WriteShard& shard = shard_for(lba);
  // Lock-free seqlock scan for the newest ring entry matching `lba`.  A
  // torn or racing slot read degrades to kLocal — always safe, never stale.
  std::uint64_t best = 0;
  for (std::size_t i = 0; i < WriteShard::kRecentRing; ++i) {
    const WriteShard::RecentSlot& slot = shard.recent[i];
    std::uint64_t v1 = slot.version.load(std::memory_order_acquire);
    if (v1 == 0) continue;  // never written
    bool stable = false;
    std::uint64_t slot_lba = 0;
    std::uint64_t slot_seq = 0;
    for (int attempt = 0; attempt < 4 && !stable; ++attempt) {
      if (v1 & 1) {  // writer mid-publish; reload
        v1 = slot.version.load(std::memory_order_acquire);
        continue;
      }
      slot_lba = slot.lba.load(std::memory_order_relaxed);
      slot_seq = slot.sequence.load(std::memory_order_relaxed);
      const std::uint64_t v2 = slot.version.load(std::memory_order_acquire);
      if (v1 == v2) {
        stable = true;
      } else {
        v1 = v2;
      }
    }
    if (!stable) return ReadClass::kLocal;  // hot slot: serve locally
    if (slot_lba == lba && slot_seq > best) best = slot_seq;
  }
  const std::uint64_t floor = read_floor_.load(std::memory_order_acquire);
  if (best == 0) {
    // No ring entry for this lba.  Its writes (if any) were either evicted
    // — bounded by evicted_max — or recycled after sinking below the floor.
    const std::uint64_t evicted =
        shard.evicted_max.load(std::memory_order_acquire);
    if (evicted > floor) return ReadClass::kLocal;
    *min_sequence = evicted;
    return ReadClass::kOffloadable;
  }
  if (best > floor) return ReadClass::kLocal;  // in-flight conflict
  *min_sequence = best;
  return ReadClass::kOffloadable;
}

Status PrinsEngine::enqueue(const ReplicationMessage& meta,
                            PooledBuffer payload, PooledBuffer raw,
                            WriteShard* submit_shard) {
  if (config_.journal != nullptr) {
    // Durable before queued: a crash between these two steps re-sends the
    // message (at-least-once), never loses it.  The payload travels
    // alongside the header, so no flat message copy is built here either.
    PRINS_RETURN_IF_ERROR(config_.journal->append(meta, payload.span()));
  }
  return distribute(meta, std::move(payload), std::move(raw), submit_shard);
}

Status PrinsEngine::distribute(const ReplicationMessage& meta,
                               PooledBuffer payload, PooledBuffer raw,
                               WriteShard* submit_shard) {
  const bool coalescable = config_.coalesce_writes && bool(raw) &&
                           meta.kind == MessageKind::kWrite;
  // Canonical wire size (header + frame + CRC), for traffic accounting.
  const std::size_t wire_size =
      ReplicationMessage::kWireHeaderSize + payload.size() + 4;

  submit_global_locks_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock lock(mutex_);
  queue_cv_.wait(lock, [this] {
    return stopping_.load(std::memory_order_relaxed) ||
           outboxes_below_capacity_locked();
  });
  if (stopping_.load(std::memory_order_relaxed)) {
    return unavailable("engine is shutting down");
  }
  if (!worker_error_.is_ok()) return worker_error_;

  last_distributed_seq_ = std::max(last_distributed_seq_, meta.sequence);
  // The message is now visible to the watermark bookkeeping in this
  // critical section (last_distributed_seq_ above, outstanding_ below), so
  // the pre-sequence floor slot has done its job.  Clearing it here — while
  // mutex_ is still held — lets the ack_watermark_locked() calls below
  // advance the read floor over a write that completes instantly (no
  // replicas, or a heal-skip on every link); the SubmitSlot destructor's
  // store(0) stays as an idempotent backstop for early-error returns.
  if (submit_shard != nullptr) {
    submit_shard->submitting_seq.store(0, std::memory_order_seq_cst);
  }
  if (replicas_.empty()) {
    // Nothing to ship: the write is trivially replicated everywhere.
    metrics_.message_bytes += wire_size;
    const std::uint64_t watermark = ack_watermark_locked();
    lock.unlock();
    advance_journal_watermark(watermark);
    return Status::ok();
  }

  if (ack_node_pool_.empty()) {
    outstanding_.emplace(meta.sequence,
                         PendingAck{replicas_.size(), wire_size, false});
  } else {
    // Reuse a recycled map node: ack bookkeeping is the last per-write
    // heap allocation on the submit path, and this makes it free in
    // steady state.
    auto node = std::move(ack_node_pool_.back());
    ack_node_pool_.pop_back();
    node.key() = meta.sequence;
    node.mapped() = PendingAck{replicas_.size(), wire_size, false};
    outstanding_.insert(std::move(node));
  }
  for (auto& link : replicas_) {
    append_to_outbox_locked(*link, meta, payload, raw, coalescable);
  }
  queue_cv_.notify_all();
  if (config_.reactor_senders) {
    for (auto& link : replicas_) schedule_pump_locked(link.get());
  }
  // The message may have completed instantly on every link (heal-skip
  // fast path); keep the journal watermark moving in that case.
  const std::uint64_t watermark = ack_watermark_locked();
  lock.unlock();
  advance_journal_watermark(watermark);
  return Status::ok();
}

void PrinsEngine::append_to_outbox_locked(ReplicaLink& link,
                                          const ReplicationMessage& meta,
                                          const PooledBuffer& payload,
                                          const PooledBuffer& raw,
                                          bool coalescable) {
  if (meta.kind == MessageKind::kWrite &&
      meta.timestamp_us <= link.skip_below_ts) {
    // A pending (or completed) heal's fold already carries this write for
    // this link; queueing it too would deliver the delta twice (and XOR
    // twice is an undo).
    OutMessage skipped;
    skipped.first_covered = meta.sequence;
    complete_locked(skipped, /*acked=*/true);
    return;
  }
  if (coalescable) {
    const auto it = link.fold_slots.find(meta.lba);
    if (it != link.fold_slots.end()) {
      OutMessage& entry = link.outbox[it->second - link.first_slot];
      if (ships_parity(config_.policy)) {
        // Deltas telescope: applying d1 then d2 equals applying d1 ⊕ d2,
        // so fold the new delta into the queued one.  Copy-on-write first:
        // the payload may still be shared with other links' outboxes.
        if (entry.raw.use_count() > 1) {
          PooledBuffer copy = block_pool_.acquire(entry.raw.size());
          std::copy(entry.raw.span().begin(), entry.raw.span().end(),
                    copy.mutable_bytes().begin());
          entry.raw = std::move(copy);
        }
        xor_into(entry.raw.mutable_bytes(), raw.span());
        entry.payload.reset();  // stale; sender re-encodes from raw
        entry.needs_encode = true;
      } else {
        // Full-block payloads: last write wins, and the new message's
        // frame is exactly the folded entry's.
        entry.raw = raw;
        entry.payload = payload;
        entry.needs_encode = false;
      }
      entry.meta.sequence = meta.sequence;
      entry.meta.timestamp_us = meta.timestamp_us;
      entry.extra_covered.push_back(meta.sequence);
      return;
    }
  }

  OutMessage item;
  item.meta = meta;
  item.payload = payload;
  item.raw = raw;
  item.coalescable = coalescable;
  item.first_covered = meta.sequence;
  link.outbox.push_back(std::move(item));
  if (coalescable) {
    link.fold_slots[meta.lba] = link.first_slot + link.outbox.size() - 1;
  } else {
    // A non-foldable message (e.g. a sync block) is an ordering barrier
    // for its LBA: later writes must not fold to a position before it.
    link.fold_slots.erase(meta.lba);
  }
}

void PrinsEngine::complete_locked(const OutMessage& item, bool acked) {
  // A coalesced ACK acknowledges every write the entry carries.
  if (acked) metrics_.acks += item.covered_count();
  const auto settle = [&](std::uint64_t seq) {
    auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) return;
    if (!acked) it->second.dropped = true;
    if (--it->second.remaining == 0) {
      if (it->second.dropped) {
        // An undelivered write must stay replayable: freeze the journal
        // watermark until a recovery replays it.
        journal_frozen_ = true;
      } else {
        metrics_.message_bytes += it->second.wire_bytes;
      }
      if (ack_node_pool_.size() < config_.queue_capacity) {
        ack_node_pool_.push_back(outstanding_.extract(it));
      } else {
        outstanding_.erase(it);
      }
    }
  };
  settle(item.first_covered);
  for (const std::uint64_t seq : item.extra_covered) settle(seq);
}

bool PrinsEngine::outboxes_below_capacity_locked() const {
  for (const auto& link : replicas_) {
    if (link->outbox.size() >= config_.queue_capacity) return false;
  }
  return true;
}

bool PrinsEngine::healable_locked(const ReplicaLink& link) const {
  return link.failed && !link.unhealable && config_.reconnect != nullptr &&
         config_.keep_trap_log;
}

bool PrinsEngine::idle_locked() const {
  for (const auto& link : replicas_) {
    if (!link->outbox.empty() || link->in_flight != 0) return false;
    // A degraded link with a pending self-heal is work in progress:
    // drain() must wait for the heal's verdict, not report a stale error.
    if (healable_locked(*link)) return false;
  }
  return true;
}

std::uint64_t PrinsEngine::ack_watermark_locked() const {
  if (journal_frozen_) return 0;
  std::uint64_t mark = outstanding_.empty()
                           ? last_distributed_seq_
                           : outstanding_.begin()->first - 1;
  // Clamp below any sequence still travelling between the counter and the
  // outboxes (see WriteShard::submitting_seq): such a write may already be
  // journaled but is invisible to outstanding_.
  for (const auto& shard : shards_) {
    const std::uint64_t slot =
        shard->submitting_seq.load(std::memory_order_seq_cst);
    if (slot != 0) mark = std::min(mark, slot - 1);
  }
  // The watermark doubles as the read-offload floor: everything at or
  // below it is acked by every replica, hence applied there.  CAS-max so
  // the floor only ever rises (and freezes with the journal on a drop).
  std::uint64_t floor = read_floor_.load(std::memory_order_relaxed);
  while (mark > floor && !read_floor_.compare_exchange_weak(
                             floor, mark, std::memory_order_acq_rel)) {
  }
  return mark;
}

void PrinsEngine::advance_journal_watermark(std::uint64_t sequence) {
  if (config_.journal == nullptr || sequence == 0) return;
  std::lock_guard lock(journal_mutex_);
  if (sequence <= journal_marked_) return;
  const Status s = config_.journal->mark_acked(sequence);
  if (!s.is_ok()) {
    std::lock_guard elock(mutex_);
    if (worker_error_.is_ok()) worker_error_ = s;
    return;
  }
  journal_marked_ = sequence;
}

void PrinsEngine::sender_main(ReplicaLink* link) {
  const std::size_t window = std::max<std::size_t>(1, config_.pipeline_depth);
  std::vector<OutMessage> batch;
  std::vector<bool> acked;
  for (;;) {
    batch.clear();
    bool already_failed = false;
    {
      std::unique_lock lock(mutex_);
      if (healable_locked(*link)) {
        // Degraded state: hold queued traffic (producers back-pressure on
        // capacity) and retry the heal on its backoff schedule.
        if (config_.reactor != nullptr) {
          const auto next_heal = link->next_heal;
          lock.unlock();
          reactor_wait_until(next_heal);
          lock.lock();
        } else {
          queue_cv_.wait_until(lock, link->next_heal,
                               [this] { return stopping_.load(std::memory_order_relaxed); });
        }
        if (stopping_) return;
        if (!healable_locked(*link)) continue;  // reattached meanwhile
        if (std::chrono::steady_clock::now() < link->next_heal) continue;
        lock.unlock();
        attempt_heal(link);
        continue;
      }
      queue_cv_.wait(lock, [this, link] {
        return stopping_.load(std::memory_order_relaxed) || healable_locked(*link) || !link->outbox.empty();
      });
      if (healable_locked(*link)) continue;
      if (link->outbox.empty()) return;  // stopping with nothing left
      while (!link->outbox.empty() && batch.size() < window) {
        // A popped entry can no longer absorb folds.
        const auto it = link->fold_slots.find(link->outbox.front().meta.lba);
        if (it != link->fold_slots.end() && it->second == link->first_slot) {
          link->fold_slots.erase(it);
        }
        batch.push_back(std::move(link->outbox.front()));
        link->outbox.pop_front();
        ++link->first_slot;
      }
      link->in_flight += batch.size();
      already_failed = link->failed;
      queue_cv_.notify_all();  // wake producers blocked on capacity
    }

    Status result = Status::ok();
    if (already_failed) {
      // Sticky, non-healable failure: drop the batch so producers and
      // drain() never block behind a dead link.
      result = unavailable("replica link is down");
      acked.assign(batch.size(), false);
    } else {
      std::lock_guard link_lock(link->mutex);
      result = exchange_batch_locked(*link, batch, acked);
    }

    std::uint64_t watermark = 0;
    {
      std::lock_guard lock(mutex_);
      link->in_flight -= batch.size();
      for (std::size_t i = 0; i < batch.size(); ++i) {
        complete_locked(batch[i], acked[i]);
      }
      if (!result.is_ok()) {
        link->failed = true;
        link->next_heal = std::chrono::steady_clock::now();
        // A heal's trap-log fold can re-deliver kWrite traffic, so a
        // healable link failing on pure write batches is *degraded*, not
        // broken: keep accepting writes and let the heal catch up.  Any
        // other kind in the batch has no second delivery path — that
        // failure must stick.
        bool fold_covers_batch = true;
        for (const OutMessage& item : batch) {
          fold_covers_batch &= item.meta.kind == MessageKind::kWrite;
        }
        const bool degraded = fold_covers_batch && healable_locked(*link);
        if (degraded) {
          PRINS_LOG(kWarn) << "replica " << link->index
                           << " degraded; self-heal scheduled: "
                           << result.to_string();
        } else if (worker_error_.is_ok() && !already_failed) {
          worker_error_ = result;
          PRINS_LOG(kError) << "replication failed: " << result.to_string();
        }
      }
      watermark = ack_watermark_locked();
      if (idle_locked()) drain_cv_.notify_all();
    }
    advance_journal_watermark(watermark);
  }
}

Result<Bytes> PrinsEngine::recv_reply_locked(ReplicaLink& link) {
  return config_.retry.op_timeout.count() > 0
             ? link.transport->recv_for(config_.retry.op_timeout)
             : link.transport->recv();
}

std::chrono::steady_clock::duration PrinsEngine::retry_delay(
    ReplicaLink& link, std::size_t attempt) {
  const RetryPolicy& r = config_.retry;
  double ms = static_cast<double>(r.base_backoff.count()) *
              std::pow(r.multiplier, static_cast<double>(
                                         std::min<std::size_t>(attempt, 30)) -
                                         1.0);
  ms = std::min(ms, static_cast<double>(r.max_backoff.count()));
  // ±25% jitter decorrelates simultaneous retries across links.
  ms *= 0.75 + 0.5 * link.jitter.next_double();
  if (ms <= 0.0) ms = 0.0;
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

void PrinsEngine::retry_backoff(ReplicaLink& link, std::size_t attempt) {
  const auto delay = retry_delay(link, attempt);
  if (delay.count() <= 0) return;
  const auto deadline = std::chrono::steady_clock::now() + delay;
  if (config_.reactor != nullptr) {
    reactor_wait_until(deadline);
    return;
  }
  std::unique_lock lock(mutex_);
  queue_cv_.wait_until(lock, deadline,
                       [this] { return stopping_.load(std::memory_order_relaxed); });
}

void PrinsEngine::cancel_gates_locked() {
  for (const auto& gate : gates_) {
    std::lock_guard g(gate->m);
    gate->cancelled = true;
    gate->cv.notify_all();
  }
}

void PrinsEngine::reactor_wait_until(
    std::chrono::steady_clock::time_point deadline) {
  auto gate = std::make_shared<TimerGate>();
  {
    std::lock_guard lock(mutex_);
    if (stopping_.load(std::memory_order_relaxed)) return;
    gates_.push_back(gate);
  }
  // Capture only the gate: if this engine dies while the entry is still on
  // the wheel, the callback fires against an orphaned gate and nothing else.
  const TimerId id = config_.reactor->add_timer_at(deadline, [gate] {
    std::lock_guard g(gate->m);
    gate->fired = true;
    gate->cv.notify_all();
  });
  bool fired;
  {
    std::unique_lock g(gate->m);
    gate->cv.wait(g, [&] { return gate->fired || gate->cancelled; });
    fired = gate->fired;
  }
  if (!fired) config_.reactor->cancel_timer(id);
  std::lock_guard lock(mutex_);
  gates_.erase(std::find(gates_.begin(), gates_.end(), gate));
}

Status PrinsEngine::exchange_batch_locked(ReplicaLink& link,
                                          std::vector<OutMessage>& batch,
                                          std::vector<bool>& acked) {
  acked.assign(batch.size(), false);
  const auto all_acked = [&] {
    return std::all_of(acked.begin(), acked.end(), [](bool a) { return a; });
  };
  const bool parity = ships_parity(config_.policy);
  std::size_t attempt = 0;
  for (;;) {
    // Stream every un-acked entry, oldest first, then collect replies.
    // The replica applies in arrival order; parity deltas XOR-commute, so
    // retransmission order cannot change the converged state.
    std::size_t sent = 0;
    Status result = Status::ok();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (acked[i]) continue;
      result = send_entry_locked(link, batch[i]);
      if (!result.is_ok()) break;
      ++sent;
    }
    std::size_t newly_acked = 0;
    const auto mark_acked = [&](std::size_t i) {
      acked[i] = true;
      ++newly_acked;
      const std::uint64_t ts = batch[i].meta.timestamp_us;
      if (ts > link.acked_timestamp.load(std::memory_order_relaxed)) {
        link.acked_timestamp.store(ts, std::memory_order_relaxed);
      }
    };
    // Each sent frame produces exactly one completion at the replica, but
    // a kAckBatch folds many completions into one frame: count *covered*
    // completions, not reply frames, to know when the round is answered.
    std::size_t covered = 0;
    while (result.is_ok() && covered < sent && !all_acked()) {
      auto reply = recv_reply_locked(link);
      if (!reply.is_ok()) {
        result = reply.status();
        break;
      }
      auto ack = ReplicationMessage::decode(*reply);
      if (!ack.is_ok()) {
        ++covered;
        continue;  // torn reply; the retransmit covers it
      }
      if (ack->kind == MessageKind::kAckBatch) {
        auto ranges = unpack_ack_ranges(ack->payload);
        if (!ranges.is_ok()) {
          ++covered;
          continue;  // damaged in flight; retransmit re-acks via dedup
        }
        for (const AckRange& range : *ranges) {
          covered += range.count;
          for (std::size_t i = 0; i < batch.size(); ++i) {
            if (!acked[i] && range.covers(batch[i].meta.sequence)) {
              mark_acked(i);
            }
          }
        }
        continue;
      }
      ++covered;
      if (ack->kind == MessageKind::kNak) {
        // A kStaleEpoch NAK means a newer primary was promoted while this
        // engine was partitioned: it is fenced.  Retrying or healing would
        // splice a dead history into the cluster, so fail sticky.
        if (!ack->payload.empty() &&
            ack->payload[0] == static_cast<Byte>(NakReason::kStaleEpoch)) {
          return fenced_by_replica(link, ack->cluster_epoch);
        }
        // A plain NAK asks for a resend (torn frame); a kNeedFullBlock NAK
        // says the replica's stored block is damaged and a parity delta
        // can *never* apply — swap the entry for a full-block repair.
        if (!ack->payload.empty() &&
            ack->payload[0] == static_cast<Byte>(NakReason::kNeedFullBlock)) {
          for (std::size_t i = 0; i < batch.size(); ++i) {
            if (!acked[i] && batch[i].meta.sequence == ack->sequence) {
              convert_to_repair_locked(batch[i]);
              break;
            }
          }
        }
        continue;
      }
      if (ack->kind != MessageKind::kAck) {
        return failed_precondition("replica sent non-ACK reply");
      }
      // Exact-match marking: with loss in play, a cumulative reading of
      // acks could bury an undelivered write under a later one.  (kAckBatch
      // ranges enumerate every covered sequence, so they are exact too.)
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (!acked[i] && batch[i].meta.sequence == ack->sequence) {
          mark_acked(i);
          break;
        }
      }
      // Unmatched sequences are stale acks from a duplicated delivery or
      // an earlier timed-out round; ignore them.
    }
    if (all_acked()) return Status::ok();

    // Classify what went wrong.
    const ErrorCode code = result.code();
    const bool connection_loss =
        code == ErrorCode::kUnavailable || code == ErrorCode::kIoError;
    if (result.is_ok()) {
      // Every reply collected, entries still open: drops or NAKs upstream.
      result = timeout_error("replica replies incomplete; retransmitting");
    } else if (code == ErrorCode::kFailedPrecondition) {
      return result;  // protocol breach: not retryable
    } else if (connection_loss && config_.reconnect == nullptr) {
      return result;  // the historical sticky-failure path
    }
    if (!parity) {
      // Whole-block payloads only tolerate in-order redelivery (deltas
      // commute, full blocks do not): an un-acked entry behind an acked
      // *same-LBA* successor would reorder that block's writes when it is
      // retransmitted.  Cross-LBA gaps are fine — the replica stripes its
      // apply workers by LBA, so unrelated blocks ack out of order by
      // design.
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (acked[i]) continue;
        for (std::size_t j = i + 1; j < batch.size(); ++j) {
          if (acked[j] && batch[j].meta.lba == batch[i].meta.lba) {
            return failed_precondition(
                "out-of-order ack under a full-block policy");
          }
        }
      }
    }

    attempt = newly_acked > 0 ? 1 : attempt + 1;
    if (attempt > config_.retry.max_attempts) return result;
    {
      std::lock_guard lock(mutex_);
      if (stopping_) return result;
      metrics_.retries += 1;
    }
    if (connection_loss) {
      auto fresh = config_.reconnect(link.index);
      if (fresh.is_ok()) {
        link.transport->close();
        link.transport = std::move(*fresh);
        std::lock_guard lock(mutex_);
        metrics_.reconnects += 1;
      }
      // Factory failure: back off and try the whole round again.
    }
    retry_backoff(link, attempt);
  }
}

Status PrinsEngine::send_entry_locked(ReplicaLink& link, OutMessage& entry) {
  if (entry.needs_encode) {
    // This entry absorbed folds; rebuild its frame once, here, on this
    // link's thread.
    PooledBuffer fresh = frame_pool_.acquire(0);
    encode_frame_into(payload_codec(entry.meta.policy), entry.raw.span(),
                      fresh.mutable_bytes());
    entry.payload = std::move(fresh);
    entry.needs_encode = false;
  }
  // Scatter-gather framing: the header is encoded on the stack, the payload
  // frame is the shared pooled buffer, and the trailing CRC chains across
  // both — byte-identical to ReplicationMessage::encode() without ever
  // materializing the flat wire copy.
  Byte header[ReplicationMessage::kWireHeaderSize];
  entry.meta.encode_header(header, entry.payload.size());
  std::uint32_t crc = crc32c(ByteSpan(header));
  crc = crc32c(entry.payload.span(), crc);
  Byte trailer[4];
  store_le32(trailer, crc);
  const ByteSpan parts[] = {ByteSpan(header), entry.payload.span(),
                            ByteSpan(trailer)};
  return link.transport->send_vec(parts);
}

void PrinsEngine::convert_to_repair_locked(OutMessage& entry) {
  if (entry.meta.kind != MessageKind::kWrite || !ships_parity(config_.policy)) {
    // Full-block policies already carry the whole contents; a plain resend
    // is the repair.
    return;
  }
  if (!config_.keep_trap_log) {
    // Without delta history we cannot reconstruct the block as of this
    // entry's timestamp; let the retry loop exhaust and the heal (full
    // resync) take over.
    return;
  }
  // A same-block write between the device and the trap log would make the
  // rollback below reconstruct a state the log cannot explain; owning the
  // block's stripe excludes that.  Never *wait* for the stripe — a producer
  // holding it may be blocked on *this* link's full outbox, which only the
  // caller can drain — just let the next retry round convert.
  WriteShard& shard = shard_for(entry.meta.lba);
  std::unique_lock shard_lock(shard.mutex, std::try_to_lock);
  if (!shard_lock.owns_lock()) return;
  Bytes content(block_size());
  if (!local_->read(entry.meta.lba, content).is_ok()) return;
  auto at_ts = trap_log_.recover_block(entry.meta.lba,
                                       entry.meta.timestamp_us, content);
  if (!at_ts.is_ok()) return;
  content = std::move(*at_ts);
  {
    std::lock_guard lock(mutex_);
    metrics_.nak_full_repairs += 1;
  }
  // Rebuild in place.  Sequence and timestamp are kept: the replica never
  // applied the original (that is what the NAK said), so ack matching and
  // dedup see one message that simply changed its clothes.  Deltas queued
  // behind this entry still telescope, because the payload is the block
  // exactly as of this entry's own write.
  entry.meta.kind = MessageKind::kRepairBlock;
  entry.payload =
      PooledBuffer::heap(encode_frame(codec_for(CodecId::kLz), content));
  entry.raw.reset();
  entry.coalescable = false;
  entry.needs_encode = false;
  PRINS_LOG(kWarn) << "replica NAK'd damaged block " << entry.meta.lba
                   << "; resending as a full-block repair";
}

void PrinsEngine::heal_failed(ReplicaLink* link, const Status& why) {
  const RetryPolicy& r = config_.retry;
  std::lock_guard lock(mutex_);
  link->heal_failures += 1;
  const double base =
      std::max<double>(1.0, static_cast<double>(r.base_backoff.count()));
  double ms = base * std::pow(r.multiplier,
                              static_cast<double>(std::min<std::uint32_t>(
                                  link->heal_failures - 1, 30)));
  ms = std::min(
      ms, std::max<double>(1.0, static_cast<double>(r.max_backoff.count())));
  ms *= 0.75 + 0.5 * link->jitter.next_double();
  link->next_heal = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double, std::milli>(ms));
  PRINS_LOG(kWarn) << "self-heal of replica " << link->index
                   << " failed (attempt " << link->heal_failures
                   << "): " << why.to_string();
}

Status PrinsEngine::hello_locked(ReplicaLink& link,
                                 std::uint64_t& applied_ts) {
  ReplicationMessage hello;
  hello.kind = MessageKind::kHello;
  hello.cluster_epoch = config_.cluster_epoch;
  hello.sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
  const Bytes wire = hello.encode();
  for (std::size_t attempt = 0; attempt <= config_.retry.max_attempts;
       ++attempt) {
    PRINS_RETURN_IF_ERROR(link.transport->send(wire));
    auto reply = recv_reply_locked(link);
    if (!reply.is_ok()) {
      if (reply.status().code() == ErrorCode::kTimeout) continue;
      return reply.status();
    }
    auto ack = ReplicationMessage::decode(*reply);
    if (!ack.is_ok()) continue;  // torn; ask again
    if (ack->kind == MessageKind::kAck && ack->sequence == hello.sequence) {
      applied_ts = ack->timestamp_us;
      return Status::ok();
    }
    if (ack->kind == MessageKind::kNak && !ack->payload.empty() &&
        ack->payload[0] == static_cast<Byte>(NakReason::kStaleEpoch)) {
      return fenced_by_replica(link, ack->cluster_epoch);
    }
    // NAK or a stale reply from before the outage: ask again.
  }
  return timeout_error("replica hello got no usable reply");
}

Status PrinsEngine::build_resync_locked(ReplicaLink& link,
                                        std::uint64_t replica_ts) {
  // Fold base: whichever of our acked watermark and the replica's own
  // applied position is newer (acks lost in the outage leave ours stale;
  // folding from a stale base would re-apply — i.e. undo — those writes).
  const std::uint64_t since =
      std::max(link.acked_timestamp.load(std::memory_order_relaxed),
               replica_ts);
  std::uint64_t until = 0;
  {
    std::unique_lock lock(mutex_);
    // Every timestamped write must be in the trap log before we pick the
    // window, or the fold would silently miss it.  The single load of
    // clock_state_ gives an atomic (pending == 0, clock == K) snapshot;
    // writers do not signal the cv, so poll on a short timeout.
    for (;;) {
      if (stopping_.load(std::memory_order_relaxed)) {
        return unavailable("engine is shutting down");
      }
      const std::uint64_t state =
          clock_state_.load(std::memory_order_seq_cst);
      if ((state & ~kClockMask) == 0) {
        until = state & kClockMask;
        break;
      }
      queue_cv_.wait_for(lock, std::chrono::microseconds(200));
    }
    for (const OutMessage& item : link.outbox) {
      if (item.meta.kind != MessageKind::kWrite) {
        return failed_precondition(
            "non-write traffic queued for this link; heal deferred");
      }
    }
    // The fold carries everything this link has queued (all entries bear
    // timestamps <= until): complete them here and let the fold deliver
    // their bytes.  From now on, late-arriving entries at or below `until`
    // complete on sight (append_to_outbox_locked).
    for (OutMessage& item : link.outbox) complete_locked(item, true);
    link.outbox.clear();
    link.fold_slots.clear();
    link.skip_below_ts = until;
    queue_cv_.notify_all();  // producers blocked on outbox capacity
  }
  if (until <= since) {
    link.resync_upto = std::max(since, until);
    return Status::ok();  // nothing missed
  }

  // Build into a scratch set and commit only when complete: a fold failure
  // partway must not leave a partial set that a resumed heal would ship as
  // if it were the whole outage.
  std::deque<ResyncFrame> frames;
  const std::uint32_t bs = block_size();
  for (Lba lba : trap_log_.blocks_changed_in(since, until)) {
    auto fold = trap_log_.fold_range(lba, since, until, bs);
    if (!fold.is_ok()) {
      if (fold.status().code() == ErrorCode::kFailedPrecondition) {
        // Trap history for the outage window was compacted or truncated
        // away.  The fold is unreconstructible: stop healing and force the
        // journal to keep everything for an operator-driven recovery.
        std::lock_guard lock(mutex_);
        link.unhealable = true;
        journal_frozen_ = true;
        // The degraded window suppressed the sticky error on the promise
        // the heal would deliver; that promise is now broken.
        if (worker_error_.is_ok()) worker_error_ = fold.status();
        queue_cv_.notify_all();
        // The link just left the healable state: drain() waiters must wake
        // and surface the sticky error instead of waiting on a heal that
        // will never come.
        if (idle_locked()) drain_cv_.notify_all();
        PRINS_LOG(kError)
            << "replica " << link.index
            << " is unhealable (trap history lost); run verify_and_repair";
      }
      return fold.status();
    }
    if (all_zero(*fold)) continue;  // missed writes cancelled out

    ReplicationMessage msg;
    msg.kind = MessageKind::kWrite;
    msg.policy = ReplicationPolicy::kPrinsRle;
    msg.cluster_epoch = config_.cluster_epoch;
    msg.block_size = bs;
    msg.lba = lba;
    msg.timestamp_us = until;
    msg.payload = encode_frame(codec_for(CodecId::kZeroRle), *fold);
    msg.sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
    frames.push_back(ResyncFrame{msg.sequence, msg.encode()});
  }
  link.resync_wire = std::move(frames);
  link.resync_upto = until;
  return Status::ok();
}

void PrinsEngine::attempt_heal(ReplicaLink* link) {
  std::lock_guard link_lock(link->mutex);

  // 1. Fresh connection.
  auto fresh = config_.reconnect(link->index);
  if (!fresh.is_ok()) return heal_failed(link, fresh.status());
  link->transport->close();
  link->transport = std::move(*fresh);
  {
    std::lock_guard lock(mutex_);
    metrics_.reconnects += 1;
  }

  // 2. Where is the replica really?  (Its applied position can be ahead
  // of our acked watermark when acks were lost in the outage.)
  std::uint64_t replica_ts = 0;
  if (Status s = hello_locked(*link, replica_ts); !s.is_ok()) {
    return heal_failed(link, s);
  }

  // 3. Build the folded catch-up set — unless an interrupted heal left one
  // to resume (resending the same sequences is safe: replica dedup).
  if (link->resync_wire.empty()) {
    if (Status s = build_resync_locked(*link, replica_ts); !s.is_ok()) {
      return heal_failed(link, s);
    }
  }

  // 4. Ship it, one exchange per stale block.
  while (!link->resync_wire.empty()) {
    {
      std::lock_guard lock(mutex_);
      if (stopping_) return;
    }
    const ResyncFrame& frame = link->resync_wire.front();
    Status shipped = Status::ok();
    bool delivered = false;
    for (std::size_t attempt = 0;
         attempt <= config_.retry.max_attempts && !delivered; ++attempt) {
      shipped = link->transport->send(frame.wire);
      if (!shipped.is_ok()) break;
      auto reply = recv_reply_locked(*link);
      if (!reply.is_ok()) {
        shipped = reply.status();
        if (shipped.code() != ErrorCode::kTimeout) break;
        continue;
      }
      auto ack = ReplicationMessage::decode(*reply);
      if (!ack.is_ok()) continue;  // torn reply; resend
      if (ack->kind == MessageKind::kAck && ack->sequence == frame.sequence) {
        delivered = true;
      }
      if (ack->kind == MessageKind::kNak && !ack->payload.empty() &&
          ack->payload[0] == static_cast<Byte>(NakReason::kStaleEpoch)) {
        // A promoted successor owns these blocks now; abandon the heal.
        return heal_failed(link,
                           fenced_by_replica(*link, ack->cluster_epoch));
      }
      // NAK or stale ack: resend.
    }
    if (!delivered) {
      return heal_failed(
          link, shipped.is_ok()
                    ? timeout_error("resync frame got no ack; will resume")
                    : shipped);
    }
    link->resync_wire.pop_front();
  }

  // 5. Healed: rejoin the steady-state path.
  std::uint64_t watermark = 0;
  {
    std::lock_guard lock(mutex_);
    link->failed = false;
    link->heal_failures = 0;
    if (link->resync_upto >
        link->acked_timestamp.load(std::memory_order_relaxed)) {
      link->acked_timestamp.store(link->resync_upto,
                                  std::memory_order_relaxed);
    }
    metrics_.auto_resyncs += 1;
    bool any_failed = false;
    for (const auto& r : replicas_) any_failed |= r->failed;
    if (!any_failed) {
      // Every link is caught up: writes the outage marked undeliverable
      // have now arrived via the folds, so the sticky error and the
      // journal freeze have nothing left to guard.
      worker_error_ = Status::ok();
      for (auto& [seq, pending] : outstanding_) pending.dropped = false;
      journal_frozen_ = false;
    }
    watermark = ack_watermark_locked();
    if (idle_locked()) drain_cv_.notify_all();
    queue_cv_.notify_all();
  }
  advance_journal_watermark(watermark);
  PRINS_LOG(kInfo) << "replica " << link->index
                   << " self-healed (resynced through ts="
                   << link->resync_upto << ")";
}

// ---- Reactor-driven sender path (config.reactor_senders) -------------------
//
// The threaded sender_main/exchange_batch_locked pair becomes an event
// machine: pump_link() (a posted closure) plays the pop-a-window half,
// on_link_reply() (the transport's message handler) plays the
// collect-replies half, and the wheel timer plays recv_for's op_timeout and
// retry_backoff's sleep.  Lock order everywhere: sender guard, then link
// mutex, then engine mutex_ — the same link-then-engine order the threaded
// path uses, with the guard outermost so teardown can fence callbacks.

bool PrinsEngine::install_reactor_link(ReplicaLink* link) {
  // underlying() sees through decorators (FaultyTransport et al.), so a
  // fault-injected reactor link still runs handler-driven.
  auto* rt =
      dynamic_cast<ReactorTcpTransport*>(link->transport->underlying());
  if (rt == nullptr) return false;
  auto guard = sender_guard_;
  rt->set_close_handler([guard, link](const Status& why) {
    std::lock_guard g(guard->m);
    if (guard->engine == nullptr) return;
    // Lock-free pre-check: never block a loop thread on the link mutex
    // behind a multi-second heal exchange.
    if (link->healing.load(std::memory_order_relaxed)) return;
    guard->engine->on_link_closed(link, why);
  });
  rt->set_message_handler([guard, link](Bytes&& reply) {
    std::lock_guard g(guard->m);
    if (guard->engine == nullptr) return;
    if (link->healing.load(std::memory_order_relaxed)) return;
    guard->engine->on_link_reply(link, std::move(reply));
  });
  return true;
}

void PrinsEngine::clear_link_handlers(ReplicaLink& link) {
  if (auto* rt = dynamic_cast<ReactorTcpTransport*>(
          link.transport->underlying())) {
    rt->set_close_handler(nullptr);
    rt->set_message_handler(nullptr);
  }
}

void PrinsEngine::arm_link_timer_locked(
    ReplicaLink* link, std::chrono::steady_clock::time_point deadline) {
  const std::uint64_t epoch =
      link->timer_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  link->timer_armed = true;
  auto guard = sender_guard_;
  link->timer = config_.reactor->add_timer_at(deadline, [guard, link, epoch] {
    std::lock_guard g(guard->m);
    // Guard first: `link` is only safe to touch while the engine lives.
    if (guard->engine == nullptr) return;
    if (link->timer_epoch.load(std::memory_order_relaxed) != epoch) return;
    if (link->healing.load(std::memory_order_relaxed)) return;
    guard->engine->on_link_timer(link);
  });
}

void PrinsEngine::cancel_link_timer_locked(ReplicaLink* link) {
  // The epoch bump retires a callback the wheel already dequeued and that
  // cancel_timer can no longer reach.
  link->timer_epoch.fetch_add(1, std::memory_order_relaxed);
  if (link->timer_armed) {
    link->timer_armed = false;
    config_.reactor->cancel_timer(link->timer);
  }
}

void PrinsEngine::schedule_pump_locked(ReplicaLink* link) {
  if (!link->reactor_driven || link->pump_scheduled ||
      stopping_.load(std::memory_order_relaxed)) {
    return;
  }
  if (link->phase != ReplicaLink::Phase::kIdle) return;
  if (link->outbox.empty()) return;
  // A degraded link holds its traffic for the heal's fold; only a
  // sticky-dead link's pump runs (to drop the queue, below).
  if (link->failed && healable_locked(*link)) return;
  link->pump_scheduled = true;
  auto guard = sender_guard_;
  config_.reactor->post([guard, link] {
    std::lock_guard g(guard->m);
    if (guard->engine == nullptr) return;
    if (link->healing.load(std::memory_order_relaxed)) return;
    guard->engine->pump_link(link);
  });
}

void PrinsEngine::pump_link(ReplicaLink* link) {
  std::lock_guard link_lock(link->mutex);
  std::unique_lock lock(mutex_);
  link->pump_scheduled = false;
  if (stopping_.load(std::memory_order_relaxed)) return;
  if (link->failed) {
    if (healable_locked(*link)) return;  // the heal's fold carries the queue
    // Sticky, non-healable failure: drop queued traffic so producers and
    // drain() never block behind a dead link (sender_main's
    // already_failed path).
    if (link->outbox.empty()) return;
    while (!link->outbox.empty()) {
      const auto it = link->fold_slots.find(link->outbox.front().meta.lba);
      if (it != link->fold_slots.end() && it->second == link->first_slot) {
        link->fold_slots.erase(it);
      }
      OutMessage item = std::move(link->outbox.front());
      link->outbox.pop_front();
      ++link->first_slot;
      complete_locked(item, /*acked=*/false);
    }
    const std::uint64_t watermark = ack_watermark_locked();
    queue_cv_.notify_all();
    if (idle_locked()) drain_cv_.notify_all();
    lock.unlock();
    advance_journal_watermark(watermark);
    return;
  }
  if (link->phase != ReplicaLink::Phase::kIdle || link->outbox.empty()) {
    return;
  }

  const std::size_t window = std::max<std::size_t>(1, config_.pipeline_depth);
  while (!link->outbox.empty() && link->round.size() < window) {
    // A popped entry can no longer absorb folds.
    const auto it = link->fold_slots.find(link->outbox.front().meta.lba);
    if (it != link->fold_slots.end() && it->second == link->first_slot) {
      link->fold_slots.erase(it);
    }
    link->round.push_back(std::move(link->outbox.front()));
    link->outbox.pop_front();
    ++link->first_slot;
  }
  link->round_acked.assign(link->round.size(), false);
  link->round_attempt = 0;
  link->round_sent = 0;
  link->round_covered = 0;
  link->round_progress = false;
  link->in_flight += link->round.size();
  link->phase = ReplicaLink::Phase::kAwaitingAcks;
  queue_cv_.notify_all();  // wake producers blocked on outbox capacity
  lock.unlock();

  // Transmit.  On a loop thread the transport's enqueue never blocks on
  // flow control, so a stuck replica cannot stall the reactor here.
  std::size_t sent = 0;
  Status result = Status::ok();
  for (OutMessage& entry : link->round) {
    result = send_entry_locked(*link, entry);
    if (!result.is_ok()) break;
    ++sent;
  }
  if (!result.is_ok()) {
    // Sends on a reactor transport only fail once the connection is dead;
    // classification (degraded heal vs. sticky) happens in fail_round.
    fail_round(link, result);
    return;
  }
  lock.lock();
  if (link->phase != ReplicaLink::Phase::kAwaitingAcks) return;
  link->round_sent = sent;
  if (config_.retry.op_timeout.count() > 0) {
    arm_link_timer_locked(
        link, std::chrono::steady_clock::now() + config_.retry.op_timeout);
  }
}

void PrinsEngine::on_link_reply(ReplicaLink* link, Bytes reply) {
  std::lock_guard link_lock(link->mutex);
  std::unique_lock lock(mutex_);
  if (stopping_.load(std::memory_order_relaxed) || link->round.empty()) {
    return;  // stale ack from an earlier round/life of the link
  }
  if (link->phase != ReplicaLink::Phase::kAwaitingAcks &&
      link->phase != ReplicaLink::Phase::kBackoff) {
    return;
  }
  // Coverage counts completions per transmission attempt; an ack landing
  // during a backoff still settles its entry but does not count toward the
  // attempt that already closed.
  const bool counting = link->phase == ReplicaLink::Phase::kAwaitingAcks;

  const auto mark = [&](std::size_t i) {
    link->round_acked[i] = true;
    link->round_progress = true;
    complete_locked(link->round[i], /*acked=*/true);
    const std::uint64_t ts = link->round[i].meta.timestamp_us;
    if (ts > link->acked_timestamp.load(std::memory_order_relaxed)) {
      link->acked_timestamp.store(ts, std::memory_order_relaxed);
    }
  };
  const auto all_acked = [&] {
    return std::all_of(link->round_acked.begin(), link->round_acked.end(),
                       [](bool a) { return a; });
  };

  constexpr std::size_t kNoConvert = static_cast<std::size_t>(-1);
  std::size_t convert_index = kNoConvert;
  auto ack = ReplicationMessage::decode(reply);
  if (!ack.is_ok()) {
    if (counting) ++link->round_covered;  // torn reply; retransmit covers it
  } else if (ack->kind == MessageKind::kAckBatch) {
    auto ranges = unpack_ack_ranges(ack->payload);
    if (!ranges.is_ok()) {
      if (counting) ++link->round_covered;  // damaged; dedup re-acks
    } else {
      for (const AckRange& range : *ranges) {
        if (counting) link->round_covered += range.count;
        for (std::size_t i = 0; i < link->round.size(); ++i) {
          if (!link->round_acked[i] &&
              range.covers(link->round[i].meta.sequence)) {
            mark(i);
          }
        }
      }
    }
  } else if (ack->kind == MessageKind::kNak) {
    if (counting) ++link->round_covered;
    if (!ack->payload.empty() &&
        ack->payload[0] == static_cast<Byte>(NakReason::kStaleEpoch)) {
      // Fenced by a promoted successor: sticky, unhealable failure.
      lock.unlock();
      fail_round(link, fenced_by_replica(*link, ack->cluster_epoch));
      return;
    }
    if (!ack->payload.empty() &&
        ack->payload[0] == static_cast<Byte>(NakReason::kNeedFullBlock)) {
      for (std::size_t i = 0; i < link->round.size(); ++i) {
        if (!link->round_acked[i] &&
            link->round[i].meta.sequence == ack->sequence) {
          convert_index = i;
          break;
        }
      }
    }
    // A plain NAK (torn frame at the replica) is covered by the attempt's
    // retransmit, exactly like the threaded path.
  } else if (ack->kind == MessageKind::kAck) {
    if (counting) ++link->round_covered;
    for (std::size_t i = 0; i < link->round.size(); ++i) {
      if (!link->round_acked[i] &&
          link->round[i].meta.sequence == ack->sequence) {
        mark(i);
        break;
      }
    }
    // Unmatched sequences are stale acks from duplicated delivery or an
    // earlier timed-out round; ignore them.
  } else {
    lock.unlock();
    fail_round(link, failed_precondition("replica sent non-ACK reply"));
    return;
  }

  if (convert_index != kNoConvert) {
    // convert_to_repair_locked takes mutex_ (metrics) and a stripe lock
    // itself; call it with only the link mutex held, like the threaded
    // path does.
    lock.unlock();
    convert_to_repair_locked(link->round[convert_index]);
    lock.lock();
  }

  if (all_acked()) {
    finish_round(link, lock);
    return;
  }
  if (counting && link->round_covered >= link->round_sent) {
    // Every reply for this attempt arrived, entries still open: drops or
    // NAKs upstream — retransmit after the backoff.
    round_retry_or_fail(
        link, lock, timeout_error("replica replies incomplete; retransmitting"));
    return;
  }
  // Partial progress: settled entries may already move the watermark.
  const std::uint64_t watermark = ack_watermark_locked();
  lock.unlock();
  advance_journal_watermark(watermark);
}

void PrinsEngine::on_link_closed(ReplicaLink* link, const Status& why) {
  std::lock_guard link_lock(link->mutex);
  {
    std::lock_guard lock(mutex_);
    if (stopping_.load(std::memory_order_relaxed) || link->failed) return;
    if (link->phase == ReplicaLink::Phase::kExclusive) return;
  }
  fail_round(link,
             why.is_ok() ? unavailable("replica connection closed") : why);
}

void PrinsEngine::on_link_timer(ReplicaLink* link) {
  std::lock_guard link_lock(link->mutex);
  std::unique_lock lock(mutex_);
  if (stopping_.load(std::memory_order_relaxed) || !link->timer_armed) return;
  link->timer_armed = false;
  switch (link->phase) {
    case ReplicaLink::Phase::kAwaitingAcks:
      // op_timeout expired with replies missing: recv_for's timeout in
      // event form.
      round_retry_or_fail(link, lock,
                          timeout_error("replica reply timed out"));
      return;
    case ReplicaLink::Phase::kBackoff:
      lock.unlock();
      resend_round(link);
      return;
    default:
      return;
  }
}

void PrinsEngine::round_retry_or_fail(ReplicaLink* link,
                                      std::unique_lock<std::mutex>& lock,
                                      const Status& why) {
  // exchange_batch_locked's full-block ordering check: an un-acked entry
  // behind an acked same-LBA successor cannot be retransmitted (full
  // blocks do not commute).
  if (!ships_parity(config_.policy)) {
    for (std::size_t i = 0; i < link->round.size(); ++i) {
      if (link->round_acked[i]) continue;
      for (std::size_t j = i + 1; j < link->round.size(); ++j) {
        if (link->round_acked[j] &&
            link->round[j].meta.lba == link->round[i].meta.lba) {
          lock.unlock();
          fail_round(link, failed_precondition(
                               "out-of-order ack under a full-block policy"));
          return;
        }
      }
    }
  }
  link->round_attempt =
      link->round_progress ? 1 : link->round_attempt + 1;
  link->round_progress = false;
  if (link->round_attempt > config_.retry.max_attempts) {
    lock.unlock();
    fail_round(link, why);
    return;
  }
  metrics_.retries += 1;
  link->phase = ReplicaLink::Phase::kBackoff;
  cancel_link_timer_locked(link);  // an op_timeout may still be ticking
  arm_link_timer_locked(link,
                        std::chrono::steady_clock::now() +
                            retry_delay(*link, link->round_attempt));
  lock.unlock();
}

void PrinsEngine::resend_round(ReplicaLink* link) {
  {
    std::lock_guard lock(mutex_);
    if (stopping_.load(std::memory_order_relaxed) || link->failed ||
        link->round.empty()) {
      return;
    }
    link->phase = ReplicaLink::Phase::kAwaitingAcks;
    link->round_sent = 0;
    link->round_covered = 0;
    link->round_progress = false;
  }
  std::size_t sent = 0;
  Status result = Status::ok();
  for (std::size_t i = 0; i < link->round.size(); ++i) {
    if (link->round_acked[i]) continue;
    result = send_entry_locked(*link, link->round[i]);
    if (!result.is_ok()) break;
    ++sent;
  }
  if (!result.is_ok()) {
    fail_round(link, result);
    return;
  }
  std::lock_guard lock(mutex_);
  if (link->phase != ReplicaLink::Phase::kAwaitingAcks) return;
  link->round_sent = sent;
  if (config_.retry.op_timeout.count() > 0) {
    arm_link_timer_locked(
        link, std::chrono::steady_clock::now() + config_.retry.op_timeout);
  }
}

void PrinsEngine::finish_round(ReplicaLink* link,
                               std::unique_lock<std::mutex>& lock) {
  link->in_flight -= link->round.size();
  link->round.clear();
  link->round_acked.clear();
  link->round_attempt = 0;
  link->round_sent = 0;
  link->round_covered = 0;
  link->round_progress = false;
  cancel_link_timer_locked(link);
  link->phase = ReplicaLink::Phase::kIdle;
  const std::uint64_t watermark = ack_watermark_locked();
  queue_cv_.notify_all();
  if (idle_locked()) drain_cv_.notify_all();
  schedule_pump_locked(link);
  lock.unlock();
  advance_journal_watermark(watermark);
}

void PrinsEngine::fail_round(ReplicaLink* link, const Status& why) {
  bool spawn_heal = false;
  std::uint64_t watermark = 0;
  {
    std::lock_guard lock(mutex_);
    if (link->failed) return;  // a close and a timeout can race; first wins
    cancel_link_timer_locked(link);
    link->in_flight -= link->round.size();
    // sender_main's failure classification: a heal's fold can re-deliver
    // kWrite traffic, so an all-write round failing on a healable link is
    // *degraded*; any other kind has no second delivery path.
    bool fold_covers_round = true;
    for (std::size_t i = 0; i < link->round.size(); ++i) {
      fold_covers_round &=
          link->round[i].meta.kind == MessageKind::kWrite;
      // Entries acked before the failure were settled at ack time.
      if (!link->round_acked[i]) {
        complete_locked(link->round[i], /*acked=*/false);
      }
    }
    link->round.clear();
    link->round_acked.clear();
    link->round_attempt = 0;
    link->round_sent = 0;
    link->round_covered = 0;
    link->round_progress = false;
    link->failed = true;
    link->next_heal = std::chrono::steady_clock::now();
    if (fold_covers_round && healable_locked(*link)) {
      PRINS_LOG(kWarn) << "replica " << link->index
                       << " degraded; self-heal scheduled: "
                       << why.to_string();
      link->phase = ReplicaLink::Phase::kHealing;
      link->healing.store(true, std::memory_order_relaxed);
      spawn_heal = true;
    } else {
      link->phase = ReplicaLink::Phase::kIdle;
      if (worker_error_.is_ok()) {
        worker_error_ = why;
        PRINS_LOG(kError) << "replication failed: " << why.to_string();
      }
      // Queued traffic behind a sticky-dead link must still drain.
      schedule_pump_locked(link);
    }
    watermark = ack_watermark_locked();
    queue_cv_.notify_all();
    if (idle_locked()) drain_cv_.notify_all();
  }
  // The dying transport's callbacks must go quiet: the heal will close
  // and replace it, and a sticky-dead link's late frames mean nothing.
  clear_link_handlers(*link);
  advance_journal_watermark(watermark);
  if (spawn_heal) {
    // The previous heal episode's thread (if any) exited before this
    // link could fail again, so the join is immediate.
    if (link->sender.joinable()) link->sender.join();
    link->sender = std::thread([this, link] { heal_main(link); });
  }
}

void PrinsEngine::heal_main(ReplicaLink* link) {
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      if (stopping_.load(std::memory_order_relaxed)) {
        link->healing.store(false, std::memory_order_relaxed);
        return;
      }
      if (!healable_locked(*link)) break;  // healed, reattached, unhealable
      const auto next_heal = link->next_heal;
      lock.unlock();
      if (std::chrono::steady_clock::now() < next_heal) {
        reactor_wait_until(next_heal);
        continue;  // re-check state after the wait
      }
    }
    // attempt_heal's hello/resync exchanges use blocking recv() on the
    // fresh transport — valid here because no message handler is
    // installed on it yet.
    attempt_heal(link);
    {
      std::lock_guard lock(mutex_);
      if (stopping_.load(std::memory_order_relaxed)) {
        link->healing.store(false, std::memory_order_relaxed);
        return;
      }
      if (!link->failed) break;
    }
  }
  if (!rejoin_reactor_link(link)) {
    // The reconnect factory produced a non-reactor transport: this thread
    // simply becomes the link's sender.
    sender_main(link);
  }
}

bool PrinsEngine::rejoin_reactor_link(ReplicaLink* link) {
  std::lock_guard link_lock(link->mutex);
  std::unique_lock lock(mutex_);
  link->healing.store(false, std::memory_order_relaxed);
  link->phase = ReplicaLink::Phase::kIdle;
  queue_cv_.notify_all();  // begin_link_exclusive may be parked on the phase
  if (stopping_.load(std::memory_order_relaxed)) return true;
  if (link->failed) {
    // Unhealable: drop queued traffic so producers and drain() move on;
    // reattach_replica re-arms the handlers when the operator intervenes.
    schedule_pump_locked(link);
    return true;
  }
  lock.unlock();
  if (!install_reactor_link(link)) {
    lock.lock();
    link->reactor_driven = false;
    return false;
  }
  lock.lock();
  schedule_pump_locked(link);
  return true;
}

void PrinsEngine::begin_link_exclusive(ReplicaLink* link) {
  bool uninstall = false;
  {
    std::unique_lock lock(mutex_);
    if (!link->reactor_driven) return;
    queue_cv_.wait(lock, [&] {
      return stopping_.load(std::memory_order_relaxed) || link->failed ||
             link->phase == ReplicaLink::Phase::kIdle;
    });
    if (stopping_.load(std::memory_order_relaxed) || link->failed ||
        link->phase != ReplicaLink::Phase::kIdle) {
      // Failed links had their handlers cleared by fail_round; blocking
      // recv() already works on them.
      return;
    }
    link->phase = ReplicaLink::Phase::kExclusive;
    uninstall = true;
  }
  if (uninstall) clear_link_handlers(*link);
}

void PrinsEngine::end_link_exclusive(ReplicaLink* link) {
  {
    std::lock_guard lock(mutex_);
    if (!link->reactor_driven ||
        link->phase != ReplicaLink::Phase::kExclusive) {
      return;
    }
    link->phase = ReplicaLink::Phase::kIdle;
    queue_cv_.notify_all();  // another exclusive waiter may be parked
  }
  std::lock_guard link_lock(link->mutex);
  // Reinstalling on a transport the exchange killed is fine: the close
  // handler fires immediately and routes into fail_round.
  if (install_reactor_link(link)) {
    std::lock_guard lock(mutex_);
    schedule_pump_locked(link);
  }
}

class PrinsEngine::LinkExclusive {
 public:
  LinkExclusive(PrinsEngine& engine, ReplicaLink* link)
      : engine_(engine), link_(link) {
    engine_.begin_link_exclusive(link_);
  }
  ~LinkExclusive() { engine_.end_link_exclusive(link_); }
  LinkExclusive(const LinkExclusive&) = delete;
  LinkExclusive& operator=(const LinkExclusive&) = delete;

 private:
  PrinsEngine& engine_;
  ReplicaLink* link_;
};

Status PrinsEngine::send_and_ack_locked(ReplicaLink& link, ByteSpan wire,
                                        MessageKind /*expect_ack_of*/) {
  PRINS_RETURN_IF_ERROR(link.transport->send(wire));
  PRINS_ASSIGN_OR_RETURN(Bytes reply, link.transport->recv());
  PRINS_ASSIGN_OR_RETURN(ReplicationMessage ack,
                         ReplicationMessage::decode(reply));
  if (ack.kind == MessageKind::kNak && !ack.payload.empty() &&
      ack.payload[0] == static_cast<Byte>(NakReason::kStaleEpoch)) {
    return fenced_by_replica(link, ack.cluster_epoch);
  }
  if (ack.kind != MessageKind::kAck) {
    return failed_precondition("replica sent non-ACK reply");
  }
  return Status::ok();
}

Status PrinsEngine::drain() {
  std::unique_lock lock(mutex_);
  drain_cv_.wait(lock, [this] { return idle_locked() || stopping_; });
  const Status result = worker_error_;
  // Senders mark the journal after releasing mutex_, so a drain() waiter
  // can wake before the last mark lands; settle it here so "drained"
  // implies "journal watermark current".
  const std::uint64_t watermark = ack_watermark_locked();
  lock.unlock();
  advance_journal_watermark(watermark);
  return result;
}

Status PrinsEngine::flush() {
  PRINS_RETURN_IF_ERROR(drain());
  return local_->flush();
}

Status PrinsEngine::enqueue_sync_block(Lba lba, const Codec& codec,
                                       Bytes& scratch) {
  WriteShard& shard = shard_for(lba);
  // Hold the block's stripe so the read and the enqueue see one write
  // generation, and publish a watermark slot like any submit.
  std::lock_guard shard_lock(shard.mutex);
  PRINS_RETURN_IF_ERROR(local_->read(lba, scratch));
  ReplicationMessage msg;
  msg.kind = MessageKind::kSyncBlock;
  msg.policy = config_.policy;
  msg.cluster_epoch = config_.cluster_epoch;
  msg.block_size = block_size();
  msg.lba = lba;
  SubmitSlot slot(shard, next_sequence_.load(std::memory_order_seq_cst));
  msg.sequence = next_sequence_.fetch_add(1, std::memory_order_seq_cst);
  slot.tighten(msg.sequence);
  // Sync is not a logical write: read the clock, do not advance it.
  msg.timestamp_us =
      clock_state_.load(std::memory_order_seq_cst) & kClockMask;
  return enqueue(msg, PooledBuffer::heap(encode_frame(codec, scratch)),
                 PooledBuffer(), &shard);
}

Status PrinsEngine::full_sync() {
  Bytes block(block_size());
  const Codec& codec = codec_for(CodecId::kLz);
  for (Lba lba = 0; lba < num_blocks(); ++lba) {
    PRINS_RETURN_IF_ERROR(enqueue_sync_block(lba, codec, block));
  }
  return drain();
}

Status PrinsEngine::sync_blocks(const std::vector<Lba>& lbas) {
  Bytes block(block_size());
  const Codec& codec = codec_for(CodecId::kLz);
  for (Lba lba : lbas) {
    if (lba >= num_blocks()) {
      return out_of_range("sync_blocks lba " + std::to_string(lba) +
                          " exceeds device of " +
                          std::to_string(num_blocks()) + " blocks");
    }
    PRINS_RETURN_IF_ERROR(enqueue_sync_block(lba, codec, block));
  }
  return drain();
}

Status PrinsEngine::flat_verify_locked(ReplicaLink& link, Lba start,
                                       std::uint64_t count,
                                       std::uint64_t& repaired) {
  const std::uint32_t bs = block_size();
  constexpr std::uint64_t kBatch = 1024;  // checksums per request message
  Bytes block(bs);
  for (std::uint64_t off = 0; off < count; off += kBatch) {
    const std::uint64_t n = std::min(kBatch, count - off);
    std::vector<BlockChecksum> sums;
    sums.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      const Lba lba = start + off + i;
      PRINS_RETURN_IF_ERROR(local_->read(lba, block));
      sums.push_back(BlockChecksum{lba, crc32c(block)});
    }
    ReplicationMessage req;
    req.kind = MessageKind::kVerifyRequest;
    req.cluster_epoch = config_.cluster_epoch;
    req.block_size = bs;
    req.payload = pack_checksums(sums);
    PRINS_RETURN_IF_ERROR(link.transport->send(req.encode()));

    PRINS_ASSIGN_OR_RETURN(Bytes reply_wire, link.transport->recv());
    PRINS_ASSIGN_OR_RETURN(ReplicationMessage reply,
                           ReplicationMessage::decode(reply_wire));
    if (reply.kind != MessageKind::kVerifyReply) {
      return failed_precondition("replica sent non-verify reply");
    }
    PRINS_ASSIGN_OR_RETURN(std::vector<std::uint64_t> bad,
                           unpack_lbas(reply.payload));
    for (std::uint64_t lba : bad) {
      PRINS_RETURN_IF_ERROR(local_->read(lba, block));
      ReplicationMessage repair;
      repair.kind = MessageKind::kRepairBlock;
      repair.cluster_epoch = config_.cluster_epoch;
      repair.block_size = bs;
      repair.lba = lba;
      repair.payload = encode_frame(codec_for(CodecId::kLz), block);
      PRINS_RETURN_IF_ERROR(send_and_ack_locked(link, repair.encode(),
                                                MessageKind::kRepairBlock));
      ++repaired;
    }
  }
  return Status::ok();
}

Result<std::uint64_t> PrinsEngine::verify_and_repair(Lba start,
                                                     std::uint64_t count) {
  if (start >= num_blocks() || count > num_blocks() - start) {
    return out_of_range("verify range exceeds device");
  }
  PRINS_RETURN_IF_ERROR(drain());

  std::uint64_t repaired = 0;
  for (auto& link : replicas_) {
    // Park a reactor-driven sender so this blocking exchange owns the
    // transport (no-op for threaded links).
    LinkExclusive exclusive(*this, link.get());
    std::lock_guard link_lock(link->mutex);
    PRINS_RETURN_IF_ERROR(flat_verify_locked(*link, start, count, repaired));
  }
  return repaired;
}

Result<std::uint64_t> PrinsEngine::verify_and_repair_hierarchical(
    Lba start, std::uint64_t count) {
  if (start >= num_blocks() || count > num_blocks() - start) {
    return out_of_range("verify range exceeds device");
  }
  PRINS_RETURN_IF_ERROR(drain());

  constexpr unsigned kFanout = 16;       // subranges per split
  constexpr std::uint64_t kLeaf = 64;    // blocks: below this, go flat

  std::uint64_t repaired = 0;
  for (auto& link : replicas_) {
    LinkExclusive exclusive(*this, link.get());
    std::lock_guard link_lock(link->mutex);
    std::vector<BlockRange> frontier{BlockRange{start, count}};
    std::vector<BlockRange> leaves;

    while (!frontier.empty()) {
      // Ask the replica to fingerprint the whole frontier in one message.
      ReplicationMessage req;
      req.kind = MessageKind::kHashRequest;
      req.cluster_epoch = config_.cluster_epoch;
      req.block_size = block_size();
      req.payload = pack_ranges(frontier);
      PRINS_RETURN_IF_ERROR(link->transport->send(req.encode()));
      PRINS_ASSIGN_OR_RETURN(Bytes reply_wire, link->transport->recv());
      PRINS_ASSIGN_OR_RETURN(ReplicationMessage reply,
                             ReplicationMessage::decode(reply_wire));
      if (reply.kind != MessageKind::kHashReply) {
        return failed_precondition("replica sent non-hash reply");
      }
      PRINS_ASSIGN_OR_RETURN(std::vector<std::uint64_t> remote,
                             unpack_hashes(reply.payload));
      if (remote.size() != frontier.size()) {
        return corruption("hash reply count mismatch");
      }

      std::vector<BlockRange> next;
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        const BlockRange& range = frontier[i];
        PRINS_ASSIGN_OR_RETURN(std::uint64_t local,
                               hash_block_range(*local_, range));
        if (local == remote[i]) continue;  // range agrees; skip entirely
        if (range.count <= kLeaf) {
          leaves.push_back(range);
          continue;
        }
        // Split the disagreeing range into kFanout children.
        const std::uint64_t step =
            (range.count + kFanout - 1) / kFanout;
        for (std::uint64_t off = 0; off < range.count; off += step) {
          next.push_back(BlockRange{
              range.lba + off, std::min(step, range.count - off)});
        }
      }
      frontier = std::move(next);
    }

    for (const BlockRange& leaf : leaves) {
      PRINS_RETURN_IF_ERROR(
          flat_verify_locked(*link, leaf.lba, leaf.count, repaired));
    }
  }
  return repaired;
}

Status PrinsEngine::fetch_block_from_replica(Lba lba, MutByteSpan out) {
  if (out.size() != block_size()) {
    return invalid_argument("fetch_block_from_replica reads exactly one block");
  }
  if (lba >= num_blocks()) {
    return out_of_range("block " + std::to_string(lba) + " beyond device end");
  }
  std::size_t count = 0;
  {
    std::lock_guard lock(mutex_);
    count = replicas_.size();
  }
  Status last = unavailable("no replicas attached");
  bool any_nak = false;
  for (std::size_t i = 0; i < count; ++i) {
    ReplicaLink* link = nullptr;
    {
      std::lock_guard lock(mutex_);
      link = replicas_[i].get();
      if (link->failed) {
        last = unavailable("replica " + std::to_string(i) + " is down");
        continue;
      }
    }
    ReplicationMessage req;
    req.kind = MessageKind::kReadBlockRequest;
    req.cluster_epoch = config_.cluster_epoch;
    req.block_size = block_size();
    req.lba = lba;
    req.sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
    LinkExclusive exclusive(*this, link);
    std::lock_guard link_lock(link->mutex);
    if (Status sent = link->transport->send(req.encode()); !sent.is_ok()) {
      last = sent;
      continue;
    }
    // A previous exchange that finished early can leave duplicate acks
    // buffered on the transport; skim past anything that is not our reply.
    bool answered = false;
    for (int tries = 0; tries < 16 && !answered; ++tries) {
      auto reply_wire = recv_reply_locked(*link);
      if (!reply_wire.is_ok()) {
        last = reply_wire.status();
        break;
      }
      auto reply = ReplicationMessage::decode(*reply_wire);
      if (!reply.is_ok()) continue;  // torn frame; keep listening
      if (reply->sequence != req.sequence) continue;  // stale ack
      answered = true;
      if (reply->kind == MessageKind::kNak) {
        if (!reply->payload.empty() &&
            reply->payload[0] == static_cast<Byte>(NakReason::kStaleEpoch)) {
          last = fenced_by_replica(*link, reply->cluster_epoch);
          break;
        }
        any_nak = true;
        last = corruption_error("replica " + std::to_string(i) +
                                " cannot serve block " + std::to_string(lba));
        break;
      }
      if (reply->kind != MessageKind::kReadBlockReply || reply->lba != lba) {
        last = failed_precondition("unexpected reply to read-block request");
        break;
      }
      auto block = decode_frame(reply->payload);
      if (!block.is_ok()) {
        last = block.status();
        break;
      }
      if (block->size() != out.size()) {
        last = corruption("read-block reply has the wrong block size");
        break;
      }
      std::copy(block->begin(), block->end(), out.begin());
      return Status::ok();
    }
  }
  // If at least one replica answered "my copy is damaged too", surface that
  // over a transport error: the caller's next escalation differs.
  if (any_nak && last.code() != ErrorCode::kDataCorruption) {
    return corruption_error("every replica copy of block " +
                            std::to_string(lba) + " is damaged");
  }
  return last;
}

Result<ScrubStats> PrinsEngine::scrub(const ScrubberConfig& config,
                                      std::vector<RepairSource> extra_sources) {
  // Quiesce: pause writers first by locking every stripe (writers take
  // exactly one, so any consistent order is deadlock-free), *then* drain,
  // so nothing can slip into an outbox between the drain and the pass —
  // replies in flight on a busy link would be misread as read-block
  // replies, and a half-replicated write under a repaired LBA would
  // resurrect stale bytes.  Writers stay paused for the whole pass.
  std::vector<std::unique_lock<std::mutex>> shard_locks;
  shard_locks.reserve(shards_.size());
  for (auto& shard : shards_) shard_locks.emplace_back(shard->mutex);
  PRINS_RETURN_IF_ERROR(drain());

  Scrubber scrubber(local_, config);
  for (RepairSource& source : extra_sources) {
    scrubber.add_source(std::move(source));
  }
  if (raid_ != nullptr) {
    scrubber.add_source(RepairSource{
        "raid",
        [this](Lba lba, MutByteSpan out) {
          return raid_->repair_block(lba, out);
        },
        /*in_place=*/true});
  }
  if (raid6_ != nullptr) {
    scrubber.add_source(RepairSource{
        "raid6",
        [this](Lba lba, MutByteSpan out) {
          return raid6_->repair_block(lba, out);
        },
        /*in_place=*/true});
  }
  bool have_replicas = false;
  {
    std::lock_guard lock(mutex_);
    have_replicas = !replicas_.empty();
  }
  if (have_replicas) {
    scrubber.add_source(RepairSource{
        "replica",
        [this](Lba lba, MutByteSpan out) {
          return fetch_block_from_replica(lba, out);
        },
        /*in_place=*/false});
  }

  PRINS_ASSIGN_OR_RETURN(ScrubStats pass, scrubber.run_pass());
  if (raid_ != nullptr || raid6_ != nullptr) {
    // Repair write-backs went through the array's small-write path and left
    // parity-observer deltas behind; they are not logical writes and must
    // not leak into the next write's tap lookup.
    std::lock_guard lock(tap_mutex_);
    tap_deltas_.clear();
  }
  {
    std::lock_guard lock(mutex_);
    metrics_.scrub_passes += 1;
    metrics_.scrub_corruptions += pass.corruptions_found;
    metrics_.scrub_repaired += pass.repaired;
    metrics_.scrub_quarantined += pass.quarantined;
  }
  if (pass.quarantined > 0) {
    PRINS_LOG(kError) << "scrub pass quarantined " << pass.quarantined
                      << " unrepairable block(s)";
  }
  return pass;
}

Status PrinsEngine::replay_journal() {
  if (config_.journal == nullptr) {
    return failed_precondition("engine has no journal configured");
  }
  PRINS_ASSIGN_OR_RETURN(std::vector<ReplicationMessage> pending,
                         config_.journal->pending());
  // Fast-forward counters past everything ever journaled so new writes do
  // not collide with replayed sequences (CAS-max; replay runs before new
  // writes, but stay safe against concurrent submitters anyway).
  const std::uint64_t max_seq = config_.journal->max_sequence();
  std::uint64_t seq = next_sequence_.load(std::memory_order_relaxed);
  while (seq < max_seq + 1 &&
         !next_sequence_.compare_exchange_weak(seq, max_seq + 1)) {
  }
  std::uint64_t max_ts = 0;
  for (const auto& msg : pending) {
    max_ts = std::max(max_ts, msg.timestamp_us);
  }
  std::uint64_t state = clock_state_.load(std::memory_order_seq_cst);
  while ((state & kClockMask) < max_ts &&
         !clock_state_.compare_exchange_weak(
             state, (state & ~kClockMask) | max_ts)) {
  }
  for (auto& msg : pending) {
    // The journaled wire bakes in the epoch of the engine that wrote it;
    // ship the replay under *this* engine's epoch, or replicas that already
    // adopted a promoted successor would fence its own recovery traffic.
    msg.cluster_epoch = config_.cluster_epoch;
    // Straight to the outboxes: the message is already in the journal.
    PooledBuffer payload = msg.payload.empty()
                               ? PooledBuffer()
                               : PooledBuffer::heap(std::move(msg.payload));
    msg.payload.clear();
    PRINS_RETURN_IF_ERROR(
        distribute(msg, std::move(payload), PooledBuffer()));
  }
  return Status::ok();
}

Result<std::uint64_t> PrinsEngine::resync_replica(std::size_t index) {
  if (!config_.keep_trap_log) {
    return failed_precondition(
        "resync_replica requires EngineConfig::keep_trap_log");
  }
  ReplicaLink* link = nullptr;
  {
    std::lock_guard lock(mutex_);
    if (index >= replicas_.size()) {
      return invalid_argument("no replica at index " + std::to_string(index));
    }
    link = replicas_[index].get();
  }
  PRINS_RETURN_IF_ERROR(drain());  // quiesce the senders

  const std::uint32_t bs = block_size();
  const Bytes zeros(bs, 0);
  std::uint64_t resynced = 0;

  LinkExclusive exclusive(*this, link);
  std::lock_guard link_lock(link->mutex);
  // Ask the replica where it really is before picking the fold base.  A
  // promoted primary attaches survivors with no ack history
  // (acked_timestamp == 0), and folding the whole trap log onto a replica
  // that already applied a prefix would XOR-undo that prefix; the hello's
  // applied timestamp anchors the fold at the replica's true position.
  std::uint64_t replica_ts = 0;
  PRINS_RETURN_IF_ERROR(hello_locked(*link, replica_ts));
  const std::uint64_t since = std::max(
      link->acked_timestamp.load(std::memory_order_relaxed), replica_ts);
  std::uint64_t newest = since;
  for (Lba lba : trap_log_.blocks_changed_since(since)) {
    // Fold every delta the replica missed: XOR of entries newer than
    // `since` == A_now ⊕ A_since (recover_block on a zero buffer).
    PRINS_ASSIGN_OR_RETURN(Bytes fold,
                           trap_log_.recover_block(lba, since, zeros));
    if (all_zero(fold)) continue;  // missed writes cancelled out

    ReplicationMessage msg;
    msg.kind = MessageKind::kWrite;
    msg.policy = ReplicationPolicy::kPrinsRle;
    msg.cluster_epoch = config_.cluster_epoch;
    msg.block_size = bs;
    msg.lba = lba;
    msg.payload = encode_frame(codec_for(CodecId::kZeroRle), fold);
    msg.sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
    msg.timestamp_us =
        clock_state_.load(std::memory_order_seq_cst) & kClockMask;
    newest = msg.timestamp_us;
    PRINS_RETURN_IF_ERROR(
        send_and_ack_locked(*link, msg.encode(), msg.kind));
    ++resynced;
  }
  link->acked_timestamp.store(newest, std::memory_order_relaxed);

  // The replica is caught up.  If it was the last straggler, the journal
  // freeze has nothing left to guard: writes the outage marked dropped
  // have all been delivered through the fold, so release the watermark
  // (it would otherwise stay frozen for the life of the engine and the
  // journal would grow without bound).
  std::uint64_t watermark = 0;
  {
    std::lock_guard lock(mutex_);
    bool any_failed = false;
    for (const auto& r : replicas_) any_failed |= r->failed;
    if (!any_failed) {
      for (auto& [seq, pending] : outstanding_) pending.dropped = false;
      journal_frozen_ = false;
      watermark = ack_watermark_locked();
    }
  }
  advance_journal_watermark(watermark);
  return resynced;
}

Status PrinsEngine::adopt_recovered_state(std::uint64_t next_sequence,
                                          std::uint64_t applied_timestamp_us,
                                          TrapLog& recovered_trap_log) {
  {
    std::lock_guard lock(mutex_);
    if (!replicas_.empty() || last_distributed_seq_ != 0 ||
        !outstanding_.empty()) {
      return failed_precondition(
          "adopt_recovered_state must run on a fresh engine, before "
          "replicas attach and before the first write");
    }
  }
  // CAS-max both counters: a journal replay that ran first keeps whichever
  // seed is larger, so replayed and recovered sequences never collide.
  std::uint64_t seq = next_sequence_.load(std::memory_order_relaxed);
  while (seq < next_sequence &&
         !next_sequence_.compare_exchange_weak(seq, next_sequence)) {
  }
  std::uint64_t state = clock_state_.load(std::memory_order_seq_cst);
  while ((state & kClockMask) < applied_timestamp_us &&
         !clock_state_.compare_exchange_weak(
             state, (state & ~kClockMask) | applied_timestamp_us)) {
  }
  // The replica's CDP history becomes ours: resync_replica() folds it to
  // catch survivors up to everything the dead primary shipped us.
  recovered_trap_log.move_into(trap_log_);
  return Status::ok();
}

Status PrinsEngine::fenced_by_replica(ReplicaLink& link,
                                      std::uint64_t replica_epoch) {
  Status why = failed_precondition(
      "fenced: replica holds cluster epoch " + std::to_string(replica_epoch) +
      ", this engine stamps " + std::to_string(config_.cluster_epoch) +
      " — a newer primary was promoted");
  std::lock_guard lock(mutex_);
  metrics_.stale_epoch_naks += 1;
  // No heal can outrun a promotion: folding our history onto the new
  // epoch's replicas would corrupt the cluster's surviving timeline.  Keep
  // the journal frozen so an operator can audit what this primary had in
  // flight when it lost the crown.
  link.unhealable = true;
  journal_frozen_ = true;
  if (worker_error_.is_ok()) worker_error_ = why;
  queue_cv_.notify_all();
  if (idle_locked()) drain_cv_.notify_all();
  PRINS_LOG(kError) << "replica " << link.index << " fenced this engine: "
                    << why.to_string();
  return why;
}

std::size_t PrinsEngine::tap_backlog() const {
  std::lock_guard lock(tap_mutex_);
  return tap_deltas_.size();
}

EngineMetrics PrinsEngine::metrics() const {
  EngineMetrics out;
  {
    std::lock_guard lock(mutex_);
    out = metrics_;
    out.journal_frozen = journal_frozen_ ? 1 : 0;
  }
  out.cluster_epoch = config_.cluster_epoch;
  out.replica_reads = replica_reads_.load(std::memory_order_relaxed);
  out.stale_read_retries =
      stale_read_retries_.load(std::memory_order_relaxed);
  out.read_conflicts_local =
      read_conflicts_local_.load(std::memory_order_relaxed);
  if (config_.journal != nullptr) {
    const JournalStats js = config_.journal->stats();
    out.journal_watermark = js.acked_sequence;
    out.journal_pending = js.pending_records;
    out.journal_pending_bytes = js.pending_bytes;
    out.journal_spills = js.spills;
  }
  // Merge the per-shard hot-path counters.  Shard locks are taken *after*
  // releasing mutex_: writers hold a shard lock while waiting for mutex_
  // in distribute(), so nesting the other way would deadlock.
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    out.writes += shard->writes;
    out.raw_bytes += shard->raw_bytes;
    out.payload_bytes += shard->payload_bytes;
    out.payload_sizes.merge(shard->payload_sizes);
    out.dirty_bytes.merge(shard->dirty_bytes);
  }
  return out;
}

std::string PrinsEngine::describe() const {
  return "prins-engine[" + std::string(policy_name(config_.policy)) + "](" +
         local_->describe() + ")";
}

}  // namespace prins
