// Replication wire messages between a PRINS engine and its replicas.
//
// Layout (little-endian):
//   magic "PRrp" (4) | kind (1) | policy (1) | cluster_epoch (8) |
//   block_size (4) | lba (8) | sequence (8) | timestamp_us (8) |
//   payload length (4) | payload | crc32c of everything before it (4)
//
// The payload of kWrite/kSyncBlock/kRepairBlock is a codec frame
// (codec.h); kAck and the verify messages use it for raw data.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "prins/replication_policy.h"

namespace prins {

using Lba = std::uint64_t;  // same alias as block/block_device.h

enum class MessageKind : std::uint8_t {
  kWrite = 1,        // one replicated block write (parity or full block)
  kSyncBlock = 2,    // initial sync: full block contents (compressed)
  kAck = 3,          // replica -> primary: sequence applied
  kVerifyRequest = 4,// primary -> replica: payload = packed (lba, crc) list
  kVerifyReply = 5,  // replica -> primary: payload = packed mismatched lbas
  kRepairBlock = 6,  // primary -> replica: full block contents
  kBarrier = 7,      // flush marker: replica acks when all prior applied
  kHashRequest = 8,  // primary -> replica: payload = packed (lba, count) ranges
  kHashReply = 9,    // replica -> primary: payload = packed range hashes
  kNak = 10,         // replica -> primary: frame arrived corrupt, resend
                     //   (payload byte 0 = NakReason; empty means kResend)
  kHello = 11,       // primary -> replica: report applied position (kAck
                     //   reply carries the replica's applied timestamp)
  kReadBlockRequest = 12,  // primary -> replica: send back block `lba`
  kReadBlockReply = 13,    // replica -> primary: payload = codec frame of
                           //   the requested block's contents
  kAckBatch = 14,          // replica -> primary: payload = packed sequence
                           //   ranges, each applied (cumulative-plus-holes
                           //   ack); `sequence` = newest covered sequence
  kClientReadRequest = 15, // reader -> replica: serve block `lba` if the
                           //   replica's applied state is at least as new
                           //   as the u64 LE `min_sequence` payload;
                           //   `sequence` = requester-local exchange id,
                           //   echoed back for reply matching
  kClientReadReply = 16,   // replica -> reader: payload = raw block bytes
                           //   (no codec frame — the read path trades wire
                           //   compression for zero decode cost);
                           //   `sequence` echoes the request's exchange id
  kReadLease = 17,         // primary -> replica: `sequence` carries the
                           //   primary's all-replicas-acked read floor; the
                           //   replica may serve any read demanding
                           //   min_sequence <= floor without a per-LBA
                           //   check (every write at or below the floor is
                           //   applied everywhere).  Replied with kAck.
  kClientWriteRequest = 18,// cluster client -> owning node: write the
                           //   payload's blocks at `lba`.  Payload = u64 LE
                           //   map epoch (the client's PgMap version), then
                           //   the raw block bytes.  `sequence` is a
                           //   requester-local exchange id, echoed back.
                           //   A node that does not own the LBA's placement
                           //   group under its current map answers kNak
                           //   with NakReason::kWrongPg.
  kClientWriteReply = 19,  // owning node -> client: the write applied (and,
                           //   in synchronous mode, replicated); `sequence`
                           //   echoes the request's exchange id
};

/// Client-frame map-epoch convention: cluster clients append their PgMap
/// epoch to the payloads of kClientWriteRequest (after the block data
/// prefix above) and kClientReadRequest (a second u64 LE after
/// min_sequence, then an optional u32 LE block count).  Plain replicas
/// parse only the fields they know (serve_client_read reads the first 8
/// payload bytes), so epoch-stamped frames stay compatible with
/// epoch-unaware peers; cluster nodes use the epoch to fence stale-map
/// clients with kWrongPg.

/// Optional first payload byte of a kNak, telling the primary how to
/// recover.  Absent payload means kResend (the frame itself was damaged).
enum class NakReason : std::uint8_t {
  kResend = 0,         // frame corrupt in flight: retransmit as-is
  kNeedFullBlock = 1,  // replica's stored A_old is damaged: a parity delta
                       //   cannot apply, send the full block instead
  kStaleEpoch = 2,     // sender's cluster_epoch is behind the replica's: a
                       //   newer primary was promoted, the sender is fenced
                       //   (the NAK header's cluster_epoch carries the
                       //   replica's current epoch)
  kStaleRead = 3,      // kClientReadRequest demanded a min_sequence newer
                       //   than the replica has applied for that LBA: the
                       //   reader should retry at the primary (the NAK's
                       //   `sequence` echoes the request's exchange id)
  kWrongPg = 4,        // a client I/O (kClientWriteRequest /
                       //   kClientReadRequest) landed on a node that does
                       //   not own the LBA's placement group under its
                       //   current map — the client's PgMap is stale or its
                       //   routing is wrong.  NAK payload bytes 1..8 carry
                       //   the node's map epoch (u64 LE) so the client
                       //   knows how far behind it is; it should refresh
                       //   its map and retry at the new owner.  The NAK's
                       //   `sequence` echoes the request's exchange id.
};

/// One contiguous run of applied sequences inside a kAckBatch payload.
/// The replica's ack stage coalesces per-worker completions into runs;
/// holes between runs are sequences still in flight (or NAK'd separately).
struct AckRange {
  std::uint64_t first_sequence = 0;
  std::uint32_t count = 0;

  bool covers(std::uint64_t sequence) const {
    return sequence >= first_sequence && sequence - first_sequence < count;
  }
};

/// kAckBatch payload codec: u32 range count, then per range u64 first
/// sequence + u32 run length.
Bytes pack_ack_ranges(const std::vector<AckRange>& ranges);
Result<std::vector<AckRange>> unpack_ack_ranges(ByteSpan payload);

/// Collapse a set of acked sequences into minimal ranges.  Sorts `acked`
/// in place; duplicates merge into their run.
std::vector<AckRange> coalesce_ack_ranges(std::vector<std::uint64_t>& acked);

struct ReplicationMessage;

/// Decoded message whose payload is a *view* into the wire buffer — the
/// zero-copy sibling of ReplicationMessage.  Valid only while the wire
/// buffer it was decoded from stays alive and unmodified.
struct MessageView {
  MessageKind kind = MessageKind::kWrite;
  ReplicationPolicy policy = ReplicationPolicy::kTraditional;
  std::uint64_t cluster_epoch = 0;  // fencing token; 0 = epoch-unaware peer
  std::uint32_t block_size = 0;
  Lba lba = 0;
  std::uint64_t sequence = 0;
  std::uint64_t timestamp_us = 0;
  ByteSpan payload;

  /// Deep copy into an owning message.
  ReplicationMessage to_message() const;
};

struct ReplicationMessage {
  MessageKind kind = MessageKind::kWrite;
  ReplicationPolicy policy = ReplicationPolicy::kTraditional;
  std::uint64_t cluster_epoch = 0;  // fencing token; 0 = epoch-unaware peer
  std::uint32_t block_size = 0;
  Lba lba = 0;
  std::uint64_t sequence = 0;
  std::uint64_t timestamp_us = 0;  // logical write timestamp (drives TRAP)
  Bytes payload;

  /// Bytes of the fixed wire header (magic through payload length); a full
  /// frame is kWireHeaderSize + payload + 4-byte trailing CRC.
  static constexpr std::size_t kWireHeaderSize =
      4 + 1 + 1 + 8 + 4 + 8 + 8 + 8 + 4;

  Bytes encode() const;

  /// Serialize just the header fields into `out` (exactly kWireHeaderSize
  /// bytes), declaring a payload of `payload_size` bytes.  Lets senders
  /// frame a message scatter-gather: stack header + payload span + trailing
  /// CRC via Transport::send_vec, no contiguous copy.  The trailing CRC
  /// covers header-then-payload, chained with crc32c's seed parameter.
  void encode_header(MutByteSpan out, std::size_t payload_size) const;

  /// Zero-copy decode: identical validation to decode(), but the returned
  /// view's payload aliases `wire`.
  static Result<MessageView> decode_view(ByteSpan wire);

  static Result<ReplicationMessage> decode(ByteSpan wire);

  /// View of this message (payload aliases this->payload).
  MessageView view() const;
};

}  // namespace prins
