// TrapLog: the CDP / TRAP extension from the paper's conclusion.
//
// "The executable code of our implementation is available online ... with
// additional functionalities such as continuous data protection (CDP) and
// timely recovery to any point-in-time (TRAP)."  (PRINS §6, pointing at the
// authors' ISCA'06 TRAP-Array work.)
//
// The insight is that the parity deltas PRINS already ships form an undo
// log: each write's P'_i = A_i ⊕ A_{i-1}, so XOR-ing the current block with
// every delta newer than time T telescopes back to the block's contents at
// T.  Deltas are stored zero-RLE encoded, so the log costs roughly what the
// writes changed, not blocks-times-writes.
//
// Thread-safe.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "block/block_device.h"
#include "common/bytes.h"
#include "common/status.h"

namespace prins {

class TrapLog {
 public:
  /// Record the parity delta of a write to `lba` at `timestamp_us`.
  /// Timestamps per LBA must be non-decreasing (enforced).
  Status append(Lba lba, std::uint64_t timestamp_us, ByteSpan parity_delta);

  /// Contents of `lba` as of time T (inclusive: the state after all writes
  /// with timestamp <= T), given its `current` contents.
  /// Fails if history for this block has been truncated past T.
  Result<Bytes> recover_block(Lba lba, std::uint64_t t, ByteSpan current) const;

  /// Roll every logged block of `device` back to its state at time T.
  Status recover_device(BlockDevice& device, std::uint64_t t) const;

  /// Drop all entries with timestamp < t (bounds the CDP window).
  /// After this, recovery to times earlier than the oldest retained entry's
  /// predecessor state is refused for affected blocks.
  void truncate_before(std::uint64_t t);

  /// Coarsen history: per block, merge (XOR) all entries with timestamps
  /// in [t1, t2] into a single entry stamped with the newest merged
  /// timestamp.  Recovery to any instant *strictly inside* a merged span
  /// is refused afterwards; recovery outside it stays exact.  Returns the
  /// number of entries eliminated.  This is how a CDP deployment keeps
  /// fine-grained recent history and hourly/daily granularity further
  /// back without ever rewriting data blocks.
  std::uint64_t compact_range(std::uint64_t t1, std::uint64_t t2);

  /// Timestamps recorded for `lba`, oldest first (for picking recovery
  /// points in tools/tests).
  std::vector<std::uint64_t> timestamps(Lba lba) const;

  /// Blocks with at least one entry newer than `t` — the stale set a
  /// replica last synced at `t` needs (drives delta resynchronization).
  std::vector<Lba> blocks_changed_since(std::uint64_t t) const;

  /// Blocks with at least one entry in (after, upto] — the stale set for a
  /// *bounded* resync window (auto-heal folds only up to its snapshot so
  /// writes racing the heal aren't double-counted).
  std::vector<Lba> blocks_changed_in(std::uint64_t after,
                                     std::uint64_t upto) const;

  /// XOR-fold of every delta for `lba` with timestamp in (after, upto],
  /// as one raw (decoded) delta of `block_size` bytes.  This is the parity
  /// a replica consistent at `after` needs to reach `upto`:
  /// A_upto = A_after ⊕ fold.  All-zero result means "no entries in range"
  /// (or deltas that cancel — either way the replica needs nothing).
  /// Fails kFailedPrecondition when truncation/compaction straddles either
  /// boundary, making the window unreconstructible.
  Result<Bytes> fold_range(Lba lba, std::uint64_t after, std::uint64_t upto,
                           std::size_t block_size) const;

  /// Persist the whole log to a file (checksummed snapshot).  CDP history
  /// must survive a replica restart to keep its recovery window.
  Status save(const std::string& path) const;

  /// Merge a snapshot written by save() into this log.  Typically called
  /// on an empty log at startup.  Per-block timestamps must still be
  /// non-decreasing after the merge.
  Status load_from(const std::string& path);

  /// Move this log's entire contents into `dest`, leaving this log empty.
  /// Used at promotion: the replica's CDP history becomes the new primary's
  /// resync source, so survivor catch-up can fold the deltas the old
  /// primary shipped before it died.  Per-block timestamps must still be
  /// non-decreasing after the merge (trivially true when `dest` is empty).
  void move_into(TrapLog& dest);

  std::uint64_t total_entries() const;
  /// Bytes of encoded delta storage currently held.
  std::uint64_t stored_bytes() const;
  /// Sum of the raw (decoded) delta sizes ever appended — what a
  /// traditional before-image CDP log would have stored.
  std::uint64_t raw_bytes_logged() const;

 private:
  struct Entry {
    std::uint64_t timestamp_us;         // newest write folded into this entry
    std::uint64_t oldest_timestamp_us;  // == timestamp_us unless compacted
    Bytes encoded_delta;                // zero-RLE frame
  };
  struct BlockHistory {
    std::vector<Entry> entries;  // ascending timestamps
    // Recovery is only possible to T >= this (raised by truncate_before).
    std::uint64_t min_recoverable = 0;
  };

  mutable std::mutex mutex_;
  std::map<Lba, BlockHistory> log_;
  std::uint64_t stored_bytes_ = 0;
  std::uint64_t raw_bytes_ = 0;
  std::uint64_t entries_ = 0;
};

}  // namespace prins
