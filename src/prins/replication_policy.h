// Replication policies: the three techniques the paper compares, plus an
// ablation variant.
//
//   kTraditional            — ship the whole changed block (red bars).
//   kTraditionalCompressed  — whole block through the LZ compressor, the
//                             zlib baseline (blue bars).
//   kPrins                  — ship the write parity P' = new ⊕ old, encoded
//                             zero-RLE then LZ, mirroring the paper's
//                             zlib-encoded parity (golden bars).
//   kPrinsRle               — parity with zero-RLE only; isolates how much
//                             of PRINS's win is "mostly zeros" vs "LZ on the
//                             residue" (ablation bench).
#pragma once

#include <cstdint>
#include <string_view>

#include "codec/codec.h"

namespace prins {

enum class ReplicationPolicy : std::uint8_t {
  kTraditional = 0,
  kTraditionalCompressed = 1,
  kPrins = 2,
  kPrinsRle = 3,
};

/// True when the policy ships parity deltas (replica must XOR with its old
/// copy); false when it ships self-contained block contents.
constexpr bool ships_parity(ReplicationPolicy policy) {
  return policy == ReplicationPolicy::kPrins ||
         policy == ReplicationPolicy::kPrinsRle;
}

/// Codec applied to the replication payload under this policy.
inline const Codec& payload_codec(ReplicationPolicy policy) {
  switch (policy) {
    case ReplicationPolicy::kTraditional:
      return codec_for(CodecId::kNull);
    case ReplicationPolicy::kTraditionalCompressed:
      return codec_for(CodecId::kLz);
    case ReplicationPolicy::kPrins:
      return codec_for(CodecId::kZeroRleLz);
    case ReplicationPolicy::kPrinsRle:
      return codec_for(CodecId::kZeroRle);
  }
  return codec_for(CodecId::kNull);
}

constexpr std::string_view policy_name(ReplicationPolicy policy) {
  switch (policy) {
    case ReplicationPolicy::kTraditional: return "traditional";
    case ReplicationPolicy::kTraditionalCompressed: return "trad+compress";
    case ReplicationPolicy::kPrins: return "PRINS";
    case ReplicationPolicy::kPrinsRle: return "PRINS-rle";
  }
  return "?";
}

}  // namespace prins
