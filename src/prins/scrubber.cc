#include "prins/scrubber.h"

namespace prins {

Scrubber::Scrubber(std::shared_ptr<BlockDevice> device, ScrubberConfig config)
    : device_(std::move(device)), config_(config) {}

Scrubber::~Scrubber() { stop(); }

void Scrubber::add_source(RepairSource source) {
  std::lock_guard lock(mutex_);
  sources_.push_back(std::move(source));
}

void Scrubber::repair_block(Lba lba, ScrubStats& pass) {
  const std::uint32_t bs = device_->block_size();
  std::vector<RepairSource> sources;
  {
    std::lock_guard lock(mutex_);
    sources = sources_;
  }
  Bytes good(bs);
  Bytes check(bs);
  for (const RepairSource& source : sources) {
    if (!source.fetch) continue;
    if (!source.fetch(lba, good).is_ok()) continue;
    if (!source.in_place && !device_->write(lba, good).is_ok()) continue;
    // Count the repair only if the verifying layer now agrees.
    if (device_->read(lba, check).is_ok()) {
      ++pass.repaired;
      ++pass.repaired_by[source.name];
      std::lock_guard lock(mutex_);
      quarantine_.erase(lba);
      return;
    }
  }
  std::lock_guard lock(mutex_);
  if (quarantine_.insert(lba).second) ++pass.quarantined;
}

Result<ScrubStats> Scrubber::run_pass() {
  ScrubStats pass;
  const std::uint32_t bs = device_->block_size();
  const std::uint64_t blocks = device_->num_blocks();
  const std::uint64_t batch =
      config_.batch_blocks == 0 ? 64 : config_.batch_blocks;
  Bytes block(bs);
  const auto started = std::chrono::steady_clock::now();
  for (Lba lba = 0; lba < blocks; ++lba) {
    const Status read = device_->read(lba, block);
    ++pass.blocks_scanned;
    if (read.code() == ErrorCode::kDataCorruption) {
      ++pass.corruptions_found;
      repair_block(lba, pass);
    } else if (!read.is_ok()) {
      ++pass.read_errors;  // transient / dead device: nothing to verify
    }
    if ((lba + 1) % batch == 0) {
      std::unique_lock lock(mutex_);
      if (stopping_) break;
      if (config_.blocks_per_second > 0) {
        // Pace against the wall clock: sleep until the scanned count is
        // back under budget (interruptible by stop()).
        const auto due =
            started + std::chrono::microseconds(pass.blocks_scanned *
                                                1'000'000 /
                                                config_.blocks_per_second);
        stop_cv_.wait_until(lock, due, [&] { return stopping_; });
        if (stopping_) break;
      }
    }
  }
  ++pass.passes;
  std::lock_guard lock(mutex_);
  merge_pass_locked(pass);
  return pass;
}

void Scrubber::merge_pass_locked(const ScrubStats& pass) {
  total_.passes += pass.passes;
  total_.blocks_scanned += pass.blocks_scanned;
  total_.corruptions_found += pass.corruptions_found;
  total_.repaired += pass.repaired;
  for (const auto& [name, count] : pass.repaired_by) {
    total_.repaired_by[name] += count;
  }
  total_.quarantined += pass.quarantined;
  total_.read_errors += pass.read_errors;
}

void Scrubber::start(std::chrono::milliseconds interval) {
  stop();
  {
    std::lock_guard lock(mutex_);
    stopping_ = false;
  }
  worker_ = std::thread([this, interval] {
    for (;;) {
      (void)run_pass();
      std::unique_lock lock(mutex_);
      if (stop_cv_.wait_for(lock, interval, [&] { return stopping_; })) {
        return;
      }
    }
  });
}

void Scrubber::stop() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  std::lock_guard lock(mutex_);
  stopping_ = false;
}

ScrubStats Scrubber::stats() const {
  std::lock_guard lock(mutex_);
  return total_;
}

std::vector<Lba> Scrubber::quarantined() const {
  std::lock_guard lock(mutex_);
  return {quarantine_.begin(), quarantine_.end()};
}

}  // namespace prins
