// ReplicaEngine: the replica-side PRINS engine.
//
// "The counterpart PRINS-engine at the replica node will listen on the
// network to receive replicated parity.  Upon receiving such parity, [it]
// will perform the reverse computation ... and store the data in its local
// storage using the same LBA."  (§2)
//
// serve() runs a bounded pipeline mirroring the primary's sharded submit
// side: a demux stage decodes each frame once (decode_view, zero-copy) and
// dispatches write-kind messages to N apply workers striped by LBA, so
// same-block parity deltas stay serialized (XOR chains must telescope)
// while independent blocks apply concurrently.  Worker completions flow to
// an ack stage that coalesces them into cumulative kAckBatch frames.  An
// optional write-through LRU (the old-block apply cache) elides the
// read-modify-write disk read for hot LBAs, and the intent log group-
// commits so parallel workers share fsyncs.  Optionally feeds every
// applied delta into a TrapLog, giving the replica continuous data
// protection for free.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "block/block_device.h"
#include "common/histogram.h"
#include "net/transport.h"
#include "prins/intent_log.h"
#include "prins/message.h"
#include "prins/trap_log.h"

namespace prins {

class CachedDisk;
class PrinsEngine;
struct EngineConfig;

struct ReplicaConfig {
  /// Record parity deltas of applied writes for point-in-time recovery.
  bool keep_trap_log = false;
  /// Crash-atomic apply: durably record (sequence, LBA, CRC of the new
  /// block) before every in-place write, so a restart can tell applied
  /// writes from torn ones (call recover_intents()).  Null disables.
  std::shared_ptr<WriteIntentLog> intent_log;
  /// Applies between intent-log checkpoints (device flush + log truncate);
  /// 0 checkpoints only on barriers.  Bounds both the log size and the
  /// restart replay work.
  std::uint64_t intent_checkpoint_every = 256;
  /// Apply workers serve() runs, striped by LBA (shard = lba mod shards)
  /// so same-block deltas keep their order while independent blocks apply
  /// concurrently.  0 (default) auto-sizes: the PRINS_APPLY_SHARDS
  /// environment variable if set, else the hardware thread count; the
  /// result is rounded up to a power of two (masking beats modulo) and
  /// clamped to 32.  1 reproduces the historical in-order loop.
  std::size_t apply_shards = 0;
  /// Frames a shard's dispatch queue may hold; the demux stage blocks when
  /// full, back-pressuring the transport.
  std::size_t apply_queue_capacity = 128;
  /// Max completions folded into one ack frame.  1 disables batching
  /// (every apply acks individually, the pre-pipeline wire behavior).
  std::size_t ack_coalesce_max = 64;
  /// Old-block apply cache: capacity (in blocks) of a write-through LRU in
  /// front of the local device's apply path, so the A_old read of a hot
  /// LBA's read-modify-write never touches the disk.  0 (default)
  /// disables — tests that inject corruption under the replica rely on
  /// every read observing the medium.
  std::size_t old_block_cache_blocks = 0;
  /// Fencing epoch this replica starts in.  Frames stamped with an older
  /// cluster_epoch are rejected with NakReason::kStaleEpoch (a zombie
  /// primary that missed a promotion); frames with a newer one advance the
  /// replica's epoch.  0 is the epoch-unaware legacy world.
  std::uint64_t cluster_epoch = 0;
};

struct ReplicaMetrics {
  std::uint64_t writes_applied = 0;
  std::uint64_t parity_applies = 0;   // writes applied via backward parity
  std::uint64_t sync_blocks = 0;
  std::uint64_t repairs = 0;
  std::uint64_t verify_requests = 0;
  std::uint64_t bytes_received = 0;   // wire message bytes
  std::uint64_t duplicates_dropped = 0;  // re-delivered sequences not applied
  std::uint64_t naks_sent = 0;           // corrupt frames bounced back
  std::uint64_t repair_reads_served = 0;  // kReadBlockRequest blocks returned
                                          //   (scrubber repair pulls)
  std::uint64_t client_reads_served = 0;  // kClientReadRequest blocks served
                                          //   (read offload from the router)
  std::uint64_t stale_read_naks = 0;      // client reads refused: demanded
                                          //   min_sequence not yet applied
  std::uint64_t torn_blocks_detected = 0;  // intent replay found a torn apply
  std::uint64_t full_repairs_requested = 0;  // NAKs asking for a full block
  // Pipeline counters (serve()'s demux/worker/ack stages).
  std::uint64_t ack_batches = 0;       // kAckBatch frames sent
  std::uint64_t acks_batched = 0;      // completions those frames covered
  std::uint64_t apply_queue_peak = 0;  // deepest dispatch queue observed
  std::uint64_t cache_hits = 0;        // old-block apply cache
  std::uint64_t cache_misses = 0;
  std::uint64_t intent_records = 0;    // intents recorded (group commit...)
  std::uint64_t intent_fsyncs = 0;     // ...amortizes these across workers
  std::uint64_t stale_epoch_naks = 0;  // fenced frames from a zombie primary
};

class ReplicaEngine {
 public:
  ReplicaEngine(std::shared_ptr<BlockDevice> local, ReplicaConfig config = {});
  ~ReplicaEngine();

  /// Serve one primary connection until it closes.  OK on clean disconnect.
  /// A frame that fails CRC/decode is NAK'd (the primary retransmits), not
  /// fatal; device errors still end the session with the error.
  Status serve(Transport& transport);

  /// Apply a single message and build the reply (ACK / verify reply / NAK).
  /// Exposed for deterministic unit tests; serve() pipelines this logic.
  ///
  /// Write-kind messages with a nonzero sequence are deduplicated against a
  /// sliding window of recently applied sequences: a re-delivered message
  /// (duplicate on the wire, or a primary replaying un-acked traffic after
  /// a reconnect) is ACK'd without touching the device.  This is what makes
  /// primary-side retransmission safe — applying a parity delta twice would
  /// XOR the write back *out*.
  Result<ReplicationMessage> apply(const ReplicationMessage& message);

  /// Zero-copy variant: the payload span may alias the wire buffer (see
  /// ReplicationMessage::decode_view), so nothing is copied between recv()
  /// and the device write.  serve() uses this; apply() wraps it.
  Result<ReplicationMessage> apply_view(const MessageView& message);

  /// Replay the write-intent log after a restart.  A block whose contents
  /// CRC-match one of its intents completed that apply — its sequence (and
  /// its predecessors') re-enter the dedup window so the primary's replay
  /// is ACK'd without re-XOR-ing the write out.  A block matching no intent
  /// is torn (or its apply never ran; the two are indistinguishable, and
  /// both are unsafe to patch): it is marked damaged, and parity applies to
  /// it are NAK'd with NakReason::kNeedFullBlock until a full-contents
  /// write (repair/sync) lands.  Returns the damaged LBAs.
  Result<std::vector<Lba>> recover_intents();

  /// Blocks currently marked damaged (awaiting full-block repair).
  std::vector<Lba> damaged_blocks() const;

  /// Promote this replica to primary: finish crash recovery (intent-log
  /// replay), bump the cluster epoch, and return a live PrinsEngine over
  /// this replica's device at the new epoch.  The engine's sequence counter
  /// and logical clock are fast-forwarded past everything this replica
  /// applied, and the replica's CDP trap log moves into the engine so
  /// surviving replicas can be caught up with delta resyncs
  /// (resync_replica) instead of full-volume syncs.  Fails
  /// kFailedPrecondition while torn blocks await full-block repair — a
  /// damaged copy must not become the cluster's source of truth.
  /// Stop serving replication traffic into this ReplicaEngine first; the
  /// replica keeps fencing stale-epoch frames afterwards, so a zombie
  /// primary that reappears is rejected with NakReason::kStaleEpoch.
  Result<std::unique_ptr<PrinsEngine>> promote(EngineConfig config);

  /// Fencing epoch this replica currently enforces.
  std::uint64_t cluster_epoch() const {
    return cluster_epoch_.load(std::memory_order_acquire);
  }

  /// Highest all-replicas-acked sequence the primary has published via
  /// kReadLease.  Any client read demanding min_sequence <= this floor is
  /// fresh without a per-LBA lookup (every write at or below it is applied
  /// everywhere, including here).
  std::uint64_t read_lease_floor() const {
    return read_lease_floor_.load(std::memory_order_acquire);
  }

  ReplicaMetrics metrics() const;

  /// Newest write timestamp applied to the device (0 before any write).
  /// Reported in the kHello reply so a healing primary can pick a correct
  /// trap-log fold base even if its own view of the link went stale.
  std::uint64_t applied_timestamp() const;

  /// Resolved apply-worker count (config.apply_shards after auto-sizing).
  std::size_t apply_shards() const { return shards_.size(); }

  /// The CDP log (empty unless config.keep_trap_log).
  TrapLog& trap_log() { return trap_log_; }
  const TrapLog& trap_log() const { return trap_log_; }

  BlockDevice& device() { return *local_; }

 private:
  // The reactor-hosted server pipelines apply_write_message/metrics the
  // same way serve() does, without a thread per connection.
  friend class ReactorReplicaServer;

  /// What a write-kind apply tells the ack stage.
  enum class ApplyOutcome : std::uint8_t {
    kApplied = 0,       // ack it (covers deduplicated redeliveries)
    kNakResend = 1,     // codec frame corrupt: retransmit as-is
    kNakFullBlock = 2,  // stored A_old damaged: only a full block can land
    kNakStaleEpoch = 3  // sender is fenced: a newer primary was promoted
  };

  // Per-LBA-stripe apply state.  A shard's mutex is held for the whole
  // dedup-check -> intent -> write -> record-applied span, so an intent-log
  // checkpoint can quiesce every in-flight apply by locking all shards.
  struct ApplyShard {
    mutable std::mutex mutex;
    std::unordered_set<std::uint64_t> applied_set;
    std::deque<std::uint64_t> applied_fifo;
    std::set<Lba> damaged;  // torn/corrupt blocks; parity cannot apply
    // Newest applied sequence per LBA, for client-read freshness checks.
    // Same-LBA applies are serialized by this shard, so an entry >= the
    // demanded min_sequence proves every same-LBA write at or below it has
    // landed.  One entry per LBA ever written through this shard — bounded
    // by the volume size, like a per-block version table.
    std::unordered_map<Lba, std::uint64_t> newest_applied;
  };

  ApplyShard& shard_for(Lba lba) {
    return *shards_[lba & (shards_.size() - 1)];
  }

  /// Dedup-check + apply + record, under the LBA's shard lock.  Returns
  /// the ack/NAK disposition; a non-OK status is a fatal session error.
  Result<ApplyOutcome> apply_write_message(const MessageView& message);

  /// apply_view minus fencing and reply epoch-stamping (the kind switch).
  Result<ReplicationMessage> dispatch_view(const MessageView& message);

  /// Serve a kClientReadRequest: fence the epoch, refuse damaged blocks,
  /// check the demanded min_sequence against the per-LBA applied table and
  /// the lease floor, and read the block under the LBA's shard lock so the
  /// reply is atomic with respect to in-flight applies on that stripe.
  /// Stale demands come back as a kNak carrying NakReason::kStaleRead.
  Result<ReplicationMessage> serve_client_read(const MessageView& message);

  Status apply_write_locked(ApplyShard& shard, const MessageView& message,
                            bool* checkpoint_due);
  Result<ReplicationMessage> apply_verify(const MessageView& message);
  /// Device flush + intent-log truncate with every shard locked (no apply
  /// can sit between its intent record and its device write).
  Status checkpoint_intents();
  void bump_timestamp(std::uint64_t timestamp_us);
  static bool already_applied(const ApplyShard& shard, std::uint64_t sequence);
  static void record_applied(ApplyShard& shard, std::uint64_t sequence);

  /// Fencing check for one inbound frame: a newer epoch is adopted (the
  /// frame is from a freshly promoted primary), the current epoch passes,
  /// an older one is stale — the caller must NAK with kStaleEpoch and must
  /// not touch the device.
  bool epoch_current(std::uint64_t frame_epoch);
  /// Build the stale-epoch NAK for a fenced frame; the header's
  /// cluster_epoch carries our epoch so the zombie learns how far behind
  /// it is.
  ReplicationMessage stale_epoch_nak(std::uint64_t sequence, Lba lba);

  std::shared_ptr<BlockDevice> local_;
  ReplicaConfig config_;
  // Apply-path device: `local_` wrapped in a write-through CachedDisk when
  // config.old_block_cache_blocks > 0, else `local_` itself.  Reads for
  // verify/hash/scrub replies go straight to `local_` — scans must observe
  // the medium and must not wash the LRU.
  std::shared_ptr<BlockDevice> apply_dev_;
  std::shared_ptr<CachedDisk> cache_;  // null when the cache is disabled
  TrapLog trap_log_;
  std::mutex trap_mutex_;  // appends come from concurrent apply workers
  mutable std::mutex mutex_;  // guards metrics_ only
  ReplicaMetrics metrics_;
  // Sliding dedup window, striped with the applies: set + FIFO of recently
  // applied sequences per shard.  A sequence always carries the same LBA,
  // so a redelivery lands on the shard that recorded it.  Bounded so a
  // long-lived replica doesn't hold every sequence ever seen; the window is
  // far wider than any in-flight pipeline, so a live duplicate always hits.
  std::vector<std::unique_ptr<ApplyShard>> shards_;
  std::atomic<std::uint64_t> cluster_epoch_{0};
  std::atomic<std::uint64_t> read_lease_floor_{0};
  std::atomic<std::uint64_t> applied_timestamp_us_{0};
  std::atomic<std::uint64_t> applies_since_checkpoint_{0};
  std::atomic<std::uint64_t> apply_queue_peak_{0};
  std::mutex checkpoint_mutex_;  // one all-shard quiesce at a time
};

/// Run replica.serve(transport) for every connection accepted from
/// `listener`, each on its own service thread, so concurrent initiators
/// are served concurrently.  Transient accept() errors (ECONNABORTED, an
/// injected listener fault) are retried; the loop exits cleanly only when
/// the listener closes (or accept() fails persistently).  Join the
/// returned thread after closing the listener; it joins every session
/// thread first.  For O(1)-thread serving on a reactor listener, use
/// ReactorReplicaServer (prins/reactor_server.h) instead.
std::thread replica_serve_in_background(std::shared_ptr<ReplicaEngine> replica,
                                        std::shared_ptr<Listener> listener);

}  // namespace prins
