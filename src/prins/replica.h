// ReplicaEngine: the replica-side PRINS engine.
//
// "The counterpart PRINS-engine at the replica node will listen on the
// network to receive replicated parity.  Upon receiving such parity, [it]
// will perform the reverse computation ... and store the data in its local
// storage using the same LBA."  (§2)
//
// serve() loops on a transport: decodes each replication message, applies
// it to the local device (backward parity computation for PRINS policies,
// plain writes for traditional ones, checksum answers for verify), and
// ACKs.  Optionally feeds every applied delta into a TrapLog, giving the
// replica continuous data protection for free.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_set>
#include <vector>

#include "block/block_device.h"
#include "common/histogram.h"
#include "net/transport.h"
#include "prins/intent_log.h"
#include "prins/message.h"
#include "prins/trap_log.h"

namespace prins {

struct ReplicaConfig {
  /// Record parity deltas of applied writes for point-in-time recovery.
  bool keep_trap_log = false;
  /// Crash-atomic apply: durably record (sequence, LBA, CRC of the new
  /// block) before every in-place write, so a restart can tell applied
  /// writes from torn ones (call recover_intents()).  Null disables.
  std::shared_ptr<WriteIntentLog> intent_log;
  /// Applies between intent-log checkpoints (device flush + log truncate);
  /// 0 checkpoints only on barriers.  Bounds both the log size and the
  /// restart replay work.
  std::uint64_t intent_checkpoint_every = 256;
};

struct ReplicaMetrics {
  std::uint64_t writes_applied = 0;
  std::uint64_t parity_applies = 0;   // writes applied via backward parity
  std::uint64_t sync_blocks = 0;
  std::uint64_t repairs = 0;
  std::uint64_t verify_requests = 0;
  std::uint64_t bytes_received = 0;   // wire message bytes
  std::uint64_t duplicates_dropped = 0;  // re-delivered sequences not applied
  std::uint64_t naks_sent = 0;           // corrupt frames bounced back
  std::uint64_t reads_served = 0;        // kReadBlockRequest blocks returned
  std::uint64_t torn_blocks_detected = 0;  // intent replay found a torn apply
  std::uint64_t full_repairs_requested = 0;  // NAKs asking for a full block
};

class ReplicaEngine {
 public:
  ReplicaEngine(std::shared_ptr<BlockDevice> local, ReplicaConfig config = {});

  /// Serve one primary connection until it closes.  OK on clean disconnect.
  /// A frame that fails CRC/decode is NAK'd (the primary retransmits), not
  /// fatal; device errors still end the session with the error.
  Status serve(Transport& transport);

  /// Apply a single message and build the reply (ACK / verify reply / NAK).
  /// Exposed for deterministic unit tests; serve() is this in a loop.
  ///
  /// Write-kind messages with a nonzero sequence are deduplicated against a
  /// sliding window of recently applied sequences: a re-delivered message
  /// (duplicate on the wire, or a primary replaying un-acked traffic after
  /// a reconnect) is ACK'd without touching the device.  This is what makes
  /// primary-side retransmission safe — applying a parity delta twice would
  /// XOR the write back *out*.
  Result<ReplicationMessage> apply(const ReplicationMessage& message);

  /// Zero-copy variant: the payload span may alias the wire buffer (see
  /// ReplicationMessage::decode_view), so nothing is copied between recv()
  /// and the device write.  serve() uses this; apply() wraps it.
  Result<ReplicationMessage> apply_view(const MessageView& message);

  /// Replay the write-intent log after a restart.  A block whose contents
  /// CRC-match one of its intents completed that apply — its sequence (and
  /// its predecessors') re-enter the dedup window so the primary's replay
  /// is ACK'd without re-XOR-ing the write out.  A block matching no intent
  /// is torn (or its apply never ran; the two are indistinguishable, and
  /// both are unsafe to patch): it is marked damaged, and parity applies to
  /// it are NAK'd with NakReason::kNeedFullBlock until a full-contents
  /// write (repair/sync) lands.  Returns the damaged LBAs.
  Result<std::vector<Lba>> recover_intents();

  /// Blocks currently marked damaged (awaiting full-block repair).
  std::vector<Lba> damaged_blocks() const;

  ReplicaMetrics metrics() const;

  /// Newest write timestamp applied to the device (0 before any write).
  /// Reported in the kHello reply so a healing primary can pick a correct
  /// trap-log fold base even if its own view of the link went stale.
  std::uint64_t applied_timestamp() const;

  /// The CDP log (empty unless config.keep_trap_log).
  TrapLog& trap_log() { return trap_log_; }
  const TrapLog& trap_log() const { return trap_log_; }

  BlockDevice& device() { return *local_; }

 private:
  Status apply_write(const MessageView& message);
  Result<ReplicationMessage> apply_verify(const MessageView& message);
  bool already_applied_locked(std::uint64_t sequence) const;
  void record_applied_locked(std::uint64_t sequence);

  std::shared_ptr<BlockDevice> local_;
  ReplicaConfig config_;
  TrapLog trap_log_;
  mutable std::mutex mutex_;
  ReplicaMetrics metrics_;
  // Sliding dedup window (set + FIFO of the same sequences).  Bounded so a
  // long-lived replica doesn't hold every sequence ever seen; the window is
  // far wider than any in-flight pipeline, so a live duplicate always hits.
  std::unordered_set<std::uint64_t> applied_set_;
  std::deque<std::uint64_t> applied_fifo_;
  std::uint64_t applied_timestamp_us_ = 0;
  std::set<Lba> damaged_;  // torn/corrupt blocks; parity cannot apply
  std::uint64_t applies_since_checkpoint_ = 0;
};

/// Run replica.serve(transport) for every connection accepted from
/// `listener` on a background thread (sequentially).  Join after closing
/// the listener.
std::thread replica_serve_in_background(std::shared_ptr<ReplicaEngine> replica,
                                        std::shared_ptr<Listener> listener);

}  // namespace prins
