// ReadRouter: load-aware read offload across replica mirrors.
//
// A BlockDevice decorator over the primary PrinsEngine.  Writes and
// flushes pass straight through; each block read is first classified by
// the engine's recent-writes conflict window (classify_read):
//
//   kLocal        a write to that LBA may still be in flight somewhere —
//                 the primary serves the read itself, exactly as before;
//   kOffloadable  every write to that LBA is acked by all replicas — ANY
//                 replica serves it correctly, so the router fans the read
//                 out across its read links (round-robin or
//                 least-outstanding) with a kClientReadRequest demanding
//                 at-least-min_sequence freshness.
//
// The replica proves freshness from its per-LBA applied table or the
// primary's published read lease and answers with the raw block; if it
// cannot (kStaleRead NAK, a damaged block, a timeout, a dead link), the
// router falls back to the primary's local device, so offload can degrade
// availability by exactly nothing.  A link that draws kStaleEpoch (the
// replica was promoted past this primary) degrades sticky — data from a
// fenced pairing must never be trusted again.
//
// Attach read links only to replicas that are caught up with the primary
// (freshly attached mirrors need full_sync() + drain() first): the
// conflict window tracks writes issued by THIS engine, so history a mirror
// never received is invisible to the freshness check.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

#include "block/block_device.h"
#include "net/transport.h"
#include "prins/engine.h"

namespace prins {

/// How the router spreads offloadable reads across healthy links.
enum class ReadPolicy : std::uint8_t {
  kRoundRobin = 0,        // rotate; even spread under uniform service times
  kLeastOutstanding = 1,  // pick the link with the fewest reads in flight;
                          //   adapts to a slow or distant mirror
};

struct ReadRouterConfig {
  ReadPolicy policy = ReadPolicy::kRoundRobin;
  /// Per-reply receive deadline on a read link; an expired read falls back
  /// to the primary and counts toward the link's failure streak.
  std::chrono::milliseconds op_timeout{1000};
  /// Consecutive failed exchanges (timeout / transport error) before a
  /// link is degraded sticky.  A successful exchange resets the streak.
  std::size_t degrade_after = 3;
  /// Renew the read lease on each link whenever the engine's read floor
  /// has advanced this far past the last value published there.  The lease
  /// lets a replica serve any demand at or below the floor without a
  /// per-LBA lookup (e.g. for blocks it never saw a delta for).
  /// 0 disables lease renewal.
  std::uint64_t lease_renew_every = 256;
};

class ReadRouter final : public BlockDevice {
 public:
  ReadRouter(std::shared_ptr<PrinsEngine> engine, ReadRouterConfig config = {});
  ~ReadRouter() override;

  ReadRouter(const ReadRouter&) = delete;
  ReadRouter& operator=(const ReadRouter&) = delete;

  /// Attach a read link (a client connection to a replica's listener; both
  /// ReplicaEngine::serve() and ReactorReplicaServer speak the client-read
  /// protocol).  The router owns the transport.  Add links before the
  /// first read.
  void add_read_replica(std::unique_ptr<Transport> link);

  std::size_t read_replica_count() const { return links_.size(); }
  /// Links not yet degraded (a degraded link never serves again).
  std::size_t healthy_links() const;

  std::uint32_t block_size() const override { return engine_->block_size(); }
  std::uint64_t num_blocks() const override { return engine_->num_blocks(); }
  Status read(Lba lba, MutByteSpan out) override;
  Status write(Lba lba, ByteSpan data) override { return engine_->write(lba, data); }
  Status flush() override { return engine_->flush(); }
  std::string describe() const override;

  /// Read one block demanding at-least-`min_sequence` freshness from
  /// whichever node serves it (the replica proves the demand or NAKs; the
  /// primary trivially satisfies any demand).  read() is this with the
  /// conflict window's own minimum.
  Status read_fresh(Lba lba, MutByteSpan out, std::uint64_t min_sequence);

 private:
  struct ReadLink {
    std::unique_ptr<Transport> transport;
    std::mutex mutex;  // one request/reply exchange on the wire at a time
    std::atomic<std::size_t> outstanding{0};  // reads queued or in flight
    std::atomic<bool> degraded{false};
    std::size_t failure_streak = 0;         // guarded by mutex
    std::uint64_t lease_published = 0;      // guarded by mutex
  };

  /// Serve one offloadable block from a replica.  OK = `out` holds fresh
  /// data; any error means the caller must fall back to the primary (the
  /// link's health bookkeeping has already been updated).
  Status read_from_replica(ReadLink& link, Lba lba, MutByteSpan out,
                           std::uint64_t min_sequence);
  /// Publish the engine's read floor as a kReadLease if it has advanced
  /// far enough (link mutex held).  Lease failures are soft: the replica
  /// just keeps proving freshness per LBA.
  void maybe_renew_lease(ReadLink& link);
  /// Wait for the reply matching `exchange_id`, skimming stale frames.
  Result<ReplicationMessage> await_reply(ReadLink& link,
                                         std::uint64_t exchange_id);
  ReadLink* pick_link();
  void note_success(ReadLink& link);
  void note_failure(ReadLink& link);

  std::shared_ptr<PrinsEngine> engine_;
  ReadRouterConfig config_;
  std::vector<std::unique_ptr<ReadLink>> links_;  // stable after first read
  std::atomic<std::uint64_t> rr_cursor_{0};
  std::atomic<std::uint64_t> next_exchange_{1};
};

}  // namespace prins
