#include "prins/reactor_server.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <thread>
#include <vector>

#include "common/crc32c.h"
#include "common/endian.h"
#include "common/logging.h"

namespace prins {
namespace {

/// Frame a reply scatter-gather (stack header + payload + chained-CRC
/// trailer) — the same wire shape as serve()'s reply path.
Status send_reply_framed(Transport& transport, const ReplicationMessage& meta,
                         ByteSpan payload) {
  Byte header[ReplicationMessage::kWireHeaderSize];
  meta.encode_header(header, payload.size());
  std::uint32_t crc = crc32c(ByteSpan(header));
  crc = crc32c(payload, crc);
  Byte trailer[4];
  store_le32(trailer, crc);
  const ByteSpan parts[] = {ByteSpan(header), payload, ByteSpan(trailer)};
  return transport.send_vec(parts);
}

bool is_write_kind(MessageKind kind) {
  return kind == MessageKind::kWrite || kind == MessageKind::kSyncBlock ||
         kind == MessageKind::kRepairBlock;
}

}  // namespace

struct ReactorReplicaServer::Impl : std::enable_shared_from_this<Impl> {
  struct Session;

  /// One decoded frame bound for an apply worker.  The view's payload
  /// aliases `wire` (moving Bytes relocates only the vector header).
  struct WorkItem {
    std::shared_ptr<Session> session;
    Bytes wire;
    MessageView view{};
    bool control = false;
    bool client_read = false;  // serve + reply directly, skip the ack path
  };

  struct ShardQueue {
    std::mutex m;
    std::condition_variable cv;
    std::deque<WorkItem> q;
    bool closed = false;
  };

  struct Completion {
    std::uint64_t sequence = 0;
    Lba lba = 0;
    ReplicaEngine::ApplyOutcome outcome = ReplicaEngine::ApplyOutcome::kApplied;
  };

  struct Session {
    std::shared_ptr<Transport> transport;
    ReactorTcpTransport* rt = nullptr;

    std::mutex m;
    std::size_t in_flight = 0;  // write frames dispatched, not completed
    bool paused = false;        // reads gated (in-flight cap or control)
    bool blocked = false;       // control frame awaiting session quiesce
    bool dead = false;
    WorkItem pending_control;   // stashed while in_flight drains
    std::vector<Completion> completions;
    bool flushing = false;      // one worker at a time drains completions
  };

  Impl(std::shared_ptr<ReplicaEngine> r, std::shared_ptr<ReactorPool> p,
       const ReactorReplicaServerOptions& opts)
      : replica(std::move(r)), pool(std::move(p)), options(opts) {
    if (options.max_in_flight_per_conn == 0) options.max_in_flight_per_conn = 1;
    if (options.ack_coalesce_max == 0) options.ack_coalesce_max = 1;
  }

  std::shared_ptr<ReplicaEngine> replica;
  std::shared_ptr<ReactorPool> pool;
  ReactorReplicaServerOptions options;
  std::unique_ptr<ReactorListener> listener;

  std::vector<std::unique_ptr<ShardQueue>> queues;
  std::vector<std::thread> workers;

  mutable std::mutex sessions_mutex;
  std::vector<std::shared_ptr<Session>> sessions;
  bool stopping = false;
  bool joined = false;

  // ---- accept path (listener loop thread) -----------------------------------

  void on_connect(std::unique_ptr<Transport> transport) {
    if (options.wrap_transport) {
      transport = options.wrap_transport(std::move(transport));
      if (transport == nullptr) return;  // decorator rejected the connection
    }
    // The frame fan-in handlers live on the reactor connection inside any
    // decorator stack; replies go out through the decorated transport.
    auto* rt = dynamic_cast<ReactorTcpTransport*>(transport->underlying());
    if (rt == nullptr) {
      PRINS_LOG(kError) << "reactor server: non-reactor transport accepted";
      return;
    }
    auto session = std::make_shared<Session>();
    session->transport = std::shared_ptr<Transport>(std::move(transport));
    session->rt = rt;
    {
      std::lock_guard lock(sessions_mutex);
      if (stopping) {
        session->transport->close();
        return;
      }
      sessions.push_back(session);
    }
    auto self = shared_from_this();
    rt->set_close_handler([self, session](const Status& why) {
      self->on_disconnect(session, why);
    });
    rt->set_message_handler([self, session](Bytes&& message) {
      self->on_message(session, std::move(message));
    });
  }

  void on_disconnect(const std::shared_ptr<Session>& session,
                     const Status& why) {
    if (!why.is_ok() && why.code() != ErrorCode::kUnavailable) {
      PRINS_LOG(kWarn) << "replica session ended: " << why.to_string();
    }
    {
      std::lock_guard lock(session->m);
      session->dead = true;
      session->pending_control = WorkItem{};  // break session->item cycle
    }
    // Drop the handler so the connection's state machine stops referencing
    // the session (breaks the session->transport->handler->session cycle).
    session->rt->set_message_handler(nullptr);
    std::lock_guard lock(sessions_mutex);
    sessions.erase(std::remove(sessions.begin(), sessions.end(), session),
                   sessions.end());
  }

  // ---- frame fan-in (connection loop thread; must never block) --------------

  void on_message(const std::shared_ptr<Session>& session, Bytes&& wire) {
    {
      std::lock_guard lock(replica->mutex_);
      replica->metrics_.bytes_received += wire.size();
    }
    auto msg = ReplicationMessage::decode_view(wire);
    if (!msg.is_ok()) {
      // Torn frame: NAK so the primary retransmits (sequence 0 = resend
      // everything un-acked; dedup absorbs the overlap).
      {
        std::lock_guard lock(replica->mutex_);
        replica->metrics_.naks_sent += 1;
      }
      ReplicationMessage nak;
      nak.kind = MessageKind::kNak;
      nak.cluster_epoch = replica->cluster_epoch();
      (void)send_reply_framed(*session->transport, nak, {});
      return;
    }
    const bool client_read = msg->kind == MessageKind::kClientReadRequest;
    if (is_write_kind(msg->kind) || client_read) {
      // Client reads pipeline exactly like writes: no session quiesce, just
      // FIFO order behind same-stripe applies (the freshness check happens
      // under the stripe's shard lock).
      {
        std::lock_guard lock(session->m);
        if (session->dead) return;
        ++session->in_flight;
        if (!session->paused &&
            session->in_flight >= options.max_in_flight_per_conn) {
          session->paused = true;
          session->rt->set_read_paused(true);
        }
      }
      dispatch(WorkItem{session, std::move(wire), *msg, /*control=*/false,
                        client_read});
      return;
    }
    // Control frame (barrier/verify/hash/hello/read-block): its answer
    // must observe every prior write on this session.  Pause reads, wait
    // for the in-flight writes to drain, then apply on a worker.
    bool dispatch_now;
    {
      std::lock_guard lock(session->m);
      if (session->dead) return;
      session->blocked = true;
      if (!session->paused) {
        session->paused = true;
        session->rt->set_read_paused(true);
      }
      dispatch_now = session->in_flight == 0;
      if (!dispatch_now) {
        session->pending_control =
            WorkItem{session, std::move(wire), *msg, /*control=*/true};
      }
    }
    if (dispatch_now) {
      dispatch(WorkItem{session, std::move(wire), *msg, /*control=*/true});
    }
  }

  void dispatch(WorkItem&& item) {
    // Control frames all ride stripe 0 — they're rare, and any worker may
    // serve one (the session is already quiesced).
    const bool control = item.control;
    const std::size_t index =
        control ? 0 : (item.view.lba & (queues.size() - 1));
    ShardQueue& queue = *queues[index];
    std::shared_ptr<Session> dropped;
    std::uint64_t depth = 0;
    {
      std::lock_guard lock(queue.m);
      if (queue.closed) {
        dropped = item.session;  // stopping: settle the counter below
      } else {
        queue.q.push_back(std::move(item));
        depth = queue.q.size();
      }
    }
    if (dropped) {
      std::lock_guard lock(dropped->m);
      if (!control && dropped->in_flight > 0) --dropped->in_flight;
      return;
    }
    queue.cv.notify_one();
    std::uint64_t peak =
        replica->apply_queue_peak_.load(std::memory_order_relaxed);
    while (depth > peak && !replica->apply_queue_peak_.compare_exchange_weak(
                               peak, depth, std::memory_order_relaxed)) {
    }
  }

  // ---- shared apply workers -------------------------------------------------

  void worker_loop(std::size_t index) {
    ShardQueue& queue = *queues[index];
    for (;;) {
      WorkItem item;
      {
        std::unique_lock lock(queue.m);
        queue.cv.wait(lock, [&] { return !queue.q.empty() || queue.closed; });
        if (queue.q.empty()) break;  // closed and drained
        item = std::move(queue.q.front());
        queue.q.pop_front();
      }
      if (item.control) {
        run_control(item);
      } else if (item.client_read) {
        run_client_read(item);
      } else {
        run_write(item);
      }
    }
  }

  void run_write(WorkItem& item) {
    auto& session = *item.session;
    auto outcome = replica->apply_write_message(item.view);
    bool flush = false;
    bool release_control = false;
    {
      std::lock_guard lock(session.m);
      --session.in_flight;
      if (outcome.is_ok()) {
        session.completions.push_back(
            Completion{item.view.sequence, item.view.lba, *outcome});
        if (!session.flushing) {
          session.flushing = true;
          flush = true;
        }
      }
      maybe_resume_locked(session);
      if (session.blocked && session.in_flight == 0 &&
          session.pending_control.session != nullptr) {
        release_control = true;
      }
    }
    if (!outcome.is_ok()) {
      // A device/session-fatal error ends the connection, exactly as a
      // serve() session would end with the error.
      PRINS_LOG(kWarn) << "replica apply failed: "
                       << outcome.status().to_string();
      session.transport->close();
    }
    if (flush) flush_acks(item.session);
    if (release_control) {
      WorkItem control;
      {
        std::lock_guard lock(session.m);
        control = std::move(session.pending_control);
        session.pending_control = WorkItem{};
      }
      if (control.session != nullptr) dispatch(std::move(control));
    }
  }

  void run_client_read(WorkItem& item) {
    auto& session = *item.session;
    auto reply = replica->serve_client_read(item.view);
    if (reply.is_ok()) {
      Status sent =
          send_reply_framed(*session.transport, *reply, reply->payload);
      if (!sent.is_ok() && sent.code() != ErrorCode::kUnavailable) {
        PRINS_LOG(kWarn) << "replica read reply send failed: "
                         << sent.to_string();
      }
    } else {
      PRINS_LOG(kWarn) << "replica client read failed: "
                       << reply.status().to_string();
      session.transport->close();
    }
    bool release_control = false;
    {
      std::lock_guard lock(session.m);
      --session.in_flight;
      maybe_resume_locked(session);
      if (session.blocked && session.in_flight == 0 &&
          session.pending_control.session != nullptr) {
        release_control = true;
      }
    }
    if (release_control) {
      WorkItem control;
      {
        std::lock_guard lock(session.m);
        control = std::move(session.pending_control);
        session.pending_control = WorkItem{};
      }
      if (control.session != nullptr) dispatch(std::move(control));
    }
  }

  void run_control(WorkItem& item) {
    auto& session = *item.session;
    auto reply = replica->apply_view(item.view);
    if (reply.is_ok()) {
      Status sent =
          send_reply_framed(*session.transport, *reply, reply->payload);
      if (!sent.is_ok() && sent.code() != ErrorCode::kUnavailable) {
        PRINS_LOG(kWarn) << "replica reply send failed: " << sent.to_string();
      }
    } else {
      PRINS_LOG(kWarn) << "replica control apply failed: "
                       << reply.status().to_string();
      session.transport->close();
    }
    std::lock_guard lock(session.m);
    session.blocked = false;
    maybe_resume_locked(session);
  }

  /// Resume a paused session's reads once it is neither quiescing for a
  /// control frame nor over half its in-flight cap.  `session.m` held.
  void maybe_resume_locked(Session& session) {
    if (!session.paused || session.blocked || session.dead) return;
    if (session.in_flight > options.max_in_flight_per_conn / 2) return;
    session.paused = false;
    session.rt->set_read_paused(false);
  }

  // ---- ack path (combining lock: completions coalesce under load) -----------

  void flush_acks(const std::shared_ptr<Session>& session) {
    std::vector<Completion> batch;
    for (;;) {
      {
        std::lock_guard lock(session->m);
        if (session->completions.empty()) {
          session->flushing = false;
          return;
        }
        batch.swap(session->completions);
      }
      for (std::size_t off = 0; off < batch.size();
           off += options.ack_coalesce_max) {
        const std::size_t n =
            std::min(options.ack_coalesce_max, batch.size() - off);
        Status sent = send_ack_chunk(*session, batch.data() + off, n);
        if (!sent.is_ok()) {
          // Peer hangup is a clean end (the close handler reaps the
          // session); anything else was already logged.
          break;
        }
      }
      batch.clear();
    }
  }

  Status send_ack_chunk(Session& session, const Completion* completions,
                        std::size_t count) {
    std::vector<std::uint64_t> acked;
    acked.reserve(count);
    Lba last_lba = 0;
    std::uint64_t newest = 0;
    Status sent = Status::ok();
    for (std::size_t i = 0; i < count; ++i) {
      const Completion& c = completions[i];
      if (c.outcome == ReplicaEngine::ApplyOutcome::kApplied) {
        acked.push_back(c.sequence);
        if (c.sequence >= newest) {
          newest = c.sequence;
          last_lba = c.lba;
        }
        continue;
      }
      // NAKs stay individual so the primary matches each to its entry.
      ReplicationMessage nak;
      nak.kind = MessageKind::kNak;
      nak.cluster_epoch = replica->cluster_epoch();
      nak.sequence = c.sequence;
      nak.lba = c.lba;
      Byte reason = static_cast<Byte>(NakReason::kNeedFullBlock);
      ByteSpan payload;
      if (c.outcome == ReplicaEngine::ApplyOutcome::kNakFullBlock) {
        payload = ByteSpan(&reason, 1);
      } else if (c.outcome == ReplicaEngine::ApplyOutcome::kNakStaleEpoch) {
        reason = static_cast<Byte>(NakReason::kStaleEpoch);
        payload = ByteSpan(&reason, 1);
      }
      sent = send_reply_framed(*session.transport, nak, payload);
      if (!sent.is_ok()) break;
    }
    if (sent.is_ok() && acked.size() == 1) {
      // A lone completion acks plainly — byte-compatible with the
      // one-frame-at-a-time resync and heal exchanges.
      ReplicationMessage ack;
      ack.kind = MessageKind::kAck;
      ack.cluster_epoch = replica->cluster_epoch();
      ack.sequence = acked[0];
      ack.lba = last_lba;
      sent = send_reply_framed(*session.transport, ack, {});
    } else if (sent.is_ok() && acked.size() > 1) {
      const std::vector<AckRange> ranges = coalesce_ack_ranges(acked);
      Bytes payload;
      payload.reserve(4 + ranges.size() * 12);
      append_le32(payload, static_cast<std::uint32_t>(ranges.size()));
      for (const AckRange& range : ranges) {
        append_le64(payload, range.first_sequence);
        append_le32(payload, range.count);
      }
      ReplicationMessage ack;
      ack.kind = MessageKind::kAckBatch;
      ack.cluster_epoch = replica->cluster_epoch();
      ack.sequence = newest;
      ack.lba = last_lba;
      sent = send_reply_framed(*session.transport, ack, payload);
      if (sent.is_ok()) {
        std::lock_guard lock(replica->mutex_);
        replica->metrics_.ack_batches += 1;
        replica->metrics_.acks_batched += acked.size();
      }
    }
    if (!sent.is_ok() && sent.code() != ErrorCode::kUnavailable) {
      PRINS_LOG(kWarn) << "replica ack send failed: " << sent.to_string();
    }
    return sent;
  }

  // ---- lifecycle ------------------------------------------------------------

  void stop() {
    std::vector<std::shared_ptr<Session>> snapshot;
    {
      std::lock_guard lock(sessions_mutex);
      if (stopping) {
        if (joined) return;
      }
      stopping = true;
      snapshot.swap(sessions);
    }
    if (listener) listener->close();
    for (auto& session : snapshot) {
      session->rt->set_close_handler(nullptr);
      session->rt->set_message_handler(nullptr);
      {
        std::lock_guard lock(session->m);
        session->dead = true;
        session->pending_control = WorkItem{};
      }
      session->transport->close();
    }
    for (auto& queue : queues) {
      std::lock_guard lock(queue->m);
      queue->closed = true;
      queue->cv.notify_all();
    }
    bool join_here = false;
    {
      std::lock_guard lock(sessions_mutex);
      if (!joined) {
        joined = true;
        join_here = true;
      }
    }
    if (join_here) {
      for (std::thread& worker : workers) worker.join();
    }
  }
};

ReactorReplicaServer::ReactorReplicaServer(std::shared_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

ReactorReplicaServer::~ReactorReplicaServer() { stop(); }

Result<std::unique_ptr<ReactorReplicaServer>> ReactorReplicaServer::start(
    std::shared_ptr<ReplicaEngine> replica,
    std::shared_ptr<ReactorPool> pool,
    const ReactorReplicaServerOptions& options) {
  auto impl =
      std::make_shared<Impl>(std::move(replica), std::move(pool), options);
  PRINS_ASSIGN_OR_RETURN(
      impl->listener,
      ReactorListener::listen(impl->pool, options.port, options.transport));
  const std::size_t nshards = impl->replica->apply_shards();
  impl->queues.reserve(nshards);
  for (std::size_t i = 0; i < nshards; ++i) {
    impl->queues.push_back(std::make_unique<Impl::ShardQueue>());
  }
  impl->workers.reserve(nshards);
  for (std::size_t i = 0; i < nshards; ++i) {
    impl->workers.emplace_back(
        [impl, i] { impl->worker_loop(i); });
  }
  impl->listener->set_accept_handler(
      [weak = std::weak_ptr<Impl>(impl)](std::unique_ptr<Transport> t) {
        if (auto self = weak.lock()) self->on_connect(std::move(t));
      });
  return std::unique_ptr<ReactorReplicaServer>(
      new ReactorReplicaServer(std::move(impl)));
}

void ReactorReplicaServer::stop() { impl_->stop(); }

std::uint16_t ReactorReplicaServer::port() const {
  return impl_->listener->port();
}

std::size_t ReactorReplicaServer::sessions() const {
  std::lock_guard lock(impl_->sessions_mutex);
  return impl_->sessions.size();
}

}  // namespace prins
