#include "prins/verify.h"

#include "common/crc32c.h"
#include "common/endian.h"
#include "common/hash.h"
#include "common/varint.h"

namespace prins {

Bytes pack_checksums(const std::vector<BlockChecksum>& checksums) {
  Bytes out;
  out.reserve(2 + checksums.size() * 12);
  put_varint(out, checksums.size());
  for (const auto& c : checksums) {
    append_le64(out, c.lba);
    append_le32(out, c.crc);
  }
  return out;
}

Result<std::vector<BlockChecksum>> unpack_checksums(ByteSpan payload) {
  std::size_t pos = 0;
  auto count = get_varint(payload, pos);
  if (!count) return corruption("verify request: truncated count");
  if (payload.size() - pos != *count * 12) {
    return corruption("verify request: length mismatch");
  }
  std::vector<BlockChecksum> out;
  out.reserve(*count);
  for (std::uint64_t i = 0; i < *count; ++i) {
    BlockChecksum c;
    c.lba = load_le64(payload.subspan(pos, 8));
    pos += 8;
    c.crc = load_le32(payload.subspan(pos, 4));
    pos += 4;
    out.push_back(c);
  }
  return out;
}

Bytes pack_lbas(const std::vector<std::uint64_t>& lbas) {
  Bytes out;
  out.reserve(2 + lbas.size() * 8);
  put_varint(out, lbas.size());
  for (std::uint64_t lba : lbas) append_le64(out, lba);
  return out;
}

Result<std::vector<std::uint64_t>> unpack_lbas(ByteSpan payload) {
  std::size_t pos = 0;
  auto count = get_varint(payload, pos);
  if (!count) return corruption("verify reply: truncated count");
  if (payload.size() - pos != *count * 8) {
    return corruption("verify reply: length mismatch");
  }
  std::vector<std::uint64_t> out;
  out.reserve(*count);
  for (std::uint64_t i = 0; i < *count; ++i) {
    out.push_back(load_le64(payload.subspan(pos, 8)));
    pos += 8;
  }
  return out;
}

Bytes pack_ranges(const std::vector<BlockRange>& ranges) {
  Bytes out;
  put_varint(out, ranges.size());
  for (const BlockRange& r : ranges) {
    put_varint(out, r.lba);
    put_varint(out, r.count);
  }
  return out;
}

Result<std::vector<BlockRange>> unpack_ranges(ByteSpan payload) {
  std::size_t pos = 0;
  auto count = get_varint(payload, pos);
  if (!count) return corruption("hash request: truncated count");
  std::vector<BlockRange> out;
  out.reserve(*count);
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto lba = get_varint(payload, pos);
    auto n = get_varint(payload, pos);
    if (!lba || !n) return corruption("hash request: truncated range");
    out.push_back(BlockRange{*lba, *n});
  }
  if (pos != payload.size()) {
    return corruption("hash request: trailing garbage");
  }
  return out;
}

Bytes pack_hashes(const std::vector<std::uint64_t>& hashes) {
  Bytes out;
  put_varint(out, hashes.size());
  for (std::uint64_t h : hashes) append_le64(out, h);
  return out;
}

Result<std::vector<std::uint64_t>> unpack_hashes(ByteSpan payload) {
  std::size_t pos = 0;
  auto count = get_varint(payload, pos);
  if (!count) return corruption("hash reply: truncated count");
  if (payload.size() - pos != *count * 8) {
    return corruption("hash reply: length mismatch");
  }
  std::vector<std::uint64_t> out;
  out.reserve(*count);
  for (std::uint64_t i = 0; i < *count; ++i) {
    out.push_back(load_le64(payload.subspan(pos, 8)));
    pos += 8;
  }
  return out;
}

Result<std::uint64_t> hash_block_range(BlockDevice& device,
                                       const BlockRange& range) {
  if (range.lba >= device.num_blocks() ||
      range.count > device.num_blocks() - range.lba) {
    return out_of_range("hash range exceeds device");
  }
  Bytes block(device.block_size());
  std::uint64_t hash = 0xcbf29ce484222325ull;  // FNV offset basis
  Byte crc_le[4];
  for (std::uint64_t i = 0; i < range.count; ++i) {
    PRINS_RETURN_IF_ERROR(device.read(range.lba + i, block));
    store_le32(crc_le, crc32c(block));
    hash = fnv1a64(crc_le, hash);
  }
  return hash;
}

}  // namespace prins
