#include "prins/trap_log.h"

#include <algorithm>
#include <cstdio>
#include <iterator>

#include "codec/codec.h"
#include "common/crc32c.h"
#include "common/endian.h"
#include "common/varint.h"
#include "parity/xor.h"

namespace prins {

Status TrapLog::append(Lba lba, std::uint64_t timestamp_us,
                       ByteSpan parity_delta) {
  Bytes encoded =
      encode_frame(codec_for(CodecId::kZeroRle), parity_delta);
  std::lock_guard lock(mutex_);
  auto& history = log_[lba];
  if (!history.entries.empty() &&
      history.entries.back().timestamp_us > timestamp_us) {
    return invalid_argument("TrapLog timestamps must be non-decreasing per block");
  }
  stored_bytes_ += encoded.size();
  raw_bytes_ += parity_delta.size();
  ++entries_;
  history.entries.push_back(
      Entry{timestamp_us, timestamp_us, std::move(encoded)});
  return Status::ok();
}

Result<Bytes> TrapLog::recover_block(Lba lba, std::uint64_t t,
                                     ByteSpan current) const {
  Bytes out = to_bytes(current);
  std::lock_guard lock(mutex_);
  auto it = log_.find(lba);
  if (it == log_.end()) return out;  // no history: block unchanged since T
  const BlockHistory& history = it->second;
  if (t < history.min_recoverable) {
    return failed_precondition(
        "history for block " + std::to_string(lba) +
        " truncated past requested time " + std::to_string(t));
  }
  // XOR every delta newer than T into the current contents; the chain
  // telescopes down to the state at T.
  for (auto e = history.entries.rbegin(); e != history.entries.rend(); ++e) {
    if (e->timestamp_us <= t) break;
    if (e->oldest_timestamp_us <= t) {
      // T falls strictly inside a compacted span: granularity lost.
      return failed_precondition(
          "history for block " + std::to_string(lba) + " around time " +
          std::to_string(t) + " was compacted away");
    }
    PRINS_ASSIGN_OR_RETURN(Bytes delta, decode_frame(e->encoded_delta));
    if (delta.size() != out.size()) {
      return corruption("TRAP delta size " + std::to_string(delta.size()) +
                        " != block size " + std::to_string(out.size()));
    }
    xor_into(out, delta);
  }
  return out;
}

Status TrapLog::recover_device(BlockDevice& device, std::uint64_t t) const {
  std::vector<Lba> lbas;
  {
    std::lock_guard lock(mutex_);
    lbas.reserve(log_.size());
    for (const auto& [lba, _] : log_) lbas.push_back(lba);
  }
  Bytes block(device.block_size());
  for (Lba lba : lbas) {
    PRINS_RETURN_IF_ERROR(device.read(lba, block));
    PRINS_ASSIGN_OR_RETURN(Bytes recovered, recover_block(lba, t, block));
    if (recovered != block) {
      PRINS_RETURN_IF_ERROR(device.write(lba, recovered));
    }
  }
  return Status::ok();
}

void TrapLog::truncate_before(std::uint64_t t) {
  std::lock_guard lock(mutex_);
  for (auto& [lba, history] : log_) {
    auto& entries = history.entries;
    auto keep = std::find_if(entries.begin(), entries.end(),
                             [t](const Entry& e) { return e.timestamp_us >= t; });
    for (auto it = entries.begin(); it != keep; ++it) {
      stored_bytes_ -= it->encoded_delta.size();
      --entries_;
      history.min_recoverable =
          std::max(history.min_recoverable, it->timestamp_us);
    }
    entries.erase(entries.begin(), keep);
  }
}

std::uint64_t TrapLog::compact_range(std::uint64_t t1, std::uint64_t t2) {
  if (t2 < t1) return 0;
  std::lock_guard lock(mutex_);
  std::uint64_t removed = 0;
  for (auto& [lba, history] : log_) {
    auto& entries = history.entries;
    auto first = std::find_if(entries.begin(), entries.end(),
                              [t1](const Entry& e) {
                                return e.oldest_timestamp_us >= t1;
                              });
    auto last = first;
    while (last != entries.end() && last->timestamp_us <= t2) ++last;
    if (std::distance(first, last) < 2) continue;

    // XOR-fold the span into one delta (deltas commute and telescope).
    Bytes merged;
    std::uint64_t newest = 0, oldest = ~0ull, freed = 0;
    bool bad = false;
    for (auto it = first; it != last; ++it) {
      auto delta = decode_frame(it->encoded_delta);
      if (!delta.is_ok()) {
        bad = true;
        break;
      }
      if (merged.empty()) {
        merged = std::move(*delta);
      } else if (merged.size() == delta->size()) {
        xor_into(merged, *delta);
      } else {
        bad = true;
        break;
      }
      newest = std::max(newest, it->timestamp_us);
      oldest = std::min(oldest, it->oldest_timestamp_us);
      freed += it->encoded_delta.size();
    }
    if (bad) continue;  // leave inconsistent history untouched

    Entry folded;
    folded.timestamp_us = newest;
    folded.oldest_timestamp_us = oldest;
    folded.encoded_delta = encode_frame(codec_for(CodecId::kZeroRle), merged);

    const auto span = static_cast<std::uint64_t>(std::distance(first, last));
    removed += span - 1;
    entries_ -= span - 1;
    stored_bytes_ -= freed;
    stored_bytes_ += folded.encoded_delta.size();
    auto insert_at = entries.erase(first, last);
    entries.insert(insert_at, std::move(folded));
  }
  return removed;
}

std::vector<std::uint64_t> TrapLog::timestamps(Lba lba) const {
  std::lock_guard lock(mutex_);
  std::vector<std::uint64_t> out;
  auto it = log_.find(lba);
  if (it == log_.end()) return out;
  out.reserve(it->second.entries.size());
  for (const auto& e : it->second.entries) out.push_back(e.timestamp_us);
  return out;
}

std::vector<Lba> TrapLog::blocks_changed_since(std::uint64_t t) const {
  std::lock_guard lock(mutex_);
  std::vector<Lba> out;
  for (const auto& [lba, history] : log_) {
    if (!history.entries.empty() &&
        history.entries.back().timestamp_us > t) {
      out.push_back(lba);
    }
  }
  return out;
}

std::vector<Lba> TrapLog::blocks_changed_in(std::uint64_t after,
                                            std::uint64_t upto) const {
  std::lock_guard lock(mutex_);
  std::vector<Lba> out;
  for (const auto& [lba, history] : log_) {
    for (const Entry& e : history.entries) {
      if (e.timestamp_us > after && e.timestamp_us <= upto) {
        out.push_back(lba);
        break;
      }
    }
  }
  return out;
}

Result<Bytes> TrapLog::fold_range(Lba lba, std::uint64_t after,
                                  std::uint64_t upto,
                                  std::size_t block_size) const {
  Bytes out(block_size, Byte{0});
  std::lock_guard lock(mutex_);
  auto it = log_.find(lba);
  if (it == log_.end()) return out;
  const BlockHistory& history = it->second;
  if (after < history.min_recoverable) {
    return failed_precondition(
        "history for block " + std::to_string(lba) +
        " truncated past fold base " + std::to_string(after));
  }
  for (const Entry& e : history.entries) {
    if (e.timestamp_us <= after) continue;
    if (e.timestamp_us > upto) {
      if (e.oldest_timestamp_us <= upto) {
        // A compacted span straddles the upper boundary.
        return failed_precondition(
            "history for block " + std::to_string(lba) +
            " compacted across fold end " + std::to_string(upto));
      }
      break;
    }
    if (e.oldest_timestamp_us <= after) {
      // A compacted span straddles the lower boundary.
      return failed_precondition(
          "history for block " + std::to_string(lba) +
          " compacted across fold base " + std::to_string(after));
    }
    PRINS_ASSIGN_OR_RETURN(Bytes delta, decode_frame(e.encoded_delta));
    if (delta.size() != out.size()) {
      return corruption("TRAP delta size " + std::to_string(delta.size()) +
                        " != block size " + std::to_string(out.size()));
    }
    xor_into(out, delta);
  }
  return out;
}

namespace {
constexpr Byte kSnapshotMagic[4] = {'P', 'R', 't', 'l'};
}  // namespace

Status TrapLog::save(const std::string& path) const {
  Bytes out;
  {
    std::lock_guard lock(mutex_);
    prins::append(out, kSnapshotMagic);
    put_varint(out, log_.size());
    for (const auto& [lba, history] : log_) {
      put_varint(out, lba);
      put_varint(out, history.min_recoverable);
      put_varint(out, history.entries.size());
      for (const Entry& e : history.entries) {
        put_varint(out, e.timestamp_us);
        put_varint(out, e.oldest_timestamp_us);
        put_varint(out, e.encoded_delta.size());
        prins::append(out, e.encoded_delta);
      }
    }
  }
  append_le32(out, crc32c(out));

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return io_error("fopen(" + path + ") for writing");
  const std::size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != out.size() || !closed) {
    return io_error("short write saving TRAP log to " + path);
  }
  return Status::ok();
}

Status TrapLog::load_from(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return not_found("TRAP snapshot: " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 8) {
    std::fclose(f);
    return corruption("TRAP snapshot too small: " + path);
  }
  Bytes in(static_cast<std::size_t>(size));
  const std::size_t read = std::fread(in.data(), 1, in.size(), f);
  std::fclose(f);
  if (read != in.size()) return io_error("short read loading " + path);

  const std::uint32_t want = load_le32(ByteSpan(in).subspan(in.size() - 4));
  if (crc32c(ByteSpan(in).first(in.size() - 4)) != want) {
    return corruption("TRAP snapshot checksum mismatch: " + path);
  }
  if (!std::equal(std::begin(kSnapshotMagic), std::end(kSnapshotMagic),
                  in.begin())) {
    return corruption("bad TRAP snapshot magic: " + path);
  }

  std::size_t pos = 4;
  const std::size_t end = in.size() - 4;
  auto blocks = get_varint(in, pos);
  if (!blocks) return corruption("TRAP snapshot: truncated block count");

  std::lock_guard lock(mutex_);
  for (std::uint64_t b = 0; b < *blocks; ++b) {
    auto lba = get_varint(in, pos);
    auto min_recoverable = get_varint(in, pos);
    auto entry_count = get_varint(in, pos);
    if (!lba || !min_recoverable || !entry_count) {
      return corruption("TRAP snapshot: truncated block header");
    }
    BlockHistory& history = log_[*lba];
    history.min_recoverable =
        std::max(history.min_recoverable, *min_recoverable);
    for (std::uint64_t e = 0; e < *entry_count; ++e) {
      auto ts = get_varint(in, pos);
      auto oldest = get_varint(in, pos);
      auto len = get_varint(in, pos);
      if (!ts || !oldest || !len || *len > end - pos) {
        return corruption("TRAP snapshot: truncated entry");
      }
      if (!history.entries.empty() &&
          history.entries.back().timestamp_us > *ts) {
        return failed_precondition(
            "TRAP snapshot merge would break timestamp order for block " +
            std::to_string(*lba));
      }
      Entry entry;
      entry.timestamp_us = *ts;
      entry.oldest_timestamp_us = *oldest;
      entry.encoded_delta = to_bytes(ByteSpan(in).subspan(pos, *len));
      pos += *len;
      stored_bytes_ += entry.encoded_delta.size();
      ++entries_;
      history.entries.push_back(std::move(entry));
    }
  }
  if (pos != end) return corruption("TRAP snapshot: trailing garbage");
  return Status::ok();
}

void TrapLog::move_into(TrapLog& dest) {
  if (&dest == this) return;
  std::scoped_lock lock(mutex_, dest.mutex_);
  for (auto& [lba, history] : log_) {
    BlockHistory& target = dest.log_[lba];
    if (target.entries.empty()) {
      target = std::move(history);
      continue;
    }
    target.min_recoverable =
        std::max(target.min_recoverable, history.min_recoverable);
    for (Entry& entry : history.entries) {
      target.entries.push_back(std::move(entry));
    }
  }
  dest.stored_bytes_ += stored_bytes_;
  dest.raw_bytes_ += raw_bytes_;
  dest.entries_ += entries_;
  log_.clear();
  stored_bytes_ = 0;
  raw_bytes_ = 0;
  entries_ = 0;
}

std::uint64_t TrapLog::total_entries() const {
  std::lock_guard lock(mutex_);
  return entries_;
}

std::uint64_t TrapLog::stored_bytes() const {
  std::lock_guard lock(mutex_);
  return stored_bytes_;
}

std::uint64_t TrapLog::raw_bytes_logged() const {
  std::lock_guard lock(mutex_);
  return raw_bytes_;
}

}  // namespace prins
