#include "prins/replica.h"

#include <map>
#include <thread>

#include "codec/codec.h"
#include "common/crc32c.h"
#include "common/logging.h"
#include "parity/xor.h"
#include "prins/verify.h"

namespace prins {

ReplicaEngine::ReplicaEngine(std::shared_ptr<BlockDevice> local,
                             ReplicaConfig config)
    : local_(std::move(local)), config_(config) {}

Status ReplicaEngine::serve(Transport& transport) {
  for (;;) {
    auto wire = transport.recv();
    if (!wire.is_ok()) {
      return wire.status().code() == ErrorCode::kUnavailable ? Status::ok()
                                                             : wire.status();
    }
    {
      std::lock_guard lock(mutex_);
      metrics_.bytes_received += wire->size();
    }
    auto msg = ReplicationMessage::decode_view(*wire);
    if (!msg.is_ok()) {
      // A torn frame is the link's fault, not the session's: NAK so the
      // primary retransmits.  Sequence 0 = "couldn't even read the header";
      // the primary resends everything un-acked and dedup absorbs overlap.
      std::lock_guard lock(mutex_);
      metrics_.naks_sent += 1;
      ReplicationMessage nak;
      nak.kind = MessageKind::kNak;
      PRINS_RETURN_IF_ERROR(transport.send(nak.encode()));
      continue;
    }
    PRINS_ASSIGN_OR_RETURN(ReplicationMessage reply, apply_view(*msg));
    PRINS_RETURN_IF_ERROR(transport.send(reply.encode()));
  }
}

Result<ReplicationMessage> ReplicaEngine::apply(
    const ReplicationMessage& message) {
  return apply_view(message.view());
}

Result<ReplicationMessage> ReplicaEngine::apply_view(
    const MessageView& message) {
  switch (message.kind) {
    case MessageKind::kVerifyRequest:
      return apply_verify(message);
    case MessageKind::kHashRequest: {
      PRINS_ASSIGN_OR_RETURN(std::vector<BlockRange> ranges,
                             unpack_ranges(message.payload));
      std::vector<std::uint64_t> hashes;
      hashes.reserve(ranges.size());
      for (const BlockRange& range : ranges) {
        PRINS_ASSIGN_OR_RETURN(std::uint64_t h,
                               hash_block_range(*local_, range));
        hashes.push_back(h);
      }
      ReplicationMessage reply;
      reply.kind = MessageKind::kHashReply;
      reply.sequence = message.sequence;
      reply.payload = pack_hashes(hashes);
      return reply;
    }
    case MessageKind::kWrite:
    case MessageKind::kSyncBlock:
    case MessageKind::kRepairBlock: {
      {
        std::lock_guard lock(mutex_);
        if (already_applied_locked(message.sequence)) {
          metrics_.duplicates_dropped += 1;
          break;  // ACK again; do NOT re-apply (XOR would undo the write)
        }
      }
      Status applied = apply_write(message);
      if (applied.code() == ErrorCode::kCorruption ||
          applied.code() == ErrorCode::kDataCorruption) {
        // kCorruption: the payload survived the header CRC but its codec
        // frame is bad — bounce it back for a resend.  kDataCorruption:
        // our stored A_old is torn or rotten, so resending the same parity
        // delta can never succeed — ask for the full block instead.
        std::lock_guard lock(mutex_);
        metrics_.naks_sent += 1;
        ReplicationMessage nak;
        nak.kind = MessageKind::kNak;
        nak.sequence = message.sequence;
        nak.lba = message.lba;
        if (applied.code() == ErrorCode::kDataCorruption) {
          nak.payload.push_back(
              static_cast<Byte>(NakReason::kNeedFullBlock));
          metrics_.full_repairs_requested += 1;
        }
        return nak;
      }
      PRINS_RETURN_IF_ERROR(applied);
      std::lock_guard lock(mutex_);
      record_applied_locked(message.sequence);
      if (message.kind == MessageKind::kWrite ||
          message.kind == MessageKind::kRepairBlock) {
        applied_timestamp_us_ =
            std::max(applied_timestamp_us_, message.timestamp_us);
      }
      break;
    }
    case MessageKind::kReadBlockRequest: {
      // A peer's scrubber wants our copy of the block (repair pull).
      Bytes block(local_->block_size());
      Status read = message.lba < local_->num_blocks()
                        ? local_->read(message.lba, block)
                        : out_of_range("no such block");
      {
        std::lock_guard lock(mutex_);
        if (read.is_ok() && damaged_.count(message.lba) != 0) {
          read = corruption_error("block awaits repair here too");
        }
      }
      ReplicationMessage reply;
      reply.sequence = message.sequence;
      reply.lba = message.lba;
      if (!read.is_ok()) {
        std::lock_guard lock(mutex_);
        metrics_.naks_sent += 1;
        reply.kind = MessageKind::kNak;
        return reply;
      }
      reply.kind = MessageKind::kReadBlockReply;
      reply.block_size = local_->block_size();
      reply.payload = encode_frame(codec_for(CodecId::kLz), block);
      std::lock_guard lock(mutex_);
      metrics_.reads_served += 1;
      return reply;
    }
    case MessageKind::kBarrier:
      // In-order processing makes the barrier itself a no-op for ordering,
      // but it is the durability point: settle the device before dropping
      // the intents that guard it.
      if (config_.intent_log) {
        PRINS_RETURN_IF_ERROR(local_->flush());
        PRINS_RETURN_IF_ERROR(config_.intent_log->checkpoint());
        std::lock_guard lock(mutex_);
        applies_since_checkpoint_ = 0;
      }
      break;
    case MessageKind::kHello: {
      // Position report: the ACK's timestamp tells the primary how far
      // this replica's device has advanced.
      ReplicationMessage ack;
      ack.kind = MessageKind::kAck;
      ack.sequence = message.sequence;
      std::lock_guard lock(mutex_);
      ack.timestamp_us = applied_timestamp_us_;
      return ack;
    }
    case MessageKind::kAck:
    case MessageKind::kVerifyReply:
    case MessageKind::kHashReply:
    case MessageKind::kNak:
    case MessageKind::kReadBlockReply:
      return failed_precondition("replica received a reply-kind message");
  }
  ReplicationMessage ack;
  ack.kind = MessageKind::kAck;
  ack.sequence = message.sequence;
  ack.lba = message.lba;
  return ack;
}

bool ReplicaEngine::already_applied_locked(std::uint64_t sequence) const {
  return sequence != 0 && applied_set_.count(sequence) != 0;
}

void ReplicaEngine::record_applied_locked(std::uint64_t sequence) {
  if (sequence == 0) return;
  constexpr std::size_t kDedupWindow = 65536;
  if (!applied_set_.insert(sequence).second) return;
  applied_fifo_.push_back(sequence);
  if (applied_fifo_.size() > kDedupWindow) {
    applied_set_.erase(applied_fifo_.front());
    applied_fifo_.pop_front();
  }
}

Status ReplicaEngine::apply_write(const MessageView& message) {
  if (message.block_size != local_->block_size()) {
    return invalid_argument("message block size " +
                            std::to_string(message.block_size) +
                            " != replica block size " +
                            std::to_string(local_->block_size()));
  }
  PRINS_ASSIGN_OR_RETURN(Bytes raw, decode_frame(message.payload));
  if (raw.size() != message.block_size) {
    return corruption("decoded payload is " + std::to_string(raw.size()) +
                      " bytes, expected one block");
  }

  const bool parity = message.kind == MessageKind::kWrite &&
                      ships_parity(message.policy);
  {
    std::lock_guard lock(mutex_);
    if (parity && damaged_.count(message.lba) != 0) {
      return corruption_error("block " + std::to_string(message.lba) +
                              " is damaged; parity cannot apply");
    }
  }

  Bytes new_block;
  Bytes delta;
  if (parity) {
    // Backward parity computation: A_new = P' ⊕ A_old.
    Bytes old_block(message.block_size);
    Status old_read = local_->read(message.lba, old_block);
    if (old_read.code() == ErrorCode::kDataCorruption) {
      // A_old failed its checksum: remember the damage so every delta to
      // this LBA bounces until a full-contents write repairs it.
      std::lock_guard lock(mutex_);
      damaged_.insert(message.lba);
    }
    PRINS_RETURN_IF_ERROR(old_read);
    delta = std::move(raw);
    new_block = Bytes(message.block_size);
    xor_to(new_block, delta, old_block);
  } else {
    new_block = std::move(raw);
    if (config_.keep_trap_log && message.kind == MessageKind::kWrite) {
      Bytes old_block(message.block_size);
      Status old_read = local_->read(message.lba, old_block);
      if (old_read.is_ok()) {
        delta = parity_delta(new_block, old_block);
      } else if (old_read.code() != ErrorCode::kDataCorruption) {
        return old_read;
      }
      // Corrupt old contents: the full write repairs the block, but there
      // is no usable delta to log for CDP.
    }
  }

  // Durable intent before the in-place write: after a crash, the CRC tells
  // a completed apply (dedup its redelivery) from a torn one (NAK for a
  // full-block repair).
  if (config_.intent_log) {
    PRINS_RETURN_IF_ERROR(config_.intent_log->record(
        message.sequence, message.lba, crc32c(new_block)));
  }

  PRINS_RETURN_IF_ERROR(local_->write(message.lba, new_block));

  if (config_.keep_trap_log && message.kind == MessageKind::kWrite &&
      !delta.empty()) {
    PRINS_RETURN_IF_ERROR(
        trap_log_.append(message.lba, message.timestamp_us, delta));
  }

  bool checkpoint_due = false;
  {
    std::lock_guard lock(mutex_);
    damaged_.erase(message.lba);  // full contents (or a clean apply) landed
    metrics_.writes_applied += (message.kind == MessageKind::kWrite);
    metrics_.parity_applies += parity;
    metrics_.sync_blocks += (message.kind == MessageKind::kSyncBlock);
    metrics_.repairs += (message.kind == MessageKind::kRepairBlock);
    if (config_.intent_log && config_.intent_checkpoint_every > 0 &&
        ++applies_since_checkpoint_ >= config_.intent_checkpoint_every) {
      applies_since_checkpoint_ = 0;
      checkpoint_due = true;
    }
  }
  if (checkpoint_due) {
    // Settle the data writes first; only then is it safe to forget the
    // intents that would re-detect them.
    PRINS_RETURN_IF_ERROR(local_->flush());
    PRINS_RETURN_IF_ERROR(config_.intent_log->checkpoint());
  }
  return Status::ok();
}

Result<std::vector<Lba>> ReplicaEngine::recover_intents() {
  if (!config_.intent_log) return std::vector<Lba>{};
  std::map<Lba, std::vector<WriteIntentLog::Intent>> by_lba;
  for (const WriteIntentLog::Intent& intent : config_.intent_log->pending()) {
    by_lba[intent.lba].push_back(intent);
  }
  std::vector<Lba> damaged;
  Bytes block(local_->block_size());
  for (const auto& [lba, intents] : by_lba) {
    if (lba >= local_->num_blocks()) continue;
    const Status read = local_->read(lba, block);
    const std::uint32_t crc = read.is_ok() ? crc32c(block) : 0;
    // Applies are sequential, so the *newest* intent the contents match
    // tells how far the stream got: everything up to it completed (dedup
    // those sequences — re-XOR would undo them), everything after it never
    // ran and will be redelivered.  Matching nothing means the block is
    // torn — or an apply stopped between intent and write, which is
    // indistinguishable and equally unsafe to patch with a delta.
    bool matched = false;
    if (read.is_ok()) {
      for (std::size_t i = intents.size(); i-- > 0;) {
        if (intents[i].crc == crc) {
          std::lock_guard lock(mutex_);
          for (std::size_t j = 0; j <= i; ++j) {
            record_applied_locked(intents[j].sequence);
          }
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      std::lock_guard lock(mutex_);
      damaged_.insert(lba);
      metrics_.torn_blocks_detected += 1;
      damaged.push_back(lba);
    }
  }
  return damaged;
}

std::vector<Lba> ReplicaEngine::damaged_blocks() const {
  std::lock_guard lock(mutex_);
  return {damaged_.begin(), damaged_.end()};
}

Result<ReplicationMessage> ReplicaEngine::apply_verify(
    const MessageView& message) {
  PRINS_ASSIGN_OR_RETURN(std::vector<BlockChecksum> sums,
                         unpack_checksums(message.payload));
  std::vector<std::uint64_t> mismatched;
  Bytes block(local_->block_size());
  for (const auto& sum : sums) {
    if (sum.lba >= local_->num_blocks()) {
      mismatched.push_back(sum.lba);
      continue;
    }
    const Status read = local_->read(sum.lba, block);
    if (read.code() == ErrorCode::kDataCorruption) {
      mismatched.push_back(sum.lba);  // unreadable == mismatched: repair it
      continue;
    }
    PRINS_RETURN_IF_ERROR(read);
    if (crc32c(block) != sum.crc) mismatched.push_back(sum.lba);
  }
  {
    std::lock_guard lock(mutex_);
    metrics_.verify_requests += 1;
  }
  ReplicationMessage reply;
  reply.kind = MessageKind::kVerifyReply;
  reply.sequence = message.sequence;
  reply.payload = pack_lbas(mismatched);
  return reply;
}

ReplicaMetrics ReplicaEngine::metrics() const {
  std::lock_guard lock(mutex_);
  return metrics_;
}

std::uint64_t ReplicaEngine::applied_timestamp() const {
  std::lock_guard lock(mutex_);
  return applied_timestamp_us_;
}

std::thread replica_serve_in_background(std::shared_ptr<ReplicaEngine> replica,
                                        std::shared_ptr<Listener> listener) {
  return std::thread([replica = std::move(replica),
                      listener = std::move(listener)] {
    for (;;) {
      auto conn = listener->accept();
      if (!conn.is_ok()) return;
      Status s = replica->serve(**conn);
      if (!s.is_ok()) {
        PRINS_LOG(kWarn) << "replica session error: " << s.to_string();
      }
    }
  });
}

}  // namespace prins
