#include "prins/replica.h"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <thread>

#include "block/cached_disk.h"
#include "codec/codec.h"
#include "common/buffer_pool.h"
#include "common/crc32c.h"
#include "common/endian.h"
#include "common/env.h"
#include "common/logging.h"
#include "parity/xor.h"
#include "prins/engine.h"
#include "prins/verify.h"

namespace prins {
namespace {

std::size_t resolve_apply_shards(std::size_t requested) {
  std::size_t n = requested;
  if (n == 0) {
    n = parse_env_size("PRINS_APPLY_SHARDS", 1, 32).value_or(0);
    if (n == 0) n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  n = std::min<std::size_t>(n, 32);
  std::size_t pow2 = 1;
  while (pow2 < n) pow2 <<= 1;
  return pow2;
}

/// Frame a reply scatter-gather (stack header + payload span + chained-CRC
/// trailer), the same shape as the primary's send_entry path: no flat
/// encode, no contiguous copy.
Status send_framed(Transport& transport, const ReplicationMessage& meta,
                   ByteSpan payload) {
  Byte header[ReplicationMessage::kWireHeaderSize];
  meta.encode_header(header, payload.size());
  std::uint32_t crc = crc32c(ByteSpan(header));
  crc = crc32c(payload, crc);
  Byte trailer[4];
  store_le32(trailer, crc);
  const ByteSpan parts[] = {ByteSpan(header), payload, ByteSpan(trailer)};
  return transport.send_vec(parts);
}

bool is_write_kind(MessageKind kind) {
  return kind == MessageKind::kWrite || kind == MessageKind::kSyncBlock ||
         kind == MessageKind::kRepairBlock;
}

}  // namespace

ReplicaEngine::ReplicaEngine(std::shared_ptr<BlockDevice> local,
                             ReplicaConfig config)
    : local_(std::move(local)), config_(config),
      cluster_epoch_(config.cluster_epoch) {
  config_.apply_shards = resolve_apply_shards(config_.apply_shards);
  if (config_.apply_queue_capacity == 0) config_.apply_queue_capacity = 1;
  if (config_.ack_coalesce_max == 0) config_.ack_coalesce_max = 1;
  shards_.reserve(config_.apply_shards);
  for (std::size_t i = 0; i < config_.apply_shards; ++i) {
    shards_.push_back(std::make_unique<ApplyShard>());
  }
  if (config_.old_block_cache_blocks > 0) {
    cache_ = std::make_shared<CachedDisk>(
        local_, CacheConfig{config_.old_block_cache_blocks,
                            /*write_back=*/false});
    apply_dev_ = cache_;
  } else {
    apply_dev_ = local_;
  }
}

ReplicaEngine::~ReplicaEngine() = default;

Status ReplicaEngine::serve(Transport& transport) {
  // ---- Pipeline plumbing, all scoped to this connection. ----------------
  struct WorkItem {
    Bytes wire;        // owning buffer; view.payload aliases it
    MessageView view;
    bool client_read = false;  // serve + reply directly, skip the ack stage
  };
  struct ShardQueue {
    std::mutex m;
    std::condition_variable cv;
    std::deque<WorkItem> q;
    bool closed = false;
  };
  struct Completion {
    std::uint64_t sequence = 0;
    Lba lba = 0;
    ApplyOutcome outcome = ApplyOutcome::kApplied;
  };
  struct AckQueue {
    std::mutex m;
    std::condition_variable cv;
    std::deque<Completion> q;
    bool closed = false;
  };

  const std::size_t nshards = shards_.size();
  std::vector<ShardQueue> queues(nshards);
  AckQueue acks;
  std::mutex send_mutex;          // one reply frame on the wire at a time
  std::mutex error_mutex;
  Status session_error;           // first fatal error from any stage
  std::atomic<std::size_t> in_flight{0};  // dispatched, not yet completed
  std::mutex idle_mutex;
  std::condition_variable idle_cv;

  auto fail_session = [&](const Status& s) {
    {
      std::lock_guard lock(error_mutex);
      if (session_error.is_ok()) session_error = s;
    }
    transport.close();  // wake the demux stage out of recv()
  };

  auto send_reply = [&](const ReplicationMessage& meta, ByteSpan payload) {
    std::lock_guard lock(send_mutex);
    return send_framed(transport, meta, payload);
  };

  // ---- Apply workers: one per LBA stripe, FIFO per stripe. --------------
  auto worker_loop = [&](std::size_t index) {
    ShardQueue& queue = queues[index];
    for (;;) {
      WorkItem item;
      {
        std::unique_lock lock(queue.m);
        queue.cv.wait(lock, [&] { return !queue.q.empty() || queue.closed; });
        if (queue.q.empty()) break;  // closed and drained
        item = std::move(queue.q.front());
        queue.q.pop_front();
      }
      queue.cv.notify_all();  // demux may be blocked on capacity
      if (item.client_read) {
        // Client reads ride the shard queue (FIFO behind same-stripe
        // applies, shard-lock-atomic device read) but reply directly —
        // their answer is a block, not an ack, and must not be coalesced.
        auto reply = serve_client_read(item.view);
        Status sent = reply.is_ok() ? send_reply(*reply, reply->payload)
                                    : reply.status();
        if (!sent.is_ok() && sent.code() != ErrorCode::kUnavailable) {
          fail_session(sent);
        }
      } else {
        auto outcome = apply_write_message(item.view);
        if (outcome.is_ok()) {
          {
            std::lock_guard lock(acks.m);
            acks.q.push_back(
                Completion{item.view.sequence, item.view.lba, *outcome});
          }
          acks.cv.notify_one();
        } else {
          fail_session(outcome.status());
        }
      }
      if (in_flight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(idle_mutex);
        idle_cv.notify_all();
      }
    }
  };

  // ---- Ack stage: coalesce completions into cumulative ack frames. ------
  auto ack_loop = [&] {
    BufferPool payload_pool(4 + config_.ack_coalesce_max * 12, 4);
    std::vector<Completion> batch;
    std::vector<std::uint64_t> acked;
    for (;;) {
      batch.clear();
      {
        std::unique_lock lock(acks.m);
        acks.cv.wait(lock, [&] { return !acks.q.empty() || acks.closed; });
        if (acks.q.empty()) break;  // closed and drained
        const std::size_t take =
            std::min(acks.q.size(), config_.ack_coalesce_max);
        for (std::size_t i = 0; i < take; ++i) {
          batch.push_back(acks.q.front());
          acks.q.pop_front();
        }
      }
      acked.clear();
      Lba last_lba = 0;
      std::uint64_t newest = 0;
      Status sent = Status::ok();
      for (const Completion& c : batch) {
        if (c.outcome == ApplyOutcome::kApplied) {
          acked.push_back(c.sequence);
          if (c.sequence >= newest) {
            newest = c.sequence;
            last_lba = c.lba;
          }
          continue;
        }
        // NAKs are the holes: they stay individual frames so the primary
        // can match each to its entry (and read the reason byte).
        ReplicationMessage nak;
        nak.kind = MessageKind::kNak;
        nak.cluster_epoch = cluster_epoch();
        nak.sequence = c.sequence;
        nak.lba = c.lba;
        Byte reason = static_cast<Byte>(NakReason::kNeedFullBlock);
        ByteSpan payload;
        if (c.outcome == ApplyOutcome::kNakFullBlock) {
          payload = ByteSpan(&reason, 1);
        } else if (c.outcome == ApplyOutcome::kNakStaleEpoch) {
          reason = static_cast<Byte>(NakReason::kStaleEpoch);
          payload = ByteSpan(&reason, 1);
        }
        sent = send_reply(nak, payload);
        if (!sent.is_ok()) break;
      }
      if (sent.is_ok() && acked.size() == 1) {
        // A lone completion acks plainly — byte-compatible with the
        // one-frame-at-a-time resync and heal exchanges.
        ReplicationMessage ack;
        ack.kind = MessageKind::kAck;
        ack.cluster_epoch = cluster_epoch();
        ack.sequence = acked[0];
        ack.lba = last_lba;
        sent = send_reply(ack, {});
      } else if (sent.is_ok() && acked.size() > 1) {
        const std::vector<AckRange> ranges = coalesce_ack_ranges(acked);
        PooledBuffer payload = payload_pool.acquire(0);
        Bytes& bytes = payload.mutable_bytes();
        bytes.clear();
        append_le32(bytes, static_cast<std::uint32_t>(ranges.size()));
        for (const AckRange& range : ranges) {
          append_le64(bytes, range.first_sequence);
          append_le32(bytes, range.count);
        }
        ReplicationMessage ack;
        ack.kind = MessageKind::kAckBatch;
        ack.cluster_epoch = cluster_epoch();
        ack.sequence = newest;
        ack.lba = last_lba;
        sent = send_reply(ack, bytes);
        if (sent.is_ok()) {
          std::lock_guard lock(mutex_);
          metrics_.ack_batches += 1;
          metrics_.acks_batched += acked.size();
        }
      }
      if (!sent.is_ok()) {
        // The peer hanging up mid-ack is a clean end of session (the demux
        // sees the same close); anything else is fatal.
        if (sent.code() != ErrorCode::kUnavailable) fail_session(sent);
        break;
      }
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(nshards);
  for (std::size_t i = 0; i < nshards; ++i) workers.emplace_back(worker_loop, i);
  std::thread ack_thread(ack_loop);

  auto quiesce = [&] {
    std::unique_lock lock(idle_mutex);
    idle_cv.wait(lock, [&] {
      return in_flight.load(std::memory_order_acquire) == 0;
    });
  };

  // ---- Demux stage: decode once, stripe by LBA. -------------------------
  Status result = Status::ok();
  for (;;) {
    auto wire = transport.recv();
    if (!wire.is_ok()) {
      if (wire.status().code() != ErrorCode::kUnavailable) {
        result = wire.status();
      }
      break;
    }
    {
      std::lock_guard lock(mutex_);
      metrics_.bytes_received += wire->size();
    }
    auto msg = ReplicationMessage::decode_view(*wire);
    if (!msg.is_ok()) {
      // A torn frame is the link's fault, not the session's: NAK so the
      // primary retransmits.  Sequence 0 = "couldn't even read the header";
      // the primary resends everything un-acked and dedup absorbs overlap.
      {
        std::lock_guard lock(mutex_);
        metrics_.naks_sent += 1;
      }
      ReplicationMessage nak;
      nak.kind = MessageKind::kNak;
      nak.cluster_epoch = cluster_epoch();
      if (Status s = send_reply(nak, {}); !s.is_ok()) {
        result = s;
        break;
      }
      continue;
    }
    const bool client_read = msg->kind == MessageKind::kClientReadRequest;
    if (is_write_kind(msg->kind) || client_read) {
      // Moving the owning Bytes relocates the vector header only; the heap
      // bytes the view's payload aliases stay put.
      ShardQueue& queue = queues[msg->lba & (nshards - 1)];
      std::unique_lock lock(queue.m);
      queue.cv.wait(lock, [&] {
        return queue.q.size() < config_.apply_queue_capacity;
      });
      in_flight.fetch_add(1, std::memory_order_acq_rel);
      queue.q.push_back(WorkItem{std::move(*wire), *msg, client_read});
      const std::uint64_t depth = queue.q.size();
      lock.unlock();
      queue.cv.notify_all();
      std::uint64_t peak = apply_queue_peak_.load(std::memory_order_relaxed);
      while (depth > peak && !apply_queue_peak_.compare_exchange_weak(
                                 peak, depth, std::memory_order_relaxed)) {
      }
      continue;
    }
    // Barriers, verifies, hashes, hellos, read-blocks: rare control frames
    // whose answers must observe every prior write — drain the pipeline,
    // then handle inline.
    quiesce();
    auto reply = apply_view(*msg);
    if (!reply.is_ok()) {
      result = reply.status();
      break;
    }
    if (Status s = send_reply(*reply, reply->payload); !s.is_ok()) {
      result = s;
      break;
    }
  }

  // ---- Teardown: drain workers, then the ack stage. ---------------------
  for (ShardQueue& queue : queues) {
    std::lock_guard lock(queue.m);
    queue.closed = true;
    queue.cv.notify_all();
  }
  for (std::thread& worker : workers) worker.join();
  {
    std::lock_guard lock(acks.m);
    acks.closed = true;
    acks.cv.notify_all();
  }
  ack_thread.join();

  std::lock_guard lock(error_mutex);
  return session_error.is_ok() ? result : session_error;
}

Result<ReplicationMessage> ReplicaEngine::apply(
    const ReplicationMessage& message) {
  return apply_view(message.view());
}

Result<ReplicationMessage> ReplicaEngine::apply_view(
    const MessageView& message) {
  // Fence before anything touches the device: a frame from an epoch older
  // than ours comes from a primary that missed a promotion, and applying
  // it would diverge us from the cluster's new history.
  if (!epoch_current(message.cluster_epoch)) {
    return stale_epoch_nak(message.sequence, message.lba);
  }
  PRINS_ASSIGN_OR_RETURN(ReplicationMessage reply, dispatch_view(message));
  reply.cluster_epoch = cluster_epoch();
  return reply;
}

Result<ReplicationMessage> ReplicaEngine::dispatch_view(
    const MessageView& message) {
  switch (message.kind) {
    case MessageKind::kVerifyRequest:
      return apply_verify(message);
    case MessageKind::kHashRequest: {
      PRINS_ASSIGN_OR_RETURN(std::vector<BlockRange> ranges,
                             unpack_ranges(message.payload));
      std::vector<std::uint64_t> hashes;
      hashes.reserve(ranges.size());
      for (const BlockRange& range : ranges) {
        PRINS_ASSIGN_OR_RETURN(std::uint64_t h,
                               hash_block_range(*local_, range));
        hashes.push_back(h);
      }
      ReplicationMessage reply;
      reply.kind = MessageKind::kHashReply;
      reply.sequence = message.sequence;
      reply.payload = pack_hashes(hashes);
      return reply;
    }
    case MessageKind::kWrite:
    case MessageKind::kSyncBlock:
    case MessageKind::kRepairBlock: {
      PRINS_ASSIGN_OR_RETURN(ApplyOutcome outcome,
                             apply_write_message(message));
      if (outcome != ApplyOutcome::kApplied) {
        ReplicationMessage nak;
        nak.kind = MessageKind::kNak;
        nak.sequence = message.sequence;
        nak.lba = message.lba;
        if (outcome == ApplyOutcome::kNakFullBlock) {
          nak.payload.push_back(static_cast<Byte>(NakReason::kNeedFullBlock));
        } else if (outcome == ApplyOutcome::kNakStaleEpoch) {
          nak.payload.push_back(static_cast<Byte>(NakReason::kStaleEpoch));
        }
        return nak;
      }
      break;
    }
    case MessageKind::kReadBlockRequest: {
      // A peer's scrubber wants our copy of the block (repair pull).
      Bytes block(local_->block_size());
      Status read = message.lba < local_->num_blocks()
                        ? local_->read(message.lba, block)
                        : out_of_range("no such block");
      if (read.is_ok()) {
        ApplyShard& shard = shard_for(message.lba);
        std::lock_guard lock(shard.mutex);
        if (shard.damaged.count(message.lba) != 0) {
          read = corruption_error("block awaits repair here too");
        }
      }
      ReplicationMessage reply;
      reply.sequence = message.sequence;
      reply.lba = message.lba;
      if (!read.is_ok()) {
        std::lock_guard lock(mutex_);
        metrics_.naks_sent += 1;
        reply.kind = MessageKind::kNak;
        return reply;
      }
      reply.kind = MessageKind::kReadBlockReply;
      reply.block_size = local_->block_size();
      reply.payload = encode_frame(codec_for(CodecId::kLz), block);
      std::lock_guard lock(mutex_);
      metrics_.repair_reads_served += 1;
      return reply;
    }
    case MessageKind::kClientReadRequest:
      return serve_client_read(message);
    case MessageKind::kReadLease: {
      // The primary published its all-replicas-acked floor; CAS-max it so
      // out-of-order renewals can only ever widen the lease.
      std::uint64_t floor = message.sequence;
      std::uint64_t prev = read_lease_floor_.load(std::memory_order_relaxed);
      while (floor > prev && !read_lease_floor_.compare_exchange_weak(
                                 prev, floor, std::memory_order_acq_rel)) {
      }
      break;  // generic kAck below confirms the renewal
    }
    case MessageKind::kBarrier:
      // The pipeline quiesces before a barrier reaches here, making it the
      // durability point: settle the device before dropping the intents
      // that guard it.
      if (config_.intent_log) {
        PRINS_RETURN_IF_ERROR(checkpoint_intents());
      }
      break;
    case MessageKind::kHello: {
      // Position report: the ACK's timestamp tells the primary how far
      // this replica's device has advanced.
      ReplicationMessage ack;
      ack.kind = MessageKind::kAck;
      ack.sequence = message.sequence;
      ack.timestamp_us = applied_timestamp_us_.load(std::memory_order_acquire);
      return ack;
    }
    case MessageKind::kAck:
    case MessageKind::kAckBatch:
    case MessageKind::kVerifyReply:
    case MessageKind::kHashReply:
    case MessageKind::kNak:
    case MessageKind::kReadBlockReply:
    case MessageKind::kClientReadReply:
      return failed_precondition("replica received a reply-kind message");
  }
  ReplicationMessage ack;
  ack.kind = MessageKind::kAck;
  ack.sequence = message.sequence;
  ack.lba = message.lba;
  return ack;
}

bool ReplicaEngine::already_applied(const ApplyShard& shard,
                                    std::uint64_t sequence) {
  return sequence != 0 && shard.applied_set.count(sequence) != 0;
}

void ReplicaEngine::record_applied(ApplyShard& shard, std::uint64_t sequence) {
  if (sequence == 0) return;
  constexpr std::size_t kDedupWindow = 65536;
  if (!shard.applied_set.insert(sequence).second) return;
  shard.applied_fifo.push_back(sequence);
  if (shard.applied_fifo.size() > kDedupWindow) {
    shard.applied_set.erase(shard.applied_fifo.front());
    shard.applied_fifo.pop_front();
  }
}

void ReplicaEngine::bump_timestamp(std::uint64_t timestamp_us) {
  std::uint64_t prev = applied_timestamp_us_.load(std::memory_order_relaxed);
  while (timestamp_us > prev &&
         !applied_timestamp_us_.compare_exchange_weak(
             prev, timestamp_us, std::memory_order_acq_rel)) {
  }
}

bool ReplicaEngine::epoch_current(std::uint64_t frame_epoch) {
  std::uint64_t current = cluster_epoch_.load(std::memory_order_acquire);
  while (frame_epoch > current) {
    // A newer primary is talking to us: adopt its epoch, which fences the
    // old one from here on.
    if (cluster_epoch_.compare_exchange_weak(current, frame_epoch,
                                             std::memory_order_acq_rel)) {
      return true;
    }
  }
  return frame_epoch == current;
}

ReplicationMessage ReplicaEngine::stale_epoch_nak(std::uint64_t sequence,
                                                  Lba lba) {
  {
    std::lock_guard lock(mutex_);
    metrics_.naks_sent += 1;
    metrics_.stale_epoch_naks += 1;
  }
  ReplicationMessage nak;
  nak.kind = MessageKind::kNak;
  nak.cluster_epoch = cluster_epoch();  // tell the zombie where the world is
  nak.sequence = sequence;
  nak.lba = lba;
  nak.payload.push_back(static_cast<Byte>(NakReason::kStaleEpoch));
  return nak;
}

Result<ReplicaEngine::ApplyOutcome> ReplicaEngine::apply_write_message(
    const MessageView& message) {
  if (!epoch_current(message.cluster_epoch)) {
    std::lock_guard lock(mutex_);
    metrics_.naks_sent += 1;
    metrics_.stale_epoch_naks += 1;
    return ApplyOutcome::kNakStaleEpoch;
  }
  ApplyShard& shard = shard_for(message.lba);
  bool checkpoint_due = false;
  {
    std::lock_guard lock(shard.mutex);
    if (already_applied(shard, message.sequence)) {
      std::lock_guard metrics_lock(mutex_);
      metrics_.duplicates_dropped += 1;
      return ApplyOutcome::kApplied;  // ACK again; re-XOR would undo it
    }
    Status applied = apply_write_locked(shard, message, &checkpoint_due);
    if (applied.code() == ErrorCode::kCorruption ||
        applied.code() == ErrorCode::kDataCorruption) {
      // kCorruption: the payload survived the header CRC but its codec
      // frame is bad — bounce it back for a resend.  kDataCorruption:
      // our stored A_old is torn or rotten, so resending the same parity
      // delta can never succeed — ask for the full block instead.
      std::lock_guard metrics_lock(mutex_);
      metrics_.naks_sent += 1;
      if (applied.code() == ErrorCode::kDataCorruption) {
        metrics_.full_repairs_requested += 1;
        return ApplyOutcome::kNakFullBlock;
      }
      return ApplyOutcome::kNakResend;
    }
    PRINS_RETURN_IF_ERROR(applied);
    record_applied(shard, message.sequence);
    if (message.sequence != 0) {
      std::uint64_t& newest = shard.newest_applied[message.lba];
      if (message.sequence > newest) newest = message.sequence;
    }
    if (message.kind == MessageKind::kWrite ||
        message.kind == MessageKind::kRepairBlock) {
      bump_timestamp(message.timestamp_us);
    }
  }
  // Checkpoint outside the shard lock: it locks *all* shards to quiesce.
  if (checkpoint_due) PRINS_RETURN_IF_ERROR(checkpoint_intents());
  return ApplyOutcome::kApplied;
}

Result<ReplicationMessage> ReplicaEngine::serve_client_read(
    const MessageView& message) {
  // Fence first: after a promotion this replica answers only the new
  // epoch's readers — a router still wired to the deposed primary gets
  // kStaleEpoch and must not trust any data from here.
  if (!epoch_current(message.cluster_epoch)) {
    return stale_epoch_nak(message.sequence, message.lba);
  }
  const std::uint64_t min_sequence =
      message.payload.size() >= 8 ? load_le64(message.payload) : 0;
  ReplicationMessage reply;
  reply.sequence = message.sequence;  // exchange id, echoed for matching
  reply.lba = message.lba;
  reply.cluster_epoch = cluster_epoch();
  auto plain_nak = [&]() -> ReplicationMessage {
    std::lock_guard lock(mutex_);
    metrics_.naks_sent += 1;
    reply.kind = MessageKind::kNak;
    return reply;
  };
  if (message.lba >= local_->num_blocks()) return plain_nak();
  Bytes block(local_->block_size());
  ApplyShard& shard = shard_for(message.lba);
  {
    std::lock_guard lock(shard.mutex);
    if (shard.damaged.count(message.lba) != 0) return plain_nak();
    // Fresh iff the demanded sequence is covered by the lease floor (every
    // write at or below it is applied on every replica) or by this LBA's
    // own applied high-water mark.  Same-LBA applies are serialized by
    // this shard, so newest >= min_sequence proves every same-LBA write at
    // or below min_sequence has landed.
    bool fresh =
        min_sequence == 0 ||
        read_lease_floor_.load(std::memory_order_acquire) >= min_sequence;
    if (!fresh) {
      auto it = shard.newest_applied.find(message.lba);
      fresh = it != shard.newest_applied.end() && it->second >= min_sequence;
    }
    if (!fresh) {
      {
        std::lock_guard mlock(mutex_);
        metrics_.naks_sent += 1;
        metrics_.stale_read_naks += 1;
      }
      reply.kind = MessageKind::kNak;
      reply.payload.push_back(static_cast<Byte>(NakReason::kStaleRead));
      return reply;
    }
    // Read under the shard lock: atomic with respect to in-flight applies
    // on this stripe, so a reader never observes a half-XORed block.
    Status read = apply_dev_->read(message.lba, block);
    if (read.code() == ErrorCode::kDataCorruption) {
      shard.damaged.insert(message.lba);  // NAK deltas until repair lands
      return plain_nak();
    }
    PRINS_RETURN_IF_ERROR(read);
  }
  reply.kind = MessageKind::kClientReadReply;
  reply.block_size = local_->block_size();
  // Raw block bytes, no codec frame: the read path trades wire compression
  // for zero decode cost on the hot path.
  reply.payload = std::move(block);
  std::lock_guard lock(mutex_);
  metrics_.client_reads_served += 1;
  return reply;
}

Status ReplicaEngine::apply_write_locked(ApplyShard& shard,
                                         const MessageView& message,
                                         bool* checkpoint_due) {
  if (message.block_size != local_->block_size()) {
    return invalid_argument("message block size " +
                            std::to_string(message.block_size) +
                            " != replica block size " +
                            std::to_string(local_->block_size()));
  }
  PRINS_ASSIGN_OR_RETURN(Bytes raw, decode_frame(message.payload));
  if (raw.size() != message.block_size) {
    return corruption("decoded payload is " + std::to_string(raw.size()) +
                      " bytes, expected one block");
  }

  const bool parity = message.kind == MessageKind::kWrite &&
                      ships_parity(message.policy);
  if (parity && shard.damaged.count(message.lba) != 0) {
    return corruption_error("block " + std::to_string(message.lba) +
                            " is damaged; parity cannot apply");
  }

  Bytes new_block;
  Bytes delta;
  if (parity) {
    // Backward parity computation: A_new = P' ⊕ A_old.  The old-block
    // cache (apply_dev_) turns a hot LBA's read into a memcpy.
    Bytes old_block(message.block_size);
    Status old_read = apply_dev_->read(message.lba, old_block);
    if (old_read.code() == ErrorCode::kDataCorruption) {
      // A_old failed its checksum: remember the damage so every delta to
      // this LBA bounces until a full-contents write repairs it.
      shard.damaged.insert(message.lba);
    }
    PRINS_RETURN_IF_ERROR(old_read);
    delta = std::move(raw);
    new_block = Bytes(message.block_size);
    xor_to(new_block, delta, old_block);
  } else {
    new_block = std::move(raw);
    if (config_.keep_trap_log && message.kind == MessageKind::kWrite) {
      Bytes old_block(message.block_size);
      Status old_read = apply_dev_->read(message.lba, old_block);
      if (old_read.is_ok()) {
        delta = parity_delta(new_block, old_block);
      } else if (old_read.code() != ErrorCode::kDataCorruption) {
        return old_read;
      }
      // Corrupt old contents: the full write repairs the block, but there
      // is no usable delta to log for CDP.
    }
  }

  // Durable intent before the in-place write: after a crash, the CRC tells
  // a completed apply (dedup its redelivery) from a torn one (NAK for a
  // full-block repair).  record() group-commits, so concurrent shard
  // workers share one fdatasync.
  if (config_.intent_log) {
    PRINS_RETURN_IF_ERROR(config_.intent_log->record(
        message.sequence, message.lba, crc32c(new_block)));
  }

  PRINS_RETURN_IF_ERROR(apply_dev_->write(message.lba, new_block));

  if (config_.keep_trap_log && message.kind == MessageKind::kWrite &&
      !delta.empty()) {
    std::lock_guard trap_lock(trap_mutex_);
    PRINS_RETURN_IF_ERROR(
        trap_log_.append(message.lba, message.timestamp_us, delta));
  }

  shard.damaged.erase(message.lba);  // full contents (or a clean apply) landed
  {
    std::lock_guard lock(mutex_);
    metrics_.writes_applied += (message.kind == MessageKind::kWrite);
    metrics_.parity_applies += parity;
    metrics_.sync_blocks += (message.kind == MessageKind::kSyncBlock);
    metrics_.repairs += (message.kind == MessageKind::kRepairBlock);
  }
  if (config_.intent_log && config_.intent_checkpoint_every > 0) {
    const std::uint64_t applies =
        applies_since_checkpoint_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (applies >= config_.intent_checkpoint_every) {
      applies_since_checkpoint_.store(0, std::memory_order_relaxed);
      *checkpoint_due = true;
    }
  }
  return Status::ok();
}

Status ReplicaEngine::checkpoint_intents() {
  if (!config_.intent_log) return Status::ok();
  std::lock_guard checkpoint_lock(checkpoint_mutex_);
  // Quiesce by locking every shard (index order; applies take exactly one):
  // no apply can sit between its intent record and its device write while
  // the log truncates.
  std::vector<std::unique_lock<std::mutex>> held;
  held.reserve(shards_.size());
  for (auto& shard : shards_) held.emplace_back(shard->mutex);
  // Settle the data writes first; only then is it safe to forget the
  // intents that would re-detect them.
  PRINS_RETURN_IF_ERROR(apply_dev_->flush());
  PRINS_RETURN_IF_ERROR(config_.intent_log->checkpoint());
  applies_since_checkpoint_.store(0, std::memory_order_relaxed);
  return Status::ok();
}

Result<std::vector<Lba>> ReplicaEngine::recover_intents() {
  if (!config_.intent_log) return std::vector<Lba>{};
  std::map<Lba, std::vector<WriteIntentLog::Intent>> by_lba;
  for (const WriteIntentLog::Intent& intent : config_.intent_log->pending()) {
    by_lba[intent.lba].push_back(intent);
  }
  std::vector<Lba> damaged;
  Bytes block(local_->block_size());
  for (const auto& [lba, intents] : by_lba) {
    if (lba >= local_->num_blocks()) continue;
    const Status read = local_->read(lba, block);
    const std::uint32_t crc = read.is_ok() ? crc32c(block) : 0;
    // Same-LBA applies are serialized (their shard orders them), so the
    // *newest* intent the contents match tells how far that block's stream
    // got: everything up to it completed (dedup those sequences — re-XOR
    // would undo them), everything after it never ran and will be
    // redelivered.  Matching nothing means the block is torn — or an apply
    // stopped between intent and write, which is indistinguishable and
    // equally unsafe to patch with a delta.
    ApplyShard& shard = shard_for(lba);
    bool matched = false;
    if (read.is_ok()) {
      for (std::size_t i = intents.size(); i-- > 0;) {
        if (intents[i].crc == crc) {
          std::lock_guard lock(shard.mutex);
          for (std::size_t j = 0; j <= i; ++j) {
            record_applied(shard, intents[j].sequence);
          }
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      {
        std::lock_guard lock(shard.mutex);
        shard.damaged.insert(lba);
      }
      std::lock_guard lock(mutex_);
      metrics_.torn_blocks_detected += 1;
      damaged.push_back(lba);
    }
  }
  return damaged;
}

std::vector<Lba> ReplicaEngine::damaged_blocks() const {
  std::vector<Lba> out;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    out.insert(out.end(), shard->damaged.begin(), shard->damaged.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::unique_ptr<PrinsEngine>> ReplicaEngine::promote(
    EngineConfig config) {
  // Finish crash recovery first: the intent log is what separates applied
  // writes from torn ones after a hard kill (idempotent if already run).
  PRINS_ASSIGN_OR_RETURN(std::vector<Lba> damaged, recover_intents());
  if (!damaged.empty()) {
    return failed_precondition(
        "cannot promote: " + std::to_string(damaged.size()) +
        " torn block(s) await full-block repair");
  }
  // Highest applied sequence across the striped dedup windows: the new
  // primary's writes must sequence above anything a survivor may already
  // have seen, or its dedup window would swallow them.
  std::uint64_t max_sequence = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    for (std::uint64_t sequence : shard->applied_fifo) {
      max_sequence = std::max(max_sequence, sequence);
    }
  }
  // Fence the old primary: everything from here on happens one epoch up,
  // and this replica keeps NAKing the old epoch if the zombie reappears.
  std::uint64_t epoch =
      cluster_epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (config.cluster_epoch > epoch) {
    epoch_current(config.cluster_epoch);  // adopt an operator-forced epoch
    epoch = config.cluster_epoch;
  }
  config.cluster_epoch = epoch;
  config.keep_trap_log = true;  // survivors catch up with delta resyncs
  auto engine = std::make_unique<PrinsEngine>(local_, config);
  PRINS_RETURN_IF_ERROR(engine->adopt_recovered_state(
      max_sequence + 1, applied_timestamp(), trap_log_));
  return engine;
}

Result<ReplicationMessage> ReplicaEngine::apply_verify(
    const MessageView& message) {
  PRINS_ASSIGN_OR_RETURN(std::vector<BlockChecksum> sums,
                         unpack_checksums(message.payload));
  std::vector<std::uint64_t> mismatched;
  Bytes block(local_->block_size());
  for (const auto& sum : sums) {
    if (sum.lba >= local_->num_blocks()) {
      mismatched.push_back(sum.lba);
      continue;
    }
    const Status read = local_->read(sum.lba, block);
    if (read.code() == ErrorCode::kDataCorruption) {
      mismatched.push_back(sum.lba);  // unreadable == mismatched: repair it
      continue;
    }
    PRINS_RETURN_IF_ERROR(read);
    if (crc32c(block) != sum.crc) mismatched.push_back(sum.lba);
  }
  {
    std::lock_guard lock(mutex_);
    metrics_.verify_requests += 1;
  }
  ReplicationMessage reply;
  reply.kind = MessageKind::kVerifyReply;
  reply.sequence = message.sequence;
  reply.payload = pack_lbas(mismatched);
  return reply;
}

ReplicaMetrics ReplicaEngine::metrics() const {
  ReplicaMetrics m;
  {
    std::lock_guard lock(mutex_);
    m = metrics_;
  }
  m.apply_queue_peak = apply_queue_peak_.load(std::memory_order_relaxed);
  if (cache_) {
    const CacheStats stats = cache_->stats();
    m.cache_hits = stats.hits;
    m.cache_misses = stats.misses;
  }
  if (config_.intent_log) {
    const WriteIntentLog::Stats stats = config_.intent_log->stats();
    m.intent_records = stats.records;
    m.intent_fsyncs = stats.fsyncs;
  }
  return m;
}

std::uint64_t ReplicaEngine::applied_timestamp() const {
  return applied_timestamp_us_.load(std::memory_order_acquire);
}

std::thread replica_serve_in_background(std::shared_ptr<ReplicaEngine> replica,
                                        std::shared_ptr<Listener> listener) {
  return std::thread([replica = std::move(replica),
                      listener = std::move(listener)] {
    std::vector<std::thread> sessions;
    int consecutive_failures = 0;
    for (;;) {
      auto conn = listener->accept();
      if (!conn.is_ok()) {
        // A closed listener is the shutdown signal; anything else is a
        // transient accept failure (ECONNABORTED, an injected listener
        // fault) — retry, but don't spin forever if accept() only fails.
        if (conn.status().code() == ErrorCode::kUnavailable) break;
        PRINS_LOG(kWarn) << "replica accept: " << conn.status().to_string();
        if (++consecutive_failures >= 64) {
          PRINS_LOG(kError)
              << "replica accept failing persistently; stopping the loop";
          break;
        }
        continue;
      }
      consecutive_failures = 0;
      sessions.emplace_back(
          [replica, conn = std::shared_ptr<Transport>(std::move(*conn))] {
            Status s = replica->serve(*conn);
            if (!s.is_ok()) {
              PRINS_LOG(kWarn) << "replica session error: " << s.to_string();
            }
          });
    }
    for (std::thread& session : sessions) session.join();
  });
}

}  // namespace prins
