#include "prins/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/crc32c.h"
#include "common/endian.h"

namespace prins {
namespace {

constexpr Byte kMagic[4] = {'P', 'R', 'j', 'l'};
constexpr std::uint8_t kRecordMessage = 0x01;
constexpr std::uint8_t kRecordAck = 0x02;

Status write_all(int fd, ByteSpan data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error(std::string("journal write: ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

struct ScanResult {
  std::uint64_t acked = 0;
  std::uint64_t max_sequence = 0;
  // Every message record in file order (pre-watermark entries included;
  // callers filter against `acked`).
  std::vector<std::pair<std::uint64_t, Bytes>> records;
};

// Walk the record stream after the magic; a torn or corrupt tail ends the
// scan (everything before it is good).
ScanResult scan_records(ByteSpan contents) {
  ScanResult out;
  std::size_t pos = 4;
  while (pos < contents.size()) {
    const std::uint8_t type = contents[pos];
    if (type == kRecordMessage) {
      if (contents.size() - pos < 5) break;
      const std::uint32_t len = load_le32(contents.subspan(pos + 1, 4));
      if (contents.size() - pos - 5 < len) break;
      const ByteSpan wire = contents.subspan(pos + 5, len);
      auto message = ReplicationMessage::decode(wire);
      if (!message.is_ok()) break;
      out.max_sequence = std::max(out.max_sequence, message->sequence);
      out.records.emplace_back(message->sequence, to_bytes(wire));
      pos += 5 + len;
    } else if (type == kRecordAck) {
      if (contents.size() - pos < 9) break;
      out.acked = std::max(out.acked, load_le64(contents.subspan(pos + 1, 8)));
      pos += 9;
    } else {
      break;  // unknown/garbage tail
    }
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<ReplicationJournal>> ReplicationJournal::open(
    const std::string& path, std::size_t replay_cache_bytes) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return io_error("open(" + path + "): " + std::strerror(errno));
  }
  std::unique_ptr<ReplicationJournal> journal(
      new ReplicationJournal(fd, path, replay_cache_bytes));

  // Scan existing contents.
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) return io_error("lseek: " + std::string(std::strerror(errno)));
  if (size == 0) {
    // Fresh journal: write the magic.
    PRINS_RETURN_IF_ERROR(write_all(fd, kMagic));
    return journal;
  }

  Bytes contents(static_cast<std::size_t>(size));
  if (::pread(fd, contents.data(), contents.size(), 0) !=
      static_cast<ssize_t>(contents.size())) {
    return io_error("journal read failed: " + path);
  }
  if (contents.size() < 4 ||
      !std::equal(std::begin(kMagic), std::end(kMagic), contents.begin())) {
    return corruption("bad journal magic: " + path);
  }

  ScanResult scan = scan_records(contents);
  journal->acked_ = scan.acked;
  journal->max_sequence_ = scan.max_sequence;
  journal->pending_ = std::move(scan.records);

  // Drop entries at or below the watermark; keep the rest sorted.
  auto& pending = journal->pending_;
  std::erase_if(pending, [&](const auto& entry) {
    return entry.first <= journal->acked_;
  });
  std::sort(pending.begin(), pending.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [sequence, wire] : pending) {
    journal->pending_bytes_ += wire.size();
  }
  journal->evict_replay_cache_locked();
  return journal;
}

ReplicationJournal::ReplicationJournal(int fd, std::string path,
                                       std::size_t replay_cache_bytes)
    : fd_(fd),
      path_(std::move(path)),
      replay_cache_bytes_(replay_cache_bytes) {}

ReplicationJournal::~ReplicationJournal() { ::close(fd_); }

Status ReplicationJournal::append_record_locked(std::uint8_t type,
                                                ByteSpan payload) {
  Bytes record;
  record.reserve(5 + payload.size());
  record.push_back(type);
  if (type == kRecordMessage) {
    append_le32(record, static_cast<std::uint32_t>(payload.size()));
  }
  prins::append(record, payload);
  PRINS_RETURN_IF_ERROR(write_all(fd_, record));
  if (::fdatasync(fd_) != 0) {
    return io_error("journal fdatasync: " + std::string(std::strerror(errno)));
  }
  return Status::ok();
}

Status ReplicationJournal::append(const ReplicationMessage& message) {
  return append(message, message.payload);
}

Status ReplicationJournal::append(const ReplicationMessage& header,
                                  ByteSpan payload) {
  std::unique_lock lock(mutex_);
  if (!flush_error_.is_ok()) return flush_error_;

  // Stage [type | u32 len | wire] directly into the shared staging buffer,
  // building the wire frame in place (header, payload, trailing CRC).
  const std::size_t wire_size =
      ReplicationMessage::kWireHeaderSize + payload.size() + 4;
  staging_.push_back(kRecordMessage);
  append_le32(staging_, static_cast<std::uint32_t>(wire_size));
  const std::size_t wire_at = staging_.size();
  staging_.resize(wire_at + ReplicationMessage::kWireHeaderSize);
  header.encode_header(MutByteSpan(staging_).subspan(wire_at),
                       payload.size());
  prins::append(staging_, payload);
  append_le32(staging_, crc32c(ByteSpan(staging_).subspan(wire_at)));
  Bytes wire = to_bytes(ByteSpan(staging_).subspan(wire_at));
  const std::uint64_t my_ticket = ++staged_ticket_;

  // Group commit: the first appender to find no flush in progress becomes
  // the leader and syncs everything staged so far (including records from
  // appenders now waiting); the rest sleep until their ticket is covered.
  while (synced_ticket_ < my_ticket && flush_error_.is_ok()) {
    if (!flusher_active_) {
      flusher_active_ = true;
      Bytes batch = std::move(staging_);
      staging_ = Bytes();
      const std::uint64_t batch_upto = staged_ticket_;
      const int fd = fd_;
      lock.unlock();
      Status s = write_all(fd, batch);
      if (s.is_ok() && ::fdatasync(fd) != 0) {
        s = io_error("journal fdatasync: " +
                     std::string(std::strerror(errno)));
      }
      lock.lock();
      flusher_active_ = false;
      if (s.is_ok()) {
        synced_ticket_ = std::max(synced_ticket_, batch_upto);
      } else {
        flush_error_ = s;
      }
      sync_cv_.notify_all();
    } else {
      sync_cv_.wait(lock);
    }
  }
  if (!flush_error_.is_ok()) return flush_error_;
  max_sequence_ = std::max(max_sequence_, header.sequence);
  pending_bytes_ += wire.size();
  pending_.emplace_back(header.sequence, std::move(wire));
  evict_replay_cache_locked();
  return Status::ok();
}

void ReplicationJournal::evict_replay_cache_locked() {
  if (pending_bytes_ <= replay_cache_bytes_) return;
  // Oldest first: a stuck watermark pins the front of the queue, and those
  // are the wires that will sit cached the longest.
  for (auto& [sequence, wire] : pending_) {
    if (pending_bytes_ <= replay_cache_bytes_) break;
    if (wire.empty()) continue;
    pending_bytes_ -= wire.size();
    wire = Bytes();
    spills_ += 1;
    spilled_ = true;
  }
}

Status ReplicationJournal::mark_acked(std::uint64_t sequence) {
  Byte seq[8];
  store_le64(seq, sequence);
  std::unique_lock lock(mutex_);
  // The leader writes the descriptor with the lock released; wait it out so
  // record bytes never interleave.
  sync_cv_.wait(lock, [&] { return !flusher_active_; });
  if (!flush_error_.is_ok()) return flush_error_;
  if (sequence <= acked_) return Status::ok();
  PRINS_RETURN_IF_ERROR(append_record_locked(kRecordAck, seq));
  acked_ = sequence;
  bool holes = false;
  std::erase_if(pending_, [&](const auto& entry) {
    if (entry.first <= acked_) {
      pending_bytes_ -= entry.second.size();
      return true;
    }
    holes |= entry.second.empty();
    return false;
  });
  spilled_ = holes;  // the watermark may have swept past every spilled entry
  return Status::ok();
}

Result<std::vector<std::pair<std::uint64_t, Bytes>>>
ReplicationJournal::read_pending_from_file_locked() const {
  const off_t size = ::lseek(fd_, 0, SEEK_END);  // fd_ already sits at end
  if (size < 0) return io_error("lseek: " + std::string(std::strerror(errno)));
  Bytes contents(static_cast<std::size_t>(size));
  if (::pread(fd_, contents.data(), contents.size(), 0) !=
      static_cast<ssize_t>(contents.size())) {
    return io_error("journal re-read failed: " + path_);
  }
  ScanResult scan = scan_records(contents);
  auto& records = scan.records;
  std::erase_if(records,
                [&](const auto& entry) { return entry.first <= acked_; });
  std::sort(records.begin(), records.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return std::move(records);
}

Result<std::vector<ReplicationMessage>> ReplicationJournal::pending() const {
  std::unique_lock lock(mutex_);
  std::vector<std::pair<std::uint64_t, Bytes>> from_file;
  const std::vector<std::pair<std::uint64_t, Bytes>>* source = &pending_;
  if (spilled_) {
    // Evicted wires live only in the file; re-read it.  (Replay is a
    // restart-time path — the extra read is the price of the bounded
    // steady-state cache.)  Wait out any in-flight group commit so the
    // re-read never races the leader's write.
    sync_cv_.wait(lock, [&] { return !flusher_active_ && staging_.empty(); });
    PRINS_ASSIGN_OR_RETURN(from_file, read_pending_from_file_locked());
    source = &from_file;
  }
  std::vector<ReplicationMessage> out;
  out.reserve(source->size());
  for (const auto& [sequence, wire] : *source) {
    PRINS_ASSIGN_OR_RETURN(ReplicationMessage message,
                           ReplicationMessage::decode(wire));
    out.push_back(std::move(message));
  }
  // Group-committed appends can land in pending_ slightly out of ticket
  // order; replay must go out in sequence order.
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.sequence < b.sequence;
  });
  return out;
}

Status ReplicationJournal::checkpoint() {
  std::unique_lock lock(mutex_);
  // Swapping fd_ under a live leader (which writes with the lock released)
  // would hand it a dead descriptor; staged-but-unsynced records would also
  // be missed by the rewrite.  Both drain quickly.
  sync_cv_.wait(lock, [&] { return !flusher_active_ && staging_.empty(); });
  if (spilled_) {
    // Spilled entries keep only their sequence in RAM; recover the wires
    // from the old file before it is replaced.
    PRINS_ASSIGN_OR_RETURN(pending_, read_pending_from_file_locked());
    pending_bytes_ = 0;
    for (const auto& [sequence, wire] : pending_) {
      pending_bytes_ += wire.size();
    }
    spilled_ = false;
  }
  const std::string tmp = path_ + ".tmp";
  int fd = ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return io_error("open(" + tmp + "): " + std::strerror(errno));
  }
  Bytes out;
  prins::append(out, kMagic);
  out.push_back(kRecordAck);
  append_le64(out, acked_);
  for (const auto& [sequence, wire] : pending_) {
    out.push_back(kRecordMessage);
    append_le32(out, static_cast<std::uint32_t>(wire.size()));
    prins::append(out, wire);
  }
  Status s = write_all(fd, out);
  if (s.is_ok() && ::fdatasync(fd) != 0) {
    s = io_error("checkpoint fdatasync failed");
  }
  ::close(fd);
  if (!s.is_ok()) {
    ::unlink(tmp.c_str());
    return s;
  }
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    return io_error("rename(" + tmp + "): " + std::strerror(errno));
  }
  // Reopen the descriptor onto the new file.
  int new_fd = ::open(path_.c_str(), O_RDWR, 0644);
  if (new_fd < 0) {
    return io_error("reopen(" + path_ + "): " + std::strerror(errno));
  }
  ::lseek(new_fd, 0, SEEK_END);
  ::close(fd_);
  fd_ = new_fd;
  // The rebuild above may have pulled spilled wires back into RAM; re-apply
  // the cache bound now that the new file is in place.
  evict_replay_cache_locked();
  return Status::ok();
}

std::uint64_t ReplicationJournal::acked_sequence() const {
  std::lock_guard lock(mutex_);
  return acked_;
}

std::uint64_t ReplicationJournal::max_sequence() const {
  std::lock_guard lock(mutex_);
  return max_sequence_;
}

std::size_t ReplicationJournal::pending_count() const {
  std::lock_guard lock(mutex_);
  return pending_.size();
}

JournalStats ReplicationJournal::stats() const {
  std::lock_guard lock(mutex_);
  JournalStats out;
  out.pending_records = pending_.size();
  out.pending_bytes = pending_bytes_;
  out.spills = spills_;
  out.acked_sequence = acked_;
  return out;
}

}  // namespace prins
