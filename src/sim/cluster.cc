#include "sim/cluster.h"

#include <algorithm>
#include <chrono>

#include "net/inproc.h"

namespace prins {

SymmetricCluster::SymmetricCluster(ClusterConfig config)
    : config_(config), nodes_(config.nodes) {
  // Create every node's volume and engine first.
  for (unsigned i = 0; i < config_.nodes; ++i) {
    Node& node = nodes_[i];
    node.volume =
        std::make_shared<MemDisk>(config_.blocks_per_node, config_.block_size);
    EngineConfig engine_config;
    engine_config.policy = config_.policy;
    engine_config.pipeline_depth = config_.pipeline_depth;
    engine_config.coalesce_writes = config_.coalesce_writes;
    node.engine = std::make_unique<PrinsEngine>(node.volume, engine_config);
    node.rng = Rng(config_.seed * 1000 + i);
  }
  // Wire the ring: node i's engine -> replica hosted on node (i+k) % N.
  for (unsigned i = 0; i < config_.nodes; ++i) {
    for (unsigned k = 1; k <= config_.replicas_per_node; ++k) {
      const unsigned host = (i + k) % config_.nodes;
      ReplicaHost hosted;
      hosted.store = std::make_shared<MemDisk>(config_.blocks_per_node,
                                               config_.block_size);
      hosted.engine = std::make_shared<ReplicaEngine>(hosted.store);
      auto [engine_end, replica_end] = make_inproc_pair();
      auto meter = std::make_unique<TrafficMeter>(std::move(engine_end));
      nodes_[i].outgoing.push_back(meter.get());
      nodes_[i].engine->add_replica(std::move(meter));
      hosted.server = std::thread(
          [engine = hosted.engine,
           link = std::shared_ptr<Transport>(std::move(replica_end))] {
            (void)engine->serve(*link);
          });
      nodes_[host].hosted.push_back(std::move(hosted));
    }
  }
}

SymmetricCluster::~SymmetricCluster() {
  // Destroy engines first (closes links), then join replica servers.
  for (Node& node : nodes_) node.engine.reset();
  for (Node& node : nodes_) {
    for (ReplicaHost& hosted : node.hosted) {
      if (hosted.server.joinable()) hosted.server.join();
    }
  }
}

Result<ClusterReport> SymmetricCluster::run(std::uint64_t writes_per_node) {
  const std::uint32_t bs = config_.block_size;
  const std::uint32_t dirty =
      std::min(config_.dirty_bytes_per_write, bs);

  // Interleave nodes round-robin, as concurrent applications would.
  const auto start = std::chrono::steady_clock::now();
  Bytes block(bs);
  for (std::uint64_t w = 0; w < writes_per_node; ++w) {
    for (Node& node : nodes_) {
      const Lba lba = node.rng.next_below(config_.blocks_per_node);
      PRINS_RETURN_IF_ERROR(node.engine->read(lba, block));
      const std::size_t at = node.rng.next_below(bs - dirty + 1);
      node.rng.fill(MutByteSpan(block).subspan(at, dirty));
      PRINS_RETURN_IF_ERROR(node.engine->write(lba, block));
    }
  }
  for (Node& node : nodes_) {
    PRINS_RETURN_IF_ERROR(node.engine->drain());
  }
  const auto stop = std::chrono::steady_clock::now();

  ClusterReport report;
  report.elapsed_sec = std::chrono::duration<double>(stop - start).count();
  report.all_replicas_consistent = true;
  std::uint64_t payload_messages = 0;
  for (unsigned i = 0; i < config_.nodes; ++i) {
    const Node& node = nodes_[i];
    report.total_writes += node.engine->metrics().writes;
    for (TrafficMeter* meter : node.outgoing) {
      const TrafficStats sent = meter->sent();
      report.fabric.merge(sent);
      payload_messages += sent.messages;
    }
  }

  // Consistency: every hosted store must equal exactly one primary —
  // by construction, node h hosts (in order) the replicas of peers
  // h-1, h-2, ..., h-R (mod N), because wiring iterates i then k.
  Bytes a(bs), b(bs);
  for (unsigned h = 0; h < config_.nodes; ++h) {
    const auto& hosted_list = nodes_[h].hosted;
    for (std::size_t idx = 0; idx < hosted_list.size(); ++idx) {
      // hosted_list accumulates as i ascends: peer i with (i + k) % N == h.
      // Recover the peer index by searching (N is small).
      unsigned peer = config_.nodes;  // sentinel
      std::size_t seen = 0;
      for (unsigned i = 0; i < config_.nodes && peer == config_.nodes; ++i) {
        for (unsigned k = 1; k <= config_.replicas_per_node; ++k) {
          if ((i + k) % config_.nodes == h) {
            if (seen == idx) {
              peer = i;
              break;
            }
            ++seen;
          }
        }
      }
      if (peer == config_.nodes) {
        return internal_error("cluster wiring bookkeeping failed");
      }
      for (Lba lba = 0; lba < config_.blocks_per_node; ++lba) {
        PRINS_RETURN_IF_ERROR(nodes_[peer].volume->read(lba, a));
        PRINS_RETURN_IF_ERROR(hosted_list[idx].store->read(lba, b));
        if (a != b) {
          report.all_replicas_consistent = false;
          break;
        }
      }
    }
  }

  report.mean_payload_bytes =
      payload_messages == 0
          ? 0.0
          : static_cast<double>(report.fabric.payload_bytes) /
                static_cast<double>(payload_messages);
  return report;
}

}  // namespace prins
