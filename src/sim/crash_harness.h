// CrashHarness: deterministic primary-failover scenarios.
//
// One scenario = one seeded write stream against a primary with two
// replica candidates, a hard kill of the primary at a chosen point, an
// epoch-fenced promotion, and a machine-checked verdict:
//
//   durability   every write whose sequence the crashed primary's journal
//                durably marked acked is present at the promoted volume
//                (the watermark only advances when EVERY replica acked, so
//                the most-advanced candidate provably holds them all);
//   atomicity    every block on the promoted volume byte-matches some
//                version the workload actually wrote — a torn or
//                half-applied XOR delta matches nothing;
//   convergence  the surviving replica delta-resyncs to the new primary
//                and stays byte-identical through fresh epoch-1 traffic;
//   fencing      a zombie engine still stamping the dead epoch is rejected
//                with NakReason::kStaleEpoch and fails sticky.
//
// Kill points cover the three layers a real crash can land in: between
// writes (clean loss of the process), inside the local device (FaultyDisk
// crash-stops with a torn in-flight op), and inside the replication stream
// (FaultyTransport hard-cuts the link mid-frame).  Everything is seeded;
// a failing (kill, seed) pair replays bit-for-bit for the synchronous
// layers (between-writes, disk crash).  Mid-frame cuts are observed by
// sender threads asynchronously, so there the write count may wobble but
// the invariants checked are timing-independent.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "prins/message.h"

namespace prins {

struct CrashScenario {
  enum class Kill {
    /// Hard-stop the primary after `kill_point` submitted writes.
    kBetweenWrites,
    /// The primary's volume crash-stops (torn in-flight op, then dead)
    /// after `kill_point` device I/Os; the primary dies with it.
    kLocalDiskCrash,
    /// The link to one replica candidate hard-cuts after `kill_point`
    /// frames; the primary is killed once its senders notice.
    kMidFrame,
  };

  Kill kill = Kill::kBetweenWrites;
  std::uint64_t kill_point = 10;
  std::uint64_t seed = 1;
  /// Writes the primary attempts before the scheduled kill (whichever
  /// trips first ends the stream).
  std::uint64_t total_writes = 64;
  std::uint32_t block_size = 4096;
  std::uint64_t blocks = 64;
  /// Writes land on LBAs [0, hot_lbas) so every block accumulates real
  /// version history for the atomicity check.
  std::uint64_t hot_lbas = 8;
  /// Writes issued at the promoted primary to prove the new epoch is live.
  std::uint64_t post_failover_writes = 16;
  ReplicationPolicy policy = ReplicationPolicy::kPrins;
};

struct CrashVerdict {
  std::uint64_t writes_submitted = 0;   // write() calls that returned OK
  std::uint64_t acked_watermark = 0;    // journal watermark, re-read from
                                        // disk the way a restart would
  std::uint64_t promoted_epoch = 0;     // fencing epoch the successor mints
  std::uint64_t survivor_resynced = 0;  // folded deltas shipped to catch
                                        // the survivor up
  std::uint64_t zombie_naks = 0;        // stale-epoch NAKs the zombie drew
  bool durable = false;                 // acked writes all survived
  bool exact = false;                   // no half-visible block anywhere
  bool survivor_consistent = false;     // survivor == new primary, byte-wise
  bool zombie_fenced = false;           // old epoch rejected, error sticky
  std::string detail;                   // first violation, for test output

  bool ok() const {
    return durable && exact && survivor_consistent && zombie_fenced;
  }
};

/// Run one scenario end to end.  An error Status means the harness itself
/// could not complete (setup failure, promotion refused); invariant
/// violations come back inside the verdict instead.
Result<CrashVerdict> run_crash_scenario(const CrashScenario& scenario);

}  // namespace prins
