#include "sim/crash_harness.h"

#include <dirent.h>
#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "block/faulty_disk.h"
#include "block/mem_disk.h"
#include "common/rng.h"
#include "net/faulty.h"
#include "net/inproc.h"
#include "prins/engine.h"
#include "prins/intent_log.h"
#include "prins/journal.h"
#include "prins/replica.h"

namespace prins {
namespace {

// Scratch directory for the journal and intent logs; removed on exit.
struct TempDir {
  std::string path;
  TempDir() {
    char buf[] = "/tmp/prins-crash-XXXXXX";
    if (::mkdtemp(buf) != nullptr) path = buf;
  }
  ~TempDir() {
    if (path.empty()) return;
    if (DIR* dir = ::opendir(path.c_str())) {
      while (dirent* entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        ::unlink((path + "/" + name).c_str());
      }
      ::closedir(dir);
    }
    ::rmdir(path.c_str());
  }
  std::string file(const std::string& name) const { return path + "/" + name; }
};

Bytes random_block(Rng& rng, std::size_t size) {
  Bytes block(size);
  rng.fill(block);
  return block;
}

std::thread serve_in_thread(std::shared_ptr<ReplicaEngine> replica,
                            std::unique_ptr<Transport> transport) {
  return std::thread(
      [replica, t = std::shared_ptr<Transport>(std::move(transport))] {
        (void)replica->serve(*t);
      });
}

// One replica candidate: a volume, a durable intent log, and an engine
// with trap logging on (either candidate may be promoted, and the winner's
// trap log seeds the survivor's delta resync).
struct Candidate {
  std::shared_ptr<MemDisk> disk;
  std::shared_ptr<ReplicaEngine> engine;
  std::thread server;
};

Result<Candidate> make_candidate(const CrashScenario& sc,
                                 const std::string& intent_path) {
  Candidate c;
  c.disk = std::make_shared<MemDisk>(sc.blocks, sc.block_size);
  PRINS_ASSIGN_OR_RETURN(auto intents, WriteIntentLog::open(intent_path));
  ReplicaConfig config;
  config.keep_trap_log = true;
  config.intent_log = std::move(intents);
  c.engine = std::make_shared<ReplicaEngine>(c.disk, config);
  return c;
}

}  // namespace

Result<CrashVerdict> run_crash_scenario(const CrashScenario& sc) {
  if (sc.hot_lbas == 0 || sc.hot_lbas > sc.blocks) {
    return invalid_argument("hot_lbas must be in [1, blocks]");
  }
  if (sc.post_failover_writes == 0) {
    // The survivor only adopts the promoted epoch from frames it receives;
    // with no post-failover traffic the fencing check would be vacuous.
    return invalid_argument("post_failover_writes must be > 0");
  }
  TempDir tmp;
  if (tmp.path.empty()) return io_error("mkdtemp failed");
  CrashVerdict verdict;

  // --- Topology: primary + two replica candidates --------------------------
  auto volume_mem = std::make_shared<MemDisk>(sc.blocks, sc.block_size);
  std::shared_ptr<BlockDevice> volume = volume_mem;
  std::shared_ptr<FaultyDisk> faulty_volume;
  if (sc.kill == CrashScenario::Kill::kLocalDiskCrash) {
    FaultyDisk::Config fc;
    fc.seed = sc.seed;
    faulty_volume = std::make_shared<FaultyDisk>(volume_mem, fc);
    faulty_volume->crash_after(sc.kill_point);
    volume = faulty_volume;
  }
  PRINS_ASSIGN_OR_RETURN(auto journal_owned,
                         ReplicationJournal::open(tmp.file("journal")));
  std::shared_ptr<ReplicationJournal> journal = std::move(journal_owned);

  PRINS_ASSIGN_OR_RETURN(Candidate first,
                         make_candidate(sc, tmp.file("first.intents")));
  PRINS_ASSIGN_OR_RETURN(Candidate second,
                         make_candidate(sc, tmp.file("second.intents")));

  EngineConfig primary_config;
  primary_config.policy = sc.policy;
  primary_config.keep_trap_log = true;
  primary_config.journal = journal;  // no reconnect: link failures stick
  auto primary = std::make_unique<PrinsEngine>(volume, primary_config);

  auto [to_first, from_first] = make_inproc_pair();
  std::unique_ptr<Transport> first_link = std::move(to_first);
  if (sc.kill == CrashScenario::Kill::kMidFrame) {
    FaultConfig fc;
    fc.disconnect_after = sc.kill_point;
    fc.seed = sc.seed;
    first_link = std::make_unique<FaultyTransport>(std::move(first_link), fc);
  }
  first.server = serve_in_thread(first.engine, std::move(from_first));
  auto [to_second, from_second] = make_inproc_pair();
  second.server = serve_in_thread(second.engine, std::move(from_second));
  primary->add_replica(std::move(first_link));
  primary->add_replica(std::move(to_second));

  // --- Seeded write stream until the scheduled kill ------------------------
  // Version history per LBA (index 0 = the initial zero block) plus the
  // sequence -> (lba, version) map the durability check walks.  A single
  // writer means write i takes sequence i+1; the journal re-read below
  // cross-checks that assumption.
  std::vector<std::vector<Bytes>> versions(sc.hot_lbas);
  for (auto& history : versions) history.emplace_back(sc.block_size, 0);
  struct Ref {
    Lba lba;
    std::size_t version;
  };
  std::vector<Ref> by_seq;
  Rng rng(sc.seed);
  for (std::uint64_t i = 0; i < sc.total_writes; ++i) {
    if (sc.kill == CrashScenario::Kill::kBetweenWrites &&
        i == sc.kill_point) {
      break;
    }
    const Lba lba = rng.next_below(sc.hot_lbas);
    Bytes content = random_block(rng, sc.block_size);
    if (!primary->write(lba, content).is_ok()) break;  // the crash arrived
    versions[lba].push_back(std::move(content));
    by_seq.push_back(Ref{lba, versions[lba].size() - 1});
  }
  verdict.writes_submitted = by_seq.size();

  // --- Hard kill: no drain, no flush, no goodbye ---------------------------
  primary.reset();
  journal.reset();  // release the fd; the re-open below is the "restart"
  first.server.join();
  second.server.join();

  // The durable ack floor, read the way a recovering operator would.
  PRINS_ASSIGN_OR_RETURN(auto dead_journal,
                         ReplicationJournal::open(tmp.file("journal")));
  verdict.acked_watermark = dead_journal->acked_sequence();
  const std::uint64_t journaled_max = dead_journal->max_sequence();
  dead_journal.reset();
  if (journaled_max < verdict.writes_submitted ||
      journaled_max > verdict.writes_submitted + 1) {
    // +1: the final write may journal its record and then die in
    // distribution, which the version map intentionally never sees.
    return internal_error("sequence map out of step with the journal");
  }

  // --- Promotion: the most-advanced candidate wins -------------------------
  // The journal watermark only advances once EVERY replica acked a write,
  // so whichever candidate applied furthest provably holds every acked
  // write; promoting the laggard instead could orphan acked data and
  // diverge the survivor (it would sit ahead of its new primary).
  const bool first_wins =
      first.engine->applied_timestamp() >= second.engine->applied_timestamp();
  Candidate& winner = first_wins ? first : second;
  Candidate& survivor = first_wins ? second : first;

  EngineConfig promoted_config;
  promoted_config.policy = sc.policy;
  PRINS_ASSIGN_OR_RETURN(auto new_primary,
                         winner.engine->promote(promoted_config));
  verdict.promoted_epoch = new_primary->cluster_epoch();

  // --- Durability + atomicity at the promoted volume -----------------------
  std::vector<std::size_t> last_acked(sc.hot_lbas, 0);
  const std::uint64_t acked_upto =
      std::min<std::uint64_t>(verdict.acked_watermark, by_seq.size());
  for (std::uint64_t seq = 1; seq <= acked_upto; ++seq) {
    const Ref& ref = by_seq[seq - 1];
    last_acked[ref.lba] = std::max(last_acked[ref.lba], ref.version);
  }
  verdict.durable = true;
  verdict.exact = true;
  Bytes block(sc.block_size);
  for (Lba lba = 0; lba < sc.hot_lbas; ++lba) {
    PRINS_RETURN_IF_ERROR(winner.disk->read(lba, block));
    std::size_t matched = versions[lba].size();
    for (std::size_t v = 0; v < versions[lba].size(); ++v) {
      if (versions[lba][v] == block) {
        matched = v;
        break;
      }
    }
    if (matched == versions[lba].size()) {
      verdict.exact = false;
      if (verdict.detail.empty()) {
        verdict.detail = "lba " + std::to_string(lba) +
                         " matches no written version (torn apply?)";
      }
    } else if (matched < last_acked[lba]) {
      verdict.durable = false;
      if (verdict.detail.empty()) {
        verdict.detail = "lba " + std::to_string(lba) + " holds version " +
                         std::to_string(matched) + " but version " +
                         std::to_string(last_acked[lba]) + " was acked";
      }
    }
  }

  // --- Survivor catch-up over the winner's trap log ------------------------
  auto [to_survivor, from_survivor] = make_inproc_pair();
  survivor.server =
      serve_in_thread(survivor.engine, std::move(from_survivor));
  new_primary->add_replica(std::move(to_survivor));
  PRINS_ASSIGN_OR_RETURN(verdict.survivor_resynced,
                         new_primary->resync_replica(0));

  // Fresh traffic proves the new epoch is live end to end (and hands the
  // survivor the promoted epoch to fence with).
  for (std::uint64_t i = 0; i < sc.post_failover_writes; ++i) {
    const Lba lba = rng.next_below(sc.hot_lbas);
    PRINS_RETURN_IF_ERROR(
        new_primary->write(lba, random_block(rng, sc.block_size)));
  }
  PRINS_RETURN_IF_ERROR(new_primary->drain());

  verdict.survivor_consistent = true;
  Bytes other(sc.block_size);
  for (Lba lba = 0; lba < sc.blocks; ++lba) {
    PRINS_RETURN_IF_ERROR(winner.disk->read(lba, block));
    PRINS_RETURN_IF_ERROR(survivor.disk->read(lba, other));
    if (block != other) {
      verdict.survivor_consistent = false;
      if (verdict.detail.empty()) {
        verdict.detail =
            "survivor diverged at lba " + std::to_string(lba);
      }
      break;
    }
  }

  // --- Zombie: the dead epoch comes back and must bounce off the fence -----
  {
    EngineConfig zombie_config;
    zombie_config.policy = sc.policy;  // cluster_epoch stays 0: the old world
    auto zombie_disk = std::make_shared<MemDisk>(sc.blocks, sc.block_size);
    auto zombie = std::make_unique<PrinsEngine>(zombie_disk, zombie_config);
    auto [to_z, from_z] = make_inproc_pair();
    std::thread zombie_session(
        [replica = survivor.engine,
         t = std::shared_ptr<Transport>(std::move(from_z))] {
          (void)replica->serve(*t);
        });
    zombie->add_replica(std::move(to_z));
    (void)zombie->write(0, random_block(rng, sc.block_size));
    const Status drained = zombie->drain();
    verdict.zombie_naks = zombie->metrics().stale_epoch_naks;
    verdict.zombie_fenced =
        drained.code() == ErrorCode::kFailedPrecondition &&
        verdict.zombie_naks > 0 &&
        survivor.engine->metrics().stale_epoch_naks > 0;
    if (!verdict.zombie_fenced && verdict.detail.empty()) {
      verdict.detail = "zombie was not fenced: " + drained.to_string();
    }
    zombie.reset();
    zombie_session.join();
  }

  new_primary.reset();
  survivor.server.join();
  return verdict;
}

}  // namespace prins
