// Experiment harness: wires a workload, a PRINS engine, and replica nodes
// into the measured topology of the paper's testbed, and reports the
// traffic each replication policy generates for an identical write stream.
//
// Determinism strategy: workloads are seeded, so constructing a fresh
// workload + freshly set-up volume per policy run yields byte-identical
// write streams — the moral equivalent of replaying a captured trace
// without holding gigabytes of blocks in memory.
//
// Each run finishes by verifying the replica devices are byte-identical to
// the primary, so every traffic number reported by a bench is also an
// end-to-end correctness check of the replication path.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/traffic_meter.h"
#include "prins/engine.h"
#include "prins/replica.h"
#include "workload/workload.h"

namespace prins {

/// Factory invoked once per policy run; must return a fresh, identically
/// seeded workload each time.
using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

struct PolicyRunConfig {
  ReplicationPolicy policy = ReplicationPolicy::kPrins;
  std::uint32_t block_size = 8192;
  std::uint64_t transactions = 1000;
  unsigned replicas = 1;
  bool keep_trap_log = false;
  bool verify_replicas = true;
};

struct PolicyRunResult {
  ReplicationPolicy policy;
  std::uint32_t block_size = 0;
  std::uint64_t transactions = 0;
  std::uint64_t page_writes = 0;      // workload-level writes
  TrafficStats sent;                  // summed over replica links
  EngineMetrics engine;
  bool replicas_consistent = false;
  double mean_payload_bytes = 0.0;    // per replicated block write
};

/// Run `transactions` transactions of a fresh workload under one policy.
Result<PolicyRunResult> run_policy(const WorkloadFactory& factory,
                                   const PolicyRunConfig& config);

/// The standard figure sweep: for each block size and each policy, run the
/// workload and collect results (row-major: block sizes outer).
struct SweepConfig {
  std::vector<std::uint32_t> block_sizes{4096, 8192, 16384, 32768, 65536};
  std::vector<ReplicationPolicy> policies{
      ReplicationPolicy::kTraditional,
      ReplicationPolicy::kTraditionalCompressed,
      ReplicationPolicy::kPrins,
  };
  std::uint64_t transactions = 1000;
  unsigned replicas = 1;
};

Result<std::vector<PolicyRunResult>> run_sweep(const WorkloadFactory& factory,
                                               const SweepConfig& config);

/// Render a sweep as the paper's figure table (KB transferred per policy
/// per block size, plus ratios vs traditional).
std::string format_sweep_table(const std::string& title,
                               const std::vector<PolicyRunResult>& results);

}  // namespace prins
