// SymmetricCluster: the paper's Figure 1 topology at full scale.
//
// "Each node has a computation engine and a locally attached storage
// system ... The storages of all the nodes collectively form a shared
// storage pool ... shared data are replicated in a subset of nodes,
// called replica nodes."  (§2)
//
// N nodes; node i's writes are replicated to its R ring successors
// (i+1 .. i+R mod N).  Every node therefore runs one PrinsEngine (for its
// own volume) and R ReplicaEngines (hosting other nodes' replicas), all
// joined by metered in-process links — the fixed "population" of the
// queueing model is N*R, exactly the product the paper uses.
#pragma once

#include <memory>
#include <thread>
#include <vector>

#include "block/mem_disk.h"
#include "common/rng.h"
#include "net/traffic_meter.h"
#include "prins/engine.h"
#include "prins/replica.h"

namespace prins {

struct ClusterConfig {
  unsigned nodes = 4;
  unsigned replicas_per_node = 2;  // R ring successors per node
  ReplicationPolicy policy = ReplicationPolicy::kPrins;
  std::uint32_t block_size = 8192;
  std::uint64_t blocks_per_node = 512;
  /// Bytes of each block changed per write (partial-update model).
  std::uint32_t dirty_bytes_per_write = 800;
  std::uint64_t seed = 1;
  /// Passed through to every node's EngineConfig: messages streamed per
  /// link round-trip, and whether queued same-LBA deltas XOR-fold.
  std::size_t pipeline_depth = 1;
  bool coalesce_writes = false;
};

struct ClusterReport {
  std::uint64_t total_writes = 0;      // block writes across all nodes
  TrafficStats fabric;                  // summed over every replica link
  bool all_replicas_consistent = false;
  double mean_payload_bytes = 0;        // per replicated write per link
  double elapsed_sec = 0;               // write loop + drain (not verify)
};

class SymmetricCluster {
 public:
  explicit SymmetricCluster(ClusterConfig config);
  ~SymmetricCluster();

  SymmetricCluster(const SymmetricCluster&) = delete;
  SymmetricCluster& operator=(const SymmetricCluster&) = delete;

  /// Each node performs `writes_per_node` partial-block updates on its
  /// own volume (interleaved round-robin across nodes); drains all
  /// engines; verifies every replica store against its primary.
  Result<ClusterReport> run(std::uint64_t writes_per_node);

  unsigned nodes() const { return config_.nodes; }

 private:
  struct ReplicaHost {
    std::shared_ptr<MemDisk> store;       // replica of some peer's volume
    std::shared_ptr<ReplicaEngine> engine;
    std::thread server;
  };
  struct Node {
    std::shared_ptr<MemDisk> volume;
    std::unique_ptr<PrinsEngine> engine;
    std::vector<ReplicaHost> hosted;      // replicas of peers, by peer order
    std::vector<TrafficMeter*> outgoing;  // meters on this node's links
    Rng rng{0};
  };

  ClusterConfig config_;
  std::vector<Node> nodes_;
};

}  // namespace prins
