#include "sim/experiment.h"

#include <cstdio>
#include <thread>

#include "block/mem_disk.h"
#include "net/inproc.h"
#include "workload/byte_volume.h"

namespace prins {
namespace {

/// Blocks needed to hold `bytes` at `block_size` (with a little slack so
/// RMW on the final page never falls off the end).
std::uint64_t blocks_for(std::uint64_t bytes, std::uint32_t block_size) {
  return (bytes + block_size - 1) / block_size + 1;
}

Status copy_device(BlockDevice& from, BlockDevice& to) {
  // Bulk copy in 1 MiB strides.
  const std::uint32_t bs = from.block_size();
  const std::uint64_t stride = std::max<std::uint64_t>(1, (1u << 20) / bs);
  Bytes buffer;
  for (Lba lba = 0; lba < from.num_blocks(); lba += stride) {
    const std::uint64_t n = std::min(stride, from.num_blocks() - lba);
    buffer.resize(n * bs);
    PRINS_RETURN_IF_ERROR(from.read(lba, buffer));
    PRINS_RETURN_IF_ERROR(to.write(lba, buffer));
  }
  return Status::ok();
}

Result<bool> devices_equal(BlockDevice& a, BlockDevice& b) {
  if (a.block_size() != b.block_size() || a.num_blocks() != b.num_blocks()) {
    return false;
  }
  const std::uint32_t bs = a.block_size();
  const std::uint64_t stride = std::max<std::uint64_t>(1, (1u << 20) / bs);
  Bytes buf_a, buf_b;
  for (Lba lba = 0; lba < a.num_blocks(); lba += stride) {
    const std::uint64_t n = std::min(stride, a.num_blocks() - lba);
    buf_a.resize(n * bs);
    buf_b.resize(n * bs);
    PRINS_RETURN_IF_ERROR(a.read(lba, buf_a));
    PRINS_RETURN_IF_ERROR(b.read(lba, buf_b));
    if (buf_a != buf_b) return false;
  }
  return true;
}

}  // namespace

Result<PolicyRunResult> run_policy(const WorkloadFactory& factory,
                                   const PolicyRunConfig& config) {
  auto workload = factory();
  if (workload == nullptr) return invalid_argument("factory returned null");

  const std::uint64_t blocks =
      blocks_for(workload->required_bytes(), config.block_size);
  auto primary = std::make_shared<MemDisk>(blocks, config.block_size);

  // Initial load happens on the raw device: the paper measures the
  // steady-state benchmark run, after the replicas are already in sync.
  {
    ByteVolume volume(*primary);
    PRINS_RETURN_IF_ERROR(workload->setup(volume));
  }

  // Replica nodes: device + engine + server thread over an in-proc link,
  // each link wrapped in a TrafficMeter (the measurement instrument).
  struct ReplicaNode {
    std::shared_ptr<MemDisk> disk;
    std::shared_ptr<ReplicaEngine> engine;
    std::thread server;
  };
  std::vector<ReplicaNode> nodes(config.replicas);
  std::vector<TrafficMeter*> meters;

  EngineConfig engine_config;
  engine_config.policy = config.policy;
  auto engine = std::make_unique<PrinsEngine>(primary, engine_config);

  for (auto& node : nodes) {
    node.disk = std::make_shared<MemDisk>(blocks, config.block_size);
    PRINS_RETURN_IF_ERROR(copy_device(*primary, *node.disk));  // initial sync
    ReplicaConfig replica_config;
    replica_config.keep_trap_log = config.keep_trap_log;
    node.engine = std::make_shared<ReplicaEngine>(node.disk, replica_config);

    auto [primary_end, replica_end] = make_inproc_pair();
    auto meter = std::make_unique<TrafficMeter>(std::move(primary_end));
    meters.push_back(meter.get());
    engine->add_replica(std::move(meter));
    node.server = std::thread(
        [engine = node.engine, transport = std::shared_ptr<Transport>(
                                   std::move(replica_end))] {
          (void)engine->serve(*transport);
        });
  }

  // Drive the workload through the engine.
  PolicyRunResult result;
  result.policy = config.policy;
  result.block_size = config.block_size;
  result.transactions = config.transactions;
  {
    ByteVolume volume(*engine);
    for (std::uint64_t t = 0; t < config.transactions; ++t) {
      PRINS_ASSIGN_OR_RETURN(std::uint64_t writes,
                             workload->run_transaction(volume));
      result.page_writes += writes;
    }
  }
  PRINS_RETURN_IF_ERROR(engine->drain());

  for (TrafficMeter* meter : meters) result.sent.merge(meter->sent());
  result.engine = engine->metrics();
  result.mean_payload_bytes =
      result.engine.writes == 0
          ? 0.0
          : static_cast<double>(result.engine.payload_bytes) /
                static_cast<double>(result.engine.writes);

  result.replicas_consistent = true;
  if (config.verify_replicas) {
    for (auto& node : nodes) {
      PRINS_ASSIGN_OR_RETURN(bool same, devices_equal(*primary, *node.disk));
      result.replicas_consistent = result.replicas_consistent && same;
    }
  }

  // Teardown: destroy the engine (closes links), then join servers.
  engine.reset();
  for (auto& node : nodes) {
    if (node.server.joinable()) node.server.join();
  }
  return result;
}

Result<std::vector<PolicyRunResult>> run_sweep(const WorkloadFactory& factory,
                                               const SweepConfig& config) {
  std::vector<PolicyRunResult> results;
  for (std::uint32_t block_size : config.block_sizes) {
    for (ReplicationPolicy policy : config.policies) {
      PolicyRunConfig run;
      run.policy = policy;
      run.block_size = block_size;
      run.transactions = config.transactions;
      run.replicas = config.replicas;
      PRINS_ASSIGN_OR_RETURN(PolicyRunResult result, run_policy(factory, run));
      results.push_back(std::move(result));
    }
  }
  return results;
}

std::string format_sweep_table(const std::string& title,
                               const std::vector<PolicyRunResult>& results) {
  std::string out;
  char line[256];
  out += title + "\n";
  std::snprintf(line, sizeof line, "%-10s %-15s %14s %12s %10s %8s\n",
                "block", "policy", "KB sent", "KB/write", "vs trad",
                "ok");
  out += line;

  double traditional_kb = 0;
  for (const auto& r : results) {
    const double kb = static_cast<double>(r.sent.payload_bytes) / 1024.0;
    if (r.policy == ReplicationPolicy::kTraditional) traditional_kb = kb;
    const double ratio = kb > 0 ? traditional_kb / kb : 0.0;
    const double per_write =
        r.engine.writes > 0
            ? kb / static_cast<double>(r.engine.writes)
            : 0.0;
    std::snprintf(line, sizeof line, "%-10u %-15s %14.1f %12.3f %9.1fx %8s\n",
                  r.block_size, std::string(policy_name(r.policy)).c_str(), kb,
                  per_write, ratio, r.replicas_consistent ? "yes" : "NO");
    out += line;
  }
  return out;
}

}  // namespace prins
