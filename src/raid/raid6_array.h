// Raid6Array: dual-parity (P+Q) software RAID over member BlockDevices.
//
// The paper's opening line places PRINS among systems that use "replicas
// or erasure code"; RAID-6 is the erasure-coded substrate.  Each stripe
// stores
//   P = ⊕ D_i            and        Q = ⊕ g^i · D_i   (GF(2^8), g = 2)
// on two rotating parity members, surviving the loss of ANY two members.
//
// The PRINS small-write property carries over: updating block D_s costs
//   delta = D_new ⊕ D_old
//   P_new = P_old ⊕ delta
//   Q_new = Q_old ⊕ g^s · delta
// so the write parity P' (== delta) is still computed for free, and the
// same ParityObserver tap feeds the PRINS engine.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "block/block_device.h"
#include "raid/raid_array.h"  // ParityObserver

namespace prins {

class Raid6Array final : public BlockDevice {
 public:
  /// Requires >= 4 members with identical geometry.
  static Result<std::unique_ptr<Raid6Array>> create(
      std::vector<std::shared_ptr<BlockDevice>> members);

  std::uint32_t block_size() const override { return block_size_; }
  std::uint64_t num_blocks() const override { return logical_blocks_; }

  Status read(Lba lba, MutByteSpan out) override;
  Status write(Lba lba, ByteSpan data) override;
  Status flush() override;
  std::string describe() const override;

  void set_parity_observer(ParityObserver observer);

  unsigned num_members() const { return num_disks_; }
  unsigned data_disks() const { return num_disks_ - 2; }

  /// Member indices holding P and Q for `stripe` (rotating).
  unsigned p_disk_of(std::uint64_t stripe) const;
  unsigned q_disk_of(std::uint64_t stripe) const;

  /// Rebuild the full contents of up to two replaced members from the
  /// survivors.
  Status rebuild_members(const std::vector<unsigned>& disks);

  /// Verify P and Q of every stripe; returns the count of bad stripes.
  Result<std::uint64_t> scrub();

  /// Overwrite logical block `lba` on its data member with the contents
  /// reconstructed from the other stripe members, returning them in `out`.
  /// Never reads the (corrupt) old data and leaves P/Q untouched — the
  /// repair path for a block whose stored copy failed its checksum.
  Status repair_block(Lba lba, MutByteSpan out);

 private:
  explicit Raid6Array(std::vector<std::shared_ptr<BlockDevice>> members);

  struct Location {
    std::uint64_t stripe;
    unsigned disk;      // member holding the data block
    unsigned slot;      // data index within the stripe: coefficient g^slot
    unsigned p_disk;
    unsigned q_disk;
  };
  Location locate(Lba lba) const;
  unsigned disk_of_slot(std::uint64_t stripe, unsigned slot) const;
  unsigned slot_of_disk(std::uint64_t stripe, unsigned disk) const;

  Status write_block(Lba lba, ByteSpan block);
  Status read_block(Lba lba, MutByteSpan out);

  /// Recover the contents `failed` members would hold in `stripe`, given
  /// every other member is readable.  `failed` has size 1 or 2; outputs
  /// are written to `out[i]` for failed[i].
  Status reconstruct(std::uint64_t stripe, const std::vector<unsigned>& failed,
                     std::vector<Bytes>& out);

  std::vector<std::shared_ptr<BlockDevice>> members_;
  unsigned num_disks_;
  std::uint32_t block_size_;
  std::uint64_t member_blocks_;
  std::uint64_t logical_blocks_;
  std::mutex mutex_;
  ParityObserver observer_;
};

}  // namespace prins
