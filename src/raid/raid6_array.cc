#include "raid/raid6_array.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "parity/gf256.h"
#include "parity/xor.h"

namespace prins {

Result<std::unique_ptr<Raid6Array>> Raid6Array::create(
    std::vector<std::shared_ptr<BlockDevice>> members) {
  if (members.size() < 4) {
    return invalid_argument("RAID-6 needs at least 4 members, got " +
                            std::to_string(members.size()));
  }
  for (const auto& m : members) {
    if (m == nullptr) return invalid_argument("null member device");
    if (m->block_size() != members[0]->block_size() ||
        m->num_blocks() != members[0]->num_blocks()) {
      return invalid_argument("member geometries differ");
    }
  }
  return std::unique_ptr<Raid6Array>(new Raid6Array(std::move(members)));
}

Raid6Array::Raid6Array(std::vector<std::shared_ptr<BlockDevice>> members)
    : members_(std::move(members)),
      num_disks_(static_cast<unsigned>(members_.size())),
      block_size_(members_[0]->block_size()),
      member_blocks_(members_[0]->num_blocks()),
      logical_blocks_(member_blocks_ * (num_disks_ - 2)) {}

unsigned Raid6Array::p_disk_of(std::uint64_t stripe) const {
  // P rotates right-to-left like RAID-5 left-symmetric; Q sits just after.
  return static_cast<unsigned>((num_disks_ - 1) - (stripe % num_disks_));
}

unsigned Raid6Array::q_disk_of(std::uint64_t stripe) const {
  return (p_disk_of(stripe) + 1) % num_disks_;
}

unsigned Raid6Array::disk_of_slot(std::uint64_t stripe, unsigned slot) const {
  assert(slot < data_disks());
  // Data disks start after Q and wrap, skipping P and Q.
  return (q_disk_of(stripe) + 1 + slot) % num_disks_;
}

unsigned Raid6Array::slot_of_disk(std::uint64_t stripe, unsigned disk) const {
  const unsigned q = q_disk_of(stripe);
  assert(disk != p_disk_of(stripe) && disk != q);
  return (disk + num_disks_ - (q + 1) % num_disks_) % num_disks_;
}

Raid6Array::Location Raid6Array::locate(Lba lba) const {
  Location loc{};
  loc.stripe = lba / data_disks();
  loc.slot = static_cast<unsigned>(lba % data_disks());
  loc.p_disk = p_disk_of(loc.stripe);
  loc.q_disk = q_disk_of(loc.stripe);
  loc.disk = disk_of_slot(loc.stripe, loc.slot);
  return loc;
}

Status Raid6Array::read(Lba lba, MutByteSpan out) {
  PRINS_RETURN_IF_ERROR(check_io(lba, out.size()));
  const std::uint64_t blocks = out.size() / block_size_;
  for (std::uint64_t i = 0; i < blocks; ++i) {
    PRINS_RETURN_IF_ERROR(
        read_block(lba + i, out.subspan(i * block_size_, block_size_)));
  }
  return Status::ok();
}

Status Raid6Array::write(Lba lba, ByteSpan data) {
  PRINS_RETURN_IF_ERROR(check_io(lba, data.size()));
  const std::uint64_t blocks = data.size() / block_size_;
  for (std::uint64_t i = 0; i < blocks; ++i) {
    PRINS_RETURN_IF_ERROR(
        write_block(lba + i, data.subspan(i * block_size_, block_size_)));
  }
  return Status::ok();
}

Status Raid6Array::write_block(Lba lba, ByteSpan block) {
  const Location loc = locate(lba);
  std::lock_guard lock(mutex_);

  Bytes old_data(block_size_);
  PRINS_RETURN_IF_ERROR(members_[loc.disk]->read(loc.stripe, old_data));
  Bytes old_p(block_size_);
  PRINS_RETURN_IF_ERROR(members_[loc.p_disk]->read(loc.stripe, old_p));
  Bytes old_q(block_size_);
  PRINS_RETURN_IF_ERROR(members_[loc.q_disk]->read(loc.stripe, old_q));

  Bytes delta(block_size_);  // Δ = new ⊕ old, dirty count fused in
  const std::size_t dirty = xor_to_and_count(delta, block, old_data);
  xor_into(old_p, delta);                               // P' = P ⊕ Δ
  gf_mul_xor_into(old_q, gf_pow2(loc.slot), delta);     // Q' = Q ⊕ g^s·Δ

  PRINS_RETURN_IF_ERROR(members_[loc.disk]->write(loc.stripe, block));
  PRINS_RETURN_IF_ERROR(members_[loc.p_disk]->write(loc.stripe, old_p));
  PRINS_RETURN_IF_ERROR(members_[loc.q_disk]->write(loc.stripe, old_q));

  if (observer_) observer_(lba, delta, dirty);
  return Status::ok();
}

Status Raid6Array::read_block(Lba lba, MutByteSpan out) {
  const Location loc = locate(lba);
  std::lock_guard lock(mutex_);
  Status direct = members_[loc.disk]->read(loc.stripe, out);
  if (direct.is_ok()) return direct;

  // Degraded path: probe every member to find the (<= 2) failed set.
  std::vector<unsigned> failed;
  Bytes probe(block_size_);
  for (unsigned m = 0; m < num_disks_; ++m) {
    if (!members_[m]->read(loc.stripe, probe).is_ok()) failed.push_back(m);
  }
  if (failed.empty()) {
    // Transient error; retry once.
    return members_[loc.disk]->read(loc.stripe, out);
  }
  if (failed.size() > 2) {
    return corruption_error("RAID-6 stripe lost " +
                            std::to_string(failed.size()) +
                            " members; unrecoverable");
  }
  std::vector<Bytes> recovered;
  PRINS_RETURN_IF_ERROR(reconstruct(loc.stripe, failed, recovered));
  for (std::size_t i = 0; i < failed.size(); ++i) {
    if (failed[i] == loc.disk) {
      std::memcpy(out.data(), recovered[i].data(), out.size());
      return Status::ok();
    }
  }
  // Our member wasn't in the failed set after all (flaky read): retry.
  return members_[loc.disk]->read(loc.stripe, out);
}

Status Raid6Array::reconstruct(std::uint64_t stripe,
                               const std::vector<unsigned>& failed,
                               std::vector<Bytes>& out) {
  assert(!failed.empty() && failed.size() <= 2);
  const unsigned p_disk = p_disk_of(stripe);
  const unsigned q_disk = q_disk_of(stripe);
  auto is_failed = [&](unsigned d) {
    return std::find(failed.begin(), failed.end(), d) != failed.end();
  };

  // Partial syndromes over the *surviving* data members.
  Bytes p_partial(block_size_, 0);
  Bytes q_partial(block_size_, 0);
  Bytes buffer(block_size_);
  for (unsigned slot = 0; slot < data_disks(); ++slot) {
    const unsigned disk = disk_of_slot(stripe, slot);
    if (is_failed(disk)) continue;
    PRINS_RETURN_IF_ERROR(members_[disk]->read(stripe, buffer));
    xor_into(p_partial, buffer);
    gf_mul_xor_into(q_partial, gf_pow2(slot), buffer);
  }

  Bytes p(block_size_, 0), q(block_size_, 0);
  if (!is_failed(p_disk)) {
    PRINS_RETURN_IF_ERROR(members_[p_disk]->read(stripe, p));
  }
  if (!is_failed(q_disk)) {
    PRINS_RETURN_IF_ERROR(members_[q_disk]->read(stripe, q));
  }

  // Failed data slots, ascending.
  std::vector<unsigned> lost_slots;
  for (unsigned d : failed) {
    if (d != p_disk && d != q_disk) lost_slots.push_back(slot_of_disk(stripe, d));
  }
  std::sort(lost_slots.begin(), lost_slots.end());

  // Solve for the lost data blocks.
  std::vector<Bytes> data_out(lost_slots.size(), Bytes(block_size_, 0));
  const bool p_lost = is_failed(p_disk);

  if (lost_slots.size() == 1) {
    Bytes& d = data_out[0];
    const unsigned s = lost_slots[0];
    if (!p_lost) {
      // D = P ⊕ p_partial
      d = p;
      xor_into(d, p_partial);
    } else {
      // P also lost: D = (Q ⊕ q_partial) / g^s
      d = q;
      xor_into(d, q_partial);
      gf_scale(d, gf_inv(gf_pow2(s)));
    }
  } else if (lost_slots.size() == 2) {
    // Two data blocks lost (P and Q both present).
    //   Pxy = P ⊕ p_partial = D_a ⊕ D_b
    //   Qxy = Q ⊕ q_partial = g^a·D_a ⊕ g^b·D_b
    //   D_a = (Qxy ⊕ g^b·Pxy) / (g^a ⊕ g^b);  D_b = Pxy ⊕ D_a
    const unsigned a = lost_slots[0], b = lost_slots[1];
    Bytes pxy = p;
    xor_into(pxy, p_partial);
    Bytes qxy = q;
    xor_into(qxy, q_partial);
    Bytes& da = data_out[0];
    da = qxy;
    gf_mul_xor_into(da, gf_pow2(b), pxy);
    const std::uint8_t denom =
        static_cast<std::uint8_t>(gf_pow2(a) ^ gf_pow2(b));
    gf_scale(da, gf_inv(denom));
    Bytes& db = data_out[1];
    db = pxy;
    xor_into(db, da);
  }

  // Recompute lost parity from the now-complete data set.
  Bytes full_p = p_partial;
  Bytes full_q = q_partial;
  for (std::size_t i = 0; i < lost_slots.size(); ++i) {
    xor_into(full_p, data_out[i]);
    gf_mul_xor_into(full_q, gf_pow2(lost_slots[i]), data_out[i]);
  }

  // Emit outputs in the order of `failed`.
  out.clear();
  for (unsigned d : failed) {
    if (d == p_disk) {
      out.push_back(full_p);
    } else if (d == q_disk) {
      out.push_back(full_q);
    } else {
      const unsigned s = slot_of_disk(stripe, d);
      for (std::size_t i = 0; i < lost_slots.size(); ++i) {
        if (lost_slots[i] == s) {
          out.push_back(data_out[i]);
          break;
        }
      }
    }
  }
  return Status::ok();
}

Status Raid6Array::repair_block(Lba lba, MutByteSpan out) {
  PRINS_RETURN_IF_ERROR(check_io(lba, out.size()));
  if (out.size() != block_size_) {
    return invalid_argument("repair_block takes exactly one block");
  }
  const Location loc = locate(lba);
  std::lock_guard lock(mutex_);
  std::vector<Bytes> recovered;
  PRINS_RETURN_IF_ERROR(reconstruct(loc.stripe, {loc.disk}, recovered));
  std::memcpy(out.data(), recovered[0].data(), out.size());
  return members_[loc.disk]->write(loc.stripe, recovered[0]);
}

Status Raid6Array::rebuild_members(const std::vector<unsigned>& disks) {
  if (disks.empty() || disks.size() > 2) {
    return invalid_argument("RAID-6 rebuilds 1 or 2 members at a time");
  }
  for (unsigned d : disks) {
    if (d >= num_disks_) {
      return invalid_argument("no such member: " + std::to_string(d));
    }
  }
  std::lock_guard lock(mutex_);
  std::vector<Bytes> recovered;
  for (std::uint64_t stripe = 0; stripe < member_blocks_; ++stripe) {
    PRINS_RETURN_IF_ERROR(reconstruct(stripe, disks, recovered));
    for (std::size_t i = 0; i < disks.size(); ++i) {
      PRINS_RETURN_IF_ERROR(members_[disks[i]]->write(stripe, recovered[i]));
    }
  }
  return Status::ok();
}

Result<std::uint64_t> Raid6Array::scrub() {
  std::lock_guard lock(mutex_);
  std::uint64_t bad = 0;
  Bytes p_acc(block_size_), q_acc(block_size_), buffer(block_size_);
  for (std::uint64_t stripe = 0; stripe < member_blocks_; ++stripe) {
    std::fill(p_acc.begin(), p_acc.end(), Byte{0});
    std::fill(q_acc.begin(), q_acc.end(), Byte{0});
    for (unsigned slot = 0; slot < data_disks(); ++slot) {
      PRINS_RETURN_IF_ERROR(
          members_[disk_of_slot(stripe, slot)]->read(stripe, buffer));
      xor_into(p_acc, buffer);
      gf_mul_xor_into(q_acc, gf_pow2(slot), buffer);
    }
    PRINS_RETURN_IF_ERROR(members_[p_disk_of(stripe)]->read(stripe, buffer));
    xor_into(p_acc, buffer);
    PRINS_RETURN_IF_ERROR(members_[q_disk_of(stripe)]->read(stripe, buffer));
    xor_into(q_acc, buffer);
    if (!all_zero(p_acc) || !all_zero(q_acc)) ++bad;
  }
  return bad;
}

Status Raid6Array::flush() {
  for (auto& m : members_) PRINS_RETURN_IF_ERROR(m->flush());
  return Status::ok();
}

void Raid6Array::set_parity_observer(ParityObserver observer) {
  std::lock_guard lock(mutex_);
  observer_ = std::move(observer);
}

std::string Raid6Array::describe() const {
  return "raid6(" + std::to_string(num_disks_) + " members, " +
         std::to_string(logical_blocks_) + "x" + std::to_string(block_size_) +
         ")";
}

}  // namespace prins
