#include "raid/raid_array.h"

#include <cassert>
#include <cstring>

#include "parity/xor.h"

namespace prins {

Result<std::unique_ptr<RaidArray>> RaidArray::create(
    RaidLevel level, std::vector<std::shared_ptr<BlockDevice>> members) {
  const unsigned min_members = level == RaidLevel::kRaid0 ? 2 : 3;
  if (members.size() < min_members) {
    return invalid_argument("RAID level needs at least " +
                            std::to_string(min_members) + " members, got " +
                            std::to_string(members.size()));
  }
  for (const auto& m : members) {
    if (m == nullptr) return invalid_argument("null member device");
    if (m->block_size() != members[0]->block_size() ||
        m->num_blocks() != members[0]->num_blocks()) {
      return invalid_argument("member geometries differ: " + m->describe() +
                              " vs " + members[0]->describe());
    }
  }
  return std::unique_ptr<RaidArray>(new RaidArray(level, std::move(members)));
}

RaidArray::RaidArray(RaidLevel level,
                     std::vector<std::shared_ptr<BlockDevice>> members)
    : geometry_(level, static_cast<unsigned>(members.size())),
      members_(std::move(members)),
      block_size_(members_[0]->block_size()),
      member_blocks_(members_[0]->num_blocks()),
      logical_blocks_(member_blocks_ * geometry_.data_disks()) {}

void RaidArray::set_parity_observer(ParityObserver observer) {
  std::lock_guard lock(mutex_);
  observer_ = std::move(observer);
}

Status RaidArray::read(Lba lba, MutByteSpan out) {
  PRINS_RETURN_IF_ERROR(check_io(lba, out.size()));
  const std::uint64_t blocks = out.size() / block_size_;
  for (std::uint64_t i = 0; i < blocks; ++i) {
    PRINS_RETURN_IF_ERROR(
        read_block(lba + i, out.subspan(i * block_size_, block_size_)));
  }
  return Status::ok();
}

Status RaidArray::write(Lba lba, ByteSpan data) {
  PRINS_RETURN_IF_ERROR(check_io(lba, data.size()));
  const std::uint64_t blocks = data.size() / block_size_;
  for (std::uint64_t i = 0; i < blocks; ++i) {
    PRINS_RETURN_IF_ERROR(
        write_block(lba + i, data.subspan(i * block_size_, block_size_)));
  }
  return Status::ok();
}

Status RaidArray::read_block(Lba lba, MutByteSpan out) {
  const StripeLocation loc = geometry_.locate(lba);
  std::lock_guard lock(mutex_);
  Status s = members_[loc.data_disk]->read(loc.member_block, out);
  if (s.is_ok()) return s;
  if (geometry_.level() == RaidLevel::kRaid0) return s;  // nothing to rebuild from
  // Degraded mode: reconstruct from the surviving members of the stripe.
  Status rebuilt = reconstruct(loc.stripe, loc.data_disk, out);
  if (!rebuilt.is_ok()) {
    // More than one member gone: the block is unrecoverable from this
    // array, which callers should treat as "repair elsewhere", not "retry".
    return corruption_error("block " + std::to_string(lba) +
                            " unrecoverable: " + rebuilt.message());
  }
  return rebuilt;
}

Status RaidArray::repair_block(Lba lba, MutByteSpan out) {
  if (geometry_.level() == RaidLevel::kRaid0) {
    return failed_precondition("RAID-0 has no redundancy to repair from");
  }
  PRINS_RETURN_IF_ERROR(check_io(lba, out.size()));
  if (out.size() != block_size_) {
    return invalid_argument("repair_block takes exactly one block");
  }
  const StripeLocation loc = geometry_.locate(lba);
  std::lock_guard lock(mutex_);
  PRINS_RETURN_IF_ERROR(reconstruct(loc.stripe, loc.data_disk, out));
  return members_[loc.data_disk]->write(loc.member_block, out);
}

Status RaidArray::write_block(Lba lba, ByteSpan block) {
  const StripeLocation loc = geometry_.locate(lba);
  std::lock_guard lock(mutex_);

  if (geometry_.level() == RaidLevel::kRaid0) {
    return members_[loc.data_disk]->write(loc.member_block, block);
  }

  // RAID-4/5 small-write: read old data + old parity, derive both the write
  // parity P' and the new stripe parity, then write data + parity.
  Bytes old_data(block_size_);
  PRINS_RETURN_IF_ERROR(
      members_[loc.data_disk]->read(loc.member_block, old_data));
  Bytes old_parity(block_size_);
  PRINS_RETURN_IF_ERROR(
      members_[loc.parity_disk]->read(loc.member_block, old_parity));

  Bytes delta(block_size_);  // P' = new ⊕ old, dirty count fused in
  const std::size_t dirty = xor_to_and_count(delta, block, old_data);
  Bytes new_parity(block_size_);
  xor_to(new_parity, delta, old_parity);  // Pnew = P' ⊕ Pold

  PRINS_RETURN_IF_ERROR(members_[loc.data_disk]->write(loc.member_block, block));
  PRINS_RETURN_IF_ERROR(
      members_[loc.parity_disk]->write(loc.member_block, new_parity));

  if (observer_) observer_(lba, delta, dirty);
  return Status::ok();
}

Status RaidArray::reconstruct(std::uint64_t stripe, unsigned disk,
                              MutByteSpan out) {
  assert(out.size() == block_size_);
  std::memset(out.data(), 0, out.size());
  Bytes tmp(block_size_);
  for (unsigned m = 0; m < geometry_.num_disks(); ++m) {
    if (m == disk) continue;
    PRINS_RETURN_IF_ERROR(members_[m]->read(stripe, tmp));
    xor_into(out, tmp);
  }
  return Status::ok();
}

Status RaidArray::rebuild_member(unsigned disk) {
  if (geometry_.level() == RaidLevel::kRaid0) {
    return failed_precondition("RAID-0 has no redundancy to rebuild from");
  }
  if (disk >= geometry_.num_disks()) {
    return invalid_argument("no such member: " + std::to_string(disk));
  }
  std::lock_guard lock(mutex_);
  Bytes block(block_size_);
  for (std::uint64_t stripe = 0; stripe < member_blocks_; ++stripe) {
    PRINS_RETURN_IF_ERROR(reconstruct(stripe, disk, block));
    PRINS_RETURN_IF_ERROR(members_[disk]->write(stripe, block));
  }
  return Status::ok();
}

Result<std::uint64_t> RaidArray::scrub() {
  if (geometry_.level() == RaidLevel::kRaid0) return std::uint64_t{0};
  std::lock_guard lock(mutex_);
  std::uint64_t bad = 0;
  Bytes acc(block_size_);
  Bytes tmp(block_size_);
  for (std::uint64_t stripe = 0; stripe < member_blocks_; ++stripe) {
    std::memset(acc.data(), 0, acc.size());
    for (unsigned m = 0; m < geometry_.num_disks(); ++m) {
      PRINS_RETURN_IF_ERROR(members_[m]->read(stripe, tmp));
      xor_into(acc, tmp);
    }
    if (!all_zero(acc)) ++bad;  // XOR of data blocks + parity must be zero
  }
  return bad;
}

Status RaidArray::flush() {
  for (auto& m : members_) PRINS_RETURN_IF_ERROR(m->flush());
  return Status::ok();
}

std::string RaidArray::describe() const {
  const char* name = geometry_.level() == RaidLevel::kRaid0   ? "raid0"
                     : geometry_.level() == RaidLevel::kRaid4 ? "raid4"
                                                              : "raid5";
  return std::string(name) + "(" + std::to_string(geometry_.num_disks()) +
         " members, " + std::to_string(logical_blocks_) + "x" +
         std::to_string(block_size_) + ")";
}

}  // namespace prins
