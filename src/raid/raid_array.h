// RaidArray: software RAID-0/4/5 over member BlockDevices.
//
// This is the substrate the paper leans on: RAID-4/5 small writes must
// compute P' = A_new ⊕ A_old to update the parity disk (Pnew = P' ⊕ Pold),
// so replicating P' costs no extra computation at the primary.  The array
// exposes that delta through a ParityObserver — the "PRINS tap".
//
// Also implements degraded reads (reconstruct a lost block by XOR-ing the
// surviving stripe members) and full-member rebuild, so the reliability
// story of the substrate is real, not decorative.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "block/block_device.h"
#include "parity/stripe.h"

namespace prins {

/// Called after every single-block write with the logical LBA, the write
/// parity P' = new ⊕ old, and P's non-zero byte count (computed by the
/// fused XOR kernel during the small-write path, so observers never need a
/// second scan).  Invoked with the array lock held; keep it short (PRINS
/// enqueues onto its replication queue).
using ParityObserver =
    std::function<void(Lba lba, ByteSpan parity_delta, std::size_t dirty)>;

class RaidArray final : public BlockDevice {
 public:
  /// All members must share block size and block count.
  /// RAID-0 needs >= 2 members; RAID-4/5 need >= 3.
  static Result<std::unique_ptr<RaidArray>> create(
      RaidLevel level, std::vector<std::shared_ptr<BlockDevice>> members);

  std::uint32_t block_size() const override { return block_size_; }
  std::uint64_t num_blocks() const override { return logical_blocks_; }

  Status read(Lba lba, MutByteSpan out) override;
  Status write(Lba lba, ByteSpan data) override;
  Status flush() override;
  std::string describe() const override;

  /// Install (or clear, with nullptr) the PRINS parity tap.
  void set_parity_observer(ParityObserver observer);

  RaidLevel level() const { return geometry_.level(); }
  unsigned num_members() const { return geometry_.num_disks(); }

  /// Rebuild the entire contents of member `disk` from the other members
  /// (data blocks and parity blocks alike).  Used after replacing a failed
  /// device.  RAID-0 cannot rebuild.
  Status rebuild_member(unsigned disk);

  /// Recompute and verify parity of every stripe; returns the number of
  /// inconsistent stripes found (0 == clean).  RAID-0 always returns 0.
  Result<std::uint64_t> scrub();

  /// Overwrite logical block `lba` on its data member with the contents
  /// reconstructed from the other stripe members, and return those contents
  /// in `out`.  Unlike write(), this never reads the (corrupt) old data and
  /// leaves parity untouched — the repair path for a block whose stored
  /// copy failed its checksum.  RAID-0 cannot repair.
  Status repair_block(Lba lba, MutByteSpan out);

 private:
  RaidArray(RaidLevel level,
            std::vector<std::shared_ptr<BlockDevice>> members);

  /// One-block write implementing the read-modify-write small-write path.
  Status write_block(Lba lba, ByteSpan block);
  /// One-block read with degraded-mode reconstruction on member failure.
  Status read_block(Lba lba, MutByteSpan out);

  /// Reconstruct the block held by `disk` in `stripe` by XOR of all other
  /// members' blocks in that stripe.
  Status reconstruct(std::uint64_t stripe, unsigned disk, MutByteSpan out);

  StripeGeometry geometry_;
  std::vector<std::shared_ptr<BlockDevice>> members_;
  std::uint32_t block_size_;
  std::uint64_t member_blocks_;
  std::uint64_t logical_blocks_;
  std::mutex mutex_;  // serializes stripe read-modify-write cycles
  ParityObserver observer_;
};

}  // namespace prins
