// Tpcw: a TPC-W-shaped web-commerce traffic generator.
//
// Models the on-line bookstore: an ITEM catalogue (10,000 items by
// default, as in the paper's configuration), customers, shopping carts
// (one per emulated browser), orders and credit-card transactions.  The
// interaction mix is browse-heavy — most requests only read item pages —
// so the absolute write traffic is far below TPC-C, matching the paper's
// Figure 6 magnitudes (tens of MB per hour rather than GB).
//
// Write-bearing interactions: shopping-cart updates (small in-place field
// changes), buy-confirm (order + order-line + CC inserts, item stock
// updates, cart reset), and occasional customer registration updates.
#pragma once

#include <map>

#include "common/rng.h"
#include "workload/db_page.h"
#include "workload/workload.h"

namespace prins {

struct TpcwConfig {
  DbProfile profile = mysql_profile();
  unsigned items = 10000;
  unsigned customers = 1000;
  unsigned emulated_browsers = 30;
  std::uint64_t seed = 20060202;
  std::uint64_t order_capacity = 100000;
  /// Buffer-pool checkpoint interval, in interactions (see TpccConfig).
  unsigned flush_interval = 64;
};

class Tpcw final : public Workload {
 public:
  explicit Tpcw(TpcwConfig config);

  std::string_view name() const override { return "tpcw"; }
  std::uint64_t required_bytes() const override;
  Status setup(ByteVolume& volume) override;
  Result<std::uint64_t> run_transaction(ByteVolume& volume) override;

 private:
  struct Table {
    std::uint64_t base = 0;
    std::uint64_t pages = 0;
    std::uint64_t rows = 0;
    std::uint32_t row_size = 0;
    std::uint32_t rows_per_page = 0;
  };
  struct AppendRegion {
    std::uint64_t base = 0;
    std::uint64_t pages = 0;
    std::uint64_t cursor_page = 0;
  };

  void layout();
  Status load_table(ByteVolume& volume, Table& table);
  Status fetch_row_page(ByteVolume& volume, const Table& table,
                        std::uint64_t row,
                        std::map<std::uint64_t, Bytes>& dirty,
                        std::uint64_t& page_off, std::uint16_t& slot);
  Status append_row(ByteVolume& volume, AppendRegion& region, ByteSpan row,
                    std::map<std::uint64_t, Bytes>& dirty);

  Status ix_browse(ByteVolume& volume);
  Status ix_cart_update(ByteVolume& volume,
                        std::map<std::uint64_t, Bytes>& dirty);
  Status ix_buy_confirm(ByteVolume& volume,
                        std::map<std::uint64_t, Bytes>& dirty);
  Status ix_register(ByteVolume& volume,
                     std::map<std::uint64_t, Bytes>& dirty);

  TpcwConfig config_;
  Rng rng_;
  std::uint32_t page_size_;
  Zipf item_skew_;

  Table item_, customer_, cart_;
  AppendRegion orders_, order_lines_, cc_xacts_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t next_order_id_ = 1;

  // Buffer pool (see Tpcc): dirty pages held across interactions.
  std::map<std::uint64_t, Bytes> pool_;
  unsigned since_flush_ = 0;
};

}  // namespace prins
