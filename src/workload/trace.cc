#include "workload/trace.h"

#include <algorithm>
#include <cstdio>

#include "common/crc32c.h"
#include "common/endian.h"
#include "common/varint.h"

namespace prins {
namespace {

constexpr Byte kMagic[4] = {'P', 'R', 't', 'r'};

}  // namespace

Status WriteTrace::replay(BlockDevice& device) const {
  std::lock_guard lock(mutex_);
  for (const TraceEntry& entry : entries_) {
    PRINS_RETURN_IF_ERROR(device.write(entry.lba, entry.data));
  }
  return Status::ok();
}

Status WriteTrace::save(const std::string& path) const {
  Bytes out;
  {
    std::lock_guard lock(mutex_);
    append(out, kMagic);
    put_varint(out, entries_.size());
    for (const TraceEntry& entry : entries_) {
      put_varint(out, entry.lba);
      put_varint(out, entry.data.size());
      append(out, entry.data);
    }
  }
  append_le32(out, crc32c(out));

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return io_error("fopen(" + path + ") for writing");
  const std::size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != out.size() || !flushed) {
    return io_error("short write saving trace to " + path);
  }
  return Status::ok();
}

Status WriteTrace::load_from(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return not_found("trace file: " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 8) {
    std::fclose(f);
    return corruption("trace file too small: " + path);
  }
  Bytes in(static_cast<std::size_t>(size));
  const std::size_t read = std::fread(in.data(), 1, in.size(), f);
  std::fclose(f);
  if (read != in.size()) return io_error("short read loading " + path);

  const std::uint32_t want = load_le32(ByteSpan(in).subspan(in.size() - 4));
  if (crc32c(ByteSpan(in).first(in.size() - 4)) != want) {
    return corruption("trace checksum mismatch: " + path);
  }
  if (!std::equal(std::begin(kMagic), std::end(kMagic), in.begin())) {
    return corruption("bad trace magic: " + path);
  }

  std::size_t pos = 4;
  auto count = get_varint(in, pos);
  if (!count) return corruption("trace: truncated entry count");
  std::vector<TraceEntry> loaded;
  loaded.reserve(*count);
  std::uint64_t bytes = 0;
  const std::size_t payload_end = in.size() - 4;
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto lba = get_varint(in, pos);
    auto len = get_varint(in, pos);
    if (!lba || !len || *len > payload_end - pos) {
      return corruption("trace: truncated entry " + std::to_string(i));
    }
    loaded.push_back(
        TraceEntry{*lba, to_bytes(ByteSpan(in).subspan(pos, *len))});
    bytes += *len;
    pos += *len;
  }
  if (pos != payload_end) {
    return corruption("trace: trailing garbage");
  }

  std::lock_guard lock(mutex_);
  for (auto& entry : loaded) entries_.push_back(std::move(entry));
  bytes_ += bytes;
  return Status::ok();
}

}  // namespace prins
