#include "workload/tpcw.h"

#include "common/endian.h"
#include "workload/text.h"

namespace prins {
namespace {

constexpr std::uint32_t kItemRow = 400;      // title/author/desc + stock/cost
constexpr std::uint32_t kCustomerRow = 300;
constexpr std::uint32_t kCartRow = 200;      // per-browser cart lines
constexpr std::uint32_t kOrderRow = 48;
constexpr std::uint32_t kOrderLineRow = 80;
constexpr std::uint32_t kCcXactRow = 60;

std::uint32_t rows_per_page(std::uint32_t page_size, std::uint32_t row_size) {
  return (page_size - DbPage::kHeaderSize) / (row_size + 4);
}

}  // namespace

Tpcw::Tpcw(TpcwConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      page_size_(config_.profile.page_size),
      item_skew_(config_.items, 0.9) {
  layout();
}

void Tpcw::layout() {
  auto place_table = [&](Table& table, std::uint64_t rows,
                         std::uint32_t row_size) {
    table.rows = rows;
    table.row_size = row_size;
    table.rows_per_page = rows_per_page(page_size_, row_size);
    table.pages = (rows + table.rows_per_page - 1) / table.rows_per_page;
    table.base = total_bytes_;
    total_bytes_ += table.pages * page_size_;
  };
  place_table(item_, config_.items, kItemRow);
  place_table(customer_, config_.customers, kCustomerRow);
  place_table(cart_, config_.emulated_browsers, kCartRow);

  auto place_append = [&](AppendRegion& region, std::uint64_t rows,
                          std::uint32_t row_size) {
    const std::uint32_t rpp = rows_per_page(page_size_, row_size);
    region.pages = (rows + rpp - 1) / rpp;
    region.base = total_bytes_;
    total_bytes_ += region.pages * page_size_;
  };
  place_append(orders_, config_.order_capacity, kOrderRow);
  place_append(order_lines_, config_.order_capacity * 3, kOrderLineRow);
  place_append(cc_xacts_, config_.order_capacity, kCcXactRow);
}

std::uint64_t Tpcw::required_bytes() const { return total_bytes_; }

Status Tpcw::load_table(ByteVolume& volume, Table& table) {
  Bytes page(page_size_);
  std::uint64_t row = 0;
  for (std::uint64_t p = 0; p < table.pages; ++p) {
    DbPage::format(page, p);
    DbPage view{page};
    for (std::uint32_t s = 0; s < table.rows_per_page && row < table.rows;
         ++s, ++row) {
      Bytes payload = make_row(rng_, config_.profile, table.row_size);
      PRINS_RETURN_IF_ERROR(view.insert_row(payload).status());
    }
    PRINS_RETURN_IF_ERROR(volume.write(table.base + p * page_size_, page));
  }
  return Status::ok();
}

Status Tpcw::setup(ByteVolume& volume) {
  PRINS_RETURN_IF_ERROR(load_table(volume, item_));
  PRINS_RETURN_IF_ERROR(load_table(volume, customer_));
  PRINS_RETURN_IF_ERROR(load_table(volume, cart_));
  Bytes page(page_size_);
  for (AppendRegion* region : {&orders_, &order_lines_, &cc_xacts_}) {
    for (std::uint64_t p = 0; p < region->pages; ++p) {
      DbPage::format(page, p);
      PRINS_RETURN_IF_ERROR(volume.write(region->base + p * page_size_, page));
    }
  }
  return Status::ok();
}

Status Tpcw::fetch_row_page(ByteVolume& volume, const Table& table,
                            std::uint64_t row,
                            std::map<std::uint64_t, Bytes>& dirty,
                            std::uint64_t& page_off, std::uint16_t& slot) {
  page_off = table.base + (row / table.rows_per_page) * page_size_;
  slot = static_cast<std::uint16_t>(row % table.rows_per_page);
  if (!dirty.contains(page_off)) {
    Bytes page(page_size_);
    PRINS_RETURN_IF_ERROR(volume.read(page_off, page));
    dirty.emplace(page_off, std::move(page));
  }
  return Status::ok();
}

Status Tpcw::append_row(ByteVolume& volume, AppendRegion& region, ByteSpan row,
                        std::map<std::uint64_t, Bytes>& dirty) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    const std::uint64_t page_off =
        region.base + region.cursor_page * page_size_;
    auto it = dirty.find(page_off);
    if (it == dirty.end()) {
      Bytes page(page_size_);
      PRINS_RETURN_IF_ERROR(volume.read(page_off, page));
      it = dirty.emplace(page_off, std::move(page)).first;
    }
    DbPage view{it->second};
    auto slot = view.insert_row(row);
    if (slot.is_ok()) return Status::ok();
    if (slot.status().code() != ErrorCode::kResourceExhausted) {
      return slot.status();
    }
    region.cursor_page = (region.cursor_page + 1) % region.pages;
    Bytes fresh(page_size_);
    DbPage::format(fresh, region.cursor_page);
    dirty[region.base + region.cursor_page * page_size_] = std::move(fresh);
  }
  return internal_error("append failed twice");
}

Result<std::uint64_t> Tpcw::run_transaction(ByteVolume& volume) {
  const std::uint64_t toss = rng_.next_below(100);
  if (toss < 80) {
    PRINS_RETURN_IF_ERROR(ix_browse(volume));
  } else if (toss < 94) {
    PRINS_RETURN_IF_ERROR(ix_cart_update(volume, pool_));
  } else if (toss < 99) {
    PRINS_RETURN_IF_ERROR(ix_buy_confirm(volume, pool_));
  } else {
    PRINS_RETURN_IF_ERROR(ix_register(volume, pool_));
  }
  ++since_flush_;
  std::uint64_t flushed = 0;
  if (since_flush_ >= config_.flush_interval) {
    for (const auto& [offset, page] : pool_) {
      PRINS_RETURN_IF_ERROR(volume.write(offset, page));
    }
    flushed = pool_.size();
    pool_.clear();
    since_flush_ = 0;
  }
  return flushed;
}

Status Tpcw::ix_browse(ByteVolume& volume) {
  // Product detail / search / best sellers: item page reads only.
  Bytes page(page_size_);
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t item = item_skew_.sample(rng_) - 1;
    const std::uint64_t page_off =
        item_.base + (item / item_.rows_per_page) * page_size_;
    PRINS_RETURN_IF_ERROR(volume.read(page_off, page));
  }
  return Status::ok();
}

Status Tpcw::ix_cart_update(ByteVolume& volume,
                            std::map<std::uint64_t, Bytes>& dirty) {
  const std::uint64_t browser = rng_.next_below(config_.emulated_browsers);
  std::uint64_t page_off;
  std::uint16_t slot;
  PRINS_RETURN_IF_ERROR(
      fetch_row_page(volume, cart_, browser, dirty, page_off, slot));
  DbPage view{dirty[page_off]};
  // Carts are stored as one serialized row per browser; a refresh
  // rewrites the whole row (MySQL updates the serialized blob in place).
  Bytes fresh = make_row(rng_, config_.profile, kCartRow);
  return view.update_row_field(slot, 0, fresh);
}

Status Tpcw::ix_buy_confirm(ByteVolume& volume,
                            std::map<std::uint64_t, Bytes>& dirty) {
  const std::uint64_t order_id = next_order_id_++;
  const std::uint64_t lines = rng_.next_in(1, 5);
  for (std::uint64_t i = 0; i < lines; ++i) {
    const std::uint64_t item = item_skew_.sample(rng_) - 1;
    // I_STOCK update on the item row.
    std::uint64_t page_off;
    std::uint16_t slot;
    PRINS_RETURN_IF_ERROR(
        fetch_row_page(volume, item_, item, dirty, page_off, slot));
    DbPage view{dirty[page_off]};
    // I_STOCK plus the related-items and popularity fields MySQL keeps
    // on the item row: ~64 bytes change per purchased item.
    Byte stock[64];
    fill_numeric(rng_, stock);
    PRINS_RETURN_IF_ERROR(
        view.update_row_field(slot, kItemRow - sizeof stock, stock));

    Bytes ol = make_row(rng_, config_.profile, kOrderLineRow);
    store_le64(MutByteSpan(ol).first(8), order_id);
    PRINS_RETURN_IF_ERROR(append_row(volume, order_lines_, ol, dirty));
  }
  Bytes order = make_row(rng_, config_.profile, kOrderRow);
  store_le64(MutByteSpan(order).first(8), order_id);
  PRINS_RETURN_IF_ERROR(append_row(volume, orders_, order, dirty));

  Bytes cc = make_row(rng_, config_.profile, kCcXactRow);
  PRINS_RETURN_IF_ERROR(append_row(volume, cc_xacts_, cc, dirty));

  // Reset the browser's cart row.
  const std::uint64_t browser = rng_.next_below(config_.emulated_browsers);
  std::uint64_t page_off;
  std::uint16_t slot;
  PRINS_RETURN_IF_ERROR(
      fetch_row_page(volume, cart_, browser, dirty, page_off, slot));
  DbPage view{dirty[page_off]};
  Bytes empty(kCartRow, 0);
  return view.update_row_field(slot, 0, empty);
}

Status Tpcw::ix_register(ByteVolume& volume,
                         std::map<std::uint64_t, Bytes>& dirty) {
  const std::uint64_t customer = rng_.next_below(config_.customers);
  std::uint64_t page_off;
  std::uint16_t slot;
  PRINS_RETURN_IF_ERROR(
      fetch_row_page(volume, customer_, customer, dirty, page_off, slot));
  DbPage view{dirty[page_off]};
  Bytes contact(64);
  fill_words(rng_, contact);
  return view.update_row_field(slot, 32, contact);
}

}  // namespace prins
