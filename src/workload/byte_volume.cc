#include "workload/byte_volume.h"

#include <cstring>

namespace prins {

Status ByteVolume::read(std::uint64_t offset, MutByteSpan out) {
  if (out.empty()) return Status::ok();
  if (offset + out.size() > size_bytes()) {
    return out_of_range("byte read beyond volume end");
  }
  const std::uint32_t bs = block_size();
  const Lba first = offset / bs;
  const Lba last = (offset + out.size() - 1) / bs;
  Bytes buffer((last - first + 1) * bs);
  PRINS_RETURN_IF_ERROR(device_.read(first, buffer));
  std::memcpy(out.data(), buffer.data() + (offset - first * bs), out.size());
  return Status::ok();
}

Status ByteVolume::write(std::uint64_t offset, ByteSpan data) {
  if (data.empty()) return Status::ok();
  if (offset + data.size() > size_bytes()) {
    return out_of_range("byte write beyond volume end");
  }
  const std::uint32_t bs = block_size();
  const Lba first = offset / bs;
  const Lba last = (offset + data.size() - 1) / bs;
  Bytes buffer((last - first + 1) * bs);
  // RMW: fetch the covered blocks, splice the new bytes in, write back.
  PRINS_RETURN_IF_ERROR(device_.read(first, buffer));
  std::memcpy(buffer.data() + (offset - first * bs), data.data(), data.size());
  return device_.write(first, buffer);
}

}  // namespace prins
