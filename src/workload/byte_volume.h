// ByteVolume: byte-addressed I/O over a BlockDevice.
//
// Databases and file systems write pages/files at byte offsets; the
// storage replicates whole blocks.  This adapter performs the
// read-modify-write of partially covered blocks — which is exactly the
// mechanism that makes traditional replication traffic grow with block
// size in the paper's figures (an 8 KB page update dirties a full 64 KB
// block) while PRINS's parity stays the size of the actual change.
#pragma once

#include "block/block_device.h"

namespace prins {

class ByteVolume {
 public:
  explicit ByteVolume(BlockDevice& device) : device_(device) {}

  std::uint64_t size_bytes() const { return device_.capacity_bytes(); }
  std::uint32_t block_size() const { return device_.block_size(); }

  /// Read `out.size()` bytes starting at byte `offset`.
  Status read(std::uint64_t offset, MutByteSpan out);

  /// Write `data` at byte `offset`, read-modify-writing edge blocks.
  Status write(std::uint64_t offset, ByteSpan data);

  BlockDevice& device() { return device_; }

 private:
  BlockDevice& device_;
};

}  // namespace prins
