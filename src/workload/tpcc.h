// Tpcc: a TPC-C-shaped OLTP write-traffic generator.
//
// Implements the five-transaction mix (New-Order 45%, Payment 43%,
// Order-Status 4%, Delivery 4%, Stock-Level 4%) over warehouse / district /
// customer / stock / order tables stored as slotted pages, with TPC-C's
// NURand skew on customer and item selection.  Row counts are scaled down
// from the spec (configurable) so experiments fit in RAM, but the *shape*
// of the write traffic — which tables are touched, how many pages per
// transaction, how many bytes of each page actually change — follows the
// spec's transaction profiles.
//
// Dirty pages are collected per transaction and written once each
// (modelling the buffer manager's page-at-a-time flushes the paper's
// block-level engine observes).
#pragma once

#include <map>
#include <vector>

#include "common/rng.h"
#include "workload/db_page.h"
#include "workload/workload.h"

namespace prins {

struct TpccConfig {
  DbProfile profile = oracle_profile();
  unsigned warehouses = 5;
  unsigned districts_per_warehouse = 10;
  unsigned customers_per_district = 300;  // spec: 3000 (scaled down)
  unsigned items = 2000;                  // spec: 100000 (scaled down)
  std::uint64_t seed = 20060101;
  /// Capacity (in rows) of each append region before it wraps.
  std::uint64_t order_capacity = 200000;
  /// Buffer-pool behaviour: dirty pages accumulate across this many
  /// transactions before being flushed to storage.  Real databases flush
  /// pages at checkpoints, not per transaction, which is why one on-disk
  /// page write carries several transactions' worth of changes — the
  /// source of the 5-20% per-block dirty fraction the paper measures.
  unsigned flush_interval = 64;
};

class Tpcc final : public Workload {
 public:
  explicit Tpcc(TpccConfig config);

  std::string_view name() const override { return "tpcc"; }
  std::uint64_t required_bytes() const override;
  Status setup(ByteVolume& volume) override;
  Result<std::uint64_t> run_transaction(ByteVolume& volume) override;

  const TpccConfig& config() const { return config_; }

  /// Mean page writes per transaction observed so far (drives the
  /// queueing model's write-rate parameter).
  double mean_writes_per_transaction() const;

 private:
  // Fixed-size-row table region: rows are appended at setup in slot order,
  // so row_id maps to (page, slot) arithmetically.
  struct Table {
    std::uint64_t base = 0;        // byte offset of first page
    std::uint64_t pages = 0;
    std::uint64_t rows = 0;
    std::uint32_t row_size = 0;
    std::uint32_t rows_per_page = 0;
  };

  // Append region with a moving cursor (orders / order lines / history).
  struct AppendRegion {
    std::uint64_t base = 0;
    std::uint64_t pages = 0;
    std::uint64_t cursor_page = 0;  // page currently being filled
  };

  void layout();
  Status load_table(ByteVolume& volume, Table& table,
                    std::size_t payload_size);
  Status append_row(ByteVolume& volume, AppendRegion& region, ByteSpan row,
                    std::map<std::uint64_t, Bytes>& dirty);

  // Transaction bodies; each fills `dirty` with page_offset -> page image.
  Status tx_new_order(ByteVolume& volume,
                      std::map<std::uint64_t, Bytes>& dirty);
  Status tx_payment(ByteVolume& volume, std::map<std::uint64_t, Bytes>& dirty);
  Status tx_delivery(ByteVolume& volume, std::map<std::uint64_t, Bytes>& dirty);
  Status tx_read_only(ByteVolume& volume);

  // Read the page holding `row` of `table` into `dirty` (if not already
  // there) and return a DbPage over it plus the row's slot.
  Status fetch_row_page(ByteVolume& volume, const Table& table,
                        std::uint64_t row, std::map<std::uint64_t, Bytes>& dirty,
                        std::uint64_t& page_off, std::uint16_t& slot);

  TpccConfig config_;
  Rng rng_;
  std::uint32_t page_size_ = 8192;
  Zipf item_skew_;  // hot items, concentrating stock-page updates

  // Buffer pool: page images dirtied since the last flush, keyed by byte
  // offset.  Flushed (written to the volume) every flush_interval
  // transactions.
  std::map<std::uint64_t, Bytes> pool_;
  unsigned since_flush_ = 0;

  Table warehouse_, district_, customer_, stock_, item_;
  AppendRegion orders_, order_lines_, history_;
  std::uint64_t total_bytes_ = 0;

  std::vector<std::uint64_t> next_order_id_;   // per (w,d)
  std::vector<std::uint64_t> undelivered_;     // per (w,d): oldest order id
  std::uint64_t transactions_ = 0;
  std::uint64_t page_writes_ = 0;
};

}  // namespace prins
