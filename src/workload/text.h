// Realistic-looking text generation for row fields and file contents.
//
// Traffic ratios in the paper depend on content: database rows mix
// compressible text with binary numerics, and the fs micro-benchmark
// "mainly deals with text files that are more compressible than database
// files" (§4).  This generator emits English-like word streams so the LZ
// baseline sees honest compression ratios.
#pragma once

#include <string>

#include "common/bytes.h"
#include "common/rng.h"

namespace prins {

/// Fill `out` with space-separated pseudo-English words.
void fill_words(Rng& rng, MutByteSpan out);

/// A random last-name in the TPC-C syllable style ("BARBARPRES").
std::string tpcc_last_name(std::uint64_t num);

/// Fill `out` with a numeric/binary field pattern (little-endian counters
/// and small floats) resembling packed row data.
void fill_numeric(Rng& rng, MutByteSpan out);

}  // namespace prins
