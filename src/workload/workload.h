// Workload: the interface the benchmark harness drives.
//
// A workload owns a logical schema (tables / files) laid out on a byte
// volume, populates it once in setup(), and then emits block-level write
// traffic one transaction at a time — the same observable behaviour the
// paper measured from Oracle/Postgres/MySQL/Ext2 under TPC-C/TPC-W/tar.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/status.h"
#include "workload/byte_volume.h"

namespace prins {

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string_view name() const = 0;

  /// Volume capacity the workload needs (bytes).
  virtual std::uint64_t required_bytes() const = 0;

  /// Initial load (build tables, create files).  Run against the raw
  /// device *before* replication starts — the paper's experiments measure
  /// steady-state transaction traffic after the initial sync.
  virtual Status setup(ByteVolume& volume) = 0;

  /// Execute one transaction; returns the number of page/file writes it
  /// performed (0 for read-only transactions).
  virtual Result<std::uint64_t> run_transaction(ByteVolume& volume) = 0;
};

}  // namespace prins
