// Slotted database pages: the content substrate under the TPC workloads.
//
// We cannot run Oracle/Postgres/MySQL, but the paper's measurements depend
// only on *what the database writes to disk*: page-sized writes in which a
// transaction dirties a few row fields, a header (LSN/checksum), and
// occasionally the slot directory.  This module implements a classic
// slotted page (header, heap of rows, slot directory growing from the
// tail) with update/insert/delete operations that dirty realistic byte
// ranges, plus per-engine profiles capturing the differences that matter
// for replication traffic (page size; in-place update vs Postgres-style
// MVCC insert-new-version).
//
// Page layout:
//   [0..3]   magic 'PGPg'
//   [4..11]  page id
//   [12..19] LSN (bumped on every mutation)
//   [20..21] slot count
//   [22..23] free-space offset (start of unused heap area)
//   [24..]   row heap, rows = [len u16][payload]
//   tail     slot directory: slot i's row offset, u16, growing downward
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"

namespace prins {

/// How a database engine lays its data on disk, as far as replication
/// traffic is concerned.
struct DbProfile {
  std::string name;
  std::uint32_t page_size = 8192;
  /// Postgres-style MVCC: an UPDATE writes a whole new row version into
  /// free space (larger dirty area) instead of patching fields in place.
  bool mvcc_insert_on_update = false;
  /// Fraction of a row's payload that is text (rest is packed numerics).
  double text_fraction = 0.5;
};

DbProfile oracle_profile();    // 8 KB pages, in-place updates
DbProfile postgres_profile();  // 8 KB pages, MVCC row versions
DbProfile mysql_profile();     // 16 KB pages, in-place updates

/// View over one page image.  The span must stay alive while the view is
/// used; all mutators update the LSN so the header always dirties too.
class DbPage {
 public:
  static constexpr std::size_t kHeaderSize = 24;

  /// Format an empty page in place.
  static void format(MutByteSpan page, std::uint64_t page_id);

  explicit DbPage(MutByteSpan page);

  bool valid() const;                 // magic check
  std::uint64_t page_id() const;
  std::uint64_t lsn() const;
  std::uint16_t slot_count() const;
  std::uint16_t free_offset() const;

  /// Bytes available for one more row of `payload_len` (incl. slot entry).
  bool fits(std::size_t payload_len) const;

  /// Append a row; returns its slot index, or kResourceExhausted when full.
  Result<std::uint16_t> insert_row(ByteSpan payload);

  /// In-place update: overwrite `len` bytes of slot's payload at `offset`
  /// with fresh content.  Dirty range = the field + header.
  Status update_row_field(std::uint16_t slot, std::size_t offset,
                          ByteSpan new_bytes);

  /// Payload of a live row (empty span if the slot is dead).
  Result<ByteSpan> read_row(std::uint16_t slot) const;

  /// Tombstone a row (slot keeps its entry; space is not reclaimed —
  /// compaction is a fresh page, as in real heap tables).
  Status delete_row(std::uint16_t slot);
  bool row_dead(std::uint16_t slot) const;

 private:
  void bump_lsn();
  std::uint16_t slot_offset_value(std::uint16_t slot) const;
  void set_slot_offset(std::uint16_t slot, std::uint16_t value);

  MutByteSpan page_;
};

/// A row generator: `payload_len` bytes mixing text and numerics per the
/// profile.  Deterministic given the rng state.
Bytes make_row(Rng& rng, const DbProfile& profile, std::size_t payload_len);

}  // namespace prins
