#include "workload/db_page.h"

#include <cassert>
#include <cstring>

#include "common/endian.h"
#include "workload/text.h"

namespace prins {
namespace {

constexpr Byte kMagic[4] = {'P', 'G', 'P', 'g'};
constexpr std::uint16_t kDeadSlot = 0xFFFF;

}  // namespace

DbProfile oracle_profile() {
  DbProfile p;
  p.name = "oracle";
  p.page_size = 8192;
  p.mvcc_insert_on_update = false;
  p.text_fraction = 0.5;
  return p;
}

DbProfile postgres_profile() {
  DbProfile p;
  p.name = "postgres";
  p.page_size = 8192;
  p.mvcc_insert_on_update = true;
  p.text_fraction = 0.5;
  return p;
}

DbProfile mysql_profile() {
  DbProfile p;
  p.name = "mysql";
  p.page_size = 16384;
  p.mvcc_insert_on_update = false;
  p.text_fraction = 0.6;
  return p;
}

void DbPage::format(MutByteSpan page, std::uint64_t page_id) {
  assert(page.size() >= kHeaderSize + 8);
  assert(page.size() <= 0xFFFF);  // u16 offsets address the whole page
  std::memset(page.data(), 0, page.size());
  std::memcpy(page.data(), kMagic, 4);
  store_le64(page.subspan(4, 8), page_id);
  store_le64(page.subspan(12, 8), 1);  // initial LSN
  store_le16(page.subspan(20, 2), 0);  // slot count
  store_le16(page.subspan(22, 2), kHeaderSize);
}

DbPage::DbPage(MutByteSpan page) : page_(page) {}

bool DbPage::valid() const {
  return page_.size() >= kHeaderSize + 8 &&
         std::memcmp(page_.data(), kMagic, 4) == 0;
}

std::uint64_t DbPage::page_id() const { return load_le64(page_.subspan(4, 8)); }
std::uint64_t DbPage::lsn() const { return load_le64(page_.subspan(12, 8)); }
std::uint16_t DbPage::slot_count() const {
  return load_le16(page_.subspan(20, 2));
}
std::uint16_t DbPage::free_offset() const {
  return load_le16(page_.subspan(22, 2));
}

void DbPage::bump_lsn() {
  store_le64(page_.subspan(12, 8), lsn() + 1);
}

std::uint16_t DbPage::slot_offset_value(std::uint16_t slot) const {
  const std::size_t at = page_.size() - 2 * (static_cast<std::size_t>(slot) + 1);
  return load_le16(ByteSpan(page_).subspan(at, 2));
}

void DbPage::set_slot_offset(std::uint16_t slot, std::uint16_t value) {
  const std::size_t at = page_.size() - 2 * (static_cast<std::size_t>(slot) + 1);
  store_le16(page_.subspan(at, 2), value);
}

bool DbPage::fits(std::size_t payload_len) const {
  const std::size_t dir_end = page_.size() - 2 * (slot_count() + 1);
  return free_offset() + 2 + payload_len <= dir_end;
}

Result<std::uint16_t> DbPage::insert_row(ByteSpan payload) {
  if (!valid()) return corruption("not a formatted page");
  if (payload.size() > 0xFFFF - 2) return invalid_argument("row too large");
  if (!fits(payload.size())) {
    return resource_exhausted("page full");
  }
  const std::uint16_t off = free_offset();
  store_le16(page_.subspan(off, 2), static_cast<std::uint16_t>(payload.size()));
  std::memcpy(page_.data() + off + 2, payload.data(), payload.size());
  const std::uint16_t slot = slot_count();
  set_slot_offset(slot, off);
  store_le16(page_.subspan(20, 2), static_cast<std::uint16_t>(slot + 1));
  store_le16(page_.subspan(22, 2),
             static_cast<std::uint16_t>(off + 2 + payload.size()));
  bump_lsn();
  return slot;
}

Result<ByteSpan> DbPage::read_row(std::uint16_t slot) const {
  if (!valid()) return corruption("not a formatted page");
  if (slot >= slot_count()) return out_of_range("no such slot");
  const std::uint16_t off = slot_offset_value(slot);
  if (off == kDeadSlot) return ByteSpan{};
  const std::uint16_t len = load_le16(ByteSpan(page_).subspan(off, 2));
  return ByteSpan(page_).subspan(off + 2, len);
}

Status DbPage::update_row_field(std::uint16_t slot, std::size_t offset,
                                ByteSpan new_bytes) {
  if (!valid()) return corruption("not a formatted page");
  if (slot >= slot_count()) return out_of_range("no such slot");
  const std::uint16_t off = slot_offset_value(slot);
  if (off == kDeadSlot) return failed_precondition("row is deleted");
  const std::uint16_t len = load_le16(ByteSpan(page_).subspan(off, 2));
  if (offset + new_bytes.size() > len) {
    return out_of_range("field beyond row payload");
  }
  std::memcpy(page_.data() + off + 2 + offset, new_bytes.data(),
              new_bytes.size());
  bump_lsn();
  return Status::ok();
}

Status DbPage::delete_row(std::uint16_t slot) {
  if (!valid()) return corruption("not a formatted page");
  if (slot >= slot_count()) return out_of_range("no such slot");
  set_slot_offset(slot, kDeadSlot);
  bump_lsn();
  return Status::ok();
}

bool DbPage::row_dead(std::uint16_t slot) const {
  return slot < slot_count() && slot_offset_value(slot) == kDeadSlot;
}

Bytes make_row(Rng& rng, const DbProfile& profile, std::size_t payload_len) {
  Bytes row(payload_len);
  const auto text_len =
      static_cast<std::size_t>(profile.text_fraction * payload_len);
  fill_words(rng, MutByteSpan(row).first(text_len));
  fill_numeric(rng, MutByteSpan(row).subspan(text_len));
  return row;
}

}  // namespace prins
