#include "workload/fsmicro.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>

#include "common/endian.h"
#include "workload/text.h"

namespace prins {
namespace {

constexpr std::uint32_t kInodeSize = 128;
constexpr std::uint32_t kFsBlock = 4096;   // ext2 block size
constexpr std::uint32_t kTarBlock = 512;   // ustar record size

std::uint64_t round_up(std::uint64_t v, std::uint64_t to) {
  return (v + to - 1) / to * to;
}

/// Minimal POSIX ustar header for a regular file.
void make_tar_header(MutByteSpan out, const std::string& name,
                     std::uint64_t size, std::uint64_t mtime) {
  std::memset(out.data(), 0, kTarBlock);
  auto put = [&](std::size_t at, const char* s) {
    std::strncpy(reinterpret_cast<char*>(out.data() + at), s, 99);
  };
  put(0, name.c_str());
  std::snprintf(reinterpret_cast<char*>(out.data() + 100), 8, "%07o", 0644);
  std::snprintf(reinterpret_cast<char*>(out.data() + 108), 8, "%07o", 0);
  std::snprintf(reinterpret_cast<char*>(out.data() + 116), 8, "%07o", 0);
  std::snprintf(reinterpret_cast<char*>(out.data() + 124), 12, "%011llo",
                static_cast<unsigned long long>(size));
  std::snprintf(reinterpret_cast<char*>(out.data() + 136), 12, "%011llo",
                static_cast<unsigned long long>(mtime));
  out[156] = '0';  // regular file
  std::memcpy(out.data() + 257, "ustar", 6);
  // Checksum: spaces while summing, then the octal value.
  std::memset(out.data() + 148, ' ', 8);
  unsigned sum = 0;
  for (std::size_t i = 0; i < kTarBlock; ++i) sum += out[i];
  std::snprintf(reinterpret_cast<char*>(out.data() + 148), 8, "%06o", sum);
  out[155] = ' ';
}

}  // namespace

FsMicro::FsMicro(FsMicroConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  // Create the file population and lay the volume out.
  const unsigned total_files =
      config_.directories * config_.files_per_directory;
  files_.reserve(total_files);

  superblock_off_ = 0;
  inode_table_off_ = kFsBlock;  // superblock occupies one fs block
  const std::uint64_t inode_bytes =
      round_up(static_cast<std::uint64_t>(total_files + 1) * kInodeSize,
               kFsBlock);
  bitmap_off_ = inode_table_off_ + inode_bytes;
  const std::uint64_t bitmap_bytes = kFsBlock;  // plenty for our block count
  data_off_ = bitmap_off_ + bitmap_bytes;

  std::uint64_t cursor = data_off_;
  std::uint64_t archive_payload = 0;
  for (unsigned d = 0; d < config_.directories; ++d) {
    for (unsigned f = 0; f < config_.files_per_directory; ++f) {
      File file;
      file.directory = d;
      file.size = static_cast<std::uint32_t>(
          rng_.next_in(config_.min_file_bytes, config_.max_file_bytes));
      file.data_offset = cursor;
      file.inode_offset =
          inode_table_off_ + static_cast<std::uint64_t>(files_.size()) * kInodeSize;
      file.mtime = clock_;
      cursor += round_up(file.size, kFsBlock);
      archive_payload += kTarBlock + round_up(file.size, kTarBlock);
      files_.push_back(file);
    }
  }
  archive_off_ = cursor;
  archive_capacity_ = round_up(archive_payload + 2 * kTarBlock, kFsBlock);
  total_bytes_ = archive_off_ + archive_capacity_;

  // Pick the benchmark's five directories once, as the paper does.
  std::vector<unsigned> dirs(config_.directories);
  std::iota(dirs.begin(), dirs.end(), 0u);
  for (unsigned i = 0; i < config_.tar_directories && i < dirs.size(); ++i) {
    const std::size_t j = i + rng_.next_below(dirs.size() - i);
    std::swap(dirs[i], dirs[j]);
    tar_dirs_.push_back(dirs[i]);
  }
}

std::uint64_t FsMicro::required_bytes() const { return total_bytes_; }

Status FsMicro::write_inode(ByteVolume& volume, const File& file) {
  Bytes inode(kInodeSize, 0);
  store_le32(MutByteSpan(inode).subspan(0, 4), 0100644);  // mode
  store_le32(MutByteSpan(inode).subspan(4, 4), file.size);
  store_le64(MutByteSpan(inode).subspan(8, 8), file.mtime);
  store_le64(MutByteSpan(inode).subspan(16, 8), file.data_offset / kFsBlock);
  const std::uint32_t blocks =
      static_cast<std::uint32_t>(round_up(file.size, kFsBlock) / kFsBlock);
  store_le32(MutByteSpan(inode).subspan(24, 4), blocks);
  return volume.write(file.inode_offset, inode);
}

Status FsMicro::setup(ByteVolume& volume) {
  // Superblock.
  Bytes sb(kFsBlock, 0);
  std::memcpy(sb.data(), "EXT2sim", 7);
  store_le64(MutByteSpan(sb).subspan(8, 8), files_.size());
  store_le64(MutByteSpan(sb).subspan(16, 8), total_bytes_ / kFsBlock);
  PRINS_RETURN_IF_ERROR(volume.write(superblock_off_, sb));

  // Block bitmap: mark every allocated fs block in use.
  Bytes bitmap(kFsBlock, 0);
  const std::uint64_t used_blocks = archive_off_ / kFsBlock;
  for (std::uint64_t b = 0; b < used_blocks && b / 8 < bitmap.size(); ++b) {
    bitmap[b / 8] |= static_cast<Byte>(1u << (b % 8));
  }
  PRINS_RETURN_IF_ERROR(volume.write(bitmap_off_, bitmap));

  // Files: text content + inode.
  for (const File& file : files_) {
    Bytes content(file.size);
    fill_words(rng_, content);
    PRINS_RETURN_IF_ERROR(volume.write(file.data_offset, content));
    PRINS_RETURN_IF_ERROR(write_inode(volume, file));
  }
  // Create the initial archive so the measured rounds overwrite an
  // existing file, as tar does on a system where the archive already
  // exists.  (Setup writes happen before replication starts.)
  std::uint64_t ignored = 0;
  PRINS_RETURN_IF_ERROR(tar_round(volume, ignored));
  return Status::ok();
}

Status FsMicro::edit_files(ByteVolume& volume, std::uint64_t& writes) {
  ++clock_;
  for (File& file : files_) {
    const bool in_archive =
        std::find(tar_dirs_.begin(), tar_dirs_.end(), file.directory) !=
        tar_dirs_.end();
    if (!in_archive || !rng_.next_bool(config_.edit_fraction)) continue;
    for (unsigned e = 0; e < config_.edits_per_file; ++e) {
      const std::uint32_t len = static_cast<std::uint32_t>(rng_.next_in(
          config_.edit_min_bytes,
          std::min<std::uint64_t>(config_.edit_max_bytes, file.size)));
      const std::uint64_t at = rng_.next_below(file.size - len + 1);
      Bytes splice(len);
      fill_words(rng_, splice);
      PRINS_RETURN_IF_ERROR(volume.write(file.data_offset + at, splice));
      ++writes;
    }
    file.mtime = clock_;
    PRINS_RETURN_IF_ERROR(write_inode(volume, file));
    ++writes;
  }
  return Status::ok();
}

Status FsMicro::tar_round(ByteVolume& volume, std::uint64_t& writes) {
  // Build the archive stream in memory, then write it over the previous
  // archive image — as `tar -cf archive.tar dir1..dir5` rewrites the file.
  Bytes archive;
  archive.reserve(archive_capacity_);
  Bytes header(kTarBlock);
  Bytes content;
  for (const File& file : files_) {
    const bool in_archive =
        std::find(tar_dirs_.begin(), tar_dirs_.end(), file.directory) !=
        tar_dirs_.end();
    if (!in_archive) continue;
    const std::string name = "dir" + std::to_string(file.directory) +
                             "/file" +
                             std::to_string(file.data_offset / kFsBlock);
    make_tar_header(header, name, file.size, file.mtime);
    append(archive, header);
    content.resize(round_up(file.size, kTarBlock));
    std::fill(content.begin(), content.end(), Byte{0});
    PRINS_RETURN_IF_ERROR(
        volume.read(file.data_offset, MutByteSpan(content).first(file.size)));
    append(archive, content);
  }
  // Two zero records terminate a tar stream.
  archive.resize(archive.size() + 2 * kTarBlock, 0);

  PRINS_RETURN_IF_ERROR(volume.write(archive_off_, archive));
  writes += (archive.size() + kFsBlock - 1) / kFsBlock;

  // Archive file's inode (reusing the last inode slot) and superblock
  // mtime tick.
  Bytes stamp(8);
  store_le64(stamp, clock_);
  PRINS_RETURN_IF_ERROR(
      volume.write(inode_table_off_ +
                       static_cast<std::uint64_t>(files_.size()) * kInodeSize + 8,
                   stamp));
  PRINS_RETURN_IF_ERROR(volume.write(superblock_off_ + 24, stamp));
  writes += 2;
  return Status::ok();
}

Result<std::uint64_t> FsMicro::run_transaction(ByteVolume& volume) {
  std::uint64_t writes = 0;
  PRINS_RETURN_IF_ERROR(edit_files(volume, writes));
  PRINS_RETURN_IF_ERROR(tar_round(volume, writes));
  return writes;
}

}  // namespace prins
