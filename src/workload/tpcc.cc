#include "workload/tpcc.h"

#include <cassert>
#include <cstring>

#include "common/endian.h"
#include "workload/text.h"

namespace prins {
namespace {

// Scaled-down row payload sizes (bytes); spec sizes in comments.
constexpr std::uint32_t kWarehouseRow = 96;   // ~89
constexpr std::uint32_t kDistrictRow = 96;    // ~95
constexpr std::uint32_t kCustomerRow = 400;   // ~655
constexpr std::uint32_t kStockRow = 200;      // ~306
constexpr std::uint32_t kItemRow = 96;        // ~82
constexpr std::uint32_t kOrderRow = 32;       // ~24
constexpr std::uint32_t kOrderLineRow = 54;   // ~54
constexpr std::uint32_t kHistoryRow = 46;     // ~46

std::uint32_t rows_per_page(std::uint32_t page_size, std::uint32_t row_size) {
  // Each row costs 2 (length) + payload + 2 (slot entry).
  return (page_size - DbPage::kHeaderSize) / (row_size + 4);
}

}  // namespace

Tpcc::Tpcc(TpccConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      item_skew_(config_.items, 0.85) {
  page_size_ = config_.profile.page_size;
  layout();
  const std::uint64_t wd =
      static_cast<std::uint64_t>(config_.warehouses) *
      config_.districts_per_warehouse;
  next_order_id_.assign(wd, 1);
  undelivered_.assign(wd, 0);
}

void Tpcc::layout() {
  auto place_table = [&](Table& table, std::uint64_t rows,
                         std::uint32_t row_size) {
    table.rows = rows;
    table.row_size = row_size;
    table.rows_per_page = rows_per_page(page_size_, row_size);
    table.pages = (rows + table.rows_per_page - 1) / table.rows_per_page;
    table.base = total_bytes_;
    total_bytes_ += table.pages * page_size_;
  };
  const std::uint64_t w = config_.warehouses;
  const std::uint64_t wd = w * config_.districts_per_warehouse;
  place_table(warehouse_, w, kWarehouseRow);
  place_table(district_, wd, kDistrictRow);
  place_table(customer_, wd * config_.customers_per_district, kCustomerRow);
  place_table(stock_, w * config_.items, kStockRow);
  place_table(item_, config_.items, kItemRow);

  auto place_append = [&](AppendRegion& region, std::uint64_t rows,
                          std::uint32_t row_size) {
    const std::uint32_t rpp = rows_per_page(page_size_, row_size);
    region.pages = (rows + rpp - 1) / rpp;
    region.base = total_bytes_;
    region.cursor_page = 0;
    total_bytes_ += region.pages * page_size_;
  };
  place_append(orders_, config_.order_capacity, kOrderRow);
  place_append(order_lines_, config_.order_capacity * 10, kOrderLineRow);
  place_append(history_, config_.order_capacity, kHistoryRow);
}

std::uint64_t Tpcc::required_bytes() const { return total_bytes_; }

Status Tpcc::load_table(ByteVolume& volume, Table& table,
                        std::size_t payload_size) {
  Bytes page(page_size_);
  std::uint64_t row = 0;
  for (std::uint64_t p = 0; p < table.pages; ++p) {
    DbPage::format(page, p);
    DbPage view{page};
    for (std::uint32_t s = 0; s < table.rows_per_page && row < table.rows;
         ++s, ++row) {
      Bytes payload = make_row(rng_, config_.profile, payload_size);
      auto slot = view.insert_row(payload);
      PRINS_RETURN_IF_ERROR(slot.status());
    }
    PRINS_RETURN_IF_ERROR(volume.write(table.base + p * page_size_, page));
  }
  return Status::ok();
}

Status Tpcc::setup(ByteVolume& volume) {
  PRINS_RETURN_IF_ERROR(load_table(volume, warehouse_, kWarehouseRow));
  PRINS_RETURN_IF_ERROR(load_table(volume, district_, kDistrictRow));
  PRINS_RETURN_IF_ERROR(load_table(volume, customer_, kCustomerRow));
  PRINS_RETURN_IF_ERROR(load_table(volume, stock_, kStockRow));
  PRINS_RETURN_IF_ERROR(load_table(volume, item_, kItemRow));
  // Append regions start as formatted empty pages.
  Bytes page(page_size_);
  for (AppendRegion* region : {&orders_, &order_lines_, &history_}) {
    for (std::uint64_t p = 0; p < region->pages; ++p) {
      DbPage::format(page, p);
      PRINS_RETURN_IF_ERROR(volume.write(region->base + p * page_size_, page));
    }
  }
  return Status::ok();
}

Status Tpcc::fetch_row_page(ByteVolume& volume, const Table& table,
                            std::uint64_t row,
                            std::map<std::uint64_t, Bytes>& dirty,
                            std::uint64_t& page_off, std::uint16_t& slot) {
  assert(row < table.rows);
  page_off = table.base + (row / table.rows_per_page) * page_size_;
  slot = static_cast<std::uint16_t>(row % table.rows_per_page);
  auto it = dirty.find(page_off);
  if (it == dirty.end()) {
    Bytes page(page_size_);
    PRINS_RETURN_IF_ERROR(volume.read(page_off, page));
    dirty.emplace(page_off, std::move(page));
  }
  return Status::ok();
}

Status Tpcc::append_row(ByteVolume& volume, AppendRegion& region, ByteSpan row,
                        std::map<std::uint64_t, Bytes>& dirty) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    const std::uint64_t page_off =
        region.base + region.cursor_page * page_size_;
    auto it = dirty.find(page_off);
    if (it == dirty.end()) {
      Bytes page(page_size_);
      PRINS_RETURN_IF_ERROR(volume.read(page_off, page));
      it = dirty.emplace(page_off, std::move(page)).first;
    }
    DbPage view{it->second};
    auto slot = view.insert_row(row);
    if (slot.is_ok()) return Status::ok();
    if (slot.status().code() != ErrorCode::kResourceExhausted) {
      return slot.status();
    }
    // Page full: move to the next page (wrapping) and format it fresh.
    region.cursor_page = (region.cursor_page + 1) % region.pages;
    const std::uint64_t next_off =
        region.base + region.cursor_page * page_size_;
    Bytes fresh(page_size_);
    DbPage::format(fresh, region.cursor_page);
    dirty[next_off] = std::move(fresh);
  }
  return internal_error("append failed twice; row larger than a page?");
}

Result<std::uint64_t> Tpcc::run_transaction(ByteVolume& volume) {
  const std::uint64_t toss = rng_.next_below(100);
  Status s = Status::ok();
  if (toss < 45) {
    s = tx_new_order(volume, pool_);
  } else if (toss < 88) {
    s = tx_payment(volume, pool_);
  } else if (toss < 92) {
    s = tx_delivery(volume, pool_);
  } else {
    s = tx_read_only(volume);
  }
  PRINS_RETURN_IF_ERROR(s);
  ++transactions_;
  ++since_flush_;
  // Checkpoint: flush the buffer pool's dirty pages once per interval so
  // each on-disk page write carries several transactions' changes.
  std::uint64_t flushed = 0;
  if (since_flush_ >= config_.flush_interval) {
    for (const auto& [offset, page] : pool_) {
      PRINS_RETURN_IF_ERROR(volume.write(offset, page));
    }
    flushed = pool_.size();
    pool_.clear();
    since_flush_ = 0;
  }
  page_writes_ += flushed;
  return flushed;
}

Status Tpcc::tx_new_order(ByteVolume& volume,
                          std::map<std::uint64_t, Bytes>& dirty) {
  const std::uint64_t w = rng_.next_below(config_.warehouses);
  const std::uint64_t d = rng_.next_below(config_.districts_per_warehouse);
  const std::uint64_t wd = w * config_.districts_per_warehouse + d;

  // District: bump D_NEXT_O_ID (and tax/ytd fields nearby).
  {
    std::uint64_t page_off;
    std::uint16_t slot;
    PRINS_RETURN_IF_ERROR(
        fetch_row_page(volume, district_, wd, dirty, page_off, slot));
    DbPage view{dirty[page_off]};
    Byte field[8];
    store_le64(field, next_order_id_[wd]);
    PRINS_RETURN_IF_ERROR(view.update_row_field(slot, 0, field));
  }
  const std::uint64_t order_id = next_order_id_[wd]++;

  // Order lines: 5..15 items, stock update per item.
  const std::uint64_t ol_cnt = rng_.next_in(5, 15);
  for (std::uint64_t ol = 0; ol < ol_cnt; ++ol) {
    const std::uint64_t item = item_skew_.sample(rng_) - 1;
    // 1% of items come from a remote warehouse (spec 2.4.1.5).
    std::uint64_t supply_w = w;
    if (config_.warehouses > 1 && rng_.next_bool(0.01)) {
      supply_w = rng_.next_below(config_.warehouses);
    }
    const std::uint64_t stock_row = supply_w * config_.items + item;
    std::uint64_t page_off;
    std::uint16_t slot;
    PRINS_RETURN_IF_ERROR(
        fetch_row_page(volume, stock_, stock_row, dirty, page_off, slot));
    DbPage view{dirty[page_off]};
    // S_QUANTITY, S_YTD, S_ORDER_CNT, S_REMOTE_CNT plus the S_DIST_xx
    // info string for this district; on engines with variable-width rows
    // the tail of the row shifts too, so about half the 200-byte row's
    // bytes actually change on disk.
    Byte fields[100];
    fill_numeric(rng_, MutByteSpan(fields).first(24));
    fill_words(rng_, MutByteSpan(fields).subspan(24));
    PRINS_RETURN_IF_ERROR(view.update_row_field(slot, 0, fields));

    // ORDER-LINE insert.
    Bytes ol_row = make_row(rng_, config_.profile, kOrderLineRow);
    store_le64(MutByteSpan(ol_row).first(8), order_id);
    PRINS_RETURN_IF_ERROR(append_row(volume, order_lines_, ol_row, dirty));
  }

  // ORDERS (+NEW-ORDER, folded into the same row) insert.
  Bytes o_row = make_row(rng_, config_.profile, kOrderRow);
  store_le64(MutByteSpan(o_row).first(8), order_id);
  PRINS_RETURN_IF_ERROR(append_row(volume, orders_, o_row, dirty));

  // MVCC engines write a fresh version of the updated district row too.
  if (config_.profile.mvcc_insert_on_update) {
    Bytes version = make_row(rng_, config_.profile, kDistrictRow);
    PRINS_RETURN_IF_ERROR(append_row(volume, history_, version, dirty));
  }
  return Status::ok();
}

Status Tpcc::tx_payment(ByteVolume& volume,
                        std::map<std::uint64_t, Bytes>& dirty) {
  const std::uint64_t w = rng_.next_below(config_.warehouses);
  const std::uint64_t d = rng_.next_below(config_.districts_per_warehouse);
  const std::uint64_t wd = w * config_.districts_per_warehouse + d;

  // Warehouse W_YTD.
  {
    std::uint64_t page_off;
    std::uint16_t slot;
    PRINS_RETURN_IF_ERROR(
        fetch_row_page(volume, warehouse_, w, dirty, page_off, slot));
    DbPage view{dirty[page_off]};
    Byte ytd[8];
    fill_numeric(rng_, ytd);
    PRINS_RETURN_IF_ERROR(view.update_row_field(slot, 8, ytd));
  }
  // District D_YTD.
  {
    std::uint64_t page_off;
    std::uint16_t slot;
    PRINS_RETURN_IF_ERROR(
        fetch_row_page(volume, district_, wd, dirty, page_off, slot));
    DbPage view{dirty[page_off]};
    Byte ytd[8];
    fill_numeric(rng_, ytd);
    PRINS_RETURN_IF_ERROR(view.update_row_field(slot, 8, ytd));
  }
  // Customer: balance + payment counters; 10% bad credit rewrites C_DATA.
  {
    const std::uint64_t c =
        nurand(rng_, 1023, 0, config_.customers_per_district - 1);
    const std::uint64_t customer_row =
        wd * config_.customers_per_district + c;
    std::uint64_t page_off;
    std::uint16_t slot;
    PRINS_RETURN_IF_ERROR(
        fetch_row_page(volume, customer_, customer_row, dirty, page_off, slot));
    DbPage view{dirty[page_off]};
    // C_BALANCE, C_YTD_PAYMENT, C_PAYMENT_CNT and the last-payment info
    // fields, plus the variable-width tail shift: ~half of the 400-byte
    // customer row changes on every payment.
    Byte fields[200];
    fill_numeric(rng_, MutByteSpan(fields).first(32));
    fill_words(rng_, MutByteSpan(fields).subspan(32));
    PRINS_RETURN_IF_ERROR(view.update_row_field(slot, 0, fields));
    if (rng_.next_bool(0.10)) {
      Bytes cdata(200);
      fill_words(rng_, cdata);
      PRINS_RETURN_IF_ERROR(view.update_row_field(slot, 100, cdata));
    }
  }
  // History append.
  Bytes h_row = make_row(rng_, config_.profile, kHistoryRow);
  PRINS_RETURN_IF_ERROR(append_row(volume, history_, h_row, dirty));

  if (config_.profile.mvcc_insert_on_update) {
    // New versions of warehouse + district + customer rows.
    Bytes version = make_row(rng_, config_.profile, kCustomerRow);
    PRINS_RETURN_IF_ERROR(append_row(volume, history_, version, dirty));
  }
  return Status::ok();
}

Status Tpcc::tx_delivery(ByteVolume& volume,
                         std::map<std::uint64_t, Bytes>& dirty) {
  const std::uint64_t w = rng_.next_below(config_.warehouses);
  // Deliver the oldest undelivered order in each district (spec: batch of 10).
  for (std::uint64_t d = 0; d < config_.districts_per_warehouse; ++d) {
    const std::uint64_t wd = w * config_.districts_per_warehouse + d;
    if (undelivered_[wd] + 1 >= next_order_id_[wd]) continue;  // nothing due
    ++undelivered_[wd];

    // Customer balance update for the delivered order.
    const std::uint64_t c =
        nurand(rng_, 1023, 0, config_.customers_per_district - 1);
    const std::uint64_t customer_row = wd * config_.customers_per_district + c;
    std::uint64_t page_off;
    std::uint16_t slot;
    PRINS_RETURN_IF_ERROR(
        fetch_row_page(volume, customer_, customer_row, dirty, page_off, slot));
    DbPage view{dirty[page_off]};
    Byte balance[8];
    fill_numeric(rng_, balance);
    PRINS_RETURN_IF_ERROR(view.update_row_field(slot, 0, balance));
  }
  return Status::ok();
}

Status Tpcc::tx_read_only(ByteVolume& volume) {
  // Order-Status / Stock-Level: reads only; touch some pages to model the
  // I/O without dirtying anything.
  Bytes page(page_size_);
  const std::uint64_t c_page = rng_.next_below(customer_.pages);
  PRINS_RETURN_IF_ERROR(volume.read(customer_.base + c_page * page_size_, page));
  const std::uint64_t s_page = rng_.next_below(stock_.pages);
  PRINS_RETURN_IF_ERROR(volume.read(stock_.base + s_page * page_size_, page));
  return Status::ok();
}

double Tpcc::mean_writes_per_transaction() const {
  return transactions_ == 0
             ? 0.0
             : static_cast<double>(page_writes_) /
                   static_cast<double>(transactions_);
}

}  // namespace prins
