// FsMicro: the paper's Ext2 file-system micro-benchmark (§3.2).
//
// "The micro-benchmark chooses five directories randomly on Ext2 ... and
// creates an archive file using the tar command.  We ran the tar command
// five times.  Each time before the tar command is run, files in the
// directories are randomly selected and randomly changed."
//
// We model an ext2-like volume: superblock, inode table, block bitmap and
// a data area holding text files in directories, plus an archive area the
// tar stream is (re)written into.  One transaction = one benchmark round:
// randomly edit a fraction of the files, then write a POSIX-ustar-format
// archive of the chosen directories over the previous archive.  Because
// most file bytes survive between rounds, consecutive archive images are
// nearly identical — the source of the paper's largest PRINS wins
// (Figure 7) — while the text content keeps the compression baseline
// honest.
#pragma once

#include <vector>

#include "common/rng.h"
#include "workload/workload.h"

namespace prins {

struct FsMicroConfig {
  unsigned directories = 20;
  unsigned files_per_directory = 10;
  unsigned tar_directories = 5;       // dirs included in the archive
  std::uint32_t min_file_bytes = 2 * 1024;
  std::uint32_t max_file_bytes = 48 * 1024;
  /// Fraction of in-archive files randomly edited before each tar round.
  double edit_fraction = 0.20;
  /// Edits per touched file (each a short text splice).
  unsigned edits_per_file = 2;
  unsigned edit_min_bytes = 16;
  unsigned edit_max_bytes = 384;
  std::uint64_t seed = 20060303;
};

class FsMicro final : public Workload {
 public:
  explicit FsMicro(FsMicroConfig config);

  std::string_view name() const override { return "fsmicro"; }
  std::uint64_t required_bytes() const override;
  Status setup(ByteVolume& volume) override;

  /// One micro-benchmark round: edit random files, then re-tar.
  Result<std::uint64_t> run_transaction(ByteVolume& volume) override;

 private:
  struct File {
    unsigned directory;
    std::uint32_t size;
    std::uint64_t data_offset;   // byte offset of contents in the data area
    std::uint64_t inode_offset;  // byte offset of its inode
    std::uint64_t mtime;
  };

  Status write_inode(ByteVolume& volume, const File& file);
  Status edit_files(ByteVolume& volume, std::uint64_t& writes);
  Status tar_round(ByteVolume& volume, std::uint64_t& writes);

  FsMicroConfig config_;
  Rng rng_;
  std::vector<File> files_;
  std::vector<unsigned> tar_dirs_;   // the five chosen directories
  std::uint64_t superblock_off_ = 0;
  std::uint64_t inode_table_off_ = 0;
  std::uint64_t bitmap_off_ = 0;
  std::uint64_t data_off_ = 0;
  std::uint64_t archive_off_ = 0;
  std::uint64_t archive_capacity_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t clock_ = 1;  // file mtime ticks
};

}  // namespace prins
