// Block-write trace capture and replay.
//
// The fair way to compare replication policies is to feed each the exact
// same write stream.  RecordingDisk captures every (lba, contents) a
// workload produces against a scratch device; WriteTrace::replay then
// pushes the identical stream through engines configured with different
// policies.  (The paper reruns the hour-long benchmark per configuration;
// recording lets us reuse one deterministic run per block size.)
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "block/block_device.h"

namespace prins {

struct TraceEntry {
  Lba lba;
  Bytes data;  // whole blocks
};

class WriteTrace {
 public:
  void add(Lba lba, ByteSpan data) {
    std::lock_guard lock(mutex_);
    entries_.push_back(TraceEntry{lba, to_bytes(data)});
    bytes_ += data.size();
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return entries_.size();
  }
  std::uint64_t total_bytes() const {
    std::lock_guard lock(mutex_);
    return bytes_;
  }
  const std::vector<TraceEntry>& entries() const { return entries_; }

  /// Re-issue every recorded write, in order, against `device`.
  Status replay(BlockDevice& device) const;

  /// Persist to a file (format: magic, entry count, then
  /// lba/length/data records, CRC-32C trailer).  Enables capturing a
  /// workload once and re-running policy comparisons offline.
  Status save(const std::string& path) const;

  /// Append the entries of a trace file written by save() to this trace.
  /// Verifies the checksum before applying anything.
  Status load_from(const std::string& path);

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEntry> entries_;
  std::uint64_t bytes_ = 0;
};

/// Decorator that records writes into a WriteTrace while passing them on.
class RecordingDisk final : public BlockDevice {
 public:
  RecordingDisk(std::shared_ptr<BlockDevice> inner,
                std::shared_ptr<WriteTrace> trace)
      : inner_(std::move(inner)), trace_(std::move(trace)) {}

  std::uint32_t block_size() const override { return inner_->block_size(); }
  std::uint64_t num_blocks() const override { return inner_->num_blocks(); }

  Status read(Lba lba, MutByteSpan out) override {
    return inner_->read(lba, out);
  }
  Status write(Lba lba, ByteSpan data) override {
    Status s = inner_->write(lba, data);
    if (s.is_ok()) trace_->add(lba, data);
    return s;
  }
  Status flush() override { return inner_->flush(); }
  std::string describe() const override {
    return "recording(" + inner_->describe() + ")";
  }

 private:
  std::shared_ptr<BlockDevice> inner_;
  std::shared_ptr<WriteTrace> trace_;
};

}  // namespace prins
