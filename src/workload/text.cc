#include "workload/text.h"

#include <array>
#include <cstring>

namespace prins {
namespace {

// A modest word list gives text the right repetition structure: common
// words recur, so LZ finds matches, as it would on real documents.
constexpr std::array<std::string_view, 64> kWords = {
    "the",     "of",       "and",      "to",       "in",      "is",
    "order",   "customer", "district", "payment",  "item",    "stock",
    "total",   "amount",   "quantity", "delivery", "pending", "status",
    "account", "balance",  "credit",   "history",  "remote",  "local",
    "storage", "network",  "parity",   "replica",  "block",   "write",
    "data",    "system",   "server",   "request",  "response","queue",
    "table",   "index",    "page",     "record",   "field",   "value",
    "update",  "insert",   "delete",   "select",   "commit",  "begin",
    "street",  "city",     "state",    "phone",    "name",    "price",
    "tax",     "discount", "warehouse", "carrier",  "entry",   "date",
    "time",    "count",    "level",    "info",
};

constexpr std::array<std::string_view, 10> kSyllables = {
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION",
    "EING"};

}  // namespace

void fill_words(Rng& rng, MutByteSpan out) {
  std::size_t pos = 0;
  while (pos < out.size()) {
    std::string_view word = kWords[rng.next_below(kWords.size())];
    for (char c : word) {
      if (pos >= out.size()) return;
      out[pos++] = static_cast<Byte>(c);
    }
    if (pos < out.size()) out[pos++] = ' ';
  }
}

std::string tpcc_last_name(std::uint64_t num) {
  // TPC-C 4.3.2.3: concatenate syllables of the three digits of num % 1000.
  num %= 1000;
  std::string name;
  name += kSyllables[num / 100];
  name += kSyllables[(num / 10) % 10];
  name += kSyllables[num % 10];
  return name;
}

void fill_numeric(Rng& rng, MutByteSpan out) {
  // Packed 4-byte little-endian integers: typical of ids, quantities and
  // money-in-cents columns.  Most values are small (counts, quantities),
  // so the high bytes are zero — the padding/fixed-width structure that
  // makes real database pages roughly 2x zlib-compressible.
  std::size_t i = 0;
  while (i + 4 <= out.size()) {
    const std::uint32_t v = static_cast<std::uint32_t>(
        rng.next_bool(0.7) ? rng.next_below(100) : rng.next_below(100000));
    out[i] = static_cast<Byte>(v);
    out[i + 1] = static_cast<Byte>(v >> 8);
    out[i + 2] = static_cast<Byte>(v >> 16);
    out[i + 3] = static_cast<Byte>(v >> 24);
    i += 4;
  }
  for (; i < out.size(); ++i) out[i] = static_cast<Byte>(rng.next_below(10));
}

}  // namespace prins
