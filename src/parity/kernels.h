// Runtime-dispatched SIMD kernels for the PRINS hot path.
//
// Every byte the engine replicates flows through one of five primitives:
//
//   xor_into          dst ^= src                       (parity apply/compose)
//   xor_to            out = a ^ b                      (forward/backward parity)
//   count_nonzero     dirty-byte census of a delta     (metrics, 5-20% claim)
//   xor_to_and_count  out = a ^ b, returns nonzero(out) in the SAME pass —
//                     the fused form that removes the engine's second scan
//   skip_zeros        first non-zero offset at/after `pos` (zero-RLE scanner)
//
// Three implementation tiers share one function-pointer table (`Ops`):
// portable word-wise scalar code (the reference semantics), SSE2 (16 B
// lanes), and AVX2 (32 B lanes).  The tier is picked once at runtime via
// __builtin_cpu_supports, so one binary runs everywhere and uses the widest
// vectors the CPU has.  All tiers are bit-identical by contract; the test
// suite cross-checks every runnable tier against scalar over adversarial
// sizes and alignments.
#pragma once

#include <cstddef>
#include <vector>

#include "common/bytes.h"

namespace prins {
namespace kernels {

/// One implementation tier.  All pointers are non-null and handle n == 0,
/// unaligned buffers, and arbitrary (non-overlapping) sizes.
struct Ops {
  const char* name;  // "scalar" | "sse2" | "avx2"
  void (*xor_into)(Byte* dst, const Byte* src, std::size_t n);
  void (*xor_to)(Byte* out, const Byte* a, const Byte* b, std::size_t n);
  std::size_t (*count_nonzero)(const Byte* s, std::size_t n);
  /// out = a ^ b; returns the number of non-zero bytes written to `out`.
  std::size_t (*xor_to_and_count)(Byte* out, const Byte* a, const Byte* b,
                                  std::size_t n);
  /// First index >= pos (and <= n) whose byte is non-zero; n if none.
  std::size_t (*skip_zeros)(const Byte* s, std::size_t n, std::size_t pos);
};

/// The portable reference tier (always available, defines the semantics).
const Ops& scalar_ops();

/// The widest tier this CPU supports, resolved once.  Honours the
/// PRINS_KERNELS environment variable ("scalar" | "sse2" | "avx2") as a
/// downgrade override for benchmarking and debugging; an unsupported or
/// unknown value falls back to auto-detection.
const Ops& active_ops();

/// Every tier runnable on this CPU, scalar first.  For tests and benches
/// that cross-check or race the tiers against each other.
std::vector<const Ops*> available_ops();

}  // namespace kernels
}  // namespace prins
