#include "parity/kernels.h"

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string_view>

#if defined(__x86_64__) || defined(__i386__)
#define PRINS_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace prins {
namespace kernels {
namespace {

// ---------------------------------------------------------------------------
// Scalar tier: word-wise via memcpy to stay alignment-safe on any target.
// This is the reference implementation the SIMD tiers must match bit-for-bit.
// Auto-vectorization is disabled so the reference stays a genuinely
// independent (non-SIMD) code path for the cross-check tests, and so
// benchmark speedups measure the vector tiers against real scalar code.
// ---------------------------------------------------------------------------

#if defined(__GNUC__) && !defined(__clang__)
#define PRINS_NO_AUTOVEC \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define PRINS_NO_AUTOVEC
#endif

PRINS_NO_AUTOVEC
void xor_into_scalar(Byte* dst, const Byte* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

PRINS_NO_AUTOVEC
void xor_to_scalar(Byte* out, const Byte* a, const Byte* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t x, y;
    std::memcpy(&x, a + i, 8);
    std::memcpy(&y, b + i, 8);
    x ^= y;
    std::memcpy(out + i, &x, 8);
  }
  for (; i < n; ++i) out[i] = a[i] ^ b[i];
}

/// Count non-zero bytes of a word with bit tricks: fold each byte to its
/// low bit ("byte != 0"), then popcount the 8 marker bits.
inline unsigned nonzero_bytes_of_word(std::uint64_t w) {
  constexpr std::uint64_t kHigh = 0x8080808080808080ull;
  // A byte is non-zero iff (byte | (byte + 0x7f)) has its high bit set
  // after masking out carries from neighbouring bytes.
  const std::uint64_t t = (w & ~kHigh) + ~kHigh;  // high bit set if low7 != 0
  const std::uint64_t marks = (t | w) & kHigh;    // high bit set if byte != 0
  return static_cast<unsigned>(__builtin_popcountll(marks));
}

PRINS_NO_AUTOVEC
std::size_t count_nonzero_scalar(const Byte* s, std::size_t n) {
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, s + i, 8);
    count += nonzero_bytes_of_word(w);
  }
  for (; i < n; ++i) count += (s[i] != 0);
  return count;
}

PRINS_NO_AUTOVEC
std::size_t xor_to_and_count_scalar(Byte* out, const Byte* a, const Byte* b,
                                    std::size_t n) {
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t x, y;
    std::memcpy(&x, a + i, 8);
    std::memcpy(&y, b + i, 8);
    x ^= y;
    std::memcpy(out + i, &x, 8);
    count += nonzero_bytes_of_word(x);
  }
  for (; i < n; ++i) {
    const Byte v = a[i] ^ b[i];
    out[i] = v;
    count += (v != 0);
  }
  return count;
}

PRINS_NO_AUTOVEC
std::size_t skip_zeros_scalar(const Byte* s, std::size_t n, std::size_t pos) {
  while (pos + 8 <= n) {
    std::uint64_t w;
    std::memcpy(&w, s + pos, 8);
    if (w != 0) {
      // The first non-zero byte is the lowest set bit's byte (little-endian).
      return pos + static_cast<std::size_t>(__builtin_ctzll(w)) / 8;
    }
    pos += 8;
  }
  while (pos < n && s[pos] == 0) ++pos;
  return pos;
}

constexpr Ops kScalarOps = {
    "scalar",          xor_into_scalar,         xor_to_scalar,
    count_nonzero_scalar, xor_to_and_count_scalar, skip_zeros_scalar,
};

#if PRINS_KERNELS_X86

// ---------------------------------------------------------------------------
// SSE2 tier: 16-byte unaligned lanes.  Baseline on x86_64, so this tier is
// effectively "always on" there; it stays a separate tier so tests can
// cross-check it and the AVX2 tier independently.
// ---------------------------------------------------------------------------

__attribute__((target("sse2"))) void xor_into_sse2(Byte* dst, const Byte* src,
                                                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(a, b));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

__attribute__((target("sse2"))) void xor_to_sse2(Byte* out, const Byte* a,
                                                 const Byte* b,
                                                 std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i y = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), _mm_xor_si128(x, y));
  }
  for (; i < n; ++i) out[i] = a[i] ^ b[i];
}

__attribute__((target("sse2"))) std::size_t count_nonzero_sse2(const Byte* s,
                                                               std::size_t n) {
  const __m128i zero = _mm_setzero_si128();
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i));
    const int zmask = _mm_movemask_epi8(_mm_cmpeq_epi8(v, zero));
    count += 16u - static_cast<unsigned>(__builtin_popcount(zmask));
  }
  for (; i < n; ++i) count += (s[i] != 0);
  return count;
}

__attribute__((target("sse2"))) std::size_t xor_to_and_count_sse2(
    Byte* out, const Byte* a, const Byte* b, std::size_t n) {
  const __m128i zero = _mm_setzero_si128();
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i y = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i v = _mm_xor_si128(x, y);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), v);
    const int zmask = _mm_movemask_epi8(_mm_cmpeq_epi8(v, zero));
    count += 16u - static_cast<unsigned>(__builtin_popcount(zmask));
  }
  for (; i < n; ++i) {
    const Byte v = a[i] ^ b[i];
    out[i] = v;
    count += (v != 0);
  }
  return count;
}

__attribute__((target("sse2"))) std::size_t skip_zeros_sse2(const Byte* s,
                                                            std::size_t n,
                                                            std::size_t pos) {
  const __m128i zero = _mm_setzero_si128();
  while (pos + 16 <= n) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + pos));
    const int zmask = _mm_movemask_epi8(_mm_cmpeq_epi8(v, zero));
    if (zmask != 0xFFFF) {
      return pos + static_cast<std::size_t>(
                       __builtin_ctz(~static_cast<unsigned>(zmask)));
    }
    pos += 16;
  }
  while (pos < n && s[pos] == 0) ++pos;
  return pos;
}

constexpr Ops kSse2Ops = {
    "sse2",             xor_into_sse2,         xor_to_sse2,
    count_nonzero_sse2, xor_to_and_count_sse2, skip_zeros_sse2,
};

// ---------------------------------------------------------------------------
// AVX2 tier: 32-byte lanes. The XOR kernels peel a scalar head so the store
// pointer is 64-byte aligned — split-line stores cost ~40% of throughput on
// typical Bytes buffers (malloc only guarantees 16-byte alignment); loads
// tolerate misalignment far better, so only the destination is peeled.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline std::size_t head_to_line(const Byte* p,
                                                                std::size_t n) {
  const std::size_t head =
      (64 - (reinterpret_cast<std::uintptr_t>(p) & 63)) & 63;
  return head < n ? head : n;
}

// Head/tail bytes are handled with plain byte loops rather than the SSE2
// helpers: calling non-VEX SSE code from a VEX-encoded function costs an
// AVX/SSE state transition per call, which dwarfs the few peeled bytes.
__attribute__((target("avx2"))) void xor_into_avx2(Byte* dst, const Byte* src,
                                                   std::size_t n) {
  std::size_t i = 0;
  for (const std::size_t head = head_to_line(dst, n); i < head; ++i) {
    dst[i] = static_cast<Byte>(dst[i] ^ src[i]);
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i a =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_store_si256(reinterpret_cast<__m256i*>(dst + i),
                       _mm256_xor_si256(a, b));
  }
  for (; i < n; ++i) dst[i] = static_cast<Byte>(dst[i] ^ src[i]);
}

__attribute__((target("avx2"))) void xor_to_avx2(Byte* out, const Byte* a,
                                                 const Byte* b,
                                                 std::size_t n) {
  std::size_t i = 0;
  for (const std::size_t head = head_to_line(out, n); i < head; ++i) {
    out[i] = static_cast<Byte>(a[i] ^ b[i]);
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i y =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_store_si256(reinterpret_cast<__m256i*>(out + i),
                       _mm256_xor_si256(x, y));
  }
  for (; i < n; ++i) out[i] = static_cast<Byte>(a[i] ^ b[i]);
}

__attribute__((target("avx2"))) std::size_t count_nonzero_avx2(const Byte* s,
                                                               std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i));
    const unsigned zmask =
        static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)));
    count += 32u - static_cast<unsigned>(__builtin_popcount(zmask));
  }
  if (i < n) count += count_nonzero_sse2(s + i, n - i);
  return count;
}

__attribute__((target("avx2"))) std::size_t xor_to_and_count_avx2(
    Byte* out, const Byte* a, const Byte* b, std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i y =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i v = _mm256_xor_si256(x, y);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
    const unsigned zmask =
        static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)));
    count += 32u - static_cast<unsigned>(__builtin_popcount(zmask));
  }
  if (i < n) count += xor_to_and_count_sse2(out + i, a + i, b + i, n - i);
  return count;
}

__attribute__((target("avx2"))) std::size_t skip_zeros_avx2(const Byte* s,
                                                            std::size_t n,
                                                            std::size_t pos) {
  const __m256i zero = _mm256_setzero_si256();
  while (pos + 32 <= n) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + pos));
    const unsigned zmask =
        static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)));
    if (zmask != 0xFFFFFFFFu) {
      return pos + static_cast<std::size_t>(__builtin_ctz(~zmask));
    }
    pos += 32;
  }
  return skip_zeros_sse2(s, n, pos);
}

constexpr Ops kAvx2Ops = {
    "avx2",             xor_into_avx2,         xor_to_avx2,
    count_nonzero_avx2, xor_to_and_count_avx2, skip_zeros_avx2,
};

#endif  // PRINS_KERNELS_X86

const Ops& detect_ops() {
  const char* force = std::getenv("PRINS_KERNELS");
  const std::string_view want = force == nullptr ? "" : force;
  if (want == "scalar") return kScalarOps;
#if PRINS_KERNELS_X86
  const bool have_sse2 = __builtin_cpu_supports("sse2");
  const bool have_avx2 = __builtin_cpu_supports("avx2");
  if (want == "sse2" && have_sse2) return kSse2Ops;
  if (want == "avx2" && have_avx2) return kAvx2Ops;
  if (have_avx2) return kAvx2Ops;
  if (have_sse2) return kSse2Ops;
#endif
  return kScalarOps;
}

}  // namespace

const Ops& scalar_ops() { return kScalarOps; }

const Ops& active_ops() {
  static const Ops& chosen = detect_ops();
  return chosen;
}

std::vector<const Ops*> available_ops() {
  std::vector<const Ops*> ops{&kScalarOps};
#if PRINS_KERNELS_X86
  if (__builtin_cpu_supports("sse2")) ops.push_back(&kSse2Ops);
  if (__builtin_cpu_supports("avx2")) ops.push_back(&kAvx2Ops);
#endif
  return ops;
}

}  // namespace kernels
}  // namespace prins
