#include "parity/gf256.h"

#include <cassert>

namespace prins {

void gf_mul_xor_into(MutByteSpan dst, std::uint8_t coeff, ByteSpan src) {
  assert(dst.size() == src.size());
  if (coeff == 0) return;
  if (coeff == 1) {
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
    return;
  }
  // Per-coefficient 256-entry product table amortizes the log/exp lookups
  // over the whole block.
  std::uint8_t table[256];
  for (int v = 0; v < 256; ++v) {
    table[v] = gf_mul(coeff, static_cast<std::uint8_t>(v));
  }
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= table[src[i]];
}

void gf_scale(MutByteSpan dst, std::uint8_t coeff) {
  if (coeff == 1) return;
  std::uint8_t table[256];
  for (int v = 0; v < 256; ++v) {
    table[v] = gf_mul(coeff, static_cast<std::uint8_t>(v));
  }
  for (auto& b : dst) b = table[b];
}

}  // namespace prins
