// XOR parity kernels — the arithmetic core of PRINS.
//
// The whole scheme is the algebra of XOR over fixed-size blocks:
//
//   forward (primary):  P' = A_new ⊕ A_old        (parity_delta)
//   backward (replica): A_new = P' ⊕ A_old        (xor_into / apply)
//   RAID small write:   P_new = P' ⊕ P_old
//
// Deltas compose: applying P'1 then P'2 equals applying P'1 ⊕ P'2, and every
// delta is its own inverse — the properties the TRAP/CDP log exploits.
#pragma once

#include <cstddef>

#include "common/bytes.h"

namespace prins {

/// dst ^= src, element-wise.  Requires dst.size() == src.size().
/// SIMD-accelerated via the runtime-dispatched kernels (parity/kernels.h).
void xor_into(MutByteSpan dst, ByteSpan src);

/// out = a ^ b.  Requires equal sizes.
void xor_to(MutByteSpan out, ByteSpan a, ByteSpan b);

/// Fused forward parity: out = a ^ b AND the number of non-zero bytes of
/// the result, in one pass over the data.  This is what the engine's write
/// path uses so the dirty-byte metric costs no second scan.
std::size_t xor_to_and_count(MutByteSpan out, ByteSpan a, ByteSpan b);

/// Returns a ^ b as a new buffer.  This is the forward parity computation:
/// parity_delta(new_data, old_data) == P'.
Bytes parity_delta(ByteSpan new_data, ByteSpan old_data);

/// Count of non-zero bytes in `s` — a direct measure of how much of a block
/// a write actually changed (the paper's 5-20% observation).
std::size_t count_nonzero(ByteSpan s);

/// Fraction of non-zero bytes in [0,1]; 0 for an empty span.
double dirty_fraction(ByteSpan s);

}  // namespace prins
