// Stripe geometry for RAID-4 and RAID-5 arrays.
//
// Maps an array-logical block number to (stripe, member disk, member block)
// and back.  RAID-4 keeps parity on a fixed disk; RAID-5 rotates it
// left-symmetric, the layout used by Linux md by default.
#pragma once

#include <cstdint>

namespace prins {

enum class RaidLevel { kRaid0, kRaid4, kRaid5 };

/// Where one logical block lives inside the array.
struct StripeLocation {
  std::uint64_t stripe;       // stripe row index
  unsigned data_disk;         // member index holding the data block
  unsigned parity_disk;       // member index holding this stripe's parity
  std::uint64_t member_block; // block index on the member device
};

/// Geometry of an n-disk array with one parity disk per stripe
/// (RAID-4/5) or none (RAID-0).
class StripeGeometry {
 public:
  /// `num_disks` total members; RAID-4/5 require >= 3, RAID-0 >= 2.
  StripeGeometry(RaidLevel level, unsigned num_disks);

  RaidLevel level() const { return level_; }
  unsigned num_disks() const { return num_disks_; }

  /// Data blocks per stripe (num_disks for RAID-0, num_disks-1 otherwise).
  unsigned data_disks() const;

  /// Member index holding the parity of `stripe`.  RAID-0: no parity —
  /// returns num_disks() (an invalid member) by convention.
  unsigned parity_disk_of(std::uint64_t stripe) const;

  /// Locate logical block `lba` (in array-block units).
  StripeLocation locate(std::uint64_t lba) const;

  /// Inverse of locate(): logical block of (stripe, data slot index).
  /// `slot` counts data blocks 0..data_disks()-1 within the stripe.
  std::uint64_t logical_of(std::uint64_t stripe, unsigned slot) const;

  /// Which data slot (0-based among data disks) a member disk serves in a
  /// given stripe.  Precondition: disk != parity_disk_of(stripe).
  unsigned slot_of(std::uint64_t stripe, unsigned disk) const;

  /// Member disk serving data slot `slot` of `stripe`.
  unsigned disk_of_slot(std::uint64_t stripe, unsigned slot) const;

 private:
  RaidLevel level_;
  unsigned num_disks_;
};

}  // namespace prins
