#include "parity/stripe.h"

#include <cassert>

namespace prins {

StripeGeometry::StripeGeometry(RaidLevel level, unsigned num_disks)
    : level_(level), num_disks_(num_disks) {
  if (level == RaidLevel::kRaid0) {
    assert(num_disks >= 2);
  } else {
    assert(num_disks >= 3);
  }
}

unsigned StripeGeometry::data_disks() const {
  return level_ == RaidLevel::kRaid0 ? num_disks_ : num_disks_ - 1;
}

unsigned StripeGeometry::parity_disk_of(std::uint64_t stripe) const {
  switch (level_) {
    case RaidLevel::kRaid0:
      return num_disks_;  // sentinel: no parity member
    case RaidLevel::kRaid4:
      return num_disks_ - 1;  // fixed dedicated parity disk
    case RaidLevel::kRaid5:
      // Left-symmetric: parity walks right-to-left as stripes advance.
      return static_cast<unsigned>((num_disks_ - 1) - (stripe % num_disks_));
  }
  return num_disks_;
}

StripeLocation StripeGeometry::locate(std::uint64_t lba) const {
  const unsigned dd = data_disks();
  StripeLocation loc{};
  loc.stripe = lba / dd;
  const auto slot = static_cast<unsigned>(lba % dd);
  loc.parity_disk = parity_disk_of(loc.stripe);
  loc.data_disk = disk_of_slot(loc.stripe, slot);
  loc.member_block = loc.stripe;
  return loc;
}

std::uint64_t StripeGeometry::logical_of(std::uint64_t stripe,
                                         unsigned slot) const {
  assert(slot < data_disks());
  return stripe * data_disks() + slot;
}

unsigned StripeGeometry::slot_of(std::uint64_t stripe, unsigned disk) const {
  assert(disk < num_disks_);
  const unsigned p = parity_disk_of(stripe);
  assert(disk != p);
  if (level_ == RaidLevel::kRaid0) return disk;
  // Left-symmetric data layout: slots start just after the parity disk and
  // wrap around the array.
  return (disk + num_disks_ - (p + 1) % num_disks_) % num_disks_;
}

unsigned StripeGeometry::disk_of_slot(std::uint64_t stripe,
                                      unsigned slot) const {
  assert(slot < data_disks());
  if (level_ == RaidLevel::kRaid0) return slot;
  const unsigned p = parity_disk_of(stripe);
  return ((p + 1) % num_disks_ + slot) % num_disks_;
}

}  // namespace prins
