#include "parity/xor.h"

#include <cassert>

#include "parity/kernels.h"

namespace prins {

// All entry points delegate to the runtime-dispatched kernel tier (scalar /
// SSE2 / AVX2, resolved once per process in kernels::active_ops()).

void xor_into(MutByteSpan dst, ByteSpan src) {
  assert(dst.size() == src.size());
  kernels::active_ops().xor_into(dst.data(), src.data(), dst.size());
}

void xor_to(MutByteSpan out, ByteSpan a, ByteSpan b) {
  assert(out.size() == a.size() && a.size() == b.size());
  kernels::active_ops().xor_to(out.data(), a.data(), b.data(), out.size());
}

std::size_t xor_to_and_count(MutByteSpan out, ByteSpan a, ByteSpan b) {
  assert(out.size() == a.size() && a.size() == b.size());
  return kernels::active_ops().xor_to_and_count(out.data(), a.data(), b.data(),
                                                out.size());
}

Bytes parity_delta(ByteSpan new_data, ByteSpan old_data) {
  assert(new_data.size() == old_data.size());
  Bytes out(new_data.size());
  xor_to(out, new_data, old_data);
  return out;
}

std::size_t count_nonzero(ByteSpan s) {
  return kernels::active_ops().count_nonzero(s.data(), s.size());
}

double dirty_fraction(ByteSpan s) {
  if (s.empty()) return 0.0;
  return static_cast<double>(count_nonzero(s)) /
         static_cast<double>(s.size());
}

}  // namespace prins
