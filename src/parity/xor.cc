#include "parity/xor.h"

#include <cassert>
#include <cstdint>
#include <cstring>

namespace prins {

void xor_into(MutByteSpan dst, ByteSpan src) {
  assert(dst.size() == src.size());
  std::size_t n = dst.size();
  Byte* d = dst.data();
  const Byte* s = src.data();
  // Word-wise main loop via memcpy to stay alignment-safe.
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, d + i, 8);
    std::memcpy(&b, s + i, 8);
    a ^= b;
    std::memcpy(d + i, &a, 8);
  }
  for (; i < n; ++i) d[i] ^= s[i];
}

void xor_to(MutByteSpan out, ByteSpan a, ByteSpan b) {
  assert(out.size() == a.size() && a.size() == b.size());
  std::size_t n = out.size();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t x, y;
    std::memcpy(&x, a.data() + i, 8);
    std::memcpy(&y, b.data() + i, 8);
    x ^= y;
    std::memcpy(out.data() + i, &x, 8);
  }
  for (; i < n; ++i) out[i] = a[i] ^ b[i];
}

Bytes parity_delta(ByteSpan new_data, ByteSpan old_data) {
  assert(new_data.size() == old_data.size());
  Bytes out(new_data.size());
  xor_to(out, new_data, old_data);
  return out;
}

std::size_t count_nonzero(ByteSpan s) {
  std::size_t n = 0;
  for (Byte b : s) n += (b != 0);
  return n;
}

double dirty_fraction(ByteSpan s) {
  if (s.empty()) return 0.0;
  return static_cast<double>(count_nonzero(s)) /
         static_cast<double>(s.size());
}

}  // namespace prins
