// GF(2^8) arithmetic over the AES/RAID-6 polynomial x^8+x^4+x^3+x^2+1
// (0x11D), the field behind Reed-Solomon-style dual parity.
//
// RAID-6 stores two syndromes per stripe of data blocks D_0..D_{n-1}:
//   P = ⊕ D_i                      (plain XOR parity)
//   Q = ⊕ g^i · D_i                (g = 0x02, the field generator)
// which allows reconstruction from any two lost members.  Multiplication
// is table-driven via log/exp tables built at compile time.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace prins {

namespace gf256_internal {

struct Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 512> exp{};  // doubled to skip a mod in mul
  constexpr Tables() {
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11D;
    }
    for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
    log[0] = 0;  // log(0) is undefined; callers must guard
  }
};

inline constexpr Tables kTables{};

}  // namespace gf256_internal

/// a · b in GF(2^8).
constexpr std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = gf256_internal::kTables;
  return t.exp[t.log[a] + t.log[b]];
}

/// a / b in GF(2^8).  Precondition: b != 0.
constexpr std::uint8_t gf_div(std::uint8_t a, std::uint8_t b) {
  if (a == 0) return 0;
  const auto& t = gf256_internal::kTables;
  return t.exp[t.log[a] + 255 - t.log[b]];
}

/// Multiplicative inverse.  Precondition: a != 0.
constexpr std::uint8_t gf_inv(std::uint8_t a) { return gf_div(1, a); }

/// g^n for the generator g = 2.
constexpr std::uint8_t gf_pow2(unsigned n) {
  return gf256_internal::kTables.exp[n % 255];
}

/// dst ^= coeff · src, element-wise (the Q-syndrome accumulate).
/// Requires dst.size() == src.size().
void gf_mul_xor_into(MutByteSpan dst, std::uint8_t coeff, ByteSpan src);

/// dst = coeff · dst, element-wise.
void gf_scale(MutByteSpan dst, std::uint8_t coeff);

}  // namespace prins
