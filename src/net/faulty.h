// FaultyTransport / FaultyListener: failure-injection decorators for tests.
//
// The transport analogue of block/faulty_disk: wraps another Transport and
// injects message drops, duplicates, payload bit-flips, stalls, and hard
// disconnects, all driven by a seeded Rng so every run is reproducible.
// Composable with LatentTransport / ShapedTransport (wrap in either order)
// to emulate the paper's lossy WAN links end to end.
//
// Fault semantics:
//   - drop:       send() returns OK but the message never reaches the peer
//                 (a lossy link, not a send error — the sender only learns
//                 via a missing reply).
//   - duplicate:  the message is delivered twice (models retransmit races
//                 and duplicate ACKs).
//   - corrupt:    one random bit of the delivered copy is flipped; the
//                 frame CRC catches it downstream.
//   - stall:      send() sleeps before delivering (a congestion burst).
//   - disconnect: after `disconnect_after` sends the transport closes the
//                 inner channel and every later op fails kUnavailable —
//                 models a link cut; terminal until set_disconnected(false)
//                 swaps in a fresh reconnect (tests usually make the engine
//                 reconnect through a TransportFactory instead).
//
// Faults apply on the send path; recv()/recv_for() pass through so one
// faulty end suffices to perturb both directions of a request/reply pair
// when each side's messages traverse it.
#pragma once

#include <memory>
#include <mutex>

#include "common/rng.h"
#include "net/transport.h"

namespace prins {

struct FaultConfig {
  double drop_p = 0.0;       // P(message silently dropped)
  double duplicate_p = 0.0;  // P(message delivered twice)
  double corrupt_p = 0.0;    // P(one bit of the message flipped)
  double stall_p = 0.0;      // P(send sleeps `stall` before delivering)
  std::chrono::milliseconds stall{5};
  std::uint64_t disconnect_after = 0;  // sends before a hard cut; 0 = never
  std::uint64_t seed = 1;
};

struct FaultStats {
  std::uint64_t sent = 0;        // send() calls that reached fault selection
  std::uint64_t delivered = 0;   // messages actually handed to the inner end
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t stalled = 0;
  std::uint64_t disconnects = 0;
};

class FaultyTransport final : public Transport {
 public:
  FaultyTransport(std::unique_ptr<Transport> inner, FaultConfig config);

  Status send(ByteSpan message) override;
  Status send_vec(std::span<const ByteSpan> parts) override;
  Result<Bytes> recv() override;
  Result<Bytes> recv_for(std::chrono::milliseconds timeout) override;
  void close() override;
  std::string describe() const override;
  Transport* underlying() override;

  /// Force (or clear) the disconnected state.  Entering it closes the inner
  /// transport; leaving it requires a live replacement channel.
  void set_disconnected(bool disconnected);
  bool is_disconnected() const;

  /// Replace the inner transport (a "reconnect") and clear the disconnected
  /// state.  The fault schedule keeps running — the send counter is not
  /// reset, so disconnect_after fires only once.
  void reconnect_with(std::unique_ptr<Transport> inner);

  FaultStats stats() const;

 private:
  // Shared fault-selection + delivery path behind send()/send_vec().
  Status send_parts(std::span<const ByteSpan> parts);

  mutable std::mutex mutex_;
  std::unique_ptr<Transport> inner_;
  FaultConfig config_;
  Rng rng_;
  FaultStats stats_;
  bool disconnected_ = false;
};

/// Wraps a Listener so each accepted connection is a FaultyTransport.
/// Connection i uses seed `config.seed + i`, so multi-connection tests stay
/// deterministic without every link sharing one fault stream.
class FaultyListener final : public Listener {
 public:
  FaultyListener(std::unique_ptr<Listener> inner, FaultConfig config);

  Result<std::unique_ptr<Transport>> accept() override;
  void close() override;

 private:
  std::unique_ptr<Listener> inner_;
  FaultConfig config_;
  std::uint64_t accepted_ = 0;
};

}  // namespace prins
