// TcpTransport / TcpListener: real sockets for cross-process deployments.
//
// Wire format: each message is a 4-byte little-endian length prefix followed
// by the payload.  Used by the remote-mirroring example to run an iSCSI
// target and a PRINS replica pair over localhost exactly as the paper's
// testbed ran over its GigE switch.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "net/transport.h"

namespace prins {

/// Hard cap on a single framed message (64 MiB) — guards against a corrupt
/// or hostile length prefix allocating unbounded memory.
constexpr std::uint32_t kMaxTcpMessageBytes = 64u << 20;

class TcpTransport final : public Transport {
 public:
  /// Connect to host:port (numeric IPv4 dotted quad or "localhost").
  static Result<std::unique_ptr<Transport>> connect(const std::string& host,
                                                    std::uint16_t port);

  /// Adopt an already-connected socket (used by the listener).
  explicit TcpTransport(int fd);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Status send(ByteSpan message) override;
  Status send_vec(std::span<const ByteSpan> parts) override;
  Result<Bytes> recv() override;
  Result<Bytes> recv_for(std::chrono::milliseconds timeout) override;
  void close() override;
  std::string describe() const override;

 private:
  /// Shared incremental receive path: read header then payload, stopping
  /// at `deadline` (nullopt blocks).  A deadline hit mid-frame returns
  /// kTimeout and parks the partial frame in the members below, so the
  /// next recv()/recv_for() resumes exactly where the stream left off —
  /// a peer that stalls mid-message cannot turn a timeout into a late
  /// success or desynchronize the framing.
  Result<Bytes> recv_until(
      std::optional<std::chrono::steady_clock::time_point> deadline);

  // -1 once closed.  close() is called while another thread may be
  // blocked in recv()/send() (that is how a peer unsticks them), so the
  // handoff is atomic; the descriptor itself stays open until the
  // destructor (owned_fd_) so an in-flight syscall can never observe the
  // fd number reused.
  std::atomic<int> fd_;
  int owned_fd_;
  // Partial-frame reassembly state (valid across timed-out receives).
  Byte header_[4] = {0, 0, 0, 0};
  std::size_t header_fill_ = 0;
  Bytes payload_;
  std::size_t payload_fill_ = 0;
  bool in_payload_ = false;
};

class TcpListener final : public Listener {
 public:
  /// Bind and listen on 127.0.0.1:port; port 0 picks a free port.
  static Result<std::unique_ptr<TcpListener>> listen(std::uint16_t port);
  ~TcpListener() override;

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  Result<std::unique_ptr<Transport>> accept() override;
  void close() override;

  /// The actual bound port (useful with port 0).
  std::uint16_t port() const { return port_; }

 private:
  TcpListener(int fd, std::uint16_t port)
      : fd_(fd), owned_fd_(fd), port_(port) {}
  // close() races with a blocked accept() by design (it is how a serve
  // loop is shut down): the handoff is atomic, close() only shuts the
  // socket down (waking the accept with EINVAL), and the descriptor is
  // released by the destructor so the blocked accept can never see its
  // fd number reused.
  std::atomic<int> fd_;
  int owned_fd_;
  std::uint16_t port_;
};

}  // namespace prins
