#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/endian.h"

namespace prins {
namespace {

Status errno_status(const std::string& what) {
  return io_error(what + ": " + std::strerror(errno));
}

Status write_all(int fd, const Byte* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    ssize_t n = ::send(fd, data + done, len - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("send");
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

}  // namespace

TcpTransport::TcpTransport(int fd) : fd_(fd), owned_fd_(fd) {
  // Explicit socket semantics, identical for the blocking and reactor
  // variants: no Nagle delay on the small-delta replication traffic, and
  // address reuse so a restarted node can rebind its port immediately.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
}

TcpTransport::~TcpTransport() {
  close();
  if (owned_fd_ >= 0) ::close(owned_fd_);
}

Result<std::unique_ptr<Transport>> TcpTransport::connect(
    const std::string& host, std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string ip = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return invalid_argument("bad IPv4 address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    Status s = errno_status("connect " + ip + ":" + std::to_string(port));
    ::close(fd);
    return s;
  }
  return std::unique_ptr<Transport>(std::make_unique<TcpTransport>(fd));
}

Status TcpTransport::send(ByteSpan message) {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return unavailable("transport closed");
  if (message.size() > kMaxTcpMessageBytes) {
    return invalid_argument("message exceeds frame limit");
  }
  Byte header[4];
  store_le32(header, static_cast<std::uint32_t>(message.size()));
  PRINS_RETURN_IF_ERROR(write_all(fd, header, sizeof header));
  return write_all(fd, message.data(), message.size());
}

Status TcpTransport::send_vec(std::span<const ByteSpan> parts) {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return unavailable("transport closed");
  // writev() caps the iovec count; the engine sends 3 parts, so a small
  // fixed array (parts + length prefix) covers every caller.
  constexpr std::size_t kMaxParts = 15;
  if (parts.size() > kMaxParts) return Transport::send_vec(parts);
  std::size_t total = 0;
  for (const ByteSpan& part : parts) total += part.size();
  if (total > kMaxTcpMessageBytes) {
    return invalid_argument("message exceeds frame limit");
  }
  Byte header[4];
  store_le32(header, static_cast<std::uint32_t>(total));
  iovec iov[kMaxParts + 1];
  std::size_t iov_count = 0;
  iov[iov_count++] = {header, sizeof header};
  for (const ByteSpan& part : parts) {
    if (part.empty()) continue;
    iov[iov_count++] = {const_cast<Byte*>(part.data()), part.size()};
  }
  std::size_t remaining = sizeof header + total;
  std::size_t first = 0;
  while (remaining > 0) {
    ssize_t n = ::writev(fd, iov + first, static_cast<int>(iov_count - first));
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("writev");
    }
    remaining -= static_cast<std::size_t>(n);
    // Advance past fully-written iovecs; trim a partially-written one.
    auto done = static_cast<std::size_t>(n);
    while (first < iov_count && done >= iov[first].iov_len) {
      done -= iov[first].iov_len;
      ++first;
    }
    if (first < iov_count && done > 0) {
      iov[first].iov_base = static_cast<Byte*>(iov[first].iov_base) + done;
      iov[first].iov_len -= done;
    }
  }
  return Status::ok();
}

Result<Bytes> TcpTransport::recv() { return recv_until(std::nullopt); }

Result<Bytes> TcpTransport::recv_for(std::chrono::milliseconds timeout) {
  return recv_until(std::chrono::steady_clock::now() + timeout);
}

Result<Bytes> TcpTransport::recv_until(
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return unavailable("transport closed");
  for (;;) {
    // The deadline covers the *whole* frame, not just its first byte: a
    // peer that stalls mid-message surfaces as kTimeout, and the partial
    // frame stays parked in the reassembly members for the next call.
    if (deadline.has_value()) {
      // ceil, not cast: truncation would let poll wake a fraction of a
      // millisecond before the deadline and report a spurious timeout.
      const auto remaining = std::chrono::ceil<std::chrono::milliseconds>(
          *deadline - std::chrono::steady_clock::now());
      if (remaining.count() <= 0) return timeout_error("tcp recv timed out");
      pollfd pfd{fd, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
      if (rc < 0) {
        if (errno == EINTR) continue;  // re-derive the remaining budget
        return errno_status("poll");
      }
      if (rc == 0) return timeout_error("tcp recv timed out");
    }
    Byte* dst;
    std::size_t want;
    if (!in_payload_) {
      dst = header_ + header_fill_;
      want = sizeof header_ - header_fill_;
    } else {
      dst = payload_.data() + payload_fill_;
      want = payload_.size() - payload_fill_;
    }
    ssize_t n = 0;
    if (want > 0) {
      n = ::recv(fd, dst, want, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return errno_status("recv");
      }
      if (n == 0) {
        return (header_fill_ == 0 && !in_payload_)
                   ? unavailable("peer closed connection")
                   : corruption("peer closed mid-message");
      }
    }
    if (!in_payload_) {
      header_fill_ += static_cast<std::size_t>(n);
      if (header_fill_ < sizeof header_) continue;
      const std::uint32_t len = load_le32(header_);
      if (len > kMaxTcpMessageBytes) {
        return corruption("frame length " + std::to_string(len) +
                          " exceeds limit");
      }
      payload_.resize(len);
      payload_fill_ = 0;
      in_payload_ = true;
      if (len > 0) continue;
    } else {
      payload_fill_ += static_cast<std::size_t>(n);
      if (payload_fill_ < payload_.size()) continue;
    }
    Bytes message = std::move(payload_);
    payload_ = Bytes();
    payload_fill_ = 0;
    header_fill_ = 0;
    in_payload_ = false;
    return message;
  }
}

void TcpTransport::close() {
  // Shutdown only: a concurrent recv()/send() may be blocked inside a
  // syscall on this descriptor, and ::close()ing it here would let the fd
  // number be reused under them.  shutdown() wakes them with EOF; the
  // descriptor itself is released by the destructor.
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

std::string TcpTransport::describe() const { return "tcp"; }

Result<std::unique_ptr<TcpListener>> TcpListener::listen(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    Status s = errno_status("bind port " + std::to_string(port));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 16) != 0) {
    Status s = errno_status("listen");
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status s = errno_status("getsockname");
    ::close(fd);
    return s;
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(addr.sin_port)));
}

TcpListener::~TcpListener() {
  close();
  if (owned_fd_ >= 0) ::close(owned_fd_);
}

Result<std::unique_ptr<Transport>> TcpListener::accept() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return unavailable("listener closed");
  int client;
  for (;;) {
    client = ::accept(fd, nullptr, nullptr);
    if (client >= 0) break;
    // EINTR: a signal landed mid-accept.  ECONNABORTED: the peer gave up
    // while queued — neither says anything about the *next* connection.
    if (errno == EINTR || errno == ECONNABORTED) continue;
    if (errno == EINVAL || errno == EBADF) {
      return unavailable("listener closed");
    }
    return errno_status("accept");
  }
  return std::unique_ptr<Transport>(std::make_unique<TcpTransport>(client));
}

void TcpListener::close() {
  // Shutdown only (wakes a blocked accept() with EINVAL); the descriptor
  // is released by the destructor so the accept thread can never see its
  // fd number reused mid-call.
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

}  // namespace prins
