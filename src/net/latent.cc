#include "net/latent.h"

#include <condition_variable>
#include <deque>
#include <mutex>

#include "common/bytes.h"

namespace prins {
namespace {

using Clock = std::chrono::steady_clock;

/// One direction: a bounded queue whose entries become visible to the
/// receiver only at their delivery time.
struct LatentPipe {
  struct InFlight {
    Clock::time_point ready;
    Bytes data;
  };

  std::mutex mutex;
  std::condition_variable can_send;
  std::condition_variable can_recv;
  std::deque<InFlight> queue;
  std::chrono::microseconds delay;
  std::size_t capacity;
  bool closed = false;

  LatentPipe(std::chrono::microseconds d, std::size_t cap)
      : delay(d), capacity(cap) {}

  Status push(ByteSpan message) {
    std::unique_lock lock(mutex);
    can_send.wait(lock, [&] { return closed || queue.size() < capacity; });
    if (closed) return unavailable("latent peer closed");
    queue.push_back(InFlight{Clock::now() + delay,
                             Bytes(message.begin(), message.end())});
    can_recv.notify_one();
    return Status::ok();
  }

  Status push_vec(std::span<const ByteSpan> parts) {
    std::size_t total = 0;
    for (const ByteSpan& part : parts) total += part.size();
    std::unique_lock lock(mutex);
    can_send.wait(lock, [&] { return closed || queue.size() < capacity; });
    if (closed) return unavailable("latent peer closed");
    InFlight& entry = queue.emplace_back();
    entry.ready = Clock::now() + delay;
    entry.data.reserve(total);
    for (const ByteSpan& part : parts) append(entry.data, part);
    can_recv.notify_one();
    return Status::ok();
  }

  Result<Bytes> pop() {
    std::unique_lock lock(mutex);
    for (;;) {
      if (!queue.empty()) {
        const Clock::time_point ready = queue.front().ready;
        if (Clock::now() >= ready) break;
        // Wait until the head is deliverable (or something changes).
        can_recv.wait_until(lock, ready);
        continue;
      }
      if (closed) return unavailable("latent channel closed");
      can_recv.wait(lock);
    }
    Bytes message = std::move(queue.front().data);
    queue.pop_front();
    can_send.notify_one();
    return message;
  }

  Result<Bytes> pop_for(std::chrono::milliseconds timeout) {
    const Clock::time_point deadline = Clock::now() + timeout;
    std::unique_lock lock(mutex);
    for (;;) {
      if (!queue.empty()) {
        const Clock::time_point ready = queue.front().ready;
        if (Clock::now() >= ready) break;
        if (ready > deadline) return timeout_error("latent recv timed out");
        can_recv.wait_until(lock, ready);
        continue;
      }
      if (closed) return unavailable("latent channel closed");
      if (can_recv.wait_until(lock, deadline) == std::cv_status::timeout &&
          queue.empty()) {
        return timeout_error("latent recv timed out");
      }
    }
    Bytes message = std::move(queue.front().data);
    queue.pop_front();
    can_send.notify_one();
    return message;
  }

  void close() {
    std::lock_guard lock(mutex);
    closed = true;
    can_send.notify_all();
    can_recv.notify_all();
  }
};

class LatentTransport final : public Transport {
 public:
  LatentTransport(std::shared_ptr<LatentPipe> out,
                  std::shared_ptr<LatentPipe> in)
      : out_(std::move(out)), in_(std::move(in)) {}
  ~LatentTransport() override { close(); }

  Status send(ByteSpan message) override { return out_->push(message); }
  Status send_vec(std::span<const ByteSpan> parts) override {
    return out_->push_vec(parts);
  }
  Result<Bytes> recv() override { return in_->pop(); }
  Result<Bytes> recv_for(std::chrono::milliseconds timeout) override {
    return in_->pop_for(timeout);
  }
  void close() override {
    out_->close();
    in_->close();
  }
  std::string describe() const override { return "latent-inproc"; }

 private:
  std::shared_ptr<LatentPipe> out_;
  std::shared_ptr<LatentPipe> in_;
};

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_latent_pair(std::chrono::microseconds one_way_delay,
                 std::size_t capacity) {
  auto a_to_b = std::make_shared<LatentPipe>(one_way_delay, capacity);
  auto b_to_a = std::make_shared<LatentPipe>(one_way_delay, capacity);
  return {std::make_unique<LatentTransport>(a_to_b, b_to_a),
          std::make_unique<LatentTransport>(b_to_a, a_to_b)};
}

}  // namespace prins
