// ReactorTcpTransport / ReactorListener: nonblocking sockets multiplexed on
// a Reactor, behind the blocking Transport API.
//
// Where TcpTransport parks a kernel thread in recv() per link, every
// reactor connection is a small state machine driven by epoll readiness:
//
//   read side   incremental frame reassembly (4-byte length prefix, then
//               payload) across however many readiness events it takes;
//               completed messages land in a bounded inbox
//   write side  send() enqueues an owned frame and opportunistically
//               flushes; what the socket won't take is resumed by the loop
//               on EPOLLOUT via writev across the queued frames
//
// The blocking Transport API is a compatibility shim over that machine:
// recv()/recv_for() pop the inbox (recv_for arms its deadline on the
// reactor's timer wheel, not a per-thread timed wait), and send() blocks
// only when the outbox is over its byte limit (flow control).  PrinsEngine,
// ReplicaEngine, the iSCSI target, and the faulty/latent/shaped decorators
// run unmodified on top.
//
// Server fan-in can skip the shim: set_message_handler() delivers each
// completed message on the loop thread instead of the inbox, so one
// reactor thread can serve hundreds of connections with no thread per
// link (backpressure pauses reading while the outbox is over its limit).
// Handlers must not block; send() from a handler never blocks.
//
// Wire format and frame limit are identical to TcpTransport — the two ends
// of a connection may freely mix blocking and reactor transports.
#pragma once

#include <cstdint>
#include <memory>

#include "net/reactor.h"
#include "net/transport.h"

namespace prins {

struct ReactorTcpOptions {
  /// Completed messages the inbox buffers before the connection stops
  /// reading (resumes when recv() drains below half).
  std::size_t inbox_capacity = 1024;
  /// Outbox bytes above which send() blocks off-loop callers.
  std::size_t outbox_limit_bytes = 4u << 20;
  /// Test knobs: socket buffer sizes (0 = OS default).  A tiny SO_SNDBUF
  /// forces partial writes, exercising the resume path.
  int sndbuf_bytes = 0;
  int rcvbuf_bytes = 0;
};

class ReactorTcpTransport final : public Transport {
 public:
  /// Connect to host:port and register the connection on `reactor`.
  static Result<std::unique_ptr<Transport>> connect(
      std::shared_ptr<Reactor> reactor, const std::string& host,
      std::uint16_t port, const ReactorTcpOptions& options = {});

  /// Adopt an already-connected socket (the listener's accept path).
  static Result<std::unique_ptr<Transport>> adopt(
      std::shared_ptr<Reactor> reactor, int fd,
      const ReactorTcpOptions& options = {});

  ~ReactorTcpTransport() override;

  ReactorTcpTransport(const ReactorTcpTransport&) = delete;
  ReactorTcpTransport& operator=(const ReactorTcpTransport&) = delete;

  Status send(ByteSpan message) override;
  Status send_vec(std::span<const ByteSpan> parts) override;
  Result<Bytes> recv() override;
  Result<Bytes> recv_for(std::chrono::milliseconds timeout) override;
  void close() override;
  std::string describe() const override;

  /// Async delivery: run `handler` on the loop thread for every completed
  /// message instead of queueing to the inbox (any queued backlog is
  /// delivered first).  Set before mixing with recv(); passing nullptr
  /// restores inbox delivery.
  void set_message_handler(std::function<void(Bytes&&)> handler);

  /// One-shot notification when the connection dies (peer hangup, I/O
  /// error, frame corruption, or close()).  Runs on the loop thread via
  /// post(), after the handler that observed the failure returns; the
  /// callback is consumed on first fire.  If the connection is already
  /// closed when this is installed, the callback fires immediately (still
  /// via post()).  Servers use this to drop per-connection state.
  void set_close_handler(std::function<void(const Status&)> handler);

  /// Application-level read gate, independent of the inbox/outbox
  /// backpressure flags: while paused, the loop stops reading from the
  /// socket (and so stops invoking the message handler), letting a server
  /// bound the frames in flight per connection.  Safe from any thread.
  void set_read_paused(bool paused);

  /// Bytes currently queued for the wire (tests / backpressure probes).
  std::size_t outbox_bytes() const;

 private:
  struct Conn;
  explicit ReactorTcpTransport(std::shared_ptr<Conn> conn);

  std::shared_ptr<Conn> conn_;
};

class ReactorListener final : public Listener {
 public:
  /// Bind 127.0.0.1:port (0 picks a free port) and accept on `pool`'s
  /// first reactor; connections are placed round-robin across the pool.
  static Result<std::unique_ptr<ReactorListener>> listen(
      std::shared_ptr<ReactorPool> pool, std::uint16_t port,
      const ReactorTcpOptions& options = {});

  ~ReactorListener() override;

  ReactorListener(const ReactorListener&) = delete;
  ReactorListener& operator=(const ReactorListener&) = delete;

  Result<std::unique_ptr<Transport>> accept() override;
  void close() override;

  /// Thread-free accept: run `handler` on the accept loop's thread for
  /// every new connection instead of queueing it for accept().  Any
  /// already-queued connections are handed to the handler first (on the
  /// loop thread, in arrival order).  Passing nullptr restores queueing.
  void set_accept_handler(
      std::function<void(std::unique_ptr<Transport>)> handler);

  std::uint16_t port() const;

 private:
  struct State;
  explicit ReactorListener(std::shared_ptr<State> state);

  std::shared_ptr<State> state_;
};

}  // namespace prins
