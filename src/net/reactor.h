// Reactor: an epoll event loop with a hashed timer wheel and an eventfd
// wakeup, the event-driven substrate under ReactorTcpTransport.
//
// One reactor thread multiplexes any number of nonblocking sockets where
// the blocking transports cost two dedicated threads per link.  The loop
// sleeps in epoll_wait until a registered fd becomes ready, a timer on the
// wheel comes due, or another thread posts a closure; fd callbacks, timer
// callbacks, and posted closures all run on the loop thread, so
// per-connection state machines need no locking of their own.
//
// The TimerWheel is the deadline substrate: replica-link retry backoff,
// reconnect schedules, and recv_for deadlines all become wheel entries
// instead of per-thread timed sleeps (see RetryPolicy and
// ReactorTcpTransport::recv_for).  It is a classic hashed wheel — O(1)
// schedule and cancel, slots of `tick` granularity, entries beyond the
// horizon carry a round count — driven by advance() from the loop.
//
// A ReactorPool shards connections across N single-threaded reactors
// (round-robin) for multi-core scaling; each connection lives on exactly
// one reactor, so the no-locking property holds per connection.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace prins {

using TimerId = std::uint64_t;

/// Hashed timing wheel.  Not thread-safe on its own; the Reactor guards it
/// and drives advance() from the loop thread.  Usable standalone (and unit
/// tested) with a caller-supplied clock value.
class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;

  explicit TimerWheel(Clock::duration tick = std::chrono::milliseconds(1),
                      std::size_t slots = 256);

  /// Schedule `callback` to fire once `deadline` is reached (a deadline in
  /// the past fires on the next advance()).  Returns a handle for cancel().
  TimerId schedule_at(Clock::time_point deadline, std::function<void()> cb);
  TimerId schedule_in(Clock::duration delay, std::function<void()> cb) {
    return schedule_at(Clock::now() + delay, std::move(cb));
  }

  /// Remove a pending timer.  False if it already fired or was cancelled.
  bool cancel(TimerId id);

  /// Earliest pending deadline (the epoll_wait sleep bound).
  std::optional<Clock::time_point> next_deadline() const;

  /// Move callbacks of every entry with deadline <= now into `due`, in
  /// deadline order.  Returns the number collected.  The caller runs them
  /// outside any lock so callbacks may re-enter the wheel.
  std::size_t collect_due(Clock::time_point now,
                          std::vector<std::function<void()>>& due);

  std::size_t pending() const { return by_id_.size(); }

 private:
  struct Entry {
    TimerId id;
    Clock::time_point deadline;
    std::uint64_t rounds;  // full wheel revolutions still to wait
    std::function<void()> cb;
  };
  using Slot = std::list<Entry>;

  std::uint64_t tick_of(Clock::time_point t) const {
    return static_cast<std::uint64_t>((t - origin_) / tick_);
  }

  Clock::duration tick_;
  Clock::time_point origin_;
  std::uint64_t cursor_;  // next tick collect_due() will examine
  std::vector<Slot> slots_;
  std::unordered_map<TimerId, Slot::iterator> by_id_;
  std::multiset<Clock::time_point> deadlines_;  // for next_deadline()
  TimerId next_id_ = 1;
};

/// The event loop.  create() spawns the loop thread; the destructor stops
/// and joins it.  All callbacks run on the loop thread.  Always owned by a
/// shared_ptr (create() returns one): connections keep their reactor alive
/// through it, so teardown order cannot dangle the loop.
class Reactor : public std::enable_shared_from_this<Reactor> {
 public:
  using Clock = TimerWheel::Clock;
  using FdCallback = std::function<void(std::uint32_t epoll_events)>;

  static Result<std::shared_ptr<Reactor>> create();
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Register `fd` (level-triggered) with the loop; `cb` runs on the loop
  /// thread with the ready events.  The fd must stay open until remove_fd.
  Status add_fd(int fd, std::uint32_t events, FdCallback cb);

  /// Change the interest set of a registered fd.  Callable from any thread
  /// (epoll_ctl is thread-safe); the new mask applies to the next wait.
  Status mod_fd(int fd, std::uint32_t events);

  /// Drop a registered fd from the loop.  The caller still owns the fd.
  /// Safe from any thread; from off-loop threads the callback may be
  /// mid-dispatch, so close the fd via post() if the loop could touch it.
  void remove_fd(int fd);

  /// Schedule a callback on the timer wheel.  Thread-safe.
  TimerId add_timer_at(Clock::time_point deadline, std::function<void()> cb);
  TimerId add_timer(Clock::duration delay, std::function<void()> cb) {
    return add_timer_at(Clock::now() + delay, std::move(cb));
  }
  /// False if the timer already fired (its callback ran or is running).
  bool cancel_timer(TimerId id);

  /// Run a closure on the loop thread as soon as possible.  Thread-safe.
  void post(std::function<void()> fn);

  bool on_loop_thread() const {
    return std::this_thread::get_id() == loop_thread_.get_id();
  }

  /// Timers currently pending on the wheel (tests / introspection).
  std::size_t pending_timers() const;

 private:
  Reactor(int epoll_fd, int wake_fd);
  void run();
  void wake();

  int epoll_fd_;
  int wake_fd_;  // eventfd: other threads nudge epoll_wait
  std::atomic<bool> stopping_{false};

  mutable std::mutex mutex_;  // guards wheel_, posted_, handlers_
  TimerWheel wheel_;
  std::deque<std::function<void()>> posted_;
  // shared_ptr so a handler stays alive across a dispatch that races a
  // remove_fd from another thread.
  std::unordered_map<int, std::shared_ptr<FdCallback>> handlers_;

  std::thread loop_thread_;
};

/// N independent reactors; connections are placed round-robin.
class ReactorPool {
 public:
  /// `threads` == 0 resolves from PRINS_REACTOR_THREADS (default 1).
  static Result<std::shared_ptr<ReactorPool>> create(std::size_t threads = 0);

  Reactor& next() {
    return *reactors_[fetch_next() % reactors_.size()];
  }
  std::size_t size() const { return reactors_.size(); }
  Reactor& at(std::size_t i) { return *reactors_[i]; }

 private:
  explicit ReactorPool(std::vector<std::shared_ptr<Reactor>> reactors)
      : reactors_(std::move(reactors)) {}
  std::size_t fetch_next() {
    return next_.fetch_add(1, std::memory_order_relaxed);
  }

  std::vector<std::shared_ptr<Reactor>> reactors_;
  std::atomic<std::size_t> next_{0};
};

/// PRINS_REACTOR=1|on|true selects the reactor transport in the examples,
/// tools, and benches that honor it (the library itself takes explicit
/// constructor arguments).
bool reactor_enabled_from_env();

/// PRINS_REACTOR_THREADS (clamped to [1, 64]); 1 when unset.
std::size_t reactor_threads_from_env();

}  // namespace prins
