// Latent in-process transport pair: messages arrive `one_way_delay` after
// they are sent, without blocking the sender.
//
// Unlike ShapedTransport (which models *serialization* time by blocking
// the sender), this models *propagation* latency: the sender streams
// ahead while messages are in flight.  It is the fabric that makes the
// engine's pipeline window observable — with stop-and-wait every write
// pays a full round trip; with a window of W the round trip amortizes
// over W messages (see bench/ablation_pipeline).
#pragma once

#include <chrono>
#include <memory>
#include <utility>

#include "net/transport.h"

namespace prins {

/// Create a connected pair whose messages are delivered `one_way_delay`
/// after send() returns.  `capacity` bounds each direction.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_latent_pair(std::chrono::microseconds one_way_delay,
                 std::size_t capacity = 1024);

}  // namespace prins
