// TrafficMeter: transport decorator that accounts every byte on the wire.
//
// This is the measurement instrument behind Figures 4-7: it records message
// counts, payload bytes, and wire bytes under the paper's packetization
// model (1500-byte packets + 112-byte headers).  Thread-safe.
#pragma once

#include <memory>
#include <mutex>

#include "common/histogram.h"
#include "net/packet_model.h"
#include "net/transport.h"

namespace prins {

struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t payload_bytes = 0;  // framed message bytes handed to send()
  std::uint64_t packets = 0;        // per the packet model
  std::uint64_t wire_bytes = 0;     // payload + packet headers

  void add_message(std::uint64_t size) {
    messages += 1;
    payload_bytes += size;
    packets += packets_for(size);
    wire_bytes += wire_bytes_for(size);
  }
  void merge(const TrafficStats& o) {
    messages += o.messages;
    payload_bytes += o.payload_bytes;
    packets += o.packets;
    wire_bytes += o.wire_bytes;
  }
};

class TrafficMeter final : public Transport {
 public:
  explicit TrafficMeter(std::unique_ptr<Transport> inner)
      : inner_(std::move(inner)) {}

  Status send(ByteSpan message) override {
    Status s = inner_->send(message);
    if (s.is_ok()) account_sent(message.size());
    return s;
  }

  Status send_vec(std::span<const ByteSpan> parts) override {
    std::size_t total = 0;
    for (const ByteSpan& part : parts) total += part.size();
    Status s = inner_->send_vec(parts);
    if (s.is_ok()) account_sent(total);
    return s;
  }

  Result<Bytes> recv() override {
    auto r = inner_->recv();
    if (r.is_ok()) {
      std::lock_guard lock(mutex_);
      received_.add_message(r.value().size());
    }
    return r;
  }

  Result<Bytes> recv_for(std::chrono::milliseconds timeout) override {
    auto r = inner_->recv_for(timeout);
    if (r.is_ok()) {
      std::lock_guard lock(mutex_);
      received_.add_message(r.value().size());
    }
    return r;
  }

  void close() override { inner_->close(); }
  std::string describe() const override {
    return "metered(" + inner_->describe() + ")";
  }

  TrafficStats sent() const {
    std::lock_guard lock(mutex_);
    return sent_;
  }
  TrafficStats received() const {
    std::lock_guard lock(mutex_);
    return received_;
  }
  /// Distribution of sent message sizes (drives queueing service times).
  Histogram sent_sizes() const {
    std::lock_guard lock(mutex_);
    return message_sizes_;
  }
  void reset() {
    std::lock_guard lock(mutex_);
    sent_ = TrafficStats{};
    received_ = TrafficStats{};
    message_sizes_.reset();
  }

 private:
  void account_sent(std::size_t size) {
    std::lock_guard lock(mutex_);
    sent_.add_message(size);
    message_sizes_.record(size);
  }

  std::unique_ptr<Transport> inner_;
  mutable std::mutex mutex_;
  TrafficStats sent_;
  TrafficStats received_;
  Histogram message_sizes_;
};

}  // namespace prins
