#include "net/faulty.h"

#include <thread>

namespace prins {

FaultyTransport::FaultyTransport(std::unique_ptr<Transport> inner,
                                 FaultConfig config)
    : inner_(std::move(inner)), config_(config), rng_(config.seed) {}

Status FaultyTransport::send(ByteSpan message) {
  const ByteSpan parts[] = {message};
  return send_parts(parts);
}

Status FaultyTransport::send_vec(std::span<const ByteSpan> parts) {
  return send_parts(parts);
}

Status FaultyTransport::send_parts(std::span<const ByteSpan> parts) {
  enum class Fault { kNone, kDrop, kCorrupt, kDuplicate };
  Fault fault = Fault::kNone;
  std::chrono::milliseconds stall{0};
  {
    std::lock_guard lock(mutex_);
    if (disconnected_) return unavailable("faulty transport disconnected");
    stats_.sent += 1;
    if (config_.disconnect_after > 0 &&
        stats_.sent > config_.disconnect_after) {
      disconnected_ = true;
      stats_.disconnects += 1;
      inner_->close();
      return unavailable("faulty transport: link cut");
    }
    if (rng_.next_bool(config_.stall_p)) {
      stats_.stalled += 1;
      stall = config_.stall;
    }
    if (rng_.next_bool(config_.drop_p)) {
      fault = Fault::kDrop;
      stats_.dropped += 1;
    } else if (rng_.next_bool(config_.corrupt_p)) {
      fault = Fault::kCorrupt;
      stats_.corrupted += 1;
    } else if (rng_.next_bool(config_.duplicate_p)) {
      fault = Fault::kDuplicate;
      stats_.duplicated += 1;
    }
  }
  if (stall.count() > 0) std::this_thread::sleep_for(stall);

  switch (fault) {
    case Fault::kDrop:
      // The link ate it; the sender sees success and waits in vain.
      return Status::ok();
    case Fault::kCorrupt: {
      // Corruption needs a mutable copy anyway, so concatenate the parts.
      Bytes copy;
      std::size_t total = 0;
      for (const ByteSpan& part : parts) total += part.size();
      copy.reserve(total);
      for (const ByteSpan& part : parts) append(copy, part);
      if (!copy.empty()) {
        std::uint64_t bit;
        {
          std::lock_guard lock(mutex_);
          bit = rng_.next_below(copy.size() * 8);
        }
        copy[bit / 8] ^= static_cast<Byte>(1u << (bit % 8));
      }
      std::lock_guard lock(mutex_);
      stats_.delivered += 1;
      return inner_->send(copy);
    }
    case Fault::kDuplicate: {
      std::lock_guard lock(mutex_);
      PRINS_RETURN_IF_ERROR(inner_->send_vec(parts));
      stats_.delivered += 2;
      return inner_->send_vec(parts);
    }
    case Fault::kNone:
      break;
  }
  std::lock_guard lock(mutex_);
  stats_.delivered += 1;
  return inner_->send_vec(parts);
}

Result<Bytes> FaultyTransport::recv() {
  Transport* inner;
  {
    std::lock_guard lock(mutex_);
    if (disconnected_) return unavailable("faulty transport disconnected");
    inner = inner_.get();
  }
  return inner->recv();
}

Result<Bytes> FaultyTransport::recv_for(std::chrono::milliseconds timeout) {
  Transport* inner;
  {
    std::lock_guard lock(mutex_);
    if (disconnected_) return unavailable("faulty transport disconnected");
    inner = inner_.get();
  }
  return inner->recv_for(timeout);
}

void FaultyTransport::close() {
  std::lock_guard lock(mutex_);
  inner_->close();
}

std::string FaultyTransport::describe() const {
  std::lock_guard lock(mutex_);
  return "faulty(" + inner_->describe() + ")";
}

Transport* FaultyTransport::underlying() {
  std::lock_guard lock(mutex_);
  return inner_->underlying();
}

void FaultyTransport::set_disconnected(bool disconnected) {
  std::lock_guard lock(mutex_);
  if (disconnected && !disconnected_) {
    stats_.disconnects += 1;
    inner_->close();
  }
  disconnected_ = disconnected;
}

bool FaultyTransport::is_disconnected() const {
  std::lock_guard lock(mutex_);
  return disconnected_;
}

void FaultyTransport::reconnect_with(std::unique_ptr<Transport> inner) {
  std::lock_guard lock(mutex_);
  inner_ = std::move(inner);
  disconnected_ = false;
}

FaultStats FaultyTransport::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

FaultyListener::FaultyListener(std::unique_ptr<Listener> inner,
                               FaultConfig config)
    : inner_(std::move(inner)), config_(config) {}

Result<std::unique_ptr<Transport>> FaultyListener::accept() {
  PRINS_ASSIGN_OR_RETURN(std::unique_ptr<Transport> t, inner_->accept());
  FaultConfig per_conn = config_;
  per_conn.seed = config_.seed + accepted_;
  accepted_ += 1;
  return std::unique_ptr<Transport>(
      std::make_unique<FaultyTransport>(std::move(t), per_conn));
}

void FaultyListener::close() { inner_->close(); }

}  // namespace prins
