#include "net/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/env.h"
#include "common/logging.h"

namespace prins {

// ---- TimerWheel ------------------------------------------------------------

TimerWheel::TimerWheel(Clock::duration tick, std::size_t slots)
    : tick_(tick),
      origin_(Clock::now()),
      cursor_(0),
      slots_(std::max<std::size_t>(slots, 2)) {}

TimerId TimerWheel::schedule_at(Clock::time_point deadline,
                                std::function<void()> cb) {
  // A deadline at or before the cursor's tick lands in the cursor slot with
  // zero rounds, so the next collect_due() fires it.
  const std::uint64_t tick = std::max(tick_of(deadline), cursor_);
  const std::uint64_t delta = tick - cursor_;
  Slot& slot = slots_[tick % slots_.size()];
  const TimerId id = next_id_++;
  slot.push_back(Entry{id, deadline, delta / slots_.size(), std::move(cb)});
  by_id_.emplace(id, std::prev(slot.end()));
  deadlines_.insert(deadline);
  return id;
}

bool TimerWheel::cancel(TimerId id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return false;
  const Slot::iterator entry = it->second;
  deadlines_.erase(deadlines_.find(entry->deadline));
  slots_[tick_of(entry->deadline) % slots_.size()].erase(entry);
  by_id_.erase(it);
  return true;
}

std::optional<TimerWheel::Clock::time_point> TimerWheel::next_deadline()
    const {
  if (deadlines_.empty()) return std::nullopt;
  return *deadlines_.begin();
}

std::size_t TimerWheel::collect_due(Clock::time_point now,
                                    std::vector<std::function<void()>>& due) {
  const std::uint64_t now_tick = tick_of(now);
  // Walk the wheel from the cursor up to the current tick.  The walk is
  // bounded by how long the wheel slept, which the reactor in turn bounds
  // by the earliest pending deadline; an empty wheel snaps the cursor.
  std::vector<Entry> fired;
  while (cursor_ <= now_tick && !by_id_.empty()) {
    Slot& slot = slots_[cursor_ % slots_.size()];
    for (auto it = slot.begin(); it != slot.end();) {
      if (it->rounds > 0) {
        it->rounds -= 1;
        ++it;
        continue;
      }
      deadlines_.erase(deadlines_.find(it->deadline));
      by_id_.erase(it->id);
      fired.push_back(std::move(*it));
      it = slot.erase(it);
    }
    ++cursor_;
  }
  if (by_id_.empty()) cursor_ = std::max(cursor_, now_tick + 1);
  // Same-slot entries can be collected out of deadline order (sub-tick
  // spacing); deliver strictly ordered anyway — the due list per advance is
  // tiny, so the sort is noise.
  std::stable_sort(fired.begin(), fired.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.deadline < b.deadline;
                   });
  for (Entry& e : fired) due.push_back(std::move(e.cb));
  return fired.size();
}

// ---- Reactor ---------------------------------------------------------------

Result<std::shared_ptr<Reactor>> Reactor::create() {
  const int ep = ::epoll_create1(EPOLL_CLOEXEC);
  if (ep < 0) {
    return io_error(std::string("epoll_create1: ") + std::strerror(errno));
  }
  const int wake = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake < 0) {
    Status s = io_error(std::string("eventfd: ") + std::strerror(errno));
    ::close(ep);
    return s;
  }
  // The final reference is often dropped ON the loop thread: a posted
  // teardown closure holding the last connection, whose Conn holds the
  // last reactor reference, is destroyed by run() itself.  The destructor
  // joins the loop, so destruction must hop to a helper thread in that
  // case; joining from anywhere else stays synchronous.
  std::shared_ptr<Reactor> r(new Reactor(ep, wake), [](Reactor* self) {
    if (self->on_loop_thread()) {
      std::thread([self] { delete self; }).detach();
    } else {
      delete self;
    }
  });
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake;
  if (::epoll_ctl(ep, EPOLL_CTL_ADD, wake, &ev) != 0) {
    Status s = io_error(std::string("epoll_ctl(wakeup): ") +
                        std::strerror(errno));
    return s;  // ~Reactor closes both fds and joins the (unstarted) thread
  }
  r->loop_thread_ = std::thread([raw = r.get()] { raw->run(); });
  return r;
}

Reactor::Reactor(int epoll_fd, int wake_fd)
    : epoll_fd_(epoll_fd), wake_fd_(wake_fd) {}

Reactor::~Reactor() {
  stopping_.store(true, std::memory_order_release);
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void Reactor::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

Status Reactor::add_fd(int fd, std::uint32_t events, FdCallback cb) {
  {
    std::lock_guard lock(mutex_);
    handlers_[fd] = std::make_shared<FdCallback>(std::move(cb));
  }
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    Status s = io_error(std::string("epoll_ctl(add): ") +
                        std::strerror(errno));
    std::lock_guard lock(mutex_);
    handlers_.erase(fd);
    return s;
  }
  return Status::ok();
}

Status Reactor::mod_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return io_error(std::string("epoll_ctl(mod): ") + std::strerror(errno));
  }
  return Status::ok();
}

void Reactor::remove_fd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  std::lock_guard lock(mutex_);
  handlers_.erase(fd);
}

TimerId Reactor::add_timer_at(Clock::time_point deadline,
                              std::function<void()> cb) {
  TimerId id;
  bool new_front = false;
  {
    std::lock_guard lock(mutex_);
    const auto prev = wheel_.next_deadline();
    id = wheel_.schedule_at(deadline, std::move(cb));
    new_front = !prev.has_value() || deadline < *prev;
  }
  // Only a new earliest deadline shortens the epoll sleep.
  if (new_front && !on_loop_thread()) wake();
  return id;
}

bool Reactor::cancel_timer(TimerId id) {
  std::lock_guard lock(mutex_);
  return wheel_.cancel(id);
}

void Reactor::post(std::function<void()> fn) {
  {
    std::lock_guard lock(mutex_);
    posted_.push_back(std::move(fn));
  }
  if (!on_loop_thread()) wake();
}

std::size_t Reactor::pending_timers() const {
  std::lock_guard lock(mutex_);
  return wheel_.pending();
}

void Reactor::run() {
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  std::vector<std::function<void()>> due;
  for (;;) {
    // Sleep until the next timer deadline (or forever with none pending);
    // posted closures and new front timers nudge the eventfd.
    int timeout_ms = -1;
    {
      std::lock_guard lock(mutex_);
      if (!posted_.empty()) {
        timeout_ms = 0;
      } else if (const auto next = wheel_.next_deadline()) {
        const auto wait = *next - Clock::now();
        const auto ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(wait)
                .count();
        // Round up so we never spin a whole tick early at 0ms.
        timeout_ms = wait.count() <= 0 ? 0 : static_cast<int>(ms) + 1;
      }
    }
    if (stopping_.load(std::memory_order_acquire)) return;

    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0 && errno != EINTR) {
      PRINS_LOG(kError) << "reactor epoll_wait: " << std::strerror(errno);
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) return;

    for (int i = 0; i < std::max(n, 0); ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof drain) > 0) {
        }
        continue;
      }
      std::shared_ptr<FdCallback> handler;
      {
        std::lock_guard lock(mutex_);
        auto it = handlers_.find(fd);
        if (it != handlers_.end()) handler = it->second;
      }
      if (handler) (*handler)(events[i].events);
    }

    // Posted closures, then due timers — both collected under the lock and
    // run outside it so they may add fds, timers, or more posts.
    std::deque<std::function<void()>> run_now;
    due.clear();
    {
      std::lock_guard lock(mutex_);
      run_now.swap(posted_);
      wheel_.collect_due(Clock::now(), due);
    }
    for (auto& fn : run_now) fn();
    for (auto& fn : due) fn();
  }
}

// ---- ReactorPool -----------------------------------------------------------

Result<std::shared_ptr<ReactorPool>> ReactorPool::create(std::size_t threads) {
  if (threads == 0) threads = reactor_threads_from_env();
  threads = std::clamp<std::size_t>(threads, 1, 64);
  std::vector<std::shared_ptr<Reactor>> reactors;
  reactors.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    PRINS_ASSIGN_OR_RETURN(auto r, Reactor::create());
    reactors.push_back(std::move(r));
  }
  return std::shared_ptr<ReactorPool>(new ReactorPool(std::move(reactors)));
}

bool reactor_enabled_from_env() {
  const char* env = std::getenv("PRINS_REACTOR");
  if (env == nullptr) return false;
  const std::string v(env);
  return v == "1" || v == "on" || v == "true" || v == "yes";
}

std::size_t reactor_threads_from_env() {
  return parse_env_size("PRINS_REACTOR_THREADS", 1, 64).value_or(1);
}

}  // namespace prins
