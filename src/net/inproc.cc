#include "net/inproc.h"

#include <condition_variable>
#include <deque>

namespace prins {
namespace {

/// One direction of a connected pair: a bounded MPSC byte-message queue.
struct Pipe {
  std::mutex mutex;
  std::condition_variable can_send;
  std::condition_variable can_recv;
  std::deque<Bytes> queue;
  std::size_t capacity;
  bool closed = false;

  explicit Pipe(std::size_t cap) : capacity(cap) {}

  Status push(ByteSpan message) {
    std::unique_lock lock(mutex);
    can_send.wait(lock, [&] { return closed || queue.size() < capacity; });
    if (closed) return unavailable("inproc peer closed");
    queue.emplace_back(message.begin(), message.end());
    can_recv.notify_one();
    return Status::ok();
  }

  // Scatter-gather push: assemble the queued message directly from the
  // parts, so the sender never builds a contiguous copy of its own.
  Status push_vec(std::span<const ByteSpan> parts) {
    std::size_t total = 0;
    for (const ByteSpan& part : parts) total += part.size();
    std::unique_lock lock(mutex);
    can_send.wait(lock, [&] { return closed || queue.size() < capacity; });
    if (closed) return unavailable("inproc peer closed");
    Bytes& msg = queue.emplace_back();
    msg.reserve(total);
    for (const ByteSpan& part : parts) append(msg, part);
    can_recv.notify_one();
    return Status::ok();
  }

  Result<Bytes> pop() {
    std::unique_lock lock(mutex);
    can_recv.wait(lock, [&] { return closed || !queue.empty(); });
    return pop_locked();
  }

  Result<Bytes> pop_for(std::chrono::milliseconds timeout) {
    std::unique_lock lock(mutex);
    if (!can_recv.wait_for(lock, timeout,
                           [&] { return closed || !queue.empty(); })) {
      return timeout_error("inproc recv timed out");
    }
    return pop_locked();
  }

  Result<Bytes> pop_locked() {
    if (queue.empty()) return unavailable("inproc channel closed");
    Bytes msg = std::move(queue.front());
    queue.pop_front();
    can_send.notify_one();
    return msg;
  }

  void close() {
    std::lock_guard lock(mutex);
    closed = true;
    can_send.notify_all();
    can_recv.notify_all();
  }
};

class InprocTransport final : public Transport {
 public:
  InprocTransport(std::shared_ptr<Pipe> out, std::shared_ptr<Pipe> in)
      : out_(std::move(out)), in_(std::move(in)) {}
  ~InprocTransport() override { close(); }

  Status send(ByteSpan message) override { return out_->push(message); }
  Status send_vec(std::span<const ByteSpan> parts) override {
    return out_->push_vec(parts);
  }
  Result<Bytes> recv() override { return in_->pop(); }
  Result<Bytes> recv_for(std::chrono::milliseconds timeout) override {
    return in_->pop_for(timeout);
  }

  void close() override {
    out_->close();
    in_->close();
  }

  std::string describe() const override { return "inproc"; }

 private:
  std::shared_ptr<Pipe> out_;
  std::shared_ptr<Pipe> in_;
};

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_inproc_pair(std::size_t capacity) {
  auto a_to_b = std::make_shared<Pipe>(capacity);
  auto b_to_a = std::make_shared<Pipe>(capacity);
  return {std::make_unique<InprocTransport>(a_to_b, b_to_a),
          std::make_unique<InprocTransport>(b_to_a, a_to_b)};
}

// ---- named rendezvous ------------------------------------------------------

struct InprocNetwork::ListenerState {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::unique_ptr<Transport>> pending;  // server ends
  bool closed = false;
};

namespace {

class InprocListener final : public Listener {
 public:
  explicit InprocListener(std::shared_ptr<InprocNetwork::ListenerState> state)
      : state_(std::move(state)) {}
  ~InprocListener() override { close(); }

  Result<std::unique_ptr<Transport>> accept() override {
    std::unique_lock lock(state_->mutex);
    state_->cv.wait(lock,
                    [&] { return state_->closed || !state_->pending.empty(); });
    if (state_->pending.empty()) {
      return unavailable("inproc listener closed");
    }
    auto t = std::move(state_->pending.front());
    state_->pending.pop_front();
    return t;
  }

  void close() override {
    std::lock_guard lock(state_->mutex);
    state_->closed = true;
    state_->cv.notify_all();
  }

 private:
  std::shared_ptr<InprocNetwork::ListenerState> state_;
};

}  // namespace

Result<std::unique_ptr<Listener>> InprocNetwork::listen(
    const std::string& address) {
  std::lock_guard lock(mutex_);
  auto [it, inserted] =
      listeners_.try_emplace(address, std::make_shared<ListenerState>());
  if (!inserted && !it->second->closed) {
    return already_exists("inproc address in use: " + address);
  }
  if (!inserted) {
    it->second = std::make_shared<ListenerState>();  // replace a closed one
  }
  return std::unique_ptr<Listener>(
      std::make_unique<InprocListener>(it->second));
}

Result<std::unique_ptr<Transport>> InprocNetwork::connect(
    const std::string& address) {
  std::shared_ptr<ListenerState> state;
  {
    std::lock_guard lock(mutex_);
    auto it = listeners_.find(address);
    if (it == listeners_.end()) {
      return not_found("no inproc listener at: " + address);
    }
    state = it->second;
  }
  auto [client_end, server_end] = make_inproc_pair();
  {
    std::lock_guard lock(state->mutex);
    if (state->closed) {
      return unavailable("inproc listener closed: " + address);
    }
    state->pending.push_back(std::move(server_end));
    state->cv.notify_one();
  }
  return client_end;
}

}  // namespace prins
