// ShapedTransport: a WAN emulator for a message transport.
//
// Delays each send() by the paper's link model — transmission time of the
// packetized payload at the line rate, plus per-hop propagation — so the
// response-time predictions of the queueing figures can be checked
// empirically against the real engine stack (see bench/fig8_empirical).
//
// `bandwidth_scale` speeds up the emulated line (delays divide by it) so
// experiments finish quickly while preserving the traditional/PRINS
// delay *ratios* exactly.
#pragma once

#include <chrono>
#include <memory>
#include <thread>

#include "net/packet_model.h"
#include "net/transport.h"
#include "queueing/wan.h"

namespace prins {

struct ShapingConfig {
  WanLine line = kT1;
  unsigned hops = 2;               // routers in the path (propagation each)
  double bandwidth_scale = 1.0;    // >1: emulate a proportionally faster line
};

class ShapedTransport final : public Transport {
 public:
  ShapedTransport(std::unique_ptr<Transport> inner, ShapingConfig config)
      : inner_(std::move(inner)), config_(config) {}

  Status send(ByteSpan message) override {
    delay_for(message.size());
    return inner_->send(message);
  }

  Status send_vec(std::span<const ByteSpan> parts) override {
    std::size_t total = 0;
    for (const ByteSpan& part : parts) total += part.size();
    delay_for(total);
    return inner_->send_vec(parts);
  }

  Result<Bytes> recv() override { return inner_->recv(); }
  Result<Bytes> recv_for(std::chrono::milliseconds timeout) override {
    return inner_->recv_for(timeout);
  }
  void close() override { inner_->close(); }
  std::string describe() const override {
    return "shaped[" + std::string(config_.line.name) + "](" +
           inner_->describe() + ")";
  }
  Transport* underlying() override { return inner_->underlying(); }

 private:
  // Serialization + per-hop propagation, scaled.
  void delay_for(std::size_t message_size) {
    const double seconds =
        (transmission_delay_sec(message_size, config_.line) +
         config_.hops * kPropagationDelaySec) /
        config_.bandwidth_scale;
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }

  std::unique_ptr<Transport> inner_;
  ShapingConfig config_;
};

}  // namespace prins
