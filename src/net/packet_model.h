// The paper's packetization model (§3.3).
//
// Every replicated payload is fragmented into Ethernet packets of 1500-byte
// payload (the paper's "1.5 Kbytes"), each carrying 112 bytes of
// Ethernet+IP+TCP headers.  Wire bytes = payload + packets * 112.  This is
// the cost model behind both the measured traffic figures and the queueing
// model's transmission delay Dtrans = (Sd + Sd/1.5 * 0.112) / Net_BW.
#pragma once

#include <cstdint>

namespace prins {

constexpr std::uint64_t kPacketPayloadBytes = 1500;
constexpr std::uint64_t kPacketHeaderBytes = 112;

/// Number of packets needed for a payload of `payload_bytes`.
constexpr std::uint64_t packets_for(std::uint64_t payload_bytes) {
  if (payload_bytes == 0) return 0;
  return (payload_bytes + kPacketPayloadBytes - 1) / kPacketPayloadBytes;
}

/// Total bytes on the wire including per-packet headers.
constexpr std::uint64_t wire_bytes_for(std::uint64_t payload_bytes) {
  return payload_bytes + packets_for(payload_bytes) * kPacketHeaderBytes;
}

}  // namespace prins
