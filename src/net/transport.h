// Transport: reliable, ordered, message-framed duplex channel.
//
// The PRINS engine and the iSCSI layer exchange whole messages (PDUs,
// replication frames); the transport owns framing and blocking delivery.
// Two implementations: InprocTransport (deterministic, for tests and
// single-process experiments) and TcpTransport (real sockets, for the
// remote-mirroring example).  recv() blocks until a message arrives or the
// peer closes (kUnavailable).
#pragma once

#include <chrono>
#include <memory>
#include <span>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace prins {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Deliver one message to the peer.  Blocks only on flow control.
  virtual Status send(ByteSpan message) = 0;

  /// Deliver one message given as scattered parts (header / payload /
  /// trailer), logically equal to send() of their concatenation.  The
  /// default concatenates; inproc/tcp/latent/faulty/shaped override it to
  /// move the parts straight onto the wire, so callers can frame a message
  /// without assembling a contiguous copy per link.
  virtual Status send_vec(std::span<const ByteSpan> parts) {
    std::size_t total = 0;
    for (const ByteSpan& part : parts) total += part.size();
    Bytes whole;
    whole.reserve(total);
    for (const ByteSpan& part : parts) append(whole, part);
    return send(whole);
  }

  /// Receive the next message; blocks.  kUnavailable once the peer has
  /// closed and all queued messages are drained.
  virtual Result<Bytes> recv() = 0;

  /// Receive with a deadline: like recv(), but fails with kTimeout once
  /// `timeout` elapses with no message (the channel stays usable — the
  /// message may still arrive on a later call).  This is what lets the
  /// engine's retry path detect a dropped message instead of hanging.
  /// Implementations that cannot honor deadlines fall back to a blocking
  /// recv(); the in-proc, latent, TCP, and decorator transports all honor
  /// them.
  virtual Result<Bytes> recv_for(std::chrono::milliseconds timeout) {
    (void)timeout;
    return recv();
  }

  /// Close this end; wakes any blocked recv() on both sides.
  virtual void close() = 0;

  virtual std::string describe() const = 0;

  /// The innermost transport this one delivers through.  Decorators
  /// (faulty, latent, shaped) override to return their inner transport's
  /// underlying(); base transports return themselves.  Lets reactor-aware
  /// code (ReactorReplicaServer, the engine's reactor senders) find the
  /// ReactorTcpTransport inside a decorator stack and register loop-thread
  /// handlers on it, so fault injection composes with the reactor path.
  virtual Transport* underlying() { return this; }
};

class Listener {
 public:
  virtual ~Listener() = default;

  /// Block until a peer connects; kUnavailable when the listener is closed.
  virtual Result<std::unique_ptr<Transport>> accept() = 0;

  virtual void close() = 0;
};

}  // namespace prins
