// In-process transport: two ends joined by bounded message queues.
//
// Deterministic and fast; the default fabric for experiments (the measured
// quantity — bytes per replicated write — is transport-independent).  Also
// provides a named rendezvous (InprocNetwork) so multi-node simulations can
// wire themselves up like processes finding each other by address.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "net/transport.h"

namespace prins {

/// Create a connected pair of transports.  Each end's send feeds the other
/// end's recv.  `capacity` bounds each direction's queue (back-pressure).
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_inproc_pair(std::size_t capacity = 1024);

/// Named in-process rendezvous: listeners register under a string address;
/// connect() blocks until the listener accepts.
class InprocNetwork {
 public:
  struct ListenerState;  // shared between the network and its listeners

  /// Open a listener on `address`; kAlreadyExists if one is registered.
  Result<std::unique_ptr<Listener>> listen(const std::string& address);

  /// Connect to a registered listener; kNotFound if none.
  Result<std::unique_ptr<Transport>> connect(const std::string& address);

 private:
  std::mutex mutex_;
  std::map<std::string, std::shared_ptr<ListenerState>> listeners_;
};

}  // namespace prins
