#include "net/reactor_tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>

#include "common/endian.h"
#include "common/logging.h"
#include "net/tcp.h"  // kMaxTcpMessageBytes: the shared frame limit

namespace prins {
namespace {

Status errno_status(const std::string& what) {
  return io_error(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void apply_socket_options(int fd, const ReactorTcpOptions& options) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (options.sndbuf_bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options.sndbuf_bytes,
                 sizeof options.sndbuf_bytes);
  }
  if (options.rcvbuf_bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &options.rcvbuf_bytes,
                 sizeof options.rcvbuf_bytes);
  }
}

}  // namespace

// ---- per-connection state machine ------------------------------------------

struct ReactorTcpTransport::Conn : std::enable_shared_from_this<Conn> {
  Conn(std::shared_ptr<Reactor> r, int fd_in, const ReactorTcpOptions& opts)
      : reactor(std::move(r)), fd(fd_in), options(opts) {}

  ~Conn() {
    if (fd >= 0) ::close(fd);
  }

  std::shared_ptr<Reactor> reactor;
  int fd;
  const ReactorTcpOptions options;

  std::mutex mutex;
  std::condition_variable can_recv;
  std::condition_variable can_send;

  // Read-side state machine: header, then payload, across any number of
  // readiness events.
  Byte header[4] = {0, 0, 0, 0};
  std::size_t header_fill = 0;
  Bytes payload;  // sized once the header completes
  std::size_t payload_fill = 0;
  bool in_payload = false;

  std::deque<Bytes> inbox;
  std::function<void(Bytes&&)> handler;  // non-null: bypass the inbox
  std::function<void(const Status&)> close_handler;  // one-shot, via post()
  bool paused_inbox = false;             // inbox at capacity
  bool paused_outbox = false;            // handler mode: outbox over limit
  bool paused_user = false;              // set_read_paused() gate

  // Write-side state machine: owned frames; the head may be partially on
  // the wire (out_off bytes of it already written).
  std::deque<Bytes> outq;
  std::size_t out_off = 0;
  std::size_t out_bytes = 0;
  bool write_armed = false;

  bool closed = false;     // state machine halted (EOF, error, or close())
  bool removed = false;    // fd dropped from the epoll set
  Status error;            // why, when not a clean close
  bool eof_mid_frame = false;

  // ---- helpers; all called with `mutex` held --------------------------------

  std::uint32_t interest() const {
    std::uint32_t events = 0;
    if (!paused_inbox && !paused_outbox && !paused_user) events |= EPOLLIN;
    if (write_armed) events |= EPOLLOUT;
    return events;
  }

  void update_interest() {
    if (closed || fd < 0) return;
    (void)reactor->mod_fd(fd, interest());
  }

  /// Halt the machine and wake every waiter.  Idempotent.
  void fail_locked(Status why, bool mid_frame) {
    if (closed) return;
    closed = true;
    if (error.is_ok()) error = std::move(why);
    eof_mid_frame = mid_frame;
    outq.clear();
    out_bytes = 0;
    can_recv.notify_all();
    can_send.notify_all();
    fire_close_handler_locked();
    schedule_remove();
  }

  /// Consume and post the close handler, if installed.  `mutex` held.
  void fire_close_handler_locked() {
    if (!close_handler) return;
    reactor->post(
        [cb = std::move(close_handler), status = error]() { cb(status); });
    close_handler = nullptr;
  }

  /// Drop the fd from the loop on the loop thread (dispatch for this fd
  /// may be in flight right now; posted closures run after it).
  void schedule_remove() {
    if (removed) return;
    removed = true;
    reactor->post([self = shared_from_this()] {
      std::lock_guard lock(self->mutex);
      if (self->fd >= 0) {
        self->reactor->remove_fd(self->fd);
        ::close(self->fd);
        self->fd = -1;
      }
    });
  }

  /// Flush the outbox with writev until EAGAIN or empty; arms/disarms
  /// EPOLLOUT to match.  Any thread, `mutex` held.
  void flush_locked() {
    constexpr std::size_t kMaxIov = 16;
    while (!outq.empty() && !closed && fd >= 0) {
      iovec iov[kMaxIov];
      std::size_t iov_count = 0;
      std::size_t offset = out_off;
      for (const Bytes& frame : outq) {
        if (iov_count == kMaxIov) break;
        iov[iov_count].iov_base =
            const_cast<Byte*>(frame.data()) + offset;
        iov[iov_count].iov_len = frame.size() - offset;
        ++iov_count;
        offset = 0;
      }
      const ssize_t n = ::writev(fd, iov, static_cast<int>(iov_count));
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        fail_locked(errno_status("writev"), false);
        return;
      }
      // Advance the queue past what the kernel took; the head frame
      // resumes from out_off on the next readiness event.
      std::size_t done = static_cast<std::size_t>(n);
      out_bytes -= done;
      while (done > 0 && !outq.empty()) {
        const std::size_t head_left = outq.front().size() - out_off;
        if (done >= head_left) {
          done -= head_left;
          out_off = 0;
          outq.pop_front();
        } else {
          out_off += done;
          done = 0;
        }
      }
    }
    const bool want_write = !outq.empty() && !closed;
    const bool resume_reads =
        paused_outbox && out_bytes <= options.outbox_limit_bytes / 2;
    if (resume_reads) paused_outbox = false;
    if (want_write != write_armed || resume_reads) {
      write_armed = want_write;
      update_interest();
    }
    if (out_bytes < options.outbox_limit_bytes) can_send.notify_all();
  }

  /// One completed inbound frame.  Called with `mutex` held; may drop the
  /// lock to run a handler.
  void deliver_locked(std::unique_lock<std::mutex>& lock, Bytes&& message) {
    if (handler) {
      auto h = handler;  // survives a concurrent set_message_handler
      lock.unlock();
      h(std::move(message));
      lock.lock();
      // Handler sends queue without blocking; pause reading while the
      // outbox is over its limit so a slow peer backpressures us.
      if (out_bytes > options.outbox_limit_bytes && !paused_outbox) {
        paused_outbox = true;
        update_interest();
      }
      return;
    }
    inbox.push_back(std::move(message));
    if (inbox.size() >= options.inbox_capacity && !paused_inbox) {
      paused_inbox = true;
      update_interest();
    }
    can_recv.notify_one();
  }

  /// Read-side pump: loop thread only.
  void on_readable(std::unique_lock<std::mutex>& lock) {
    // Fairness budget: with level-triggered epoll, anything unread is
    // reported again, so cap the work one connection does per wake.
    std::size_t budget = 1u << 20;
    while (!closed && !paused_inbox && !paused_outbox && !paused_user &&
           budget > 0) {
      Byte* dst;
      std::size_t want;
      if (!in_payload) {
        dst = header + header_fill;
        want = sizeof header - header_fill;
      } else {
        dst = payload.data() + payload_fill;
        want = payload.size() - payload_fill;
      }
      ssize_t n = 0;
      if (want > 0) {
        n = ::recv(fd, dst, std::min(want, budget), 0);
        if (n < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) return;
          fail_locked(errno_status("recv"), false);
          return;
        }
        if (n == 0) {
          const bool mid = header_fill > 0 || in_payload;
          fail_locked(mid ? corruption("peer closed mid-message")
                          : unavailable("peer closed connection"),
                      mid);
          return;
        }
        budget -= static_cast<std::size_t>(n);
      }
      if (!in_payload) {
        header_fill += static_cast<std::size_t>(n);
        if (header_fill < sizeof header) continue;
        const std::uint32_t len = load_le32(header);
        if (len > kMaxTcpMessageBytes) {
          fail_locked(corruption("frame length " + std::to_string(len) +
                                 " exceeds limit"),
                      true);
          return;
        }
        payload.resize(len);
        payload_fill = 0;
        in_payload = true;
        if (len > 0) continue;  // read the payload next
      } else {
        payload_fill += static_cast<std::size_t>(n);
        if (payload_fill < payload.size()) continue;
      }
      // Frame complete: reset the machine, hand the message off.
      Bytes message = std::move(payload);
      payload = Bytes();
      payload_fill = 0;
      header_fill = 0;
      in_payload = false;
      deliver_locked(lock, std::move(message));
    }
  }

  /// epoll dispatch: loop thread only.
  void on_events(std::uint32_t events) {
    std::unique_lock lock(mutex);
    if (fd < 0) return;
    if (events & EPOLLOUT) flush_locked();
    if (events & (EPOLLIN | EPOLLHUP | EPOLLERR)) on_readable(lock);
  }

  /// Enqueue one framed message; blocks off-loop callers on flow control.
  Status enqueue(std::span<const ByteSpan> parts) {
    std::size_t total = 0;
    for (const ByteSpan& part : parts) total += part.size();
    if (total > kMaxTcpMessageBytes) {
      return invalid_argument("message exceeds frame limit");
    }
    Bytes frame;
    frame.reserve(sizeof header + total);
    Byte prefix[4];
    store_le32(prefix, static_cast<std::uint32_t>(total));
    append(frame, ByteSpan(prefix));
    for (const ByteSpan& part : parts) append(frame, part);

    std::unique_lock lock(mutex);
    if (!reactor->on_loop_thread()) {
      can_send.wait(lock, [this] {
        return closed || out_bytes < options.outbox_limit_bytes;
      });
    }
    if (closed) {
      return error.is_ok() ? unavailable("transport closed") : error;
    }
    out_bytes += frame.size();
    outq.push_back(std::move(frame));
    flush_locked();
    return Status::ok();
  }

  Result<Bytes> take() {  // `mutex` held
    Bytes message = std::move(inbox.front());
    inbox.pop_front();
    if (paused_inbox && inbox.size() <= options.inbox_capacity / 2) {
      paused_inbox = false;
      update_interest();
    }
    return message;
  }

  Result<Bytes> drained_status() const {
    if (eof_mid_frame || error.code() == ErrorCode::kCorruption) return error;
    return error.is_ok() ? unavailable("transport closed") : error;
  }
};

// ---- ReactorTcpTransport ---------------------------------------------------

ReactorTcpTransport::ReactorTcpTransport(std::shared_ptr<Conn> conn)
    : conn_(std::move(conn)) {}

ReactorTcpTransport::~ReactorTcpTransport() { close(); }

Result<std::unique_ptr<Transport>> ReactorTcpTransport::adopt(
    std::shared_ptr<Reactor> reactor, int fd,
    const ReactorTcpOptions& options) {
  set_nonblocking(fd);
  apply_socket_options(fd, options);
  auto conn = std::make_shared<Conn>(std::move(reactor), fd, options);
  const Status added = conn->reactor->add_fd(
      fd, conn->interest(),
      [conn](std::uint32_t events) { conn->on_events(events); });
  if (!added.is_ok()) {
    return added;  // conn's destructor closes the fd
  }
  return std::unique_ptr<Transport>(
      new ReactorTcpTransport(std::move(conn)));
}

Result<std::unique_ptr<Transport>> ReactorTcpTransport::connect(
    std::shared_ptr<Reactor> reactor, const std::string& host,
    std::uint16_t port, const ReactorTcpOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return errno_status("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string ip = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return invalid_argument("bad IPv4 address: " + host);
  }
  // Blocking connect (same semantics as TcpTransport::connect), then the
  // established socket goes nonblocking onto the loop.
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    Status s = errno_status("connect " + ip + ":" + std::to_string(port));
    ::close(fd);
    return s;
  }
  return adopt(std::move(reactor), fd, options);
}

Status ReactorTcpTransport::send(ByteSpan message) {
  const ByteSpan parts[] = {message};
  return conn_->enqueue(parts);
}

Status ReactorTcpTransport::send_vec(std::span<const ByteSpan> parts) {
  return conn_->enqueue(parts);
}

Result<Bytes> ReactorTcpTransport::recv() {
  std::unique_lock lock(conn_->mutex);
  conn_->can_recv.wait(
      lock, [this] { return !conn_->inbox.empty() || conn_->closed; });
  if (!conn_->inbox.empty()) return conn_->take();
  return conn_->drained_status();
}

Result<Bytes> ReactorTcpTransport::recv_for(std::chrono::milliseconds timeout) {
  // The deadline is a reactor timer, not a per-thread timed wait: one
  // wheel entry wakes this cv if the frame has not completed in time.
  auto expired = std::make_shared<std::atomic<bool>>(false);
  const TimerId id = conn_->reactor->add_timer(
      timeout, [expired, conn = conn_] {
        expired->store(true, std::memory_order_release);
        std::lock_guard lock(conn->mutex);
        conn->can_recv.notify_all();
      });
  std::unique_lock lock(conn_->mutex);
  conn_->can_recv.wait(lock, [&] {
    return !conn_->inbox.empty() || conn_->closed ||
           expired->load(std::memory_order_acquire);
  });
  if (!conn_->inbox.empty()) {
    auto message = conn_->take();
    lock.unlock();
    conn_->reactor->cancel_timer(id);
    return message;
  }
  if (conn_->closed) {
    auto status = conn_->drained_status();
    lock.unlock();
    conn_->reactor->cancel_timer(id);
    return status;
  }
  return timeout_error("reactor-tcp recv timed out");
}

void ReactorTcpTransport::close() {
  std::lock_guard lock(conn_->mutex);
  if (conn_->fd >= 0) ::shutdown(conn_->fd, SHUT_RDWR);
  conn_->fail_locked(unavailable("transport closed"), false);
}

std::string ReactorTcpTransport::describe() const { return "reactor-tcp"; }

void ReactorTcpTransport::set_message_handler(
    std::function<void(Bytes&&)> handler) {
  std::deque<Bytes> backlog;
  {
    std::lock_guard lock(conn_->mutex);
    conn_->handler = std::move(handler);
    if (conn_->handler) backlog.swap(conn_->inbox);
    if (conn_->paused_inbox && conn_->inbox.empty()) {
      conn_->paused_inbox = false;
      conn_->update_interest();
    }
  }
  if (backlog.empty()) return;
  // Deliver the queued backlog on the loop thread, preserving order with
  // frames the loop completes next.
  conn_->reactor->post([conn = conn_, backlog = std::move(backlog)]() mutable {
    for (Bytes& message : backlog) {
      std::unique_lock lock(conn->mutex);
      if (!conn->handler) {
        conn->inbox.push_back(std::move(message));
        conn->can_recv.notify_one();
        continue;
      }
      conn->deliver_locked(lock, std::move(message));
    }
  });
}

void ReactorTcpTransport::set_close_handler(
    std::function<void(const Status&)> handler) {
  std::lock_guard lock(conn_->mutex);
  conn_->close_handler = std::move(handler);
  if (conn_->closed) conn_->fire_close_handler_locked();
}

void ReactorTcpTransport::set_read_paused(bool paused) {
  std::lock_guard lock(conn_->mutex);
  if (conn_->paused_user == paused) return;
  conn_->paused_user = paused;
  conn_->update_interest();
}

std::size_t ReactorTcpTransport::outbox_bytes() const {
  std::lock_guard lock(conn_->mutex);
  return conn_->out_bytes;
}

// ---- ReactorListener -------------------------------------------------------

struct ReactorListener::State : std::enable_shared_from_this<State> {
  State(std::shared_ptr<ReactorPool> p, int fd_in, std::uint16_t port_in,
        const ReactorTcpOptions& opts)
      : pool(std::move(p)), fd(fd_in), port(port_in), options(opts) {}

  ~State() {
    if (fd >= 0) ::close(fd);
  }

  std::shared_ptr<ReactorPool> pool;
  int fd;
  const std::uint16_t port;
  const ReactorTcpOptions options;

  std::mutex mutex;
  std::condition_variable can_accept;
  std::deque<std::unique_ptr<Transport>> pending;
  std::function<void(std::unique_ptr<Transport>)> accept_handler;
  bool drain_scheduled = false;  // posted backlog drain in flight
  bool closed = false;
  bool removed = false;

  /// Accept-readiness pump: loop thread of pool->at(0).
  void on_acceptable() {
    for (;;) {
      const int client =
          ::accept4(fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (client < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        PRINS_LOG(kWarn) << "reactor accept: " << std::strerror(errno);
        return;
      }
      auto transport = ReactorTcpTransport::adopt(
          pool->next().shared_from_this(), client, options);
      if (!transport.is_ok()) {
        PRINS_LOG(kWarn) << "reactor adopt: "
                         << transport.status().to_string();
        continue;
      }
      std::unique_lock lock(mutex);
      if (closed) return;  // racing close(): drop the connection
      if (accept_handler && pending.empty() && !drain_scheduled) {
        auto h = accept_handler;
        lock.unlock();
        h(std::move(*transport));
        continue;
      }
      // No handler, or a backlog drain is still queued: keep arrival order
      // by routing through `pending`.
      pending.push_back(std::move(*transport));
      if (accept_handler) {
        schedule_drain_locked();
      } else {
        can_accept.notify_one();
      }
    }
  }

  /// Queue a one-shot drain of `pending` into the accept handler on the
  /// accept loop's thread.  `mutex` held.
  void schedule_drain_locked() {
    if (drain_scheduled) return;
    drain_scheduled = true;
    pool->at(0).shared_from_this()->post(
        [self = shared_from_this()] { self->drain_pending(); });
  }

  /// Hand queued connections to the accept handler, oldest first.
  void drain_pending() {
    for (;;) {
      std::unique_lock lock(mutex);
      if (pending.empty() || !accept_handler || closed) {
        drain_scheduled = false;
        return;
      }
      auto h = accept_handler;
      auto t = std::move(pending.front());
      pending.pop_front();
      lock.unlock();
      h(std::move(t));
    }
  }
};

ReactorListener::ReactorListener(std::shared_ptr<State> state)
    : state_(std::move(state)) {}

ReactorListener::~ReactorListener() { close(); }

Result<std::unique_ptr<ReactorListener>> ReactorListener::listen(
    std::shared_ptr<ReactorPool> pool, std::uint16_t port,
    const ReactorTcpOptions& options) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return errno_status("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    Status s = errno_status("bind port " + std::to_string(port));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 256) != 0) {
    Status s = errno_status("listen");
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status s = errno_status("getsockname");
    ::close(fd);
    return s;
  }
  auto state = std::make_shared<State>(std::move(pool), fd,
                                       ntohs(addr.sin_port), options);
  const Status added = state->pool->at(0).shared_from_this()->add_fd(
      fd, EPOLLIN, [state](std::uint32_t) { state->on_acceptable(); });
  if (!added.is_ok()) return added;
  return std::unique_ptr<ReactorListener>(
      new ReactorListener(std::move(state)));
}

Result<std::unique_ptr<Transport>> ReactorListener::accept() {
  std::unique_lock lock(state_->mutex);
  state_->can_accept.wait(
      lock, [this] { return !state_->pending.empty() || state_->closed; });
  if (!state_->pending.empty()) {
    auto t = std::move(state_->pending.front());
    state_->pending.pop_front();
    return t;
  }
  return unavailable("listener closed");
}

void ReactorListener::close() {
  std::lock_guard lock(state_->mutex);
  if (state_->closed) return;
  state_->closed = true;
  state_->pending.clear();
  state_->can_accept.notify_all();
  if (!state_->removed) {
    state_->removed = true;
    state_->pool->at(0).shared_from_this()->post(
        [state = state_]() {
          std::lock_guard lock(state->mutex);
          if (state->fd >= 0) {
            state->pool->at(0).shared_from_this()->remove_fd(state->fd);
            ::close(state->fd);
            state->fd = -1;
          }
        });
  }
}

void ReactorListener::set_accept_handler(
    std::function<void(std::unique_ptr<Transport>)> handler) {
  std::lock_guard lock(state_->mutex);
  state_->accept_handler = std::move(handler);
  if (state_->accept_handler && !state_->pending.empty()) {
    state_->schedule_drain_locked();
  }
}

std::uint16_t ReactorListener::port() const { return state_->port; }

}  // namespace prins
