// TrafficMeter is header-only; this TU anchors the target.
#include "net/traffic_meter.h"
