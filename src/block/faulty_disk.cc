#include "block/faulty_disk.h"

#include <algorithm>
#include <string>

namespace prins {

FaultyDisk::FaultyDisk(std::shared_ptr<BlockDevice> inner, Config config)
    : inner_(std::move(inner)), config_(config), rng_(config.seed) {}

Status FaultyDisk::maybe_fault(bool is_read) {
  ++ops_;
  if (ops_ >= fail_at_) dead_ = true;
  if (ops_ >= crash_at_ && crash_at_ != ~0ull) {
    crash_at_ = ~0ull;
    dead_ = true;
    if (!is_read) crash_tear_ = true;  // the fatal write persists a prefix
  }
  if (dead_ && !crash_tear_) return io_error("disk is dead");
  const double p = is_read ? config_.read_error_p : config_.write_error_p;
  if (p > 0 && rng_.next_bool(p)) {
    return io_error(is_read ? "injected read error" : "injected write error");
  }
  if (is_read && config_.corrupt_p > 0 && rng_.next_bool(config_.corrupt_p)) {
    corrupt_next_read_ = true;
  }
  return Status::ok();
}

Status FaultyDisk::tear_locked(Lba lba, ByteSpan data, std::size_t keep) {
  const std::uint32_t bs = inner_->block_size();
  const std::size_t full = keep / bs;
  const std::size_t part = keep % bs;
  ++torn_;
  if (full > 0) {
    PRINS_RETURN_IF_ERROR(inner_->write(lba, data.first(full * bs)));
  }
  if (part > 0) {
    Bytes block(bs);
    PRINS_RETURN_IF_ERROR(inner_->read(lba + full, block));
    std::copy(data.begin() + full * bs, data.begin() + keep, block.begin());
    PRINS_RETURN_IF_ERROR(inner_->write(lba + full, block));
  }
  return Status::ok();
}

Status FaultyDisk::read(Lba lba, MutByteSpan out) {
  std::lock_guard lock(mutex_);
  PRINS_RETURN_IF_ERROR(maybe_fault(/*is_read=*/true));
  if (!bad_blocks_.empty() && !out.empty()) {
    const Lba end = lba + out.size() / inner_->block_size();
    auto it = bad_blocks_.lower_bound(lba);
    if (it != bad_blocks_.end() && *it < end) {
      return corruption_error("medium error at block " + std::to_string(*it));
    }
  }
  PRINS_RETURN_IF_ERROR(inner_->read(lba, out));
  if (corrupt_next_read_ && !out.empty()) {
    corrupt_next_read_ = false;
    const std::size_t idx = rng_.next_below(out.size());
    out[idx] ^= 0xFF;  // silent single-byte flip
    if (config_.corrupt_persistent) {
      const std::uint32_t bs = inner_->block_size();
      const std::size_t blk = idx / bs;
      PRINS_RETURN_IF_ERROR(
          inner_->write(lba + blk, ByteSpan(out).subspan(blk * bs, bs)));
    }
  }
  return Status::ok();
}

Status FaultyDisk::write(Lba lba, ByteSpan data) {
  std::lock_guard lock(mutex_);
  PRINS_RETURN_IF_ERROR(maybe_fault(/*is_read=*/false));
  if (crash_tear_) {
    crash_tear_ = false;
    if (data.size() > 1) {
      (void)tear_locked(lba, data, 1 + rng_.next_below(data.size() - 1));
    }
    return io_error("disk crashed mid-write");
  }
  if (config_.torn_write_p > 0 && data.size() > 1 &&
      rng_.next_bool(config_.torn_write_p)) {
    return tear_locked(lba, data, 1 + rng_.next_below(data.size() - 1));
  }
  PRINS_RETURN_IF_ERROR(inner_->write(lba, data));
  if (!bad_blocks_.empty()) {
    const Lba end = lba + data.size() / inner_->block_size();
    bad_blocks_.erase(bad_blocks_.lower_bound(lba),
                      bad_blocks_.lower_bound(end));
  }
  return Status::ok();
}

Status FaultyDisk::flush() {
  std::lock_guard lock(mutex_);
  if (dead_) return io_error("disk is dead");
  return inner_->flush();
}

std::string FaultyDisk::describe() const {
  return "faulty(" + inner_->describe() + ")";
}

void FaultyDisk::fail_after(std::uint64_t ops) {
  std::lock_guard lock(mutex_);
  fail_at_ = ops_ + ops;
}

void FaultyDisk::crash_after(std::uint64_t ops) {
  std::lock_guard lock(mutex_);
  crash_at_ = ops_ + ops;
}

void FaultyDisk::reconfigure(const Config& config) {
  std::lock_guard lock(mutex_);
  config_ = config;
}

void FaultyDisk::set_dead(bool dead) {
  std::lock_guard lock(mutex_);
  dead_ = dead;
  if (!dead) {
    fail_at_ = ~0ull;
    crash_at_ = ~0ull;
    crash_tear_ = false;
  }
}

bool FaultyDisk::is_dead() const {
  std::lock_guard lock(mutex_);
  return dead_;
}

Status FaultyDisk::corrupt_block(Lba lba, std::size_t offset) {
  std::lock_guard lock(mutex_);
  const std::uint32_t bs = inner_->block_size();
  if (lba >= inner_->num_blocks() || offset >= bs) {
    return out_of_range("corrupt_block target outside device");
  }
  Bytes block(bs);
  PRINS_RETURN_IF_ERROR(inner_->read(lba, block));
  block[offset] ^= 0xFF;
  return inner_->write(lba, block);
}

void FaultyDisk::mark_bad(Lba lba) {
  std::lock_guard lock(mutex_);
  bad_blocks_.insert(lba);
}

std::uint64_t FaultyDisk::ops_seen() const {
  std::lock_guard lock(mutex_);
  return ops_;
}

std::uint64_t FaultyDisk::torn_writes() const {
  std::lock_guard lock(mutex_);
  return torn_;
}

}  // namespace prins
