#include "block/faulty_disk.h"

namespace prins {

FaultyDisk::FaultyDisk(std::shared_ptr<BlockDevice> inner, Config config)
    : inner_(std::move(inner)), config_(config), rng_(config.seed) {}

Status FaultyDisk::maybe_fault(bool is_read) {
  ++ops_;
  if (ops_ >= fail_at_) dead_ = true;
  if (dead_) return io_error("disk is dead");
  const double p = is_read ? config_.read_error_p : config_.write_error_p;
  if (p > 0 && rng_.next_bool(p)) {
    return io_error(is_read ? "injected read error" : "injected write error");
  }
  if (is_read && config_.corrupt_p > 0 && rng_.next_bool(config_.corrupt_p)) {
    corrupt_next_read_ = true;
  }
  return Status::ok();
}

Status FaultyDisk::read(Lba lba, MutByteSpan out) {
  std::lock_guard lock(mutex_);
  PRINS_RETURN_IF_ERROR(maybe_fault(/*is_read=*/true));
  PRINS_RETURN_IF_ERROR(inner_->read(lba, out));
  if (corrupt_next_read_ && !out.empty()) {
    corrupt_next_read_ = false;
    out[rng_.next_below(out.size())] ^= 0xFF;  // silent single-byte flip
  }
  return Status::ok();
}

Status FaultyDisk::write(Lba lba, ByteSpan data) {
  std::lock_guard lock(mutex_);
  PRINS_RETURN_IF_ERROR(maybe_fault(/*is_read=*/false));
  return inner_->write(lba, data);
}

Status FaultyDisk::flush() {
  std::lock_guard lock(mutex_);
  if (dead_) return io_error("disk is dead");
  return inner_->flush();
}

std::string FaultyDisk::describe() const {
  return "faulty(" + inner_->describe() + ")";
}

void FaultyDisk::fail_after(std::uint64_t ops) {
  std::lock_guard lock(mutex_);
  fail_at_ = ops_ + ops;
}

void FaultyDisk::set_dead(bool dead) {
  std::lock_guard lock(mutex_);
  dead_ = dead;
  if (!dead) fail_at_ = ~0ull;
}

bool FaultyDisk::is_dead() const {
  std::lock_guard lock(mutex_);
  return dead_;
}

std::uint64_t FaultyDisk::ops_seen() const {
  std::lock_guard lock(mutex_);
  return ops_;
}

}  // namespace prins
