#include "block/snapshot_disk.h"

#include <cstring>

namespace prins {

Status SnapshotDisk::read(Lba lba, MutByteSpan out) {
  return inner_->read(lba, out);
}

Status SnapshotDisk::write(Lba lba, ByteSpan data) {
  PRINS_RETURN_IF_ERROR(check_io(lba, data.size()));
  const std::uint32_t bs = block_size();
  const std::uint64_t blocks = data.size() / bs;
  {
    std::lock_guard lock(mutex_);
    for (std::uint64_t i = 0; i < blocks; ++i) {
      const Lba b = lba + i;
      if (undo_.contains(b)) continue;
      Bytes original(bs);
      PRINS_RETURN_IF_ERROR(inner_->read(b, original));
      undo_.emplace(b, std::move(original));
    }
  }
  return inner_->write(lba, data);
}

std::string SnapshotDisk::describe() const {
  return "snapshot(" + inner_->describe() + ")";
}

Status SnapshotDisk::read_original(Lba lba, MutByteSpan out) {
  PRINS_RETURN_IF_ERROR(check_io(lba, out.size()));
  if (out.size() != block_size()) {
    return invalid_argument("read_original reads exactly one block");
  }
  {
    std::lock_guard lock(mutex_);
    auto it = undo_.find(lba);
    if (it != undo_.end()) {
      std::memcpy(out.data(), it->second.data(), out.size());
      return Status::ok();
    }
  }
  return inner_->read(lba, out);
}

Status SnapshotDisk::rollback() {
  std::lock_guard lock(mutex_);
  for (const auto& [lba, original] : undo_) {
    PRINS_RETURN_IF_ERROR(inner_->write(lba, original));
  }
  undo_.clear();
  return Status::ok();
}

std::size_t SnapshotDisk::dirty_blocks() const {
  std::lock_guard lock(mutex_);
  return undo_.size();
}

}  // namespace prins
