// StatsDisk: decorator that counts operations and bytes.
//
// Used by the overhead benchmark and by tests asserting I/O amplification
// (e.g. the RAID small-write path must do exactly 2 reads + 2 writes).
#pragma once

#include <atomic>
#include <memory>

#include "block/block_device.h"

namespace prins {

class StatsDisk final : public BlockDevice {
 public:
  struct Counters {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t flushes = 0;
  };

  explicit StatsDisk(std::shared_ptr<BlockDevice> inner)
      : inner_(std::move(inner)) {}

  std::uint32_t block_size() const override { return inner_->block_size(); }
  std::uint64_t num_blocks() const override { return inner_->num_blocks(); }

  Status read(Lba lba, MutByteSpan out) override {
    Status s = inner_->read(lba, out);
    if (s.is_ok()) {
      reads_.fetch_add(1, std::memory_order_relaxed);
      bytes_read_.fetch_add(out.size(), std::memory_order_relaxed);
    }
    return s;
  }

  Status write(Lba lba, ByteSpan data) override {
    Status s = inner_->write(lba, data);
    if (s.is_ok()) {
      writes_.fetch_add(1, std::memory_order_relaxed);
      bytes_written_.fetch_add(data.size(), std::memory_order_relaxed);
    }
    return s;
  }

  Status flush() override {
    Status s = inner_->flush();
    if (s.is_ok()) flushes_.fetch_add(1, std::memory_order_relaxed);
    return s;
  }

  std::string describe() const override {
    return "stats(" + inner_->describe() + ")";
  }

  Counters counters() const {
    return Counters{reads_.load(), writes_.load(), bytes_read_.load(),
                    bytes_written_.load(), flushes_.load()};
  }

  void reset() {
    reads_ = writes_ = bytes_read_ = bytes_written_ = flushes_ = 0;
  }

 private:
  std::shared_ptr<BlockDevice> inner_;
  std::atomic<std::uint64_t> reads_{0}, writes_{0};
  std::atomic<std::uint64_t> bytes_read_{0}, bytes_written_{0};
  std::atomic<std::uint64_t> flushes_{0};
};

}  // namespace prins
