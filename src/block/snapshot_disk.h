// SnapshotDisk: copy-on-write snapshot decorator.
//
// Captures the state of the wrapped device at construction time lazily:
// the first write to a block saves the original contents.  Supports reading
// the frozen view and rolling the device back — used by tests and by the
// point-in-time recovery example as a reference implementation to validate
// the TRAP parity-log recovery against.
#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>

#include "block/block_device.h"

namespace prins {

class SnapshotDisk final : public BlockDevice {
 public:
  explicit SnapshotDisk(std::shared_ptr<BlockDevice> inner)
      : inner_(std::move(inner)) {}

  std::uint32_t block_size() const override { return inner_->block_size(); }
  std::uint64_t num_blocks() const override { return inner_->num_blocks(); }

  Status read(Lba lba, MutByteSpan out) override;
  Status write(Lba lba, ByteSpan data) override;
  Status flush() override { return inner_->flush(); }
  std::string describe() const override;

  /// Read a block as it was when the snapshot was taken.
  Status read_original(Lba lba, MutByteSpan out);

  /// Restore every block changed since the snapshot; clears the undo map.
  Status rollback();

  /// Number of distinct blocks modified since the snapshot.
  std::size_t dirty_blocks() const;

 private:
  std::shared_ptr<BlockDevice> inner_;
  mutable std::mutex mutex_;
  std::unordered_map<Lba, Bytes> undo_;  // original contents of dirty blocks
};

}  // namespace prins
