#include "block/integrity_disk.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32c.h"
#include "common/endian.h"

namespace prins {
namespace {

// Sidecar layout: a 16-byte header, then fixed-offset pages each covering
// kPageBlocks blocks.  A page is a known-bitmap, the CRC entries, and a
// CRC-32C of the two — self-checksummed so a torn page write is detected at
// open and degrades to "these blocks are untracked".
constexpr char kMagic[4] = {'P', 'R', 'i', 'g'};
constexpr std::size_t kHeaderSize = 16;  // magic + block_size + num_blocks
constexpr std::size_t kPageBlocks = 1024;
constexpr std::size_t kBitmapBytes = kPageBlocks / 8;
constexpr std::size_t kPageSize = kBitmapBytes + kPageBlocks * 4 + 4;

off_t page_offset(std::size_t page) {
  return static_cast<off_t>(kHeaderSize + page * kPageSize);
}

Status pwrite_all(int fd, ByteSpan data, off_t offset) {
  std::size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::pwrite(fd, data.data() + done, data.size() - done,
                         offset + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error(std::string("pwrite(sidecar): ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

}  // namespace

Result<std::unique_ptr<IntegrityDisk>> IntegrityDisk::open(
    std::shared_ptr<BlockDevice> inner, IntegrityConfig config) {
  if (inner == nullptr) return invalid_argument("null inner device");
  int fd = -1;
  if (!config.sidecar_path.empty()) {
    fd = ::open(config.sidecar_path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) {
      return io_error("open(" + config.sidecar_path + "): " +
                      std::strerror(errno));
    }
  }
  auto disk = std::unique_ptr<IntegrityDisk>(
      new IntegrityDisk(std::move(inner), std::move(config), fd));
  if (fd >= 0) {
    std::lock_guard lock(disk->mutex_);
    PRINS_RETURN_IF_ERROR(disk->load_sidecar_locked());
  }
  return disk;
}

IntegrityDisk::IntegrityDisk(std::shared_ptr<BlockDevice> inner,
                             IntegrityConfig config, int fd)
    : inner_(std::move(inner)),
      config_(std::move(config)),
      fd_(fd),
      crcs_(inner_->num_blocks(), 0),
      known_(inner_->num_blocks(), false),
      page_dirty_((inner_->num_blocks() + kPageBlocks - 1) / kPageBlocks,
                  false) {}

IntegrityDisk::~IntegrityDisk() {
  if (fd_ >= 0) {
    {
      std::lock_guard lock(mutex_);
      (void)flush_sidecar_locked();  // best effort
    }
    ::close(fd_);
  }
}

Status IntegrityDisk::load_sidecar_locked() {
  Bytes header(kHeaderSize);
  ssize_t n = ::pread(fd_, header.data(), header.size(), 0);
  if (n < 0) {
    return io_error(std::string("pread(sidecar): ") + std::strerror(errno));
  }
  if (n == 0) {
    // Fresh sidecar: stamp the geometry.
    std::memcpy(header.data(), kMagic, 4);
    store_le32(MutByteSpan(header).subspan(4, 4), inner_->block_size());
    store_le64(MutByteSpan(header).subspan(8, 8), inner_->num_blocks());
    return pwrite_all(fd_, header, 0);
  }
  if (static_cast<std::size_t>(n) < kHeaderSize ||
      std::memcmp(header.data(), kMagic, 4) != 0) {
    return corruption("sidecar " + config_.sidecar_path +
                      " has a bad header");
  }
  if (load_le32(ByteSpan(header).subspan(4, 4)) != inner_->block_size() ||
      load_le64(ByteSpan(header).subspan(8, 8)) != inner_->num_blocks()) {
    return invalid_argument("sidecar " + config_.sidecar_path +
                            " geometry does not match " + inner_->describe());
  }

  Bytes page(kPageSize);
  for (std::size_t p = 0; p < page_dirty_.size(); ++p) {
    n = ::pread(fd_, page.data(), page.size(), page_offset(p));
    if (n < 0) {
      return io_error(std::string("pread(sidecar): ") + std::strerror(errno));
    }
    if (n == 0) continue;  // page never written; blocks stay untracked
    const ByteSpan body = ByteSpan(page).first(kPageSize - 4);
    if (static_cast<std::size_t>(n) < kPageSize ||
        load_le32(ByteSpan(page).subspan(kPageSize - 4, 4)) != crc32c(body)) {
      ++stats_.pages_dropped;  // torn page: forget, re-adopt on read
      continue;
    }
    const Lba base = static_cast<Lba>(p) * kPageBlocks;
    for (std::size_t i = 0; i < kPageBlocks; ++i) {
      const Lba lba = base + i;
      if (lba >= known_.size()) break;
      if ((page[i / 8] >> (i % 8)) & 1) {
        known_[lba] = true;
        crcs_[lba] = load_le32(body.subspan(kBitmapBytes + i * 4, 4));
      }
    }
  }
  return Status::ok();
}

Status IntegrityDisk::flush_sidecar_locked() {
  if (fd_ < 0) return Status::ok();
  bool wrote = false;
  Bytes page(kPageSize);
  for (std::size_t p = 0; p < page_dirty_.size(); ++p) {
    if (!page_dirty_[p]) continue;
    std::memset(page.data(), 0, page.size());
    const Lba base = static_cast<Lba>(p) * kPageBlocks;
    for (std::size_t i = 0; i < kPageBlocks; ++i) {
      const Lba lba = base + i;
      if (lba >= known_.size()) break;
      if (!known_[lba]) continue;
      page[i / 8] |= static_cast<Byte>(1u << (i % 8));
      store_le32(MutByteSpan(page).subspan(kBitmapBytes + i * 4, 4),
                 crcs_[lba]);
    }
    const ByteSpan body = ByteSpan(page).first(kPageSize - 4);
    store_le32(MutByteSpan(page).subspan(kPageSize - 4, 4), crc32c(body));
    PRINS_RETURN_IF_ERROR(pwrite_all(fd_, page, page_offset(p)));
    page_dirty_[p] = false;
    wrote = true;
  }
  if (wrote) {
    if (::fdatasync(fd_) != 0) {
      return io_error(std::string("fdatasync(sidecar): ") +
                      std::strerror(errno));
    }
    ++stats_.sidecar_flushes;
  }
  writes_since_flush_ = 0;
  return Status::ok();
}

void IntegrityDisk::note_block_locked(Lba lba, std::uint32_t crc) {
  crcs_[lba] = crc;
  known_[lba] = true;
  page_dirty_[lba / kPageBlocks] = true;
}

Status IntegrityDisk::read(Lba lba, MutByteSpan out) {
  PRINS_RETURN_IF_ERROR(check_io(lba, out.size()));
  const std::uint32_t bs = inner_->block_size();
  std::lock_guard lock(mutex_);
  PRINS_RETURN_IF_ERROR(inner_->read(lba, out));
  for (std::size_t i = 0; i * bs < out.size(); ++i) {
    const Lba block = lba + i;
    const std::uint32_t crc = crc32c(out.subspan(i * bs, bs));
    if (!known_[block]) {
      note_block_locked(block, crc);  // adopt current contents as baseline
      ++stats_.blocks_adopted;
      continue;
    }
    ++stats_.blocks_verified;
    if (crc != crcs_[block]) {
      ++stats_.mismatches;
      return corruption_error("block " + std::to_string(block) +
                              " CRC mismatch: stored " +
                              std::to_string(crcs_[block]) + ", read " +
                              std::to_string(crc));
    }
  }
  return Status::ok();
}

Status IntegrityDisk::write(Lba lba, ByteSpan data) {
  PRINS_RETURN_IF_ERROR(check_io(lba, data.size()));
  const std::uint32_t bs = inner_->block_size();
  std::lock_guard lock(mutex_);
  PRINS_RETURN_IF_ERROR(inner_->write(lba, data));
  for (std::size_t i = 0; i * bs < data.size(); ++i) {
    note_block_locked(lba + i, crc32c(data.subspan(i * bs, bs)));
    ++writes_since_flush_;
  }
  if (fd_ >= 0 && config_.flush_every > 0 &&
      writes_since_flush_ >= config_.flush_every) {
    PRINS_RETURN_IF_ERROR(flush_sidecar_locked());
  }
  return Status::ok();
}

Status IntegrityDisk::flush() {
  std::lock_guard lock(mutex_);
  PRINS_RETURN_IF_ERROR(inner_->flush());
  return flush_sidecar_locked();
}

std::string IntegrityDisk::describe() const {
  return "integrity(" + inner_->describe() + ")";
}

bool IntegrityDisk::tracked(Lba lba) const {
  std::lock_guard lock(mutex_);
  return lba < known_.size() && known_[lba];
}

IntegrityStats IntegrityDisk::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace prins
