#include "block/mem_disk.h"

#include <cstring>

namespace prins {

MemDisk::MemDisk(std::uint64_t num_blocks, std::uint32_t block_size)
    : num_blocks_(num_blocks),
      block_size_(block_size),
      data_(num_blocks * block_size, 0) {}

Status MemDisk::read(Lba lba, MutByteSpan out) {
  PRINS_RETURN_IF_ERROR(check_io(lba, out.size()));
  std::lock_guard lock(mutex_);
  std::memcpy(out.data(), data_.data() + lba * block_size_, out.size());
  return Status::ok();
}

Status MemDisk::write(Lba lba, ByteSpan data) {
  PRINS_RETURN_IF_ERROR(check_io(lba, data.size()));
  std::lock_guard lock(mutex_);
  std::memcpy(data_.data() + lba * block_size_, data.data(), data.size());
  return Status::ok();
}

std::string MemDisk::describe() const {
  return "memdisk(" + std::to_string(num_blocks_) + "x" +
         std::to_string(block_size_) + ")";
}

}  // namespace prins
