#include "block/file_disk.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>

namespace prins {

Result<std::unique_ptr<FileDisk>> FileDisk::open(const std::string& path,
                                                 std::uint64_t num_blocks,
                                                 std::uint32_t block_size) {
  if (block_size == 0 || num_blocks == 0) {
    return invalid_argument("FileDisk geometry must be non-zero");
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return io_error("open(" + path + "): " + std::strerror(errno));
  }
  const auto cap = static_cast<off_t>(num_blocks * block_size);
  if (::ftruncate(fd, cap) != 0) {
    Status s = io_error("ftruncate(" + path + "): " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  return std::unique_ptr<FileDisk>(
      new FileDisk(fd, path, num_blocks, block_size));
}

FileDisk::FileDisk(int fd, std::string path, std::uint64_t num_blocks,
                   std::uint32_t block_size)
    : fd_(fd),
      path_(std::move(path)),
      num_blocks_(num_blocks),
      block_size_(block_size) {}

FileDisk::~FileDisk() { ::close(fd_); }

Status FileDisk::read(Lba lba, MutByteSpan out) {
  PRINS_RETURN_IF_ERROR(check_io(lba, out.size()));
  std::size_t done = 0;
  const auto base = static_cast<off_t>(lba * block_size_);
  while (done < out.size()) {
    ssize_t n = ::pread(fd_, out.data() + done, out.size() - done,
                        base + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error("pread(" + path_ + "): " + std::strerror(errno));
    }
    if (n == 0) {
      return io_error("pread(" + path_ + "): unexpected EOF");
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

Status FileDisk::write(Lba lba, ByteSpan data) {
  PRINS_RETURN_IF_ERROR(check_io(lba, data.size()));
  std::size_t done = 0;
  const auto base = static_cast<off_t>(lba * block_size_);
  while (done < data.size()) {
    ssize_t n = ::pwrite(fd_, data.data() + done, data.size() - done,
                         base + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error("pwrite(" + path_ + "): " + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

Status FileDisk::flush() {
  if (::fsync(fd_) != 0) {
    return io_error("fsync(" + path_ + "): " + std::strerror(errno));
  }
  return Status::ok();
}

std::string FileDisk::describe() const {
  return "filedisk(" + path_ + "," + std::to_string(num_blocks_) + "x" +
         std::to_string(block_size_) + ")";
}

}  // namespace prins
