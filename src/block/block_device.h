// BlockDevice: the storage interface everything in PRINS sits on.
//
// The paper's engine lives "below the file system or database system as a
// block device"; this interface is that seam.  Databases/workloads write
// through it, RAID arrays implement it over member devices, the iSCSI
// initiator exposes a remote target as one, and the PRINS engine decorates
// one with replication.
//
// Addressing is in whole blocks (LBA = logical block address); all I/O spans
// must be exact multiples of block_size().  Implementations must be safe for
// concurrent calls unless documented otherwise.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace prins {

using Lba = std::uint64_t;

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  /// Size of one block in bytes.  Constant for the device's lifetime.
  virtual std::uint32_t block_size() const = 0;

  /// Total number of blocks.
  virtual std::uint64_t num_blocks() const = 0;

  /// Read `out.size() / block_size()` blocks starting at `lba`.
  /// `out.size()` must be a positive multiple of block_size().
  virtual Status read(Lba lba, MutByteSpan out) = 0;

  /// Write `data.size() / block_size()` blocks starting at `lba`.
  virtual Status write(Lba lba, ByteSpan data) = 0;

  /// Persist all completed writes (no-op for volatile devices).
  virtual Status flush() { return Status::ok(); }

  /// Short human-readable description ("memdisk(1024x4096)").
  virtual std::string describe() const = 0;

  /// Capacity in bytes.
  std::uint64_t capacity_bytes() const {
    return static_cast<std::uint64_t>(block_size()) * num_blocks();
  }

 protected:
  /// Validate an I/O against the device geometry; shared by implementations.
  Status check_io(Lba lba, std::size_t len) const {
    const std::uint32_t bs = block_size();
    if (len == 0 || len % bs != 0) {
      return invalid_argument("I/O size " + std::to_string(len) +
                              " is not a positive multiple of block size " +
                              std::to_string(bs));
    }
    const std::uint64_t blocks = len / bs;
    if (lba >= num_blocks() || blocks > num_blocks() - lba) {
      return out_of_range("I/O [" + std::to_string(lba) + ", " +
                          std::to_string(lba + blocks) + ") exceeds device of " +
                          std::to_string(num_blocks()) + " blocks");
    }
    return Status::ok();
  }
};

}  // namespace prins
