// IntegrityDisk: end-to-end checksumming decorator.
//
// Keeps a CRC-32C per block, records it on every write, and verifies it on
// every read, so bit rot, torn writes, and misdirected I/O in the wrapped
// device surface as a typed DATA_CORRUPTION error instead of silently
// poisoning PRINS's A_old invariant.  The checksums optionally persist in a
// sidecar file: fixed-offset pages of CRC entries, each page carrying its own
// known-bitmap and CRC so a torn sidecar write degrades to "blocks unknown",
// never to a false verdict.  Sidecar writes are batched (one fsync per
// `flush_every` block writes) to keep the decorator off the write-latency
// path.
//
// A block is "tracked" once it has been written (or read while untracked, in
// which case the current contents are adopted as the baseline).  Reads of
// untracked blocks therefore always succeed; corruption that lands before a
// block is ever tracked is undetectable by construction — scrub early.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "block/block_device.h"

namespace prins {

struct IntegrityConfig {
  /// Sidecar file for the CRC pages; empty keeps the checksums in memory
  /// only (detection within one process lifetime, nothing to repair from
  /// after a restart).
  std::string sidecar_path;
  /// Block writes between sidecar write-backs (0 = write back only on
  /// flush()).  Dirty CRC pages are always persisted by flush().
  std::uint64_t flush_every = 64;
};

struct IntegrityStats {
  std::uint64_t blocks_verified = 0;  // tracked blocks read and CRC-checked
  std::uint64_t mismatches = 0;       // verification failures (DATA_CORRUPTION)
  std::uint64_t blocks_adopted = 0;   // untracked blocks baselined on read
  std::uint64_t sidecar_flushes = 0;  // fsyncs of the sidecar file
  std::uint64_t pages_dropped = 0;    // sidecar pages discarded at open (torn)
};

class IntegrityDisk final : public BlockDevice {
 public:
  /// Wrap `inner`.  With a sidecar path, loads any surviving CRC pages
  /// (geometry mismatch is an error; torn pages are dropped and counted).
  static Result<std::unique_ptr<IntegrityDisk>> open(
      std::shared_ptr<BlockDevice> inner, IntegrityConfig config = {});
  ~IntegrityDisk() override;

  IntegrityDisk(const IntegrityDisk&) = delete;
  IntegrityDisk& operator=(const IntegrityDisk&) = delete;

  std::uint32_t block_size() const override { return inner_->block_size(); }
  std::uint64_t num_blocks() const override { return inner_->num_blocks(); }

  Status read(Lba lba, MutByteSpan out) override;
  Status write(Lba lba, ByteSpan data) override;
  Status flush() override;
  std::string describe() const override;

  /// True once `lba` has a recorded baseline CRC.
  bool tracked(Lba lba) const;

  IntegrityStats stats() const;

 private:
  IntegrityDisk(std::shared_ptr<BlockDevice> inner, IntegrityConfig config,
                int fd);

  Status load_sidecar_locked();
  Status flush_sidecar_locked();
  void note_block_locked(Lba lba, std::uint32_t crc);

  std::shared_ptr<BlockDevice> inner_;
  const IntegrityConfig config_;
  const int fd_;  // sidecar file, -1 when in-memory only

  mutable std::mutex mutex_;
  std::vector<std::uint32_t> crcs_;
  std::vector<bool> known_;
  std::vector<bool> page_dirty_;
  std::uint64_t writes_since_flush_ = 0;
  IntegrityStats stats_;
};

}  // namespace prins
