// StatsDisk is header-only; this TU anchors the target.
#include "block/stats_disk.h"
