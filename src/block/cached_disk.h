// CachedDisk: an LRU block cache decorator.
//
// The PRINS authors' earlier work ("A Caching Strategy to Improve iSCSI
// Performance", LCN'02 — reference [20] of the paper) motivates caching
// in the same storage stack this repo models.  CachedDisk serves reads
// from an in-memory LRU and supports two write policies:
//   write-through — writes go to the inner device immediately (cache is a
//                   read accelerator only);
//   write-back    — writes dirty the cache and reach the inner device on
//                   eviction or flush(), coalescing repeated writes to hot
//                   blocks (which also coalesces replication traffic when
//                   the inner device is a PrinsEngine).
// Thread-safe.  Only whole single blocks are cached; multi-block I/O is
// split internally.
#pragma once

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "block/block_device.h"

namespace prins {

struct CacheConfig {
  std::size_t capacity_blocks = 1024;
  bool write_back = false;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;  // dirty blocks written to the inner device
};

class CachedDisk final : public BlockDevice {
 public:
  CachedDisk(std::shared_ptr<BlockDevice> inner, CacheConfig config);
  ~CachedDisk() override;

  std::uint32_t block_size() const override { return inner_->block_size(); }
  std::uint64_t num_blocks() const override { return inner_->num_blocks(); }

  Status read(Lba lba, MutByteSpan out) override;
  Status write(Lba lba, ByteSpan data) override;

  /// Write back every dirty block (ascending LBA), then flush the inner
  /// device.
  Status flush() override;

  std::string describe() const override;

  CacheStats stats() const;
  std::size_t cached_blocks() const;
  std::size_t dirty_blocks() const;

  /// Drop every clean entry (dirty entries are written back first).
  Status invalidate();

 private:
  struct Entry {
    Lba lba;
    Bytes data;
    bool dirty = false;
  };
  using LruList = std::list<Entry>;

  // All private helpers require mutex_ held.
  Status read_one(Lba lba, MutByteSpan out);
  Status write_one(Lba lba, ByteSpan data);
  /// Move an existing entry to the front (most recent).
  void touch(LruList::iterator it);
  /// Insert a new entry; at capacity the LRU victim's node and buffer are
  /// recycled in place (no allocation on the steady-state miss path).
  Status insert(Lba lba, ByteSpan data, bool dirty);
  Status flush_locked();

  std::shared_ptr<BlockDevice> inner_;
  CacheConfig config_;
  mutable std::mutex mutex_;
  LruList lru_;  // front = most recently used
  std::unordered_map<Lba, LruList::iterator> index_;
  CacheStats stats_;
};

}  // namespace prins
