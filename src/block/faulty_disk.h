// FaultyDisk: failure-injection decorator for tests.
//
// Wraps another BlockDevice and injects I/O errors, silent corruption, torn
// writes, or a hard "disk died" state.  Deterministic: probabilistic faults
// are driven by a seeded Rng, and exact fault points can be scheduled by op
// count.
#pragma once

#include <memory>
#include <mutex>
#include <set>

#include "block/block_device.h"
#include "common/rng.h"

namespace prins {

class FaultyDisk final : public BlockDevice {
 public:
  struct Config {
    double read_error_p = 0.0;   // probability a read fails with IO_ERROR
    double write_error_p = 0.0;  // probability a write fails with IO_ERROR
    double corrupt_p = 0.0;      // probability a read flips one byte
    /// When a corrupt_p flip fires, also write the flipped byte back through
    /// the wrapped device, so the corruption is at rest for a scrubber to
    /// find, not just in this one returned copy.
    bool corrupt_persistent = false;
    /// Probability a write persists only a random byte prefix yet still
    /// reports success — a lying disk.  The loss stays silent until the
    /// block is read back (and checksummed).
    double torn_write_p = 0.0;
    std::uint64_t seed = 1;
  };

  FaultyDisk(std::shared_ptr<BlockDevice> inner, Config config);

  std::uint32_t block_size() const override { return inner_->block_size(); }
  std::uint64_t num_blocks() const override { return inner_->num_blocks(); }

  Status read(Lba lba, MutByteSpan out) override;
  Status write(Lba lba, ByteSpan data) override;
  Status flush() override;
  std::string describe() const override;

  /// After `ops` more I/Os (reads+writes), every subsequent I/O fails —
  /// models a dead member disk for RAID degraded-mode tests.
  void fail_after(std::uint64_t ops);

  /// Crash-stop after `ops` more I/Os: if the fatal op is a write, a random
  /// byte prefix of it persists before the failure (a torn in-flight write),
  /// then the disk is dead until set_dead(false).  Models power loss
  /// mid-apply.
  void crash_after(std::uint64_t ops);

  /// Swap the fault probabilities mid-run (keeps the RNG stream and op
  /// counters) — e.g. a soak test injects faults during its workload, then
  /// turns them off so the repair phase can converge.
  void reconfigure(const Config& config);

  /// Immediately mark the disk dead (or revive it).
  void set_dead(bool dead);
  bool is_dead() const;

  /// Deterministically flip one stored byte of `lba` (byte `offset` within
  /// the block), bypassing fault accounting.  The flip is silent: reads
  /// succeed and return the corrupt contents.
  Status corrupt_block(Lba lba, std::size_t offset = 0);

  /// Mark `lba` as a detected medium error: reads covering it fail with
  /// DATA_CORRUPTION until the block is successfully rewritten.
  void mark_bad(Lba lba);

  std::uint64_t ops_seen() const;
  std::uint64_t torn_writes() const;

 private:
  Status maybe_fault(bool is_read);
  /// Persist only the first `keep` bytes of `data` (whole leading blocks
  /// plus a merged partial block).
  Status tear_locked(Lba lba, ByteSpan data, std::size_t keep);

  std::shared_ptr<BlockDevice> inner_;
  Config config_;
  mutable std::mutex mutex_;
  Rng rng_;
  bool dead_ = false;
  std::uint64_t ops_ = 0;
  std::uint64_t fail_at_ = ~0ull;
  std::uint64_t crash_at_ = ~0ull;
  bool crash_tear_ = false;
  bool corrupt_next_read_ = false;
  std::uint64_t torn_ = 0;
  std::set<Lba> bad_blocks_;
};

}  // namespace prins
