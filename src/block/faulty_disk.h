// FaultyDisk: failure-injection decorator for tests.
//
// Wraps another BlockDevice and injects I/O errors, silent corruption, or a
// hard "disk died" state.  Deterministic: probabilistic faults are driven by
// a seeded Rng, and exact fault points can be scheduled by op count.
#pragma once

#include <memory>
#include <mutex>

#include "block/block_device.h"
#include "common/rng.h"

namespace prins {

class FaultyDisk final : public BlockDevice {
 public:
  struct Config {
    double read_error_p = 0.0;   // probability a read fails with IO_ERROR
    double write_error_p = 0.0;  // probability a write fails with IO_ERROR
    double corrupt_p = 0.0;      // probability a read flips one byte
    std::uint64_t seed = 1;
  };

  FaultyDisk(std::shared_ptr<BlockDevice> inner, Config config);

  std::uint32_t block_size() const override { return inner_->block_size(); }
  std::uint64_t num_blocks() const override { return inner_->num_blocks(); }

  Status read(Lba lba, MutByteSpan out) override;
  Status write(Lba lba, ByteSpan data) override;
  Status flush() override;
  std::string describe() const override;

  /// After `ops` more I/Os (reads+writes), every subsequent I/O fails —
  /// models a dead member disk for RAID degraded-mode tests.
  void fail_after(std::uint64_t ops);

  /// Immediately mark the disk dead (or revive it).
  void set_dead(bool dead);
  bool is_dead() const;

  std::uint64_t ops_seen() const;

 private:
  Status maybe_fault(bool is_read);

  std::shared_ptr<BlockDevice> inner_;
  Config config_;
  mutable std::mutex mutex_;
  Rng rng_;
  bool dead_ = false;
  std::uint64_t ops_ = 0;
  std::uint64_t fail_at_ = ~0ull;
  bool corrupt_next_read_ = false;
};

}  // namespace prins
