#include "block/cached_disk.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <vector>

#include "common/logging.h"

namespace prins {

CachedDisk::CachedDisk(std::shared_ptr<BlockDevice> inner, CacheConfig config)
    : inner_(std::move(inner)), config_(config) {
  assert(config_.capacity_blocks > 0);
}

CachedDisk::~CachedDisk() {
  // Best effort: losing dirty data silently on teardown would be a trap.
  Status s = flush();
  if (!s.is_ok()) {
    PRINS_LOG(kError) << "CachedDisk: flush on destruction failed: "
                      << s.to_string();
  }
}

Status CachedDisk::read(Lba lba, MutByteSpan out) {
  PRINS_RETURN_IF_ERROR(check_io(lba, out.size()));
  const std::uint32_t bs = block_size();
  const std::uint64_t blocks = out.size() / bs;
  std::lock_guard lock(mutex_);
  for (std::uint64_t i = 0; i < blocks; ++i) {
    PRINS_RETURN_IF_ERROR(read_one(lba + i, out.subspan(i * bs, bs)));
  }
  return Status::ok();
}

Status CachedDisk::write(Lba lba, ByteSpan data) {
  PRINS_RETURN_IF_ERROR(check_io(lba, data.size()));
  const std::uint32_t bs = block_size();
  const std::uint64_t blocks = data.size() / bs;
  std::lock_guard lock(mutex_);
  for (std::uint64_t i = 0; i < blocks; ++i) {
    PRINS_RETURN_IF_ERROR(write_one(lba + i, data.subspan(i * bs, bs)));
  }
  return Status::ok();
}

Status CachedDisk::read_one(Lba lba, MutByteSpan out) {
  if (auto it = index_.find(lba); it != index_.end()) {
    ++stats_.hits;
    std::memcpy(out.data(), it->second->data.data(), out.size());
    touch(it->second);
    return Status::ok();
  }
  ++stats_.misses;
  PRINS_RETURN_IF_ERROR(inner_->read(lba, out));
  return insert(lba, ByteSpan(out.data(), out.size()), /*dirty=*/false);
}

Status CachedDisk::write_one(Lba lba, ByteSpan data) {
  if (!config_.write_back) {
    PRINS_RETURN_IF_ERROR(inner_->write(lba, data));
  }
  if (auto it = index_.find(lba); it != index_.end()) {
    std::memcpy(it->second->data.data(), data.data(), data.size());
    it->second->dirty = config_.write_back;
    touch(it->second);
    return Status::ok();
  }
  return insert(lba, data, /*dirty=*/config_.write_back);
}

void CachedDisk::touch(LruList::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

Status CachedDisk::insert(Lba lba, ByteSpan data, bool dirty) {
  if (lru_.size() >= config_.capacity_blocks) {
    // Recycle the victim's node and buffer: splice the LRU tail to the
    // front and overwrite it in place, so a steady stream of misses pays
    // neither a list-node allocation nor a fresh block-sized buffer.
    Entry& victim = lru_.back();
    if (victim.dirty) {
      PRINS_RETURN_IF_ERROR(inner_->write(victim.lba, victim.data));
      ++stats_.writebacks;
    }
    ++stats_.evictions;
    index_.erase(victim.lba);
    lru_.splice(lru_.begin(), lru_, std::prev(lru_.end()));
    Entry& slot = lru_.front();
    slot.lba = lba;
    slot.data.assign(data.begin(), data.end());
    slot.dirty = dirty;
    index_[lba] = lru_.begin();
    return Status::ok();
  }
  lru_.push_front(Entry{lba, to_bytes(data), dirty});
  index_[lba] = lru_.begin();
  return Status::ok();
}

Status CachedDisk::flush_locked() {
  // Ascending-LBA writeback gives the inner device a sequential pattern.
  std::vector<Entry*> dirty;
  for (Entry& e : lru_) {
    if (e.dirty) dirty.push_back(&e);
  }
  std::sort(dirty.begin(), dirty.end(),
            [](const Entry* a, const Entry* b) { return a->lba < b->lba; });
  for (Entry* e : dirty) {
    PRINS_RETURN_IF_ERROR(inner_->write(e->lba, e->data));
    e->dirty = false;
    ++stats_.writebacks;
  }
  return inner_->flush();
}

Status CachedDisk::flush() {
  std::lock_guard lock(mutex_);
  return flush_locked();
}

Status CachedDisk::invalidate() {
  std::lock_guard lock(mutex_);
  PRINS_RETURN_IF_ERROR(flush_locked());
  lru_.clear();
  index_.clear();
  return Status::ok();
}

CacheStats CachedDisk::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t CachedDisk::cached_blocks() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

std::size_t CachedDisk::dirty_blocks() const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const Entry& e : lru_) n += e.dirty;
  return n;
}

std::string CachedDisk::describe() const {
  return std::string(config_.write_back ? "wb-cache(" : "wt-cache(") +
         inner_->describe() + ")";
}

}  // namespace prins
