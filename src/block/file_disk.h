// FileDisk: block device backed by a regular file.
//
// Used when an experiment needs persistence across process restarts (e.g.
// the recovery example) or a dataset larger than RAM.  The backing file is
// created sparse and truncated to capacity on open.
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "block/block_device.h"

namespace prins {

class FileDisk final : public BlockDevice {
 public:
  /// Open (creating if needed) `path` as a device of the given geometry.
  static Result<std::unique_ptr<FileDisk>> open(const std::string& path,
                                                std::uint64_t num_blocks,
                                                std::uint32_t block_size);
  ~FileDisk() override;

  FileDisk(const FileDisk&) = delete;
  FileDisk& operator=(const FileDisk&) = delete;

  std::uint32_t block_size() const override { return block_size_; }
  std::uint64_t num_blocks() const override { return num_blocks_; }

  Status read(Lba lba, MutByteSpan out) override;
  Status write(Lba lba, ByteSpan data) override;
  Status flush() override;
  std::string describe() const override;

 private:
  FileDisk(int fd, std::string path, std::uint64_t num_blocks,
           std::uint32_t block_size);

  const int fd_;
  const std::string path_;
  const std::uint64_t num_blocks_;
  const std::uint32_t block_size_;
  std::mutex mutex_;
};

}  // namespace prins
