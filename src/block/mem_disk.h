// MemDisk: RAM-backed block device.
//
// The workhorse device for experiments: the paper's measured quantity is
// bytes replicated over the network, which does not depend on the physical
// medium, so experiments run against memory for speed and determinism.
#pragma once

#include <mutex>

#include "block/block_device.h"

namespace prins {

class MemDisk final : public BlockDevice {
 public:
  MemDisk(std::uint64_t num_blocks, std::uint32_t block_size);

  std::uint32_t block_size() const override { return block_size_; }
  std::uint64_t num_blocks() const override { return num_blocks_; }

  Status read(Lba lba, MutByteSpan out) override;
  Status write(Lba lba, ByteSpan data) override;
  std::string describe() const override;

 private:
  const std::uint64_t num_blocks_;
  const std::uint32_t block_size_;
  mutable std::mutex mutex_;
  Bytes data_;
};

}  // namespace prins
