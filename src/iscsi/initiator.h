// IscsiInitiator: a remote iSCSI LUN exposed as a local BlockDevice.
//
// Mirrors the paper's architecture where the database host's initiator
// talks to the PRINS-enabled target, and where the PRINS engine's own
// "communication module is another iSCSI initiator" talking to the replica
// target.  login() performs the login exchange, INQUIRY and READ
// CAPACITY(10), after which the device geometry is known and read/write
// translate to READ(10)/WRITE(10) commands (chunked to the negotiated
// limits, R2T + Data-Out for large writes).
//
// One outstanding command at a time; calls are serialized by a mutex.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "block/block_device.h"
#include "iscsi/pdu.h"
#include "net/transport.h"

namespace prins::iscsi {

struct InitiatorConfig {
  std::string initiator_name = "iqn.2006-04.edu.uri.hpcl:initiator";
  std::uint32_t max_data_segment = 64 * 1024;  // per Data-Out PDU
  std::uint32_t max_immediate_data = 64 * 1024;
  /// Offer HeaderDigest=CRC32C at login; used if the target accepts.
  bool request_header_digest = false;
};

/// Discovery session: log in with SessionType=Discovery, issue
/// SendTargets=All, and return the target names the portal offers.
/// Consumes the transport (logs out and closes it before returning).
Result<std::vector<std::string>> discover_targets(
    std::unique_ptr<Transport> transport,
    const std::string& initiator_name = "iqn.2006-04.edu.uri.hpcl:discovery");

class IscsiInitiator final : public BlockDevice {
 public:
  /// Log in over `transport` and discover the LUN geometry.
  static Result<std::unique_ptr<IscsiInitiator>> login(
      std::unique_ptr<Transport> transport, InitiatorConfig config = {});

  ~IscsiInitiator() override;

  std::uint32_t block_size() const override { return block_size_; }
  std::uint64_t num_blocks() const override { return num_blocks_; }

  Status read(Lba lba, MutByteSpan out) override;
  Status write(Lba lba, ByteSpan data) override;
  Status flush() override;
  std::string describe() const override;

  /// Graceful logout (also closes the transport).  Idempotent.
  Status logout();

  /// Liveness probe: NOP-Out ping, waits for the echo.
  Status ping();

  /// REPORT LUNS: the LUN inventory the target exposes.
  Result<std::vector<std::uint64_t>> report_luns();

  /// True when the connection negotiated CRC32C header digests.
  bool header_digest() const { return header_digest_; }

  const std::string& target_name() const { return target_name_; }

 private:
  IscsiInitiator(std::unique_ptr<Transport> transport, InitiatorConfig config);

  Status do_login();
  Status discover_geometry();

  /// Issue one SCSI command; for reads, fills `read_buf`.  `write_data` is
  /// the full write payload (immediate + R2T flow handled inside).
  Status command(const struct Cdb& cdb, ByteSpan write_data,
                 MutByteSpan read_buf);

  /// One READ(10)/WRITE(10) worth of blocks per command.
  std::uint32_t blocks_per_command() const;

  std::unique_ptr<Transport> transport_;
  InitiatorConfig config_;
  std::mutex mutex_;
  bool closed_ = false;
  std::uint32_t next_itt_ = 1;
  std::uint32_t cmd_sn_ = 1;
  std::uint32_t exp_stat_sn_ = 1;
  std::uint32_t block_size_ = 0;
  std::uint64_t num_blocks_ = 0;
  bool header_digest_ = false;
  std::string target_name_;
};

}  // namespace prins::iscsi
