// SCSI command descriptor blocks (CDBs) and sense data.
//
// The subset a block-storage initiator needs: INQUIRY, TEST UNIT READY,
// READ CAPACITY(10), READ/WRITE(10) and their 64-bit-LBA (16) forms,
// REPORT LUNS, SYNCHRONIZE CACHE(10).
// CDBs ride in bytes 32-47 of a SCSI Command PDU.
#pragma once

#include <cstdint>

#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace prins::iscsi {

enum class ScsiOp : std::uint8_t {
  kTestUnitReady = 0x00,
  kInquiry = 0x12,
  kReadCapacity10 = 0x25,
  kRead10 = 0x28,
  kWrite10 = 0x2A,
  kSynchronizeCache10 = 0x35,
  kRead16 = 0x88,
  kWrite16 = 0x8A,
  kReportLuns = 0xA0,
};

constexpr std::size_t kCdbSize = 16;

/// A parsed CDB.  lba/blocks are meaningful for READ/WRITE/READ CAPACITY;
/// alloc_len for INQUIRY.
struct Cdb {
  ScsiOp op = ScsiOp::kTestUnitReady;
  std::uint64_t lba = 0;   // 32-bit in the (10) forms, 64-bit in the (16)
  std::uint32_t blocks = 0;
  std::uint32_t alloc_len = 0;

  /// Serialize into a 16-byte CDB buffer.
  void encode(MutByteSpan out) const;

  /// Parse a 16-byte CDB.
  static Result<Cdb> decode(ByteSpan cdb);
};

// CDB builders used by the initiator.
Cdb make_test_unit_ready();
Cdb make_inquiry(std::uint16_t alloc_len);
Cdb make_read_capacity10();
Cdb make_read10(std::uint32_t lba, std::uint16_t blocks);
Cdb make_write10(std::uint32_t lba, std::uint16_t blocks);
Cdb make_synchronize_cache10();
Cdb make_read16(std::uint64_t lba, std::uint32_t blocks);
Cdb make_write16(std::uint64_t lba, std::uint32_t blocks);
Cdb make_report_luns(std::uint32_t alloc_len);

/// Standard INQUIRY data (36 bytes): direct-access device, vendor "PRINS".
Bytes make_inquiry_data();

/// READ CAPACITY(10) response: 8 bytes, {max LBA, block size} big-endian.
Bytes make_read_capacity10_data(std::uint64_t num_blocks,
                                std::uint32_t block_size);

/// REPORT LUNS response: 8-byte header + one 8-byte entry per LUN.
Bytes make_report_luns_data(const std::vector<std::uint64_t>& luns);

/// Fixed-format sense data (18 bytes) for CHECK CONDITION responses.
/// sense_key: 0x5 illegal request; asc/ascq detail the error.
Bytes make_sense(std::uint8_t sense_key, std::uint8_t asc, std::uint8_t ascq);

// Common sense triples.
inline Bytes sense_lba_out_of_range() { return make_sense(0x5, 0x21, 0x00); }
inline Bytes sense_invalid_cdb() { return make_sense(0x5, 0x24, 0x00); }
inline Bytes sense_medium_error() { return make_sense(0x3, 0x11, 0x00); }

}  // namespace prins::iscsi
