#include "iscsi/scsi.h"

#include <cassert>
#include <cstring>

#include "common/endian.h"

namespace prins::iscsi {

void Cdb::encode(MutByteSpan out) const {
  assert(out.size() >= kCdbSize);
  std::memset(out.data(), 0, kCdbSize);
  out[0] = static_cast<Byte>(op);
  switch (op) {
    case ScsiOp::kRead10:
    case ScsiOp::kWrite10:
      store_be32(out.subspan(2, 4), static_cast<std::uint32_t>(lba));
      store_be16(out.subspan(7, 2), static_cast<std::uint16_t>(blocks));
      break;
    case ScsiOp::kRead16:
    case ScsiOp::kWrite16:
      store_be64(out.subspan(2, 8), lba);
      store_be32(out.subspan(10, 4), blocks);
      break;
    case ScsiOp::kInquiry:
      store_be16(out.subspan(3, 2), static_cast<std::uint16_t>(alloc_len));
      break;
    case ScsiOp::kReportLuns:
      store_be32(out.subspan(6, 4), alloc_len);
      break;
    case ScsiOp::kTestUnitReady:
    case ScsiOp::kReadCapacity10:
    case ScsiOp::kSynchronizeCache10:
      break;
  }
}

Result<Cdb> Cdb::decode(ByteSpan cdb) {
  if (cdb.size() < kCdbSize) {
    return corruption("CDB shorter than 16 bytes");
  }
  Cdb out;
  switch (cdb[0]) {
    case static_cast<std::uint8_t>(ScsiOp::kTestUnitReady):
      out.op = ScsiOp::kTestUnitReady;
      break;
    case static_cast<std::uint8_t>(ScsiOp::kInquiry):
      out.op = ScsiOp::kInquiry;
      out.alloc_len = load_be16(cdb.subspan(3, 2));
      break;
    case static_cast<std::uint8_t>(ScsiOp::kReadCapacity10):
      out.op = ScsiOp::kReadCapacity10;
      break;
    case static_cast<std::uint8_t>(ScsiOp::kRead10):
      out.op = ScsiOp::kRead10;
      out.lba = load_be32(cdb.subspan(2, 4));
      out.blocks = load_be16(cdb.subspan(7, 2));
      break;
    case static_cast<std::uint8_t>(ScsiOp::kWrite10):
      out.op = ScsiOp::kWrite10;
      out.lba = load_be32(cdb.subspan(2, 4));
      out.blocks = load_be16(cdb.subspan(7, 2));
      break;
    case static_cast<std::uint8_t>(ScsiOp::kSynchronizeCache10):
      out.op = ScsiOp::kSynchronizeCache10;
      break;
    case static_cast<std::uint8_t>(ScsiOp::kRead16):
      out.op = ScsiOp::kRead16;
      out.lba = load_be64(cdb.subspan(2, 8));
      out.blocks = load_be32(cdb.subspan(10, 4));
      break;
    case static_cast<std::uint8_t>(ScsiOp::kWrite16):
      out.op = ScsiOp::kWrite16;
      out.lba = load_be64(cdb.subspan(2, 8));
      out.blocks = load_be32(cdb.subspan(10, 4));
      break;
    case static_cast<std::uint8_t>(ScsiOp::kReportLuns):
      out.op = ScsiOp::kReportLuns;
      out.alloc_len = load_be32(cdb.subspan(6, 4));
      break;
    default:
      return unimplemented("unsupported SCSI opcode 0x" +
                           std::to_string(cdb[0]));
  }
  return out;
}

Cdb make_test_unit_ready() { return Cdb{}; }

Cdb make_inquiry(std::uint16_t alloc_len) {
  Cdb c;
  c.op = ScsiOp::kInquiry;
  c.alloc_len = alloc_len;
  return c;
}

Cdb make_read_capacity10() {
  Cdb c;
  c.op = ScsiOp::kReadCapacity10;
  return c;
}

Cdb make_read10(std::uint32_t lba, std::uint16_t blocks) {
  Cdb c;
  c.op = ScsiOp::kRead10;
  c.lba = lba;
  c.blocks = blocks;
  return c;
}

Cdb make_write10(std::uint32_t lba, std::uint16_t blocks) {
  Cdb c;
  c.op = ScsiOp::kWrite10;
  c.lba = lba;
  c.blocks = blocks;
  return c;
}

Cdb make_synchronize_cache10() {
  Cdb c;
  c.op = ScsiOp::kSynchronizeCache10;
  return c;
}

Cdb make_read16(std::uint64_t lba, std::uint32_t blocks) {
  Cdb c;
  c.op = ScsiOp::kRead16;
  c.lba = lba;
  c.blocks = blocks;
  return c;
}

Cdb make_write16(std::uint64_t lba, std::uint32_t blocks) {
  Cdb c;
  c.op = ScsiOp::kWrite16;
  c.lba = lba;
  c.blocks = blocks;
  return c;
}

Cdb make_report_luns(std::uint32_t alloc_len) {
  Cdb c;
  c.op = ScsiOp::kReportLuns;
  c.alloc_len = alloc_len;
  return c;
}

Bytes make_inquiry_data() {
  Bytes d(36, 0);
  d[0] = 0x00;  // peripheral: direct-access block device
  d[2] = 0x05;  // SPC-3
  d[3] = 0x02;  // response data format
  d[4] = 31;    // additional length
  auto put = [&](std::size_t at, std::string_view s, std::size_t width) {
    for (std::size_t i = 0; i < width; ++i) {
      d[at + i] = i < s.size() ? static_cast<Byte>(s[i]) : ' ';
    }
  };
  put(8, "PRINS", 8);          // vendor id
  put(16, "PARITY-REPL", 16);  // product id
  put(32, "1.0", 4);           // revision
  return d;
}

Bytes make_read_capacity10_data(std::uint64_t num_blocks,
                                std::uint32_t block_size) {
  Bytes d(8, 0);
  // READ CAPACITY(10) reports the *last* LBA, saturated at 2^32-1.
  const std::uint64_t last = num_blocks == 0 ? 0 : num_blocks - 1;
  const std::uint32_t max_lba =
      last > 0xFFFFFFFFull ? 0xFFFFFFFFu : static_cast<std::uint32_t>(last);
  store_be32(MutByteSpan(d).subspan(0, 4), max_lba);
  store_be32(MutByteSpan(d).subspan(4, 4), block_size);
  return d;
}

Bytes make_report_luns_data(const std::vector<std::uint64_t>& luns) {
  Bytes d(8 + 8 * luns.size(), 0);
  store_be32(MutByteSpan(d).subspan(0, 4),
             static_cast<std::uint32_t>(8 * luns.size()));
  for (std::size_t i = 0; i < luns.size(); ++i) {
    store_be64(MutByteSpan(d).subspan(8 + 8 * i, 8), luns[i]);
  }
  return d;
}

Bytes make_sense(std::uint8_t sense_key, std::uint8_t asc, std::uint8_t ascq) {
  // iSCSI carries sense data prefixed by a 2-byte length (RFC 3720 §10.4.7).
  Bytes d(2 + 18, 0);
  store_be16(MutByteSpan(d).subspan(0, 2), 18);
  d[2] = 0x70;  // fixed format, current error
  d[2 + 2] = sense_key & 0x0F;
  d[2 + 7] = 10;  // additional sense length
  d[2 + 12] = asc;
  d[2 + 13] = ascq;
  return d;
}

}  // namespace prins::iscsi
