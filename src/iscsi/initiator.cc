#include "iscsi/initiator.h"

#include <algorithm>
#include <cstring>

#include "common/endian.h"
#include "iscsi/scsi.h"

namespace prins::iscsi {

Result<std::vector<std::string>> discover_targets(
    std::unique_ptr<Transport> transport, const std::string& initiator_name) {
  if (transport == nullptr) return invalid_argument("null transport");

  // Discovery login.
  Pdu login;
  login.opcode = Opcode::kLoginRequest;
  login.immediate = true;
  login.flags = static_cast<std::uint8_t>(
      kLoginTransit | (kStageOperational << 2) | kStageFullFeature);
  login.itt = 1;
  login.word6 = 1;
  login.data = encode_login_kv({{"InitiatorName", initiator_name},
                                {"SessionType", "Discovery"}});
  PRINS_RETURN_IF_ERROR(transport->send(login.encode()));
  PRINS_ASSIGN_OR_RETURN(Bytes login_wire, transport->recv());
  PRINS_ASSIGN_OR_RETURN(Pdu login_reply, Pdu::decode(login_wire));
  if (login_reply.opcode != Opcode::kLoginResponse) {
    return failed_precondition("expected Login-Response during discovery");
  }

  // SendTargets=All.
  Pdu text;
  text.opcode = Opcode::kTextRequest;
  text.flags = kFlagFinal;
  text.itt = 2;
  text.word5 = 0xFFFFFFFFu;
  text.word6 = 2;
  text.data = encode_login_kv({{"SendTargets", "All"}});
  PRINS_RETURN_IF_ERROR(transport->send(text.encode()));
  PRINS_ASSIGN_OR_RETURN(Bytes text_wire, transport->recv());
  PRINS_ASSIGN_OR_RETURN(Pdu text_reply, Pdu::decode(text_wire));
  if (text_reply.opcode != Opcode::kTextResponse) {
    return failed_precondition("expected Text-Response during discovery");
  }
  std::vector<std::string> targets;
  for (const auto& [key, value] : decode_login_kv(text_reply.data)) {
    if (key == "TargetName") targets.push_back(value);
  }

  // Goodbye.
  Pdu logout;
  logout.opcode = Opcode::kLogoutRequest;
  logout.flags = kFlagFinal;
  logout.itt = 3;
  logout.word6 = 3;
  if (transport->send(logout.encode()).is_ok()) {
    (void)transport->recv();
  }
  transport->close();
  return targets;
}

Result<std::unique_ptr<IscsiInitiator>> IscsiInitiator::login(
    std::unique_ptr<Transport> transport, InitiatorConfig config) {
  if (transport == nullptr) return invalid_argument("null transport");
  std::unique_ptr<IscsiInitiator> init(
      new IscsiInitiator(std::move(transport), std::move(config)));
  PRINS_RETURN_IF_ERROR(init->do_login());
  PRINS_RETURN_IF_ERROR(init->discover_geometry());
  return init;
}

IscsiInitiator::IscsiInitiator(std::unique_ptr<Transport> transport,
                               InitiatorConfig config)
    : transport_(std::move(transport)), config_(std::move(config)) {}

IscsiInitiator::~IscsiInitiator() {
  // Best-effort goodbye; errors on teardown are not actionable.
  (void)logout();
}

Status IscsiInitiator::do_login() {
  Pdu req;
  req.opcode = Opcode::kLoginRequest;
  req.immediate = true;
  req.flags = static_cast<std::uint8_t>(kLoginTransit |
                                        (kStageOperational << 2) |
                                        kStageFullFeature);
  req.itt = next_itt_++;
  req.word6 = cmd_sn_;
  std::map<std::string, std::string> offer{
      {"InitiatorName", config_.initiator_name},
      {"SessionType", "Normal"},
      {"MaxRecvDataSegmentLength", std::to_string(config_.max_data_segment)},
  };
  if (config_.request_header_digest) offer["HeaderDigest"] = "CRC32C,None";
  req.data = encode_login_kv(offer);
  PRINS_RETURN_IF_ERROR(transport_->send(req.encode()));

  PRINS_ASSIGN_OR_RETURN(Bytes message, transport_->recv());
  PRINS_ASSIGN_OR_RETURN(Pdu resp, Pdu::decode(message));
  if (resp.opcode != Opcode::kLoginResponse) {
    return failed_precondition("expected Login-Response, got " +
                               std::string(opcode_name(resp.opcode)));
  }
  // Status class/detail live in bytes 36-37 == top half of word9.
  const std::uint8_t status_class = static_cast<std::uint8_t>(resp.word9 >> 24);
  if (status_class != 0) {
    return unavailable("login rejected, status class " +
                       std::to_string(status_class));
  }
  auto kv = decode_login_kv(resp.data);
  if (auto it = kv.find("TargetName"); it != kv.end()) {
    target_name_ = it->second;
  }
  if (auto it = kv.find("MaxRecvDataSegmentLength"); it != kv.end()) {
    const unsigned long v = std::strtoul(it->second.c_str(), nullptr, 10);
    if (v > 0) {
      config_.max_data_segment = std::min<std::uint32_t>(
          config_.max_data_segment, static_cast<std::uint32_t>(v));
      config_.max_immediate_data =
          std::min(config_.max_immediate_data, config_.max_data_segment);
    }
  }
  if (auto it = kv.find("HeaderDigest");
      it != kv.end() && it->second == "CRC32C") {
    header_digest_ = true;
  }
  exp_stat_sn_ = resp.word6 + 1;
  return Status::ok();
}

Status IscsiInitiator::discover_geometry() {
  Bytes inquiry(36);
  {
    std::lock_guard lock(mutex_);
    PRINS_RETURN_IF_ERROR(command(make_inquiry(36), {}, inquiry));
  }
  if ((inquiry[0] & 0x1F) != 0x00) {
    return failed_precondition("target LUN is not a direct-access device");
  }
  Bytes capacity(8);
  {
    std::lock_guard lock(mutex_);
    PRINS_RETURN_IF_ERROR(command(make_read_capacity10(), {}, capacity));
  }
  const std::uint32_t max_lba = load_be32(ByteSpan(capacity).subspan(0, 4));
  block_size_ = load_be32(ByteSpan(capacity).subspan(4, 4));
  num_blocks_ = static_cast<std::uint64_t>(max_lba) + 1;
  if (block_size_ == 0) {
    return corruption("target reported zero block size");
  }
  return Status::ok();
}

std::uint32_t IscsiInitiator::blocks_per_command() const {
  // READ(10)/WRITE(10) carry a 16-bit block count; also bound the payload
  // bytes so a command's data fits in a sane number of segments.
  const std::uint32_t by_payload =
      std::max<std::uint32_t>(1, (8u << 20) / block_size_);
  return std::min<std::uint32_t>(0xFFFF, by_payload);
}

Status IscsiInitiator::command(const Cdb& cdb, ByteSpan write_data,
                               MutByteSpan read_buf) {
  if (closed_) return unavailable("initiator is logged out");

  Pdu cmd;
  cmd.opcode = Opcode::kScsiCommand;
  cmd.flags = kFlagFinal;
  if (!read_buf.empty()) cmd.flags |= kFlagRead;
  if (!write_data.empty()) cmd.flags |= kFlagWrite;
  cmd.itt = next_itt_++;
  cmd.word5 = static_cast<std::uint32_t>(
      std::max(write_data.size(), read_buf.size()));  // EDTL
  cmd.word6 = cmd_sn_++;
  cmd.word7 = exp_stat_sn_;

  Byte cdb_bytes[kCdbSize];
  cdb.encode(cdb_bytes);
  cmd.word8 = load_be32(ByteSpan(cdb_bytes).subspan(0, 4));
  cmd.word9 = load_be32(ByteSpan(cdb_bytes).subspan(4, 4));
  cmd.word10 = load_be32(ByteSpan(cdb_bytes).subspan(8, 4));
  cmd.word11 = load_be32(ByteSpan(cdb_bytes).subspan(12, 4));

  // Immediate data: as much of the write payload as allowed rides along.
  const std::size_t immediate =
      std::min<std::size_t>(write_data.size(), config_.max_immediate_data);
  if (immediate > 0) {
    cmd.data = to_bytes(write_data.first(immediate));
  }
  PRINS_RETURN_IF_ERROR(transport_->send(cmd.encode(header_digest_)));

  std::size_t read_received = 0;
  for (;;) {
    PRINS_ASSIGN_OR_RETURN(Bytes message, transport_->recv());
    PRINS_ASSIGN_OR_RETURN(Pdu pdu, Pdu::decode(message, header_digest_));
    switch (pdu.opcode) {
      case Opcode::kDataIn: {
        if (pdu.itt != cmd.itt) {
          return failed_precondition("Data-In for unexpected ITT");
        }
        const std::uint64_t off = pdu.word10;
        if (off + pdu.data.size() > read_buf.size()) {
          return corruption("Data-In overflows read buffer");
        }
        std::memcpy(read_buf.data() + off, pdu.data.data(), pdu.data.size());
        read_received += pdu.data.size();
        break;
      }
      case Opcode::kR2t: {
        if (pdu.itt != cmd.itt) {
          return failed_precondition("R2T for unexpected ITT");
        }
        std::uint64_t off = pdu.word10;
        std::uint64_t remaining = pdu.word11;
        if (off + remaining > write_data.size()) {
          return corruption("R2T requests bytes beyond the write payload");
        }
        std::uint32_t data_sn = 0;
        while (remaining > 0) {
          const std::uint64_t len =
              std::min<std::uint64_t>(remaining, config_.max_data_segment);
          Pdu dout;
          dout.opcode = Opcode::kDataOut;
          dout.itt = cmd.itt;
          dout.word5 = pdu.word5;  // target transfer tag
          dout.word7 = exp_stat_sn_;
          dout.word9 = data_sn++;
          dout.word10 = static_cast<std::uint32_t>(off);
          dout.data = to_bytes(write_data.subspan(off, len));
          off += len;
          remaining -= len;
          if (remaining == 0) dout.flags |= kFlagFinal;
          PRINS_RETURN_IF_ERROR(
              transport_->send(dout.encode(header_digest_)));
        }
        break;
      }
      case Opcode::kScsiResponse: {
        if (pdu.itt != cmd.itt) {
          return failed_precondition("SCSI Response for unexpected ITT");
        }
        exp_stat_sn_ = pdu.word6 + 1;
        if (pdu.byte3 != kScsiGood) {
          return io_error("SCSI status 0x" + std::to_string(pdu.byte3) +
                          " (sense " + std::to_string(pdu.data.size()) +
                          " bytes)");
        }
        if (!read_buf.empty() && read_received < read_buf.size()) {
          return corruption("short read: got " +
                            std::to_string(read_received) + " of " +
                            std::to_string(read_buf.size()) + " bytes");
        }
        return Status::ok();
      }
      default:
        return failed_precondition("unexpected PDU " +
                                   std::string(opcode_name(pdu.opcode)) +
                                   " during command");
    }
  }
}

Status IscsiInitiator::read(Lba lba, MutByteSpan out) {
  PRINS_RETURN_IF_ERROR(check_io(lba, out.size()));
  std::lock_guard lock(mutex_);
  const std::uint32_t chunk = blocks_per_command();
  std::uint64_t done_blocks = 0;
  const std::uint64_t total_blocks = out.size() / block_size_;
  while (done_blocks < total_blocks) {
    const auto n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(chunk, total_blocks - done_blocks));
    auto sub = out.subspan(done_blocks * block_size_,
                           static_cast<std::size_t>(n) * block_size_);
    const std::uint64_t at = lba + done_blocks;
    // READ(10) reaches 2 TiB at 512-byte blocks; beyond that use READ(16).
    const Cdb cdb = at + n - 1 <= 0xFFFFFFFFull
                        ? make_read10(static_cast<std::uint32_t>(at),
                                      static_cast<std::uint16_t>(n))
                        : make_read16(at, n);
    PRINS_RETURN_IF_ERROR(command(cdb, {}, sub));
    done_blocks += n;
  }
  return Status::ok();
}

Status IscsiInitiator::write(Lba lba, ByteSpan data) {
  PRINS_RETURN_IF_ERROR(check_io(lba, data.size()));
  std::lock_guard lock(mutex_);
  const std::uint32_t chunk = blocks_per_command();
  std::uint64_t done_blocks = 0;
  const std::uint64_t total_blocks = data.size() / block_size_;
  while (done_blocks < total_blocks) {
    const auto n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(chunk, total_blocks - done_blocks));
    auto sub = data.subspan(done_blocks * block_size_,
                            static_cast<std::size_t>(n) * block_size_);
    const std::uint64_t at = lba + done_blocks;
    const Cdb cdb = at + n - 1 <= 0xFFFFFFFFull
                        ? make_write10(static_cast<std::uint32_t>(at),
                                       static_cast<std::uint16_t>(n))
                        : make_write16(at, n);
    PRINS_RETURN_IF_ERROR(command(cdb, sub, {}));
    done_blocks += n;
  }
  return Status::ok();
}

Status IscsiInitiator::flush() {
  std::lock_guard lock(mutex_);
  return command(make_synchronize_cache10(), {}, {});
}

Result<std::vector<std::uint64_t>> IscsiInitiator::report_luns() {
  std::lock_guard lock(mutex_);
  if (closed_) return unavailable("initiator is logged out");
  // Standard two-step: fetch the 8-byte header for the list length, then
  // the exact list.
  Bytes header(8);
  PRINS_RETURN_IF_ERROR(command(make_report_luns(8), {}, header));
  const std::uint32_t list_bytes = load_be32(ByteSpan(header).first(4));
  std::vector<std::uint64_t> luns;
  if (list_bytes == 0) return luns;
  Bytes data(8 + list_bytes);
  PRINS_RETURN_IF_ERROR(
      command(make_report_luns(static_cast<std::uint32_t>(data.size())), {},
              data));
  for (std::uint32_t off = 8; off + 8 <= data.size(); off += 8) {
    luns.push_back(load_be64(ByteSpan(data).subspan(off, 8)));
  }
  return luns;
}

Status IscsiInitiator::ping() {
  std::lock_guard lock(mutex_);
  if (closed_) return unavailable("initiator is logged out");
  Pdu nop;
  nop.opcode = Opcode::kNopOut;
  nop.flags = kFlagFinal;
  nop.itt = next_itt_++;
  nop.word6 = cmd_sn_;
  nop.word7 = exp_stat_sn_;
  nop.data = to_bytes(as_bytes("prins-ping"));
  PRINS_RETURN_IF_ERROR(transport_->send(nop.encode(header_digest_)));
  PRINS_ASSIGN_OR_RETURN(Bytes message, transport_->recv());
  PRINS_ASSIGN_OR_RETURN(Pdu reply, Pdu::decode(message, header_digest_));
  if (reply.opcode != Opcode::kNopIn || reply.itt != nop.itt) {
    return failed_precondition("bad NOP-In reply");
  }
  return Status::ok();
}

Status IscsiInitiator::logout() {
  std::lock_guard lock(mutex_);
  if (closed_) return Status::ok();
  closed_ = true;
  Pdu req;
  req.opcode = Opcode::kLogoutRequest;
  req.flags = kFlagFinal;  // reason 0: close session
  req.itt = next_itt_++;
  req.word6 = cmd_sn_;
  req.word7 = exp_stat_sn_;
  Status sent = transport_->send(req.encode(header_digest_));
  if (sent.is_ok()) {
    (void)transport_->recv();  // LogoutResponse; ignore content
  }
  transport_->close();
  return Status::ok();
}

std::string IscsiInitiator::describe() const {
  return "iscsi(" + target_name_ + "," + std::to_string(num_blocks_) + "x" +
         std::to_string(block_size_) + ")";
}

}  // namespace prins::iscsi
