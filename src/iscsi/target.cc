#include "iscsi/target.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/endian.h"
#include "common/logging.h"
#include "iscsi/scsi.h"

namespace prins::iscsi {

IscsiTarget::IscsiTarget(std::shared_ptr<BlockDevice> device,
                         TargetConfig config)
    : device_(std::move(device)), config_(std::move(config)) {}

Status IscsiTarget::serve(Transport& transport) {
  Session session;
  for (;;) {
    auto message = transport.recv();
    if (!message.is_ok()) {
      // A disconnect after login is a normal way for a session to end.
      if (message.status().code() == ErrorCode::kUnavailable) {
        return Status::ok();
      }
      return message.status();
    }
    bool done = false;
    PRINS_RETURN_IF_ERROR(handle_frame(transport, session, *message, &done));
    if (done) return Status::ok();
  }
}

Status IscsiTarget::handle_frame(Transport& transport, Session& session,
                                 ByteSpan message, bool* done) {
  *done = false;
  PRINS_ASSIGN_OR_RETURN(Pdu pdu, Pdu::decode(message, session.header_digest));

  if (!session.logged_in && pdu.opcode != Opcode::kLoginRequest) {
    return failed_precondition("PDU " + std::string(opcode_name(pdu.opcode)) +
                               " before login");
  }
  if (session.pending.active) {
    // Mid data phase: the initiator owes us Data-Out for the pending
    // write; anything else is out of order.
    if (pdu.opcode != Opcode::kDataOut || pdu.itt != session.pending.itt) {
      return failed_precondition("expected Data-Out for ITT " +
                                 std::to_string(session.pending.itt));
    }
    return handle_data_out(transport, session, pdu);
  }

  switch (pdu.opcode) {
    case Opcode::kLoginRequest:
      PRINS_RETURN_IF_ERROR(handle_login(transport, session, pdu));
      break;
    case Opcode::kScsiCommand:
      commands_.fetch_add(1, std::memory_order_relaxed);
      PRINS_RETURN_IF_ERROR(handle_scsi(transport, session, pdu));
      break;
    case Opcode::kNopOut: {
      if (pdu.itt == 0xFFFFFFFFu) break;  // unsolicited ping, no reply
      Pdu reply;
      reply.opcode = Opcode::kNopIn;
      reply.flags = kFlagFinal;
      reply.itt = pdu.itt;
      reply.word6 = session.stat_sn++;
      reply.word7 = session.exp_cmd_sn;
      reply.data = pdu.data;  // echo ping payload
      PRINS_RETURN_IF_ERROR(
          transport.send(reply.encode(session.header_digest)));
      break;
    }
    case Opcode::kTextRequest: {
      // Discovery: answer SendTargets with the target we serve.
      auto kv = decode_login_kv(pdu.data);
      Pdu reply;
      reply.opcode = Opcode::kTextResponse;
      reply.flags = kFlagFinal;
      reply.itt = pdu.itt;
      reply.word5 = 0xFFFFFFFFu;  // no continuation
      reply.word6 = session.stat_sn++;
      reply.word7 = session.exp_cmd_sn;
      if (kv.contains("SendTargets")) {
        reply.data = encode_login_kv({{"TargetName", config_.target_name}});
      }
      PRINS_RETURN_IF_ERROR(
          transport.send(reply.encode(session.header_digest)));
      break;
    }
    case Opcode::kLogoutRequest: {
      Pdu reply;
      reply.opcode = Opcode::kLogoutResponse;
      reply.flags = kFlagFinal;
      reply.itt = pdu.itt;
      reply.word6 = session.stat_sn++;
      reply.word7 = session.exp_cmd_sn;
      PRINS_RETURN_IF_ERROR(
          transport.send(reply.encode(session.header_digest)));
      *done = true;
      break;
    }
    case Opcode::kDataOut:
      return failed_precondition("unsolicited Data-Out");
    default: {
      Pdu reject;
      reject.opcode = Opcode::kReject;
      reject.flags = kFlagFinal;
      reject.byte2 = 0x04;  // protocol error
      reject.itt = 0xFFFFFFFFu;
      reject.word6 = session.stat_sn++;
      PRINS_RETURN_IF_ERROR(
          transport.send(reject.encode(session.header_digest)));
      break;
    }
  }
  return Status::ok();
}

Status IscsiTarget::handle_login(Transport& transport, Session& session,
                                 const Pdu& request) {
  auto kv = decode_login_kv(request.data);
  PRINS_LOG(kDebug) << "login from "
                    << (kv.contains("InitiatorName") ? kv["InitiatorName"]
                                                     : "<anonymous>");
  Pdu reply;
  reply.opcode = Opcode::kLoginResponse;
  // Echo the transit request; move to full-feature phase.
  reply.flags = static_cast<std::uint8_t>(kLoginTransit |
                                          (kStageOperational << 2) |
                                          kStageFullFeature);
  reply.byte2 = 0x00;  // version-max
  reply.byte3 = 0x00;  // version-active
  reply.lun = request.lun;  // ISID echo lives in the same bytes
  reply.itt = request.itt;
  reply.word6 = session.stat_sn++;
  reply.word7 = session.exp_cmd_sn;
  reply.word8 = session.exp_cmd_sn;  // MaxCmdSN
  const bool want_digest =
      config_.allow_header_digest &&
      kv.contains("HeaderDigest") &&
      kv["HeaderDigest"].find("CRC32C") != std::string::npos;
  std::map<std::string, std::string> params{
      {"TargetName", config_.target_name},
      {"MaxRecvDataSegmentLength", std::to_string(config_.max_data_segment)},
      {"ImmediateData", "Yes"},
      {"InitialR2T", "No"},
      {"HeaderDigest", want_digest ? "CRC32C" : "None"},
  };
  reply.data = encode_login_kv(params);
  // The login response itself is never digested; the digest takes effect
  // from the first full-feature-phase PDU.
  PRINS_RETURN_IF_ERROR(transport.send(reply.encode()));
  session.logged_in = true;
  session.header_digest = want_digest;
  return Status::ok();
}

Status IscsiTarget::send_response(Transport& transport, Session& session,
                                  std::uint32_t itt, std::uint8_t scsi_status,
                                  ByteSpan sense) {
  Pdu resp;
  resp.opcode = Opcode::kScsiResponse;
  resp.flags = kFlagFinal;
  resp.byte2 = 0x00;  // response: command completed at target
  resp.byte3 = scsi_status;
  resp.itt = itt;
  resp.word6 = session.stat_sn++;
  resp.word7 = session.exp_cmd_sn;
  resp.word8 = session.exp_cmd_sn + 63;  // MaxCmdSN: generous window
  resp.data = to_bytes(sense);
  return transport.send(resp.encode(session.header_digest));
}

Status IscsiTarget::handle_scsi(Transport& transport, Session& session,
                                const Pdu& command) {
  session.exp_cmd_sn = command.word6 + 1;
  // The CDB occupies BHS bytes 32-47, i.e. words 8..11 in wire order.
  Byte cdb_bytes[kCdbSize];
  store_be32(MutByteSpan(cdb_bytes).subspan(0, 4), command.word8);
  store_be32(MutByteSpan(cdb_bytes).subspan(4, 4), command.word9);
  store_be32(MutByteSpan(cdb_bytes).subspan(8, 4), command.word10);
  store_be32(MutByteSpan(cdb_bytes).subspan(12, 4), command.word11);
  auto cdb = Cdb::decode(ByteSpan(cdb_bytes, kCdbSize));
  if (!cdb.is_ok()) {
    return send_response(transport, session, command.itt, kScsiCheckCondition,
                         sense_invalid_cdb());
  }

  switch (cdb->op) {
    case ScsiOp::kTestUnitReady:
      return send_response(transport, session, command.itt, kScsiGood);
    case ScsiOp::kSynchronizeCache10: {
      Status s = device_->flush();
      if (!s.is_ok()) {
        return send_response(transport, session, command.itt,
                             kScsiCheckCondition, sense_medium_error());
      }
      return send_response(transport, session, command.itt, kScsiGood);
    }
    case ScsiOp::kInquiry: {
      Bytes data = make_inquiry_data();
      if (data.size() > cdb->alloc_len) data.resize(cdb->alloc_len);
      Pdu din;
      din.opcode = Opcode::kDataIn;
      din.flags = kFlagFinal;
      din.itt = command.itt;
      din.word5 = 0xFFFFFFFFu;  // TTT reserved
      din.word6 = session.stat_sn;
      din.word7 = session.exp_cmd_sn;
      din.data = std::move(data);
      PRINS_RETURN_IF_ERROR(transport.send(din.encode(session.header_digest)));
      return send_response(transport, session, command.itt, kScsiGood);
    }
    case ScsiOp::kReportLuns: {
      Bytes data = make_report_luns_data({0});
      if (data.size() > cdb->alloc_len) data.resize(cdb->alloc_len);
      Pdu din;
      din.opcode = Opcode::kDataIn;
      din.flags = kFlagFinal;
      din.itt = command.itt;
      din.word5 = 0xFFFFFFFFu;
      din.word6 = session.stat_sn;
      din.word7 = session.exp_cmd_sn;
      din.data = std::move(data);
      PRINS_RETURN_IF_ERROR(transport.send(din.encode(session.header_digest)));
      return send_response(transport, session, command.itt, kScsiGood);
    }
    case ScsiOp::kReadCapacity10: {
      Pdu din;
      din.opcode = Opcode::kDataIn;
      din.flags = kFlagFinal;
      din.itt = command.itt;
      din.word5 = 0xFFFFFFFFu;
      din.word6 = session.stat_sn;
      din.word7 = session.exp_cmd_sn;
      din.data =
          make_read_capacity10_data(device_->num_blocks(), device_->block_size());
      PRINS_RETURN_IF_ERROR(transport.send(din.encode(session.header_digest)));
      return send_response(transport, session, command.itt, kScsiGood);
    }
    case ScsiOp::kRead10:
    case ScsiOp::kRead16:
      return do_read(transport, session, command, cdb->lba, cdb->blocks);
    case ScsiOp::kWrite10:
    case ScsiOp::kWrite16:
      return do_write(transport, session, command, cdb->lba, cdb->blocks);
  }
  return send_response(transport, session, command.itt, kScsiCheckCondition,
                       sense_invalid_cdb());
}

Status IscsiTarget::do_read(Transport& transport, Session& session,
                            const Pdu& cmd, std::uint64_t lba,
                            std::uint32_t blocks) {
  const std::uint32_t bs = device_->block_size();
  const std::uint64_t total = static_cast<std::uint64_t>(blocks) * bs;
  if (blocks == 0 ||
      lba >= device_->num_blocks() ||
      blocks > device_->num_blocks() - lba) {
    return send_response(transport, session, cmd.itt, kScsiCheckCondition,
                         sense_lba_out_of_range());
  }
  Bytes buffer(total);
  Status s = device_->read(lba, buffer);
  if (!s.is_ok()) {
    return send_response(transport, session, cmd.itt, kScsiCheckCondition,
                         sense_medium_error());
  }
  // Stream the payload as Data-In PDUs of at most max_data_segment bytes.
  std::uint32_t data_sn = 0;
  for (std::uint64_t off = 0; off < total; off += config_.max_data_segment) {
    const std::uint64_t len =
        std::min<std::uint64_t>(config_.max_data_segment, total - off);
    Pdu din;
    din.opcode = Opcode::kDataIn;
    din.itt = cmd.itt;
    din.word5 = 0xFFFFFFFFu;
    din.word6 = session.stat_sn;
    din.word7 = session.exp_cmd_sn;
    din.word9 = data_sn++;
    din.word10 = static_cast<std::uint32_t>(off);  // buffer offset
    din.data.assign(buffer.begin() + static_cast<std::ptrdiff_t>(off),
                    buffer.begin() + static_cast<std::ptrdiff_t>(off + len));
    if (off + len == total) din.flags |= kFlagFinal;
    PRINS_RETURN_IF_ERROR(transport.send(din.encode(session.header_digest)));
  }
  return send_response(transport, session, cmd.itt, kScsiGood);
}

Status IscsiTarget::do_write(Transport& transport, Session& session,
                             const Pdu& cmd, std::uint64_t lba,
                             std::uint32_t blocks) {
  const std::uint32_t bs = device_->block_size();
  const std::uint64_t total = static_cast<std::uint64_t>(blocks) * bs;
  if (blocks == 0 ||
      lba >= device_->num_blocks() ||
      blocks > device_->num_blocks() - lba) {
    return send_response(transport, session, cmd.itt, kScsiCheckCondition,
                         sense_lba_out_of_range());
  }
  Bytes buffer(total, 0);
  // Immediate data arrives in the command PDU itself.
  std::uint64_t received = std::min<std::uint64_t>(cmd.data.size(), total);
  if (received > 0) std::memcpy(buffer.data(), cmd.data.data(), received);

  if (received < total) {
    // Ask for the rest with one R2T covering the remainder, then park the
    // partial buffer in the session: the data phase completes as Data-Out
    // PDUs arrive (handle_frame routes them to handle_data_out), so no
    // nested recv() loop blocks the caller mid-command.
    const std::uint32_t ttt = session.next_ttt++;
    Pdu r2t;
    r2t.opcode = Opcode::kR2t;
    r2t.flags = kFlagFinal;
    r2t.itt = cmd.itt;
    r2t.word5 = ttt;
    r2t.word6 = session.stat_sn;
    r2t.word7 = session.exp_cmd_sn;
    r2t.word9 = 0;  // R2TSN
    r2t.word10 = static_cast<std::uint32_t>(received);       // offset
    r2t.word11 = static_cast<std::uint32_t>(total - received);  // length
    PRINS_RETURN_IF_ERROR(transport.send(r2t.encode(session.header_digest)));
    session.pending.active = true;
    session.pending.itt = cmd.itt;
    session.pending.lba = lba;
    session.pending.total = total;
    session.pending.received = received;
    session.pending.buffer = std::move(buffer);
    return Status::ok();
  }

  Status s = device_->write(lba, buffer);
  if (!s.is_ok()) {
    return send_response(transport, session, cmd.itt, kScsiCheckCondition,
                         sense_medium_error());
  }
  return send_response(transport, session, cmd.itt, kScsiGood);
}

Status IscsiTarget::handle_data_out(Transport& transport, Session& session,
                                    const Pdu& dout) {
  PendingWrite& pending = session.pending;
  const std::uint64_t off = dout.word10;
  if (off + dout.data.size() > pending.total) {
    const std::uint32_t itt = pending.itt;
    pending = PendingWrite{};
    return send_response(transport, session, itt, kScsiCheckCondition,
                         sense_invalid_cdb());
  }
  std::memcpy(pending.buffer.data() + off, dout.data.data(), dout.data.size());
  pending.received += dout.data.size();
  if (pending.received < pending.total) return Status::ok();

  // Data phase complete: land the write and retire the pending state.
  const std::uint32_t itt = pending.itt;
  const std::uint64_t lba = pending.lba;
  Bytes buffer = std::move(pending.buffer);
  pending = PendingWrite{};
  Status s = device_->write(lba, buffer);
  if (!s.is_ok()) {
    return send_response(transport, session, itt, kScsiCheckCondition,
                         sense_medium_error());
  }
  return send_response(transport, session, itt, kScsiGood);
}

std::thread serve_in_background(std::shared_ptr<IscsiTarget> target,
                                std::shared_ptr<Listener> listener) {
  return std::thread([target = std::move(target),
                      listener = std::move(listener)] {
    std::vector<std::thread> sessions;
    int consecutive_failures = 0;
    for (;;) {
      auto conn = listener->accept();
      if (!conn.is_ok()) {
        // Closed listener = clean shutdown; other accept errors are
        // transient — retry rather than abandoning every future initiator,
        // but don't spin forever if accept() only ever fails.
        if (conn.status().code() == ErrorCode::kUnavailable) break;
        PRINS_LOG(kWarn) << "iSCSI accept: " << conn.status().to_string();
        if (++consecutive_failures >= 64) {
          PRINS_LOG(kError)
              << "iSCSI accept failing persistently; stopping the loop";
          break;
        }
        continue;
      }
      consecutive_failures = 0;
      // One session thread per initiator: a slow or failed connection no
      // longer wedges the accept loop behind it.
      sessions.emplace_back(
          [target, conn = std::shared_ptr<Transport>(std::move(*conn))] {
            Status s = target->serve(*conn);
            if (!s.is_ok()) {
              PRINS_LOG(kWarn)
                  << "iSCSI session ended with error: " << s.to_string();
            }
          });
    }
    for (std::thread& session : sessions) session.join();
  });
}

}  // namespace prins::iscsi
