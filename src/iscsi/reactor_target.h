// ReactorIscsiServer: thread-free iSCSI serving on the reactor.
//
// serve_in_background() spends one blocking thread per initiator.  This
// server instead registers each accepted connection's PDU stream via
// ReactorTcp::set_message_handler and runs the target's frame state
// machine (IscsiTarget::handle_frame — one PDU in, replies out, never
// recv()s) on a small fixed worker pool: N initiators share
// O(reactor_threads + worker_threads) threads.
//
// Each connection is an actor: its handler appends frames to a
// per-session queue and schedules the session onto the pool; at most one
// worker drives a session at a time, so PDU handling stays serialized per
// connection (the iSCSI session state machine requires it) while distinct
// initiators proceed in parallel.  Device I/O runs on the workers, never
// on a loop thread.  A session whose queue backs up has its reads paused
// (set_read_paused) until the workers catch up.
#pragma once

#include <cstdint>
#include <memory>

#include "iscsi/target.h"
#include "net/reactor_tcp.h"

namespace prins::iscsi {

struct ReactorIscsiServerOptions {
  /// Port to bind (0 picks a free port; see port()).
  std::uint16_t port = 0;
  /// Per-connection transport options.
  ReactorTcpOptions transport;
  /// Workers draining session frame queues (device I/O runs here).
  std::size_t worker_threads = 2;
  /// Frames a session may queue before its reads pause (resumes at half).
  std::size_t max_queued_frames = 256;
};

class ReactorIscsiServer {
 public:
  /// Bind a ReactorListener on `pool` and serve `target` to every
  /// connection, handler-driven.
  static Result<std::unique_ptr<ReactorIscsiServer>> start(
      std::shared_ptr<IscsiTarget> target, std::shared_ptr<ReactorPool> pool,
      const ReactorIscsiServerOptions& options = {});

  ~ReactorIscsiServer();

  ReactorIscsiServer(const ReactorIscsiServer&) = delete;
  ReactorIscsiServer& operator=(const ReactorIscsiServer&) = delete;

  /// Close the listener and every live connection, then join the workers.
  /// Idempotent; the destructor calls it.
  void stop();

  /// The bound port (for initiators to connect to).
  std::uint16_t port() const;

  /// Live connections right now (tests).
  std::size_t sessions() const;

 private:
  struct Impl;
  explicit ReactorIscsiServer(std::shared_ptr<Impl> impl);

  std::shared_ptr<Impl> impl_;
};

}  // namespace prins::iscsi
