// IscsiTarget: serves a BlockDevice to iSCSI initiators.
//
// This is the home of the PRINS engine in the paper's architecture: the
// engine is "a software module inside the iSCSI target".  The target is
// storage-agnostic — hand it a MemDisk, a RaidArray, or a PRINS-decorated
// device and it serves READ/WRITE over any Transport.
//
// Supported flow per connection: login negotiation (operational ->
// full-feature), SCSI commands with immediate write data, R2T + Data-Out
// for writes larger than the negotiated immediate limit, chunked Data-In
// for reads, NOP ping, logout.  One connection at a time per serve() call;
// run several serve()s on threads for multiple initiators.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "block/block_device.h"
#include "iscsi/pdu.h"
#include "net/transport.h"

namespace prins::iscsi {

struct TargetConfig {
  std::string target_name = "iqn.2006-04.edu.uri.hpcl:storage.prins";
  /// Largest data segment we send in one Data-In PDU and accept in one
  /// SCSI Command / Data-Out PDU.
  std::uint32_t max_data_segment = 64 * 1024;
  /// Writes with at most this much immediate data skip the R2T round trip.
  std::uint32_t max_immediate_data = 64 * 1024;
  /// Accept HeaderDigest=CRC32C when the initiator offers it.
  bool allow_header_digest = true;
};

class IscsiTarget {
 public:
  IscsiTarget(std::shared_ptr<BlockDevice> device, TargetConfig config = {});

  /// Serve one initiator connection until logout or disconnect.
  /// Returns OK on clean logout/disconnect, an error on protocol violations.
  Status serve(Transport& transport);

  std::uint64_t commands_served() const { return commands_.load(); }

 private:
  struct Session {
    bool logged_in = false;
    bool header_digest = false;  // negotiated at login
    std::uint32_t stat_sn = 1;
    std::uint32_t exp_cmd_sn = 1;
    std::uint32_t next_ttt = 1;
  };

  Status handle_login(Transport& transport, Session& session,
                      const Pdu& request);
  Status handle_scsi(Transport& transport, Session& session,
                     const Pdu& command);
  Status do_read(Transport& transport, Session& session, const Pdu& cmd,
                 std::uint64_t lba, std::uint32_t blocks);
  Status do_write(Transport& transport, Session& session,
                  const Pdu& cmd, std::uint64_t lba,
                  std::uint32_t blocks);
  Status send_response(Transport& transport, Session& session,
                       std::uint32_t itt, std::uint8_t scsi_status,
                       ByteSpan sense = {});

  std::shared_ptr<BlockDevice> device_;
  TargetConfig config_;
  std::atomic<std::uint64_t> commands_{0};
};

/// Convenience: accept connections from `listener` on a background thread,
/// serving each sequentially, until the listener closes.  Returns the thread;
/// join it after closing the listener.
std::thread serve_in_background(std::shared_ptr<IscsiTarget> target,
                                std::shared_ptr<Listener> listener);

}  // namespace prins::iscsi
