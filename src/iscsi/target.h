// IscsiTarget: serves a BlockDevice to iSCSI initiators.
//
// This is the home of the PRINS engine in the paper's architecture: the
// engine is "a software module inside the iSCSI target".  The target is
// storage-agnostic — hand it a MemDisk, a RaidArray, or a PRINS-decorated
// device and it serves READ/WRITE over any Transport.
//
// Supported flow per connection: login negotiation (operational ->
// full-feature), SCSI commands with immediate write data, R2T + Data-Out
// for writes larger than the negotiated immediate limit, chunked Data-In
// for reads, NOP ping, logout.  One connection at a time per serve() call;
// run several serve()s on threads for multiple initiators, or serve many
// initiators on O(1) threads with ReactorIscsiServer
// (iscsi/reactor_target.h).
//
// The PDU loop is a pure state machine: handle_frame() consumes one PDU
// and never calls recv() — a write awaiting Data-Out after an R2T parks
// its partial buffer in the session (PendingWrite) instead of nesting a
// receive loop, so the same code drives both the blocking serve() loop
// and the reactor's handler-driven fan-in.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "block/block_device.h"
#include "iscsi/pdu.h"
#include "net/transport.h"

namespace prins::iscsi {

struct TargetConfig {
  std::string target_name = "iqn.2006-04.edu.uri.hpcl:storage.prins";
  /// Largest data segment we send in one Data-In PDU and accept in one
  /// SCSI Command / Data-Out PDU.
  std::uint32_t max_data_segment = 64 * 1024;
  /// Writes with at most this much immediate data skip the R2T round trip.
  std::uint32_t max_immediate_data = 64 * 1024;
  /// Accept HeaderDigest=CRC32C when the initiator offers it.
  bool allow_header_digest = true;
};

class IscsiTarget {
 public:
  IscsiTarget(std::shared_ptr<BlockDevice> device, TargetConfig config = {});

  /// Serve one initiator connection until logout or disconnect.
  /// Returns OK on clean logout/disconnect, an error on protocol violations.
  Status serve(Transport& transport);

  std::uint64_t commands_served() const { return commands_.load(); }

 private:
  // The reactor-hosted server drives handle_frame() per connection from
  // loop-thread callbacks instead of a blocking recv() loop.
  friend class ReactorIscsiServer;

  /// A write command mid-flight: the R2T went out and the session is
  /// collecting Data-Out PDUs into `buffer` until `received` covers the
  /// transfer.  While active, any PDU other than the matching Data-Out is
  /// a protocol error (the initiator owes us the data phase).
  struct PendingWrite {
    bool active = false;
    std::uint32_t itt = 0;
    std::uint64_t lba = 0;
    std::uint64_t total = 0;
    std::uint64_t received = 0;
    Bytes buffer;
  };

  struct Session {
    bool logged_in = false;
    bool header_digest = false;  // negotiated at login
    std::uint32_t stat_sn = 1;
    std::uint32_t exp_cmd_sn = 1;
    std::uint32_t next_ttt = 1;
    PendingWrite pending;
  };

  /// Consume exactly one wire message (PDU): decode, dispatch, send any
  /// replies.  Never calls transport.recv().  Sets *done on logout.
  Status handle_frame(Transport& transport, Session& session,
                      ByteSpan message, bool* done);

  Status handle_login(Transport& transport, Session& session,
                      const Pdu& request);
  Status handle_data_out(Transport& transport, Session& session,
                         const Pdu& dout);
  Status handle_scsi(Transport& transport, Session& session,
                     const Pdu& command);
  Status do_read(Transport& transport, Session& session, const Pdu& cmd,
                 std::uint64_t lba, std::uint32_t blocks);
  Status do_write(Transport& transport, Session& session,
                  const Pdu& cmd, std::uint64_t lba,
                  std::uint32_t blocks);
  Status send_response(Transport& transport, Session& session,
                       std::uint32_t itt, std::uint8_t scsi_status,
                       ByteSpan sense = {});

  std::shared_ptr<BlockDevice> device_;
  TargetConfig config_;
  std::atomic<std::uint64_t> commands_{0};
};

/// Convenience: accept connections from `listener` on a background thread,
/// serving each initiator on its own session thread (concurrently).
/// Transient accept() errors are retried; the loop exits cleanly only when
/// the listener closes (or accept() fails persistently).  Per-session
/// errors are logged, never wedge the accept loop.  Returns the accept
/// thread; join it after closing the listener — it joins every session
/// thread first.
std::thread serve_in_background(std::shared_ptr<IscsiTarget> target,
                                std::shared_ptr<Listener> listener);

}  // namespace prins::iscsi
