#include "iscsi/pdu.h"

#include "common/crc32c.h"
#include "common/endian.h"

namespace prins::iscsi {

Bytes Pdu::encode(bool header_digest) const {
  Bytes out(kBhsSize, 0);
  out[0] = static_cast<Byte>(static_cast<std::uint8_t>(opcode) |
                             (immediate ? 0x40 : 0x00));
  out[1] = flags;
  out[2] = byte2;
  out[3] = byte3;
  // byte 4: TotalAHSLength = 0 (no additional header segments)
  store_be24(MutByteSpan(out).subspan(5, 3),
             static_cast<std::uint32_t>(data.size()));
  store_be64(MutByteSpan(out).subspan(8, 8), lun);
  store_be32(MutByteSpan(out).subspan(16, 4), itt);
  store_be32(MutByteSpan(out).subspan(20, 4), word5);
  store_be32(MutByteSpan(out).subspan(24, 4), word6);
  store_be32(MutByteSpan(out).subspan(28, 4), word7);
  store_be32(MutByteSpan(out).subspan(32, 4), word8);
  store_be32(MutByteSpan(out).subspan(36, 4), word9);
  store_be32(MutByteSpan(out).subspan(40, 4), word10);
  store_be32(MutByteSpan(out).subspan(44, 4), word11);
  if (header_digest) {
    Byte digest[4];
    store_le32(digest, crc32c(ByteSpan(out).first(kBhsSize)));
    append(out, digest);
  }
  append(out, data);
  // Pad the data segment to a 4-byte boundary (RFC 3720 §10.2.3).
  while (out.size() % 4 != 0) out.push_back(0);
  return out;
}

Result<Pdu> Pdu::decode(ByteSpan message, bool header_digest) {
  const std::size_t header_bytes = kBhsSize + (header_digest ? 4 : 0);
  if (message.size() < header_bytes) {
    return corruption("PDU shorter than BHS: " +
                      std::to_string(message.size()) + " bytes");
  }
  Pdu pdu;
  const std::uint8_t op_byte = message[0];
  pdu.immediate = (op_byte & 0x40) != 0;
  const auto op = static_cast<Opcode>(op_byte & 0x3F);
  switch (op) {
    case Opcode::kNopOut:
    case Opcode::kScsiCommand:
    case Opcode::kLoginRequest:
    case Opcode::kTextRequest:
    case Opcode::kDataOut:
    case Opcode::kLogoutRequest:
    case Opcode::kNopIn:
    case Opcode::kScsiResponse:
    case Opcode::kLoginResponse:
    case Opcode::kTextResponse:
    case Opcode::kDataIn:
    case Opcode::kLogoutResponse:
    case Opcode::kR2t:
    case Opcode::kReject:
      pdu.opcode = op;
      break;
    default:
      return corruption("unknown iSCSI opcode 0x" + std::to_string(op_byte));
  }
  pdu.flags = message[1];
  pdu.byte2 = message[2];
  pdu.byte3 = message[3];
  if (message[4] != 0) {
    return unimplemented("AHS segments are not supported");
  }
  const std::uint32_t data_len = load_be24(message.subspan(5, 3));
  pdu.lun = load_be64(message.subspan(8, 8));
  pdu.itt = load_be32(message.subspan(16, 4));
  pdu.word5 = load_be32(message.subspan(20, 4));
  pdu.word6 = load_be32(message.subspan(24, 4));
  pdu.word7 = load_be32(message.subspan(28, 4));
  pdu.word8 = load_be32(message.subspan(32, 4));
  pdu.word9 = load_be32(message.subspan(36, 4));
  pdu.word10 = load_be32(message.subspan(40, 4));
  pdu.word11 = load_be32(message.subspan(44, 4));
  if (header_digest) {
    const std::uint32_t want = load_le32(message.subspan(kBhsSize, 4));
    if (crc32c(message.first(kBhsSize)) != want) {
      return corruption("iSCSI header digest mismatch");
    }
  }
  const std::size_t padded = (static_cast<std::size_t>(data_len) + 3) & ~3ull;
  if (message.size() < header_bytes + padded) {
    return corruption("PDU data segment truncated");
  }
  pdu.data = to_bytes(message.subspan(header_bytes, data_len));
  return pdu;
}

Bytes encode_login_kv(const std::map<std::string, std::string>& kv) {
  Bytes out;
  for (const auto& [key, value] : kv) {
    append(out, as_bytes(key));
    out.push_back('=');
    append(out, as_bytes(value));
    out.push_back(0);
  }
  return out;
}

std::map<std::string, std::string> decode_login_kv(ByteSpan data) {
  std::map<std::string, std::string> kv;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= data.size(); ++i) {
    if (i == data.size() || data[i] == 0) {
      if (i > start) {
        std::string pair(reinterpret_cast<const char*>(data.data() + start),
                         i - start);
        auto eq = pair.find('=');
        if (eq != std::string::npos) {
          kv.emplace(pair.substr(0, eq), pair.substr(eq + 1));
        }
      }
      start = i + 1;
    }
  }
  return kv;
}

std::string_view opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kNopOut: return "NOP-Out";
    case Opcode::kScsiCommand: return "SCSI-Command";
    case Opcode::kLoginRequest: return "Login-Request";
    case Opcode::kTextRequest: return "Text-Request";
    case Opcode::kDataOut: return "Data-Out";
    case Opcode::kLogoutRequest: return "Logout-Request";
    case Opcode::kNopIn: return "NOP-In";
    case Opcode::kScsiResponse: return "SCSI-Response";
    case Opcode::kLoginResponse: return "Login-Response";
    case Opcode::kTextResponse: return "Text-Response";
    case Opcode::kDataIn: return "Data-In";
    case Opcode::kLogoutResponse: return "Logout-Response";
    case Opcode::kR2t: return "R2T";
    case Opcode::kReject: return "Reject";
  }
  return "?";
}

}  // namespace prins::iscsi
