#include "iscsi/reactor_target.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace prins::iscsi {

struct ReactorIscsiServer::Impl : std::enable_shared_from_this<Impl> {
  /// One connection-actor: frames queue here, and at most one worker at a
  /// time drives the session's PDU state machine (`running`).
  struct Conn {
    std::shared_ptr<Transport> transport;
    ReactorTcpTransport* rt = nullptr;
    IscsiTarget::Session session;

    std::mutex m;
    std::deque<Bytes> frames;
    bool running = false;
    bool paused = false;
    bool dead = false;
  };

  Impl(std::shared_ptr<IscsiTarget> t, std::shared_ptr<ReactorPool> p,
       const ReactorIscsiServerOptions& opts)
      : target(std::move(t)), pool(std::move(p)), options(opts) {
    if (options.worker_threads == 0) options.worker_threads = 1;
    if (options.max_queued_frames == 0) options.max_queued_frames = 1;
  }

  std::shared_ptr<IscsiTarget> target;
  std::shared_ptr<ReactorPool> pool;
  ReactorIscsiServerOptions options;
  std::unique_ptr<ReactorListener> listener;

  std::mutex jobs_m;
  std::condition_variable jobs_cv;
  std::deque<std::shared_ptr<Conn>> jobs;
  bool jobs_closed = false;
  std::vector<std::thread> workers;

  mutable std::mutex sessions_mutex;
  std::vector<std::shared_ptr<Conn>> conns;
  bool stopping = false;
  bool joined = false;

  // ---- accept path (listener loop thread) -----------------------------------

  void on_connect(std::unique_ptr<Transport> transport) {
    auto* rt = dynamic_cast<ReactorTcpTransport*>(transport.get());
    if (rt == nullptr) {
      PRINS_LOG(kError) << "iSCSI reactor server: non-reactor transport";
      return;
    }
    auto conn = std::make_shared<Conn>();
    conn->transport = std::shared_ptr<Transport>(std::move(transport));
    conn->rt = rt;
    {
      std::lock_guard lock(sessions_mutex);
      if (stopping) {
        conn->transport->close();
        return;
      }
      conns.push_back(conn);
    }
    auto self = shared_from_this();
    rt->set_close_handler([self, conn](const Status& why) {
      self->on_disconnect(conn, why);
    });
    rt->set_message_handler([self, conn](Bytes&& message) {
      self->on_message(conn, std::move(message));
    });
  }

  void on_disconnect(const std::shared_ptr<Conn>& conn, const Status& why) {
    if (!why.is_ok() && why.code() != ErrorCode::kUnavailable) {
      PRINS_LOG(kWarn) << "iSCSI session ended: " << why.to_string();
    }
    {
      std::lock_guard lock(conn->m);
      conn->dead = true;
      conn->frames.clear();
    }
    // Break the connection->handler->conn reference cycle.
    conn->rt->set_message_handler(nullptr);
    std::lock_guard lock(sessions_mutex);
    conns.erase(std::remove(conns.begin(), conns.end(), conn), conns.end());
  }

  // ---- frame fan-in (connection loop thread; must never block) --------------

  void on_message(const std::shared_ptr<Conn>& conn, Bytes&& message) {
    bool schedule = false;
    {
      std::lock_guard lock(conn->m);
      if (conn->dead) return;
      conn->frames.push_back(std::move(message));
      if (!conn->paused && conn->frames.size() >= options.max_queued_frames) {
        conn->paused = true;
        conn->rt->set_read_paused(true);
      }
      if (!conn->running) {
        conn->running = true;
        schedule = true;
      }
    }
    if (schedule) enqueue_job(conn);
  }

  void enqueue_job(const std::shared_ptr<Conn>& conn) {
    {
      std::lock_guard lock(jobs_m);
      if (jobs_closed) return;
      jobs.push_back(conn);
    }
    jobs_cv.notify_one();
  }

  // ---- worker pool ----------------------------------------------------------

  void worker_loop() {
    for (;;) {
      std::shared_ptr<Conn> conn;
      {
        std::unique_lock lock(jobs_m);
        jobs_cv.wait(lock, [&] { return !jobs.empty() || jobs_closed; });
        if (jobs.empty()) return;  // closed and drained
        conn = std::move(jobs.front());
        jobs.pop_front();
      }
      drive(conn);
    }
  }

  /// Drain one session's frame queue.  Only one worker runs this per
  /// session at a time (`running`), so PDU handling — including the
  /// PendingWrite data phase — stays serialized per connection.
  void drive(const std::shared_ptr<Conn>& conn) {
    for (;;) {
      Bytes frame;
      {
        std::lock_guard lock(conn->m);
        if (conn->dead || conn->frames.empty()) {
          conn->running = false;
          maybe_resume_locked(*conn);
          return;
        }
        frame = std::move(conn->frames.front());
        conn->frames.pop_front();
        maybe_resume_locked(*conn);
      }
      bool done = false;
      Status s =
          target->handle_frame(*conn->transport, conn->session, frame, &done);
      if (s.is_ok() && !done) continue;
      if (!s.is_ok() && s.code() != ErrorCode::kUnavailable) {
        PRINS_LOG(kWarn) << "iSCSI session ended with error: "
                         << s.to_string();
      }
      // Logout or a fatal protocol/send error: close the connection (the
      // close handler reaps the session from the server's list).
      conn->transport->close();
      std::lock_guard lock(conn->m);
      conn->dead = true;
      conn->frames.clear();
      conn->running = false;
      return;
    }
  }

  /// `conn.m` held.
  void maybe_resume_locked(Conn& conn) {
    if (!conn.paused || conn.dead) return;
    if (conn.frames.size() > options.max_queued_frames / 2) return;
    conn.paused = false;
    conn.rt->set_read_paused(false);
  }

  // ---- lifecycle ------------------------------------------------------------

  void stop() {
    std::vector<std::shared_ptr<Conn>> snapshot;
    {
      std::lock_guard lock(sessions_mutex);
      if (stopping && joined) return;
      stopping = true;
      snapshot.swap(conns);
    }
    if (listener) listener->close();
    for (auto& conn : snapshot) {
      conn->rt->set_close_handler(nullptr);
      conn->rt->set_message_handler(nullptr);
      {
        std::lock_guard lock(conn->m);
        conn->dead = true;
        conn->frames.clear();
      }
      conn->transport->close();
    }
    {
      std::lock_guard lock(jobs_m);
      jobs_closed = true;
    }
    jobs_cv.notify_all();
    bool join_here = false;
    {
      std::lock_guard lock(sessions_mutex);
      if (!joined) {
        joined = true;
        join_here = true;
      }
    }
    if (join_here) {
      for (std::thread& worker : workers) worker.join();
    }
  }
};

ReactorIscsiServer::ReactorIscsiServer(std::shared_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

ReactorIscsiServer::~ReactorIscsiServer() { stop(); }

Result<std::unique_ptr<ReactorIscsiServer>> ReactorIscsiServer::start(
    std::shared_ptr<IscsiTarget> target, std::shared_ptr<ReactorPool> pool,
    const ReactorIscsiServerOptions& options) {
  auto impl =
      std::make_shared<Impl>(std::move(target), std::move(pool), options);
  PRINS_ASSIGN_OR_RETURN(
      impl->listener,
      ReactorListener::listen(impl->pool, options.port, options.transport));
  impl->workers.reserve(impl->options.worker_threads);
  for (std::size_t i = 0; i < impl->options.worker_threads; ++i) {
    impl->workers.emplace_back([impl] { impl->worker_loop(); });
  }
  impl->listener->set_accept_handler(
      [weak = std::weak_ptr<Impl>(impl)](std::unique_ptr<Transport> t) {
        if (auto self = weak.lock()) self->on_connect(std::move(t));
      });
  return std::unique_ptr<ReactorIscsiServer>(
      new ReactorIscsiServer(std::move(impl)));
}

void ReactorIscsiServer::stop() { impl_->stop(); }

std::uint16_t ReactorIscsiServer::port() const {
  return impl_->listener->port();
}

std::size_t ReactorIscsiServer::sessions() const {
  std::lock_guard lock(impl_->sessions_mutex);
  return impl_->conns.size();
}

}  // namespace prins::iscsi
