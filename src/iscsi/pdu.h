// iSCSI PDU encoding/decoding (RFC 3720 subset).
//
// Every PDU is a 48-byte big-endian Basic Header Segment followed by an
// optional data segment padded to a 4-byte boundary.  We implement the PDUs
// the PRINS testbed needs: Login, SCSI Command/Response, Data-In, Data-Out,
// R2T, NOP, Logout, Reject.  One transport message carries exactly one PDU.
//
// Field layouts follow RFC 3720 §10; unused fields are zero.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace prins::iscsi {

enum class Opcode : std::uint8_t {
  // initiator -> target
  kNopOut = 0x00,
  kScsiCommand = 0x01,
  kLoginRequest = 0x03,
  kTextRequest = 0x04,
  kDataOut = 0x05,
  kLogoutRequest = 0x06,
  // target -> initiator
  kNopIn = 0x20,
  kScsiResponse = 0x21,
  kLoginResponse = 0x23,
  kTextResponse = 0x24,
  kDataIn = 0x25,
  kLogoutResponse = 0x26,
  kR2t = 0x31,
  kReject = 0x3f,
};

constexpr std::size_t kBhsSize = 48;

/// Decoded generic PDU: the BHS fields common to all opcodes plus the raw
/// opcode-specific bytes, which typed views below interpret.
struct Pdu {
  Opcode opcode = Opcode::kNopOut;
  bool immediate = false;       // I bit (byte 0, 0x40)
  std::uint8_t flags = 0;       // byte 1
  std::uint8_t byte2 = 0;       // opcode-specific
  std::uint8_t byte3 = 0;       // opcode-specific
  std::uint64_t lun = 0;        // bytes 8-15
  std::uint32_t itt = 0;        // initiator task tag, bytes 16-19
  std::uint32_t word5 = 0;      // bytes 20-23 (TTT / EDTL / CID...)
  std::uint32_t word6 = 0;      // bytes 24-27 (CmdSN / StatSN)
  std::uint32_t word7 = 0;      // bytes 28-31 (ExpStatSN / ExpCmdSN)
  std::uint32_t word8 = 0;      // bytes 32-35 (MaxCmdSN / CDB[0..3])
  std::uint32_t word9 = 0;      // bytes 36-39 (DataSN / CDB[4..7])
  std::uint32_t word10 = 0;     // bytes 40-43 (BufferOffset / CDB[8..11])
  std::uint32_t word11 = 0;     // bytes 44-47 (Residual / CDB[12..15])
  Bytes data;                   // data segment (unpadded)

  /// Serialize to BHS [+ CRC32C header digest] + padded data segment.
  /// The digest flag is per-connection state negotiated at login
  /// (HeaderDigest=CRC32C); login PDUs themselves are never digested.
  Bytes encode(bool header_digest = false) const;

  /// Parse one PDU from a transport message; verifies the header digest
  /// when the connection negotiated one.
  static Result<Pdu> decode(ByteSpan message, bool header_digest = false);
};

// Flag bits.
inline constexpr std::uint8_t kFlagFinal = 0x80;      // F bit
inline constexpr std::uint8_t kFlagAck = 0x40;        // A bit (Data-In)
inline constexpr std::uint8_t kFlagRead = 0x40;       // R bit (SCSI Command)
inline constexpr std::uint8_t kFlagWrite = 0x20;      // W bit (SCSI Command)
inline constexpr std::uint8_t kFlagStatus = 0x01;     // S bit (Data-In)
inline constexpr std::uint8_t kLoginTransit = 0x80;   // T bit (Login)

/// Login stages (CSG/NSG values).
inline constexpr std::uint8_t kStageOperational = 1;
inline constexpr std::uint8_t kStageFullFeature = 3;

/// SCSI status codes carried in SCSI Response byte 3.
inline constexpr std::uint8_t kScsiGood = 0x00;
inline constexpr std::uint8_t kScsiCheckCondition = 0x02;

/// Encode/decode the login data segment's key=value pairs
/// (NUL-separated, RFC 3720 §5).
Bytes encode_login_kv(const std::map<std::string, std::string>& kv);
std::map<std::string, std::string> decode_login_kv(ByteSpan data);

/// Human-readable opcode name for logs and test failures.
std::string_view opcode_name(Opcode op);

}  // namespace prins::iscsi
