#include "queueing/mva.h"

#include <cassert>

namespace prins {

std::vector<MvaResult> solve_mva_curve(
    const std::vector<double>& service_times_sec, double think_time_sec,
    unsigned max_n) {
  assert(!service_times_sec.empty());
  assert(think_time_sec >= 0);
  const std::size_t k = service_times_sec.size();
  std::vector<double> queue(k, 0.0);  // Q_k(n-1)
  std::vector<MvaResult> curve;
  curve.reserve(max_n);
  for (unsigned n = 1; n <= max_n; ++n) {
    double total_r = 0.0;
    std::vector<double> r(k);
    for (std::size_t i = 0; i < k; ++i) {
      r[i] = service_times_sec[i] * (1.0 + queue[i]);
      total_r += r[i];
    }
    const double x = static_cast<double>(n) / (think_time_sec + total_r);
    for (std::size_t i = 0; i < k; ++i) queue[i] = x * r[i];
    curve.push_back(MvaResult{n, total_r, x, queue});
  }
  return curve;
}

MvaResult solve_mva(const std::vector<double>& service_times_sec,
                    double think_time_sec, unsigned n) {
  assert(n >= 1);
  return solve_mva_curve(service_times_sec, think_time_sec, n).back();
}

}  // namespace prins
