// Discrete-event simulation of the paper's closed queueing network —
// the "more accurate and detailed modeling" the paper defers to future
// work (§3.3).  Used to validate the exact-MVA solver: with exponential
// think and service times the two must agree, and with deterministic
// service times the DES quantifies how conservative the product-form
// model is.
//
// Topology (Figure 3): `population` customers cycle through a delay
// (think) centre and K FIFO single-server routers in series.
#pragma once

#include <cstdint>
#include <vector>

namespace prins {

struct DesConfig {
  unsigned population = 10;
  double think_time_mean_sec = 0.1;
  /// Mean service time per router, in visit order.
  std::vector<double> service_times_sec;
  /// Exponentially distributed service (matches MVA's assumptions) or
  /// deterministic (each service takes exactly the mean).
  bool exponential_service = true;
  /// Completed requests to simulate (after warmup).
  std::uint64_t requests = 200000;
  /// Fraction of initial completions discarded as warmup.
  double warmup_fraction = 0.1;
  std::uint64_t seed = 1;
};

struct DesResult {
  double mean_response_time_sec = 0;  // leave-think to finish-last-router
  double throughput_per_sec = 0;      // completions / simulated time
  std::vector<double> router_utilization;
  std::uint64_t completed = 0;
};

DesResult simulate_closed_network(const DesConfig& config);

}  // namespace prins
