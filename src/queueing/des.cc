#include "queueing/des.h"

#include <cassert>
#include <deque>
#include <queue>

#include "common/rng.h"

namespace prins {
namespace {

enum class EventKind { kThinkDone, kServiceDone };

struct Event {
  double time;
  EventKind kind;
  unsigned customer;
  unsigned router;  // for kServiceDone

  bool operator>(const Event& other) const { return time > other.time; }
};

struct Router {
  std::deque<unsigned> queue;  // waiting customers (head is in service)
  double busy_until = 0;
  double busy_time = 0;  // accumulated service time (for utilization)
};

}  // namespace

DesResult simulate_closed_network(const DesConfig& config) {
  assert(config.population > 0);
  assert(!config.service_times_sec.empty());
  const std::size_t k = config.service_times_sec.size();

  Rng rng(config.seed);
  auto service_draw = [&](std::size_t router) {
    const double mean = config.service_times_sec[router];
    return config.exponential_service ? rng.next_exponential(mean) : mean;
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::vector<Router> routers(k);
  std::vector<double> request_start(config.population, 0);

  // All customers start thinking at t=0.
  for (unsigned c = 0; c < config.population; ++c) {
    events.push(Event{rng.next_exponential(config.think_time_mean_sec),
                      EventKind::kThinkDone, c, 0});
  }

  const auto warmup = static_cast<std::uint64_t>(
      config.warmup_fraction * static_cast<double>(config.requests));
  std::uint64_t completed = 0;
  double response_sum = 0;
  double measure_start_time = 0;
  double now = 0;

  auto enter_router = [&](unsigned customer, unsigned router) {
    Router& r = routers[router];
    r.queue.push_back(customer);
    if (r.queue.size() == 1) {
      const double s = service_draw(router);
      r.busy_time += s;
      events.push(Event{now + s, EventKind::kServiceDone, customer, router});
    }
  };

  while (completed < config.requests + warmup && !events.empty()) {
    const Event e = events.top();
    events.pop();
    now = e.time;
    switch (e.kind) {
      case EventKind::kThinkDone:
        request_start[e.customer] = now;
        enter_router(e.customer, 0);
        break;
      case EventKind::kServiceDone: {
        Router& r = routers[e.router];
        assert(!r.queue.empty() && r.queue.front() == e.customer);
        r.queue.pop_front();
        if (!r.queue.empty()) {
          const double s = service_draw(e.router);
          r.busy_time += s;
          events.push(Event{now + s, EventKind::kServiceDone, r.queue.front(),
                            e.router});
        }
        if (e.router + 1 < k) {
          enter_router(e.customer, e.router + 1);
        } else {
          // Request complete: record and go back to thinking.
          ++completed;
          if (completed == warmup) {
            measure_start_time = now;
            response_sum = 0;
            for (auto& router : routers) router.busy_time = 0;
          }
          if (completed > warmup) {
            response_sum += now - request_start[e.customer];
          }
          events.push(
              Event{now + rng.next_exponential(config.think_time_mean_sec),
                    EventKind::kThinkDone, e.customer, 0});
        }
        break;
      }
    }
  }

  DesResult result;
  result.completed = completed > warmup ? completed - warmup : 0;
  const double measured = now - measure_start_time;
  if (result.completed > 0 && measured > 0) {
    result.mean_response_time_sec =
        response_sum / static_cast<double>(result.completed);
    result.throughput_per_sec =
        static_cast<double>(result.completed) / measured;
    for (const Router& r : routers) {
      result.router_utilization.push_back(r.busy_time / measured);
    }
  }
  return result;
}

}  // namespace prins
