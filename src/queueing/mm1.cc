#include "queueing/mm1.h"

#include <cassert>
#include <limits>

namespace prins {

Mm1Result solve_mm1(double arrival_rate_per_sec, double service_time_sec) {
  assert(arrival_rate_per_sec >= 0);
  assert(service_time_sec > 0);
  const double mu = 1.0 / service_time_sec;
  Mm1Result out;
  out.utilization = arrival_rate_per_sec * service_time_sec;
  if (arrival_rate_per_sec >= mu) {
    out.saturated = true;
    out.queueing_time_sec = std::numeric_limits<double>::infinity();
    out.response_time_sec = std::numeric_limits<double>::infinity();
    return out;
  }
  out.saturated = false;
  out.response_time_sec = 1.0 / (mu - arrival_rate_per_sec);
  out.queueing_time_sec = out.utilization / (mu - arrival_rate_per_sec);
  return out;
}

}  // namespace prins
