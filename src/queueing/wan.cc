#include "queueing/wan.h"

#include "net/packet_model.h"

namespace prins {

double transmission_delay_sec(std::uint64_t payload_bytes,
                              const WanLine& line) {
  return static_cast<double>(wire_bytes_for(payload_bytes)) /
         line.bytes_per_second;
}

double router_service_time_sec(std::uint64_t payload_bytes,
                               const WanLine& line) {
  const double proc =
      kNodalProcessingDelaySec * static_cast<double>(packets_for(payload_bytes));
  return transmission_delay_sec(payload_bytes, line) + proc +
         kPropagationDelaySec;
}

}  // namespace prins
