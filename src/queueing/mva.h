// Exact Mean Value Analysis for closed queueing networks (§3.3, Figure 3).
//
// The paper's model: computing nodes are a delay (think) centre with think
// time Z; each write's replication visits K FIFO routers in series; the
// population N is "number of nodes × number of replicas".  Classic exact
// MVA recursion (Lazowska et al. 1984, ch. 6, the paper's [29]):
//
//   R_k(n) = S_k * (1 + Q_k(n-1))          response time at centre k
//   X(n)   = n / (Z + Σ_k R_k(n))          system throughput
//   Q_k(n) = X(n) * R_k(n)                 queue length at centre k
#pragma once

#include <cstdint>
#include <vector>

namespace prins {

struct MvaResult {
  unsigned population;
  double response_time_sec;  // Σ_k R_k: time from request issue to done
  double throughput;         // X(n), requests/sec
  std::vector<double> queue_lengths;  // Q_k(n) per centre
};

/// Solve the closed network for population `n`.
/// `service_times_sec`: S_k of each FIFO centre (the routers).
/// `think_time_sec`: Z of the delay centre.
MvaResult solve_mva(const std::vector<double>& service_times_sec,
                    double think_time_sec, unsigned n);

/// Full curve for populations 1..max_n (one recursion pass).
std::vector<MvaResult> solve_mva_curve(
    const std::vector<double>& service_times_sec, double think_time_sec,
    unsigned max_n);

}  // namespace prins
