// M/M/1 queue formulas for the single-router saturation study (Figure 10).
//
// With arrival rate λ and service rate µ = 1/S:
//   utilisation  ρ  = λ/µ
//   waiting time Wq = ρ / (µ - λ)       (time in queue, excl. service)
//   sojourn time W  = 1 / (µ - λ)       (queue + service)
// Both diverge as λ -> µ; saturated inputs return +infinity.
#pragma once

namespace prins {

struct Mm1Result {
  double utilization;        // ρ
  double queueing_time_sec;  // Wq
  double response_time_sec;  // W
  bool saturated;            // λ >= µ
};

/// Evaluate an M/M/1 queue with the given arrival rate and service time.
Mm1Result solve_mm1(double arrival_rate_per_sec, double service_time_sec);

}  // namespace prins
