// The paper's WAN nodal-delay model (§3.3, equations 3-4).
//
//   D_nodal = D_queue + D_trans + D_proc + D_prop
//   D_trans = (Sd + Sd/1.5 * 0.112) / Net_BW      [packetization model]
//   D_proc  = 5 µs per packet
//   D_prop  = 200 km / 2*10^8 m/s = 1 ms
//   S_router = D_trans + D_proc + D_prop          [queue service time]
//
// T1 = 1.544 Mbps ≈ 154.4 KB/s (10 bits/byte incl. framing, as the paper
// assumes); T3 = 44.736 Mbps ≈ 4473.6 KB/s.
#pragma once

#include <cstdint>
#include <string_view>

namespace prins {

struct WanLine {
  std::string_view name;
  double bytes_per_second;
};

constexpr WanLine kT1{"T1", 154.4e3};
constexpr WanLine kT3{"T3", 4473.6e3};

constexpr double kNodalProcessingDelaySec = 5e-6;  // per packet
constexpr double kPropagationDelaySec = 1e-3;      // ~200 km hop

/// D_trans for a replication payload of `payload_bytes`.
double transmission_delay_sec(std::uint64_t payload_bytes, const WanLine& line);

/// S_router = D_trans + D_proc + D_prop (equation 4).
double router_service_time_sec(std::uint64_t payload_bytes,
                               const WanLine& line);

}  // namespace prins
