#include "codec/lz.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "codec/zero_rle.h"
#include "common/varint.h"

namespace prins {
namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 1 << 16;
constexpr std::size_t kWindow = 1 << 16;   // max match distance
constexpr int kMaxChain = 32;              // match-finder effort bound

// Hash-table size scales with the input so that encoding a small parity
// payload doesn't pay for (and memset) a full 32K-entry table.
inline int hash_bits_for(std::size_t n) {
  int bits = 8;
  while (bits < 15 && (std::size_t{1} << bits) < n) ++bits;
  return bits;
}

inline std::uint32_t hash4(const Byte* p, int hash_bits) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - hash_bits);
}

inline std::size_t match_len(const Byte* a, const Byte* b, std::size_t limit) {
  std::size_t n = 0;
  while (n < limit && a[n] == b[n]) ++n;
  return n;
}

void flush_literals(Bytes& out, ByteSpan raw, std::size_t lit_start,
                    std::size_t lit_end) {
  if (lit_end <= lit_start) return;
  const std::size_t len = lit_end - lit_start;
  put_varint(out, static_cast<std::uint64_t>(len) << 1);
  append(out, raw.subspan(lit_start, len));
}

}  // namespace

Bytes LzCodec::encode(ByteSpan raw) const {
  Bytes out;
  out.reserve(raw.size() / 2 + 16);
  const std::size_t n = raw.size();
  if (n < kMinMatch + 1) {
    flush_literals(out, raw, 0, n);
    return out;
  }

  const int hash_bits = hash_bits_for(n);
  std::vector<std::int32_t> head(std::size_t{1} << hash_bits, -1);
  std::vector<std::int32_t> prev(n, -1);

  std::size_t lit_start = 0;
  std::size_t pos = 0;
  const Byte* base = raw.data();
  while (pos + kMinMatch <= n) {
    // Find the longest match at `pos` by walking the hash chain.
    const std::uint32_t h = hash4(base + pos, hash_bits);
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    std::int32_t cand = head[h];
    const std::size_t limit = std::min(n - pos, kMaxMatch);
    for (int depth = 0; cand >= 0 && depth < kMaxChain; ++depth) {
      const auto c = static_cast<std::size_t>(cand);
      if (pos - c > kWindow) break;
      const std::size_t len = match_len(base + c, base + pos, limit);
      if (len > best_len) {
        best_len = len;
        best_dist = pos - c;
        if (len >= limit) break;
      }
      cand = prev[c];
    }

    if (best_len >= kMinMatch) {
      flush_literals(out, raw, lit_start, pos);
      put_varint(out, (static_cast<std::uint64_t>(best_len) << 1) | 1);
      put_varint(out, best_dist);
      // Insert hash entries for the matched region (sparsely, for speed).
      const std::size_t end = pos + best_len;
      const std::size_t step = best_len > 64 ? 4 : 1;
      for (std::size_t i = pos; i + kMinMatch <= n && i < end; i += step) {
        const std::uint32_t hh = hash4(base + i, hash_bits);
        prev[i] = head[hh];
        head[hh] = static_cast<std::int32_t>(i);
      }
      pos = end;
      lit_start = pos;
    } else {
      prev[pos] = head[h];
      head[h] = static_cast<std::int32_t>(pos);
      ++pos;
    }
  }
  flush_literals(out, raw, lit_start, n);
  return out;
}

Result<Bytes> LzCodec::decode(ByteSpan body, std::size_t raw_size) const {
  Bytes out;
  out.reserve(raw_size);
  std::size_t in = 0;
  while (in < body.size()) {
    auto token = get_varint(body, in);
    if (!token) return corruption("lz: truncated token");
    const std::uint64_t len = *token >> 1;
    if ((*token & 1) == 0) {
      // literal run
      if (len > body.size() - in || out.size() + len > raw_size) {
        return corruption("lz: literal run overflows");
      }
      append(out, body.subspan(in, len));
      in += len;
    } else {
      auto dist = get_varint(body, in);
      if (!dist) return corruption("lz: truncated distance");
      if (*dist == 0 || *dist > out.size()) {
        return corruption("lz: bad match distance");
      }
      if (len < kMinMatch || out.size() + len > raw_size) {
        return corruption("lz: bad match length");
      }
      // Overlapping copy byte-by-byte (distance may be < length).
      std::size_t src = out.size() - *dist;
      for (std::uint64_t i = 0; i < len; ++i) out.push_back(out[src + i]);
    }
  }
  if (out.size() != raw_size) {
    return corruption("lz: decoded " + std::to_string(out.size()) +
                      " bytes, expected " + std::to_string(raw_size));
  }
  return out;
}

Bytes ZeroRleLzCodec::encode(ByteSpan raw) const {
  const Bytes rle = ZeroRleCodec{}.encode(raw);
  Bytes out;
  // Prefix the intermediate RLE size so decode knows the inner raw_size.
  put_varint(out, rle.size());
  const Bytes lz = LzCodec{}.encode(rle);
  append(out, lz);
  return out;
}

Result<Bytes> ZeroRleLzCodec::decode(ByteSpan body,
                                     std::size_t raw_size) const {
  std::size_t in = 0;
  auto rle_size = get_varint(body, in);
  if (!rle_size) return corruption("zero-rle+lz: truncated inner size");
  PRINS_ASSIGN_OR_RETURN(
      Bytes rle, LzCodec{}.decode(body.subspan(in), *rle_size));
  return ZeroRleCodec{}.decode(rle, raw_size);
}

}  // namespace prins
