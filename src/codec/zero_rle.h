// ZeroRleCodec: zero-run-length encoding for sparse parity blocks.
//
// A write parity P' is zero everywhere the write did not change the block,
// so a typical 8 KB parity carries a few hundred nonzero bytes in a handful
// of runs.  The body is a sequence of
//   [zero run length: varint][literal length: varint][literal bytes]
// covering the buffer exactly.  All-zero input encodes to ~2 bytes.
#pragma once

#include "codec/codec.h"

namespace prins {

class ZeroRleCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::kZeroRle; }
  std::string_view name() const override { return "zero-rle"; }
  Bytes encode(ByteSpan raw) const override;
  void encode_append(ByteSpan raw, Bytes& out) const override;
  Result<Bytes> decode(ByteSpan body, std::size_t raw_size) const override;
};

}  // namespace prins
