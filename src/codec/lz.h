// LzCodec: from-scratch LZ77 byte compressor (zlib stand-in).
//
// Hash-chain match finder over a sliding window with greedy parsing and a
// one-byte lazy heuristic.  The token stream is:
//   literal run:  varint(len << 1)      followed by `len` raw bytes
//   match:        varint(len << 1 | 1)  varint(distance)
// with minimum match length 4.  This is deliberately simpler than DEFLATE
// (no entropy stage) but achieves the same *regime* of ratios on database
// pages and text that the paper's zlib baseline sees, which is what the
// traditional-with-compression bars need.
#pragma once

#include "codec/codec.h"

namespace prins {

class LzCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::kLz; }
  std::string_view name() const override { return "lz"; }
  Bytes encode(ByteSpan raw) const override;
  Result<Bytes> decode(ByteSpan body, std::size_t raw_size) const override;
};

/// ZeroRle followed by Lz over the RLE output: the default PRINS payload
/// codec.  RLE strips the zero bulk; LZ squeezes repetition out of the
/// remaining literals (database pages repeat field patterns heavily).
class ZeroRleLzCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::kZeroRleLz; }
  std::string_view name() const override { return "zero-rle+lz"; }
  Bytes encode(ByteSpan raw) const override;
  Result<Bytes> decode(ByteSpan body, std::size_t raw_size) const override;
};

/// Identity codec (traditional replication payload).
class NullCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::kNull; }
  std::string_view name() const override { return "null"; }
  Bytes encode(ByteSpan raw) const override { return to_bytes(raw); }
  void encode_append(ByteSpan raw, Bytes& out) const override {
    append(out, raw);
  }
  Result<Bytes> decode(ByteSpan body, std::size_t raw_size) const override {
    if (body.size() != raw_size) {
      return corruption("null codec: size mismatch");
    }
    return to_bytes(body);
  }
};

}  // namespace prins
