#include "codec/codec.h"

#include "codec/lz.h"
#include "codec/zero_rle.h"
#include "common/crc32c.h"
#include "common/endian.h"
#include "common/varint.h"

namespace prins {

const Codec& codec_for(CodecId id) {
  static const NullCodec null_codec;
  static const ZeroRleCodec zero_rle_codec;
  static const LzCodec lz_codec;
  static const ZeroRleLzCodec zero_rle_lz_codec;
  switch (id) {
    case CodecId::kNull: return null_codec;
    case CodecId::kZeroRle: return zero_rle_codec;
    case CodecId::kLz: return lz_codec;
    case CodecId::kZeroRleLz: return zero_rle_lz_codec;
  }
  return null_codec;
}

Result<CodecId> parse_codec_id(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(CodecId::kZeroRleLz)) {
    return corruption("unknown codec id " + std::to_string(raw));
  }
  return static_cast<CodecId>(raw);
}

Bytes encode_frame(const Codec& codec, ByteSpan raw) {
  const Bytes body = codec.encode(raw);
  Bytes frame;
  frame.reserve(body.size() + 12);
  frame.push_back(static_cast<Byte>(codec.id()));
  put_varint(frame, raw.size());
  append_le32(frame, crc32c(body));
  append(frame, body);
  return frame;
}

void encode_frame_into(const Codec& codec, ByteSpan raw, Bytes& out) {
  out.clear();
  out.push_back(static_cast<Byte>(codec.id()));
  put_varint(out, raw.size());
  // Reserve the CRC slot, encode the body after it, then backfill: the body
  // CRC is over bytes we have not produced yet.
  const std::size_t crc_at = out.size();
  out.resize(crc_at + 4);
  codec.encode_append(raw, out);
  const ByteSpan body = ByteSpan(out).subspan(crc_at + 4);
  store_le32(MutByteSpan(out).subspan(crc_at, 4), crc32c(body));
}

Result<Bytes> decode_frame(ByteSpan frame) {
  if (frame.empty()) return corruption("empty codec frame");
  std::size_t pos = 0;
  PRINS_ASSIGN_OR_RETURN(CodecId id, parse_codec_id(frame[pos]));
  ++pos;
  auto raw_size = get_varint(frame, pos);
  if (!raw_size) return corruption("codec frame: truncated raw size");
  if (frame.size() - pos < 4) return corruption("codec frame: truncated crc");
  const std::uint32_t want_crc = load_le32(frame.subspan(pos, 4));
  pos += 4;
  const ByteSpan body = frame.subspan(pos);
  if (crc32c(body) != want_crc) {
    return corruption("codec frame: crc mismatch");
  }
  return codec_for(id).decode(body, *raw_size);
}

std::size_t framed_size(const Codec& codec, ByteSpan raw) {
  return 1 + varint_size(raw.size()) + 4 + codec.encode(raw).size();
}

}  // namespace prins
