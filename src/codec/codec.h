// Codec: lossless encoders for replication payloads.
//
// Two roles, mirroring the paper's three replication techniques:
//   * ZeroRle (+Lz) encodes the sparse parity block P' — "a simple encoding
//     scheme can substantially reduce the size of the parity" (§1);
//   * Lz alone is the stand-in for zlib in the traditional-with-compression
//     baseline (§4, the blue bars).
//
// A self-describing frame wraps every encoded payload:
//   [codec id: 1 byte][raw size: varint][crc32c of body: 4 bytes LE][body]
// so the replica can decode without out-of-band agreement and detect
// corruption before applying a delta to its copy.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "common/bytes.h"
#include "common/status.h"

namespace prins {

enum class CodecId : std::uint8_t {
  kNull = 0,     // identity
  kZeroRle = 1,  // zero-run-length encoding (sparse parity)
  kLz = 2,       // LZ77 (zlib stand-in)
  kZeroRleLz = 3 // ZeroRle then Lz over the RLE literals stream
};

class Codec {
 public:
  virtual ~Codec() = default;

  virtual CodecId id() const = 0;
  virtual std::string_view name() const = 0;

  /// Encode `raw`.  Always succeeds; worst case output is slightly larger
  /// than the input (incompressible data).
  virtual Bytes encode(ByteSpan raw) const = 0;

  /// Encode `raw`, appending the body to `out` (same bytes as encode()).
  /// Lets callers reuse a pooled buffer; the default allocates via
  /// encode(), while the codecs on the replication hot path (Null, ZeroRle)
  /// override it to write into `out` directly.
  virtual void encode_append(ByteSpan raw, Bytes& out) const {
    const Bytes body = encode(raw);
    append(out, body);
  }

  /// Decode a body produced by encode() whose original size was `raw_size`.
  virtual Result<Bytes> decode(ByteSpan body, std::size_t raw_size) const = 0;
};

/// Singleton codec instances by id; kNull/kZeroRle/kLz/kZeroRleLz.
const Codec& codec_for(CodecId id);

/// Parse a codec id byte.
Result<CodecId> parse_codec_id(std::uint8_t raw);

/// Wrap an encoded payload in the self-describing frame.
Bytes encode_frame(const Codec& codec, ByteSpan raw);

/// encode_frame into a caller-owned buffer: `out` is cleared (capacity
/// kept) and refilled with the identical frame bytes.  With a pooled `out`
/// and an appending codec this makes framing allocation-free.
void encode_frame_into(const Codec& codec, ByteSpan raw, Bytes& out);

/// Decode a frame produced by encode_frame (any registered codec).
/// Verifies the CRC before decoding.
Result<Bytes> decode_frame(ByteSpan frame);

/// Size in bytes that encode_frame would produce, without building it.
/// (Convenience for traffic accounting sweeps.)
std::size_t framed_size(const Codec& codec, ByteSpan raw);

}  // namespace prins
