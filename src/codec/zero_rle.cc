#include "codec/zero_rle.h"

#include <cstring>

#include "common/varint.h"
#include "parity/kernels.h"

namespace prins {

namespace {

/// Advance past a zero run starting at `pos` using the SIMD-dispatched
/// zero-run scanner (the encoder's hot loop on sparse parity deltas).
std::size_t skip_zeros(ByteSpan raw, std::size_t pos) {
  return kernels::active_ops().skip_zeros(raw.data(), raw.size(), pos);
}

}  // namespace

Bytes ZeroRleCodec::encode(ByteSpan raw) const {
  Bytes out;
  out.reserve(64);
  encode_append(raw, out);
  return out;
}

void ZeroRleCodec::encode_append(ByteSpan raw, Bytes& out) const {
  std::size_t pos = 0;
  while (pos < raw.size()) {
    std::size_t zero_start = pos;
    pos = skip_zeros(raw, pos);
    const std::size_t zeros = pos - zero_start;
    // Literal run: extend until we hit a stretch of zeros long enough that
    // switching back to a zero run pays for the two length varints.
    std::size_t lit_start = pos;
    std::size_t scan = pos;
    while (scan < raw.size()) {
      if (raw[scan] != 0) {
        ++scan;
        continue;
      }
      const std::size_t z = skip_zeros(raw, scan);
      if (z - scan >= 4 || z == raw.size()) break;  // worth a new zero run
      scan = z;  // absorb the short zero gap into the literal
    }
    pos = scan;
    const std::size_t lits = pos - lit_start;
    put_varint(out, zeros);
    put_varint(out, lits);
    append(out, raw.subspan(lit_start, lits));
  }
}

Result<Bytes> ZeroRleCodec::decode(ByteSpan body, std::size_t raw_size) const {
  Bytes out(raw_size, 0);
  std::size_t in = 0;
  std::size_t at = 0;
  while (in < body.size()) {
    auto zeros = get_varint(body, in);
    if (!zeros) return corruption("zero-rle: truncated zero-run length");
    auto lits = get_varint(body, in);
    if (!lits) return corruption("zero-rle: truncated literal length");
    if (*zeros > raw_size - at) {
      return corruption("zero-rle: zero run overflows output");
    }
    at += *zeros;
    if (*lits > raw_size - at || *lits > body.size() - in) {
      return corruption("zero-rle: literal run overflows");
    }
    std::memcpy(out.data() + at, body.data() + in, *lits);
    at += *lits;
    in += *lits;
  }
  if (at != raw_size) {
    return corruption("zero-rle: decoded " + std::to_string(at) +
                      " bytes, expected " + std::to_string(raw_size));
  }
  return out;
}

}  // namespace prins
