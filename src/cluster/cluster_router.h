// ClusterRouter: the PG-aware client router.
//
// A BlockDevice decorator that presents one volume striped across N
// primaries by placement group.  Every I/O computes pg = mix64(lba) & mask
// against the router's current PgMap, splits multi-block spans at PG
// boundaries (hashed placement makes consecutive LBAs land in different
// groups, so a span becomes per-PG runs), and routes each run to the
// group's owning primary through that node's PgBackend.
//
// Self-correction: every outbound frame is stamped with the router's map
// epoch.  A node that no longer (or never did) own the run's PG answers
// kWrongPg; a fenced or dead node surfaces as kFailedPrecondition /
// kUnavailable.  Either way the router pulls the newest map from its
// MapSource, adopts it if the epoch advanced, and retries the run against
// the new owner — with exponential backoff while the control plane is
// still mid-promotion, so a node kill under load converges instead of
// failing the I/O.
//
// Backends: WireBackend speaks kClientWriteRequest / kClientReadRequest
// over a small pool of per-node connections (any Transport — TCP,
// reactor-hosted TCP, or in-process pairs), picking the least-loaded
// connection per exchange.  The serving node composes with ReadRouter
// internally (reads on an offload-enabled node fan out to that PG's
// mirrors), so the router stacks on top of every prior layer.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "block/block_device.h"
#include "cluster/pg_map.h"
#include "net/transport.h"
#include "prins/message.h"

namespace prins::cluster {

/// One node's client-I/O endpoint from the router's perspective.  A span
/// handed to a backend lies entirely inside one placement group.
///
/// Error vocabulary the router retries on (after refreshing its map):
///   kFailedPrecondition  — kWrongPg / kStaleEpoch: ownership moved
///   kUnavailable/kTimeout — node or connection dead, or PG mid-migration
/// Anything else fails the I/O immediately.
class PgBackend {
 public:
  virtual ~PgBackend() = default;

  virtual Status write(std::uint64_t lba, ByteSpan data,
                       std::uint64_t map_epoch) = 0;
  virtual Status read(std::uint64_t lba, MutByteSpan out,
                      std::uint64_t map_epoch) = 0;
  virtual Status flush() = 0;
  virtual std::string describe() const = 0;
};

/// PgBackend over pooled connections to a node's client-frame listener.
class WireBackend final : public PgBackend {
 public:
  /// Builds one connection on demand (the pool fills lazily and replaces
  /// dead connections on the next exchange).
  using Connector = std::function<Result<std::unique_ptr<Transport>>()>;

  WireBackend(std::string node_id, Connector connect, std::size_t pool_size,
              std::chrono::milliseconds op_timeout);
  ~WireBackend() override;

  Status write(std::uint64_t lba, ByteSpan data,
               std::uint64_t map_epoch) override;
  Status read(std::uint64_t lba, MutByteSpan out,
              std::uint64_t map_epoch) override;
  Status flush() override { return Status::ok(); }
  std::string describe() const override;

 private:
  struct Conn {
    std::mutex mutex;  // one request/reply exchange on the wire at a time
    std::unique_ptr<Transport> transport;       // null until first use
    std::atomic<std::size_t> outstanding{0};    // exchanges queued/in flight
  };

  /// Least-outstanding connection (ties broken round-robin).
  Conn& pick();
  /// Run one request/reply exchange; reconnects a dead slot once.
  Status exchange(const ReplicationMessage& request, ByteSpan data,
                  MessageKind expect, ReplicationMessage* reply);
  Status exchange_once(Conn& conn, const ReplicationMessage& request,
                       ByteSpan data, MessageKind expect,
                       ReplicationMessage* reply);

  const std::string node_id_;
  const Connector connect_;
  const std::chrono::milliseconds op_timeout_;
  std::vector<std::unique_ptr<Conn>> pool_;
  std::atomic<std::uint64_t> rr_cursor_{0};
  std::atomic<std::uint64_t> next_exchange_{1};
};

struct ClusterRouterConfig {
  /// Map-refresh + retry rounds per run before the I/O fails.  Promotion
  /// and migration windows are covered by the backoff schedule below
  /// (~1.5 s total at the defaults).
  std::size_t max_retries = 24;
  std::chrono::milliseconds retry_backoff{2};   // doubles per round ...
  std::chrono::milliseconds max_backoff{100};   // ... up to this cap
};

struct RouterMetrics {
  std::uint64_t reads = 0;               // block reads routed
  std::uint64_t writes = 0;              // block writes routed
  std::uint64_t span_splits = 0;         // multi-block I/Os split at PG
                                         //   boundaries (extra runs issued)
  std::uint64_t wrong_pg_retries = 0;    // kWrongPg / fenced-run retries
  std::uint64_t unavailable_retries = 0; // dead-node / mid-cutover retries
  std::uint64_t map_refreshes = 0;       // newer map epochs adopted
  std::uint64_t map_epoch = 0;           // current map epoch
};

class ClusterRouter final : public BlockDevice {
 public:
  /// Pulls the newest map after a routing failure; may return null or the
  /// same epoch (the router then backs off and retries).
  using MapSource = std::function<std::shared_ptr<const PgMap>()>;

  ClusterRouter(std::uint32_t block_size, std::uint64_t num_blocks,
                std::shared_ptr<const PgMap> map, MapSource refresh,
                ClusterRouterConfig config = {});

  /// Register the backend serving `node_id`.  Add every node before the
  /// first I/O; a map entry without a backend is treated as unavailable
  /// (unless a backend source resolves it — see set_backend_source).
  void add_node(const std::string& node_id, std::shared_ptr<PgBackend> backend);

  /// Lazy backend construction for nodes that join after the router was
  /// built: when a refreshed map names a node with no registered backend,
  /// the source is asked once and the result cached.  Returning null
  /// means "unknown node" (the run stays unavailable and retries).
  using BackendSource =
      std::function<std::shared_ptr<PgBackend>(const std::string& node_id)>;
  void set_backend_source(BackendSource source);

  std::uint32_t block_size() const override { return block_size_; }
  std::uint64_t num_blocks() const override { return num_blocks_; }
  Status read(Lba lba, MutByteSpan out) override;
  Status write(Lba lba, ByteSpan data) override;
  Status flush() override;
  std::string describe() const override;

  RouterMetrics metrics() const;
  /// Block I/Os routed per placement group (index = PgId); the per-PG
  /// stats surface (prinsctl cluster --stats).
  std::vector<std::uint64_t> pg_op_counts() const;
  std::uint64_t map_epoch() const;
  std::shared_ptr<const PgMap> map() const;

 private:
  /// Route one single-PG run, refreshing the map and retrying per config.
  Status route_run(bool is_write, Lba lba, MutByteSpan read_out,
                   ByteSpan write_data);
  /// Split [lba, lba + blocks) into per-PG runs and route each.
  Status run_spans(bool is_write, Lba lba, std::size_t blocks,
                   MutByteSpan read_out, ByteSpan write_data);
  std::shared_ptr<const PgMap> current_map() const;
  /// Adopt a newer map from the source; true if the epoch advanced.
  bool refresh_map();
  /// Backend registered (or lazily resolved) for `node_id`; null if none.
  std::shared_ptr<PgBackend> backend_for(const std::string& node_id);

  const std::uint32_t block_size_;
  const std::uint64_t num_blocks_;
  const ClusterRouterConfig config_;
  const MapSource refresh_;

  mutable std::mutex map_mutex_;
  std::shared_ptr<const PgMap> map_;

  // Guarded by map_mutex_ (mutable after construction: joins add nodes).
  std::unordered_map<std::string, std::shared_ptr<PgBackend>> backends_;
  BackendSource backend_source_;

  // Counters are relaxed atomics: the hot path updates them lock-free.
  mutable std::atomic<std::uint64_t> reads_{0};
  mutable std::atomic<std::uint64_t> writes_{0};
  mutable std::atomic<std::uint64_t> span_splits_{0};
  mutable std::atomic<std::uint64_t> wrong_pg_retries_{0};
  mutable std::atomic<std::uint64_t> unavailable_retries_{0};
  mutable std::atomic<std::uint64_t> map_refreshes_{0};
  std::unique_ptr<std::atomic<std::uint64_t>[]> pg_ops_;  // pg_count slots
  std::uint32_t pg_count_ = 0;
};

}  // namespace prins::cluster
