#include "cluster/cluster_router.h"

#include <algorithm>
#include <thread>

#include "common/crc32c.h"
#include "common/endian.h"
#include "prins/message.h"

namespace prins::cluster {
namespace {

/// Frame and send one client request scatter-gather: stack header, the
/// map-epoch-bearing payload prefix, the block data (writes only), chained
/// CRC — the same zero-copy framing the replication senders use.
Status send_client_frame(Transport& transport, const ReplicationMessage& meta,
                         ByteSpan prefix, ByteSpan data) {
  Byte header[ReplicationMessage::kWireHeaderSize];
  meta.encode_header(header, prefix.size() + data.size());
  std::uint32_t crc = crc32c(ByteSpan(header));
  crc = crc32c(prefix, crc);
  crc = crc32c(data, crc);
  Byte trailer[4];
  store_le32(trailer, crc);
  const ByteSpan parts[] = {ByteSpan(header), prefix, data, ByteSpan(trailer)};
  return transport.send_vec(parts);
}

/// Translate a kNak reply into the router's retry vocabulary.
Status status_of_nak(const ReplicationMessage& nak) {
  const NakReason reason = nak.payload.empty()
                               ? NakReason::kResend
                               : static_cast<NakReason>(nak.payload[0]);
  switch (reason) {
    case NakReason::kWrongPg: {
      std::uint64_t server_epoch = 0;
      if (nak.payload.size() >= 9) {
        server_epoch = load_le64(ByteSpan(nak.payload).subspan(1, 8));
      }
      return failed_precondition("wrong pg (server map epoch " +
                                 std::to_string(server_epoch) + ")");
    }
    case NakReason::kStaleEpoch:
      return failed_precondition("fenced: stale cluster epoch");
    default:
      return unavailable("node NAK'd client frame (reason " +
                         std::to_string(static_cast<int>(reason)) + ")");
  }
}

bool connection_error(const Status& s) {
  return s.code() == ErrorCode::kUnavailable || s.code() == ErrorCode::kTimeout;
}

}  // namespace

// ---- WireBackend ---------------------------------------------------------

WireBackend::WireBackend(std::string node_id, Connector connect,
                         std::size_t pool_size,
                         std::chrono::milliseconds op_timeout)
    : node_id_(std::move(node_id)),
      connect_(std::move(connect)),
      op_timeout_(op_timeout) {
  pool_.reserve(std::max<std::size_t>(pool_size, 1));
  for (std::size_t i = 0; i < std::max<std::size_t>(pool_size, 1); ++i) {
    pool_.push_back(std::make_unique<Conn>());
  }
}

WireBackend::~WireBackend() {
  for (auto& conn : pool_) {
    std::lock_guard lock(conn->mutex);
    if (conn->transport) conn->transport->close();
  }
}

WireBackend::Conn& WireBackend::pick() {
  const std::size_t start =
      rr_cursor_.fetch_add(1, std::memory_order_relaxed) % pool_.size();
  std::size_t best = start;
  std::size_t best_load = pool_[start]->outstanding.load(std::memory_order_relaxed);
  for (std::size_t i = 1; i < pool_.size() && best_load > 0; ++i) {
    const std::size_t idx = (start + i) % pool_.size();
    const std::size_t load =
        pool_[idx]->outstanding.load(std::memory_order_relaxed);
    if (load < best_load) {
      best = idx;
      best_load = load;
    }
  }
  return *pool_[best];
}

Status WireBackend::exchange_once(Conn& conn, const ReplicationMessage& request,
                                  ByteSpan data, MessageKind expect,
                                  ReplicationMessage* reply) {
  if (!conn.transport) {
    PRINS_ASSIGN_OR_RETURN(conn.transport, connect_());
  }
  PRINS_RETURN_IF_ERROR(send_client_frame(*conn.transport, request,
                                          request.payload, data));
  for (;;) {
    Result<Bytes> wire = op_timeout_.count() > 0
                             ? conn.transport->recv_for(op_timeout_)
                             : conn.transport->recv();
    PRINS_RETURN_IF_ERROR(wire.status());
    PRINS_ASSIGN_OR_RETURN(ReplicationMessage msg,
                           ReplicationMessage::decode(*wire));
    if (msg.sequence != request.sequence) continue;  // stale frame: skim
    if (msg.kind == MessageKind::kNak) return status_of_nak(msg);
    if (msg.kind != expect) {
      return failed_precondition("unexpected client reply kind " +
                                 std::to_string(static_cast<int>(msg.kind)));
    }
    *reply = std::move(msg);
    return Status::ok();
  }
}

Status WireBackend::exchange(const ReplicationMessage& request, ByteSpan data,
                             MessageKind expect, ReplicationMessage* reply) {
  Conn& conn = pick();
  conn.outstanding.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(conn.mutex);
  Status s = exchange_once(conn, request, data, expect, reply);
  if (!s.is_ok() && connection_error(s)) {
    // The connection (or its node) died mid-exchange.  Rebuild the slot
    // and retry once — duplicated client writes are idempotent (full
    // blocks, not deltas).  A dead node fails the reconnect and the
    // router's map-refresh loop takes over.
    if (conn.transport) conn.transport->close();
    conn.transport.reset();
    s = exchange_once(conn, request, data, expect, reply);
    if (!s.is_ok() && connection_error(s) && conn.transport) {
      conn.transport->close();
      conn.transport.reset();
    }
  }
  conn.outstanding.fetch_sub(1, std::memory_order_relaxed);
  return s;
}

Status WireBackend::write(std::uint64_t lba, ByteSpan data,
                          std::uint64_t map_epoch) {
  ReplicationMessage request;
  request.kind = MessageKind::kClientWriteRequest;
  request.block_size = 0;  // serving side validates against its device
  request.lba = lba;
  request.sequence = next_exchange_.fetch_add(1, std::memory_order_relaxed);
  request.payload.resize(8);
  store_le64(request.payload, map_epoch);
  ReplicationMessage reply;
  return exchange(request, data, MessageKind::kClientWriteReply, &reply);
}

Status WireBackend::read(std::uint64_t lba, MutByteSpan out,
                         std::uint64_t map_epoch) {
  ReplicationMessage request;
  request.kind = MessageKind::kClientReadRequest;
  request.lba = lba;
  request.sequence = next_exchange_.fetch_add(1, std::memory_order_relaxed);
  // min_sequence 0 (the serving node reads through its own engine, which
  // is trivially fresh), map epoch, then the run's block count.
  request.payload.resize(20);
  store_le64(MutByteSpan(request.payload).subspan(0, 8), 0);
  store_le64(MutByteSpan(request.payload).subspan(8, 8), map_epoch);
  store_le32(MutByteSpan(request.payload).subspan(16, 4),
             static_cast<std::uint32_t>(out.size()));
  ReplicationMessage reply;
  PRINS_RETURN_IF_ERROR(
      exchange(request, {}, MessageKind::kClientReadReply, &reply));
  if (reply.payload.size() != out.size()) {
    return corruption("client read reply carried " +
                      std::to_string(reply.payload.size()) + " bytes, want " +
                      std::to_string(out.size()));
  }
  std::copy(reply.payload.begin(), reply.payload.end(), out.begin());
  return Status::ok();
}

std::string WireBackend::describe() const {
  return "wire-backend(" + node_id_ + ", pool=" + std::to_string(pool_.size()) +
         ")";
}

// ---- ClusterRouter -------------------------------------------------------

ClusterRouter::ClusterRouter(std::uint32_t block_size, std::uint64_t num_blocks,
                             std::shared_ptr<const PgMap> map,
                             MapSource refresh, ClusterRouterConfig config)
    : block_size_(block_size),
      num_blocks_(num_blocks),
      config_(config),
      refresh_(std::move(refresh)),
      map_(std::move(map)) {
  pg_count_ = map_->pg_count();
  pg_ops_ = std::make_unique<std::atomic<std::uint64_t>[]>(pg_count_);
  for (std::uint32_t i = 0; i < pg_count_; ++i) pg_ops_[i].store(0);
}

void ClusterRouter::add_node(const std::string& node_id,
                             std::shared_ptr<PgBackend> backend) {
  std::lock_guard lock(map_mutex_);
  backends_[node_id] = std::move(backend);
}

void ClusterRouter::set_backend_source(BackendSource source) {
  std::lock_guard lock(map_mutex_);
  backend_source_ = std::move(source);
}

std::shared_ptr<PgBackend> ClusterRouter::backend_for(
    const std::string& node_id) {
  {
    std::lock_guard lock(map_mutex_);
    const auto it = backends_.find(node_id);
    if (it != backends_.end()) return it->second;
    if (!backend_source_) return nullptr;
  }
  // Build outside the lock (a wire backend source may open connections);
  // a racing resolve of the same node keeps the first cached entry.
  std::shared_ptr<PgBackend> fresh = backend_source_(node_id);
  if (!fresh) return nullptr;
  std::lock_guard lock(map_mutex_);
  auto [it, inserted] = backends_.emplace(node_id, std::move(fresh));
  return it->second;
}

std::shared_ptr<const PgMap> ClusterRouter::current_map() const {
  std::lock_guard lock(map_mutex_);
  return map_;
}

std::shared_ptr<const PgMap> ClusterRouter::map() const { return current_map(); }

std::uint64_t ClusterRouter::map_epoch() const { return current_map()->epoch(); }

bool ClusterRouter::refresh_map() {
  if (!refresh_) return false;
  std::shared_ptr<const PgMap> fresh = refresh_();
  if (!fresh) return false;
  std::lock_guard lock(map_mutex_);
  if (fresh->epoch() <= map_->epoch()) return false;
  // The PG count is fixed at genesis (maps evolve by deltas); a mismatch
  // would silently re-stripe the volume, so refuse it.
  if (fresh->pg_count() != map_->pg_count()) return false;
  map_ = std::move(fresh);
  map_refreshes_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

Status ClusterRouter::route_run(bool is_write, Lba lba, MutByteSpan read_out,
                                ByteSpan write_data) {
  std::chrono::milliseconds backoff = config_.retry_backoff;
  Status last = unavailable("cluster route: no attempt made");
  for (std::size_t attempt = 0; attempt <= config_.max_retries; ++attempt) {
    const std::shared_ptr<const PgMap> map = current_map();
    const PgId pg = map->pg_of(lba);
    const PgAssignment& where = map->assignment(pg);
    Status s;
    if (where.primary.empty()) {
      s = unavailable("pg " + std::to_string(pg) + " has no live primary");
    } else {
      const std::shared_ptr<PgBackend> backend = backend_for(where.primary);
      if (!backend) {
        s = unavailable("no backend for node " + where.primary);
      } else if (is_write) {
        s = backend->write(lba, write_data, map->epoch());
      } else {
        s = backend->read(lba, read_out, map->epoch());
      }
    }
    if (s.is_ok()) {
      pg_ops_[pg].fetch_add(1, std::memory_order_relaxed);
      return s;
    }
    if (s.code() == ErrorCode::kFailedPrecondition) {
      wrong_pg_retries_.fetch_add(1, std::memory_order_relaxed);
    } else if (connection_error(s)) {
      unavailable_retries_.fetch_add(1, std::memory_order_relaxed);
    } else {
      return s;  // a real I/O error, not a routing artifact
    }
    last = s;
    if (refresh_map()) continue;  // new ownership: retry immediately
    // The control plane is still converging (promotion / migration in
    // progress): back off before asking again.
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, config_.max_backoff);
  }
  return last;
}

Status ClusterRouter::run_spans(bool is_write, Lba lba, std::size_t blocks,
                                MutByteSpan read_out, ByteSpan write_data) {
  const std::shared_ptr<const PgMap> map = current_map();
  std::size_t runs = 0;
  std::size_t i = 0;
  while (i < blocks) {
    const PgId pg = map->pg_of(lba + i);
    std::size_t j = i + 1;
    while (j < blocks && map->pg_of(lba + j) == pg) ++j;
    const std::size_t off = i * block_size_;
    const std::size_t len = (j - i) * block_size_;
    PRINS_RETURN_IF_ERROR(route_run(
        is_write, lba + i,
        is_write ? MutByteSpan{} : read_out.subspan(off, len),
        is_write ? write_data.subspan(off, len) : ByteSpan{}));
    ++runs;
    i = j;
  }
  if (runs > 1) {
    span_splits_.fetch_add(runs - 1, std::memory_order_relaxed);
  }
  if (is_write) {
    writes_.fetch_add(blocks, std::memory_order_relaxed);
  } else {
    reads_.fetch_add(blocks, std::memory_order_relaxed);
  }
  return Status::ok();
}

Status ClusterRouter::read(Lba lba, MutByteSpan out) {
  PRINS_RETURN_IF_ERROR(check_io(lba, out.size()));
  return run_spans(/*is_write=*/false, lba, out.size() / block_size_, out, {});
}

Status ClusterRouter::write(Lba lba, ByteSpan data) {
  PRINS_RETURN_IF_ERROR(check_io(lba, data.size()));
  return run_spans(/*is_write=*/true, lba, data.size() / block_size_, {}, data);
}

Status ClusterRouter::flush() {
  std::vector<std::shared_ptr<PgBackend>> backends;
  {
    std::lock_guard lock(map_mutex_);
    backends.reserve(backends_.size());
    for (auto& [id, backend] : backends_) backends.push_back(backend);
  }
  for (auto& backend : backends) {
    PRINS_RETURN_IF_ERROR(backend->flush());
  }
  return Status::ok();
}

std::string ClusterRouter::describe() const {
  const auto map = current_map();
  return "cluster-router(pgs=" + std::to_string(map->pg_count()) + ", epoch=" +
         std::to_string(map->epoch()) + ", nodes=" +
         std::to_string(map->nodes().size()) + ")";
}

RouterMetrics ClusterRouter::metrics() const {
  RouterMetrics m;
  m.reads = reads_.load(std::memory_order_relaxed);
  m.writes = writes_.load(std::memory_order_relaxed);
  m.span_splits = span_splits_.load(std::memory_order_relaxed);
  m.wrong_pg_retries = wrong_pg_retries_.load(std::memory_order_relaxed);
  m.unavailable_retries = unavailable_retries_.load(std::memory_order_relaxed);
  m.map_refreshes = map_refreshes_.load(std::memory_order_relaxed);
  m.map_epoch = current_map()->epoch();
  return m;
}

std::vector<std::uint64_t> ClusterRouter::pg_op_counts() const {
  std::vector<std::uint64_t> out(pg_count_);
  for (std::uint32_t i = 0; i < pg_count_; ++i) {
    out[i] = pg_ops_[i].load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace prins::cluster
