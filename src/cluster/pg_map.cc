#include "cluster/pg_map.h"

#include <algorithm>

#include "common/crc32c.h"
#include "common/endian.h"

namespace prins::cluster {
namespace {

constexpr Byte kMagic[4] = {'P', 'G', 'm', '1'};

/// Rendezvous score of `node` for `salt`.  The node hash avalanches
/// through mix64 against the salt so one node's scores across salts are
/// uncorrelated (the property that spreads PGs evenly).
std::uint64_t score(const std::string& node, std::uint64_t salt) {
  return mix64(fnv1a64(as_bytes(node)) ^ mix64(salt + 0x9e3779b97f4a7c15ull));
}

std::uint32_t round_up_pow2(std::uint32_t v) {
  std::uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

void append_id(Bytes& out, const std::string& id) {
  append_le16(out, static_cast<std::uint16_t>(id.size()));
  append(out, as_bytes(id));
}

/// The per-primary replacement mirror after `dead` fails: every PG of one
/// primary backfills the same survivor, so the primary's engine re-points
/// its single dead link instead of needing per-PG link surgery.
std::string replacement_for(const std::vector<std::string>& survivors,
                            const std::string& primary) {
  const auto ranked = PgMap::rank(survivors, fnv1a64(as_bytes(primary)));
  for (const auto& node : ranked) {
    if (node != primary) return node;
  }
  return {};
}

}  // namespace

bool PgMap::has_node(const std::string& id) const {
  return std::find(nodes_.begin(), nodes_.end(), id) != nodes_.end();
}

std::vector<std::string> PgMap::rank(const std::vector<std::string>& nodes,
                                     std::uint64_t salt) {
  std::vector<std::string> out = nodes;
  std::sort(out.begin(), out.end(),
            [salt](const std::string& a, const std::string& b) {
              const std::uint64_t sa = score(a, salt);
              const std::uint64_t sb = score(b, salt);
              if (sa != sb) return sa > sb;
              return a < b;  // total order even on (vanishing) score ties
            });
  return out;
}

PgMap PgMap::build(std::vector<std::string> nodes, PgMapConfig config,
                   std::uint64_t epoch) {
  PgMap map;
  map.epoch_ = epoch;
  map.pg_count_ = round_up_pow2(std::max<std::uint32_t>(config.pg_count, 1));
  map.mirror_target_ = config.mirrors;
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  map.nodes_ = std::move(nodes);
  map.pgs_.resize(map.pg_count_);
  for (PgId pg = 0; pg < map.pg_count_; ++pg) {
    const auto ranked = rank(map.nodes_, pg);
    PgAssignment& a = map.pgs_[pg];
    if (ranked.empty()) continue;
    a.primary = ranked[0];
    const std::size_t want = std::min<std::size_t>(
        map.mirror_target_, ranked.size() > 0 ? ranked.size() - 1 : 0);
    a.mirrors.assign(ranked.begin() + 1, ranked.begin() + 1 + want);
  }
  return map;
}

PgMap PgMap::with_failed(const std::string& node) const {
  PgMap next = *this;
  next.epoch_ = epoch_ + 1;
  next.nodes_.erase(std::remove(next.nodes_.begin(), next.nodes_.end(), node),
                    next.nodes_.end());
  for (PgId pg = 0; pg < next.pg_count_; ++pg) {
    PgAssignment& a = next.pgs_[pg];
    const bool mirrored_here =
        std::find(a.mirrors.begin(), a.mirrors.end(), node) != a.mirrors.end();
    a.mirrors.erase(std::remove(a.mirrors.begin(), a.mirrors.end(), node),
                    a.mirrors.end());
    if (a.primary == node) {
      // Promote the first surviving mirror — the heir is guaranteed to
      // hold every acknowledged byte of this PG.  No mirror left means the
      // data died with its owners.
      if (a.mirrors.empty()) {
        a.primary.clear();
        continue;
      }
      a.primary = a.mirrors.front();
      a.mirrors.erase(a.mirrors.begin());
      // Fresh rendezvous mirrors for the moved PG; the promoted engine
      // wires them from scratch and seeds them with the PG's blocks.
      const auto ranked = rank(next.nodes_, pg);
      for (const auto& candidate : ranked) {
        if (a.mirrors.size() >= mirror_target_) break;
        if (candidate == a.primary) continue;
        if (std::find(a.mirrors.begin(), a.mirrors.end(), candidate) !=
            a.mirrors.end()) {
          continue;
        }
        a.mirrors.push_back(candidate);
      }
    } else if (mirrored_here && !a.primary.empty()) {
      // The PG lost a mirror but not its primary: backfill the primary's
      // per-node replacement (see replacement_for) unless it already
      // mirrors this PG — then the PG simply runs one mirror short.
      const std::string repl = replacement_for(next.nodes_, a.primary);
      if (!repl.empty() && repl != a.primary &&
          std::find(a.mirrors.begin(), a.mirrors.end(), repl) ==
              a.mirrors.end()) {
        a.mirrors.push_back(repl);
      }
    }
  }
  return next;
}

PgMap PgMap::with_joined(const std::string& node) const {
  PgMap next = *this;
  next.epoch_ = epoch_ + 1;
  if (!next.has_node(node)) {
    next.nodes_.insert(
        std::upper_bound(next.nodes_.begin(), next.nodes_.end(), node), node);
  }
  for (PgId pg = 0; pg < next.pg_count_; ++pg) {
    PgAssignment& a = next.pgs_[pg];
    const auto ranked = rank(next.nodes_, pg);
    if (ranked.empty() || ranked[0] != node || a.primary == node) continue;
    // The joiner tops this PG's ranking: take it over.  The old primary
    // demotes to first mirror — it already holds every byte, so the only
    // data movement is the copy to the new owner.
    if (!a.primary.empty()) {
      a.mirrors.insert(a.mirrors.begin(), a.primary);
    }
    if (a.mirrors.size() > mirror_target_) a.mirrors.resize(mirror_target_);
    a.primary = node;
  }
  return next;
}

std::vector<PgId> PgMap::moved_primaries(const PgMap& before,
                                         const PgMap& after) {
  std::vector<PgId> moved;
  const PgId n = std::min(before.pg_count(), after.pg_count());
  for (PgId pg = 0; pg < n; ++pg) {
    if (before.assignment(pg).primary != after.assignment(pg).primary) {
      moved.push_back(pg);
    }
  }
  return moved;
}

Bytes PgMap::serialize() const {
  Bytes out;
  append(out, kMagic);
  append_le64(out, epoch_);
  append_le32(out, pg_count_);
  append_le32(out, mirror_target_);
  append_le32(out, static_cast<std::uint32_t>(nodes_.size()));
  for (const auto& node : nodes_) append_id(out, node);
  for (const auto& a : pgs_) {
    append_id(out, a.primary);
    out.push_back(static_cast<Byte>(a.mirrors.size()));
    for (const auto& m : a.mirrors) append_id(out, m);
  }
  append_le32(out, crc32c(out));
  return out;
}

namespace {

struct Cursor {
  ByteSpan wire;
  std::size_t pos = 0;

  bool need(std::size_t n) const { return wire.size() - pos >= n; }
  std::uint64_t u64() {
    const std::uint64_t v = load_le64(wire.subspan(pos, 8));
    pos += 8;
    return v;
  }
  std::uint32_t u32() {
    const std::uint32_t v = load_le32(wire.subspan(pos, 4));
    pos += 4;
    return v;
  }
  Result<std::string> id() {
    if (!need(2)) return corruption("truncated PgMap id length");
    const std::uint16_t len = load_le16(wire.subspan(pos, 2));
    pos += 2;
    if (!need(len)) return corruption("truncated PgMap id");
    std::string out(reinterpret_cast<const char*>(wire.data() + pos), len);
    pos += len;
    return out;
  }
};

}  // namespace

Result<PgMap> PgMap::parse(ByteSpan wire) {
  if (wire.size() < 4 + 8 + 4 + 4 + 4 + 4) {
    return corruption("PgMap wire too short");
  }
  if (!std::equal(kMagic, kMagic + 4, wire.begin())) {
    return corruption("bad PgMap magic");
  }
  const std::uint32_t stored_crc = load_le32(wire.subspan(wire.size() - 4, 4));
  if (crc32c(wire.subspan(0, wire.size() - 4)) != stored_crc) {
    return corruption("PgMap crc mismatch");
  }
  Cursor c{wire.subspan(0, wire.size() - 4), 4};
  PgMap map;
  map.epoch_ = c.u64();
  map.pg_count_ = c.u32();
  map.mirror_target_ = c.u32();
  if (map.pg_count_ == 0 || (map.pg_count_ & (map.pg_count_ - 1)) != 0 ||
      map.pg_count_ > (1u << 20)) {
    return corruption("bad PgMap pg_count");
  }
  const std::uint32_t node_count = c.u32();
  if (node_count > (1u << 16)) return corruption("bad PgMap node count");
  map.nodes_.reserve(node_count);
  for (std::uint32_t i = 0; i < node_count; ++i) {
    PRINS_ASSIGN_OR_RETURN(std::string id, c.id());
    map.nodes_.push_back(std::move(id));
  }
  map.pgs_.resize(map.pg_count_);
  for (PgId pg = 0; pg < map.pg_count_; ++pg) {
    PgAssignment& a = map.pgs_[pg];
    PRINS_ASSIGN_OR_RETURN(a.primary, c.id());
    if (!c.need(1)) return corruption("truncated PgMap mirror count");
    const std::uint8_t mirrors = static_cast<std::uint8_t>(c.wire[c.pos++]);
    a.mirrors.reserve(mirrors);
    for (std::uint8_t m = 0; m < mirrors; ++m) {
      PRINS_ASSIGN_OR_RETURN(std::string id, c.id());
      a.mirrors.push_back(std::move(id));
    }
  }
  if (c.pos != c.wire.size()) return corruption("trailing PgMap bytes");
  return map;
}

bool PgMap::operator==(const PgMap& other) const {
  if (epoch_ != other.epoch_ || pg_count_ != other.pg_count_ ||
      mirror_target_ != other.mirror_target_ || nodes_ != other.nodes_) {
    return false;
  }
  for (PgId pg = 0; pg < pg_count_; ++pg) {
    if (pgs_[pg].primary != other.pgs_[pg].primary ||
        pgs_[pg].mirrors != other.pgs_[pg].mirrors) {
      return false;
    }
  }
  return true;
}

std::vector<std::uint64_t> pg_lbas(const PgMap& map, PgId pg,
                                   std::uint64_t num_blocks) {
  return pg_lbas(map, std::vector<PgId>{pg}, num_blocks);
}

std::vector<std::uint64_t> pg_lbas(const PgMap& map,
                                   const std::vector<PgId>& pgs,
                                   std::uint64_t num_blocks) {
  std::vector<bool> wanted(map.pg_count(), false);
  for (PgId pg : pgs) {
    if (pg < map.pg_count()) wanted[pg] = true;
  }
  std::vector<std::uint64_t> out;
  for (std::uint64_t lba = 0; lba < num_blocks; ++lba) {
    if (wanted[map.pg_of(lba)]) out.push_back(lba);
  }
  return out;
}

}  // namespace prins::cluster
