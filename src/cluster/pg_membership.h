// PgMembership: the cluster control plane — node lifecycle driving
// per-placement-group ownership.
//
// Hosts one logical node per joined member: the node's BlockDevice, the
// PrinsEngine(s) serving the placement groups it owns, and the
// ReplicaEngine mirror sessions other nodes' engines replicate into.  An
// engine exists per *ownership grant* (the genesis grant, or one minted by
// a promotion/migration) and replicates every write to the union of its
// PGs' mirror nodes — so ANY wired mirror holds every byte of every PG the
// engine owns, which is exactly what makes the map's promotion heir
// (mirrors[0]) always a valid successor.
//
// Membership events evolve the PgMap by deltas and converge the data plane
// before the new epoch is published, so a routing client (ClusterRouter)
// only ever sees maps whose owners are live:
//
//   fail_node   — tear the dead node down, promote each moved PG's heir via
//                 ReplicaEngine::promote (epoch fencing: the successor
//                 engine stamps map-epoch-new, the dead primary would be
//                 NAK'd kStaleEpoch if it rose again), wire + seed the
//                 promoted engines' fresh mirrors with sync_blocks, and
//                 re-point surviving engines' dead mirror links at the
//                 map's replacement node.  Then flip the map.
//   join_node   — live migration of the PGs the joiner wins: mark them
//                 migrating (writes bounce, the router backs off), drain
//                 the old owner, stream the blocks over the
//                 kReadBlockRequest wire protocol, stand up the joiner's
//                 engine with the old primary demoted to first mirror,
//                 then flip the map and lift the migration gate.
//
// Client I/O enters through serve_client() — the kClientWriteRequest /
// kClientReadRequest session loop a node exposes to routers (prinsctl's
// TCP listener calls it; connect_client() serves it over an in-process
// pair) — or through make_router()'s local backends, which shortcut the
// wire but keep the identical ownership/fencing checks.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "block/block_device.h"
#include "cluster/cluster_router.h"
#include "cluster/pg_map.h"
#include "net/transport.h"
#include "prins/engine.h"
#include "prins/replica.h"

namespace prins {
class ReadRouter;
}  // namespace prins

namespace prins::cluster {

class LocalNodeBackend;

struct MembershipConfig {
  PgMapConfig map;
  /// Template for every engine this membership mints (cluster_epoch and
  /// read_from_replicas are overwritten per grant).
  EngineConfig engine;
  /// Template for every mirror session (cluster_epoch overwritten).
  ReplicaConfig replica;
  /// Acknowledge a client write only after the owning engine drained it to
  /// every mirror.  Off (default) acks after the local apply — the
  /// engine's pipelined senders replicate in the background.  Turn it on
  /// when a test equates "acked" with "survives the primary's death".
  bool sync_writes = false;
  /// Compose each engine with a ReadRouter over its mirror sessions, so
  /// conflict-free client reads offload to the PG's mirrors.
  bool read_offload = false;
  /// Queue bound of every in-process transport pair this membership wires.
  std::size_t inproc_capacity = 1024;
  /// Connection-pool size of the WireBackends make_router() builds.
  std::size_t client_pool = 4;
  /// Per-exchange reply deadline on router->node client connections.
  std::chrono::milliseconds client_op_timeout{2000};
};

/// Per-node view for stats surfaces (prinsctl cluster --stats).
struct NodeStats {
  std::string id;
  bool alive = false;
  std::vector<PgId> pgs;       // placement groups this node's engines own
  std::size_t engines = 0;     // ownership grants currently hosted
  std::size_t mirror_sessions = 0;  // inbound replication sessions hosted
  EngineMetrics metrics;       // merged across the node's engines
};

class PgMembership {
 public:
  /// Builds each member's backing device on join (genesis or live).  Every
  /// device must share one (block_size, num_blocks) geometry.
  using DeviceFactory =
      std::function<std::shared_ptr<BlockDevice>(const std::string& node_id)>;

  PgMembership(DeviceFactory make_device, MembershipConfig config = {});
  ~PgMembership();

  PgMembership(const PgMembership&) = delete;
  PgMembership& operator=(const PgMembership&) = delete;

  /// Register a genesis member (before start()).
  Status add_node(const std::string& id);

  /// Build the genesis map over the registered nodes and wire every
  /// engine + mirror session.  Devices start byte-identical (fresh), so
  /// genesis needs no seeding.
  Status start();

  /// Tear down every node (drains nothing; engines close their links and
  /// serve threads unwind).  Idempotent; the destructor calls it.
  void stop();

  /// Fail-stop `id` and converge: promote heirs, re-mirror survivors,
  /// publish the successor map.  Client I/O may run concurrently — the
  /// convergence window surfaces as retryable kUnavailable /
  /// kFailedPrecondition, which ClusterRouter rides out.
  Status fail_node(const std::string& id);

  /// Live-join `id` and migrate the PGs it wins (see file comment).
  Status join_node(const std::string& id);

  /// The current map; MapSource for routers.
  std::shared_ptr<const PgMap> map() const;

  /// Open a client connection to `node`'s serving loop over an in-process
  /// pair (a session thread runs serve_client on the far end).
  Result<std::unique_ptr<Transport>> connect_client(const std::string& node);

  /// Serve one client-frame session for `node` until the peer closes.
  /// prinsctl's TCP cluster listener calls this per accepted connection.
  Status serve_client(const std::string& node, Transport& transport);

  /// A router over every member.  `wire` routes through pooled client
  /// connections (connect_client); local backends skip the framing but
  /// keep the ownership checks.  The membership must outlive the router.
  std::unique_ptr<ClusterRouter> make_router(bool wire,
                                             ClusterRouterConfig config = {});

  std::vector<NodeStats> stats() const;
  std::vector<std::string> node_ids() const;
  std::shared_ptr<BlockDevice> node_device(const std::string& id) const;

  std::uint32_t block_size() const { return block_size_; }
  std::uint64_t num_blocks() const { return num_blocks_; }

 private:
  /// One inbound replication session: a ReplicaEngine over THIS mirror
  /// node's device, fed by a remote engine through an in-process pair.
  /// Owned by the replicating engine's grant (it holds the promotion
  /// state), hosted by the mirror node.
  struct MirrorSession {
    std::string node;  // mirror node id
    std::shared_ptr<ReplicaEngine> replica;
    std::shared_ptr<Transport> serve_end;       // replication traffic
    std::thread serve_thread;
    std::shared_ptr<Transport> read_serve_end;  // ReadRouter offload link
    std::thread read_serve_thread;
    /// Client end of the read link, parked here between attach_mirror and
    /// wire_grant handing it to the grant's ReadRouter.
    std::unique_ptr<Transport> pending_read_link;
  };

  /// One ownership grant: an engine over the owner's device serving `pgs`,
  /// replicating to the union of their mirror nodes.
  struct OwnedEngine {
    std::shared_ptr<PrinsEngine> engine;
    /// Client reads go here: the engine itself, or its ReadRouter when
    /// read offload is composed in.
    std::shared_ptr<BlockDevice> read_device;
    std::vector<PgId> pgs;
    std::vector<MirrorSession> mirrors;
  };

  struct ClientSession {
    std::shared_ptr<Transport> serve_end;
    std::thread thread;
  };

  struct Node {
    std::string id;
    std::shared_ptr<BlockDevice> device;
    bool alive = false;
    std::vector<std::unique_ptr<OwnedEngine>> engines;
    std::vector<ClientSession> sessions;
  };

  /// Wire one grant: build the engine (epoch = `map`'s), one mirror
  /// session per node in the union of `pgs`' mirror lists, and the read
  /// router when offload is on.  Caller seeds afterwards if the mirrors
  /// are not already caught up.  Admin mutex held.
  Result<std::unique_ptr<OwnedEngine>> wire_grant(
      const PgMap& map, const std::string& owner, std::vector<PgId> pgs,
      std::unique_ptr<PrinsEngine> promoted);
  /// Attach one mirror session (and its read link) to `grant`'s engine.
  Status attach_mirror(OwnedEngine& grant, const std::string& mirror_node,
                       std::uint64_t epoch);
  /// Stream `lbas` from `source`'s device to `dest`'s via the
  /// kReadBlockRequest / kReadBlockReply wire protocol (the migration and
  /// repair-pull path).  Admin mutex held; `source` must be quiesced for
  /// the copied range.
  Status copy_blocks_wire(Node& source, Node& dest,
                          const std::vector<Lba>& lbas);
  /// Locate the grant serving `pg` at `node` (state mutex held).
  OwnedEngine* grant_for_locked(Node& node, PgId pg);

  /// The ownership-checked data plane shared by serve_client and the
  /// local router backends.  kFailedPrecondition = wrong PG under the
  /// current map (the caller NAKs kWrongPg / the router refreshes);
  /// kUnavailable = dead node, migrating PG, or mid-promotion gap.
  Status client_write(const std::string& node, Lba lba, ByteSpan data);
  Status client_read(const std::string& node, Lba lba, MutByteSpan out);
  friend class LocalNodeBackend;

  /// Resolve (engine, read_device) for a client I/O and run the ownership
  /// checks; the I/O itself happens outside the state lock.
  Status resolve_io(const std::string& node_id, Lba lba, std::size_t blocks,
                    std::shared_ptr<PrinsEngine>* engine,
                    std::shared_ptr<BlockDevice>* read_device);

  void stop_node_locked(Node& node);  // admin mutex held
  void join_grant_threads(OwnedEngine& grant);

  const DeviceFactory make_device_;
  const MembershipConfig config_;
  std::uint32_t block_size_ = 0;
  std::uint64_t num_blocks_ = 0;

  /// Serializes membership mutations (start/fail/join/stop); never held
  /// while serving client I/O.
  std::mutex admin_mutex_;
  /// Guards the lookup state below; serving paths copy shared_ptrs under
  /// it and do their I/O outside.
  mutable std::mutex state_mutex_;
  std::shared_ptr<const PgMap> map_;
  std::map<std::string, std::unique_ptr<Node>> nodes_;
  /// PGs mid-migration: writes and reads bounce retryable until the flip.
  std::unordered_set<PgId> migrating_;
  bool started_ = false;
};

}  // namespace prins::cluster
