#include "cluster/pg_membership.h"

#include <algorithm>
#include <set>
#include <utility>

#include "codec/codec.h"
#include "common/endian.h"
#include "net/inproc.h"
#include "prins/message.h"
#include "prins/read_router.h"

namespace prins::cluster {
namespace {

/// Union of the mirror lists of `pgs` under `map`, excluding `owner`,
/// sorted for deterministic attach order.  The grant replicates every
/// write to all of these, which is what keeps any single mirror a valid
/// promotion heir for every PG of the grant.
std::vector<std::string> mirror_union(const PgMap& map,
                                      const std::vector<PgId>& pgs,
                                      const std::string& owner) {
  std::set<std::string> nodes;
  for (PgId pg : pgs) {
    for (const auto& m : map.assignment(pg).mirrors) {
      if (m != owner) nodes.insert(m);
    }
  }
  return {nodes.begin(), nodes.end()};
}

void merge_metrics(EngineMetrics& into, const EngineMetrics& from) {
  into.writes += from.writes;
  into.raw_bytes += from.raw_bytes;
  into.payload_bytes += from.payload_bytes;
  into.message_bytes += from.message_bytes;
  into.acks += from.acks;
  into.payload_sizes.merge(from.payload_sizes);
  into.dirty_bytes.merge(from.dirty_bytes);
  into.retries += from.retries;
  into.reconnects += from.reconnects;
  into.auto_resyncs += from.auto_resyncs;
  into.nak_full_repairs += from.nak_full_repairs;
  into.scrub_passes += from.scrub_passes;
  into.scrub_corruptions += from.scrub_corruptions;
  into.scrub_repaired += from.scrub_repaired;
  into.scrub_quarantined += from.scrub_quarantined;
  into.cluster_epoch = std::max(into.cluster_epoch, from.cluster_epoch);
  into.stale_epoch_naks += from.stale_epoch_naks;
  into.journal_frozen = std::max(into.journal_frozen, from.journal_frozen);
  into.journal_watermark =
      std::max(into.journal_watermark, from.journal_watermark);
  into.journal_pending += from.journal_pending;
  into.journal_pending_bytes += from.journal_pending_bytes;
  into.journal_spills += from.journal_spills;
  into.replica_reads += from.replica_reads;
  into.stale_read_retries += from.stale_read_retries;
  into.read_conflicts_local += from.read_conflicts_local;
}

}  // namespace

/// PgBackend that skips the wire but runs the identical ownership checks
/// (make_router(wire=false)); the single-process bench/test configuration.
class LocalNodeBackend final : public PgBackend {
 public:
  LocalNodeBackend(PgMembership* membership, std::string node_id)
      : membership_(membership), node_id_(std::move(node_id)) {}

  Status write(std::uint64_t lba, ByteSpan data, std::uint64_t) override {
    return membership_->client_write(node_id_, lba, data);
  }
  Status read(std::uint64_t lba, MutByteSpan out, std::uint64_t) override {
    return membership_->client_read(node_id_, lba, out);
  }
  Status flush() override { return Status::ok(); }
  std::string describe() const override {
    return "local-backend(" + node_id_ + ")";
  }

 private:
  PgMembership* membership_;
  const std::string node_id_;
};

PgMembership::PgMembership(DeviceFactory make_device, MembershipConfig config)
    : make_device_(std::move(make_device)), config_(std::move(config)) {}

PgMembership::~PgMembership() { stop(); }

Status PgMembership::add_node(const std::string& id) {
  std::lock_guard admin(admin_mutex_);
  if (started_) return failed_precondition("cluster already started");
  if (id.empty()) return invalid_argument("empty node id");
  std::lock_guard state(state_mutex_);
  if (nodes_.count(id) != 0) return already_exists("node " + id);
  auto node = std::make_unique<Node>();
  node->id = id;
  node->device = make_device_(id);
  if (!node->device) return internal_error("device factory returned null");
  if (block_size_ == 0) {
    block_size_ = node->device->block_size();
    num_blocks_ = node->device->num_blocks();
  } else if (node->device->block_size() != block_size_ ||
             node->device->num_blocks() != num_blocks_) {
    return invalid_argument("node " + id + " device geometry differs");
  }
  node->alive = true;
  nodes_[id] = std::move(node);
  return Status::ok();
}

Status PgMembership::attach_mirror(OwnedEngine& grant,
                                   const std::string& mirror_node,
                                   std::uint64_t epoch) {
  const auto it = nodes_.find(mirror_node);
  if (it == nodes_.end() || !it->second->alive) {
    return unavailable("mirror node " + mirror_node + " not alive");
  }
  MirrorSession session;
  session.node = mirror_node;
  ReplicaConfig rc = config_.replica;
  rc.cluster_epoch = epoch;
  // Trap-logged mirrors: a later promotion moves the CDP log into the
  // successor engine, so surviving peers can be caught up with deltas.
  rc.keep_trap_log = true;
  session.replica =
      std::make_shared<ReplicaEngine>(it->second->device, rc);
  auto [client_end, serve_end] = make_inproc_pair(config_.inproc_capacity);
  session.serve_end = std::move(serve_end);
  session.serve_thread =
      std::thread([replica = session.replica, end = session.serve_end] {
        (void)replica->serve(*end);
      });
  grant.engine->add_replica(std::move(client_end));
  if (config_.read_offload) {
    auto [read_client, read_serve] = make_inproc_pair(config_.inproc_capacity);
    session.read_serve_end = std::move(read_serve);
    session.read_serve_thread =
        std::thread([replica = session.replica, end = session.read_serve_end] {
          (void)replica->serve(*end);
        });
    // The grant's ReadRouter is built after every mirror attaches; park
    // the client end on the session until wire_grant collects it.
    session.pending_read_link = std::move(read_client);
  }
  grant.mirrors.push_back(std::move(session));
  return Status::ok();
}

Result<std::unique_ptr<PgMembership::OwnedEngine>> PgMembership::wire_grant(
    const PgMap& map, const std::string& owner, std::vector<PgId> pgs,
    std::unique_ptr<PrinsEngine> promoted) {
  const auto owner_it = nodes_.find(owner);
  if (owner_it == nodes_.end()) return not_found("owner node " + owner);
  auto grant = std::make_unique<OwnedEngine>();
  grant->pgs = std::move(pgs);
  if (promoted) {
    grant->engine = std::move(promoted);
  } else {
    EngineConfig cfg = config_.engine;
    cfg.cluster_epoch = map.epoch();
    cfg.read_from_replicas = config_.read_offload;
    grant->engine =
        std::make_shared<PrinsEngine>(owner_it->second->device, cfg);
  }
  for (const auto& mirror : mirror_union(map, grant->pgs, owner)) {
    PRINS_RETURN_IF_ERROR(attach_mirror(*grant, mirror, map.epoch()));
  }
  if (config_.read_offload && !grant->mirrors.empty()) {
    auto router = std::make_shared<ReadRouter>(grant->engine);
    for (auto& session : grant->mirrors) {
      if (session.pending_read_link) {
        router->add_read_replica(std::move(session.pending_read_link));
      }
    }
    grant->read_device = std::move(router);
  } else {
    grant->read_device = grant->engine;
  }
  return grant;
}

Status PgMembership::start() {
  std::lock_guard admin(admin_mutex_);
  if (started_) return failed_precondition("cluster already started");
  std::vector<std::string> ids;
  {
    std::lock_guard state(state_mutex_);
    for (const auto& [id, node] : nodes_) ids.push_back(id);
  }
  if (ids.empty()) return failed_precondition("no nodes registered");
  auto map =
      std::make_shared<const PgMap>(PgMap::build(ids, config_.map, /*epoch=*/1));
  // One genesis grant per owning node.  Devices start byte-identical, so
  // every mirror already agrees with its primary — no seeding.
  for (const auto& id : ids) {
    std::vector<PgId> owned;
    for (PgId pg = 0; pg < map->pg_count(); ++pg) {
      if (map->assignment(pg).primary == id) owned.push_back(pg);
    }
    if (owned.empty()) continue;
    PRINS_ASSIGN_OR_RETURN(std::unique_ptr<OwnedEngine> grant,
                           wire_grant(*map, id, std::move(owned), nullptr));
    std::lock_guard state(state_mutex_);
    nodes_[id]->engines.push_back(std::move(grant));
  }
  std::lock_guard state(state_mutex_);
  map_ = std::move(map);
  started_ = true;
  return Status::ok();
}

void PgMembership::join_grant_threads(OwnedEngine& grant) {
  for (auto& session : grant.mirrors) {
    if (session.serve_thread.joinable()) session.serve_thread.join();
    if (session.read_serve_thread.joinable()) session.read_serve_thread.join();
  }
}

void PgMembership::stop_node_locked(Node& node) {
  node.alive = false;
  for (auto& session : node.sessions) {
    if (session.serve_end) session.serve_end->close();
  }
  for (auto& session : node.sessions) {
    if (session.thread.joinable()) session.thread.join();
  }
  node.sessions.clear();
  for (auto& grant : node.engines) {
    grant->read_device.reset();  // the ReadRouter closes its read links
    grant->engine.reset();       // the engine closes its replica links
    join_grant_threads(*grant);
  }
  node.engines.clear();
}

void PgMembership::stop() {
  std::lock_guard admin(admin_mutex_);
  for (auto& [id, node] : nodes_) stop_node_locked(*node);
  std::lock_guard state(state_mutex_);
  nodes_.clear();
  migrating_.clear();
  started_ = false;
  block_size_ = 0;
  num_blocks_ = 0;
}

Status PgMembership::fail_node(const std::string& id) {
  std::lock_guard admin(admin_mutex_);
  Node* dead = nullptr;
  std::shared_ptr<const PgMap> old_map;
  {
    std::lock_guard state(state_mutex_);
    const auto it = nodes_.find(id);
    if (it == nodes_.end()) return not_found("node " + id);
    if (!it->second->alive) return failed_precondition(id + " already dead");
    it->second->alive = false;  // serving bounces kUnavailable from here on
    dead = it->second.get();
    old_map = map_;
  }
  // Fail-stop the node: unwind its client sessions and its engines (which
  // closes its outbound replication links), but KEEP the grants' mirror
  // sessions — their ReplicaEngines hold the promotion state.
  for (auto& session : dead->sessions) {
    if (session.serve_end) session.serve_end->close();
  }
  for (auto& session : dead->sessions) {
    if (session.thread.joinable()) session.thread.join();
  }
  dead->sessions.clear();
  for (auto& grant : dead->engines) {
    grant->read_device.reset();
    grant->engine.reset();
    join_grant_threads(*grant);
  }

  const PgMap successor = old_map->with_failed(id);
  auto new_map = std::make_shared<const PgMap>(successor);

  // Promote each moved PG's heir.  Moved PGs group by (dead grant, heir):
  // the heir's mirror session inside that grant holds every byte the
  // grant ever replicated, so promoting it yields a valid successor
  // engine for all of the grant's PGs that the map handed to this heir.
  const std::vector<PgId> moved = PgMap::moved_primaries(*old_map, *new_map);
  for (auto& grant : dead->engines) {
    std::map<std::string, std::vector<PgId>> by_heir;
    for (PgId pg : moved) {
      if (std::find(grant->pgs.begin(), grant->pgs.end(), pg) ==
          grant->pgs.end()) {
        continue;
      }
      const std::string& heir = new_map->assignment(pg).primary;
      if (heir.empty()) continue;  // every copy died with its owners
      by_heir[heir].push_back(pg);
    }
    for (auto& [heir, pgs] : by_heir) {
      auto session =
          std::find_if(grant->mirrors.begin(), grant->mirrors.end(),
                       [&](const MirrorSession& s) { return s.node == heir; });
      if (session == grant->mirrors.end()) {
        return internal_error("heir " + heir + " has no mirror session");
      }
      EngineConfig cfg = config_.engine;
      cfg.cluster_epoch = new_map->epoch();
      cfg.read_from_replicas = config_.read_offload;
      PRINS_ASSIGN_OR_RETURN(std::unique_ptr<PrinsEngine> engine,
                             session->replica->promote(cfg));
      PRINS_ASSIGN_OR_RETURN(
          std::unique_ptr<OwnedEngine> new_grant,
          wire_grant(*new_map, heir, pgs, std::move(engine)));
      // Seed the fresh mirrors with exactly the grant's blocks — a
      // device-wide sync would clobber blocks the mirror owns itself.
      if (!new_grant->mirrors.empty()) {
        PRINS_RETURN_IF_ERROR(new_grant->engine->sync_blocks(
            pg_lbas(*new_map, new_grant->pgs, num_blocks_)));
      }
      std::lock_guard state(state_mutex_);
      nodes_[heir]->engines.push_back(std::move(new_grant));
    }
  }
  dead->engines.clear();

  // Re-mirror survivors: every live grant that replicated into the dead
  // node re-points that one link at the map's replacement node and seeds
  // it, or — when no replacement exists — rebuilds without the link.
  for (auto& [node_id, node] : nodes_) {
    if (!node->alive) continue;
    for (auto& grant : node->engines) {
      const auto dead_it =
          std::find_if(grant->mirrors.begin(), grant->mirrors.end(),
                       [&](const MirrorSession& s) { return s.node == id; });
      if (dead_it == grant->mirrors.end()) continue;
      // Simulate the death on this link and unwind its serve threads.
      if (dead_it->serve_end) dead_it->serve_end->close();
      if (dead_it->read_serve_end) dead_it->read_serve_end->close();
      if (dead_it->serve_thread.joinable()) dead_it->serve_thread.join();
      if (dead_it->read_serve_thread.joinable()) {
        dead_it->read_serve_thread.join();
      }
      std::vector<std::string> wanted =
          mirror_union(*new_map, grant->pgs, node_id);
      std::vector<std::string> fresh;
      for (const auto& candidate : wanted) {
        const bool attached = std::any_of(
            grant->mirrors.begin(), grant->mirrors.end(),
            [&](const MirrorSession& s) {
              return s.node == candidate && s.node != id;
            });
        if (!attached) fresh.push_back(candidate);
      }
      if (!fresh.empty()) {
        // with_failed backfills one replacement per primary, so `fresh`
        // is a single node: re-point the dead link's slot at it.
        const std::string& repl = fresh.front();
        const auto repl_node = nodes_.find(repl);
        if (repl_node == nodes_.end() || !repl_node->second->alive) {
          return internal_error("replacement " + repl + " not alive");
        }
        MirrorSession session;
        session.node = repl;
        ReplicaConfig rc = config_.replica;
        rc.cluster_epoch = new_map->epoch();
        rc.keep_trap_log = true;
        session.replica =
            std::make_shared<ReplicaEngine>(repl_node->second->device, rc);
        auto [client_end, serve_end] =
            make_inproc_pair(config_.inproc_capacity);
        session.serve_end = std::move(serve_end);
        session.serve_thread =
            std::thread([replica = session.replica, end = session.serve_end] {
              (void)replica->serve(*end);
            });
        const std::size_t index =
            static_cast<std::size_t>(dead_it - grant->mirrors.begin());
        PRINS_RETURN_IF_ERROR(
            grant->engine->reattach_replica(index, std::move(client_end)));
        *dead_it = std::move(session);
        // Seed the replacement with the grant's blocks (kSyncBlock full
        // contents); the other mirrors receive byte-identical state.
        PRINS_RETURN_IF_ERROR(grant->engine->sync_blocks(
            pg_lbas(*new_map, grant->pgs, num_blocks_)));
      } else {
        // No replacement candidate (the cluster shrank too far): rebuild
        // the grant without the dead link so the sticky link error does
        // not wedge writes forever.  Deliver what the live links still
        // hold first.
        (void)grant->engine->drain();
        std::vector<PgId> pgs = grant->pgs;
        auto rebuilt_or = wire_grant(*new_map, node_id, pgs, nullptr);
        PRINS_RETURN_IF_ERROR(rebuilt_or.status());
        std::unique_ptr<OwnedEngine> rebuilt = std::move(rebuilt_or.value());
        std::unique_ptr<OwnedEngine> retired;
        {
          std::lock_guard state(state_mutex_);
          for (auto& slot : node->engines) {
            if (slot.get() == grant.get()) {
              retired = std::move(slot);
              slot = std::move(rebuilt);
              break;
            }
          }
        }
        if (retired) {
          retired->read_device.reset();
          retired->engine.reset();
          join_grant_threads(*retired);
        }
        // `grant` now references the rebuilt grant (the slot swap kept
        // the element alive); the node's remaining grants still scan.
      }
    }
  }

  std::lock_guard state(state_mutex_);
  map_ = std::move(new_map);
  return Status::ok();
}

Status PgMembership::copy_blocks_wire(Node& source, Node& dest,
                                      const std::vector<Lba>& lbas) {
  // Stream over the repair-pull wire protocol: a throwaway ReplicaEngine
  // serves kReadBlockRequest from the source device; each reply's payload
  // is a codec frame of the block.
  auto replica = std::make_shared<ReplicaEngine>(source.device);
  auto [client_end, serve_end] = make_inproc_pair(config_.inproc_capacity);
  std::shared_ptr<Transport> server(std::move(serve_end));
  std::thread service([replica, server] { (void)replica->serve(*server); });
  Status result = Status::ok();
  Bytes block(block_size_);
  std::uint64_t exchange = 0;
  for (Lba lba : lbas) {
    ReplicationMessage request;
    request.kind = MessageKind::kReadBlockRequest;
    request.lba = lba;
    request.sequence = ++exchange;
    result = client_end->send(request.encode());
    if (!result.is_ok()) break;
    for (;;) {
      Result<Bytes> wire = client_end->recv();
      if (!wire.is_ok()) {
        result = wire.status();
        break;
      }
      Result<ReplicationMessage> msg = ReplicationMessage::decode(*wire);
      if (!msg.is_ok()) {
        result = msg.status();
        break;
      }
      if (msg->sequence != request.sequence) continue;
      if (msg->kind != MessageKind::kReadBlockReply) {
        result = corruption("migration source NAK'd block " +
                            std::to_string(lba));
        break;
      }
      Result<Bytes> decoded = decode_frame(msg->payload);
      if (!decoded.is_ok()) {
        result = decoded.status();
        break;
      }
      result = dest.device->write(lba, *decoded);
      break;
    }
    if (!result.is_ok()) break;
  }
  client_end->close();
  service.join();
  return result;
}

Status PgMembership::join_node(const std::string& id) {
  std::lock_guard admin(admin_mutex_);
  if (!started_) return failed_precondition("cluster not started");
  std::shared_ptr<const PgMap> old_map;
  {
    std::lock_guard state(state_mutex_);
    if (nodes_.count(id) != 0) return already_exists("node " + id);
    old_map = map_;
    auto node = std::make_unique<Node>();
    node->id = id;
    node->device = make_device_(id);
    if (!node->device) return internal_error("device factory returned null");
    if (node->device->block_size() != block_size_ ||
        node->device->num_blocks() != num_blocks_) {
      return invalid_argument("node " + id + " device geometry differs");
    }
    node->alive = true;
    nodes_[id] = std::move(node);
  }
  auto new_map = std::make_shared<const PgMap>(old_map->with_joined(id));
  const std::vector<PgId> moved = PgMap::moved_primaries(*old_map, *new_map);
  if (moved.empty()) {
    std::lock_guard state(state_mutex_);
    map_ = std::move(new_map);
    return Status::ok();
  }
  // Gate the moving PGs: writes and reads bounce retryable while the data
  // streams over; ClusterRouter rides the window out with backoff.
  {
    std::lock_guard state(state_mutex_);
    migrating_.insert(moved.begin(), moved.end());
  }
  // Migrate per old-owner grant: drain the grant (every acked write is on
  // its device), stream the moved PGs' blocks to the joiner over
  // kReadBlockRequest, then retire the PGs from the grant.  One new grant
  // per old owner keeps the mirror-union invariant: the joiner's mirrors
  // (the demoted old primary and its peers) already hold every moved
  // byte, so no reseeding — the only data movement is the copy itself.
  Status result = Status::ok();
  for (auto& [owner_id, owner] : nodes_) {
    if (owner_id == id || !owner->alive) continue;
    for (auto& grant : owner->engines) {
      std::vector<PgId> leaving;
      for (PgId pg : moved) {
        if (std::find(grant->pgs.begin(), grant->pgs.end(), pg) !=
            grant->pgs.end()) {
          leaving.push_back(pg);
        }
      }
      if (leaving.empty()) continue;
      result = grant->engine->drain();
      if (!result.is_ok()) break;
      result = copy_blocks_wire(*owner, *nodes_[id],
                                pg_lbas(*new_map, leaving, num_blocks_));
      if (!result.is_ok()) break;
      auto joined_or = wire_grant(*new_map, id, leaving, nullptr);
      result = joined_or.status();
      if (!result.is_ok()) break;
      std::lock_guard state(state_mutex_);
      grant->pgs.erase(std::remove_if(grant->pgs.begin(), grant->pgs.end(),
                                      [&](PgId pg) {
                                        return std::find(leaving.begin(),
                                                         leaving.end(), pg) !=
                                               leaving.end();
                                      }),
                       grant->pgs.end());
      nodes_[id]->engines.push_back(std::move(joined_or.value()));
    }
    if (!result.is_ok()) break;
  }
  std::lock_guard state(state_mutex_);
  for (PgId pg : moved) migrating_.erase(pg);
  if (result.is_ok()) map_ = std::move(new_map);
  return result;
}

std::shared_ptr<const PgMap> PgMembership::map() const {
  std::lock_guard state(state_mutex_);
  return map_;
}

PgMembership::OwnedEngine* PgMembership::grant_for_locked(Node& node,
                                                          PgId pg) {
  for (auto& grant : node.engines) {
    if (std::find(grant->pgs.begin(), grant->pgs.end(), pg) !=
        grant->pgs.end()) {
      return grant.get();
    }
  }
  return nullptr;
}

Status PgMembership::resolve_io(const std::string& node_id, Lba lba,
                                std::size_t blocks,
                                std::shared_ptr<PrinsEngine>* engine,
                                std::shared_ptr<BlockDevice>* read_device) {
  std::lock_guard state(state_mutex_);
  if (!map_) return failed_precondition("cluster not started");
  if (lba + blocks > num_blocks_) return out_of_range("I/O past device end");
  const auto it = nodes_.find(node_id);
  if (it == nodes_.end() || !it->second->alive) {
    return unavailable("node " + node_id + " not alive");
  }
  const PgId pg = map_->pg_of(lba);
  for (std::size_t i = 0; i < blocks; ++i) {
    const PgId block_pg = map_->pg_of(lba + i);
    if (migrating_.count(block_pg) != 0) {
      return unavailable("pg " + std::to_string(block_pg) + " migrating");
    }
    if (map_->assignment(block_pg).primary != node_id) {
      return failed_precondition("wrong pg: " + node_id + " does not own pg " +
                                 std::to_string(block_pg));
    }
  }
  OwnedEngine* grant = grant_for_locked(*it->second, pg);
  if (grant == nullptr || !grant->engine) {
    return unavailable("pg " + std::to_string(pg) + " ownership settling");
  }
  *engine = grant->engine;
  *read_device = grant->read_device;
  return Status::ok();
}

Status PgMembership::client_write(const std::string& node, Lba lba,
                                  ByteSpan data) {
  if (data.empty() || data.size() % block_size_ != 0) {
    return invalid_argument("client write length not a block multiple");
  }
  std::shared_ptr<PrinsEngine> engine;
  std::shared_ptr<BlockDevice> read_device;
  PRINS_RETURN_IF_ERROR(
      resolve_io(node, lba, data.size() / block_size_, &engine, &read_device));
  PRINS_RETURN_IF_ERROR(engine->write(lba, data));
  if (config_.sync_writes) return engine->drain();
  return Status::ok();
}

Status PgMembership::client_read(const std::string& node, Lba lba,
                                 MutByteSpan out) {
  if (out.empty() || out.size() % block_size_ != 0) {
    return invalid_argument("client read length not a block multiple");
  }
  std::shared_ptr<PrinsEngine> engine;
  std::shared_ptr<BlockDevice> read_device;
  PRINS_RETURN_IF_ERROR(
      resolve_io(node, lba, out.size() / block_size_, &engine, &read_device));
  return read_device->read(lba, out);
}

Status PgMembership::serve_client(const std::string& node,
                                  Transport& transport) {
  for (;;) {
    Result<Bytes> wire = transport.recv();
    if (!wire.is_ok()) return Status::ok();  // peer closed: session over
    Result<ReplicationMessage> msg_or = ReplicationMessage::decode(*wire);
    ReplicationMessage reply;
    if (!msg_or.is_ok()) {
      reply.kind = MessageKind::kNak;
      reply.payload = {static_cast<Byte>(NakReason::kResend)};
      if (!transport.send(reply.encode()).is_ok()) return Status::ok();
      continue;
    }
    const ReplicationMessage& msg = *msg_or;
    reply.sequence = msg.sequence;
    reply.lba = msg.lba;
    Status s;
    switch (msg.kind) {
      case MessageKind::kClientWriteRequest: {
        // Payload = u64 LE client map epoch, then the run's raw blocks.
        if (msg.payload.size() < 8) {
          s = invalid_argument("short client write payload");
          break;
        }
        s = client_write(node, msg.lba,
                         ByteSpan(msg.payload).subspan(8));
        if (s.is_ok()) reply.kind = MessageKind::kClientWriteReply;
        break;
      }
      case MessageKind::kClientReadRequest: {
        // Payload = u64 min_sequence, u64 map epoch, u32 byte count.  The
        // owner is trivially fresh, so min_sequence is not re-checked
        // here (plain replicas enforce it; see serve_client_read).
        std::size_t want = block_size_;
        if (msg.payload.size() >= 20) {
          want = load_le32(ByteSpan(msg.payload).subspan(16, 4));
        }
        Bytes block(want);
        s = client_read(node, msg.lba, block);
        if (s.is_ok()) {
          reply.kind = MessageKind::kClientReadReply;
          reply.block_size = block_size_;
          reply.payload = std::move(block);
        }
        break;
      }
      default:
        s = unimplemented("unexpected client frame kind");
        break;
    }
    if (!s.is_ok()) {
      reply.kind = MessageKind::kNak;
      if (s.code() == ErrorCode::kFailedPrecondition) {
        // Stale-map client: kWrongPg, payload bytes 1..8 = our map epoch.
        reply.payload.assign(9, 0);
        reply.payload[0] = static_cast<Byte>(NakReason::kWrongPg);
        std::uint64_t epoch = 0;
        {
          std::lock_guard state(state_mutex_);
          if (map_) epoch = map_->epoch();
        }
        store_le64(MutByteSpan(reply.payload).subspan(1, 8), epoch);
      } else {
        reply.payload = {static_cast<Byte>(NakReason::kResend)};
      }
    }
    if (!transport.send(reply.encode()).is_ok()) return Status::ok();
  }
}

Result<std::unique_ptr<Transport>> PgMembership::connect_client(
    const std::string& node) {
  std::lock_guard state(state_mutex_);
  const auto it = nodes_.find(node);
  if (it == nodes_.end() || !it->second->alive) {
    return unavailable("node " + node + " not alive");
  }
  auto [client_end, serve_end] = make_inproc_pair(config_.inproc_capacity);
  ClientSession session;
  session.serve_end = std::move(serve_end);
  session.thread =
      std::thread([this, node, end = session.serve_end] {
        (void)serve_client(node, *end);
      });
  it->second->sessions.push_back(std::move(session));
  return std::move(client_end);
}

std::unique_ptr<ClusterRouter> PgMembership::make_router(
    bool wire, ClusterRouterConfig config) {
  auto router = std::make_unique<ClusterRouter>(
      block_size_, num_blocks_, map(), [this] { return map(); }, config);
  for (const auto& id : node_ids()) {
    if (wire) {
      router->add_node(
          id, std::make_shared<WireBackend>(
                  id, [this, id] { return connect_client(id); },
                  config_.client_pool, config_.client_op_timeout));
    } else {
      router->add_node(id, std::make_shared<LocalNodeBackend>(this, id));
    }
  }
  // Nodes that join after the router was built resolve lazily on the first
  // refreshed map that names them.  The membership must outlive the router.
  router->set_backend_source(
      [this, wire](const std::string& id) -> std::shared_ptr<PgBackend> {
        {
          std::lock_guard state(state_mutex_);
          if (nodes_.find(id) == nodes_.end()) return nullptr;
        }
        if (wire) {
          return std::make_shared<WireBackend>(
              id, [this, id] { return connect_client(id); },
              config_.client_pool, config_.client_op_timeout);
        }
        return std::make_shared<LocalNodeBackend>(this, id);
      });
  return router;
}

std::vector<std::string> PgMembership::node_ids() const {
  std::lock_guard state(state_mutex_);
  std::vector<std::string> ids;
  for (const auto& [id, node] : nodes_) ids.push_back(id);
  return ids;
}

std::shared_ptr<BlockDevice> PgMembership::node_device(
    const std::string& id) const {
  std::lock_guard state(state_mutex_);
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second->device;
}

std::vector<NodeStats> PgMembership::stats() const {
  std::lock_guard state(state_mutex_);
  std::vector<NodeStats> out;
  for (const auto& [id, node] : nodes_) {
    NodeStats ns;
    ns.id = id;
    ns.alive = node->alive;
    ns.engines = node->engines.size();
    for (const auto& grant : node->engines) {
      ns.pgs.insert(ns.pgs.end(), grant->pgs.begin(), grant->pgs.end());
      if (grant->engine) merge_metrics(ns.metrics, grant->engine->metrics());
    }
    std::sort(ns.pgs.begin(), ns.pgs.end());
    out.push_back(std::move(ns));
  }
  // Mirror sessions are owned by the replicating grant but hosted at the
  // mirror node; count them where they live.
  for (const auto& [id, node] : nodes_) {
    for (const auto& grant : node->engines) {
      for (const auto& session : grant->mirrors) {
        for (auto& ns : out) {
          if (ns.id == session.node) ns.mirror_sessions += 1;
        }
      }
    }
  }
  return out;
}

}  // namespace prins::cluster
