// PgMap: versioned placement-group → node maps.
//
// The cluster stripes the LBA space across primaries by placement group:
// pg = mix64(lba) & (pg_count - 1).  A PgMap assigns every PG a primary
// node and an ordered mirror list (mirrors[0] is the promotion heir), and
// carries a monotonically increasing epoch so a map change is a fenced
// cutover: every client I/O frame is stamped with the sender's map epoch,
// and a node that no longer owns the frame's PG answers kWrongPg with its
// own epoch, forcing the stale client to refresh before retrying.
//
// The genesis map is pure rendezvous (HRW) hashing: every party holding
// the same node list and PgMapConfig computes byte-identical assignments,
// so a client can bootstrap its map without talking to anyone.  Later
// epochs evolve by *deltas*, not re-hashes — with_failed() moves only the
// dead node's PGs (to their first surviving mirror, which holds the data)
// and with_joined() moves only the PGs the new node wins outright — the
// same versioned-state-machine treatment real cluster maps get, because a
// pure re-hash at every event would reassign PGs to nodes that never
// received their writes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/status.h"

namespace prins::cluster {

using PgId = std::uint32_t;

/// One placement group's placement.  An empty primary means every copy of
/// the group's data died with its owners (nothing serves it).
struct PgAssignment {
  std::string primary;
  /// Ordered by rendezvous score: mirrors[0] is promoted when the primary
  /// fails.  May run short of PgMapConfig::mirrors when the cluster is
  /// too small or failures exhausted the candidates.
  std::vector<std::string> mirrors;
};

struct PgMapConfig {
  /// Placement groups; rounded up to a power of two (pg_of masks).
  std::uint32_t pg_count = 64;
  /// Mirrors per PG (clamped to nodes - 1).
  std::uint32_t mirrors = 1;
};

class PgMap {
 public:
  PgMap() = default;

  /// Genesis map: rendezvous-hash every PG over `nodes` at `epoch`.
  /// Deterministic in (nodes, config) — node order does not matter.
  static PgMap build(std::vector<std::string> nodes, PgMapConfig config,
                     std::uint64_t epoch = 1);

  std::uint64_t epoch() const { return epoch_; }
  std::uint32_t pg_count() const { return pg_count_; }
  std::uint32_t pg_mask() const { return pg_count_ - 1; }
  std::uint32_t mirror_target() const { return mirror_target_; }

  PgId pg_of(std::uint64_t lba) const {
    return static_cast<PgId>(mix64(lba) & pg_mask());
  }

  const PgAssignment& assignment(PgId pg) const { return pgs_[pg]; }
  /// Alive nodes at this epoch, sorted by id.
  const std::vector<std::string>& nodes() const { return nodes_; }
  bool has_node(const std::string& id) const;

  /// Successor map at epoch + 1 after `node` fail-stops.  Its PGs promote
  /// their first surviving mirror to primary and backfill replacement
  /// mirrors by rendezvous over the survivors; PGs it merely mirrored get
  /// one replacement mirror chosen per-primary (every PG of one primary
  /// backfills the same node, so the primary's engine can re-point the
  /// single dead link).
  PgMap with_failed(const std::string& node) const;

  /// Successor map at epoch + 1 after `node` joins.  The node takes over
  /// exactly the PGs it tops by rendezvous score (~1/n of them); each
  /// moved PG demotes its old primary to mirrors[0] — the old primary
  /// already holds every byte, so the new placement needs no reseeding
  /// beyond copying the data to the new owner.
  PgMap with_joined(const std::string& node) const;

  /// PGs whose primary differs between `before` and `after`.
  static std::vector<PgId> moved_primaries(const PgMap& before,
                                           const PgMap& after);

  /// Rendezvous ranking of `nodes` for `pg`, highest score first.
  static std::vector<std::string> rank(const std::vector<std::string>& nodes,
                                       std::uint64_t salt);

  /// Wire form: magic, epoch, config, node list, per-PG assignments,
  /// trailing crc32c.  parse() round-trips serialize() exactly.
  Bytes serialize() const;
  static Result<PgMap> parse(ByteSpan wire);

  bool operator==(const PgMap& other) const;

 private:
  std::uint64_t epoch_ = 0;
  std::uint32_t pg_count_ = 0;
  std::uint32_t mirror_target_ = 0;
  std::vector<std::string> nodes_;
  std::vector<PgAssignment> pgs_;
};

/// Every LBA of `pg` on a device of `num_blocks` blocks (the pg_of
/// preimage; O(num_blocks)).  The seeding/migration block lists.
std::vector<std::uint64_t> pg_lbas(const PgMap& map, PgId pg,
                                   std::uint64_t num_blocks);

/// Union of pg_lbas over `pgs` in one device scan, ascending.
std::vector<std::uint64_t> pg_lbas(const PgMap& map,
                                   const std::vector<PgId>& pgs,
                                   std::uint64_t num_blocks);

}  // namespace prins::cluster
