#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace prins {

namespace {
constexpr int kSubBits = 4;
constexpr std::uint64_t kSub = 1u << kSubBits;
// 64 powers-of-two, kSub sub-buckets each; plenty for u64 values.
constexpr std::size_t kNumBuckets = 64 * kSub;
}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

std::size_t Histogram::bucket_index(std::uint64_t value) {
  if (value < kSub) return static_cast<std::size_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - kSubBits;
  const std::uint64_t sub = (value >> shift) & (kSub - 1);
  return static_cast<std::size_t>((msb - kSubBits + 1) * kSub + sub);
}

std::uint64_t Histogram::bucket_floor(std::size_t index) {
  if (index < kSub) return index;
  const std::size_t exp = index / kSub - 1;
  const std::uint64_t sub = index % kSub;
  return ((kSub + sub) << (exp + 1)) >> 1;
}

void Histogram::record(std::uint64_t value) { record_n(value, 1); }

void Histogram::record_n(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  std::size_t idx = bucket_index(value);
  if (idx >= buckets_.size()) idx = buckets_.size() - 1;
  buckets_[idx] += count;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  count_ += count;
  sum_ += value * count;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::clamp(bucket_floor(i), min_, max_);
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
  }
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = min_ = max_ = 0;
}

std::string Histogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "count=%llu mean=%.2f p50=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(count_), mean(),
                static_cast<unsigned long long>(quantile(0.5)),
                static_cast<unsigned long long>(quantile(0.99)),
                static_cast<unsigned long long>(max()));
  return buf;
}

}  // namespace prins
