// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// Used to protect replication frames and block checksums during
// verify/repair.  Uses the SSE4.2 crc32 instruction when the CPU has it
// (resolved once at first use), otherwise a table-driven slice-by-4
// fallback with identical output.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace prins {

/// CRC-32C of `data`, seeded by `seed` (pass a previous crc to chain).
std::uint32_t crc32c(ByteSpan data, std::uint32_t seed = 0);

}  // namespace prins
