// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// Used to protect replication frames and block checksums during
// verify/repair.  Table-driven (slice-by-4); no hardware dependency.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace prins {

/// CRC-32C of `data`, seeded by `seed` (pass a previous crc to chain).
std::uint32_t crc32c(ByteSpan data, std::uint32_t seed = 0);

}  // namespace prins
