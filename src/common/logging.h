// Minimal leveled logger.
//
// Storage engines log rarely on the fast path; this logger is for lifecycle
// events (sessions opening, replication errors, rebuild progress).  Output
// goes to stderr; the level is a process-wide atomic so tests can silence it.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace prins {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace internal {

void log_line(LogLevel level, const std::string& msg);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define PRINS_LOG(level)                                    \
  if (static_cast<int>(::prins::LogLevel::level) <          \
      static_cast<int>(::prins::log_level())) {             \
  } else                                                    \
    ::prins::internal::LogMessage(::prins::LogLevel::level).stream()

}  // namespace prins
