// LEB128 variable-length integers for compact frame headers and the
// zero-run-length parity codec.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.h"

namespace prins {

/// Append `v` to `out` as unsigned LEB128 (1..10 bytes).
void put_varint(Bytes& out, std::uint64_t v);

/// Decode a varint starting at `in[pos]`; advances `pos` past it.
/// Returns nullopt on truncated or over-long (>10 byte) input.
std::optional<std::uint64_t> get_varint(ByteSpan in, std::size_t& pos);

/// Number of bytes put_varint would emit for `v`.
std::size_t varint_size(std::uint64_t v);

}  // namespace prins
