#include "common/rng.h"

#include <cassert>
#include <cmath>

#include "common/hash.h"

namespace prins {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // splitmix64 stream to spread one seed across the 256-bit state
  std::uint64_t x = seed;
  for (auto& s : s_) {
    x += 0x9e3779b97f4a7c15ull;
    s = mix64(x);
  }
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift rejection method for unbiased bounded values.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::next_in(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  return lo + next_below(hi - lo + 1);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return next_double() < p;
}

double Rng::next_exponential(double mean) {
  assert(mean > 0);
  double u = next_double();
  // avoid log(0)
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

void Rng::fill(MutByteSpan out) {
  std::size_t i = 0;
  for (; i + 8 <= out.size(); i += 8) {
    std::uint64_t v = next_u64();
    for (int k = 0; k < 8; ++k) out[i + k] = static_cast<Byte>(v >> (8 * k));
  }
  if (i < out.size()) {
    std::uint64_t v = next_u64();
    for (; i < out.size(); ++i) {
      out[i] = static_cast<Byte>(v);
      v >>= 8;
    }
  }
}

void Rng::fill_text(MutByteSpan out) {
  for (auto& b : out) {
    b = static_cast<Byte>(' ' + next_below('~' - ' ' + 1));
  }
}

Zipf::Zipf(std::uint64_t n, double theta) : n_(n), theta_(theta) {
  assert(n >= 1);
  assert(theta > 0 && theta < 1);
  alpha_ = 1.0 / (1.0 - theta);
  zetan_ = 0;
  for (std::uint64_t i = 1; i <= n; ++i) zetan_ += 1.0 / std::pow(i, theta);
  double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

std::uint64_t Zipf::sample(Rng& rng) const {
  double u = rng.next_double();
  double uz = u * zetan_;
  if (uz < 1.0) return 1;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 2;
  auto v = static_cast<std::uint64_t>(
      1 + static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (v < 1) v = 1;
  if (v > n_) v = n_;
  return v;
}

std::uint64_t nurand(Rng& rng, std::uint64_t a, std::uint64_t x,
                     std::uint64_t y, std::uint64_t c) {
  assert(x <= y);
  std::uint64_t r1 = rng.next_in(0, a);
  std::uint64_t r2 = rng.next_in(x, y);
  return (((r1 | r2) + c) % (y - x + 1)) + x;
}

}  // namespace prins
