#include "common/env.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"

namespace prins {

std::optional<std::size_t> parse_env_size(const char* name,
                                          std::size_t min_value,
                                          std::size_t max_value) {
  const char* env = std::getenv(name);
  if (env == nullptr) return std::nullopt;

  // Strict whole-string parse: optional leading/trailing blanks around a
  // plain decimal integer.  A leading '-' (which strtoul would wrap) and
  // trailing junk ("8x") are both invalid.
  const char* p = env;
  while (std::isspace(static_cast<unsigned char>(*p))) ++p;
  if (*p == '\0' || !std::isdigit(static_cast<unsigned char>(*p))) {
    PRINS_LOG(kWarn) << name << "=\"" << env
                     << "\" is not a positive integer; using the default";
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(p, &end, 10);
  const bool overflow = errno == ERANGE;
  while (end != nullptr && std::isspace(static_cast<unsigned char>(*end))) {
    ++end;
  }
  if (overflow || end == nullptr || *end != '\0') {
    PRINS_LOG(kWarn) << name << "=\"" << env
                     << "\" is not a positive integer; using the default";
    return std::nullopt;
  }
  if (value < min_value) {
    PRINS_LOG(kWarn) << name << "=" << value << " is below the minimum of "
                     << min_value << "; using the default";
    return std::nullopt;
  }
  if (value > max_value) {
    PRINS_LOG(kWarn) << name << "=" << value << " exceeds the maximum of "
                     << max_value << "; clamping";
    return max_value;
  }
  return static_cast<std::size_t>(value);
}

}  // namespace prins
