#include "common/varint.h"

namespace prins {

void put_varint(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<Byte>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<Byte>(v));
}

std::optional<std::uint64_t> get_varint(ByteSpan in, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  std::size_t p = pos;
  while (p < in.size() && shift < 64) {
    Byte b = in[p++];
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      pos = p;
      return v;
    }
    shift += 7;
  }
  return std::nullopt;  // truncated or over-long
}

std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace prins
