// Validated parsing of numeric environment knobs.
//
// Every PRINS_* sizing knob (reactor threads, apply shards, write shards)
// shares the same contract: unset means "auto", a positive integer is a
// request, and anything else — garbage, an empty string, zero, a negative
// number, or a value past the documented ceiling — must NOT silently turn
// into a surprise (strtoul happily wraps "-4" to 2^64-4, which a clamp then
// "honors" as the maximum).  parse_env_size gives each knob one strict,
// warning-on-nonsense implementation.
#pragma once

#include <cstddef>
#include <optional>

namespace prins {

/// Read environment variable `name` as a size in [min_value, max_value].
///
///   - unset                         -> nullopt (caller applies its default)
///   - not a whole non-negative
///     decimal integer (garbage,
///     empty, "-4", "3x", overflow)  -> nullopt + a kWarn log naming the knob
///   - below min_value (e.g. 0)      -> nullopt + a kWarn log (the documented
///                                      default is the fallback, never a
///                                      zero-sized pool)
///   - above max_value               -> max_value + a kWarn log (explicit
///                                      clamp, not silent)
///   - otherwise                     -> the parsed value
std::optional<std::size_t> parse_env_size(const char* name,
                                          std::size_t min_value,
                                          std::size_t max_value);

}  // namespace prins
