// Explicit-endian loads and stores.
//
// iSCSI PDUs are big-endian on the wire; PRINS replication frames are
// little-endian.  These helpers make the byte order visible at every call
// site and avoid unaligned-access UB by going through memcpy.
#pragma once

#include <cstdint>
#include <cstring>

#include "common/bytes.h"

namespace prins {

// ---- little endian -------------------------------------------------------

inline void store_le16(MutByteSpan dst, std::uint16_t v) {
  dst[0] = static_cast<Byte>(v);
  dst[1] = static_cast<Byte>(v >> 8);
}
inline void store_le32(MutByteSpan dst, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) dst[i] = static_cast<Byte>(v >> (8 * i));
}
inline void store_le64(MutByteSpan dst, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) dst[i] = static_cast<Byte>(v >> (8 * i));
}

inline std::uint16_t load_le16(ByteSpan src) {
  return static_cast<std::uint16_t>(src[0] | (src[1] << 8));
}
inline std::uint32_t load_le32(ByteSpan src) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | src[i];
  return v;
}
inline std::uint64_t load_le64(ByteSpan src) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | src[i];
  return v;
}

inline void append_le16(Bytes& out, std::uint16_t v) {
  Byte b[2];
  store_le16(b, v);
  append(out, b);
}
inline void append_le32(Bytes& out, std::uint32_t v) {
  Byte b[4];
  store_le32(b, v);
  append(out, b);
}
inline void append_le64(Bytes& out, std::uint64_t v) {
  Byte b[8];
  store_le64(b, v);
  append(out, b);
}

// ---- big endian (network order) ------------------------------------------

inline void store_be16(MutByteSpan dst, std::uint16_t v) {
  dst[0] = static_cast<Byte>(v >> 8);
  dst[1] = static_cast<Byte>(v);
}
inline void store_be24(MutByteSpan dst, std::uint32_t v) {
  dst[0] = static_cast<Byte>(v >> 16);
  dst[1] = static_cast<Byte>(v >> 8);
  dst[2] = static_cast<Byte>(v);
}
inline void store_be32(MutByteSpan dst, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) dst[i] = static_cast<Byte>(v >> (8 * (3 - i)));
}
inline void store_be64(MutByteSpan dst, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) dst[i] = static_cast<Byte>(v >> (8 * (7 - i)));
}

inline std::uint16_t load_be16(ByteSpan src) {
  return static_cast<std::uint16_t>((src[0] << 8) | src[1]);
}
inline std::uint32_t load_be24(ByteSpan src) {
  return (static_cast<std::uint32_t>(src[0]) << 16) |
         (static_cast<std::uint32_t>(src[1]) << 8) | src[2];
}
inline std::uint32_t load_be32(ByteSpan src) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | src[i];
  return v;
}
inline std::uint64_t load_be64(ByteSpan src) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | src[i];
  return v;
}

}  // namespace prins
