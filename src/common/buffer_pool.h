// BufferPool: a freelist of reusable byte buffers for the replication hot
// path.
//
// The engine's submit path needs several scratch buffers per block write
// (old-block contents, the parity delta, the encoded codec frame, the
// coalesce copy).  Allocating them fresh each time puts 4-6 heap
// round-trips on every write; this pool hands out refcounted buffers that
// return to a freelist on last release, so steady state makes zero heap
// allocations per write.
//
// PooledBuffer is a shared handle (copy = refcount bump) so one payload can
// sit in several replica outboxes at once, exactly like the shared_ptr wire
// buffers it replaces.  Buffers keep their capacity across reuse; acquiring
// the same size as the previous user (the common case — everything is
// block-sized) does not even touch the bytes.
//
// Thread-safe: acquire/release may race freely across producer and sender
// threads.  The *contents* of a buffer follow the usual rule: mutate only
// while uniquely owned (use_count() == 1) or under external locking.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/bytes.h"

namespace prins {

class BufferPool;

namespace internal {
struct PoolShared;

struct BufferSlot {
  Bytes buf;
  std::atomic<std::uint32_t> refs{1};
  // Pool to return to on last release; null for plain heap slots
  // (PooledBuffer::heap), which are deleted instead.  Holds the freelist
  // alive even if the pool object is destroyed first.
  std::shared_ptr<PoolShared> home;
};
}  // namespace internal

/// Shared handle onto a pooled (or plain heap) buffer.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  PooledBuffer(const PooledBuffer& other);
  PooledBuffer& operator=(const PooledBuffer& other);
  PooledBuffer(PooledBuffer&& other) noexcept;
  PooledBuffer& operator=(PooledBuffer&& other) noexcept;
  ~PooledBuffer();

  /// Wrap an owned buffer in a standalone (unpooled) slot.  For cold paths
  /// that build a payload ad hoc; the slot is heap-allocated and freed on
  /// last release.
  static PooledBuffer heap(Bytes bytes);

  explicit operator bool() const { return slot_ != nullptr; }

  /// Empty span when null.
  ByteSpan span() const;
  std::size_t size() const;

  /// Mutable access; requires a non-null handle.  Callers must hold unique
  /// ownership (use_count() == 1) or serialize externally.
  Bytes& mutable_bytes();
  const Bytes& bytes() const;

  /// Handles sharing this slot (0 for a null handle).
  std::size_t use_count() const;

  void reset();

 private:
  friend class BufferPool;
  explicit PooledBuffer(internal::BufferSlot* slot) : slot_(slot) {}

  internal::BufferSlot* slot_ = nullptr;
};

class BufferPool {
 public:
  /// `buffer_capacity`: bytes reserved in each fresh buffer (the expected
  /// steady-state size, e.g. the block size).  `max_free`: freelist bound —
  /// releases beyond it free the buffer instead of caching it.
  explicit BufferPool(std::size_t buffer_capacity, std::size_t max_free = 128);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A buffer resized to `size` (contents unspecified).  Reuses a free
  /// buffer when one is cached, else allocates.
  PooledBuffer acquire(std::size_t size);

  struct Stats {
    std::uint64_t allocated = 0;  // fresh buffers created
    std::uint64_t reused = 0;     // acquires served from the freelist
    std::size_t free_buffers = 0;
  };
  Stats stats() const;

 private:
  std::shared_ptr<internal::PoolShared> shared_;
};

}  // namespace prins
