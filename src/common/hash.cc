#include "common/hash.h"

namespace prins {

std::uint64_t fnv1a64(ByteSpan data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (Byte b : data) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace prins
