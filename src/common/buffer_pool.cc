#include "common/buffer_pool.h"

namespace prins {
namespace internal {

struct PoolShared {
  std::mutex mutex;
  std::vector<BufferSlot*> free_list;
  std::size_t buffer_capacity = 0;
  std::size_t max_free = 0;
  std::uint64_t allocated = 0;
  std::uint64_t reused = 0;
  bool closed = false;

  ~PoolShared() {
    for (BufferSlot* slot : free_list) delete slot;
  }
};

namespace {

void ref(BufferSlot* slot) {
  if (slot != nullptr) slot->refs.fetch_add(1, std::memory_order_relaxed);
}

void unref(BufferSlot* slot) {
  if (slot == nullptr) return;
  if (slot->refs.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  PoolShared* home = slot->home.get();
  if (home == nullptr) {
    delete slot;
    return;
  }
  bool cached = false;
  {
    std::lock_guard lock(home->mutex);
    if (!home->closed && home->free_list.size() < home->max_free) {
      home->free_list.push_back(slot);
      cached = true;
    }
  }
  // Deleting the slot drops its `home` shared_ptr, which may destroy the
  // PoolShared itself — do it outside the lock.
  if (!cached) delete slot;
}

}  // namespace
}  // namespace internal

PooledBuffer::PooledBuffer(const PooledBuffer& other) : slot_(other.slot_) {
  internal::ref(slot_);
}

PooledBuffer& PooledBuffer::operator=(const PooledBuffer& other) {
  if (this == &other) return *this;
  internal::ref(other.slot_);
  internal::unref(slot_);
  slot_ = other.slot_;
  return *this;
}

PooledBuffer::PooledBuffer(PooledBuffer&& other) noexcept : slot_(other.slot_) {
  other.slot_ = nullptr;
}

PooledBuffer& PooledBuffer::operator=(PooledBuffer&& other) noexcept {
  if (this == &other) return *this;
  internal::unref(slot_);
  slot_ = other.slot_;
  other.slot_ = nullptr;
  return *this;
}

PooledBuffer::~PooledBuffer() { internal::unref(slot_); }

PooledBuffer PooledBuffer::heap(Bytes bytes) {
  auto* slot = new internal::BufferSlot;
  slot->buf = std::move(bytes);
  return PooledBuffer(slot);
}

ByteSpan PooledBuffer::span() const {
  return slot_ == nullptr ? ByteSpan{} : ByteSpan(slot_->buf);
}

std::size_t PooledBuffer::size() const {
  return slot_ == nullptr ? 0 : slot_->buf.size();
}

Bytes& PooledBuffer::mutable_bytes() { return slot_->buf; }

const Bytes& PooledBuffer::bytes() const { return slot_->buf; }

std::size_t PooledBuffer::use_count() const {
  return slot_ == nullptr ? 0
                          : slot_->refs.load(std::memory_order_relaxed);
}

void PooledBuffer::reset() {
  internal::unref(slot_);
  slot_ = nullptr;
}

BufferPool::BufferPool(std::size_t buffer_capacity, std::size_t max_free)
    : shared_(std::make_shared<internal::PoolShared>()) {
  shared_->buffer_capacity = buffer_capacity;
  shared_->max_free = max_free;
}

BufferPool::~BufferPool() {
  std::vector<internal::BufferSlot*> free_list;
  {
    std::lock_guard lock(shared_->mutex);
    shared_->closed = true;
    free_list.swap(shared_->free_list);
  }
  for (internal::BufferSlot* slot : free_list) delete slot;
}

PooledBuffer BufferPool::acquire(std::size_t size) {
  internal::BufferSlot* slot = nullptr;
  {
    std::lock_guard lock(shared_->mutex);
    if (!shared_->free_list.empty()) {
      slot = shared_->free_list.back();
      shared_->free_list.pop_back();
      shared_->reused += 1;
    } else {
      shared_->allocated += 1;
    }
  }
  if (slot == nullptr) {
    slot = new internal::BufferSlot;
    slot->home = shared_;
    slot->buf.reserve(std::max(shared_->buffer_capacity, size));
  } else {
    slot->refs.store(1, std::memory_order_relaxed);
  }
  // Same-size reuse (the steady state — everything is block-sized) leaves
  // the bytes untouched; growth value-initializes only the new tail.
  slot->buf.resize(size);
  return PooledBuffer(slot);
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard lock(shared_->mutex);
  return Stats{shared_->allocated, shared_->reused,
               shared_->free_list.size()};
}

}  // namespace prins
