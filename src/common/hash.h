// Fast non-cryptographic 64-bit hashing (FNV-1a and a mixing finalizer).
//
// Used for block fingerprints in verify/repair and as the hash of the LZ
// match finder.  Not suitable for adversarial inputs.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace prins {

/// 64-bit FNV-1a over `data`.
std::uint64_t fnv1a64(ByteSpan data, std::uint64_t seed = 0xcbf29ce484222325ull);

/// Strong avalanche finalizer (splitmix64 mix); good for hashing integers.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace prins
