#include "common/crc32c.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define PRINS_CRC32C_HW 1
#endif

namespace prins {
namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  std::array<std::array<std::uint32_t, 256>, 4> t{};
  constexpr Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFF];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFF];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFF];
    }
  }
};

constexpr Tables kTables{};

std::uint32_t crc32c_sw(ByteSpan data, std::uint32_t crc) {
  std::size_t i = 0;
  const auto& t = kTables.t;
  // slice-by-4 main loop
  for (; i + 4 <= data.size(); i += 4) {
    crc ^= static_cast<std::uint32_t>(data[i]) |
           (static_cast<std::uint32_t>(data[i + 1]) << 8) |
           (static_cast<std::uint32_t>(data[i + 2]) << 16) |
           (static_cast<std::uint32_t>(data[i + 3]) << 24);
    crc = t[3][crc & 0xFF] ^ t[2][(crc >> 8) & 0xFF] ^ t[1][(crc >> 16) & 0xFF] ^
          t[0][crc >> 24];
  }
  for (; i < data.size(); ++i) {
    crc = (crc >> 8) ^ t[0][(crc ^ data[i]) & 0xFF];
  }
  return crc;
}

#ifdef PRINS_CRC32C_HW
// SSE4.2 crc32 instruction, 8 bytes per issue.  Same polynomial, so the
// result is bit-identical to the table path (the test suite cross-checks).
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(ByteSpan data,
                                                          std::uint32_t crc) {
  const Byte* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    crc = static_cast<std::uint32_t>(_mm_crc32_u64(crc, word));
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = _mm_crc32_u8(crc, *p);
    ++p;
    --n;
  }
  return crc;
}
#endif

using CrcFn = std::uint32_t (*)(ByteSpan, std::uint32_t);

CrcFn pick_crc_fn() {
#ifdef PRINS_CRC32C_HW
  if (__builtin_cpu_supports("sse4.2")) return &crc32c_hw;
#endif
  return &crc32c_sw;
}

}  // namespace

std::uint32_t crc32c(ByteSpan data, std::uint32_t seed) {
  static const CrcFn fn = pick_crc_fn();
  return ~fn(data, ~seed);
}

}  // namespace prins
