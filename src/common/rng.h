// Deterministic pseudo-randomness for workloads and property tests.
//
// Every experiment in this repo is seeded, so runs are reproducible
// bit-for-bit.  Rng is xoshiro256** seeded via splitmix64; Zipf implements
// the skewed-access sampler used by the TPC-C/TPC-W workload generators
// (hot warehouses / hot items).
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace prins {

/// xoshiro256** PRNG.  Not thread-safe; give each thread its own instance.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform in [0, bound).  bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.  Requires lo <= hi.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// True with probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double next_exponential(double mean);

  /// Fill `out` with random bytes.
  void fill(MutByteSpan out);

  /// Fill `out` with printable ASCII (space..~), resembling text data.
  void fill_text(MutByteSpan out);

 private:
  std::uint64_t s_[4];
};

/// Zipf(1..n, theta) sampler via the Gray et al. transform; theta in (0,1).
/// theta -> 0 approaches uniform; TPC-style skew uses ~0.75-0.99.
class Zipf {
 public:
  Zipf(std::uint64_t n, double theta);

  /// A sample in [1, n].
  std::uint64_t sample(Rng& rng) const;

  std::uint64_t n() const { return n_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

/// TPC-C NURand(A, x, y): non-uniform random in [x, y].
std::uint64_t nurand(Rng& rng, std::uint64_t a, std::uint64_t x,
                     std::uint64_t y, std::uint64_t c = 42);

}  // namespace prins
