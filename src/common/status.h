// Status / Result<T>: the error-handling vocabulary of the PRINS codebase.
//
// Storage and network code fails in expected, recoverable ways (short reads,
// torn frames, peers going away); we represent those as values rather than
// exceptions so that every fallible call site is visibly checked.  Programmer
// errors (out-of-range LBA arithmetic inside the library itself) use
// assertions instead.
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace prins {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   // caller broke a documented precondition
  kOutOfRange,        // LBA / offset outside the device or buffer
  kCorruption,        // checksum mismatch, malformed frame, bad magic
  kDataCorruption,    // stored block fails its integrity check; needs repair,
                      // not retry (IntegrityDisk, RAID degraded reads)
  kIoError,           // underlying device or socket failed
  kNotFound,          // requested entity does not exist
  kAlreadyExists,     // create of an existing entity
  kUnavailable,       // peer gone, connection closed, retryable
  kTimeout,           // deadline elapsed; the operation may have succeeded
  kResourceExhausted, // queue full, out of space
  kFailedPrecondition,// operation not valid in current state
  kUnimplemented,     // feature intentionally absent
  kInternal,          // invariant violation that was caught at run time
};

/// Human-readable name of an error code ("OK", "CORRUPTION", ...).
std::string_view error_code_name(ErrorCode code);

/// A success-or-error value.  Cheap to copy on success (no allocation).
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk && "use Status::ok() for success");
  }

  static Status ok() { return Status{}; }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "CORRUPTION: bad frame magic" or "OK".
  std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status invalid_argument(std::string msg) {
  return {ErrorCode::kInvalidArgument, std::move(msg)};
}
inline Status out_of_range(std::string msg) {
  return {ErrorCode::kOutOfRange, std::move(msg)};
}
inline Status corruption(std::string msg) {
  return {ErrorCode::kCorruption, std::move(msg)};
}
inline Status corruption_error(std::string msg) {
  return {ErrorCode::kDataCorruption, std::move(msg)};
}
inline Status io_error(std::string msg) {
  return {ErrorCode::kIoError, std::move(msg)};
}
inline Status not_found(std::string msg) {
  return {ErrorCode::kNotFound, std::move(msg)};
}
inline Status already_exists(std::string msg) {
  return {ErrorCode::kAlreadyExists, std::move(msg)};
}
inline Status unavailable(std::string msg) {
  return {ErrorCode::kUnavailable, std::move(msg)};
}
inline Status timeout_error(std::string msg) {
  return {ErrorCode::kTimeout, std::move(msg)};
}
inline Status resource_exhausted(std::string msg) {
  return {ErrorCode::kResourceExhausted, std::move(msg)};
}
inline Status failed_precondition(std::string msg) {
  return {ErrorCode::kFailedPrecondition, std::move(msg)};
}
inline Status unimplemented(std::string msg) {
  return {ErrorCode::kUnimplemented, std::move(msg)};
}
inline Status internal_error(std::string msg) {
  return {ErrorCode::kInternal, std::move(msg)};
}

/// Either a T or an error Status.  Like absl::StatusOr / std::expected.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}          // NOLINT: implicit by design
  Result(Status status) : rep_(std::move(status)) {    // NOLINT
    assert(!std::get<Status>(rep_).is_ok() &&
           "Result<T> must not be constructed from an OK status");
  }

  bool is_ok() const { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const { return is_ok(); }

  /// Error status; OK when the result holds a value.
  Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(is_ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(is_ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(is_ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

/// Propagate an error status out of the current function.
#define PRINS_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::prins::Status prins_status_ = (expr);          \
    if (!prins_status_.is_ok()) return prins_status_; \
  } while (false)

/// Unwrap a Result into `lhs`, or propagate its error.
#define PRINS_ASSIGN_OR_RETURN(lhs, expr)             \
  PRINS_ASSIGN_OR_RETURN_IMPL_(                       \
      PRINS_CONCAT_(prins_result_, __LINE__), lhs, expr)
#define PRINS_CONCAT_INNER_(a, b) a##b
#define PRINS_CONCAT_(a, b) PRINS_CONCAT_INNER_(a, b)
#define PRINS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.is_ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

}  // namespace prins
