// Log-bucketed histogram for latency / size distributions in metrics.
//
// Buckets are powers-of-two style sub-decades (HdrHistogram-lite): values up
// to 2^62 with ~9% relative error per bucket.  Thread-compatible, not
// thread-safe; wrap in a mutex or shard per thread.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace prins {

class Histogram {
 public:
  Histogram();

  void record(std::uint64_t value);
  void record_n(std::uint64_t value, std::uint64_t count);

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const;

  /// Value at quantile q in [0,1] (e.g. 0.5, 0.99).  0 when empty.
  std::uint64_t quantile(double q) const;

  /// Merge another histogram into this one.
  void merge(const Histogram& other);

  void reset();

  /// "count=12 mean=3.4 p50=3 p99=9 max=12"
  std::string summary() const;

 private:
  static constexpr int kSubBits = 4;  // 16 sub-buckets per power of two
  static std::size_t bucket_index(std::uint64_t value);
  static std::uint64_t bucket_floor(std::size_t index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace prins
