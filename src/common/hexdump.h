// Debug helper: classic offset/hex/ascii dump of a byte span.
#pragma once

#include <string>

#include "common/bytes.h"

namespace prins {

/// Multi-line hexdump (16 bytes per row).  `max_bytes` truncates long spans.
std::string hexdump(ByteSpan data, std::size_t max_bytes = 256);

}  // namespace prins
