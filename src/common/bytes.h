// Byte-buffer vocabulary types shared by every PRINS module.
//
// All wire formats, block contents and parity buffers in this codebase are
// expressed in terms of these aliases so that interfaces carry their length
// (span) instead of decaying to (pointer, count) pairs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace prins {

using Byte = std::uint8_t;
using Bytes = std::vector<Byte>;
using ByteSpan = std::span<const Byte>;
using MutByteSpan = std::span<Byte>;

/// View a string's storage as bytes (no copy).
inline ByteSpan as_bytes(std::string_view s) {
  return {reinterpret_cast<const Byte*>(s.data()), s.size()};
}

/// Copy a span into an owned buffer.
inline Bytes to_bytes(ByteSpan s) { return Bytes(s.begin(), s.end()); }

/// Append `src` to `dst`.
inline void append(Bytes& dst, ByteSpan src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// True iff every byte in `s` is zero.
inline bool all_zero(ByteSpan s) {
  for (Byte b : s) {
    if (b != 0) return false;
  }
  return true;
}

}  // namespace prins
