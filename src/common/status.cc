#include "common/status.h"

namespace prins {

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kCorruption: return "CORRUPTION";
    case ErrorCode::kDataCorruption: return "DATA_CORRUPTION";
    case ErrorCode::kIoError: return "IO_ERROR";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kUnimplemented: return "UNIMPLEMENTED";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out{error_code_name(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace prins
