#include "common/hexdump.h"

#include <cctype>
#include <cstdio>

namespace prins {

std::string hexdump(ByteSpan data, std::size_t max_bytes) {
  std::string out;
  const std::size_t n = data.size() < max_bytes ? data.size() : max_bytes;
  char line[128];
  for (std::size_t off = 0; off < n; off += 16) {
    int pos = std::snprintf(line, sizeof line, "%08zx  ", off);
    for (std::size_t i = 0; i < 16; ++i) {
      if (off + i < n) {
        pos += std::snprintf(line + pos, sizeof line - pos, "%02x ",
                             data[off + i]);
      } else {
        pos += std::snprintf(line + pos, sizeof line - pos, "   ");
      }
      if (i == 7) line[pos - 1] = ' ', line[pos] = ' ', line[++pos] = '\0';
    }
    pos += std::snprintf(line + pos, sizeof line - pos, " |");
    for (std::size_t i = 0; i < 16 && off + i < n; ++i) {
      Byte b = data[off + i];
      line[pos++] = std::isprint(b) ? static_cast<char>(b) : '.';
    }
    line[pos++] = '|';
    line[pos] = '\0';
    out += line;
    out += '\n';
  }
  if (n < data.size()) {
    out += "... (" + std::to_string(data.size() - n) + " more bytes)\n";
  }
  return out;
}

}  // namespace prins
