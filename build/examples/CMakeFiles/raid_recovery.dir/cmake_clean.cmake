file(REMOVE_RECURSE
  "CMakeFiles/raid_recovery.dir/raid_recovery.cpp.o"
  "CMakeFiles/raid_recovery.dir/raid_recovery.cpp.o.d"
  "raid_recovery"
  "raid_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raid_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
