# Empty dependencies file for raid_recovery.
# This may be replaced when dependencies are built.
