# Empty dependencies file for wan_planner.
# This may be replaced when dependencies are built.
