file(REMOVE_RECURSE
  "CMakeFiles/wan_planner.dir/wan_planner.cpp.o"
  "CMakeFiles/wan_planner.dir/wan_planner.cpp.o.d"
  "wan_planner"
  "wan_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
