file(REMOVE_RECURSE
  "CMakeFiles/remote_mirroring.dir/remote_mirroring.cpp.o"
  "CMakeFiles/remote_mirroring.dir/remote_mirroring.cpp.o.d"
  "remote_mirroring"
  "remote_mirroring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_mirroring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
