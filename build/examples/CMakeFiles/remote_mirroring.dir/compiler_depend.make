# Empty compiler generated dependencies file for remote_mirroring.
# This may be replaced when dependencies are built.
