# Empty compiler generated dependencies file for point_in_time_recovery.
# This may be replaced when dependencies are built.
