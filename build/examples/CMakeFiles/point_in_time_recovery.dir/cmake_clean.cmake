file(REMOVE_RECURSE
  "CMakeFiles/point_in_time_recovery.dir/point_in_time_recovery.cpp.o"
  "CMakeFiles/point_in_time_recovery.dir/point_in_time_recovery.cpp.o.d"
  "point_in_time_recovery"
  "point_in_time_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/point_in_time_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
