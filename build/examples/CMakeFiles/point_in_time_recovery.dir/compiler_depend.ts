# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for point_in_time_recovery.
