file(REMOVE_RECURSE
  "CMakeFiles/database_replication.dir/database_replication.cpp.o"
  "CMakeFiles/database_replication.dir/database_replication.cpp.o.d"
  "database_replication"
  "database_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
