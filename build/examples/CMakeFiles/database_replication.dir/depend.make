# Empty dependencies file for database_replication.
# This may be replaced when dependencies are built.
