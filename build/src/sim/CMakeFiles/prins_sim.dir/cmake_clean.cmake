file(REMOVE_RECURSE
  "CMakeFiles/prins_sim.dir/cluster.cc.o"
  "CMakeFiles/prins_sim.dir/cluster.cc.o.d"
  "CMakeFiles/prins_sim.dir/experiment.cc.o"
  "CMakeFiles/prins_sim.dir/experiment.cc.o.d"
  "libprins_sim.a"
  "libprins_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prins_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
