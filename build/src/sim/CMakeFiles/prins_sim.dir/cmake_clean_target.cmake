file(REMOVE_RECURSE
  "libprins_sim.a"
)
