# Empty dependencies file for prins_sim.
# This may be replaced when dependencies are built.
