# Empty dependencies file for prins_parity.
# This may be replaced when dependencies are built.
