file(REMOVE_RECURSE
  "libprins_parity.a"
)
