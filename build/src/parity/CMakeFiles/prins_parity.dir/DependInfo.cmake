
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parity/gf256.cc" "src/parity/CMakeFiles/prins_parity.dir/gf256.cc.o" "gcc" "src/parity/CMakeFiles/prins_parity.dir/gf256.cc.o.d"
  "/root/repo/src/parity/stripe.cc" "src/parity/CMakeFiles/prins_parity.dir/stripe.cc.o" "gcc" "src/parity/CMakeFiles/prins_parity.dir/stripe.cc.o.d"
  "/root/repo/src/parity/xor.cc" "src/parity/CMakeFiles/prins_parity.dir/xor.cc.o" "gcc" "src/parity/CMakeFiles/prins_parity.dir/xor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prins_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
