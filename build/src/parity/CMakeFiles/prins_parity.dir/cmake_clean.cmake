file(REMOVE_RECURSE
  "CMakeFiles/prins_parity.dir/gf256.cc.o"
  "CMakeFiles/prins_parity.dir/gf256.cc.o.d"
  "CMakeFiles/prins_parity.dir/stripe.cc.o"
  "CMakeFiles/prins_parity.dir/stripe.cc.o.d"
  "CMakeFiles/prins_parity.dir/xor.cc.o"
  "CMakeFiles/prins_parity.dir/xor.cc.o.d"
  "libprins_parity.a"
  "libprins_parity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prins_parity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
