file(REMOVE_RECURSE
  "CMakeFiles/prins_workload.dir/byte_volume.cc.o"
  "CMakeFiles/prins_workload.dir/byte_volume.cc.o.d"
  "CMakeFiles/prins_workload.dir/db_page.cc.o"
  "CMakeFiles/prins_workload.dir/db_page.cc.o.d"
  "CMakeFiles/prins_workload.dir/fsmicro.cc.o"
  "CMakeFiles/prins_workload.dir/fsmicro.cc.o.d"
  "CMakeFiles/prins_workload.dir/text.cc.o"
  "CMakeFiles/prins_workload.dir/text.cc.o.d"
  "CMakeFiles/prins_workload.dir/tpcc.cc.o"
  "CMakeFiles/prins_workload.dir/tpcc.cc.o.d"
  "CMakeFiles/prins_workload.dir/tpcw.cc.o"
  "CMakeFiles/prins_workload.dir/tpcw.cc.o.d"
  "CMakeFiles/prins_workload.dir/trace.cc.o"
  "CMakeFiles/prins_workload.dir/trace.cc.o.d"
  "libprins_workload.a"
  "libprins_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prins_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
