# Empty compiler generated dependencies file for prins_workload.
# This may be replaced when dependencies are built.
