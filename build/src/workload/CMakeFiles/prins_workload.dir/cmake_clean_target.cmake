file(REMOVE_RECURSE
  "libprins_workload.a"
)
