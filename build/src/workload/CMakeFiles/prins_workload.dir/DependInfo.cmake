
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/byte_volume.cc" "src/workload/CMakeFiles/prins_workload.dir/byte_volume.cc.o" "gcc" "src/workload/CMakeFiles/prins_workload.dir/byte_volume.cc.o.d"
  "/root/repo/src/workload/db_page.cc" "src/workload/CMakeFiles/prins_workload.dir/db_page.cc.o" "gcc" "src/workload/CMakeFiles/prins_workload.dir/db_page.cc.o.d"
  "/root/repo/src/workload/fsmicro.cc" "src/workload/CMakeFiles/prins_workload.dir/fsmicro.cc.o" "gcc" "src/workload/CMakeFiles/prins_workload.dir/fsmicro.cc.o.d"
  "/root/repo/src/workload/text.cc" "src/workload/CMakeFiles/prins_workload.dir/text.cc.o" "gcc" "src/workload/CMakeFiles/prins_workload.dir/text.cc.o.d"
  "/root/repo/src/workload/tpcc.cc" "src/workload/CMakeFiles/prins_workload.dir/tpcc.cc.o" "gcc" "src/workload/CMakeFiles/prins_workload.dir/tpcc.cc.o.d"
  "/root/repo/src/workload/tpcw.cc" "src/workload/CMakeFiles/prins_workload.dir/tpcw.cc.o" "gcc" "src/workload/CMakeFiles/prins_workload.dir/tpcw.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/prins_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/prins_workload.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prins_common.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/prins_block.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
