# Empty dependencies file for prins_common.
# This may be replaced when dependencies are built.
