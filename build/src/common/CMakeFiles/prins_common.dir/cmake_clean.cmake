file(REMOVE_RECURSE
  "CMakeFiles/prins_common.dir/crc32c.cc.o"
  "CMakeFiles/prins_common.dir/crc32c.cc.o.d"
  "CMakeFiles/prins_common.dir/hash.cc.o"
  "CMakeFiles/prins_common.dir/hash.cc.o.d"
  "CMakeFiles/prins_common.dir/hexdump.cc.o"
  "CMakeFiles/prins_common.dir/hexdump.cc.o.d"
  "CMakeFiles/prins_common.dir/histogram.cc.o"
  "CMakeFiles/prins_common.dir/histogram.cc.o.d"
  "CMakeFiles/prins_common.dir/logging.cc.o"
  "CMakeFiles/prins_common.dir/logging.cc.o.d"
  "CMakeFiles/prins_common.dir/rng.cc.o"
  "CMakeFiles/prins_common.dir/rng.cc.o.d"
  "CMakeFiles/prins_common.dir/status.cc.o"
  "CMakeFiles/prins_common.dir/status.cc.o.d"
  "CMakeFiles/prins_common.dir/varint.cc.o"
  "CMakeFiles/prins_common.dir/varint.cc.o.d"
  "libprins_common.a"
  "libprins_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prins_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
