file(REMOVE_RECURSE
  "libprins_common.a"
)
