file(REMOVE_RECURSE
  "CMakeFiles/prins_queueing.dir/des.cc.o"
  "CMakeFiles/prins_queueing.dir/des.cc.o.d"
  "CMakeFiles/prins_queueing.dir/mm1.cc.o"
  "CMakeFiles/prins_queueing.dir/mm1.cc.o.d"
  "CMakeFiles/prins_queueing.dir/mva.cc.o"
  "CMakeFiles/prins_queueing.dir/mva.cc.o.d"
  "CMakeFiles/prins_queueing.dir/wan.cc.o"
  "CMakeFiles/prins_queueing.dir/wan.cc.o.d"
  "libprins_queueing.a"
  "libprins_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prins_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
