
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/queueing/des.cc" "src/queueing/CMakeFiles/prins_queueing.dir/des.cc.o" "gcc" "src/queueing/CMakeFiles/prins_queueing.dir/des.cc.o.d"
  "/root/repo/src/queueing/mm1.cc" "src/queueing/CMakeFiles/prins_queueing.dir/mm1.cc.o" "gcc" "src/queueing/CMakeFiles/prins_queueing.dir/mm1.cc.o.d"
  "/root/repo/src/queueing/mva.cc" "src/queueing/CMakeFiles/prins_queueing.dir/mva.cc.o" "gcc" "src/queueing/CMakeFiles/prins_queueing.dir/mva.cc.o.d"
  "/root/repo/src/queueing/wan.cc" "src/queueing/CMakeFiles/prins_queueing.dir/wan.cc.o" "gcc" "src/queueing/CMakeFiles/prins_queueing.dir/wan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prins_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/prins_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
