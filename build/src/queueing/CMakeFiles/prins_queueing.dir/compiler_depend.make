# Empty compiler generated dependencies file for prins_queueing.
# This may be replaced when dependencies are built.
