file(REMOVE_RECURSE
  "libprins_queueing.a"
)
