# Empty dependencies file for prins_core.
# This may be replaced when dependencies are built.
