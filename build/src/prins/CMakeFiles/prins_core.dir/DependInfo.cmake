
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prins/engine.cc" "src/prins/CMakeFiles/prins_core.dir/engine.cc.o" "gcc" "src/prins/CMakeFiles/prins_core.dir/engine.cc.o.d"
  "/root/repo/src/prins/journal.cc" "src/prins/CMakeFiles/prins_core.dir/journal.cc.o" "gcc" "src/prins/CMakeFiles/prins_core.dir/journal.cc.o.d"
  "/root/repo/src/prins/message.cc" "src/prins/CMakeFiles/prins_core.dir/message.cc.o" "gcc" "src/prins/CMakeFiles/prins_core.dir/message.cc.o.d"
  "/root/repo/src/prins/replica.cc" "src/prins/CMakeFiles/prins_core.dir/replica.cc.o" "gcc" "src/prins/CMakeFiles/prins_core.dir/replica.cc.o.d"
  "/root/repo/src/prins/trap_log.cc" "src/prins/CMakeFiles/prins_core.dir/trap_log.cc.o" "gcc" "src/prins/CMakeFiles/prins_core.dir/trap_log.cc.o.d"
  "/root/repo/src/prins/verify.cc" "src/prins/CMakeFiles/prins_core.dir/verify.cc.o" "gcc" "src/prins/CMakeFiles/prins_core.dir/verify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prins_common.dir/DependInfo.cmake"
  "/root/repo/build/src/parity/CMakeFiles/prins_parity.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/prins_block.dir/DependInfo.cmake"
  "/root/repo/build/src/raid/CMakeFiles/prins_raid.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/prins_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/prins_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
