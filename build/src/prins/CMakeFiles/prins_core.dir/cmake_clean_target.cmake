file(REMOVE_RECURSE
  "libprins_core.a"
)
