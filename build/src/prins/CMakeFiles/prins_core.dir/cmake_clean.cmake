file(REMOVE_RECURSE
  "CMakeFiles/prins_core.dir/engine.cc.o"
  "CMakeFiles/prins_core.dir/engine.cc.o.d"
  "CMakeFiles/prins_core.dir/journal.cc.o"
  "CMakeFiles/prins_core.dir/journal.cc.o.d"
  "CMakeFiles/prins_core.dir/message.cc.o"
  "CMakeFiles/prins_core.dir/message.cc.o.d"
  "CMakeFiles/prins_core.dir/replica.cc.o"
  "CMakeFiles/prins_core.dir/replica.cc.o.d"
  "CMakeFiles/prins_core.dir/trap_log.cc.o"
  "CMakeFiles/prins_core.dir/trap_log.cc.o.d"
  "CMakeFiles/prins_core.dir/verify.cc.o"
  "CMakeFiles/prins_core.dir/verify.cc.o.d"
  "libprins_core.a"
  "libprins_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prins_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
