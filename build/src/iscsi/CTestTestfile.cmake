# CMake generated Testfile for 
# Source directory: /root/repo/src/iscsi
# Build directory: /root/repo/build/src/iscsi
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
