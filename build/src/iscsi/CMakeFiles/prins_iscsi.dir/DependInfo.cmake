
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iscsi/initiator.cc" "src/iscsi/CMakeFiles/prins_iscsi.dir/initiator.cc.o" "gcc" "src/iscsi/CMakeFiles/prins_iscsi.dir/initiator.cc.o.d"
  "/root/repo/src/iscsi/pdu.cc" "src/iscsi/CMakeFiles/prins_iscsi.dir/pdu.cc.o" "gcc" "src/iscsi/CMakeFiles/prins_iscsi.dir/pdu.cc.o.d"
  "/root/repo/src/iscsi/scsi.cc" "src/iscsi/CMakeFiles/prins_iscsi.dir/scsi.cc.o" "gcc" "src/iscsi/CMakeFiles/prins_iscsi.dir/scsi.cc.o.d"
  "/root/repo/src/iscsi/target.cc" "src/iscsi/CMakeFiles/prins_iscsi.dir/target.cc.o" "gcc" "src/iscsi/CMakeFiles/prins_iscsi.dir/target.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prins_common.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/prins_block.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/prins_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
