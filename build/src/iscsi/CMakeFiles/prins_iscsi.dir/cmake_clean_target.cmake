file(REMOVE_RECURSE
  "libprins_iscsi.a"
)
