file(REMOVE_RECURSE
  "CMakeFiles/prins_iscsi.dir/initiator.cc.o"
  "CMakeFiles/prins_iscsi.dir/initiator.cc.o.d"
  "CMakeFiles/prins_iscsi.dir/pdu.cc.o"
  "CMakeFiles/prins_iscsi.dir/pdu.cc.o.d"
  "CMakeFiles/prins_iscsi.dir/scsi.cc.o"
  "CMakeFiles/prins_iscsi.dir/scsi.cc.o.d"
  "CMakeFiles/prins_iscsi.dir/target.cc.o"
  "CMakeFiles/prins_iscsi.dir/target.cc.o.d"
  "libprins_iscsi.a"
  "libprins_iscsi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prins_iscsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
