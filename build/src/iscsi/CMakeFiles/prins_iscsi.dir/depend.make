# Empty dependencies file for prins_iscsi.
# This may be replaced when dependencies are built.
