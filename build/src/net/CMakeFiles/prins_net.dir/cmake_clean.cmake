file(REMOVE_RECURSE
  "CMakeFiles/prins_net.dir/inproc.cc.o"
  "CMakeFiles/prins_net.dir/inproc.cc.o.d"
  "CMakeFiles/prins_net.dir/latent.cc.o"
  "CMakeFiles/prins_net.dir/latent.cc.o.d"
  "CMakeFiles/prins_net.dir/tcp.cc.o"
  "CMakeFiles/prins_net.dir/tcp.cc.o.d"
  "CMakeFiles/prins_net.dir/traffic_meter.cc.o"
  "CMakeFiles/prins_net.dir/traffic_meter.cc.o.d"
  "libprins_net.a"
  "libprins_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prins_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
