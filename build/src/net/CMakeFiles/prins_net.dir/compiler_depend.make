# Empty compiler generated dependencies file for prins_net.
# This may be replaced when dependencies are built.
