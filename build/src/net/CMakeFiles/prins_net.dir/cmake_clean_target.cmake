file(REMOVE_RECURSE
  "libprins_net.a"
)
