
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/block/cached_disk.cc" "src/block/CMakeFiles/prins_block.dir/cached_disk.cc.o" "gcc" "src/block/CMakeFiles/prins_block.dir/cached_disk.cc.o.d"
  "/root/repo/src/block/faulty_disk.cc" "src/block/CMakeFiles/prins_block.dir/faulty_disk.cc.o" "gcc" "src/block/CMakeFiles/prins_block.dir/faulty_disk.cc.o.d"
  "/root/repo/src/block/file_disk.cc" "src/block/CMakeFiles/prins_block.dir/file_disk.cc.o" "gcc" "src/block/CMakeFiles/prins_block.dir/file_disk.cc.o.d"
  "/root/repo/src/block/mem_disk.cc" "src/block/CMakeFiles/prins_block.dir/mem_disk.cc.o" "gcc" "src/block/CMakeFiles/prins_block.dir/mem_disk.cc.o.d"
  "/root/repo/src/block/snapshot_disk.cc" "src/block/CMakeFiles/prins_block.dir/snapshot_disk.cc.o" "gcc" "src/block/CMakeFiles/prins_block.dir/snapshot_disk.cc.o.d"
  "/root/repo/src/block/stats_disk.cc" "src/block/CMakeFiles/prins_block.dir/stats_disk.cc.o" "gcc" "src/block/CMakeFiles/prins_block.dir/stats_disk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prins_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
