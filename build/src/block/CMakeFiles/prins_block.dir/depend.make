# Empty dependencies file for prins_block.
# This may be replaced when dependencies are built.
