file(REMOVE_RECURSE
  "CMakeFiles/prins_block.dir/cached_disk.cc.o"
  "CMakeFiles/prins_block.dir/cached_disk.cc.o.d"
  "CMakeFiles/prins_block.dir/faulty_disk.cc.o"
  "CMakeFiles/prins_block.dir/faulty_disk.cc.o.d"
  "CMakeFiles/prins_block.dir/file_disk.cc.o"
  "CMakeFiles/prins_block.dir/file_disk.cc.o.d"
  "CMakeFiles/prins_block.dir/mem_disk.cc.o"
  "CMakeFiles/prins_block.dir/mem_disk.cc.o.d"
  "CMakeFiles/prins_block.dir/snapshot_disk.cc.o"
  "CMakeFiles/prins_block.dir/snapshot_disk.cc.o.d"
  "CMakeFiles/prins_block.dir/stats_disk.cc.o"
  "CMakeFiles/prins_block.dir/stats_disk.cc.o.d"
  "libprins_block.a"
  "libprins_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prins_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
