file(REMOVE_RECURSE
  "libprins_block.a"
)
