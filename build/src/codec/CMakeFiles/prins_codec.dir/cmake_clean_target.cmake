file(REMOVE_RECURSE
  "libprins_codec.a"
)
