# Empty compiler generated dependencies file for prins_codec.
# This may be replaced when dependencies are built.
