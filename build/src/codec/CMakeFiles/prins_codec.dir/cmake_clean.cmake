file(REMOVE_RECURSE
  "CMakeFiles/prins_codec.dir/codec.cc.o"
  "CMakeFiles/prins_codec.dir/codec.cc.o.d"
  "CMakeFiles/prins_codec.dir/lz.cc.o"
  "CMakeFiles/prins_codec.dir/lz.cc.o.d"
  "CMakeFiles/prins_codec.dir/zero_rle.cc.o"
  "CMakeFiles/prins_codec.dir/zero_rle.cc.o.d"
  "libprins_codec.a"
  "libprins_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prins_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
