
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/codec.cc" "src/codec/CMakeFiles/prins_codec.dir/codec.cc.o" "gcc" "src/codec/CMakeFiles/prins_codec.dir/codec.cc.o.d"
  "/root/repo/src/codec/lz.cc" "src/codec/CMakeFiles/prins_codec.dir/lz.cc.o" "gcc" "src/codec/CMakeFiles/prins_codec.dir/lz.cc.o.d"
  "/root/repo/src/codec/zero_rle.cc" "src/codec/CMakeFiles/prins_codec.dir/zero_rle.cc.o" "gcc" "src/codec/CMakeFiles/prins_codec.dir/zero_rle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prins_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
