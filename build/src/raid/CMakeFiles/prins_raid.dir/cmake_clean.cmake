file(REMOVE_RECURSE
  "CMakeFiles/prins_raid.dir/raid6_array.cc.o"
  "CMakeFiles/prins_raid.dir/raid6_array.cc.o.d"
  "CMakeFiles/prins_raid.dir/raid_array.cc.o"
  "CMakeFiles/prins_raid.dir/raid_array.cc.o.d"
  "libprins_raid.a"
  "libprins_raid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prins_raid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
