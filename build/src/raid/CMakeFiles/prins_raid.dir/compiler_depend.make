# Empty compiler generated dependencies file for prins_raid.
# This may be replaced when dependencies are built.
