file(REMOVE_RECURSE
  "libprins_raid.a"
)
