file(REMOVE_RECURSE
  "CMakeFiles/fig10_router_mm1.dir/fig10_router_mm1.cc.o"
  "CMakeFiles/fig10_router_mm1.dir/fig10_router_mm1.cc.o.d"
  "fig10_router_mm1"
  "fig10_router_mm1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_router_mm1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
