# Empty dependencies file for fig10_router_mm1.
# This may be replaced when dependencies are built.
