file(REMOVE_RECURSE
  "CMakeFiles/fig5_tpcc_postgres.dir/fig5_tpcc_postgres.cc.o"
  "CMakeFiles/fig5_tpcc_postgres.dir/fig5_tpcc_postgres.cc.o.d"
  "fig5_tpcc_postgres"
  "fig5_tpcc_postgres.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_tpcc_postgres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
