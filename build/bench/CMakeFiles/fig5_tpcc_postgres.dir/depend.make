# Empty dependencies file for fig5_tpcc_postgres.
# This may be replaced when dependencies are built.
