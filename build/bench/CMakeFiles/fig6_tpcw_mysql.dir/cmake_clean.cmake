file(REMOVE_RECURSE
  "CMakeFiles/fig6_tpcw_mysql.dir/fig6_tpcw_mysql.cc.o"
  "CMakeFiles/fig6_tpcw_mysql.dir/fig6_tpcw_mysql.cc.o.d"
  "fig6_tpcw_mysql"
  "fig6_tpcw_mysql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_tpcw_mysql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
