# Empty compiler generated dependencies file for fig6_tpcw_mysql.
# This may be replaced when dependencies are built.
