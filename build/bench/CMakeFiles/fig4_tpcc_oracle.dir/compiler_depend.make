# Empty compiler generated dependencies file for fig4_tpcc_oracle.
# This may be replaced when dependencies are built.
