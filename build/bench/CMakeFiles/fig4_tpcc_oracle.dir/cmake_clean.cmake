file(REMOVE_RECURSE
  "CMakeFiles/fig4_tpcc_oracle.dir/fig4_tpcc_oracle.cc.o"
  "CMakeFiles/fig4_tpcc_oracle.dir/fig4_tpcc_oracle.cc.o.d"
  "fig4_tpcc_oracle"
  "fig4_tpcc_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_tpcc_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
