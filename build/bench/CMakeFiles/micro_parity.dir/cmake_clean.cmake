file(REMOVE_RECURSE
  "CMakeFiles/micro_parity.dir/micro_parity.cc.o"
  "CMakeFiles/micro_parity.dir/micro_parity.cc.o.d"
  "micro_parity"
  "micro_parity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_parity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
