
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_parity.cc" "bench/CMakeFiles/micro_parity.dir/micro_parity.cc.o" "gcc" "bench/CMakeFiles/micro_parity.dir/micro_parity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/prins_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/prins_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/parity/CMakeFiles/prins_parity.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prins_common.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/prins_block.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
