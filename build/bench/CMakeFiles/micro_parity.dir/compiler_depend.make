# Empty compiler generated dependencies file for micro_parity.
# This may be replaced when dependencies are built.
