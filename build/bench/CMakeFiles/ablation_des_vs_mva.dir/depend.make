# Empty dependencies file for ablation_des_vs_mva.
# This may be replaced when dependencies are built.
