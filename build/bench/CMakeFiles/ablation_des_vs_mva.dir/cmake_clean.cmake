file(REMOVE_RECURSE
  "CMakeFiles/ablation_des_vs_mva.dir/ablation_des_vs_mva.cc.o"
  "CMakeFiles/ablation_des_vs_mva.dir/ablation_des_vs_mva.cc.o.d"
  "ablation_des_vs_mva"
  "ablation_des_vs_mva.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_des_vs_mva.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
