# Empty dependencies file for fig8_mva_t1.
# This may be replaced when dependencies are built.
