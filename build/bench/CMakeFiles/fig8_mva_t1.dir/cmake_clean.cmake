file(REMOVE_RECURSE
  "CMakeFiles/fig8_mva_t1.dir/fig8_mva_t1.cc.o"
  "CMakeFiles/fig8_mva_t1.dir/fig8_mva_t1.cc.o.d"
  "fig8_mva_t1"
  "fig8_mva_t1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_mva_t1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
