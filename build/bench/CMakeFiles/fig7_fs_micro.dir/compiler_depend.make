# Empty compiler generated dependencies file for fig7_fs_micro.
# This may be replaced when dependencies are built.
