file(REMOVE_RECURSE
  "CMakeFiles/fig7_fs_micro.dir/fig7_fs_micro.cc.o"
  "CMakeFiles/fig7_fs_micro.dir/fig7_fs_micro.cc.o.d"
  "fig7_fs_micro"
  "fig7_fs_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_fs_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
