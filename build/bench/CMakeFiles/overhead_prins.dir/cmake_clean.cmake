file(REMOVE_RECURSE
  "CMakeFiles/overhead_prins.dir/overhead_prins.cc.o"
  "CMakeFiles/overhead_prins.dir/overhead_prins.cc.o.d"
  "overhead_prins"
  "overhead_prins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_prins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
