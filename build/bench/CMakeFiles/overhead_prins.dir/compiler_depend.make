# Empty compiler generated dependencies file for overhead_prins.
# This may be replaced when dependencies are built.
