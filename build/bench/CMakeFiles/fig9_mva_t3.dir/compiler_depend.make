# Empty compiler generated dependencies file for fig9_mva_t3.
# This may be replaced when dependencies are built.
