file(REMOVE_RECURSE
  "CMakeFiles/fig9_mva_t3.dir/fig9_mva_t3.cc.o"
  "CMakeFiles/fig9_mva_t3.dir/fig9_mva_t3.cc.o.d"
  "fig9_mva_t3"
  "fig9_mva_t3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_mva_t3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
