
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_empirical.cc" "bench/CMakeFiles/fig8_empirical.dir/fig8_empirical.cc.o" "gcc" "bench/CMakeFiles/fig8_empirical.dir/fig8_empirical.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/prins_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/prins/CMakeFiles/prins_core.dir/DependInfo.cmake"
  "/root/repo/build/src/iscsi/CMakeFiles/prins_iscsi.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/prins_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/prins_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/raid/CMakeFiles/prins_raid.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/prins_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/prins_net.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/prins_block.dir/DependInfo.cmake"
  "/root/repo/build/src/parity/CMakeFiles/prins_parity.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prins_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
