# Empty dependencies file for fig8_empirical.
# This may be replaced when dependencies are built.
