file(REMOVE_RECURSE
  "CMakeFiles/fig8_empirical.dir/fig8_empirical.cc.o"
  "CMakeFiles/fig8_empirical.dir/fig8_empirical.cc.o.d"
  "fig8_empirical"
  "fig8_empirical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_empirical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
