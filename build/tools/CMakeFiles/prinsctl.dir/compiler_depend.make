# Empty compiler generated dependencies file for prinsctl.
# This may be replaced when dependencies are built.
