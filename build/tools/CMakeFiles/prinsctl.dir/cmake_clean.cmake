file(REMOVE_RECURSE
  "CMakeFiles/prinsctl.dir/prinsctl.cc.o"
  "CMakeFiles/prinsctl.dir/prinsctl.cc.o.d"
  "prinsctl"
  "prinsctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prinsctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
