# Empty dependencies file for prinsctl.
# This may be replaced when dependencies are built.
