// Quickstart: replicate block writes with PRINS in ~60 lines.
//
// Sets up a primary device wrapped in a PrinsEngine and one replica node
// joined by an in-process link, performs some partial-block updates, and
// shows how little data crossed the "network" compared to the blocks
// written — then proves the replica is byte-identical.
#include <cstdio>
#include <memory>
#include <thread>

#include "block/mem_disk.h"
#include "common/rng.h"
#include "net/inproc.h"
#include "net/traffic_meter.h"
#include "prins/engine.h"
#include "prins/replica.h"

using namespace prins;

int main() {
  constexpr std::uint32_t kBlockSize = 8192;
  constexpr std::uint64_t kBlocks = 256;

  // 1. Primary node: a local device decorated with the PRINS engine.
  auto primary_disk = std::make_shared<MemDisk>(kBlocks, kBlockSize);
  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  auto engine_ptr = std::make_unique<PrinsEngine>(primary_disk, config);
  PrinsEngine& engine = *engine_ptr;

  // 2. Replica node: its own device, served by a ReplicaEngine.
  auto replica_disk = std::make_shared<MemDisk>(kBlocks, kBlockSize);
  auto replica = std::make_shared<ReplicaEngine>(replica_disk);
  auto [primary_end, replica_end] = make_inproc_pair();
  auto meter = std::make_unique<TrafficMeter>(std::move(primary_end));
  TrafficMeter* traffic = meter.get();
  engine.add_replica(std::move(meter));
  std::thread server(
      [replica, link = std::shared_ptr<Transport>(std::move(replica_end))] {
        (void)replica->serve(*link);
      });

  // 3. Write through the engine like any block device.  Each write here
  //    changes ~5% of an 8 KB block — the pattern real applications show.
  Rng rng(42);
  Bytes block(kBlockSize);
  std::uint64_t bytes_written = 0;
  for (int i = 0; i < 500; ++i) {
    const Lba lba = rng.next_below(kBlocks);
    // Read-modify-write: update 400 bytes of the block's current contents.
    if (Status s = engine.read(lba, block); !s.is_ok()) {
      std::fprintf(stderr, "read failed: %s\n", s.to_string().c_str());
      return 1;
    }
    rng.fill(MutByteSpan(block).subspan(rng.next_below(kBlockSize - 400), 400));
    if (Status s = engine.write(lba, block); !s.is_ok()) {
      std::fprintf(stderr, "write failed: %s\n", s.to_string().c_str());
      return 1;
    }
    bytes_written += kBlockSize;
  }
  if (Status s = engine.drain(); !s.is_ok()) {
    std::fprintf(stderr, "replication failed: %s\n", s.to_string().c_str());
    return 1;
  }

  // 4. Report: application bytes vs bytes on the wire.
  const TrafficStats sent = traffic->sent();
  std::printf("application wrote:   %8.1f KB in %d block writes\n",
              bytes_written / 1024.0, 500);
  std::printf("PRINS replicated:    %8.1f KB over the wire (%.1fx less)\n",
              sent.payload_bytes / 1024.0,
              static_cast<double>(bytes_written) / sent.payload_bytes);

  // 5. Verify the replica converged to exactly the primary's contents.
  auto repaired = engine.verify_and_repair(0, kBlocks);
  if (!repaired.is_ok()) {
    std::fprintf(stderr, "verify failed: %s\n",
                 repaired.status().to_string().c_str());
    return 1;
  }
  std::printf("verify/repair found %llu divergent blocks (expected 0)\n",
              static_cast<unsigned long long>(*repaired));

  const bool clean = *repaired == 0;
  engine_ptr.reset();  // closes the replica link...
  server.join();       // ...which ends the replica's serve() loop
  return clean ? 0 : 1;
}
