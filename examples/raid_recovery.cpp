// RAID-6 failure and recovery underneath PRINS replication.
//
// The paper's premise is that the primary already runs a parity-protected
// array; this example shows the whole reliability stack working together:
//
//   1. a RAID-6 array (dual parity, survives any two member failures)
//      serves as the primary device; the PRINS engine taps its
//      small-write parity for free;
//   2. two member disks die; the array keeps serving every block
//      (degraded reads reconstruct via P and Q) and replication continues;
//   3. the members are replaced and rebuilt from the survivors;
//   4. a scrub proves the stripes are consistent again, and the remote
//      replica was byte-identical throughout.
#include <cstdio>
#include <memory>
#include <thread>

#include "block/faulty_disk.h"
#include "block/mem_disk.h"
#include "common/rng.h"
#include "net/inproc.h"
#include "prins/engine.h"
#include "prins/replica.h"
#include "raid/raid6_array.h"

using namespace prins;

namespace {

Status run() {
  constexpr std::uint32_t kBlockSize = 4096;
  constexpr std::uint64_t kMemberBlocks = 128;
  constexpr unsigned kMembers = 6;

  // RAID-6 over six members, each wrapped for failure injection.
  std::vector<std::shared_ptr<MemDisk>> disks;
  std::vector<std::shared_ptr<FaultyDisk>> faulty;
  std::vector<std::shared_ptr<BlockDevice>> members;
  for (unsigned i = 0; i < kMembers; ++i) {
    disks.push_back(std::make_shared<MemDisk>(kMemberBlocks, kBlockSize));
    faulty.push_back(
        std::make_shared<FaultyDisk>(disks.back(), FaultyDisk::Config{}));
    members.push_back(faulty.back());
  }
  PRINS_ASSIGN_OR_RETURN(auto array_owned, Raid6Array::create(members));
  auto array = std::shared_ptr<Raid6Array>(std::move(array_owned));
  std::printf("primary: %s\n", array->describe().c_str());

  // PRINS engine on top, tapping the array's small-write parity directly
  // (the paper's zero-overhead case), replicating to one remote node.
  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  auto engine = std::make_unique<PrinsEngine>(array, config);
  auto replica_disk =
      std::make_shared<MemDisk>(array->num_blocks(), kBlockSize);
  auto replica = std::make_shared<ReplicaEngine>(replica_disk);
  auto [primary_end, replica_end] = make_inproc_pair();
  engine->add_replica(std::move(primary_end));
  std::thread server(
      [replica, link = std::shared_ptr<Transport>(std::move(replica_end))] {
        (void)replica->serve(*link);
      });

  // Load data through the engine.
  Rng rng(2006);
  std::vector<Bytes> expected(array->num_blocks());
  for (Lba lba = 0; lba < array->num_blocks(); ++lba) {
    expected[lba] = Bytes(kBlockSize);
    rng.fill(expected[lba]);
    PRINS_RETURN_IF_ERROR(engine->write(lba, expected[lba]));
  }
  PRINS_RETURN_IF_ERROR(engine->drain());
  std::printf("wrote %llu blocks through the PRINS engine\n",
              static_cast<unsigned long long>(array->num_blocks()));

  // Catastrophe: two members die.
  faulty[1]->set_dead(true);
  faulty[4]->set_dead(true);
  std::printf("\nmembers 1 and 4 have FAILED — array running degraded\n");

  Bytes out(kBlockSize);
  for (Lba lba = 0; lba < array->num_blocks(); ++lba) {
    PRINS_RETURN_IF_ERROR(engine->read(lba, out));
    if (out != expected[lba]) {
      return internal_error("degraded read returned wrong data at block " +
                            std::to_string(lba));
    }
  }
  std::printf("every block reads back correctly via P/Q reconstruction\n");

  // Replace the dead members with blank disks and rebuild.
  faulty[1]->set_dead(false);
  faulty[4]->set_dead(false);
  Bytes zeros(kMemberBlocks * kBlockSize, 0);
  PRINS_RETURN_IF_ERROR(disks[1]->write(0, zeros));
  PRINS_RETURN_IF_ERROR(disks[4]->write(0, zeros));
  PRINS_RETURN_IF_ERROR(array->rebuild_members({1, 4}));
  std::printf("\nmembers replaced and rebuilt from survivors\n");

  PRINS_ASSIGN_OR_RETURN(std::uint64_t bad, array->scrub());
  std::printf("scrub: %llu inconsistent stripes (expected 0)\n",
              static_cast<unsigned long long>(bad));

  // The replica never noticed any of this.
  auto repaired = engine->verify_and_repair(0, array->num_blocks());
  PRINS_RETURN_IF_ERROR(repaired.status());
  std::printf("replica audit: %llu divergent blocks (expected 0)\n",
              static_cast<unsigned long long>(*repaired));

  engine.reset();
  server.join();
  return (bad == 0 && *repaired == 0)
             ? Status::ok()
             : internal_error("recovery left inconsistencies");
}

}  // namespace

int main() {
  Status s = run();
  if (!s.is_ok()) {
    std::fprintf(stderr, "raid_recovery failed: %s\n", s.to_string().c_str());
    return 1;
  }
  std::printf("\nRAID-6 + PRINS recovery completed successfully.\n");
  return 0;
}
