// Database replication comparison — drive a TPC-C-shaped OLTP workload
// through all three replication techniques (the paper's Figure 4/5 setup
// at example scale) and print the traffic each one generates.
//
// Usage: database_replication [transactions]   (default 400)
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "sim/experiment.h"
#include "workload/tpcc.h"

using namespace prins;

int main(int argc, char** argv) {
  std::uint64_t transactions = 400;
  if (argc > 1) {
    const auto v = std::strtoull(argv[1], nullptr, 10);
    if (v > 0) transactions = v;
  }

  WorkloadFactory factory = [] {
    TpccConfig config;
    config.profile = oracle_profile();
    config.warehouses = 2;
    config.customers_per_district = 100;
    config.items = 500;
    config.order_capacity = 20000;
    config.seed = 1234;
    return std::make_unique<Tpcc>(config);
  };

  std::printf("TPC-C (%llu transactions) replicated to one remote node, "
              "8 KB blocks\n\n",
              static_cast<unsigned long long>(transactions));
  std::printf("%-15s %14s %14s %12s %10s\n", "policy", "payload KB",
              "wire KB", "bytes/write", "consistent");

  double traditional_kb = 0;
  for (ReplicationPolicy policy : {ReplicationPolicy::kTraditional,
                                   ReplicationPolicy::kTraditionalCompressed,
                                   ReplicationPolicy::kPrins,
                                   ReplicationPolicy::kPrinsRle}) {
    PolicyRunConfig config;
    config.policy = policy;
    config.block_size = 8192;
    config.transactions = transactions;
    auto result = run_policy(factory, config);
    if (!result.is_ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   result.status().to_string().c_str());
      return 1;
    }
    const double kb = result->sent.payload_bytes / 1024.0;
    if (policy == ReplicationPolicy::kTraditional) traditional_kb = kb;
    std::printf("%-15s %14.1f %14.1f %12.1f %10s\n",
                std::string(policy_name(policy)).c_str(), kb,
                result->sent.wire_bytes / 1024.0, result->mean_payload_bytes,
                result->replicas_consistent ? "yes" : "NO");
    if (policy == ReplicationPolicy::kPrins) {
      std::printf("%15s -> %.1fx less traffic than traditional replication\n",
                  "", traditional_kb / kb);
    }
  }
  std::printf("\nEvery row above ends with the replica byte-identical to "
              "the primary —\nthe savings come from *what* is shipped, "
              "not from skipping updates.\n");
  return 0;
}
