// Remote mirroring over iSCSI + TCP — the paper's full architecture in
// one program (Figure 1), over real loopback sockets:
//
//   [application host]                [storage node]              [replica node]
//   IscsiInitiator  --TCP/iSCSI-->    IscsiTarget                 ReplicaEngine
//                                     └─ PrinsEngine --TCP-->     └─ MemDisk
//                                        └─ MemDisk
//
// The application host sees an ordinary SCSI disk.  Every write it sends
// lands on the storage node's device and is parity-replicated to the
// replica node.  At the end we verify all three views agree.
#include <cstdio>
#include <map>
#include <memory>
#include <thread>

#include "block/mem_disk.h"
#include "cluster/cluster_router.h"
#include "cluster/pg_membership.h"
#include "common/rng.h"
#include "iscsi/initiator.h"
#include "iscsi/reactor_target.h"
#include "iscsi/target.h"
#include "net/reactor.h"
#include "net/reactor_tcp.h"
#include "net/tcp.h"
#include "net/traffic_meter.h"
#include "prins/engine.h"
#include "prins/reactor_server.h"
#include "prins/read_router.h"
#include "prins/replica.h"

using namespace prins;

namespace {

Status run() {
  constexpr std::uint32_t kBlockSize = 4096;
  constexpr std::uint64_t kBlocks = 512;

  // With PRINS_REACTOR set, both server nodes become thread-free: the
  // replica and the iSCSI target serve every session as reactor handlers
  // (ReactorReplicaServer / ReactorIscsiServer), the engine's replica
  // links are pumped by reactor callbacks instead of a sender thread each,
  // and retry timers ride the epoll pool's wheel.  Either way the rest of
  // the program is identical: both transports speak the same wire format
  // behind the same blocking API.
  std::shared_ptr<ReactorPool> pool;
  if (reactor_enabled_from_env()) {
    PRINS_ASSIGN_OR_RETURN(pool, ReactorPool::create());
    std::printf("PRINS_REACTOR on: %zu reactor loop thread(s)\n",
                pool->size());
  }
  auto listen_loopback =
      [&](std::uint16_t port) -> Result<std::shared_ptr<Listener>> {
    if (pool != nullptr) {
      PRINS_ASSIGN_OR_RETURN(auto owned, ReactorListener::listen(pool, port));
      return std::shared_ptr<Listener>(std::move(owned));
    }
    PRINS_ASSIGN_OR_RETURN(auto owned, TcpListener::listen(port));
    return std::shared_ptr<Listener>(std::move(owned));
  };
  auto listener_port = [&](const std::shared_ptr<Listener>& listener) {
    if (pool != nullptr) {
      return static_cast<ReactorListener&>(*listener).port();
    }
    return static_cast<TcpListener&>(*listener).port();
  };
  auto connect_loopback =
      [&](std::uint16_t port) -> Result<std::unique_ptr<Transport>> {
    if (pool != nullptr) {
      return ReactorTcpTransport::connect(pool->next().shared_from_this(),
                                          "127.0.0.1", port);
    }
    return TcpTransport::connect("127.0.0.1", port);
  };

  // --- replica node: ReplicaEngine listening on TCP ----------------------
  auto replica_disk = std::make_shared<MemDisk>(kBlocks, kBlockSize);
  auto replica = std::make_shared<ReplicaEngine>(replica_disk);
  std::unique_ptr<ReactorReplicaServer> replica_server;
  std::shared_ptr<Listener> replica_listener;
  std::thread replica_thread;
  std::uint16_t replica_port = 0;
  if (pool != nullptr) {
    PRINS_ASSIGN_OR_RETURN(replica_server,
                           ReactorReplicaServer::start(replica, pool));
    replica_port = replica_server->port();
  } else {
    PRINS_ASSIGN_OR_RETURN(replica_listener, listen_loopback(0));
    replica_port = listener_port(replica_listener);
    replica_thread = replica_serve_in_background(replica, replica_listener);
  }
  std::printf("replica node listening on 127.0.0.1:%u\n", replica_port);

  // --- storage node: PRINS engine inside an iSCSI target ------------------
  auto storage_disk = std::make_shared<MemDisk>(kBlocks, kBlockSize);
  EngineConfig engine_config;
  engine_config.policy = ReplicationPolicy::kPrins;
  engine_config.read_from_replicas = true;  // maintain the conflict window
  if (pool != nullptr) {
    engine_config.reactor = pool->at(0).shared_from_this();
    engine_config.reactor_senders = true;
  }
  auto engine = std::make_shared<PrinsEngine>(storage_disk, engine_config);
  PRINS_ASSIGN_OR_RETURN(auto replica_link, connect_loopback(replica_port));
  auto meter = std::make_unique<TrafficMeter>(std::move(replica_link));
  TrafficMeter* wan_traffic = meter.get();
  engine->add_replica(std::move(meter));

  // Read offload: the iSCSI target serves from a ReadRouter instead of the
  // bare engine.  Conflict-free reads travel a second link to the replica
  // node (which proves freshness before answering); anything else stays
  // local.  Both nodes start from the same zeroed image, so the mirror is
  // caught up from the first write.
  auto router = std::make_shared<ReadRouter>(engine);
  PRINS_ASSIGN_OR_RETURN(auto read_link, connect_loopback(replica_port));
  router->add_read_replica(std::move(read_link));

  auto target = std::make_shared<iscsi::IscsiTarget>(router);
  std::unique_ptr<iscsi::ReactorIscsiServer> target_server;
  std::shared_ptr<Listener> target_listener;
  std::thread target_thread;
  std::uint16_t target_port = 0;
  if (pool != nullptr) {
    PRINS_ASSIGN_OR_RETURN(target_server,
                           iscsi::ReactorIscsiServer::start(target, pool));
    target_port = target_server->port();
  } else {
    PRINS_ASSIGN_OR_RETURN(target_listener, listen_loopback(0));
    target_port = listener_port(target_listener);
    target_thread = iscsi::serve_in_background(target, target_listener);
  }
  std::printf("storage node (iSCSI target + PRINS engine) on 127.0.0.1:%u\n",
              target_port);

  // --- application host: an iSCSI initiator -------------------------------
  PRINS_ASSIGN_OR_RETURN(auto app_link, connect_loopback(target_port));
  PRINS_ASSIGN_OR_RETURN(auto initiator,
                         iscsi::IscsiInitiator::login(std::move(app_link)));
  std::printf("application host logged in to %s (%llu x %u bytes)\n\n",
              initiator->target_name().c_str(),
              static_cast<unsigned long long>(initiator->num_blocks()),
              initiator->block_size());

  // The application performs partial-block updates, like a database would:
  // read the block, change a 256-byte region, write it back.
  Rng rng(7);
  Bytes block(kBlockSize);
  std::uint64_t app_bytes = 0;
  for (int i = 0; i < 300; ++i) {
    const Lba lba = rng.next_below(kBlocks);
    PRINS_RETURN_IF_ERROR(initiator->read(lba, block));
    rng.fill(MutByteSpan(block).subspan(rng.next_below(kBlockSize - 256), 256));
    PRINS_RETURN_IF_ERROR(initiator->write(lba, block));
    app_bytes += kBlockSize;
  }
  PRINS_RETURN_IF_ERROR(initiator->flush());  // SYNCHRONIZE CACHE -> drain
  PRINS_RETURN_IF_ERROR(engine->drain());

  const TrafficStats wan = wan_traffic->sent();
  std::printf("application wrote      %8.1f KB over the iSCSI link\n",
              app_bytes / 1024.0);
  std::printf("WAN link carried       %8.1f KB of PRINS parity (%.1fx less)\n",
              wan.payload_bytes / 1024.0,
              static_cast<double>(app_bytes) / wan.payload_bytes);

  // Read back through iSCSI and compare against the replica's device.
  Bytes via_iscsi(kBlockSize), on_replica(kBlockSize);
  std::uint64_t mismatches = 0;
  for (Lba lba = 0; lba < kBlocks; ++lba) {
    PRINS_RETURN_IF_ERROR(initiator->read(lba, via_iscsi));
    PRINS_RETURN_IF_ERROR(replica_disk->read(lba, on_replica));
    mismatches += (via_iscsi != on_replica);
  }
  std::printf("blocks differing between app view and replica: %llu "
              "(expected 0)\n",
              static_cast<unsigned long long>(mismatches));

  const EngineMetrics em = engine->metrics();
  const ReplicaMetrics rm = replica->metrics();
  std::printf("reads served by replica %llu (replica counted %llu), "
              "conflicts kept local %llu, stale retries %llu\n",
              static_cast<unsigned long long>(em.replica_reads),
              static_cast<unsigned long long>(rm.client_reads_served),
              static_cast<unsigned long long>(em.read_conflicts_local),
              static_cast<unsigned long long>(em.stale_read_retries));

  // Orderly teardown: app logs out, the target (which co-owns the engine)
  // goes away first so that dropping our engine reference actually
  // destroys it and closes the WAN link, unblocking the replica.
  PRINS_RETURN_IF_ERROR(initiator->logout());
  if (target_server != nullptr) {
    target_server->stop();
  } else {
    target_listener->close();
    target_thread.join();
  }
  target.reset();
  router.reset();  // closes the read link, releases its engine reference
  engine.reset();  // last owner: closes the WAN link
  if (replica_server != nullptr) {
    replica_server->stop();
  } else {
    replica_listener->close();
    replica_thread.join();
  }

  return mismatches == 0 ? Status::ok()
                         : internal_error("replica diverged");
}

// Act two: the same replication engine scaled out.  One volume striped
// across three primaries by placement group, a PG-aware router in front,
// and a mid-workload node kill that the cluster layer absorbs: the dead
// node's PGs promote their mirrors (epoch fencing via the same
// ReplicaEngine::promote the single-node failover path uses) and the
// router retries onto the new map epoch.
Status run_cluster() {
  constexpr std::uint32_t kBlockSize = 4096;
  constexpr std::uint64_t kBlocks = 512;

  cluster::MembershipConfig config;
  config.map.pg_count = 64;
  config.map.mirrors = 1;
  config.sync_writes = true;  // acked == replicated, so a kill loses nothing
  cluster::PgMembership membership(
      [&](const std::string&) {
        return std::make_shared<MemDisk>(kBlocks, kBlockSize);
      },
      config);
  for (const char* id : {"n1", "n2", "n3"}) {
    PRINS_RETURN_IF_ERROR(membership.add_node(id));
  }
  PRINS_RETURN_IF_ERROR(membership.start());
  auto router = membership.make_router(/*wire=*/true);
  std::printf("cluster: 3 primaries, %u PGs, map epoch %llu\n",
              membership.map()->pg_count(),
              static_cast<unsigned long long>(membership.map()->epoch()));

  Rng rng(11);
  Bytes block(kBlockSize), check(kBlockSize);
  std::map<Lba, Bytes> expected;
  auto write_some = [&](int count) -> Status {
    for (int i = 0; i < count; ++i) {
      const Lba lba = rng.next_below(kBlocks);
      rng.fill(block);
      PRINS_RETURN_IF_ERROR(router->write(lba, block));
      expected[lba] = block;
    }
    return Status::ok();
  };
  PRINS_RETURN_IF_ERROR(write_some(200));

  // Kill a primary mid-volume.  Its PGs promote, the map flips to epoch 2,
  // and the very next I/O the router sends self-corrects.
  PRINS_RETURN_IF_ERROR(membership.fail_node("n2"));
  PRINS_RETURN_IF_ERROR(write_some(200));

  std::uint64_t mismatches = 0;
  for (const auto& [lba, want] : expected) {
    PRINS_RETURN_IF_ERROR(router->read(lba, check));
    mismatches += (check != want);
  }
  const cluster::RouterMetrics rm = router->metrics();
  std::printf("killed n2 mid-workload: map epoch %llu, %llu retried runs, "
              "%llu of %zu blocks diverged (expected 0)\n",
              static_cast<unsigned long long>(rm.map_epoch),
              static_cast<unsigned long long>(rm.wrong_pg_retries +
                                              rm.unavailable_retries),
              static_cast<unsigned long long>(mismatches), expected.size());
  return mismatches == 0 ? Status::ok()
                         : internal_error("cluster diverged after failover");
}

}  // namespace

int main() {
  Status s = run();
  if (!s.is_ok()) {
    std::fprintf(stderr, "remote_mirroring failed: %s\n",
                 s.to_string().c_str());
    return 1;
  }
  std::printf("\nremote mirroring over iSCSI/TCP completed successfully.\n\n");
  s = run_cluster();
  if (!s.is_ok()) {
    std::fprintf(stderr, "cluster act failed: %s\n", s.to_string().c_str());
    return 1;
  }
  std::printf("\nPG-sharded cluster with mid-workload failover completed "
              "successfully.\n");
  return 0;
}
