// WAN capacity planner — using the paper's models as an operator tool.
//
// Question an operator actually asks: "how many database nodes can share
// one T1 (or T3) line for replication before response time blows past an
// SLO?"  This example measures the per-write replication message size of
// each policy on a short TPC-C run, then walks the closed-network model
// up in population until the SLO breaks, reporting the supportable node
// count for every (policy, line) pair.
//
// Usage: wan_planner [slo_milliseconds]   (default 500 ms)
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <vector>

#include "queueing/mva.h"
#include "queueing/wan.h"
#include "sim/experiment.h"
#include "workload/tpcc.h"

using namespace prins;

namespace {

constexpr unsigned kRouters = 2;
constexpr double kThinkTime = 0.1;  // ~10 writes/s per node, as measured
constexpr unsigned kReplicasPerNode = 1;

std::map<ReplicationPolicy, double> measure_message_sizes() {
  WorkloadFactory factory = [] {
    TpccConfig config;
    config.warehouses = 2;
    config.customers_per_district = 100;
    config.items = 500;
    config.order_capacity = 20000;
    config.seed = 99;
    return std::make_unique<Tpcc>(config);
  };
  std::map<ReplicationPolicy, double> sizes;
  for (ReplicationPolicy policy : {ReplicationPolicy::kTraditional,
                                   ReplicationPolicy::kTraditionalCompressed,
                                   ReplicationPolicy::kPrins}) {
    PolicyRunConfig config;
    config.policy = policy;
    config.block_size = 8192;
    config.transactions = 300;
    auto result = run_policy(factory, config);
    if (result.is_ok() && result->sent.messages > 0) {
      sizes[policy] = static_cast<double>(result->sent.payload_bytes) /
                      static_cast<double>(result->sent.messages);
    }
  }
  return sizes;
}

/// Largest population whose response time stays under the SLO.
unsigned max_population(double message_bytes, const WanLine& line,
                        double slo_sec) {
  const double service = router_service_time_sec(
      static_cast<std::uint64_t>(message_bytes), line);
  const auto curve =
      solve_mva_curve(std::vector<double>(kRouters, service), kThinkTime, 2000);
  unsigned best = 0;
  for (const auto& point : curve) {
    if (point.response_time_sec <= slo_sec) best = point.population;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  double slo_ms = 500;
  if (argc > 1) {
    const double v = std::strtod(argv[1], nullptr);
    if (v > 0) slo_ms = v;
  }

  std::printf("WAN replication capacity planner\n");
  std::printf("SLO: replication response time <= %.0f ms; %u routers; "
              "%u replica(s) per node; 8 KB blocks; TPC-C write mix\n\n",
              slo_ms, kRouters, kReplicasPerNode);

  const auto sizes = measure_message_sizes();
  if (sizes.size() != 3) {
    std::fprintf(stderr, "measurement failed\n");
    return 1;
  }
  std::printf("measured replication message sizes (bytes/write):\n");
  for (const auto& [policy, bytes] : sizes) {
    std::printf("  %-15s %8.0f\n", std::string(policy_name(policy)).c_str(),
                bytes);
  }

  std::printf("\nmax nodes a line supports within the SLO "
              "(population / replicas-per-node):\n");
  std::printf("%-15s %12s %12s\n", "policy", "T1", "T3");
  for (const auto& [policy, bytes] : sizes) {
    const unsigned t1 = max_population(bytes, kT1, slo_ms / 1000.0) /
                        kReplicasPerNode;
    const unsigned t3 = max_population(bytes, kT3, slo_ms / 1000.0) /
                        kReplicasPerNode;
    std::printf("%-15s %12u %12u\n", std::string(policy_name(policy)).c_str(),
                t1, t3);
  }
  std::printf("\nreading: with PRINS the same line carries an order of "
              "magnitude more nodes —\nthe operational meaning of the "
              "paper's bandwidth savings.\n");
  return 0;
}
