// Point-in-time recovery (the TRAP/CDP extension from the paper's §6):
// a replica that keeps the parity deltas PRINS already ships can rewind
// its copy to the state after ANY historical write — continuous data
// protection at a fraction of the cost of before-image logging.
//
// Scenario: a "document store" updates records; at some point a bug
// corrupts a record.  We rewind the replica to just before the corruption
// and recover the clean contents.
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>

#include "block/mem_disk.h"
#include "common/rng.h"
#include "net/inproc.h"
#include "prins/engine.h"
#include "prins/replica.h"

using namespace prins;

namespace {

constexpr std::uint32_t kBlockSize = 4096;
constexpr std::uint64_t kBlocks = 64;
constexpr Lba kRecord = 7;  // the block holding "the document"

Bytes make_document(const char* text) {
  Bytes block(kBlockSize, 0);
  std::memcpy(block.data(), text, std::strlen(text));
  return block;
}

std::string document_text(const Bytes& block) {
  return std::string(reinterpret_cast<const char*>(block.data()));
}

Status run() {
  // Primary + replica with the TRAP log enabled on the replica side.
  auto primary_disk = std::make_shared<MemDisk>(kBlocks, kBlockSize);
  auto replica_disk = std::make_shared<MemDisk>(kBlocks, kBlockSize);
  ReplicaConfig replica_config;
  replica_config.keep_trap_log = true;
  auto replica = std::make_shared<ReplicaEngine>(replica_disk, replica_config);

  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  auto engine = std::make_unique<PrinsEngine>(primary_disk, config);
  auto [primary_end, replica_end] = make_inproc_pair();
  engine->add_replica(std::move(primary_end));
  std::thread server(
      [replica, link = std::shared_ptr<Transport>(std::move(replica_end))] {
        (void)replica->serve(*link);
      });

  // A history of document versions (each write gets logical timestamp
  // 1, 2, 3, ... on the engine's clock).
  const char* versions[] = {
      "v1: draft outline",
      "v2: added the results section",
      "v3: reviewer comments addressed",
      "v4: XXXXXX CORRUPTED BY BUG XXXXXX",
      "v5: more corruption on top",
  };
  for (const char* text : versions) {
    PRINS_RETURN_IF_ERROR(engine->write(kRecord, make_document(text)));
  }
  // Unrelated traffic on other blocks, interleaved in history.
  Rng rng(1);
  Bytes noise(kBlockSize);
  for (int i = 0; i < 20; ++i) {
    rng.fill(noise);
    PRINS_RETURN_IF_ERROR(engine->write(rng.next_in(10, kBlocks - 1), noise));
  }
  PRINS_RETURN_IF_ERROR(engine->drain());

  Bytes current(kBlockSize);
  PRINS_RETURN_IF_ERROR(replica_disk->read(kRecord, current));
  std::printf("replica's current contents:  \"%s\"\n",
              document_text(current).c_str());

  // Rewind: timestamps for the record are 1..5; t=3 is the last good one.
  const TrapLog& log = replica->trap_log();
  const auto stamps = log.timestamps(kRecord);
  std::printf("logged versions of the record: %zu\n", stamps.size());
  for (std::uint64_t t : stamps) {
    PRINS_ASSIGN_OR_RETURN(Bytes at_t, log.recover_block(kRecord, t, current));
    std::printf("  t=%llu: \"%s\"\n", static_cast<unsigned long long>(t),
                document_text(at_t).c_str());
  }

  PRINS_ASSIGN_OR_RETURN(Bytes recovered,
                         log.recover_block(kRecord, stamps[2], current));
  std::printf("\nrecovered to t=%llu:          \"%s\"\n",
              static_cast<unsigned long long>(stamps[2]),
              document_text(recovered).c_str());

  // Cost accounting: the parity log vs full before-image CDP.
  std::printf("\nTRAP log: %llu entries, %llu bytes stored "
              "(before-image CDP would store %llu bytes)\n",
              static_cast<unsigned long long>(log.total_entries()),
              static_cast<unsigned long long>(log.stored_bytes()),
              static_cast<unsigned long long>(log.raw_bytes_logged()));

  const bool ok =
      document_text(recovered) == "v3: reviewer comments addressed";
  engine.reset();
  server.join();
  return ok ? Status::ok() : internal_error("recovered wrong version");
}

}  // namespace

int main() {
  Status s = run();
  if (!s.is_ok()) {
    std::fprintf(stderr, "point_in_time_recovery failed: %s\n",
                 s.to_string().c_str());
    return 1;
  }
  std::printf("\npoint-in-time recovery succeeded.\n");
  return 0;
}
