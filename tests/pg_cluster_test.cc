// Cluster layer: placement-group maps, the PG-aware client router, and
// membership-driven failover/migration.
//
// The deterministic convergence cases the roadmap's multi-primary item
// demands: a node killed mid-workload converges (heirs promoted via
// ReplicaEngine::promote + epoch fencing, the router rides the window out
// on kWrongPg / kUnavailable retries against the next map epoch) with a
// byte-identical full-volume read-back, and a live join migrates exactly
// the PGs the joiner wins.  Span splitting at PG boundaries is pinned
// torn-free under concurrent traffic.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "block/mem_disk.h"
#include "cluster/cluster_router.h"
#include "cluster/pg_map.h"
#include "cluster/pg_membership.h"

namespace prins::cluster {
namespace {

constexpr std::uint32_t kBlockSize = 512;
constexpr std::uint64_t kNumBlocks = 128;

MembershipConfig small_cluster_config() {
  MembershipConfig config;
  config.map.pg_count = 16;
  config.map.mirrors = 1;
  config.inproc_capacity = 256;
  return config;
}

PgMembership::DeviceFactory mem_factory() {
  return [](const std::string&) {
    return std::make_shared<MemDisk>(kNumBlocks, kBlockSize);
  };
}

/// Deterministic per-(lba, version) block pattern.
Bytes pattern(Lba lba, std::uint64_t version) {
  Bytes block(kBlockSize);
  for (std::size_t i = 0; i < block.size(); ++i) {
    block[i] = static_cast<Byte>(
        mix64(lba * 1000003 + version * 7919 + i) & 0xff);
  }
  return block;
}

// ---- PgMap ---------------------------------------------------------------

TEST(PgMapTest, GenesisIsDeterministicBalancedAndSerializable) {
  PgMapConfig config;
  config.pg_count = 64;
  config.mirrors = 2;
  const PgMap a = PgMap::build({"alpha", "beta", "gamma", "delta"}, config);
  const PgMap b = PgMap::build({"delta", "gamma", "alpha", "beta"}, config);
  EXPECT_TRUE(a == b) << "node order must not matter";
  EXPECT_EQ(a.pg_count(), 64u);
  EXPECT_EQ(a.epoch(), 1u);

  std::map<std::string, int> owned;
  for (PgId pg = 0; pg < a.pg_count(); ++pg) {
    const PgAssignment& where = a.assignment(pg);
    ASSERT_FALSE(where.primary.empty());
    EXPECT_EQ(where.mirrors.size(), 2u);
    for (const auto& m : where.mirrors) EXPECT_NE(m, where.primary);
    owned[where.primary] += 1;
  }
  // Rendezvous spread: every node owns a meaningful share of 64 PGs.
  ASSERT_EQ(owned.size(), 4u);
  for (const auto& [node, count] : owned) {
    EXPECT_GE(count, 4) << node << " owns too few PGs";
    EXPECT_LE(count, 32) << node << " owns too many PGs";
  }

  const Bytes wire = a.serialize();
  auto parsed = PgMap::parse(wire);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_TRUE(*parsed == a);

  Bytes corrupt = wire;
  corrupt[10] ^= 0x40;
  EXPECT_FALSE(PgMap::parse(corrupt).is_ok());
  EXPECT_FALSE(PgMap::parse(ByteSpan(wire).subspan(0, wire.size() - 3)).is_ok());
}

TEST(PgMapTest, FailoverPromotesFirstMirrorAndMovesOnlyTheDeadNodesPgs) {
  PgMapConfig config;
  config.pg_count = 32;
  config.mirrors = 1;
  const PgMap before = PgMap::build({"a", "b", "c"}, config);
  const PgMap after = before.with_failed("b");
  EXPECT_EQ(after.epoch(), before.epoch() + 1);
  EXPECT_FALSE(after.has_node("b"));

  for (PgId pg = 0; pg < before.pg_count(); ++pg) {
    const PgAssignment& old = before.assignment(pg);
    const PgAssignment& now = after.assignment(pg);
    if (old.primary == "b") {
      // The heir is the first surviving mirror — it holds every byte.
      ASSERT_FALSE(old.mirrors.empty());
      EXPECT_EQ(now.primary, old.mirrors.front());
    } else {
      EXPECT_EQ(now.primary, old.primary) << "pg " << pg << " moved needlessly";
    }
    for (const auto& m : now.mirrors) {
      EXPECT_NE(m, "b");
      EXPECT_NE(m, now.primary);
    }
  }
  const auto moved = PgMap::moved_primaries(before, after);
  EXPECT_FALSE(moved.empty());
  EXPECT_LT(moved.size(), before.pg_count());
}

TEST(PgMapTest, JoinMovesOnlyThePgsTheJoinerWins) {
  PgMapConfig config;
  config.pg_count = 64;
  config.mirrors = 1;
  const PgMap before = PgMap::build({"a", "b", "c"}, config);
  const PgMap after = before.with_joined("d");
  EXPECT_EQ(after.epoch(), before.epoch() + 1);
  EXPECT_TRUE(after.has_node("d"));

  // The joiner takes over exactly the PGs it tops in a full re-hash
  // (~1/4), and each moved PG demotes its old primary to first mirror.
  const PgMap rehash = PgMap::build({"a", "b", "c", "d"}, config);
  std::size_t moved = 0;
  for (PgId pg = 0; pg < before.pg_count(); ++pg) {
    const PgAssignment& old = before.assignment(pg);
    const PgAssignment& now = after.assignment(pg);
    if (rehash.assignment(pg).primary == "d") {
      EXPECT_EQ(now.primary, "d");
      ASSERT_FALSE(now.mirrors.empty());
      EXPECT_EQ(now.mirrors.front(), old.primary);
      ++moved;
    } else {
      EXPECT_EQ(now.primary, old.primary);
      EXPECT_EQ(now.mirrors, old.mirrors);
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, before.pg_count() / 2);
}

TEST(PgMapTest, PgLbasPartitionsTheVolume) {
  const PgMap map = PgMap::build({"a", "b"}, {.pg_count = 8, .mirrors = 1});
  std::vector<bool> seen(kNumBlocks, false);
  for (PgId pg = 0; pg < map.pg_count(); ++pg) {
    for (Lba lba : pg_lbas(map, pg, kNumBlocks)) {
      EXPECT_EQ(map.pg_of(lba), pg);
      EXPECT_FALSE(seen[lba]) << "lba " << lba << " in two PGs";
      seen[lba] = true;
    }
  }
  for (Lba lba = 0; lba < kNumBlocks; ++lba) {
    EXPECT_TRUE(seen[lba]) << "lba " << lba << " in no PG";
  }
}

// ---- Router over a live cluster ------------------------------------------

TEST(ClusterRouterTest, WireRoundTripRoutesEveryPg) {
  PgMembership cluster(mem_factory(), small_cluster_config());
  ASSERT_TRUE(cluster.add_node("n1").is_ok());
  ASSERT_TRUE(cluster.add_node("n2").is_ok());
  ASSERT_TRUE(cluster.add_node("n3").is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  auto router = cluster.make_router(/*wire=*/true);
  for (Lba lba = 0; lba < kNumBlocks; ++lba) {
    const Bytes block = pattern(lba, 1);
    ASSERT_TRUE(router->write(lba, block).is_ok()) << "lba " << lba;
  }
  for (Lba lba = 0; lba < kNumBlocks; ++lba) {
    Bytes got(kBlockSize);
    ASSERT_TRUE(router->read(lba, got).is_ok()) << "lba " << lba;
    EXPECT_EQ(got, pattern(lba, 1)) << "lba " << lba;
  }

  const RouterMetrics m = router->metrics();
  EXPECT_EQ(m.writes, kNumBlocks);
  EXPECT_EQ(m.reads, kNumBlocks);
  EXPECT_EQ(m.wrong_pg_retries, 0u);
  std::uint64_t routed = 0;
  std::uint64_t live_pgs = 0;
  for (std::uint64_t ops : router->pg_op_counts()) {
    routed += ops;
    live_pgs += ops > 0 ? 1 : 0;
  }
  EXPECT_EQ(routed, 2 * kNumBlocks);
  EXPECT_EQ(live_pgs, cluster.map()->pg_count());

  // Ownership stats: the PGs partition across the three nodes.
  std::vector<PgId> all;
  for (const NodeStats& ns : cluster.stats()) {
    EXPECT_TRUE(ns.alive);
    EXPECT_GT(ns.metrics.writes, 0u);
    all.insert(all.end(), ns.pgs.begin(), ns.pgs.end());
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), cluster.map()->pg_count());
  for (PgId pg = 0; pg < all.size(); ++pg) EXPECT_EQ(all[pg], pg);
}

TEST(ClusterRouterTest, SpanSplitIsTornFreeUnderConcurrentTraffic) {
  PgMembership cluster(mem_factory(), small_cluster_config());
  ASSERT_TRUE(cluster.add_node("n1").is_ok());
  ASSERT_TRUE(cluster.add_node("n2").is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  auto router = cluster.make_router(/*wire=*/true);
  // Hashed placement makes consecutive LBAs land in different PGs, so an
  // 8-block span virtually always straddles a boundary.
  constexpr std::size_t kSpanBlocks = 8;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRounds = 12;
  static_assert(kNumBlocks % (kThreads * kSpanBlocks) == 0);

  std::atomic<bool> failed{false};
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      // Each thread owns disjoint spans; rewrites race only on the wire.
      for (std::size_t round = 1; round <= kRounds; ++round) {
        for (Lba base = t * kSpanBlocks; base < kNumBlocks;
             base += kThreads * kSpanBlocks) {
          Bytes span;
          for (std::size_t i = 0; i < kSpanBlocks; ++i) {
            const Bytes block = pattern(base + i, round);
            span.insert(span.end(), block.begin(), block.end());
          }
          if (!router->write(base, span).is_ok()) {
            failed.store(true);
            return;
          }
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  ASSERT_FALSE(failed.load());

  // Every span reads back byte-identical to its final rewrite: no block
  // of a split span was lost or interleaved with an older round.
  for (Lba base = 0; base < kNumBlocks; base += kSpanBlocks) {
    Bytes got(kSpanBlocks * kBlockSize);
    ASSERT_TRUE(router->read(base, got).is_ok());
    for (std::size_t i = 0; i < kSpanBlocks; ++i) {
      const Bytes want = pattern(base + i, kRounds);
      EXPECT_TRUE(std::memcmp(got.data() + i * kBlockSize, want.data(),
                              kBlockSize) == 0)
          << "torn block at lba " << base + i;
    }
  }
  EXPECT_GT(router->metrics().span_splits, 0u)
      << "no span ever straddled a PG boundary — the split path was idle";
}

TEST(ClusterRouterTest, StaleRouterSelfCorrectsOnWrongPgNak) {
  PgMembership cluster(mem_factory(), small_cluster_config());
  ASSERT_TRUE(cluster.add_node("n1").is_ok());
  ASSERT_TRUE(cluster.add_node("n2").is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  auto router = cluster.make_router(/*wire=*/true);
  for (Lba lba = 0; lba < kNumBlocks; ++lba) {
    ASSERT_TRUE(router->write(lba, pattern(lba, 1)).is_ok());
  }

  // Live-join a third node; the router still holds the epoch-1 map, so
  // its next write to a migrated PG lands on the old owner, draws a
  // kWrongPg NAK stamped with the new epoch, refreshes, and retries.
  const auto before = cluster.map();
  ASSERT_TRUE(cluster.join_node("n3").is_ok());
  const auto after = cluster.map();
  EXPECT_EQ(after->epoch(), before->epoch() + 1);
  const auto moved = PgMap::moved_primaries(*before, *after);
  ASSERT_FALSE(moved.empty());

  EXPECT_EQ(router->map_epoch(), before->epoch()) << "router map already fresh";
  for (Lba lba = 0; lba < kNumBlocks; ++lba) {
    ASSERT_TRUE(router->write(lba, pattern(lba, 2)).is_ok()) << "lba " << lba;
  }
  const RouterMetrics m = router->metrics();
  EXPECT_GT(m.wrong_pg_retries, 0u);
  EXPECT_GE(m.map_refreshes, 1u);
  EXPECT_EQ(m.map_epoch, after->epoch());

  for (Lba lba = 0; lba < kNumBlocks; ++lba) {
    Bytes got(kBlockSize);
    ASSERT_TRUE(router->read(lba, got).is_ok());
    EXPECT_EQ(got, pattern(lba, 2)) << "lba " << lba;
  }
}

TEST(ClusterRouterTest, JoinMigratesDataAndNewOwnerServesIt) {
  PgMembership cluster(mem_factory(), small_cluster_config());
  ASSERT_TRUE(cluster.add_node("n1").is_ok());
  ASSERT_TRUE(cluster.add_node("n2").is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  // Local (wireless) backends this time: same ownership checks, no frames.
  auto router = cluster.make_router(/*wire=*/false);
  for (Lba lba = 0; lba < kNumBlocks; ++lba) {
    ASSERT_TRUE(router->write(lba, pattern(lba, 7)).is_ok());
  }
  ASSERT_TRUE(cluster.join_node("n3").is_ok());

  bool joiner_owns = false;
  for (const NodeStats& ns : cluster.stats()) {
    if (ns.id == "n3") {
      joiner_owns = !ns.pgs.empty();
      EXPECT_EQ(ns.engines, 2u) << "one migrated grant per old owner";
    }
  }
  EXPECT_TRUE(joiner_owns);

  for (Lba lba = 0; lba < kNumBlocks; ++lba) {
    Bytes got(kBlockSize);
    ASSERT_TRUE(router->read(lba, got).is_ok()) << "lba " << lba;
    EXPECT_EQ(got, pattern(lba, 7)) << "migrated lba " << lba;
  }
  // Post-migration writes land at the joiner and read back.
  for (Lba lba = 0; lba < kNumBlocks; ++lba) {
    ASSERT_TRUE(router->write(lba, pattern(lba, 8)).is_ok());
    Bytes got(kBlockSize);
    ASSERT_TRUE(router->read(lba, got).is_ok());
    EXPECT_EQ(got, pattern(lba, 8));
  }
}

// ---- Node kill mid-workload ----------------------------------------------

TEST(ClusterFailoverTest, NodeKillMidWorkloadConvergesByteIdentical) {
  MembershipConfig config = small_cluster_config();
  // Acked == replicated: a write the router saw succeed must survive the
  // primary's death (the heir's ReplicaEngine already applied it).
  config.sync_writes = true;
  PgMembership cluster(mem_factory(), config);
  ASSERT_TRUE(cluster.add_node("n1").is_ok());
  ASSERT_TRUE(cluster.add_node("n2").is_ok());
  ASSERT_TRUE(cluster.add_node("n3").is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  auto router = cluster.make_router(/*wire=*/true);
  // versions[lba] = newest acknowledged version of that block.
  std::vector<std::atomic<std::uint64_t>> versions(kNumBlocks);
  for (auto& v : versions) v.store(0);
  for (Lba lba = 0; lba < kNumBlocks; ++lba) {
    ASSERT_TRUE(router->write(lba, pattern(lba, 1)).is_ok());
    versions[lba].store(1);
  }

  // Writers keep rewriting their own disjoint block set (no same-block
  // races, so "last ack" fully determines expected contents) while the
  // kill lands.
  constexpr std::size_t kThreads = 3;
  constexpr std::uint64_t kRoundsEach = 6;
  std::atomic<bool> failed{false};
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (std::uint64_t round = 2; round < 2 + kRoundsEach; ++round) {
        for (Lba lba = t; lba < kNumBlocks; lba += kThreads) {
          if (!router->write(lba, pattern(lba, round)).is_ok()) {
            failed.store(true);
            return;
          }
          versions[lba].store(round);
        }
      }
    });
  }

  // Kill a primary mid-workload.  The router rides the promotion window
  // out with kUnavailable retries, then follows the flipped map.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(cluster.fail_node("n2").is_ok());
  for (auto& w : writers) w.join();
  ASSERT_FALSE(failed.load()) << "a write failed through the kill window";

  const auto map = cluster.map();
  EXPECT_EQ(map->epoch(), 2u);
  EXPECT_FALSE(map->has_node("n2"));
  for (PgId pg = 0; pg < map->pg_count(); ++pg) {
    EXPECT_NE(map->assignment(pg).primary, "n2");
  }
  const RouterMetrics m = router->metrics();
  EXPECT_EQ(m.map_epoch, 2u);
  EXPECT_GE(m.map_refreshes, 1u);

  // Full-volume read-back through the router: byte-identical to the last
  // acknowledged write of every block, including blocks whose PG was
  // promoted onto a survivor.
  for (Lba lba = 0; lba < kNumBlocks; ++lba) {
    Bytes got(kBlockSize);
    ASSERT_TRUE(router->read(lba, got).is_ok()) << "lba " << lba;
    EXPECT_EQ(got, pattern(lba, versions[lba].load())) << "lba " << lba;
  }

  // And the cluster keeps taking writes at the new epoch.
  for (Lba lba = 0; lba < kNumBlocks; ++lba) {
    ASSERT_TRUE(router->write(lba, pattern(lba, 99)).is_ok());
    Bytes got(kBlockSize);
    ASSERT_TRUE(router->read(lba, got).is_ok());
    EXPECT_EQ(got, pattern(lba, 99));
  }
}

TEST(ClusterFailoverTest, KillAndRekillShrinksToSingleNode) {
  MembershipConfig config = small_cluster_config();
  config.sync_writes = true;
  PgMembership cluster(mem_factory(), config);
  ASSERT_TRUE(cluster.add_node("n1").is_ok());
  ASSERT_TRUE(cluster.add_node("n2").is_ok());
  ASSERT_TRUE(cluster.add_node("n3").is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  auto router = cluster.make_router(/*wire=*/true);
  for (Lba lba = 0; lba < kNumBlocks; ++lba) {
    ASSERT_TRUE(router->write(lba, pattern(lba, 1)).is_ok());
  }
  ASSERT_TRUE(cluster.fail_node("n3").is_ok());
  for (Lba lba = 0; lba < kNumBlocks; ++lba) {
    ASSERT_TRUE(router->write(lba, pattern(lba, 2)).is_ok());
  }
  // Second kill: the survivor rebuilds mirrorless grants (no replacement
  // candidates remain) and still serves every byte that was acked.
  ASSERT_TRUE(cluster.fail_node("n1").is_ok());
  EXPECT_EQ(cluster.map()->epoch(), 3u);
  for (Lba lba = 0; lba < kNumBlocks; ++lba) {
    Bytes got(kBlockSize);
    ASSERT_TRUE(router->read(lba, got).is_ok()) << "lba " << lba;
    EXPECT_EQ(got, pattern(lba, 2)) << "lba " << lba;
    ASSERT_TRUE(router->write(lba, pattern(lba, 3)).is_ok());
  }
}

}  // namespace
}  // namespace prins::cluster
