// Tests for the LRU block cache: hit/miss behaviour, LRU eviction order,
// write-through vs write-back semantics, flush, and the interaction with
// replication (write-back coalesces PRINS traffic).
#include <gtest/gtest.h>

#include <thread>

#include "block/cached_disk.h"
#include "block/mem_disk.h"
#include "block/stats_disk.h"
#include "common/rng.h"
#include "net/inproc.h"
#include "net/traffic_meter.h"
#include "prins/engine.h"
#include "prins/replica.h"

namespace prins {
namespace {

constexpr std::uint32_t kBs = 512;

Bytes random_block(std::uint64_t seed) {
  Rng rng(seed);
  Bytes b(kBs);
  rng.fill(b);
  return b;
}

struct Rig {
  std::shared_ptr<MemDisk> backing = std::make_shared<MemDisk>(64, kBs);
  std::shared_ptr<StatsDisk> stats{std::make_shared<StatsDisk>(backing)};
  std::unique_ptr<CachedDisk> cache;

  explicit Rig(CacheConfig config) {
    cache = std::make_unique<CachedDisk>(stats, config);
  }
};

TEST(CachedDiskTest, ReadsHitAfterFirstMiss) {
  Rig rig({.capacity_blocks = 8});
  ASSERT_TRUE(rig.backing->write(3, random_block(1)).is_ok());
  Bytes out(kBs);
  ASSERT_TRUE(rig.cache->read(3, out).is_ok());
  ASSERT_TRUE(rig.cache->read(3, out).is_ok());
  ASSERT_TRUE(rig.cache->read(3, out).is_ok());
  const auto s = rig.cache->stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(rig.stats->counters().reads, 1u);  // inner read only once
  EXPECT_EQ(out, random_block(1));
}

TEST(CachedDiskTest, LruEvictionKeepsHotBlocks) {
  Rig rig({.capacity_blocks = 4});
  Bytes out(kBs);
  for (Lba lba = 0; lba < 4; ++lba) {
    ASSERT_TRUE(rig.cache->read(lba, out).is_ok());
  }
  // Touch block 0 so it is most recent; then read a 5th block.
  ASSERT_TRUE(rig.cache->read(0, out).is_ok());
  ASSERT_TRUE(rig.cache->read(10, out).is_ok());
  EXPECT_EQ(rig.cache->stats().evictions, 1u);
  // Block 1 was LRU and evicted; block 0 must still hit.
  const auto before = rig.cache->stats();
  ASSERT_TRUE(rig.cache->read(0, out).is_ok());
  EXPECT_EQ(rig.cache->stats().hits, before.hits + 1);
  ASSERT_TRUE(rig.cache->read(1, out).is_ok());
  EXPECT_EQ(rig.cache->stats().misses, before.misses + 1);
}

TEST(CachedDiskTest, WriteThroughHitsInnerImmediately) {
  Rig rig({.capacity_blocks = 8, .write_back = false});
  ASSERT_TRUE(rig.cache->write(2, random_block(2)).is_ok());
  EXPECT_EQ(rig.stats->counters().writes, 1u);
  EXPECT_EQ(rig.cache->dirty_blocks(), 0u);
  // And the cached copy serves reads without an inner read.
  Bytes out(kBs);
  ASSERT_TRUE(rig.cache->read(2, out).is_ok());
  EXPECT_EQ(rig.stats->counters().reads, 0u);
  EXPECT_EQ(out, random_block(2));
}

TEST(CachedDiskTest, WriteBackDefersAndCoalesces) {
  Rig rig({.capacity_blocks = 8, .write_back = true});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(rig.cache->write(5, random_block(100 + i)).is_ok());
  }
  EXPECT_EQ(rig.stats->counters().writes, 0u);  // nothing reached the disk
  EXPECT_EQ(rig.cache->dirty_blocks(), 1u);
  ASSERT_TRUE(rig.cache->flush().is_ok());
  EXPECT_EQ(rig.stats->counters().writes, 1u);  // 10 writes coalesced to 1
  EXPECT_EQ(rig.cache->stats().writebacks, 1u);
  Bytes out(kBs);
  ASSERT_TRUE(rig.backing->read(5, out).is_ok());
  EXPECT_EQ(out, random_block(109));  // last version won
}

TEST(CachedDiskTest, DirtyEvictionWritesBack) {
  Rig rig({.capacity_blocks = 2, .write_back = true});
  ASSERT_TRUE(rig.cache->write(0, random_block(3)).is_ok());
  ASSERT_TRUE(rig.cache->write(1, random_block(4)).is_ok());
  ASSERT_TRUE(rig.cache->write(2, random_block(5)).is_ok());  // evicts 0
  EXPECT_EQ(rig.cache->stats().writebacks, 1u);
  Bytes out(kBs);
  ASSERT_TRUE(rig.backing->read(0, out).is_ok());
  EXPECT_EQ(out, random_block(3));
}

TEST(CachedDiskTest, ReadYourWritesThroughAllPaths) {
  for (bool write_back : {false, true}) {
    Rig rig({.capacity_blocks = 4, .write_back = write_back});
    Rng rng(7);
    // Random mix of reads and writes over a working set > capacity.
    std::vector<Bytes> expected(16, Bytes(kBs, 0));
    for (int i = 0; i < 300; ++i) {
      const Lba lba = rng.next_below(16);
      if (rng.next_bool(0.5)) {
        expected[lba] = random_block(1000 + i);
        ASSERT_TRUE(rig.cache->write(lba, expected[lba]).is_ok());
      } else {
        Bytes out(kBs);
        ASSERT_TRUE(rig.cache->read(lba, out).is_ok());
        ASSERT_EQ(out, expected[lba]) << "wb=" << write_back << " i=" << i;
      }
    }
    ASSERT_TRUE(rig.cache->flush().is_ok());
    Bytes out(kBs);
    for (Lba lba = 0; lba < 16; ++lba) {
      ASSERT_TRUE(rig.backing->read(lba, out).is_ok());
      ASSERT_EQ(out, expected[lba]) << "wb=" << write_back;
    }
  }
}

TEST(CachedDiskTest, MultiBlockIoSplitsCorrectly) {
  Rig rig({.capacity_blocks = 8});
  Bytes data(4 * kBs);
  Rng rng(8);
  rng.fill(data);
  ASSERT_TRUE(rig.cache->write(2, data).is_ok());
  Bytes out(4 * kBs);
  ASSERT_TRUE(rig.cache->read(2, out).is_ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(rig.cache->cached_blocks(), 4u);
}

TEST(CachedDiskTest, InvalidateFlushesAndEmpties) {
  Rig rig({.capacity_blocks = 8, .write_back = true});
  ASSERT_TRUE(rig.cache->write(1, random_block(9)).is_ok());
  ASSERT_TRUE(rig.cache->invalidate().is_ok());
  EXPECT_EQ(rig.cache->cached_blocks(), 0u);
  Bytes out(kBs);
  ASSERT_TRUE(rig.backing->read(1, out).is_ok());
  EXPECT_EQ(out, random_block(9));
}

TEST(CachedDiskTest, DestructorFlushesDirtyData) {
  auto backing = std::make_shared<MemDisk>(8, kBs);
  {
    CachedDisk cache(backing, {.capacity_blocks = 4, .write_back = true});
    ASSERT_TRUE(cache.write(0, random_block(11)).is_ok());
  }
  Bytes out(kBs);
  ASSERT_TRUE(backing->read(0, out).is_ok());
  EXPECT_EQ(out, random_block(11));
}

TEST(CachedDiskTest, WriteBackCacheCoalescesReplicationTraffic) {
  // The system-level payoff: a write-back cache in front of a PrinsEngine
  // turns N rewrites of a hot block into one replicated write.
  auto primary = std::make_shared<MemDisk>(32, kBs);
  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  auto engine = std::make_shared<PrinsEngine>(primary, config);
  auto replica_disk = std::make_shared<MemDisk>(32, kBs);
  auto replica = std::make_shared<ReplicaEngine>(replica_disk);
  auto [primary_end, replica_end] = make_inproc_pair();
  engine->add_replica(std::move(primary_end));
  std::thread server(
      [r = replica, t = std::shared_ptr<Transport>(std::move(replica_end))] {
        ASSERT_TRUE(r->serve(*t).is_ok());
      });

  {
    CachedDisk cache(engine, {.capacity_blocks = 16, .write_back = true});
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(cache.write(7, random_block(2000 + i)).is_ok());
    }
    ASSERT_TRUE(cache.flush().is_ok());
  }
  ASSERT_TRUE(engine->drain().is_ok());
  EXPECT_EQ(engine->metrics().writes, 1u);  // 50 writes -> 1 replication

  Bytes a(kBs), b(kBs);
  ASSERT_TRUE(primary->read(7, a).is_ok());
  ASSERT_TRUE(replica_disk->read(7, b).is_ok());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, random_block(2049));

  engine.reset();
  server.join();
}

}  // namespace
}  // namespace prins
