// Tests for the TRAP/CDP parity log: timely recovery to any point in time.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <thread>

#include "block/mem_disk.h"
#include "codec/codec.h"
#include "common/rng.h"
#include "net/inproc.h"
#include "parity/xor.h"
#include "prins/engine.h"
#include "prins/replica.h"
#include "prins/trap_log.h"

namespace prins {
namespace {

constexpr std::uint32_t kBs = 512;

Bytes random_block(std::uint64_t seed) {
  Rng rng(seed);
  Bytes b(kBs);
  rng.fill(b);
  return b;
}

TEST(TrapLogTest, RecoversEveryHistoricalVersion) {
  // Write a chain of versions; the log must recover each exactly.
  TrapLog log;
  std::vector<Bytes> versions;
  versions.push_back(Bytes(kBs, 0));  // state at t=0
  for (std::uint64_t t = 1; t <= 20; ++t) {
    Bytes next = random_block(t);
    ASSERT_TRUE(log.append(5, t, parity_delta(next, versions.back())).is_ok());
    versions.push_back(std::move(next));
  }
  const Bytes& current = versions.back();
  for (std::uint64_t t = 0; t <= 20; ++t) {
    auto recovered = log.recover_block(5, t, current);
    ASSERT_TRUE(recovered.is_ok()) << "t=" << t;
    EXPECT_EQ(*recovered, versions[t]) << "t=" << t;
  }
}

TEST(TrapLogTest, UnloggedBlockIsItsCurrentSelf) {
  TrapLog log;
  const Bytes current = random_block(1);
  auto recovered = log.recover_block(42, 0, current);
  ASSERT_TRUE(recovered.is_ok());
  EXPECT_EQ(*recovered, current);
}

TEST(TrapLogTest, TimestampsMustBeMonotonicPerBlock) {
  TrapLog log;
  ASSERT_TRUE(log.append(0, 10, Bytes(kBs, 1)).is_ok());
  EXPECT_FALSE(log.append(0, 5, Bytes(kBs, 2)).is_ok());
  ASSERT_TRUE(log.append(0, 10, Bytes(kBs, 3)).is_ok());  // equal is fine
  // Other blocks are independent.
  ASSERT_TRUE(log.append(1, 5, Bytes(kBs, 4)).is_ok());
}

TEST(TrapLogTest, StoresSparseDeltasCompactly) {
  TrapLog log;
  Bytes delta(8192, 0);
  delta[100] = 0xFF;  // one changed byte out of 8 KB
  for (std::uint64_t t = 1; t <= 100; ++t) {
    ASSERT_TRUE(log.append(0, t, delta).is_ok());
  }
  EXPECT_EQ(log.total_entries(), 100u);
  EXPECT_EQ(log.raw_bytes_logged(), 100u * 8192u);
  // Encoded: each entry is tens of bytes, not 8 KB.
  EXPECT_LT(log.stored_bytes(), 100u * 64u);
}

TEST(TrapLogTest, TruncationBoundsHistory) {
  TrapLog log;
  std::vector<Bytes> versions{Bytes(kBs, 0)};
  for (std::uint64_t t = 1; t <= 10; ++t) {
    Bytes next = random_block(100 + t);
    ASSERT_TRUE(log.append(0, t, parity_delta(next, versions.back())).is_ok());
    versions.push_back(std::move(next));
  }
  log.truncate_before(5);  // drop deltas with ts < 5
  EXPECT_EQ(log.total_entries(), 6u);  // ts 5..10 remain
  // Recovery to t >= 4 still works (needs only deltas newer than t)...
  for (std::uint64_t t = 4; t <= 10; ++t) {
    auto recovered = log.recover_block(0, t, versions.back());
    ASSERT_TRUE(recovered.is_ok()) << "t=" << t;
    EXPECT_EQ(*recovered, versions[t]);
  }
  // ...but t=3 needs the dropped delta at ts=4.
  EXPECT_EQ(log.recover_block(0, 3, versions.back()).status().code(),
            ErrorCode::kFailedPrecondition);
}

TEST(TrapLogTest, TimestampsListedInOrder) {
  TrapLog log;
  for (std::uint64_t t : {3ull, 5ull, 9ull}) {
    ASSERT_TRUE(log.append(7, t, Bytes(kBs, 1)).is_ok());
  }
  EXPECT_EQ(log.timestamps(7), (std::vector<std::uint64_t>{3, 5, 9}));
  EXPECT_TRUE(log.timestamps(8).empty());
}

TEST(TrapLogTest, RecoverDeviceRollsBackAllBlocks) {
  MemDisk disk(16, kBs);
  TrapLog log;
  Rng rng(3);
  // Track full device state at each time step.
  std::map<std::uint64_t, std::vector<Bytes>> snapshots;
  std::vector<Bytes> state(16, Bytes(kBs, 0));
  snapshots[0] = state;
  for (std::uint64_t t = 1; t <= 30; ++t) {
    const Lba lba = rng.next_below(16);
    Bytes next = random_block(1000 + t);
    ASSERT_TRUE(log.append(lba, t, parity_delta(next, state[lba])).is_ok());
    state[lba] = next;
    ASSERT_TRUE(disk.write(lba, next).is_ok());
    snapshots[t] = state;
  }
  // Roll the device back to t=12 and compare to the tracked snapshot.
  ASSERT_TRUE(log.recover_device(disk, 12).is_ok());
  Bytes out(kBs);
  for (Lba lba = 0; lba < 16; ++lba) {
    ASSERT_TRUE(disk.read(lba, out).is_ok());
    EXPECT_EQ(out, snapshots[12][lba]) << "lba " << lba;
  }
}

TEST(TrapLogTest, CompactionPreservesEndpointsAndRefusesInterior) {
  TrapLog log;
  std::vector<Bytes> versions{Bytes(kBs, 0)};
  for (std::uint64_t t = 1; t <= 10; ++t) {
    Bytes next = random_block(300 + t);
    ASSERT_TRUE(log.append(0, t, parity_delta(next, versions.back())).is_ok());
    versions.push_back(std::move(next));
  }
  const std::uint64_t before_bytes = log.stored_bytes();
  // Merge the middle of the history: timestamps 3..7 fold into one entry.
  const std::uint64_t removed = log.compact_range(3, 7);
  EXPECT_EQ(removed, 4u);
  EXPECT_EQ(log.total_entries(), 6u);
  EXPECT_LT(log.stored_bytes(), before_bytes);

  const Bytes& current = versions.back();
  // Recovery outside and at the edges of the span still exact:
  for (std::uint64_t t : {0ull, 1ull, 2ull, 7ull, 8ull, 9ull, 10ull}) {
    auto recovered = log.recover_block(0, t, current);
    ASSERT_TRUE(recovered.is_ok()) << "t=" << t;
    EXPECT_EQ(*recovered, versions[t]) << "t=" << t;
  }
  // Interior instants are gone.
  for (std::uint64_t t : {3ull, 4ull, 5ull, 6ull}) {
    EXPECT_EQ(log.recover_block(0, t, current).status().code(),
              ErrorCode::kFailedPrecondition)
        << "t=" << t;
  }
}

TEST(TrapLogTest, CompactionOfSparseDeltasShrinksStorage) {
  TrapLog log;
  // 50 writes each touching the same 64 bytes: folding collapses them to
  // roughly one delta's worth of storage.
  Bytes delta(8192, 0);
  for (std::uint64_t t = 1; t <= 50; ++t) {
    Rng rng(t);
    rng.fill(MutByteSpan(delta).subspan(1000, 64));
    ASSERT_TRUE(log.append(0, t, delta).is_ok());
  }
  const std::uint64_t before = log.stored_bytes();
  EXPECT_EQ(log.compact_range(1, 50), 49u);
  EXPECT_LT(log.stored_bytes(), before / 20);
  EXPECT_EQ(log.total_entries(), 1u);
}

TEST(TrapLogTest, CompactRangeNoOpOnSingleEntries) {
  TrapLog log;
  ASSERT_TRUE(log.append(0, 5, Bytes(kBs, 1)).is_ok());
  EXPECT_EQ(log.compact_range(0, 100), 0u);
  EXPECT_EQ(log.compact_range(10, 5), 0u);  // inverted range
  EXPECT_EQ(log.total_entries(), 1u);
}

TEST(TrapLogTest, SnapshotSaveLoadPreservesRecovery) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("prins_trap_" + std::to_string(::getpid()) + ".snap"))
          .string();
  TrapLog log;
  std::vector<Bytes> versions{Bytes(kBs, 0)};
  for (std::uint64_t t = 1; t <= 12; ++t) {
    Bytes next = random_block(600 + t);
    ASSERT_TRUE(log.append(9, t, parity_delta(next, versions.back())).is_ok());
    versions.push_back(std::move(next));
  }
  log.truncate_before(3);  // exercise min_recoverable round-tripping
  ASSERT_TRUE(log.save(path).is_ok());

  TrapLog restored;
  ASSERT_TRUE(restored.load_from(path).is_ok());
  EXPECT_EQ(restored.total_entries(), log.total_entries());
  EXPECT_EQ(restored.stored_bytes(), log.stored_bytes());
  const Bytes& current = versions.back();
  for (std::uint64_t t = 2; t <= 12; ++t) {
    auto recovered = restored.recover_block(9, t, current);
    ASSERT_TRUE(recovered.is_ok()) << "t=" << t;
    EXPECT_EQ(*recovered, versions[t]) << "t=" << t;
  }
  // Truncation semantics survived too.
  EXPECT_EQ(restored.recover_block(9, 1, current).status().code(),
            ErrorCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(TrapLogTest, SnapshotLoadRejectsCorruption) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("prins_trap_bad_" + std::to_string(::getpid()) + ".snap"))
          .string();
  TrapLog log;
  ASSERT_TRUE(log.append(0, 1, Bytes(kBs, 1)).is_ok());
  ASSERT_TRUE(log.save(path).is_ok());
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 10, SEEK_SET);
    std::fputc(0x5A, f);
    std::fclose(f);
  }
  TrapLog restored;
  EXPECT_EQ(restored.load_from(path).code(), ErrorCode::kCorruption);
  TrapLog missing;
  EXPECT_EQ(missing.load_from("/nonexistent/trap.snap").code(),
            ErrorCode::kNotFound);
  std::remove(path.c_str());
}

TEST(TrapLogTest, RejectsDeltaSizeMismatch) {
  TrapLog log;
  ASSERT_TRUE(log.append(0, 1, Bytes(100, 1)).is_ok());
  auto recovered = log.recover_block(0, 0, Bytes(kBs, 0));
  EXPECT_EQ(recovered.status().code(), ErrorCode::kCorruption);
}

// ---- CDP through the replica --------------------------------------------------

TEST(TrapReplicaTest, ReplicaLogsPrinsWritesForPointInTimeRecovery) {
  // The headline CDP property: a replica with keep_trap_log can rewind its
  // copy to the state after any primary write, using only the parity
  // deltas PRINS already shipped.
  auto primary_disk = std::make_shared<MemDisk>(32, kBs);
  auto replica_disk = std::make_shared<MemDisk>(32, kBs);
  ReplicaConfig replica_config;
  replica_config.keep_trap_log = true;
  auto replica = std::make_shared<ReplicaEngine>(replica_disk, replica_config);

  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  auto engine = std::make_unique<PrinsEngine>(primary_disk, config);
  auto [primary_end, replica_end] = make_inproc_pair();
  engine->add_replica(std::move(primary_end));
  std::thread server(
      [r = replica, t = std::shared_ptr<Transport>(std::move(replica_end))] {
        ASSERT_TRUE(r->serve(*t).is_ok());
      });

  // Timestamped history of block 3 (engine's logical clock is 1,2,3,...).
  std::vector<Bytes> history{Bytes(kBs, 0)};
  Rng rng(4);
  for (int i = 1; i <= 25; ++i) {
    Bytes next = random_block(2000 + i);
    ASSERT_TRUE(engine->write(3, next).is_ok());
    history.push_back(std::move(next));
  }
  ASSERT_TRUE(engine->drain().is_ok());

  Bytes current(kBs);
  ASSERT_TRUE(replica_disk->read(3, current).is_ok());
  EXPECT_EQ(current, history.back());

  for (std::uint64_t t = 0; t <= 25; ++t) {
    auto recovered = replica->trap_log().recover_block(3, t, current);
    ASSERT_TRUE(recovered.is_ok()) << "t=" << t;
    EXPECT_EQ(*recovered, history[t]) << "t=" << t;
  }

  // The log cost is bounded by what was actually shipped, not by
  // full-block before-images.
  EXPECT_EQ(replica->trap_log().total_entries(), 25u);

  engine.reset();
  server.join();
}

TEST(TrapReplicaTest, TraditionalPolicyAlsoFeedsTheLog) {
  // keep_trap_log computes deltas locally for non-parity policies.
  auto replica_disk = std::make_shared<MemDisk>(8, kBs);
  ReplicaConfig config;
  config.keep_trap_log = true;
  ReplicaEngine replica(replica_disk, config);

  const Bytes v1 = random_block(1);
  ReplicationMessage msg;
  msg.kind = MessageKind::kWrite;
  msg.policy = ReplicationPolicy::kTraditional;
  msg.block_size = kBs;
  msg.lba = 2;
  msg.sequence = 1;
  msg.timestamp_us = 1;
  msg.payload = encode_frame(codec_for(CodecId::kNull), v1);
  ASSERT_TRUE(replica.apply(msg).is_ok());

  const Bytes v2 = random_block(2);
  msg.payload = encode_frame(codec_for(CodecId::kNull), v2);
  msg.sequence = 2;
  msg.timestamp_us = 2;
  ASSERT_TRUE(replica.apply(msg).is_ok());

  auto at_t1 = replica.trap_log().recover_block(2, 1, v2);
  ASSERT_TRUE(at_t1.is_ok());
  EXPECT_EQ(*at_t1, v1);
  auto at_t0 = replica.trap_log().recover_block(2, 0, v2);
  ASSERT_TRUE(at_t0.is_ok());
  EXPECT_EQ(*at_t0, Bytes(kBs, 0));
}

}  // namespace
}  // namespace prins
