// Tests for the workload substrate: byte volume RMW, slotted pages, the
// TPC-C/TPC-W/fs-micro generators, and trace record/replay.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "block/mem_disk.h"
#include "common/rng.h"
#include "parity/xor.h"
#include "workload/byte_volume.h"
#include "workload/db_page.h"
#include "workload/fsmicro.h"
#include "workload/text.h"
#include "workload/tpcc.h"
#include "workload/tpcw.h"
#include "workload/trace.h"

namespace prins {
namespace {

// ---- ByteVolume ------------------------------------------------------------

TEST(ByteVolumeTest, UnalignedWriteReadRoundTrip) {
  MemDisk disk(64, 512);
  ByteVolume volume(disk);
  Rng rng(1);
  Bytes data(1000);
  rng.fill(data);
  ASSERT_TRUE(volume.write(300, data).is_ok());  // crosses block boundaries
  Bytes out(1000);
  ASSERT_TRUE(volume.read(300, out).is_ok());
  EXPECT_EQ(out, data);
}

TEST(ByteVolumeTest, RmwPreservesNeighbours) {
  MemDisk disk(4, 512);
  ByteVolume volume(disk);
  Bytes base(4 * 512);
  Rng rng(2);
  rng.fill(base);
  ASSERT_TRUE(volume.write(0, base).is_ok());
  // Splice 10 bytes into the middle of block 1.
  Bytes splice(10, 0xEE);
  ASSERT_TRUE(volume.write(512 + 100, splice).is_ok());
  Bytes out(4 * 512);
  ASSERT_TRUE(volume.read(0, out).is_ok());
  Bytes expected = base;
  std::fill(expected.begin() + 612, expected.begin() + 622, Byte{0xEE});
  EXPECT_EQ(out, expected);
}

TEST(ByteVolumeTest, BoundsChecked) {
  MemDisk disk(2, 512);
  ByteVolume volume(disk);
  Bytes data(100);
  EXPECT_FALSE(volume.write(1024 - 50, data).is_ok());
  EXPECT_FALSE(volume.read(2000, data).is_ok());
  EXPECT_TRUE(volume.write(1024 - 100, data).is_ok());  // exactly at the end
  EXPECT_TRUE(volume.write(0, {}).is_ok());             // empty is a no-op
}

// ---- DbPage ----------------------------------------------------------------

TEST(DbPageTest, FormatAndInsertReadBack) {
  Bytes page(8192);
  DbPage::format(page, 17);
  DbPage view{page};
  ASSERT_TRUE(view.valid());
  EXPECT_EQ(view.page_id(), 17u);
  EXPECT_EQ(view.slot_count(), 0u);

  Rng rng(3);
  const Bytes row = make_row(rng, oracle_profile(), 100);
  auto slot = view.insert_row(row);
  ASSERT_TRUE(slot.is_ok());
  EXPECT_EQ(*slot, 0u);
  auto back = view.read_row(0);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(to_bytes(*back), row);
}

TEST(DbPageTest, LsnBumpsOnEveryMutation) {
  Bytes page(8192);
  DbPage::format(page, 0);
  DbPage view{page};
  const std::uint64_t lsn0 = view.lsn();
  Rng rng(4);
  ASSERT_TRUE(view.insert_row(make_row(rng, oracle_profile(), 50)).is_ok());
  EXPECT_GT(view.lsn(), lsn0);
  const std::uint64_t lsn1 = view.lsn();
  Byte field[4] = {1, 2, 3, 4};
  ASSERT_TRUE(view.update_row_field(0, 10, field).is_ok());
  EXPECT_GT(view.lsn(), lsn1);
  const std::uint64_t lsn2 = view.lsn();
  ASSERT_TRUE(view.delete_row(0).is_ok());
  EXPECT_GT(view.lsn(), lsn2);
}

TEST(DbPageTest, FillsUntilFull) {
  Bytes page(1024);
  DbPage::format(page, 0);
  DbPage view{page};
  Rng rng(5);
  int inserted = 0;
  for (;;) {
    auto slot = view.insert_row(make_row(rng, oracle_profile(), 100));
    if (!slot.is_ok()) {
      EXPECT_EQ(slot.status().code(), ErrorCode::kResourceExhausted);
      break;
    }
    ++inserted;
  }
  // 1024-byte page, 104 bytes per row incl. overhead: 9 rows fit.
  EXPECT_EQ(inserted, 9);
  // Rows all intact after the page filled.
  for (int s = 0; s < inserted; ++s) {
    auto row = view.read_row(static_cast<std::uint16_t>(s));
    ASSERT_TRUE(row.is_ok());
    EXPECT_EQ(row->size(), 100u);
  }
}

TEST(DbPageTest, UpdateTouchesOnlyFieldAndHeader) {
  Bytes page(8192);
  DbPage::format(page, 0);
  DbPage view{page};
  Rng rng(6);
  ASSERT_TRUE(view.insert_row(make_row(rng, oracle_profile(), 200)).is_ok());
  const Bytes before = page;
  Byte field[8] = {9, 9, 9, 9, 9, 9, 9, 9};
  ASSERT_TRUE(view.update_row_field(0, 50, field).is_ok());
  const Bytes delta = parity_delta(page, before);
  // Dirty bytes: <= 8 field bytes + 8 LSN bytes.
  EXPECT_LE(count_nonzero(delta), 16u);
  EXPECT_GT(count_nonzero(delta), 0u);
}

TEST(DbPageTest, DeleteTombstonesRow) {
  Bytes page(8192);
  DbPage::format(page, 0);
  DbPage view{page};
  Rng rng(7);
  ASSERT_TRUE(view.insert_row(make_row(rng, oracle_profile(), 64)).is_ok());
  ASSERT_TRUE(view.insert_row(make_row(rng, oracle_profile(), 64)).is_ok());
  ASSERT_TRUE(view.delete_row(0).is_ok());
  EXPECT_TRUE(view.row_dead(0));
  EXPECT_FALSE(view.row_dead(1));
  auto dead = view.read_row(0);
  ASSERT_TRUE(dead.is_ok());
  EXPECT_TRUE(dead->empty());
  EXPECT_FALSE(view.update_row_field(0, 0, Bytes{1}).is_ok());
  // Slot count unchanged; the slot is a tombstone.
  EXPECT_EQ(view.slot_count(), 2u);
}

TEST(DbPageTest, ErrorsOnBadSlotAndRange) {
  Bytes page(8192);
  DbPage::format(page, 0);
  DbPage view{page};
  EXPECT_FALSE(view.read_row(0).is_ok());
  Rng rng(8);
  ASSERT_TRUE(view.insert_row(make_row(rng, oracle_profile(), 32)).is_ok());
  Byte field[8];
  EXPECT_FALSE(view.update_row_field(0, 30, field).is_ok());  // beyond row
  EXPECT_FALSE(view.update_row_field(5, 0, field).is_ok());   // no such slot
  Bytes not_a_page(8192, 0xAB);
  DbPage bad{not_a_page};
  EXPECT_FALSE(bad.valid());
  EXPECT_FALSE(bad.insert_row(Bytes(10)).is_ok());
}

TEST(DbProfileTest, ProfilesDiffer) {
  EXPECT_EQ(oracle_profile().page_size, 8192u);
  EXPECT_EQ(mysql_profile().page_size, 16384u);
  EXPECT_FALSE(oracle_profile().mvcc_insert_on_update);
  EXPECT_TRUE(postgres_profile().mvcc_insert_on_update);
}

// ---- text ------------------------------------------------------------------

TEST(TextTest, WordsAreAsciiAndCompressible) {
  Rng rng(9);
  Bytes text(4096);
  fill_words(rng, text);
  for (Byte b : text) {
    EXPECT_TRUE((b >= 'a' && b <= 'z') || b == ' ') << static_cast<int>(b);
  }
}

TEST(TextTest, TpccLastNamesFollowSyllables) {
  EXPECT_EQ(tpcc_last_name(0), "BARBARBAR");
  EXPECT_EQ(tpcc_last_name(371), "PRICALLYOUGHT");
  EXPECT_EQ(tpcc_last_name(999), "EINGEINGEING");
  EXPECT_EQ(tpcc_last_name(1999), "EINGEINGEING");  // modulo 1000
}

// ---- generic workload properties --------------------------------------------------

class WorkloadKinds : public ::testing::TestWithParam<int> {
 protected:
  static std::unique_ptr<Workload> make(int kind, std::uint64_t seed) {
    switch (kind) {
      case 0: {
        TpccConfig config;
        config.warehouses = 2;
        config.customers_per_district = 60;
        config.items = 200;
        config.order_capacity = 3000;
        config.flush_interval = 4;
        config.seed = seed;
        return std::make_unique<Tpcc>(config);
      }
      case 1: {
        TpcwConfig config;
        config.items = 500;
        config.customers = 100;
        config.order_capacity = 2000;
        config.flush_interval = 4;
        config.seed = seed;
        return std::make_unique<Tpcw>(config);
      }
      default: {
        FsMicroConfig config;
        config.directories = 6;
        config.files_per_directory = 4;
        config.tar_directories = 3;
        config.max_file_bytes = 8 * 1024;
        config.seed = seed;
        return std::make_unique<FsMicro>(config);
      }
    }
  }
};

TEST_P(WorkloadKinds, SetupAndTransactionsSucceed) {
  auto workload = make(GetParam(), 42);
  MemDisk disk(workload->required_bytes() / 4096 + 2, 4096);
  ByteVolume volume(disk);
  ASSERT_TRUE(workload->setup(volume).is_ok());
  std::uint64_t total_writes = 0;
  const int transactions = GetParam() == 2 ? 5 : 200;
  for (int t = 0; t < transactions; ++t) {
    auto writes = workload->run_transaction(volume);
    ASSERT_TRUE(writes.is_ok()) << "txn " << t << ": "
                                << writes.status().to_string();
    total_writes += *writes;
  }
  EXPECT_GT(total_writes, 0u);
}

TEST_P(WorkloadKinds, DeterministicGivenSeed) {
  // Identical seeds against identical volumes must produce identical
  // block-write streams — the property the experiment harness relies on.
  std::shared_ptr<WriteTrace> traces[2];
  for (int run = 0; run < 2; ++run) {
    auto workload = make(GetParam(), 77);
    auto disk =
        std::make_shared<MemDisk>(workload->required_bytes() / 4096 + 2, 4096);
    {
      ByteVolume volume(*disk);
      ASSERT_TRUE(workload->setup(volume).is_ok());
    }
    traces[run] = std::make_shared<WriteTrace>();
    RecordingDisk recorder(disk, traces[run]);
    ByteVolume volume(recorder);
    const int transactions = GetParam() == 2 ? 3 : 100;
    for (int t = 0; t < transactions; ++t) {
      ASSERT_TRUE(workload->run_transaction(volume).is_ok());
    }
  }
  ASSERT_EQ(traces[0]->size(), traces[1]->size());
  for (std::size_t i = 0; i < traces[0]->size(); ++i) {
    ASSERT_EQ(traces[0]->entries()[i].lba, traces[1]->entries()[i].lba);
    ASSERT_EQ(traces[0]->entries()[i].data, traces[1]->entries()[i].data);
  }
}

TEST_P(WorkloadKinds, PartialBlockChangeProperty) {
  // The paper's foundation: writes change only a fraction of each block.
  // Measure the mean dirty fraction of overwritten blocks; it must be
  // well below 1 (and nonzero).
  auto workload = make(GetParam(), 99);
  auto disk =
      std::make_shared<MemDisk>(workload->required_bytes() / 8192 + 2, 8192);
  {
    ByteVolume volume(*disk);
    ASSERT_TRUE(workload->setup(volume).is_ok());
  }
  // Shadow copy to diff against.
  MemDisk shadow(disk->num_blocks(), 8192);
  Bytes buf(8192);
  for (Lba lba = 0; lba < disk->num_blocks(); ++lba) {
    ASSERT_TRUE(disk->read(lba, buf).is_ok());
    ASSERT_TRUE(shadow.write(lba, buf).is_ok());
  }

  auto trace = std::make_shared<WriteTrace>();
  RecordingDisk recorder(disk, trace);
  ByteVolume volume(recorder);
  const int transactions = GetParam() == 2 ? 3 : 150;
  for (int t = 0; t < transactions; ++t) {
    ASSERT_TRUE(workload->run_transaction(volume).is_ok());
  }

  double dirty_sum = 0;
  std::uint64_t samples = 0;
  Bytes old_block;
  for (const auto& entry : trace->entries()) {
    old_block.resize(entry.data.size());  // entries may span blocks
    ASSERT_TRUE(shadow.read(entry.lba, old_block).is_ok());
    const Bytes delta = parity_delta(entry.data, old_block);
    dirty_sum += dirty_fraction(delta);
    ++samples;
    ASSERT_TRUE(shadow.write(entry.lba, entry.data).is_ok());
  }
  ASSERT_GT(samples, 0u);
  const double mean_dirty = dirty_sum / static_cast<double>(samples);
  EXPECT_GT(mean_dirty, 0.001);
  EXPECT_LT(mean_dirty, 0.65) << "writes should not rewrite whole blocks";
}

std::string workload_kind_name(const ::testing::TestParamInfo<int>& info) {
  switch (info.param) {
    case 0: return "tpcc";
    case 1: return "tpcw";
    default: return "fsmicro";
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, WorkloadKinds, ::testing::Values(0, 1, 2),
                         workload_kind_name);

// ---- fs-micro specifics ----------------------------------------------------------

TEST(FsMicroTest, ConsecutiveTarRoundsAreMostlySimilar) {
  // The key content property behind Figure 7's huge ratios: the archive
  // region barely changes between rounds.
  FsMicroConfig config;
  config.directories = 6;
  config.files_per_directory = 4;
  config.tar_directories = 3;
  config.max_file_bytes = 8 * 1024;
  config.edit_fraction = 0.25;
  FsMicro workload(config);
  auto disk = std::make_shared<MemDisk>(
      workload.required_bytes() / 4096 + 2, 4096);
  ByteVolume volume(*disk);
  ASSERT_TRUE(workload.setup(volume).is_ok());
  ASSERT_TRUE(workload.run_transaction(volume).is_ok());  // round 1

  // Snapshot, run round 2, diff.
  Bytes before(disk->capacity_bytes());
  ASSERT_TRUE(disk->read(0, before).is_ok());
  ASSERT_TRUE(workload.run_transaction(volume).is_ok());  // round 2
  Bytes after(disk->capacity_bytes());
  ASSERT_TRUE(disk->read(0, after).is_ok());

  const Bytes delta = parity_delta(after, before);
  const double changed = dirty_fraction(delta);
  EXPECT_GT(changed, 0.0);
  EXPECT_LT(changed, 0.30);  // most of the volume identical across rounds
}

// ---- trace -----------------------------------------------------------------------

TEST(TraceTest, RecordAndReplayReproduceDevice) {
  auto source = std::make_shared<MemDisk>(32, 512);
  auto trace = std::make_shared<WriteTrace>();
  RecordingDisk recorder(source, trace);
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    Bytes block(512);
    rng.fill(block);
    ASSERT_TRUE(recorder.write(rng.next_below(32), block).is_ok());
  }
  EXPECT_EQ(trace->size(), 100u);
  EXPECT_EQ(trace->total_bytes(), 100u * 512u);

  MemDisk replayed(32, 512);
  ASSERT_TRUE(trace->replay(replayed).is_ok());
  Bytes a(512), b(512);
  for (Lba lba = 0; lba < 32; ++lba) {
    ASSERT_TRUE(source->read(lba, a).is_ok());
    ASSERT_TRUE(replayed.read(lba, b).is_ok());
    EXPECT_EQ(a, b);
  }
}

TEST(TraceTest, SaveAndLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("prins_trace_" + std::to_string(::getpid()) + ".bin"))
          .string();
  WriteTrace original;
  Rng rng(12);
  for (int i = 0; i < 50; ++i) {
    Bytes data(512);
    rng.fill(data);
    original.add(rng.next_below(100), data);
  }
  ASSERT_TRUE(original.save(path).is_ok());

  WriteTrace loaded;
  ASSERT_TRUE(loaded.load_from(path).is_ok());
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.total_bytes(), original.total_bytes());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.entries()[i].lba, original.entries()[i].lba);
    EXPECT_EQ(loaded.entries()[i].data, original.entries()[i].data);
  }
  std::remove(path.c_str());
}

TEST(TraceTest, LoadDetectsCorruptionAndMissingFiles) {
  WriteTrace trace;
  EXPECT_EQ(trace.load_from("/nonexistent/prins.trace").code(),
            ErrorCode::kNotFound);

  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("prins_trace_bad_" + std::to_string(::getpid()) + ".bin"))
          .string();
  WriteTrace original;
  original.add(1, Bytes(512, 7));
  ASSERT_TRUE(original.save(path).is_ok());
  // Flip a byte in the middle of the file.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 20, SEEK_SET);
    std::fputc(0xEE, f);
    std::fclose(f);
  }
  WriteTrace loaded;
  EXPECT_EQ(loaded.load_from(path).code(), ErrorCode::kCorruption);
  std::remove(path.c_str());
}

TEST(TraceTest, FailedWritesNotRecorded) {
  auto source = std::make_shared<MemDisk>(4, 512);
  auto trace = std::make_shared<WriteTrace>();
  RecordingDisk recorder(source, trace);
  Bytes block(512);
  EXPECT_FALSE(recorder.write(100, block).is_ok());
  EXPECT_EQ(trace->size(), 0u);
}

}  // namespace
}  // namespace prins
