// Tests for the transport layer: in-proc pairs, named rendezvous, TCP
// framing, and the traffic meter's packet model.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <thread>

#include "common/rng.h"
#include "net/faulty.h"
#include "net/inproc.h"
#include "net/latent.h"
#include "net/packet_model.h"
#include "net/shaped_transport.h"
#include "net/tcp.h"
#include "net/traffic_meter.h"

namespace prins {
namespace {

Bytes message(std::string_view s) { return to_bytes(as_bytes(s)); }

TEST(InprocTest, PingPong) {
  auto [a, b] = make_inproc_pair();
  ASSERT_TRUE(a->send(message("hello")).is_ok());
  auto got = b->recv();
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(*got, message("hello"));
  ASSERT_TRUE(b->send(message("world")).is_ok());
  auto back = a->recv();
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, message("world"));
}

TEST(InprocTest, PreservesOrderAndBoundaries) {
  auto [a, b] = make_inproc_pair();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(a->send(message("msg" + std::to_string(i))).is_ok());
  }
  for (int i = 0; i < 100; ++i) {
    auto got = b->recv();
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(*got, message("msg" + std::to_string(i)));
  }
}

TEST(InprocTest, EmptyMessageAllowed) {
  auto [a, b] = make_inproc_pair();
  ASSERT_TRUE(a->send({}).is_ok());
  auto got = b->recv();
  ASSERT_TRUE(got.is_ok());
  EXPECT_TRUE(got->empty());
}

TEST(InprocTest, CloseUnblocksReceiver) {
  auto [a, b] = make_inproc_pair();
  std::thread closer([&a] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    a->close();
  });
  auto got = b->recv();
  EXPECT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), ErrorCode::kUnavailable);
  closer.join();
}

TEST(InprocTest, QueuedMessagesDrainAfterClose) {
  auto [a, b] = make_inproc_pair();
  ASSERT_TRUE(a->send(message("last words")).is_ok());
  a->close();
  auto got = b->recv();
  ASSERT_TRUE(got.is_ok());  // delivered despite the close
  EXPECT_EQ(*got, message("last words"));
  EXPECT_FALSE(b->recv().is_ok());
}

TEST(InprocTest, BackpressureBlocksThenReleases) {
  auto [a, b] = make_inproc_pair(/*capacity=*/2);
  ASSERT_TRUE(a->send(message("1")).is_ok());
  ASSERT_TRUE(a->send(message("2")).is_ok());
  std::atomic<bool> third_sent{false};
  std::thread sender([&] {
    ASSERT_TRUE(a->send(message("3")).is_ok());  // blocks until b receives
    third_sent = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_sent.load());
  ASSERT_TRUE(b->recv().is_ok());
  sender.join();
  EXPECT_TRUE(third_sent.load());
}

TEST(InprocNetworkTest, ListenConnectAccept) {
  InprocNetwork net;
  auto listener = net.listen("node-b");
  ASSERT_TRUE(listener.is_ok());
  std::thread server([&] {
    auto conn = (*listener)->accept();
    ASSERT_TRUE(conn.is_ok());
    auto got = (*conn)->recv();
    ASSERT_TRUE(got.is_ok());
    ASSERT_TRUE((*conn)->send(*got).is_ok());  // echo
  });
  auto client = net.connect("node-b");
  ASSERT_TRUE(client.is_ok());
  ASSERT_TRUE((*client)->send(message("echo me")).is_ok());
  auto got = (*client)->recv();
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(*got, message("echo me"));
  server.join();
}

TEST(InprocNetworkTest, ConnectToMissingAddressFails) {
  InprocNetwork net;
  EXPECT_EQ(net.connect("ghost").status().code(), ErrorCode::kNotFound);
}

TEST(InprocNetworkTest, DoubleListenFails) {
  InprocNetwork net;
  auto first = net.listen("addr");
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(net.listen("addr").status().code(), ErrorCode::kAlreadyExists);
}

TEST(InprocNetworkTest, ClosedListenerUnblocksAccept) {
  InprocNetwork net;
  auto listener = net.listen("addr2");
  ASSERT_TRUE(listener.is_ok());
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    (*listener)->close();
  });
  EXPECT_FALSE((*listener)->accept().is_ok());
  closer.join();
}

// ---- TCP ------------------------------------------------------------------

TEST(TcpTest, RoundTripOverLoopback) {
  auto listener = TcpListener::listen(0);
  ASSERT_TRUE(listener.is_ok()) << listener.status().to_string();
  const std::uint16_t port = (*listener)->port();
  ASSERT_NE(port, 0);

  std::thread server([&] {
    auto conn = (*listener)->accept();
    ASSERT_TRUE(conn.is_ok());
    for (;;) {
      auto got = (*conn)->recv();
      if (!got.is_ok()) break;
      ASSERT_TRUE((*conn)->send(*got).is_ok());
    }
  });

  auto client = TcpTransport::connect("127.0.0.1", port);
  ASSERT_TRUE(client.is_ok()) << client.status().to_string();

  // Small, empty, and large (multi-MB) messages survive framing.
  Rng rng(1);
  for (std::size_t n : {0ul, 1ul, 100ul, 70000ul, 3000000ul}) {
    Bytes data(n);
    rng.fill(data);
    ASSERT_TRUE((*client)->send(data).is_ok()) << n;
    auto got = (*client)->recv();
    ASSERT_TRUE(got.is_ok()) << n;
    EXPECT_EQ(*got, data) << n;
  }
  (*client)->close();
  server.join();
}

TEST(TcpTest, ConnectToClosedPortFails) {
  // Grab a free port, then close the listener so nothing is there.
  std::uint16_t port;
  {
    auto listener = TcpListener::listen(0);
    ASSERT_TRUE(listener.is_ok());
    port = (*listener)->port();
  }
  auto client = TcpTransport::connect("127.0.0.1", port);
  EXPECT_FALSE(client.is_ok());
}

TEST(TcpTest, BadAddressRejected) {
  EXPECT_FALSE(TcpTransport::connect("not-an-ip", 80).is_ok());
}

TEST(TcpTest, RecvForTimesOutMidFrameThenResumes) {
  // Regression: recv_for used to poll only for the *first* byte of a frame
  // and then block on the remainder, so a peer stalling mid-message turned
  // a timeout into a late success.  The deadline must cover the whole
  // frame, and the partial frame must survive the timeout so the stream
  // stays in sync.
  auto listener = TcpListener::listen(0);
  ASSERT_TRUE(listener.is_ok());

  // A raw socket lets the test write half a frame and stall on purpose.
  int raw = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons((*listener)->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(raw, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  auto server = (*listener)->accept();
  ASSERT_TRUE(server.is_ok());

  const Bytes body = message("ten__bytes");
  unsigned char header[4] = {10, 0, 0, 0};  // little-endian length
  ASSERT_EQ(::send(raw, header, sizeof header, 0), 4);
  ASSERT_EQ(::send(raw, body.data(), 3, 0), 3);  // ...then stall

  const auto start = std::chrono::steady_clock::now();
  auto timed_out = (*server)->recv_for(std::chrono::milliseconds(80));
  EXPECT_EQ(timed_out.status().code(), ErrorCode::kTimeout);
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(80));

  // The stream resumes mid-frame: the remaining 7 bytes complete the
  // message that timed out, byte for byte.
  ASSERT_EQ(::send(raw, body.data() + 3, 7, 0), 7);
  auto got = (*server)->recv();
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  EXPECT_EQ(*got, body);

  // And the connection is still framed correctly for the next message.
  unsigned char next[4 + 2] = {2, 0, 0, 0, 'o', 'k'};
  ASSERT_EQ(::send(raw, next, sizeof next, 0), 6);
  auto after = (*server)->recv_for(std::chrono::seconds(5));
  ASSERT_TRUE(after.is_ok());
  EXPECT_EQ(*after, message("ok"));
  ::close(raw);
}

TEST(RecvForTest, DecoratorPassThroughSurfacesMidFrameStall) {
  // Same stall as above, but the accepted transport is wrapped in a
  // fault-free FaultyTransport: the decorator must hand recv_for's
  // deadline to the socket (not fall back to a blocking recv), so the
  // mid-frame stall surfaces as kTimeout through the wrapper too.
  auto listener = TcpListener::listen(0);
  ASSERT_TRUE(listener.is_ok());
  int raw = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons((*listener)->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(raw, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  auto accepted = (*listener)->accept();
  ASSERT_TRUE(accepted.is_ok());
  FaultyTransport server(std::move(*accepted), FaultConfig{});

  unsigned char partial[4 + 2] = {5, 0, 0, 0, 'h', 'i'};  // 2 of 5 bytes
  ASSERT_EQ(::send(raw, partial, sizeof partial, 0), 6);
  auto timed_out = server.recv_for(std::chrono::milliseconds(60));
  EXPECT_EQ(timed_out.status().code(), ErrorCode::kTimeout);

  unsigned char rest[3] = {'v', 'e', 'r'};
  ASSERT_EQ(::send(raw, rest, sizeof rest, 0), 3);
  auto got = server.recv_for(std::chrono::seconds(5));
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(*got, message("hiver"));
  ::close(raw);
}

TEST(TcpTest, PeerCloseYieldsUnavailable) {
  auto listener = TcpListener::listen(0);
  ASSERT_TRUE(listener.is_ok());
  std::thread server([&] {
    auto conn = (*listener)->accept();
    ASSERT_TRUE(conn.is_ok());
    (*conn)->close();
  });
  auto client = TcpTransport::connect("localhost", (*listener)->port());
  ASSERT_TRUE(client.is_ok());
  auto got = (*client)->recv();
  EXPECT_EQ(got.status().code(), ErrorCode::kUnavailable);
  server.join();
}

// ---- packet model & traffic meter ------------------------------------------------

TEST(PacketModelTest, MatchesPaperFormula) {
  EXPECT_EQ(packets_for(0), 0u);
  EXPECT_EQ(packets_for(1), 1u);
  EXPECT_EQ(packets_for(1500), 1u);
  EXPECT_EQ(packets_for(1501), 2u);
  EXPECT_EQ(packets_for(8192), 6u);
  EXPECT_EQ(wire_bytes_for(1500), 1500u + 112u);
  EXPECT_EQ(wire_bytes_for(8192), 8192u + 6 * 112u);
}

TEST(TrafficMeterTest, AccountsSendsAndReceives) {
  auto [a, b] = make_inproc_pair();
  TrafficMeter meter(std::move(a));
  ASSERT_TRUE(meter.send(Bytes(8192, 1)).is_ok());
  ASSERT_TRUE(meter.send(Bytes(100, 2)).is_ok());
  const TrafficStats sent = meter.sent();
  EXPECT_EQ(sent.messages, 2u);
  EXPECT_EQ(sent.payload_bytes, 8292u);
  EXPECT_EQ(sent.packets, 7u);
  EXPECT_EQ(sent.wire_bytes, 8292u + 7 * 112u);

  ASSERT_TRUE(b->send(Bytes(50, 3)).is_ok());
  ASSERT_TRUE(meter.recv().is_ok());
  EXPECT_EQ(meter.received().messages, 1u);
  EXPECT_EQ(meter.received().payload_bytes, 50u);

  EXPECT_EQ(meter.sent_sizes().count(), 2u);
  meter.reset();
  EXPECT_EQ(meter.sent().messages, 0u);
}

TEST(LatentPairTest, DeliversAfterDelayWithoutBlockingSender) {
  auto [a, b] = make_latent_pair(std::chrono::microseconds(20000));
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(a->send(message("in flight")).is_ok());
  const double send_time =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(send_time, 0.010);  // sender not blocked for the latency
  auto got = b->recv();
  const double total =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(*got, message("in flight"));
  EXPECT_GE(total, 0.018);  // ~one-way delay elapsed before delivery
}

TEST(LatentPairTest, OrderPreservedAndDrainsAfterClose) {
  auto [a, b] = make_latent_pair(std::chrono::microseconds(1000));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(a->send(message(std::to_string(i))).is_ok());
  }
  a->close();
  for (int i = 0; i < 10; ++i) {
    auto got = b->recv();
    ASSERT_TRUE(got.is_ok()) << i;
    EXPECT_EQ(*got, message(std::to_string(i)));
  }
  EXPECT_FALSE(b->recv().is_ok());
}

TEST(ShapedTransportTest, DeliversAndDelays) {
  auto [a, b] = make_inproc_pair();
  ShapingConfig shaping;
  shaping.line = kT1;
  shaping.hops = 2;
  shaping.bandwidth_scale = 1000.0;  // keep the test fast
  ShapedTransport shaped(std::move(a), shaping);

  // An 8 KB message on T1/1000 still costs >= ~59 us of shaping.
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(shaped.send(Bytes(8192, 1)).is_ok());
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed, 50e-6);

  auto got = b->recv();
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got->size(), 8192u);
  // Replies are not shaped (the model charges the forward path).
  ASSERT_TRUE(b->send(Bytes(10, 2)).is_ok());
  auto reply = shaped.recv();
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(reply->size(), 10u);
  EXPECT_NE(shaped.describe().find("T1"), std::string::npos);
}

TEST(TrafficMeterTest, MergeSumsStats) {
  TrafficStats a, b;
  a.add_message(1000);
  b.add_message(2000);
  a.merge(b);
  EXPECT_EQ(a.messages, 2u);
  EXPECT_EQ(a.payload_bytes, 3000u);
  EXPECT_EQ(a.packets, 3u);
}

}  // namespace
}  // namespace prins
