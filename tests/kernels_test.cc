// Tests for the runtime-dispatched byte kernels: every tier the CPU can
// run must be bit-identical to the scalar reference over adversarial
// sizes (0..257 crosses every lane boundary), odd alignments, and
// randomized contents — plus semantic spot checks of the reference
// itself.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/rng.h"
#include "parity/kernels.h"
#include "parity/xor.h"

namespace prins {
namespace {

using kernels::Ops;

TEST(KernelsTest, ScalarReferenceSemantics) {
  const Ops& ops = kernels::scalar_ops();
  const Bytes a = {0x00, 0xFF, 0x55, 0x00, 0x01};
  const Bytes b = {0x00, 0xFF, 0xAA, 0x01, 0x01};
  Bytes out(a.size());
  EXPECT_EQ(ops.xor_to_and_count(out.data(), a.data(), b.data(), a.size()),
            2u);  // 0x55^0xAA and 0x00^0x01 are the only non-zero bytes
  EXPECT_EQ(out, (Bytes{0x00, 0x00, 0xFF, 0x01, 0x00}));
  EXPECT_EQ(ops.count_nonzero(out.data(), out.size()), 2u);
  EXPECT_EQ(ops.skip_zeros(out.data(), out.size(), 0), 2u);
  EXPECT_EQ(ops.skip_zeros(out.data(), out.size(), 3), 3u);
  EXPECT_EQ(ops.skip_zeros(out.data(), out.size(), 4), 5u);  // none left
  EXPECT_EQ(ops.skip_zeros(out.data(), out.size(), 5), 5u);  // pos == n
  EXPECT_EQ(ops.count_nonzero(out.data(), 0), 0u);
}

TEST(KernelsTest, AvailableTiersStartWithScalar) {
  const auto tiers = kernels::available_ops();
  ASSERT_FALSE(tiers.empty());
  EXPECT_STREQ(tiers.front()->name, "scalar");
  // active_ops is one of the runnable tiers.
  bool found = false;
  for (const Ops* ops : tiers) found = found || ops == &kernels::active_ops();
  EXPECT_TRUE(found);
}

/// Every runnable tier, every kernel, sizes 0..257, three misalignments,
/// randomized contents with embedded zero runs.
TEST(KernelsTest, AllTiersMatchScalarOverSizesAndAlignments) {
  const Ops& ref = kernels::scalar_ops();
  Rng rng(1);
  Bytes a(512 + 8), b(512 + 8);
  rng.fill(a);
  rng.fill(b);
  // A zero run in the middle (a == b there) and zero-leading bytes, so the
  // counting/scanning kernels see long all-zero and all-nonzero stretches.
  for (std::size_t i = 100; i < 180; ++i) a[i] = b[i];
  for (std::size_t i = 0; i < 40; ++i) {
    a[i] = 0;
    b[i] = 0;
  }

  for (const Ops* ops : kernels::available_ops()) {
    SCOPED_TRACE(ops->name);
    for (std::size_t n = 0; n <= 257; ++n) {
      for (const std::size_t off : {std::size_t{0}, std::size_t{1},
                                    std::size_t{7}}) {
        const Byte* pa = a.data() + off;
        const Byte* pb = b.data() + off;

        Bytes got(n, 0xCD), want(n, 0xCD);
        ops->xor_to(got.data(), pa, pb, n);
        ref.xor_to(want.data(), pa, pb, n);
        ASSERT_EQ(got, want) << "xor_to n=" << n << " off=" << off;

        Bytes acc_got = want, acc_want = want;
        ops->xor_into(acc_got.data(), pb, n);
        ref.xor_into(acc_want.data(), pb, n);
        ASSERT_EQ(acc_got, acc_want) << "xor_into n=" << n << " off=" << off;

        ASSERT_EQ(ops->count_nonzero(pa, n), ref.count_nonzero(pa, n))
            << "count_nonzero n=" << n << " off=" << off;

        Bytes f_got(n), f_want(n);
        const std::size_t c_got =
            ops->xor_to_and_count(f_got.data(), pa, pb, n);
        const std::size_t c_want =
            ref.xor_to_and_count(f_want.data(), pa, pb, n);
        ASSERT_EQ(f_got, f_want) << "fused bytes n=" << n << " off=" << off;
        ASSERT_EQ(c_got, c_want) << "fused count n=" << n << " off=" << off;

        for (std::size_t pos = 0; pos <= n; pos += (n / 7) + 1) {
          ASSERT_EQ(ops->skip_zeros(pa, n, pos), ref.skip_zeros(pa, n, pos))
              << "skip_zeros n=" << n << " pos=" << pos << " off=" << off;
        }
      }
    }
  }
}

TEST(KernelsTest, FusedCountEqualsSeparateCountOnLargeRandomBlocks) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    Bytes a(8192), b(8192);
    rng.fill(a);
    rng.fill(b);
    // Vary the dirty fraction: equalize a random prefix.
    const std::size_t same = rng.next_below(a.size());
    for (std::size_t i = 0; i < same; ++i) b[i] = a[i];

    for (const Ops* ops : kernels::available_ops()) {
      Bytes out(a.size());
      const std::size_t fused =
          ops->xor_to_and_count(out.data(), a.data(), b.data(), a.size());
      EXPECT_EQ(fused, ops->count_nonzero(out.data(), out.size()))
          << ops->name;
      EXPECT_EQ(fused, count_nonzero(out)) << ops->name;  // public wrapper
    }
  }
}

TEST(KernelsTest, SkipZerosOnAllZeroAndAllNonzeroBuffers) {
  Bytes zeros(300, 0);
  Bytes ones(300, 1);
  for (const Ops* ops : kernels::available_ops()) {
    SCOPED_TRACE(ops->name);
    EXPECT_EQ(ops->skip_zeros(zeros.data(), zeros.size(), 0), zeros.size());
    EXPECT_EQ(ops->skip_zeros(zeros.data(), zeros.size(), 299), zeros.size());
    EXPECT_EQ(ops->skip_zeros(ones.data(), ones.size(), 0), 0u);
    EXPECT_EQ(ops->skip_zeros(ones.data(), ones.size(), 123), 123u);
    EXPECT_EQ(ops->skip_zeros(zeros.data(), 0, 0), 0u);
  }
}

TEST(KernelsTest, PublicXorWrappersUseDispatchedOps) {
  // The span-level API in parity/xor.h must agree with the raw kernels.
  Rng rng(3);
  Bytes a(1000), b(1000);
  rng.fill(a);
  rng.fill(b);
  Bytes out(a.size());
  const std::size_t fused = xor_to_and_count(out, a, b);
  EXPECT_EQ(out, parity_delta(a, b));
  EXPECT_EQ(fused, count_nonzero(out));
  Bytes acc = a;
  xor_into(acc, b);
  EXPECT_EQ(acc, out);
}

}  // namespace
}  // namespace prins
